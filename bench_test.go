// Benchmarks regenerating the paper's evaluation artifacts. Each
// Benchmark function corresponds to one table or figure of Section 4/5
// (see EXPERIMENTS.md for the index):
//
//	BenchmarkFig6_*      — Figure 6: sorting time, small cubes
//	BenchmarkTable1      — Section 5 component-time table (model fit)
//	BenchmarkFig7        — Figure 7: large-system projections
//	BenchmarkFig8_*      — Figure 8: block sort/merge vs host sort
//	BenchmarkE6Coverage  — Section 4: single-fault detection sweep
//
// The wall-clock numbers benchmark the *simulator*; the paper-shaped
// results (virtual ticks) are reported via b.ReportMetric so a bench
// run reproduces the figures' series directly.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/simnet"
)

const benchSeed = 1989

// reportMeasurement attaches the paper-facing series to the bench line.
func reportMeasurement(b *testing.B, m experiments.Measurement) {
	b.ReportMetric(float64(m.Makespan), "vticks")
	b.ReportMetric(float64(m.Comm), "vcomm")
	b.ReportMetric(float64(m.Comp), "vcomp")
	b.ReportMetric(float64(m.Msgs), "msgs")
	b.ReportMetric(float64(m.Bytes), "wirebytes")
}

func benchMeasure(b *testing.B, f func() (experiments.Measurement, error)) {
	b.Helper()
	var last experiments.Measurement
	for i := 0; i < b.N; i++ {
		m, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	reportMeasurement(b, last)
}

// BenchmarkFig6_SNR regenerates the S_NR series of Figure 6.
func BenchmarkFig6_SNR(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureSNR(dim, benchSeed)
			})
		})
	}
}

// BenchmarkFig6_SFT regenerates the S_FT series of Figure 6.
func BenchmarkFig6_SFT(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureSFT(dim, benchSeed)
			})
		})
	}
}

// BenchmarkFig6_HostSort regenerates the sequential series of Figure 6.
func BenchmarkFig6_HostSort(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureHostSort(dim, benchSeed)
			})
		})
	}
}

// BenchmarkFig6_HostVerify measures the paper's other rejected
// baseline: distributed sort plus Theorem 1 verification at the host.
func BenchmarkFig6_HostVerify(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureHostVerify(dim, benchSeed)
			})
		})
	}
}

// BenchmarkTable1 regenerates the Section 5 component-time table: a
// sweep plus least-squares fit of the paper's formula shapes. The
// fitted coefficients are reported as metrics.
func BenchmarkTable1(b *testing.B) {
	var fit experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = experiments.Table1([]int{2, 3, 4, 5, 6}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.SFT.Comm[0].Coef, "sft-comm-lg2N")
	b.ReportMetric(fit.SFT.Comp[0].Coef, "sft-comp-N")
	b.ReportMetric(fit.Sequential.Comm[0].Coef, "seq-comm-N")
	b.ReportMetric(fit.Sequential.Comp[0].Coef, "seq-comp-NlgN")
}

// BenchmarkFig7 regenerates the Figure 7 projection: fit on small
// cubes, extrapolate to large ones, locate the crossover.
func BenchmarkFig7(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		fit, err := experiments.Table1([]int{2, 3, 4, 5, 6}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.Figure7(fit, 2, 16)
		if err != nil {
			b.Fatal(err)
		}
		crossover = res.MeasuredCrossover
	}
	b.ReportMetric(float64(crossover), "crossoverN")
	paper, err := costmodel.Crossover(costmodel.PaperSFT(), costmodel.PaperSequential(), 2, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(paper), "paper-crossoverN")
}

// BenchmarkFig8_BlockFT regenerates the fault-tolerant block-sort
// series of Figure 8 (m = 64 keys per node).
func BenchmarkFig8_BlockFT(b *testing.B) {
	for _, dim := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d/m=64", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureBlockFT(dim, 64, benchSeed)
			})
		})
	}
}

// BenchmarkFig8_BlockNR regenerates the unreliable block-sort series.
func BenchmarkFig8_BlockNR(b *testing.B) {
	for _, dim := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d/m=64", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureBlockNR(dim, 64, benchSeed)
			})
		})
	}
}

// BenchmarkFig8_HostBlocks regenerates the host series of Figure 8.
func BenchmarkFig8_HostBlocks(b *testing.B) {
	for _, dim := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d/m=64", 1<<uint(dim)), func(b *testing.B) {
			benchMeasure(b, func() (experiments.Measurement, error) {
				return experiments.MeasureHostSortBlocks(dim, 64, benchSeed)
			})
		})
	}
}

// BenchmarkAblationPiggyback measures the S_FT main loop with checks
// piggybacked on the sort's own messages (the paper's design)...
func BenchmarkAblationPiggyback(b *testing.B) {
	benchAblation(b, false)
}

// BenchmarkAblationSeparateMessages ...versus shipping every view in
// its own message, which doubles the main-loop message count. The
// vticks gap is the cost the piggybacking design avoids.
func BenchmarkAblationSeparateMessages(b *testing.B) {
	benchAblation(b, true)
}

func benchAblation(b *testing.B, separate bool) {
	const dim = 4
	n := 1 << uint(dim)
	keys := experiments.Keys(n, benchSeed)
	var last *core.Outcome
	for i := 0; i < b.N; i++ {
		nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 10 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		opts := make([]core.Options, n)
		for id := range opts {
			opts[id].SeparateCheckMessages = separate
		}
		oc, err := core.RunWithOptions(nw, keys, opts)
		if err != nil {
			b.Fatal(err)
		}
		if oc.Detected() {
			b.Fatal("spurious detection")
		}
		last = oc
	}
	b.ReportMetric(float64(last.Result.Makespan()), "vticks")
	b.ReportMetric(float64(last.Result.Metrics.TotalMsgs()), "msgs")
	b.ReportMetric(float64(last.Result.Metrics.TotalBytes()), "wirebytes")
}

// BenchmarkE6Coverage runs the Section 4 error-coverage sweep (every
// strategy at every node of an 8-node cube) and reports the detection
// counts. Zero silent-wrong runs is the Theorem 3 reproduction.
func BenchmarkE6Coverage(b *testing.B) {
	keys := experiments.Keys(8, benchSeed)
	var sum fault.Summary
	for i := 0; i < b.N; i++ {
		results, err := fault.Coverage(3, keys, fault.AllStrategies(), 999, 60*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		sum = fault.Summarize(results)
		if sum.SilentWrong != 0 {
			b.Fatalf("fail-stop guarantee violated: %+v", sum)
		}
	}
	b.ReportMetric(float64(sum.Detected), "detected")
	b.ReportMetric(float64(sum.CorrectDespiteFault), "harmless")
	b.ReportMetric(float64(sum.SilentWrong), "silent-wrong")
}
