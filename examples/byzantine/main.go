// Byzantine survival: inject a maliciously lying processor into the
// fault-tolerant sort and watch the constraint predicate catch it.
//
//	go run ./examples/byzantine
//
// Node 5 participates in the protocol but, from stage 1 on, reports a
// different value for its own entry to every neighbor — the
// "split lie" that defeats naive checking, because each receiver's
// local view stays plausible. The consistency predicate Φ_C relays
// every value along vertex-disjoint paths, so the conflicting copies
// meet at an honest node and the system fail-stops with a diagnosis.
// Then the same attack is run against the unreliable S_NR, which
// happily delivers a corrupted "sorted" list.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

func main() {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	const dim = 3
	const faultyNode = 5

	spec := fault.Spec{
		Node:          faultyNode,
		Strategy:      fault.SplitLie,
		ActivateStage: 1, // honest through the first exchange (assumption 5)
		LieValue:      500,
	}

	// --- S_FT: the attack is detected -------------------------------
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	opts := make([]core.Options, 1<<dim)
	opts[faultyNode] = core.Options{SkipChecks: true, Tamper: spec.Tamper()}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S_FT with Byzantine node %d (%v):\n", faultyNode, spec.Strategy)
	if !oc.Detected() {
		log.Fatal("attack went undetected — this should be impossible (Theorem 3)")
	}
	for _, he := range oc.HostErrors {
		fmt.Printf("  host received ERROR from node %d at stage %d: %s predicate — %s\n",
			he.Node, he.Stage, he.Predicate, he.Detail)
	}
	fmt.Println("  system fail-stopped; no output delivered. Correctness preserved.")

	// --- S_NR: the same attack corrupts silently --------------------
	r, err := fault.InjectSNR(dim, keys, fault.Spec{
		Node: faultyNode, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 500,
	}, 200*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nS_NR with the same Byzantine node: verdict = %v\n", r.Verdict)
	if r.Verdict == fault.SilentWrong {
		fmt.Println("  S_NR delivered a wrong result with no indication anything failed.")
	}

	// Sanity: the honest run still works.
	nw2, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	oc2, err := core.Run(nw2, keys)
	if err != nil {
		log.Fatal(err)
	}
	if oc2.Detected() {
		log.Fatal("honest run misdetected")
	}
	if err := checker.Verify(keys, oc2.Sorted, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHonest rerun:", oc2.Sorted)
}
