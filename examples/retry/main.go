// Retry: what "reliable communication of diagnostic information is
// provided to the system so that appropriate actions may be taken"
// (the paper's §1) looks like in practice — with the appropriate
// actions now taken by the recovery supervisor behind
// reliablesort.Sort's AutoRecover option.
//
//	go run ./examples/retry
//
// Act 1: a node suffers a *transient* Byzantine episode — a cosmic-ray
// bit flip that corrupts its messages for one run. The constraint
// predicate detects it and fail-stops; the supervisor diagnoses the
// evidence, backs off, and re-runs. The episode has passed, the second
// attempt verifies clean, and the caller never saw a wrong answer.
//
// Act 2: the same node is *persistently* faulty — it lies again on the
// retry. Two consecutive attempts accuse the same prime suspect, so
// the supervisor quarantines it: the survivors are remapped onto the
// next-smaller subcube (the host-held input is the reliable
// checkpoint) and the degraded cube finishes the job.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blocksort"
	"repro/internal/fault"
	"repro/internal/reliablesort"
)

func run(title string, persistent bool) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5, 31, -6, 14, 0, 22, -9, 17, 1}
	const culprit = 6

	fmt.Printf("=== %s ===\n", title)
	inject := func(attempt, dim int, physical []int) []blocksort.Options {
		opts := make([]blocksort.Options, 1<<uint(dim))
		if !persistent && attempt > 0 {
			return opts // the episode has passed
		}
		for logical, ph := range physical {
			if ph == culprit {
				spec := fault.Spec{Node: logical, Strategy: fault.ViewLie, ActivateStage: 1, LieValue: -404}
				opts[logical] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
			}
		}
		return opts
	}

	out, stats, err := reliablesort.Sort(keys, reliablesort.Options{
		Dim:         3,
		RecvTimeout: 200 * time.Millisecond,
		AutoRecover: true,
		MaxAttempts: 5,
		Inject:      inject,
	})
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}

	for _, a := range stats.Recovery.Attempts {
		fmt.Printf("attempt %d on a dim-%d cube", a.Index+1, a.Dim)
		if a.Backoff > 0 {
			fmt.Printf(" (after %v backoff)", a.Backoff.Round(time.Millisecond))
		}
		if a.Verified {
			fmt.Println(": verified clean")
			continue
		}
		fmt.Println(": fail-stop")
		for _, he := range a.HostErrors {
			fmt.Printf("  node %d, stage %d: %s predicate — %s\n", he.Node, he.Stage, he.Predicate, he.Detail)
		}
		if len(a.Suspects) > 0 {
			fmt.Printf("  prime suspect: physical node %d\n", a.Suspects[0].Node)
		}
		if a.Quarantined >= 0 {
			fmt.Printf("  appropriate action: quarantine node %d, shrink to dim %d\n", a.Quarantined, a.Dim-1)
		} else {
			fmt.Println("  appropriate action: retry")
		}
	}
	fmt.Printf("result: %v\n", out)
	fmt.Printf("cost: %d attempts, %d wasted ticks, quarantined %v\n\n",
		stats.Attempts, stats.Recovery.WastedCost, stats.Recovery.Quarantined)
}

func main() {
	run("Act 1: transient episode — retry suffices", false)
	run("Act 2: persistent fault — quarantine and shrink", true)
}
