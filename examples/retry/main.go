// Retry: what "reliable communication of diagnostic information is
// provided to the system so that appropriate actions may be taken"
// (the paper's §1) looks like in practice.
//
//	go run ./examples/retry
//
// A node suffers a *transient* Byzantine episode — a cosmic-ray bit
// flip that corrupts its messages for one run. The constraint
// predicate detects it and fail-stops; the host reads the diagnosis
// (which node, which stage, which predicate) and takes the appropriate
// action: re-run the sort. The episode has passed, the second run
// verifies clean, and the caller never saw a wrong answer.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

func main() {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	const dim = 3

	// The transient fault: active only on the first attempt.
	episode := fault.Spec{
		Node:          6,
		Strategy:      fault.ViewLie,
		ActivateStage: 1,
		LieValue:      -404,
	}

	for attempt := 1; ; attempt++ {
		nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 200 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		opts := make([]core.Options, 1<<dim)
		if attempt == 1 {
			opts[episode.Node] = core.Options{SkipChecks: true, Tamper: episode.Tamper()}
		}
		oc, err := core.RunWithOptions(nw, keys, opts)
		if err != nil {
			log.Fatal(err)
		}
		if !oc.Detected() {
			if err := checker.Verify(keys, oc.Sorted, true); err != nil {
				log.Fatalf("undetected corruption — impossible under Theorem 3: %v", err)
			}
			fmt.Printf("attempt %d: verified result %v\n", attempt, oc.Sorted)
			return
		}
		fmt.Printf("attempt %d: fail-stop. Diagnostics the host received:\n", attempt)
		for _, he := range oc.HostErrors {
			fmt.Printf("  node %d, stage %d: %s predicate — %s\n", he.Node, he.Stage, he.Predicate, he.Detail)
		}
		fmt.Println("  appropriate action: retry")
		if attempt >= 3 {
			log.Fatal("fault persisted across retries; escalating")
		}
	}
}
