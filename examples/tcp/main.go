// TCP: the same fault-tolerant sort, over real sockets. The node
// programs are written against the transport abstraction, so swapping
// the channel simulator for genuine loopback TCP connections is a
// one-line change — and because virtual time is carried in the frames,
// the run costs exactly the same virtual ticks either way.
//
//	go run ./examples/tcp
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

func main() {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}

	// Over real TCP loopback connections.
	tcp, err := tcpnet.New(tcpnet.Config{Dim: 3, RecvTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	ocTCP, err := core.Run(tcp, keys)
	if err != nil {
		log.Fatal(err)
	}
	if ocTCP.Detected() {
		log.Fatalf("fault detected: %v", ocTCP.HostErrors)
	}
	fmt.Println("sorted over TCP:    ", ocTCP.Sorted)
	fmt.Printf("virtual time:        %d ticks (%d msgs, %d bytes on the wire)\n",
		ocTCP.Result.Makespan(), ocTCP.Result.Metrics.TotalMsgs(), ocTCP.Result.Metrics.TotalBytes())

	// Same run on the channel simulator.
	sim, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	ocSim, err := core.Run(sim, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted on simulator:", ocSim.Sorted)
	fmt.Printf("virtual time:        %d ticks\n", ocSim.Result.Makespan())
	if ocTCP.Result.Makespan() == ocSim.Result.Makespan() {
		fmt.Println("virtual clocks agree exactly: the cost model is transport-independent")
	}
}
