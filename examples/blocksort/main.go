// Blocksort: the Figure 8 trade-off, hands on. Sort the same dataset
// three ways — unreliable block bitonic sort, fault-tolerant block
// bitonic sort, and ship-to-host sequential sort — and compare virtual
// run time and traffic.
//
//	go run ./examples/blocksort
//
// The punchline the paper closes with: once each node carries a block
// of keys, the reliability surcharge of S_FT is far cheaper than
// funneling the data through the host, even at modest cube sizes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/hostsort"
	"repro/internal/simnet"
)

const (
	dim       = 4  // 16 nodes
	blockSize = 64 // keys per node
	seed      = 1989
)

func main() {
	n := 1 << dim
	blocks := experiments.Blocks(n, blockSize, seed)
	all := hostsort.SortedBlocksFlat(blocks)

	type row struct {
		name     string
		makespan int64
		msgs     int64
		bytes    int64
	}
	var rows []row

	{ // Unreliable block bitonic sort.
		nw := mustNet()
		out, res, err := blocksort.RunNR(nw, blocks)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.AnyErr(); err != nil {
			log.Fatal(err)
		}
		mustSorted(all, hostsort.SortedBlocksFlat(out))
		rows = append(rows, row{"block S_NR (unreliable)", int64(res.Makespan()),
			res.Metrics.TotalMsgs(), res.Metrics.TotalBytes()})
	}
	{ // Fault-tolerant block bitonic sort.
		nw := mustNet()
		oc, err := blocksort.RunFT(nw, blocks)
		if err != nil {
			log.Fatal(err)
		}
		if oc.Detected() {
			log.Fatalf("spurious detection: %v", oc.HostErrors)
		}
		mustSorted(all, hostsort.SortedBlocksFlat(oc.SortedBlocks))
		rows = append(rows, row{"block S_FT (fault-tolerant)", int64(oc.Result.Makespan()),
			oc.Result.Metrics.TotalMsgs(), oc.Result.Metrics.TotalBytes()})
	}
	{ // Ship everything to the host and back.
		nw := mustNet()
		out, res, err := hostsort.RunHostSortBlocks(nw, blocks)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.AnyErr(); err != nil {
			log.Fatal(err)
		}
		mustSorted(all, hostsort.SortedBlocksFlat(out))
		rows = append(rows, row{"host sequential sort", int64(res.Makespan()),
			res.Metrics.TotalMsgs(), res.Metrics.TotalBytes()})
	}

	fmt.Printf("sorting %d keys (%d nodes × %d keys/node)\n\n", n*blockSize, n, blockSize)
	fmt.Printf("%-30s %14s %10s %12s\n", "algorithm", "ticks", "messages", "bytes")
	for _, r := range rows {
		fmt.Printf("%-30s %14d %10d %12d\n", r.name, r.makespan, r.msgs, r.bytes)
	}
	ftVsHost := float64(rows[1].makespan) / float64(rows[2].makespan)
	ftVsNR := float64(rows[1].makespan) / float64(rows[0].makespan)
	fmt.Printf("\nreliability surcharge over unreliable sort: %.2fx\n", ftVsNR)
	fmt.Printf("fault-tolerant sort vs host sort:           %.2fx (below 1.0 means S_FT wins)\n", ftVsHost)
}

func mustNet() *simnet.Network {
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	return nw
}

func mustSorted(in, out []int64) {
	if err := checker.Verify(in, out, true); err != nil {
		log.Fatal(err)
	}
}
