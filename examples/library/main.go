// Library: the one-call convenience API. Everything the other examples
// wire up by hand — cube sizing, padding to the power-of-two geometry,
// distribution, the fault-tolerant block sort, end-to-end verification —
// behind a single function that looks like sort.Slice but can never
// silently lie.
//
//	go run ./examples/library
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/reliablesort"
)

func main() {
	// An awkward, non-power-of-two workload.
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(rng.Intn(100000) - 50000)
	}

	sorted, stats, err := reliablesort.Sort(keys, reliablesort.Options{})
	if err != nil {
		log.Fatal(err) // a *FaultError here means the sort fail-stopped
	}
	fmt.Printf("sorted %d keys: first=%d last=%d (monotonic: %v)\n",
		len(sorted), sorted[0], sorted[len(sorted)-1],
		reliablesort.IsSorted(sorted, reliablesort.Options{}))
	fmt.Printf("geometry: %d nodes × %d keys/node, %d padding sentinels\n",
		stats.Nodes, stats.BlockLen, stats.Padded)
	fmt.Printf("cost: %d virtual ticks, %d messages, %d bytes\n",
		stats.Makespan, stats.Msgs, stats.Bytes)

	// Descending, forced onto a 3-cube.
	desc, _, err := reliablesort.Sort(keys[:10], reliablesort.Options{Descending: true, Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("descending head: %v\n", desc[:5])
}
