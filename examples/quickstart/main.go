// Quickstart: sort a list with the fault-tolerant distributed bitonic
// sort S_FT on a simulated 8-node hypercube multicomputer.
//
//	go run ./examples/quickstart
//
// The data begins distributed — one key per node, as in a real
// multicomputer application where sorting is a sub-problem and the
// keys were produced by an earlier parallel phase. The sort either
// completes with a verified correct result or fail-stops with a
// diagnosed error; it never silently returns a wrong permutation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

func main() {
	// A dimension-3 hypercube: 8 nodes, point-to-point links,
	// a reliable host for diagnostics.
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure 5 example list, one key per node.
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}

	oc, err := core.Run(nw, keys)
	if err != nil {
		log.Fatal(err)
	}
	if oc.Detected() {
		// Fail-stop: a constraint predicate fired somewhere.
		log.Fatalf("fault detected: %v %v", oc.Result.FirstNodeErr(), oc.HostErrors)
	}

	fmt.Println("input (node i holds keys[i]):", keys)
	fmt.Println("sorted across node labels:   ", oc.Sorted)
	fmt.Printf("virtual time: %d ticks; traffic: %d messages, %d bytes\n",
		oc.Result.Makespan(), oc.Result.Metrics.TotalMsgs(), oc.Result.Metrics.TotalBytes())
}
