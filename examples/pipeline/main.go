// Pipeline: sorting as a sub-problem of a larger distributed
// application — the setting the paper's introduction argues for.
//
//	go run ./examples/pipeline
//
// A 16-node multicomputer has just finished a (simulated) measurement
// phase: each node holds 128 local latency samples that never existed
// in one place. The analysis phase needs exact percentiles of the
// global distribution. Shipping everything to the host would serialize
// on the slow host channel; instead the nodes run the fault-tolerant
// block bitonic sort in place, after which the global order statistics
// are addressable by (node, offset) — the k-th smallest of the N·m
// samples lives at node k/m, offset k mod m — and the result is
// end-to-end verified by the constraint predicate.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/blocksort"
	"repro/internal/simnet"
)

const (
	dim       = 4   // 16 nodes
	blockSize = 128 // samples per node
)

func main() {
	n := 1 << dim
	total := n * blockSize

	// Measurement phase: data is born distributed. Simulate a heavy-
	// tailed latency distribution, different on every node.
	rng := rand.New(rand.NewSource(7))
	blocks := make([][]int64, n)
	for id := range blocks {
		blocks[id] = make([]int64, blockSize)
		base := int64(100 + 10*id)
		for j := range blocks[id] {
			sample := base + int64(rng.ExpFloat64()*250)
			blocks[id][j] = sample
		}
	}

	// Analysis phase: reliable in-place distributed sort.
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	oc, err := blocksort.RunFT(nw, blocks)
	if err != nil {
		log.Fatal(err)
	}
	if oc.Detected() {
		log.Fatalf("fault detected during sort: %v %v", oc.Result.FirstNodeErr(), oc.HostErrors)
	}

	// Exact order statistics, addressed by (node, offset).
	percentile := func(p float64) int64 {
		k := int(p * float64(total-1))
		return oc.SortedBlocks[k/blockSize][k%blockSize]
	}
	fmt.Printf("global latency distribution over %d samples on %d nodes:\n", total, n)
	for _, p := range []float64{0.50, 0.90, 0.99, 0.999} {
		fmt.Printf("  p%-5g = %d\n", p*100, percentile(p))
	}
	fmt.Printf("\nvirtual time %d ticks; %d messages, %d bytes — no sample ever crossed the host channel\n",
		oc.Result.Makespan(), oc.Result.Metrics.TotalMsgs(), oc.Result.Metrics.TotalBytes())
}
