// Package repro reproduces McMillin & Ni, "Reliable Distributed
// Sorting Through the Application-Oriented Fault Tolerance Paradigm"
// (ICDCS 1989): a fault-tolerant distributed bitonic sort for
// hypercube multicomputers whose executable assertions (the constraint
// predicate Φ_P/Φ_F/Φ_C) turn Byzantine components into a fail-stop
// system.
//
// The implementation lives under internal/: see internal/core for the
// fault-tolerant sort S_FT, internal/sortnr for the unreliable
// baseline, internal/simnet for the simulated multicomputer, and
// DESIGN.md for the full inventory. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the
// binaries under cmd/ render them as text.
package repro
