// Command faultcoverage measures the detection-coverage matrix: every
// adversary class (Byzantine messages, absence, lying comparators,
// corrupting memory) swept across fault rates, cube dimensions, and
// both fault-tolerant algorithms (S_FT and the block sort), with each
// run classified as detected, correct-despite-fault, or SILENT-WRONG.
//
// The run self-checks Theorem 3: any SILENT-WRONG cell fails the
// command with a non-zero exit. The measured per-class detection
// fractions are folded into the recovery-aware cost model as a
// coverage-calibrated regime and reported next to the idealized one.
//
//	faultcoverage                         # default sweep + calibration
//	faultcoverage -dims 2 -runs 4         # quick smoke sweep
//	faultcoverage -json matrix.json       # write the matrix artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultcoverage:", err)
		os.Exit(1)
	}
}

// artifact is the JSON shape written by -json: the matrix, its
// per-class totals, the derived cost-model profile, and the
// self-check outcome.
type artifact struct {
	Cells       []experiments.CoverageCell
	Classes     []experiments.ClassCoverage
	Calibration costmodel.CoverageCalibration
	// EffectiveDetectFrac is the share-weighted detection fraction the
	// coverage-calibrated regime runs at.
	EffectiveDetectFrac float64
	// SilentWrong counts Theorem 3 escapes across the sweep; the
	// command exits non-zero unless it is 0.
	SilentWrong int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultcoverage", flag.ContinueOnError)
	dims := fs.String("dims", "2,3", "comma-separated cube dimensions to sweep")
	rates := fs.String("rates", "0.5,1", "fault rates for the comparison/memory classes")
	runs := fs.Int("runs", 8, "seeded injections per matrix cell")
	blockLen := fs.Int("blocklen", 2, "keys per node in the block-sort cells")
	seed := fs.Int64("seed", 1989, "sweep seed")
	timeout := fs.Duration("timeout", 150*time.Millisecond, "absence-detection timeout per run")
	lie := fs.Int64("lie", 1<<30, "lie value for message faults and stuck-at memory cells")
	mttf := fs.Float64("mttf", 1e6, "per-node MTTF (vticks) for the cost-model comparison")
	pfrac := fs.Float64("pfrac", 0.5, "persistent share of arrivals in the cost-model comparison")
	modelDim := fs.Int("modeldim", 10, "cube dimension the cost-model comparison prices")
	jsonPath := fs.String("json", "", "write the matrix + calibration as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dimList, err := parseInts(*dims)
	if err != nil {
		return fmt.Errorf("-dims: %w", err)
	}
	rateList, err := parseFloats(*rates)
	if err != nil {
		return fmt.Errorf("-rates: %w", err)
	}

	o := obs.New(obs.NewRegistry(), 64)
	cells, err := experiments.MeasureCoverage(experiments.CoverageSweep{
		Dims:     dimList,
		Rates:    rateList,
		Runs:     *runs,
		BlockLen: *blockLen,
		Lie:      *lie,
		Seed:     *seed,
		Timeout:  *timeout,
	}, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", experiments.RenderCoverage(cells))

	m := o.Metrics()
	fmt.Fprintf(out, "obs counters (runs/detected/silent-wrong by class):")
	for c := obs.FaultClass(0); c < obs.NumFaultClasses; c++ {
		fmt.Fprintf(out, " %s=%d/%d/%d", c,
			m.FaultRuns[c].Value(), m.FaultDetected[c].Value(), m.FaultSilent[c].Value())
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out)

	// Coverage-calibrated cost regime: the measured per-class fractions
	// folded into the recovery model, against the idealized DetectFrac=1
	// baseline on the paper's S_FT formula model.
	cal, err := experiments.CalibrateCoverage(cells)
	if err != nil {
		return err
	}
	eff, err := cal.EffectiveDetectFrac()
	if err != nil {
		return err
	}
	base := costmodel.NewRecoveryModel(
		"S_FT+repair (ideal detection)",
		costmodel.PaperSFT(),
		costmodel.FaultRegime{MTTF: *mttf, PersistentFrac: *pfrac},
		costmodel.DefaultPolicyParams(),
		costmodel.DefaultCalibration(),
	)
	cov, err := base.WithCoverage("S_FT+repair (measured coverage)", cal)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Coverage-calibrated fault regime (MTTF %.3g vticks, dim %d)\n\n", *mttf, *modelDim)
	fmt.Fprintf(out, "  effective detection fraction: %.4f (share-weighted across classes)\n", eff)
	for _, cd := range cal.Classes {
		fmt.Fprintf(out, "    %-11s share %.3f detect %.3f\n", cd.Class, cd.Share, cd.DetectFrac)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-32s %14s %10s %10s %10s\n",
		"model", "E[ticks]", "attempts", "wasted", "overhead")
	for _, rm := range []*costmodel.RecoveryModel{base, cov} {
		bd, err := rm.Breakdown(*modelDim)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-32s %14.0f %10.3f %10.0f %9.2f%%\n",
			rm.CostName(), bd.ExpectedTicks, bd.ExpectedAttempts, bd.ExpectedWastedTicks, 100*bd.Overhead)
	}
	fmt.Fprintln(out)

	escapes := experiments.SilentWrongCells(cells)
	var silent int
	for _, c := range escapes {
		silent += c.Silent
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(artifact{
			Cells:               cells,
			Classes:             experiments.SummarizeCoverage(cells),
			Calibration:         cal,
			EffectiveDetectFrac: eff,
			SilentWrong:         silent,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "matrix written to %s\n", *jsonPath)
	}

	// Theorem 3 self-check: the sweep must contain no undetected wrong
	// output.
	if len(escapes) > 0 {
		for _, c := range escapes {
			fmt.Fprintf(out, "SILENT-WRONG: %s d%d %s rate %.2f — %d/%d runs\n",
				c.Algo, c.Dim, c.Label, c.Rate, c.Silent, c.Runs)
		}
		return fmt.Errorf("theorem 3 violated: %d silent-wrong runs in %d cells", silent, len(escapes))
	}
	fmt.Fprintln(out, "self-check passed: no silent-wrong outcomes across the sweep")
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}
