package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeArgs is the smallest sweep that still exercises every adversary
// class, both algorithms, the cost-model fold, and the self-check.
func smokeArgs(extra ...string) []string {
	args := []string{
		"-dims", "2", "-rates", "1", "-runs", "2", "-blocklen", "2",
		"-seed", "1989", "-timeout", "100ms",
	}
	return append(args, extra...)
}

func TestSmokeReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(smokeArgs(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Detection-coverage matrix",
		"cmp-persistent",
		"mem-wipe",
		"Per-class totals",
		"obs counters",
		"effective detection fraction",
		"S_FT+repair (ideal detection)",
		"S_FT+repair (measured coverage)",
		"self-check passed: no silent-wrong outcomes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SILENT-WRONG:") {
		t.Errorf("self-check reported escapes:\n%s", out)
	}
}

func TestJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	var buf bytes.Buffer
	if err := run(smokeArgs("-json", path), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matrix written to") {
		t.Errorf("missing artifact note in:\n%s", buf.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	// 9 message strategies (one of them absence) + 2 cmp modes + 3 mem
	// modes at one rate, for two algorithms at one dimension.
	if len(art.Cells) != 28 {
		t.Errorf("artifact cells = %d, want 28", len(art.Cells))
	}
	if len(art.Classes) != 4 {
		t.Errorf("artifact classes = %d, want 4", len(art.Classes))
	}
	if art.SilentWrong != 0 {
		t.Errorf("artifact silent-wrong = %d", art.SilentWrong)
	}
	if art.EffectiveDetectFrac <= 0 || art.EffectiveDetectFrac > 1 {
		t.Errorf("effective detect frac = %v", art.EffectiveDetectFrac)
	}
	if len(art.Calibration.Classes) != 4 {
		t.Errorf("calibration classes = %+v", art.Calibration.Classes)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-dims", "x"},
		{"-dims", ""},
		{"-rates", "often"},
		{"-rates", "2"}, // outside (0,1]
		{"-dims", "0"},  // below the sweep's minimum dimension
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
