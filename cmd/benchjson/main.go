// Command benchjson runs the paper's measurement suite under the Go
// benchmark harness and emits a machine-readable JSON report: for each
// point the wall-clock ns/op and allocs/op (simulator performance)
// plus the paper-facing virtual-tick series (vticks, vcomm, vcomp,
// msgs, wirebytes), which is what the figures plot.
//
// The two acceptance points carry embedded pre-optimization baselines
// (medians of three 30-iteration runs on the reference machine) so the
// report doubles as a before/after record:
//
//	go run ./cmd/benchjson -o BENCH_PR7.json
//
// With -baseline pointing at a committed report, the run additionally
// fails if any Fig6_SFT or Fig8_BlockFT point's allocs_per_op regressed
// against it — the CI bench-regression gate.
//
// See EXPERIMENTS.md ("Performance methodology") for how to read the
// output and why the virtual-tick columns must only change when a PR
// deliberately re-pins them (as the digest fast-path PR does).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/wire"
)

// Point is one benchmark result row.
type Point struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`

	// Paper-facing virtual-time series: identical across performance
	// changes by construction (byte-identical wire encodings).
	VTicks    int64 `json:"vticks"`
	VComm     int64 `json:"vcomm"`
	VComp     int64 `json:"vcomp"`
	Msgs      int64 `json:"msgs"`
	WireBytes int64 `json:"wirebytes"`
}

// Acceptance is a before/after comparison against an embedded
// pre-optimization baseline.
type Acceptance struct {
	Name              string  `json:"name"`
	BaselineNsPerOp   int64   `json:"baseline_ns_per_op"`
	NsPerOp           int64   `json:"ns_per_op"`
	ImprovementPct    float64 `json:"improvement_pct"`
	BaselineAllocsOp  int64   `json:"baseline_allocs_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
}

// Report is the full output document.
type Report struct {
	Suite      string       `json:"suite"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Seed       int64        `json:"seed"`
	Points     []Point      `json:"points"`
	Acceptance []Acceptance `json:"acceptance"`
}

const benchSeed = 1989

// baseline holds the pre-optimization numbers for the acceptance
// points, measured immediately before the digest fast path and the
// data-parallel merge landed (same machine, Linux amd64). They are
// embedded so the report is self-contained.
var baseline = map[string]struct {
	nsPerOp  int64
	allocsOp int64
}{
	"Fig6_SFT/N=32":          {nsPerOp: 1415392, allocsOp: 2042},
	"Fig8_BlockFT/N=16/m=64": {nsPerOp: 4875750, allocsOp: 1777},
}

// suite enumerates the measured points: the Figure 6 series (one key
// per node) and the Figure 8 block series (m = 64 keys per node).
type benchCase struct {
	name string
	n    int
	m    int
	run  func() (experiments.Measurement, error)
}

func suite() []benchCase {
	var cases []benchCase
	for _, dim := range []int{2, 3, 4, 5} {
		d := dim
		n := 1 << uint(d)
		cases = append(cases,
			benchCase{fmt.Sprintf("Fig6_SNR/N=%d", n), n, 1, func() (experiments.Measurement, error) {
				return experiments.MeasureSNR(d, benchSeed)
			}},
			benchCase{fmt.Sprintf("Fig6_SFT/N=%d", n), n, 1, func() (experiments.Measurement, error) {
				return experiments.MeasureSFT(d, benchSeed)
			}},
			benchCase{fmt.Sprintf("Fig6_HostSort/N=%d", n), n, 1, func() (experiments.Measurement, error) {
				return experiments.MeasureHostSort(d, benchSeed)
			}},
		)
	}
	for _, dim := range []int{2, 3, 4} {
		d := dim
		n := 1 << uint(d)
		cases = append(cases,
			benchCase{fmt.Sprintf("Fig8_BlockNR/N=%d/m=64", n), n, 64, func() (experiments.Measurement, error) {
				return experiments.MeasureBlockNR(d, 64, benchSeed)
			}},
			benchCase{fmt.Sprintf("Fig8_BlockFT/N=%d/m=64", n), n, 64, func() (experiments.Measurement, error) {
				return experiments.MeasureBlockFT(d, 64, benchSeed)
			}},
			benchCase{fmt.Sprintf("Fig8_HostBlocks/N=%d/m=64", n), n, 64, func() (experiments.Measurement, error) {
				return experiments.MeasureHostSortBlocks(d, 64, benchSeed)
			}},
		)
	}
	return cases
}

// microSuite enumerates the predicate/merge microbenchmarks exported
// alongside the protocol points: the Φ_F slow paths (map and
// two-pointer feasibility), the digest fast path (steady-state compare
// and from-scratch maintenance), and the sequential vs parallel
// merge-split. Micro rows have no virtual-time series (vticks = 0).
type microCase struct {
	name string
	n    int
	run  func(b *testing.B)
}

func microSuite() []microCase {
	const n = 4096
	rng := rand.New(rand.NewSource(benchSeed))
	prev := make([]int64, n)
	for i := range prev {
		prev[i] = int64(rng.Intn(n / 2)) // duplicates keep the map path honest
	}
	cur := append([]int64{}, prev...)
	rng.Shuffle(n, func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
	sortedPrev, _ := bitonic.MergeSortCount(prev)
	sortedCur, _ := bitonic.MergeSortCount(cur)
	prevDig, curDig := wire.DigestOf(prev), wire.DigestOf(cur)

	const mm = 1 << 15
	a := make([]int64, mm)
	b2 := make([]int64, mm)
	for i := range a {
		a[i] = int64(2 * i)
		b2[i] = int64(2*i + 1)
	}
	dst := make([]int64, 2*mm)

	return []microCase{
		{fmt.Sprintf("Micro_PhiF_Map/n=%d", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := core.Feasibility(prev, cur); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("Micro_PhiF_TwoPointer/n=%d", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := core.FeasibilityTwoPointer(sortedPrev, sortedCur); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("Micro_PhiF_DigestCompare/n=%d", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if prevDig != curDig {
					b.Fatal("digests of equal multisets differ")
				}
			}
		}},
		{fmt.Sprintf("Micro_Digest_Maintain/n=%d", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if wire.DigestOf(cur) != prevDig {
					b.Fatal("digest mismatch")
				}
			}
		}},
		{fmt.Sprintf("Micro_MergeSplit_Seq/m=%d", mm), mm, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := bitonic.MergeSplitInto(dst[:0], a, b2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("Micro_MergeSplit_Par/m=%d", mm), mm, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := bitonic.MergeSplitParallelInto(dst[:0], a, b2, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

func main() {
	out := flag.String("o", "BENCH_PR7.json", "output file ('-' for stdout)")
	basePath := flag.String("baseline", "", "committed report to gate allocs_per_op regressions against (Fig6_SFT and Fig8_BlockFT points)")
	flag.Parse()

	rep := Report{
		Suite:     "reliable-distributed-sorting paper benchmarks",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      benchSeed,
	}
	for _, c := range suite() {
		var last experiments.Measurement
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := c.run()
				if err != nil {
					runErr = err
					b.FailNow()
				}
				last = m
			}
		})
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", c.name, runErr)
			os.Exit(1)
		}
		p := Point{
			Name:        c.name,
			N:           c.n,
			M:           c.m,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			VTicks:      int64(last.Makespan),
			VComm:       int64(last.Comm),
			VComp:       int64(last.Comp),
			Msgs:        last.Msgs,
			WireBytes:   last.Bytes,
		}
		rep.Points = append(rep.Points, p)
		if base, ok := baseline[c.name]; ok {
			rep.Acceptance = append(rep.Acceptance, Acceptance{
				Name:              c.name,
				BaselineNsPerOp:   base.nsPerOp,
				NsPerOp:           p.NsPerOp,
				ImprovementPct:    pctDrop(base.nsPerOp, p.NsPerOp),
				BaselineAllocsOp:  base.allocsOp,
				AllocsPerOp:       p.AllocsPerOp,
				AllocReductionPct: pctDrop(base.allocsOp, p.AllocsPerOp),
			})
		}
		fmt.Fprintf(os.Stderr, "%-28s %9d ns/op %7d allocs/op %10d vticks\n",
			c.name, p.NsPerOp, p.AllocsPerOp, p.VTicks)
	}

	for _, c := range microSuite() {
		r := testing.Benchmark(c.run)
		p := Point{
			Name:        c.name,
			N:           c.n,
			M:           c.n,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Points = append(rep.Points, p)
		fmt.Fprintf(os.Stderr, "%-28s %9d ns/op %7d allocs/op\n",
			c.name, p.NsPerOp, p.AllocsPerOp)
	}

	if *basePath != "" {
		if err := gateAllocs(*basePath, rep.Points); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// gateAllocs fails when any Fig6_SFT or Fig8_BlockFT point allocates
// more per op than the committed baseline report says it did. Alloc
// counts are deterministic (unlike ns/op), so exceeding the committed
// number is a real regression, not noise.
func gateAllocs(path string, points []Point) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	want := make(map[string]int64, len(base.Points))
	for _, p := range base.Points {
		want[p.Name] = p.AllocsPerOp
	}
	var bad []string
	for _, p := range points {
		if !strings.HasPrefix(p.Name, "Fig6_SFT") && !strings.HasPrefix(p.Name, "Fig8_BlockFT") {
			continue
		}
		b, ok := want[p.Name]
		if !ok {
			continue
		}
		if p.AllocsPerOp > b {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op > baseline %d", p.Name, p.AllocsPerOp, b))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocs_per_op regression vs %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	return nil
}

// pctDrop returns how much lower now is than base, in percent.
func pctDrop(base, now int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-now) / float64(base)
}
