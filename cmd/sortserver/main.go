// Command sortserver runs the multi-tenant sort-as-a-service daemon:
// a long-running process accepting concurrent sort jobs over HTTP/JSON
// and (optionally) the length-prefixed streaming wire protocol, running
// each through the fault-tolerant distributed sort with AutoRecover and
// spares on a pre-warmed pooled transport, and returning verified
// results with per-job statistics.
//
//	sortserver -listen localhost:9199
//	sortserver -listen :0 -stream.listen :0 -transport tcpnet -chaos
//	sortserver -tenants 'batch=1,interactive=4' -concurrency 8 -warm 3
//
// Endpoints on -listen:
//
//	POST /sort           {"tenant","keys","descending","dim","inject"}
//	GET  /stats          pool/queue/outcome summary
//	GET  /metrics        fleet Prometheus text (or ?json=1)
//	GET  /debug/journal  job-lifecycle journal
//	GET  /healthz        liveness
//
// The process drains gracefully on SIGINT/SIGTERM: admission stops,
// queued jobs finish, the transport pool closes, then it exits.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flag"
	"repro/internal/reliablesort"
	"repro/internal/server"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sortserver:", err)
		os.Exit(1)
	}
}

// parseWeights parses "a=3,b=1" tenant weight lists.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant weight %q: want name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant weight %q: positive integer required", part)
		}
		out[name] = w
	}
	return out, nil
}

// newNetFor returns the transport constructor for -transport.
func newNetFor(name string) (func(cfg reliablesort.NetConfig) (transport.Network, error), error) {
	switch name {
	case "simnet":
		return func(cfg reliablesort.NetConfig) (transport.Network, error) {
			return simnet.New(simnet.Config{
				Dim: cfg.Dim, Spares: cfg.Spares, RecvTimeout: cfg.RecvTimeout,
				Obs: cfg.Obs, Flight: cfg.Flight,
			})
		}, nil
	case "tcpnet":
		return func(cfg reliablesort.NetConfig) (transport.Network, error) {
			return tcpnet.New(tcpnet.Config{
				Dim: cfg.Dim, Spares: cfg.Spares, RecvTimeout: cfg.RecvTimeout,
				Obs: cfg.Obs, Flight: cfg.Flight,
			})
		}, nil
	}
	return nil, fmt.Errorf("unknown transport %q (want simnet or tcpnet)", name)
}

// run is the testable entry point. ready, when non-nil, receives the
// bound HTTP and stream addresses ("" when disabled) once the server
// is accepting; tests use it with ":0" listeners.
func run(args []string, stdout, stderr io.Writer, ready chan<- [2]string) error {
	fs := flag.NewFlagSet("sortserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "localhost:9199", "HTTP listen address")
	streamListen := fs.String("stream.listen", "", "stream-protocol listen address (empty = disabled)")
	transportName := fs.String("transport", "simnet", "transport backing the cubes: simnet or tcpnet")
	concurrency := fs.Int("concurrency", 4, "jobs sorting at once")
	queueDepth := fs.Int("queue.depth", 64, "per-tenant queue bound (beyond it: 429)")
	tenants := fs.String("tenants", "", "tenant dispatch weights, e.g. 'batch=1,interactive=4'")
	maxKeys := fs.Int("max.keys", 1<<20, "per-job key limit")
	spares := fs.Int("spares", 2, "spare nodes per job for recovery substitution")
	maxAttempts := fs.Int("max.attempts", 0, "recovery attempt budget per job (0 = default)")
	poolIdle := fs.Int("pool.idle", 4, "warm networks kept per cube geometry")
	warm := fs.Int("warm", 0, "pre-build this many pooled networks of -warm.dim before serving")
	warmDim := fs.Int("warm.dim", 2, "cube dimension to pre-warm")
	chaos := fs.Bool("chaos", false, "accept fault-injection requests (load generators, chaos tests)")
	noRecover := fs.Bool("no.recover", false, "disable AutoRecover: fail-stop jobs on first detected fault")
	recvTimeout := fs.Duration("recv.timeout", 5*time.Second, "absence-detection timeout per attempt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseWeights(*tenants)
	if err != nil {
		return err
	}
	newNet, err := newNetFor(*transportName)
	if err != nil {
		return err
	}

	s := server.New(server.Config{
		NewNetwork:      newNet,
		Concurrency:     *concurrency,
		QueueDepth:      *queueDepth,
		Weights:         weights,
		MaxKeys:         *maxKeys,
		RecvTimeout:     *recvTimeout,
		DisableRecovery: *noRecover,
		MaxAttempts:     *maxAttempts,
		Spares:          *spares,
		PoolIdle:        *poolIdle,
		AllowChaos:      *chaos,
	})
	if *warm > 0 {
		if err := s.Warm(*warmDim, *warm); err != nil {
			return fmt.Errorf("warm: %w", err)
		}
	}

	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(httpLn)
	fmt.Fprintf(stderr, "sortserver: HTTP on http://%s (transport %s, concurrency %d)\n",
		httpLn.Addr(), *transportName, *concurrency)

	var ss *server.StreamServer
	streamAddr := ""
	if *streamListen != "" {
		streamLn, err := net.Listen("tcp", *streamListen)
		if err != nil {
			return fmt.Errorf("stream.listen: %w", err)
		}
		ss = s.NewStreamServer(streamLn)
		go ss.Serve()
		streamAddr = streamLn.Addr().String()
		fmt.Fprintf(stderr, "sortserver: stream protocol on %s\n", streamAddr)
	}
	if ready != nil {
		ready <- [2]string{httpLn.Addr().String(), streamAddr}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(stderr, "sortserver: %v — draining\n", got)

	httpSrv.Close()
	if ss != nil {
		ss.Close()
	}
	s.Close()
	st := s.Stats()
	fmt.Fprintf(stdout, "sortserver: drained: %d submitted, %d verified, %d fault-stopped, %d exhausted, %d rejected; pool built %d reused %d discarded %d\n",
		st.Submitted, st.Verified, st.Faulted, st.Exhausted, st.Rejected,
		st.Pool.Built, st.Pool.Reused, st.Pool.Discarded)
	return nil
}
