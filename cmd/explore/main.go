// Command explore runs the exhaustive interleaving explorer: bounded
// schedule-space model checking of S_FT on small cubes, crossed with
// the full single-fault placement menu (message, absence, comparison,
// memory — fault.SingleFaultCases). Every realizable delivery
// interleaving of every case is executed and checked: fault-free
// branches must sort, faulted branches must be verified-or-escalated
// (Theorem 3's fail-stop guarantee). Any counterexample is shrunk to a
// 1-minimal schedule, written as a replayable reproducer artifact plus
// its forensic flight-recorder dump, and fails the command.
//
//	explore -dim 2                        # exhaust the dim-2 single-fault sweep
//	explore -dim 1 -maxdepth 8            # CI smoke: bounded depth
//	explore -dim 1 -weaken -case mem/     # demo: weakened checks yield a counterexample
//	explore -replay artifacts/ce.json     # re-run a recorded counterexample
//	explore -dim 2 -json explore-e9.json  # write the E9 stats artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/recovery/chaostest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	dim := fs.Int("dim", 2, "cube dimension to explore")
	caseFilter := fs.String("case", "", "only sweep cases whose name contains this substring")
	maxDepth := fs.Int("maxdepth", 0, "expand branches only above this decision depth (0 = exhaustive)")
	maxBranches := fs.Int("maxbranches", 0, "per-case branch cap (0 = unbounded)")
	weaken := fs.Bool("weaken", false, "disable every node's executable assertions (counterexample demo)")
	artifactDir := fs.String("artifacts", "explore-artifacts", "directory for counterexample reproducers and forensic dumps")
	jsonPath := fs.String("json", "", "write the sweep result as JSON")
	replayPath := fs.String("replay", "", "replay a reproducer artifact instead of sweeping")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replayPath != "" {
		return replay(*replayPath, out)
	}

	cfg := explore.Config{
		Dim:          *dim,
		MaxDepth:     *maxDepth,
		MaxBranches:  *maxBranches,
		WeakenChecks: *weaken,
		Obs:          obs.NewMetrics(obs.NewRegistry()),
	}
	if *caseFilter != "" {
		var cases []fault.Case
		for _, c := range fault.SingleFaultCases(*dim) {
			if strings.Contains(c.Name, *caseFilter) {
				cases = append(cases, c)
			}
		}
		if len(cases) == 0 {
			return fmt.Errorf("no case matches %q", *caseFilter)
		}
		cfg.Cases = cases
	}

	res, err := explore.Run(cfg)
	if err != nil {
		return err
	}
	render(out, res)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "result written to %s\n", *jsonPath)
	}

	if len(res.Violations) == 0 {
		fmt.Fprintf(out, "OK: %d branches across %d cases, zero unverified-and-unescalated branches\n",
			res.Branches, len(res.Cases))
		return nil
	}
	for i, v := range res.Violations {
		base := fmt.Sprintf("counterexample-%d-%s", i, sanitize(v.Case))
		rep := v.Reproducer(*dim, *weaken)
		if err := chaostest.WriteCounterexample(*artifactDir, base, rep, v.Dump); err != nil {
			return err
		}
		fmt.Fprintf(out, "counterexample: case %s broke %s: %s\n", v.Case, v.Invariant, v.Detail)
		fmt.Fprintf(out, "  shrunk to %d directives (from %d); artifact %s\n",
			len(v.Schedule), len(v.Full), *artifactDir+"/"+base+".json")
	}
	return fmt.Errorf("%d invariant counterexamples", len(res.Violations))
}

// render prints the per-case stats table and totals.
func render(out io.Writer, res *explore.Result) {
	fmt.Fprintf(out, "%-28s %9s %7s %10s %9s\n", "case", "branches", "pruned", "decisions", "maxdepth")
	for _, cs := range res.Cases {
		trunc := ""
		if cs.Truncated {
			trunc = " (truncated)"
		}
		fmt.Fprintf(out, "%-28s %9d %7d %10d %9d%s\n",
			cs.Case, cs.Branches, cs.Pruned, cs.Decisions, cs.MaxDepth, trunc)
	}
	fmt.Fprintf(out, "%-28s %9d %7d %10d %9d\n", "TOTAL", res.Branches, res.Pruned, res.Decisions, res.MaxDepth)
}

// replay re-runs a reproducer artifact and reports its diagnosis.
func replay(path string, out io.Writer) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := explore.ParseReproducer(buf)
	if err != nil {
		return err
	}
	diag, dump, err := chaostest.ReplayCounterexample(rep)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %s: case %s, invariant %s\n", path, rep.Case.Name, rep.Invariant)
	fmt.Fprintf(out, "  verdict %v, accused %d, evidence at stage %d iter %d\n",
		diag.Verdict, diag.Accused, diag.Stage, diag.Iter)
	if diag.DivOK {
		fmt.Fprintf(out, "  first divergence at stage %d iter %d\n", diag.DivStage, diag.DivIter)
	}
	if dump != nil {
		fmt.Fprintf(out, "  forensic dump: accuser %d, %d chain hops (render with cmd/forensic)\n",
			dump.Accuser, len(dump.Chain))
	}
	if rep.Invariant != "" {
		fmt.Fprintln(out, "counterexample reproduced")
	}
	return nil
}

// sanitize makes a case name filesystem-safe.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
