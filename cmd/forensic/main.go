// Command forensic renders a flight-recorder dump — the JSON a
// /debug/forensic endpoint serves or the chaos harness writes to its
// artifact directory — as a human-readable causal investigation:
//
//	forensic dump.json               # causal timeline + accusation chain
//	forensic -seq 1 dump.json        # pick a report from a JSON array
//	forensic -diff dump.json         # accused-vs-accuser digest diff
//	forensic -repro -seed 42 dump.json  # chaostest reproducer stanza
//	forensic -chrome dump.json       # Chrome trace_event JSON to stdout
//
// The timeline merges every snapshotted ring into one virtual-time
// ordered view, chain hops starred; the diff walks the accused's and
// the accuser's recorded view digests per (stage, iter) to the first
// divergence — the hop where the lie entered; the reproducer stanza is
// a ready-to-paste chaostest.Scenario for the run that produced the
// accusation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs/forensic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "forensic:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("forensic", flag.ContinueOnError)
	seq := fs.Int("seq", -1, "report index when the dump holds an array (default: last)")
	diff := fs.Bool("diff", false, "diff the accused node's recorded digests against the accuser's")
	repro := fs.Bool("repro", false, "emit a chaostest reproducer stanza for the accusation")
	seed := fs.Int64("seed", 0, "workload seed to stamp into the -repro stanza")
	chrome := fs.Bool("chrome", false, "emit Chrome trace_event JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: forensic [-seq N] [-diff] [-repro] [-chrome] dump.json")
	}
	rep, total, err := load(fs.Arg(0), *seq)
	if err != nil {
		return err
	}

	switch {
	case *chrome:
		buf, err := rep.ChromeTrace()
		if err != nil {
			return err
		}
		_, err = out.Write(buf)
		return err
	case *diff:
		renderDiff(out, rep)
	case *repro:
		renderRepro(out, rep, *seed)
	default:
		renderTimeline(out, rep, total)
	}
	return nil
}

// load reads a dump file holding either one report or a JSON array of
// them (the /debug/forensic and chaos-artifact formats), returning the
// selected report and how many the file held.
func load(path string, seq int) (*forensic.Report, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var many []*forensic.Report
	if err := json.Unmarshal(raw, &many); err != nil {
		var one forensic.Report
		if err2 := json.Unmarshal(raw, &one); err2 != nil {
			return nil, 0, fmt.Errorf("%s: neither a report nor an array of reports: %v", path, err2)
		}
		many = []*forensic.Report{&one}
	}
	if len(many) == 0 {
		return nil, 0, fmt.Errorf("%s: no reports", path)
	}
	if seq < 0 {
		return many[len(many)-1], len(many), nil
	}
	if seq >= len(many) {
		return nil, 0, fmt.Errorf("%s holds %d report(s), no index %d", path, len(many), seq)
	}
	return many[seq], len(many), nil
}

// nodeName renders a ring label (-1 is the host processor).
func nodeName(n int32) string {
	if n == -1 {
		return "host"
	}
	return fmt.Sprintf("n%d", n)
}

// hopDetail renders the kind-specific columns of a hop.
func hopDetail(h forensic.Hop) string {
	switch h.Kind {
	case "send":
		return fmt.Sprintf("%s -> %s s%d i%d", h.MsgKind, nodeName(h.Peer), h.Stage, h.Iter)
	case "recv":
		return fmt.Sprintf("%s <- %s s%d i%d", h.MsgKind, nodeName(h.Peer), h.Stage, h.Iter)
	case "phi":
		verdict := "FAIL"
		if h.Pass {
			verdict = "pass"
		}
		return fmt.Sprintf("%s %s s%d i%d dig=%x/%x", h.Predicate, verdict, h.Stage, h.Iter, h.DigSum, h.DigXor)
	case "merge-split":
		return fmt.Sprintf("s%d i%d compares=%d dig=%x/%x", h.Stage, h.Iter, h.Aux, h.DigSum, h.DigXor)
	case "accuse":
		return fmt.Sprintf("%s against %s s%d i%d", h.Predicate, nodeName(h.Peer), h.Stage, h.Iter)
	case "quarantine":
		return fmt.Sprintf("node %s attempt %d", nodeName(h.Peer), h.Iter)
	default:
		return ""
	}
}

// renderTimeline prints the report header, the merged virtual-time
// ordered event timeline (chain hops starred), and the reconstructed
// accusation chain newest-first.
func renderTimeline(out io.Writer, rep *forensic.Report, total int) {
	inFile := ""
	if total > 1 {
		inFile = fmt.Sprintf(" (file holds %d reports; -seq selects)", total)
	}
	fmt.Fprintf(out, "Forensic report seq %d%s — %s accuses %s: %s violated at stage %d iter %d (vticks %d)\n",
		rep.Seq, inFile, nodeName(rep.Accuser), nodeName(rep.Accused), rep.Predicate, rep.Stage, rep.Iter, rep.VTicks)
	if rep.Detail != "" {
		fmt.Fprintf(out, "  detail: %s\n", rep.Detail)
	}

	onChain := make(map[uint64]bool, len(rep.Chain))
	for _, h := range rep.Chain {
		onChain[uint64(h.ID)] = true
	}

	var all []forensic.Hop
	for _, log := range rep.Nodes {
		all = append(all, log.Events...)
		if log.Dropped > 0 {
			fmt.Fprintf(out, "  note: %s ring overwrote %d older event(s)\n", nodeName(log.Node), log.Dropped)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].VTicks != all[j].VTicks {
			return all[i].VTicks < all[j].VTicks
		}
		if all[i].Node != all[j].Node {
			return all[i].Node < all[j].Node
		}
		return all[i].ID.Seq() < all[j].ID.Seq()
	})

	fmt.Fprintf(out, "\nCausal timeline (%d events, * = on the accusation chain):\n", len(all))
	fmt.Fprintf(out, "%8s  %-5s %-12s %s\n", "vticks", "node", "event", "detail")
	for _, h := range all {
		star := " "
		if onChain[uint64(h.ID)] {
			star = "*"
		}
		fmt.Fprintf(out, "%8d %s %-5s %-12s %s\n", h.VTicks, star, nodeName(h.Node), h.Kind, hopDetail(h))
	}

	fmt.Fprintf(out, "\nAccusation chain (newest first, %d hop(s)", len(rep.Chain))
	if rep.ChainTruncated {
		fmt.Fprint(out, ", TRUNCATED by ring eviction")
	}
	fmt.Fprint(out, "):\n")
	for i, h := range rep.Chain {
		edge := ""
		if i+1 < len(rep.Chain) {
			if h.Remote != 0 {
				edge = "  <- wire"
			} else {
				edge = "  <- local"
			}
		}
		fmt.Fprintf(out, "  %2d. %-5s %-12s %s%s\n", i, nodeName(h.Node), h.Kind, hopDetail(h), edge)
	}
}

// digKey joins a digest-bearing hop to its protocol step.
type digKey struct {
	Stage, Iter int32
	Kind        string
}

// renderDiff prints, per (stage, iter), the view digests the accused
// and the accuser recorded, flagging divergences. Honest nodes
// exchanging honest data agree on every merged digest; the first
// mismatch is where the accused's story departs from the accuser's.
func renderDiff(out io.Writer, rep *forensic.Report) {
	digests := func(node int32) map[digKey]forensic.Hop {
		m := map[digKey]forensic.Hop{}
		for _, log := range rep.Nodes {
			if log.Node != node {
				continue
			}
			for _, h := range log.Events {
				if h.DigSum == 0 && h.DigXor == 0 {
					continue
				}
				// Last write per step wins: the ring is oldest-first.
				m[digKey{h.Stage, h.Iter, h.Kind}] = h
			}
		}
		return m
	}
	acd, acr := digests(rep.Accused), digests(rep.Accuser)

	keys := make([]digKey, 0, len(acd)+len(acr))
	seen := map[digKey]bool{}
	for k := range acd {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range acr {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		return a.Kind < b.Kind
	})

	fmt.Fprintf(out, "Digest diff — accused %s vs accuser %s (%s at stage %d iter %d):\n",
		nodeName(rep.Accused), nodeName(rep.Accuser), rep.Predicate, rep.Stage, rep.Iter)
	fmt.Fprintf(out, "%-5s %-4s %-12s %-18s %-18s\n", "stage", "iter", "event", nodeName(rep.Accused), nodeName(rep.Accuser))
	diverged := false
	for _, k := range keys {
		a, aok := acd[k]
		b, bok := acr[k]
		as, bs := "-", "-"
		if aok {
			as = fmt.Sprintf("%x/%x", a.DigSum, a.DigXor)
		}
		if bok {
			bs = fmt.Sprintf("%x/%x", b.DigSum, b.DigXor)
		}
		mark := ""
		if aok && bok && (a.DigSum != b.DigSum || a.DigXor != b.DigXor) {
			mark = "  DIVERGED"
			diverged = true
		}
		fmt.Fprintf(out, "%-5d %-4d %-12s %-18s %-18s%s\n", k.Stage, k.Iter, k.Kind, as, bs, mark)
	}
	if !diverged {
		fmt.Fprintln(out, "no common-step digest divergence recorded (the lie may have been absence, or the accused's ring held no overlapping steps)")
	}
}

// renderRepro emits a chaostest.Scenario literal reproducing the run
// shape the report came from: the accused physical node as the fault
// site, the cube dimension recovered from the snapshotted rings.
func renderRepro(out io.Writer, rep *forensic.Report, seed int64) {
	maxNode := int32(0)
	for _, log := range rep.Nodes {
		if log.Node > maxNode {
			maxNode = log.Node
		}
	}
	dim := 0
	for (1 << uint(dim)) <= int(maxNode) {
		dim++
	}
	site := rep.Accused
	if site < 0 {
		site = rep.Accuser
	}
	fmt.Fprintf(out, "// Reproducer for report %d: %s accused of violating %s at stage %d iter %d.\n",
		rep.Seq, nodeName(rep.Accused), rep.Predicate, rep.Stage, rep.Iter)
	fmt.Fprintf(out, "// Fill in the adversary fields (Strategy / CmpMode+Rate / MemMode+Rate)\n")
	fmt.Fprintf(out, "// from the failing scenario's name, then: Check(sc, Run(sc, Simnet))\n")
	fmt.Fprintf(out, "sc := chaostest.Scenario{\n")
	fmt.Fprintf(out, "\tSeed:        %d,\n", seed)
	fmt.Fprintf(out, "\tDim:         %d,\n", dim)
	fmt.Fprintf(out, "\tBlockLen:    2,\n")
	fmt.Fprintf(out, "\tSite:        %d,\n", site)
	fmt.Fprintf(out, "\tPersistent:  true,\n")
	fmt.Fprintf(out, "\tSpares:      1,\n")
	fmt.Fprintf(out, "\tMaxAttempts: 6,\n")
	fmt.Fprintf(out, "}\n")
}
