package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// dumpFile injects a deterministic key lie, captures the forensic
// report the detection produced, and writes it to disk the way the
// chaos harness and /debug/forensic do.
func dumpFile(t *testing.T) string {
	t.Helper()
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	spec := fault.Spec{Node: 5, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 7777}
	res, err := fault.InjectSFT(3, keys, spec, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != fault.Detected || res.Forensic == nil {
		t.Fatalf("injection not detected with a report: %+v", res)
	}
	buf, err := res.Forensic.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderTimelineDiffReproChrome(t *testing.T) {
	path := dumpFile(t)

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Forensic report", "Causal timeline", "Accusation chain", "accuse"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("timeline output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-diff", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Digest diff") {
		t.Errorf("diff output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-repro", "-seed", "42", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chaostest.Scenario{", "Seed:        42", "Dim:         3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("repro output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-chrome", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"traceEvents"`) {
		t.Errorf("chrome output:\n%s", out.String())
	}
}

func TestLoadErrors(t *testing.T) {
	if err := run([]string{"/nonexistent/dump.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("malformed file should error")
	}
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("no args should error")
	}
}
