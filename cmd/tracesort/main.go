// Command tracesort reproduces the paper's Figure 5: the worked
// example of S_FT sorting {10, 8, 3, 9, 4, 2, 7, 5} on an 8-node
// (dimension 3) hypercube. It prints each home subcube's verified
// bitonic sequence (LBS) at the end of every stage and the final
// verified result — exactly the quantities the figure annotates.
//
//	tracesort                  # the paper's example
//	tracesort -keys 5,1,4,2    # your own list (power-of-two length)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracesort:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracesort", flag.ContinueOnError)
	keysFlag := fs.String("keys", "10,8,3,9,4,2,7,5", "comma-separated keys, one per node (power-of-two count)")
	causal := fs.Bool("causal", false, "print each node's causal event id per stage (joins against forensic dumps)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	keys, err := parseKeys(*keysFlag)
	if err != nil {
		return err
	}
	if !hypercube.IsPow2(len(keys)) {
		return fmt.Errorf("key count %d is not a power of two", len(keys))
	}
	dim, err := hypercube.Log2(len(keys))
	if err != nil {
		return err
	}

	// The recorder consumes the unified stage-view stream (rather than
	// the deprecated core.Options.Trace hook) so each event carries the
	// causal id that joins it against forensic dumps.
	var rec trace.Recorder
	observer := obs.New(obs.NewRegistry(), 0)
	observer.Subscribe(&rec)
	flight := forensic.New(0)
	opts := make([]core.Options, len(keys))
	for id := range opts {
		opts[id] = core.Options{Obs: observer, Forensic: flight.Node(id)}
	}
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 10 * time.Second, Flight: flight})
	if err != nil {
		return err
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "S_FT worked example (Figure 5) — sorting %v on %d nodes\n", keys, len(keys))
	fmt.Fprintf(out, "Initial placement: node i holds keys[i].\n\n")
	fmt.Fprint(out, rec.Render())
	if *causal {
		fmt.Fprintf(out, "Causal event ids (node, stage -> flight-recorder id):\n")
		for _, ev := range rec.CausalEvents() {
			fmt.Fprintf(out, "  node %d stage %d: %d\n", ev.Node, ev.Stage, uint64(ev.Causal))
		}
		fmt.Fprintln(out)
	}
	if oc.Detected() {
		fmt.Fprintf(out, "ERROR signalled: %v %v\n", oc.Result.FirstNodeErr(), oc.HostErrors)
		return fmt.Errorf("unexpected fault detection on honest run")
	}
	sorted := append([]int64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Fprintf(out, "Result across nodes 0..%d: %v\n", len(keys)-1, oc.Sorted)
	fmt.Fprintf(out, "Expected:                 %v\n", sorted)
	return nil
}

func parseKeys(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad key %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no keys in %q", s)
	}
	return out, nil
}
