package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigure5Trace reproduces the paper's Figure 5 worked example end
// to end and pins the per-stage verified sequences.
func TestFigure5Trace(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"sorting [10 8 3 9 4 2 7 5] on 8 nodes",
		"SC[0..1]  LBS = [10 8]",
		"SC[2..3]  LBS = [3 9]",
		"SC[4..5]  LBS = [4 2]",
		"SC[6..7]  LBS = [7 5]",
		"SC[0..3]  LBS = [8 10 9 3]",
		"SC[4..7]  LBS = [2 4 7 5]",
		"SC[0..7]  LBS = [3 8 9 10 7 5 4 2]",
		"LBS = [2 3 4 5 7 8 9 10]",
		"Result across nodes 0..7: [2 3 4 5 7 8 9 10]",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, "DISAGREE") || strings.Contains(out, "ERROR") {
		t.Errorf("honest trace reported trouble:\n%s", out)
	}
}

func TestCustomKeys(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-keys", "4,3,2,1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Result across nodes 0..3: [1 2 3 4]") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-keys", "1,2,3"}, &buf); err == nil {
		t.Error("non-power-of-two count: want error")
	}
	if err := run([]string{"-keys", "x"}, &buf); err == nil {
		t.Error("garbage key: want error")
	}
	if err := run([]string{"-keys", ""}, &buf); err == nil {
		t.Error("empty keys: want error")
	}
}
