// Command recoverycost calibrates and validates the recovery-aware
// cost model: the Section 5 overhead analysis carried from detection
// to repair.
//
// It measures a seeded (dim × fault-load × spare-pool) sweep with the
// rate-based chaos injector, fits the model's empirical terms
// (detection fraction, waste fraction, per-attempt cost), checks the
// model's E[total vticks] prediction against the measured mean in
// every cell, and reprints the Figure 7 projection with repair cost
// layered onto the fitted S_FT model at chosen MTTFs:
//
//	recoverycost                          # default sweep + projection
//	recoverycost -dims 2 -runs 8          # quick smoke sweep
//	recoverycost -json model.json         # write the fitted model artifact
//	recoverycost -plot                    # ASCII overhead + projection charts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "recoverycost:", err)
		os.Exit(1)
	}
}

// artifact is the JSON shape written by -json: the fitted calibration
// plus the per-cell validation record, the machine-readable form of
// everything the text report states.
type artifact struct {
	Calibration experiments.RecoveryCalibration
	Validation  []experiments.RecoveryValidation
	Tolerance   float64
	CellsWithin int
	CellsTotal  int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("recoverycost", flag.ContinueOnError)
	dims := fs.String("dims", "2,3", "comma-separated cube dimensions to sweep")
	loads := fs.String("loads", "0.25,0.75", "fault loads: expected arrivals per fault-free attempt")
	spares := fs.String("spares", "0,2", "spare-pool sizes to sweep")
	runs := fs.Int("runs", 48, "supervised runs per sweep cell")
	blockLen := fs.Int("blocklen", 2, "keys per node in the sweep workload")
	maxAttempts := fs.Int("maxattempts", 5, "supervisor attempt budget per run")
	pfrac := fs.Float64("pfrac", 0.5, "persistent share of injected faults")
	seed := fs.Int64("seed", 1989, "sweep seed")
	tol := fs.Float64("tol", 0.10, "validation tolerance (fraction of measured)")
	fitDims := fs.String("fitdims", "2,3,4,5", "cube dimensions used to fit the fault-free cost models")
	mttfs := fs.String("mttf", "1e7,1e6,1e5", "per-node MTTFs (vticks) for the faulty Figure 7 projection")
	maxProjDim := fs.Int("maxprojdim", 16, "largest cube dimension in the projection")
	plotFlag := fs.Bool("plot", false, "also render ASCII charts")
	jsonPath := fs.String("json", "", "write the fitted model + validation as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dimList, err := parseInts(*dims)
	if err != nil {
		return fmt.Errorf("-dims: %w", err)
	}
	fitList, err := parseInts(*fitDims)
	if err != nil {
		return fmt.Errorf("-fitdims: %w", err)
	}
	spareList, err := parseInts(*spares)
	if err != nil {
		return fmt.Errorf("-spares: %w", err)
	}
	loadList, err := parseFloats(*loads)
	if err != nil {
		return fmt.Errorf("-loads: %w", err)
	}
	mttfList, err := parseFloats(*mttfs)
	if err != nil {
		return fmt.Errorf("-mttf: %w", err)
	}

	// Measure and calibrate.
	cells, err := experiments.MeasureRecovery(experiments.RecoverySweep{
		Dims:           dimList,
		Loads:          loadList,
		SparePools:     spareList,
		Runs:           *runs,
		BlockLen:       *blockLen,
		MaxAttempts:    *maxAttempts,
		PersistentFrac: *pfrac,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	cal, err := experiments.CalibrateRecovery(cells)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Recovery-aware cost model — calibration (seed %d, %d runs/cell)\n\n", *seed, *runs)
	fmt.Fprintf(out, "  per-attempt cost:   %s (R²=%.4f)\n", cal.Attempt, cal.AttemptR2)
	fmt.Fprintf(out, "  detection fraction: %.4f\n", cal.Calib.DetectFrac)
	fmt.Fprintf(out, "  waste fraction:     %.4f of a fault-free attempt per failure\n", cal.Calib.WasteFrac)
	fmt.Fprintf(out, "  persistent share:   %.2f\n\n", cal.PersistentFrac)

	// Validate model against every measured cell.
	o := obs.New(obs.NewRegistry(), 64)
	vals, err := experiments.ValidateRecovery(cells, cal, o, *tol)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Validation — modeled vs measured E[total vticks] (tolerance %.0f%%)\n\n", 100**tol)
	fmt.Fprintf(out, "%5s %6s %7s  %12s %12s %8s %7s\n",
		"dim", "load", "spares", "predicted", "measured", "relerr", "within")
	within := 0
	for _, v := range vals {
		mark := "no"
		if v.Within {
			mark = "yes"
			within++
		}
		fmt.Fprintf(out, "%5d %6.2f %7d  %12.0f %12.0f %7.1f%% %7s\n",
			v.Cell.Dim, v.Cell.Load, v.Cell.Spares, v.Predicted, v.Measured, 100*v.RelErr, mark)
	}
	m := o.Metrics()
	fmt.Fprintf(out, "\n%d/%d cells within tolerance (obs: %d recorded, %d within)\n\n",
		within, len(vals), m.CostModelCells.Value(), m.CostModelWithin.Value())

	if *plotFlag {
		chart, err := overheadChart(cells, cal)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, chart)
	}

	// Project: Figure 7 with repair cost at the requested MTTFs.
	fit, err := experiments.Table1(fitList, *seed)
	if err != nil {
		return err
	}
	fig, err := experiments.Figure7Faulty(fit, cal, mttfList, 2, *maxProjDim)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, fig.Render())
	fmt.Fprintln(out, "(crossover: measured = repair-aware at the worst swept MTTF, paper = fault-free fit)")
	fmt.Fprintln(out)
	if *plotFlag {
		chart, err := projectionChart(fig)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, chart)
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(artifact{
			Calibration: cal,
			Validation:  vals,
			Tolerance:   *tol,
			CellsWithin: within,
			CellsTotal:  len(vals),
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "fitted model written to %s\n", *jsonPath)
	}
	if within < len(vals) {
		return fmt.Errorf("%d of %d cells outside the %.0f%% tolerance", len(vals)-within, len(vals), 100**tol)
	}
	return nil
}

// overheadChart plots the calibrated model's expected overhead against
// fault load for each swept (dim, spares) curve, the repair-cost
// analogue of the paper's overhead-vs-faults discussion.
func overheadChart(cells []experiments.RecoveryCell, cal experiments.RecoveryCalibration) (string, error) {
	type curveKey struct{ dim, spares int }
	curves := map[curveKey][]experiments.RecoveryCell{}
	var order []curveKey
	for _, c := range cells {
		k := curveKey{c.Dim, c.Spares}
		if _, ok := curves[k]; !ok {
			order = append(order, k)
		}
		curves[k] = append(curves[k], c)
	}
	var series []plot.Series
	var ticks []string
	runes := []rune{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}
	if len(curves[order[0]]) < 2 {
		return "(overhead chart needs at least two fault loads)", nil
	}
	for i, k := range order {
		cs := curves[k]
		ys := make([]float64, len(cs))
		for j, c := range cs {
			bd, err := experiments.CellModel(c, cal).Breakdown(c.Dim)
			if err != nil {
				return "", err
			}
			ys[j] = 100 * bd.Overhead
		}
		if i == 0 {
			ticks = make([]string, len(cs))
			for j, c := range cs {
				ticks[j] = fmt.Sprintf("%.2f", c.Load)
			}
		}
		series = append(series, plot.Series{
			Name: fmt.Sprintf("d=%d spares=%d", k.dim, k.spares),
			Rune: runes[i%len(runes)],
			Y:    ys,
		})
	}
	return plot.Render(plot.Config{
		Title:  "Modeled recovery overhead vs fault load",
		XLabel: "arrivals per fault-free attempt",
		YLabel: "% over baseline",
		XTicks: ticks,
	}, series)
}

// projectionChart plots every model in the faulty Figure 7 projection,
// not just the first pair the generic figure plot shows.
func projectionChart(fig experiments.Figure7Result) (string, error) {
	ticks := make([]string, len(fig.Rows))
	for i, r := range fig.Rows {
		ticks[i] = strconv.Itoa(r.N)
	}
	runes := []rune{'F', '1', '2', '3', '4', '5', 'h'}
	var series []plot.Series
	for j, m := range fig.Models {
		ys := make([]float64, len(fig.Rows))
		for i, r := range fig.Rows {
			ys[i] = r.Totals[j]
		}
		r := runes[len(runes)-1]
		if j < len(runes)-1 {
			r = runes[j]
		}
		series = append(series, plot.Series{Name: m.CostName(), Rune: r, Y: ys})
	}
	return plot.Render(plot.Config{
		Title:  fig.Title,
		XLabel: "nodes",
		YLabel: "virtual ticks",
		XTicks: ticks,
		LogY:   true,
	}, series)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}
