package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeArgs is the smallest sweep that still exercises calibration,
// validation, projection, and plotting end to end.
func smokeArgs(extra ...string) []string {
	args := []string{
		"-dims", "2", "-loads", "0.4,0.8", "-spares", "0",
		"-runs", "6", "-fitdims", "2,3,4", "-mttf", "1e6", "-maxprojdim", "8",
		// Small samples wobble; the smoke test checks plumbing, not the
		// acceptance tolerance (that lives in the experiments suite).
		"-tol", "0.5",
	}
	return append(args, extra...)
}

func TestSmokeReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(smokeArgs(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"calibration",
		"detection fraction",
		"waste fraction",
		"Validation — modeled vs measured",
		"cells within tolerance",
		"Figure 7 (faulty regime)",
		"S_FT+repair MTTF=1e+06",
		"Crossover",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONArtifactAndPlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	var buf bytes.Buffer
	if err := run(smokeArgs("-json", path, "-plot"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Modeled recovery overhead vs fault load") {
		t.Errorf("missing overhead chart in:\n%s", out)
	}
	if !strings.Contains(out, "fitted model written to") {
		t.Errorf("missing artifact note in:\n%s", out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	if art.CellsTotal != 2 || len(art.Validation) != 2 {
		t.Errorf("artifact cells = %d validations = %d", art.CellsTotal, len(art.Validation))
	}
	if art.Calibration.Calib.DetectFrac <= 0 {
		t.Errorf("artifact missing calibration: %+v", art.Calibration)
	}
	if art.Validation[0].Measured <= 0 {
		t.Errorf("artifact missing measurement: %+v", art.Validation[0])
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-dims", "x"},
		{"-dims", ""},
		{"-loads", "fast"},
		{"-mttf", ","},
		{"-dims", "1"}, // below the sweep's minimum dimension
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
