// Command recoverdemo exercises the recovery supervisor end to end: it
// injects a chosen Byzantine strategy at a chosen node, runs
// reliablesort.Sort with AutoRecover, and narrates the supervision —
// per-attempt diagnostics, backoff waits, quarantine decisions, cube
// shrinks, and the final overhead accounting.
//
//	recoverdemo -strategy view-lie -site 6 -persistent
//	recoverdemo -strategy silence -site 3
//	recoverdemo -strategy key-lie -site 7 -persistent -attempts 6
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/blocksort"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "recoverdemo:", err)
		os.Exit(1)
	}
}

func strategyByName(name string) (fault.Strategy, error) {
	for _, st := range fault.AllStrategies() {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (try key-lie, split-lie, view-lie, wrong-compare, silence, mask-inflation, stale-replay)", name)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("recoverdemo", flag.ContinueOnError)
	strategy := fs.String("strategy", "view-lie", "Byzantine strategy to inject")
	site := fs.Int("site", 6, "physical node label of the fault site")
	persistent := fs.Bool("persistent", false, "fault persists across attempts (default: transient, first attempt only)")
	dim := fs.Int("dim", 3, "hypercube dimension (N = 2^dim nodes)")
	attempts := fs.Int("attempts", 5, "supervisor attempt budget")
	spares := fs.Int("spares", 0, "spare nodes pooled for substitution (labels 2^dim and up)")
	seed := fs.Int64("seed", 1989, "workload seed")
	lie := fs.Int64("lie", 999, "bogus value used by lying strategies")
	timeout := fs.Duration("timeout", 200*time.Millisecond, "absence-detection timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dim < 1 || *dim > 6 {
		return fmt.Errorf("dim %d out of range [1,6]", *dim)
	}
	if *spares < 0 {
		return fmt.Errorf("spares %d must be non-negative", *spares)
	}
	n := 1 << uint(*dim)
	if *site < 0 || *site >= n {
		return fmt.Errorf("site %d outside [0,%d)", *site, n)
	}
	st, err := strategyByName(*strategy)
	if err != nil {
		return err
	}
	keys := experiments.Keys(2*n, *seed)

	kind := "transient"
	if *persistent {
		kind = "persistent"
	}
	fmt.Fprintf(out, "Recovery supervision: %s %v fault at physical node %d, dim-%d cube, budget %d attempts",
		kind, st, *site, *dim, *attempts)
	if *spares > 0 {
		fmt.Fprintf(out, ", %d spare(s) pooled", *spares)
	}
	fmt.Fprintf(out, "\n\n")

	inject := func(attempt, d int, physical []int) []blocksort.Options {
		opts := make([]blocksort.Options, 1<<uint(d))
		if !*persistent && attempt > 0 {
			return opts
		}
		for logical, ph := range physical {
			if ph == *site {
				spec := fault.Spec{Node: logical, Strategy: st, ActivateStage: 1, LieValue: *lie}
				opts[logical] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
			}
		}
		return opts
	}

	sorted, stats, err := reliablesort.Sort(keys, reliablesort.Options{
		Dim:         *dim,
		RecvTimeout: *timeout,
		AutoRecover: true,
		MaxAttempts: *attempts,
		Spares:      *spares,
		Inject:      inject,
	})
	if err != nil {
		var ex *recovery.ExhaustedError
		if errors.As(err, &ex) {
			fmt.Fprintf(out, "supervision ESCALATED after %d attempts (quarantined %v", len(ex.Attempts), ex.Quarantined)
			if len(ex.Substitutions) > 0 {
				fmt.Fprintf(out, ", %d spare(s) consumed in vain", len(ex.Substitutions))
			}
			fmt.Fprintf(out, "):\n")
			narrate(out, ex.Attempts)
			fmt.Fprintf(out, "\nNo verified result was delivered — the fail-stop contract held to the end.\n")
			return err
		}
		return err
	}

	narrate(out, stats.Recovery.Attempts)
	fmt.Fprintf(out, "\nVerified result (%d keys): %v ...\n", len(sorted), sorted[:min(8, len(sorted))])
	rep := stats.Recovery
	fmt.Fprintf(out, "\nOverhead accounting:\n")
	fmt.Fprintf(out, "  attempts:        %d\n", stats.Attempts)
	fmt.Fprintf(out, "  final cube dim:  %d (%d nodes x %d keys)\n", rep.FinalDim, stats.Nodes, stats.BlockLen)
	fmt.Fprintf(out, "  quarantined:     %v\n", rep.Quarantined)
	if len(rep.Substitutions) > 0 {
		consumed := make([]int, len(rep.Substitutions))
		for i, s := range rep.Substitutions {
			consumed[i] = s.Spare
		}
		fmt.Fprintf(out, "  spares consumed: %v (of %d pooled)\n", consumed, *spares)
	}
	fmt.Fprintf(out, "  wasted ticks:    %d (virtual time of failed attempts)\n", rep.WastedCost)
	fmt.Fprintf(out, "  total backoff:   %v\n", rep.TotalBackoff.Round(time.Millisecond))
	return nil
}

func narrate(out io.Writer, attempts []recovery.Attempt) {
	for _, a := range attempts {
		fmt.Fprintf(out, "attempt %d: dim-%d cube, physical nodes %v", a.Index+1, a.Dim, a.Physical)
		if a.Backoff > 0 {
			fmt.Fprintf(out, ", after %v backoff", a.Backoff.Round(time.Millisecond))
		}
		fmt.Fprintln(out)
		if a.Verified {
			fmt.Fprintf(out, "  verified clean\n")
			continue
		}
		fmt.Fprintf(out, "  fail-stop; %d diagnostic signal(s)\n", len(a.HostErrors))
		for i, he := range a.HostErrors {
			if i >= 3 {
				fmt.Fprintf(out, "    ... and %d more\n", len(a.HostErrors)-i)
				break
			}
			fmt.Fprintf(out, "    node %d stage %d: %s (%s evidence) accusing %d\n",
				he.Node, he.Stage, he.Predicate, he.Kind, he.Accused)
		}
		if len(a.Suspects) > 0 {
			s := a.Suspects[0]
			fmt.Fprintf(out, "  prime suspect: physical node %d (%d direct, %d absence votes)\n",
				s.Node, s.DirectVotes, s.AbsenceVotes)
		} else {
			fmt.Fprintf(out, "  no attributable evidence\n")
		}
		switch {
		case a.Substituted >= 0:
			fmt.Fprintf(out, "  decision: persistent — quarantine node %d, substitute spare %d at its slot (dim %d preserved)\n",
				a.Quarantined, a.Substituted, a.Dim)
		case a.Quarantined >= 0:
			fmt.Fprintf(out, "  decision: persistent — quarantine node %d, shrink to dim %d\n",
				a.Quarantined, a.Dim-1)
		default:
			fmt.Fprintf(out, "  decision: retry\n")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
