package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTransientRecovery(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-strategy", "view-lie", "-site", "6", "-timeout", "100ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"transient view-lie fault at physical node 6",
		"fail-stop",
		"decision: retry",
		"verified clean",
		"Verified result",
		"quarantined:     []",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPersistentQuarantine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-strategy", "split-lie", "-site", "5", "-persistent", "-timeout", "100ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"persistent split-lie fault at physical node 5",
		"quarantine node 5, shrink to dim 2",
		"verified clean",
		"quarantined:     [5]",
		"final cube dim:  2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-strategy", "nonsense"}, &buf); err == nil {
		t.Error("unknown strategy: want error")
	}
	if err := run([]string{"-dim", "0"}, &buf); err == nil {
		t.Error("dim 0: want error")
	}
	if err := run([]string{"-site", "99"}, &buf); err == nil {
		t.Error("site outside cube: want error")
	}
}

func TestPersistentSubstitution(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-strategy", "split-lie", "-site", "5", "-persistent",
		"-spares", "1", "-timeout", "100ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"persistent split-lie fault at physical node 5",
		"1 spare(s) pooled",
		"quarantine node 5, substitute spare 8 at its slot (dim 3 preserved)",
		"verified clean",
		"quarantined:     [5]",
		"spares consumed: [8] (of 1 pooled)",
		"final cube dim:  3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRejectsNegativeSpares(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-spares", "-2"}, &buf); err == nil {
		t.Error("negative spares: want error")
	}
}
