// Command faultdemo runs the error-coverage experiment of Section 4:
// it injects every Byzantine strategy at every node of the cube,
// verifies the fail-stop guarantee (Theorem 3: detected or harmless,
// never silently wrong), and prints the coverage matrix. It then runs
// the same faults against the unreliable S_NR to show the contrast the
// paper motivates with.
//
//	faultdemo -dim 3 -lie 999
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultdemo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultdemo", flag.ContinueOnError)
	dim := fs.Int("dim", 3, "hypercube dimension (N = 2^dim nodes)")
	lie := fs.Int64("lie", 999, "bogus value used by lying strategies")
	seed := fs.Int64("seed", 1989, "workload seed")
	timeout := fs.Duration("timeout", 100*time.Millisecond, "absence-detection timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dim < 1 || *dim > 6 {
		return fmt.Errorf("dim %d out of range [1,6]", *dim)
	}
	n := 1 << uint(*dim)
	keys := experiments.Keys(n, *seed)

	fmt.Fprintf(out, "Error coverage (Section 4) — S_FT, %d nodes, one Byzantine node per run\n\n", n)
	results, err := fault.Coverage(*dim, keys, fault.AllStrategies(), *lie, *timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-16s", "strategy\\node")
	for id := 0; id < n; id++ {
		fmt.Fprintf(out, " %3d", id)
	}
	fmt.Fprintln(out)
	i := 0
	for _, st := range fault.AllStrategies() {
		fmt.Fprintf(out, "%-16s", st)
		for id := 0; id < n; id++ {
			r := results[i]
			i++
			mark := "???"
			switch r.Verdict {
			case fault.Detected:
				mark = " D "
			case fault.CorrectDespiteFault:
				mark = " c "
			case fault.SilentWrong:
				mark = " X "
			}
			_ = id
			fmt.Fprintf(out, " %s", mark)
		}
		fmt.Fprintln(out)
	}
	sum := fault.Summarize(results)
	fmt.Fprintf(out, "\nD = detected (fail-stop), c = correct despite fault, X = SILENT WRONG (forbidden)\n")
	fmt.Fprintf(out, "Summary: %d runs, %d detected, %d harmless, %d silent-wrong\n",
		sum.Total, sum.Detected, sum.CorrectDespiteFault, sum.SilentWrong)
	if sum.SilentWrong > 0 {
		return fmt.Errorf("fail-stop guarantee VIOLATED: %d silent-wrong runs", sum.SilentWrong)
	}
	fmt.Fprintf(out, "Theorem 3 holds: no silent corruption in %d adversarial runs.\n\n", sum.Total)

	// Beyond detection: localize the culprit from one run's diagnostics.
	demoSpec := fault.Spec{Node: n / 2, Strategy: fault.SplitLie, ActivateStage: 1, LieValue: *lie}
	nw, err := simnet.New(simnet.Config{Dim: *dim, RecvTimeout: *timeout})
	if err != nil {
		return err
	}
	opts := make([]core.Options, n)
	opts[demoSpec.Node] = core.Options{SkipChecks: true, Tamper: demoSpec.Tamper()}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fault localization (node %d injected with %v):\n", demoSpec.Node, demoSpec.Strategy)
	fmt.Fprint(out, diagnose.Report(oc.HostErrors))
	if prime, ok := diagnose.Prime(oc.HostErrors); ok && prime.Node == demoSpec.Node {
		fmt.Fprintf(out, "Diagnosis names the injected node correctly.\n\n")
	} else {
		fmt.Fprintf(out, "\n")
	}

	fmt.Fprintf(out, "Contrast: the same key-lie fault against unreliable S_NR\n\n")
	silent := 0
	for id := 0; id < n; id++ {
		spec := fault.Spec{Node: id, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: *lie}
		r, err := fault.InjectSNR(*dim, keys, spec, *timeout)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  faulty node %d: %v\n", id, r.Verdict)
		if r.Verdict == fault.SilentWrong {
			silent++
		}
	}
	fmt.Fprintf(out, "\nS_NR silently delivered corrupted output in %d/%d runs — the failure mode\n", silent, n)
	fmt.Fprintf(out, "the application-oriented fault tolerance paradigm eliminates.\n")
	return nil
}
