package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCoverageMatrixDim2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dim", "2", "-timeout", "60ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Error coverage",
		"key-lie",
		"split-lie",
		"Theorem 3 holds",
		"S_NR silently delivered corrupted output",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "0 silent-wrong") {
		t.Errorf("summary reports silent-wrong runs:\n%s", out)
	}
}

func TestRejectsBadDim(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dim", "0"}, &buf); err == nil {
		t.Error("dim 0: want error")
	}
	if err := run([]string{"-dim", "9"}, &buf); err == nil {
		t.Error("dim 9: want error")
	}
}
