package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "table1", "-fitdims", "2,3,4,5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Component-time table", "S_FT", "Sequential", "R²"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig6Output(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig6", "-dims", "2,3", "-fitdims", "2,3,4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestFig7Output(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig7", "-fitdims", "2,3,4,5", "-maxprojdim", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "Crossover") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFig8Output(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig8", "-blockdims", "2,3", "-m", "8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment: want error")
	}
	if err := run([]string{"-dims", "x"}, &buf); err == nil {
		t.Error("garbage dims: want error")
	}
	if err := run([]string{"-dims", "25"}, &buf); err == nil {
		t.Error("dim out of range: want error")
	}
	if err := run([]string{"-dims", ","}, &buf); err == nil {
		t.Error("empty dims: want error")
	}
}

func TestParseDims(t *testing.T) {
	got, err := parseDims(" 2, 3 ,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 5 {
		t.Fatalf("parseDims = %v", got)
	}
}
