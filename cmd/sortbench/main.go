// Command sortbench regenerates the paper's evaluation artifacts on
// the simulated multicomputer:
//
//	sortbench -experiment table1          # Section 5 component-time table
//	sortbench -experiment fig6            # small-cube observed/theoretical times
//	sortbench -experiment fig7            # large-system projections + crossover
//	sortbench -experiment fig8 -m 64      # block sort/merge vs host sort
//	sortbench -experiment all             # everything
//
// Flags select cube sizes, block size, and the workload seed; output
// is plain text, one table per experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sortbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "table1 | fig6 | fig7 | fig8 | all")
	dims := fs.String("dims", "2,3,4,5", "comma-separated cube dimensions to measure")
	fitDims := fs.String("fitdims", "2,3,4,5,6,7", "cube dimensions used to fit the cost models")
	blockDims := fs.String("blockdims", "2,3,4,5", "cube dimensions for the block experiment")
	m := fs.Int("m", 64, "block size (keys per node) for fig8")
	seed := fs.Int64("seed", 1989, "workload seed")
	plotFlag := fs.Bool("plot", false, "also render ASCII charts of the figures")
	maxProjDim := fs.Int("maxprojdim", 16, "largest cube dimension in fig7 projections")
	obsListen := fs.String("obs.listen", "", "serve /metrics and /debug/journal on this address while the experiments run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *obsListen != "" {
		// The simnet transports feed the process-wide default registry,
		// so the endpoint sees every experiment's traffic counters.
		addr, err := obs.Serve(*obsListen, obs.DefaultRegistry(), obs.Default().Journal())
		if err != nil {
			return fmt.Errorf("obs.listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "observability endpoints on http://%s/metrics and /debug/journal\n", addr)
	}

	dimList, err := parseDims(*dims)
	if err != nil {
		return err
	}
	fitList, err := parseDims(*fitDims)
	if err != nil {
		return err
	}
	blockList, err := parseDims(*blockDims)
	if err != nil {
		return err
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	var fit experiments.Table1Result
	haveFit := false
	ensureFit := func() error {
		if haveFit {
			return nil
		}
		var err error
		fit, err = experiments.Table1(fitList, *seed)
		if err != nil {
			return err
		}
		haveFit = true
		return nil
	}

	if want("table1") {
		ran = true
		if err := ensureFit(); err != nil {
			return err
		}
		fmt.Fprintln(out, fit.Render())
	}
	if want("fig6") {
		ran = true
		res, err := experiments.Figure6(dimList, fitList, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
		if *plotFlag {
			chart, err := res.Plot()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, chart)
		}
	}
	if want("fig7") {
		ran = true
		if err := ensureFit(); err != nil {
			return err
		}
		res, err := experiments.Figure7(fit, 2, *maxProjDim)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
		if *plotFlag {
			chart, err := res.Plot()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, chart)
		}
	}
	if want("fig8") {
		ran = true
		res, err := experiments.Figure8(blockList, *m, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
		if *plotFlag {
			chart, err := res.Plot()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, chart)
		}
		if len(blockList) >= 3 {
			proj, err := experiments.Figure8Projection(res, 2, *maxProjDim)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, proj.Render())
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want table1|fig6|fig7|fig8|all)", *experiment)
	}
	return nil
}

func parseDims(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", part, err)
		}
		if d < 0 || d > 20 {
			return nil, fmt.Errorf("dimension %d out of range [0,20]", d)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no dimensions in %q", s)
	}
	return out, nil
}
