// Command reliablesort sorts integers from a file or stdin with the
// fault-tolerant distributed bitonic sort — the whole pipeline a
// downstream user gets: automatic cube sizing, padding, the S_FT block
// sort with its constraint predicates, and end-to-end verification.
//
//	echo '10 8 3 9 4 2 7 5' | reliablesort
//	reliablesort -desc -dim 3 numbers.txt
//	reliablesort -stats numbers.txt
//	reliablesort -obs.listen localhost:9141 -obs.linger 1m numbers.txt
//
// Input is whitespace-separated 64-bit integers; output is one key per
// line in the requested order. With -obs.listen the process serves the
// observability endpoints (/metrics Prometheus text, /metrics?json=1,
// /debug/journal, /debug/forensic) while sorting, and -obs.linger
// keeps it alive after the sort so the series — and any forensic dumps
// a detection produced — can be scraped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/reliablesort"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "reliablesort:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reliablesort", flag.ContinueOnError)
	desc := fs.Bool("desc", false, "sort descending")
	dim := fs.Int("dim", 0, "force hypercube dimension (0 = automatic)")
	stats := fs.Bool("stats", false, "print run statistics to stderr")
	timeout := fs.Duration("timeout", 30*time.Second, "absence-detection timeout")
	obsListen := fs.String("obs.listen", "", "serve /metrics and /debug/journal on this address (e.g. localhost:9141)")
	obsLinger := fs.Duration("obs.linger", 0, "keep serving the observability endpoints this long after the sort")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var observer *obs.Observer
	var flight *forensic.Flight
	if *obsListen != "" {
		observer = obs.Default()
		flight = forensic.New(0)
		// One mux for the whole observability surface: the obs handler's
		// /metrics and /debug/journal plus the flight's /debug/forensic.
		obsH := obs.Handler(obs.DefaultRegistry(), observer.Journal())
		mux := http.NewServeMux()
		mux.Handle("/metrics", obsH)
		mux.Handle("/debug/journal", obsH)
		mux.Handle("/debug/forensic", flight.Handler())
		ln, err := net.Listen("tcp", *obsListen)
		if err != nil {
			return fmt.Errorf("obs.listen: %w", err)
		}
		go (&http.Server{Handler: mux}).Serve(ln)
		fmt.Fprintf(stderr, "observability endpoints on http://%s/metrics, /debug/journal, /debug/forensic\n", ln.Addr())
	}

	in := stdin
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	keys, err := readKeys(in)
	if err != nil {
		return err
	}

	out, st, err := reliablesort.Sort(keys, reliablesort.Options{
		Descending:  *desc,
		Dim:         *dim,
		RecvTimeout: *timeout,
		Obs:         observer,
		Flight:      flight,
	})
	if err != nil {
		return err
	}
	w := bufio.NewWriter(stdout)
	for _, k := range out {
		fmt.Fprintln(w, k)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(stderr, "sorted %d keys on %d nodes × %d keys/node (%d padded); %d vticks, %d msgs, %d bytes\n",
			len(keys), st.Nodes, st.BlockLen, st.Padded, st.Makespan, st.Msgs, st.Bytes)
	}
	if *obsListen != "" && *obsLinger > 0 {
		fmt.Fprintf(stderr, "lingering %v for scrapes\n", *obsLinger)
		time.Sleep(*obsLinger)
	}
	return nil
}

func readKeys(r io.Reader) ([]int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	var keys []int64
	for sc.Scan() {
		v, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad key %q: %w", sc.Text(), err)
		}
		keys = append(keys, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}
