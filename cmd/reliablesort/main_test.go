package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSortsStdin(t *testing.T) {
	var out, errb bytes.Buffer
	in := strings.NewReader("10 8 3 9 4 2 7 5")
	if err := run(nil, in, &out, &errb); err != nil {
		t.Fatal(err)
	}
	want := "2\n3\n4\n5\n7\n8\n9\n10\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestSortsDescendingWithStats(t *testing.T) {
	var out, errb bytes.Buffer
	in := strings.NewReader("1 5 3")
	if err := run([]string{"-desc", "-stats"}, in, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.String() != "5\n3\n1\n" {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errb.String(), "sorted 3 keys") {
		t.Errorf("stats = %q", errb.String())
	}
}

func TestSortsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.txt")
	if err := os.WriteFile(path, []byte("4\n-2\n9\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.String() != "-2\n4\n9\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestEmptyInput(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.String() != "" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader("1 x 3"), &out, &errb); err == nil {
		t.Error("garbage key: want error")
	}
	if err := run([]string{"a", "b"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("two files: want error")
	}
	if err := run([]string{"/nonexistent/file"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("missing file: want error")
	}
	if err := run([]string{"-dim", "99"}, strings.NewReader("1 2"), &out, &errb); err == nil {
		t.Error("bad dim: want error")
	}
}
