// Command sortload drives a running sortserver with a seeded,
// mixed-tenant workload over the streaming wire protocol and reports
// what the paper promises to preserve under load: verified-sorts/sec,
// latency percentiles, and — the number that must stay zero — silently
// wrong results. Every response is re-verified client side against a
// local reference sort, so a lying server cannot hide behind its own
// verifier.
//
//	sortload -addr localhost:9198 -jobs 200 -conc 8
//	sortload -addr localhost:9198 -fault.rate 0.2 -stats http://localhost:9199/stats -json bench.json
//
// The run is deterministic given -seed: job sizes, tenants, key
// values, and which jobs carry injected faults (requires the server to
// run with -chaos) all derive from it. Exit status is nonzero if any
// job was silently wrong or any connection failed mid-protocol.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sortload:", err)
		os.Exit(1)
	}
}

// Report is the JSON artifact: the benchmark contract of the service.
type Report struct {
	Jobs           int     `json:"jobs"`
	Verified       int64   `json:"verified"`
	FaultRejected  int64   `json:"fault_rejected"`
	Overloaded     int64   `json:"overloaded"`
	OtherErrors    int64   `json:"other_errors"`
	SilentWrong    int64   `json:"silent_wrong"`
	Injected       int64   `json:"injected"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	VerifiedPerSec float64 `json:"verified_per_sec"`
	LatencyMsP50   float64 `json:"latency_ms_p50"`
	LatencyMsP99   float64 `json:"latency_ms_p99"`
	// PoolBuilt/PoolReused come from the server's /stats when -stats is
	// given: reuse ≫ built is the pooling win made visible.
	PoolBuilt  int64            `json:"pool_built,omitempty"`
	PoolReused int64            `json:"pool_reused,omitempty"`
	Tenants    map[string]int64 `json:"jobs_per_tenant"`
}

// jobPlan is one deterministic unit of workload.
type jobPlan struct {
	tenant string
	keys   []int64
	desc   bool
	inject *server.ChaosSpec
}

// planJob derives job i's workload from the run seed alone.
func planJob(seed int64, i int, tenants []string, sizes []int, faultRate float64) jobPlan {
	rng := rand.New(rand.NewSource(seed + int64(i)*7919))
	n := sizes[rng.Intn(len(sizes))]
	keys := make([]int64, n)
	for j := range keys {
		keys[j] = rng.Int63n(1_000_000) - 500_000
	}
	p := jobPlan{
		tenant: tenants[rng.Intn(len(tenants))],
		keys:   keys,
		desc:   rng.Intn(4) == 0,
	}
	if rng.Float64() < faultRate {
		switch rng.Intn(3) {
		case 0:
			p.inject = &server.ChaosSpec{Class: "message", Node: rng.Intn(4),
				Strategy: "key-lie", Lie: 999999, Transient: rng.Intn(2) == 0}
		case 1:
			p.inject = &server.ChaosSpec{Class: "comparison", Node: rng.Intn(4),
				Mode: "cmp-persistent", Rate: 1, Seed: seed + int64(i), Transient: rng.Intn(2) == 0}
		case 2:
			p.inject = &server.ChaosSpec{Class: "memory", Node: rng.Intn(4),
				Mode: "mem-flip", Rate: 0.5, Seed: seed + int64(i), Transient: true}
		}
	}
	return p
}

// verify reports whether got is exactly the reference sort of keys.
func verify(keys, got []int64, desc bool) bool {
	if len(got) != len(keys) {
		return false
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool {
		if desc {
			return want[i] > want[j]
		}
		return want[i] < want[j]
	})
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sortload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9198", "sortserver stream-protocol address")
	jobs := fs.Int("jobs", 100, "total jobs to submit")
	conc := fs.Int("conc", 4, "concurrent connections (jobs in flight)")
	tenantsFlag := fs.String("tenants", "alpha,beta,gamma", "comma-separated tenant names to mix")
	sizesFlag := fs.String("sizes", "16,64,256,1024", "comma-separated job sizes (keys)")
	faultRate := fs.Float64("fault.rate", 0, "fraction of jobs carrying an injected fault (server needs -chaos)")
	seed := fs.Int64("seed", 1, "workload seed")
	dim := fs.Int("dim", 2, "cube dimension per job (0 = server auto)")
	statsURL := fs.String("stats", "", "sortserver /stats URL to sample pool counters after the run")
	jsonPath := fs.String("json", "", "write the report JSON here (default stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants := strings.Split(*tenantsFlag, ",")
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	var (
		verified, faultRejected, overloaded, otherErrors atomic.Int64
		silentWrong, injected                            atomic.Int64
		next                                             atomic.Int64
		mu                                               sync.Mutex
		latencies                                        []float64
		perTenant                                        = make(map[string]int64)
	)
	start := time.Now()
	var wg sync.WaitGroup
	connErrs := make(chan error, *conc)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.DialStream(*addr)
			if err != nil {
				connErrs <- err
				return
			}
			defer c.Close()
			for {
				i := int(next.Add(1)) - 1
				if i >= *jobs {
					return
				}
				p := planJob(*seed, i, tenants, sizes, *faultRate)
				if p.inject != nil {
					injected.Add(1)
				}
				t0 := time.Now()
				resp, eb, err := c.Do(server.Request{
					Tenant: p.tenant, Keys: p.keys, Descending: p.desc, Dim: *dim, Inject: p.inject,
				})
				lat := time.Since(t0).Seconds() * 1000
				mu.Lock()
				perTenant[p.tenant]++
				mu.Unlock()
				if err != nil {
					connErrs <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if eb != nil {
					switch eb.Error {
					case "fault_detected", "recovery_exhausted":
						faultRejected.Add(1)
					case "overloaded":
						overloaded.Add(1)
					default:
						otherErrors.Add(1)
						fmt.Fprintf(stderr, "sortload: job %d: %s: %s\n", i, eb.Error, eb.Detail)
					}
					continue
				}
				if !verify(p.keys, resp.Sorted, p.desc) {
					silentWrong.Add(1)
					fmt.Fprintf(stderr, "sortload: job %d: SILENT WRONG RESULT (tenant %s, %d keys)\n",
						i, p.tenant, len(p.keys))
					continue
				}
				verified.Add(1)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(connErrs)
	elapsed := time.Since(start).Seconds()
	var connErr error
	for err := range connErrs {
		fmt.Fprintln(stderr, "sortload:", err)
		connErr = err
	}

	sort.Float64s(latencies)
	rep := Report{
		Jobs:           *jobs,
		Verified:       verified.Load(),
		FaultRejected:  faultRejected.Load(),
		Overloaded:     overloaded.Load(),
		OtherErrors:    otherErrors.Load(),
		SilentWrong:    silentWrong.Load(),
		Injected:       injected.Load(),
		ElapsedSec:     elapsed,
		VerifiedPerSec: float64(verified.Load()) / elapsed,
		LatencyMsP50:   percentile(latencies, 0.50),
		LatencyMsP99:   percentile(latencies, 0.99),
		Tenants:        perTenant,
	}
	if *statsURL != "" {
		if resp, err := http.Get(*statsURL); err == nil {
			var st server.ServerStats
			if json.NewDecoder(resp.Body).Decode(&st) == nil {
				rep.PoolBuilt = st.Pool.Built
				rep.PoolReused = st.Pool.Reused
			}
			resp.Body.Close()
		} else {
			fmt.Fprintf(stderr, "sortload: stats fetch: %v\n", err)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(out))
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.SilentWrong > 0 {
		return fmt.Errorf("%d SILENT WRONG results — the one number that must be zero", rep.SilentWrong)
	}
	if connErr != nil {
		return fmt.Errorf("connection failures: %w", connErr)
	}
	return nil
}
