// Package tcpnet implements the transport abstraction over real TCP
// connections (stdlib net): every hypercube link is a loopback TCP
// connection, every message crosses a genuine socket, and a reader
// goroutine per connection feeds per-dimension inboxes.
//
// The virtual-time accounting is identical to internal/simnet's — the
// sender stamps each frame with its departure tick and the receiver
// advances to departure + Latency — so for the same protocol and
// inputs, a tcpnet run produces the *same* virtual clocks, makespans,
// and traffic counters as a simnet run (asserted by the equivalence
// tests). This demonstrates that the algorithms and the paper's
// measured quantities are independent of the in-process simulation.
//
// Fault injection: Config.Tamper installs a per-node Byzantine hook
// that intercepts every node-to-node send after the sender has charged
// its clock and traffic counters for the genuine message — the same
// ordering simnet's LinkFault uses — so fault experiments produce
// comparable virtual-time accounting over real sockets. Host links are
// reliable by assumption and bypass tampering.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Compile-time checks: tcpnet implements the transport abstraction.
var (
	_ transport.Network  = (*Network)(nil)
	_ transport.Endpoint = (*Endpoint)(nil)
	_ transport.Host     = (*Host)(nil)
)

// ErrAbsent mirrors simnet.ErrAbsent: an expected message did not
// arrive within the timeout. It wraps transport.ErrAbsent so callers
// can classify timeouts independently of the network implementation.
var ErrAbsent = fmt.Errorf("tcpnet: expected message absent: %w", transport.ErrAbsent)

// ErrClosed is returned when the network has been shut down.
var ErrClosed = errors.New("tcpnet: network closed")

// inboxDepth bounds each per-dimension inbox; the TCP connection
// itself provides backpressure once an inbox fills.
const inboxDepth = 32

// Config parameterizes a Network.
type Config struct {
	// Dim is the hypercube dimension n; the network has 2^n nodes.
	Dim int
	// Cost is the virtual-time cost model; zero value means
	// transport.DefaultCostModel.
	Cost transport.CostModel
	// RecvTimeout bounds how long a Recv waits in wall-clock time.
	// Zero means 2 seconds.
	RecvTimeout time.Duration
	// Spares is the number of spare nodes pre-registered beyond the
	// cube: physical labels 2^Dim .. 2^Dim+Spares-1 get endpoints and
	// real loopback host connections but no cube links. The sockets
	// are dialed at New — a spare is a part that is already powered
	// and reachable, sitting idle until a recovery remap promotes it
	// into a future attempt's cube. Negative is treated as zero.
	Spares int
	// Tamper, indexed by node label, intercepts that node's outgoing
	// node-to-node messages at the transport, modelling a Byzantine
	// processor over real sockets. The hook runs after the sender has
	// charged its clock and the traffic counters for the genuine
	// message (mirroring simnet's fault ordering, so virtual-time
	// accounting stays transport-independent); it may mutate the
	// message, return a replacement to substitute, or return nil to
	// stay silent — the receiver then sees a genuine socket-level
	// timeout. Entries may be nil; a short or nil slice leaves the
	// remaining nodes honest. Host links cannot be tampered.
	Tamper []func(m *wire.Message) *wire.Message
	// Obs receives per-kind message and byte counters in addition to
	// the network's own Metrics. Nil means obs.DefaultMetrics().
	Obs *obs.Metrics
	// Flight, when non-nil, attaches causal tracing exactly as in
	// simnet: trace trailers on every frame, send/recv events in
	// per-node flight-recorder rings, trailer bytes excluded from cost
	// and byte metrics (wire.CostedLen).
	Flight *forensic.Flight
}

// packet is a received frame with its virtual arrival time.
type packet struct {
	raw     []byte
	arrival transport.Ticks
}

// Network is one TCP-backed multicomputer instance. Create with New,
// release with Close. A completed run leaves the connections and
// reader goroutines intact, so the mesh is reusable: call Reset
// between runs to drain stale mailboxes, zero the per-run traffic
// counters, and rebind the observability sinks. The transport pool in
// internal/server leans on exactly this to amortize socket setup
// across jobs.
type Network struct {
	topo        hypercube.Topology
	cost        transport.CostModel
	recvTimeout time.Duration
	// spares counts the idle spare endpoints registered beyond the
	// cube; they own host links only.
	spares int

	// nodeConns[id][bit] is node id's connection to its partner across
	// dimension bit. nodeHostWrite[id] is node id's side of its host
	// link; hostConns[id] is the host's side.
	nodeConns     [][]net.Conn
	nodeHostWrite []net.Conn
	hostConns     []net.Conn

	// inboxes[id][bit] receives frames from the partner across bit;
	// hostInbox receives node->host frames; nodeHostInbox[id] receives
	// host->node frames.
	inboxes       [][]chan packet
	hostInbox     chan packet
	nodeHostInbox []chan packet

	msgs   [8]atomic.Int64
	bytes  [8]atomic.Int64
	obsM   *obs.Metrics
	flight *forensic.Flight

	tamper []func(m *wire.Message) *wire.Message

	closeOnce sync.Once
	closed    chan struct{}
	readers   sync.WaitGroup
}

// New constructs the mesh: one loopback TCP connection per hypercube
// edge plus one per node-host pair, with reader goroutines feeding the
// inboxes. It cleans up after itself on any setup error.
func New(cfg Config) (nw *Network, err error) {
	topo, terr := hypercube.New(cfg.Dim)
	if terr != nil {
		return nil, fmt.Errorf("tcpnet: %w", terr)
	}
	cost := cfg.Cost
	if cost == (transport.CostModel{}) {
		cost = transport.DefaultCostModel()
	}
	timeout := cfg.RecvTimeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	obsM := cfg.Obs
	if obsM == nil {
		obsM = obs.DefaultMetrics()
	}
	spares := cfg.Spares
	if spares < 0 {
		spares = 0
	}
	n := topo.Nodes()
	nw = &Network{
		topo:          topo,
		cost:          cost,
		recvTimeout:   timeout,
		spares:        spares,
		obsM:          obsM,
		flight:        cfg.Flight,
		tamper:        cfg.Tamper,
		nodeConns:     make([][]net.Conn, n),
		nodeHostWrite: make([]net.Conn, n+spares),
		hostConns:     make([]net.Conn, n+spares),
		inboxes:       make([][]chan packet, n),
		hostInbox:     make(chan packet, 4*n+16),
		nodeHostInbox: make([]chan packet, n+spares),
		closed:        make(chan struct{}),
	}
	defer func() {
		if err != nil {
			nw.Close()
		}
	}()
	for id := 0; id < n; id++ {
		nw.nodeConns[id] = make([]net.Conn, topo.Dim())
		nw.inboxes[id] = make([]chan packet, topo.Dim())
		for b := 0; b < topo.Dim(); b++ {
			nw.inboxes[id][b] = make(chan packet, inboxDepth)
		}
		nw.nodeHostInbox[id] = make(chan packet, inboxDepth)
	}

	// Node-to-node links: one TCP connection per undirected edge.
	for id := 0; id < n; id++ {
		for b := 0; b < topo.Dim(); b++ {
			partner, perr := topo.Partner(id, b)
			if perr != nil {
				return nil, fmt.Errorf("tcpnet: %w", perr)
			}
			if partner < id {
				continue // edge created from the lower endpoint
			}
			c1, c2, cerr := loopbackPair()
			if cerr != nil {
				return nil, fmt.Errorf("tcpnet: edge %d-%d: %w", id, partner, cerr)
			}
			nw.nodeConns[id][b] = c1
			nw.nodeConns[partner][b] = c2
			nw.startReader(c1, nw.inboxes[id][b])
			nw.startReader(c2, nw.inboxes[partner][b])
		}
	}
	// Host links — spares included: a spare's host socket is dialed
	// now, so activating one later is a relabeling, not a connection
	// setup.
	for id := 0; id < n+spares; id++ {
		if id >= n {
			nw.nodeHostInbox[id] = make(chan packet, inboxDepth)
		}
		c1, c2, cerr := loopbackPair()
		if cerr != nil {
			return nil, fmt.Errorf("tcpnet: host link %d: %w", id, cerr)
		}
		// c1 is the node side, c2 the host side.
		nw.nodeHostWrite[id] = c1
		nw.hostConns[id] = c2
		nw.startReader(c1, nw.nodeHostInbox[id])
		nw.startReader(c2, nw.hostInbox)
	}
	return nw, nil
}

// Spares returns the number of idle spare endpoints registered beyond
// the cube.
func (nw *Network) Spares() int { return nw.spares }

// isSpare reports whether id names a registered spare (a label beyond
// the cube with a host link but no cube links).
func (nw *Network) isSpare(id int) bool {
	return id >= nw.topo.Nodes() && id < nw.topo.Nodes()+nw.spares
}

// loopbackPair returns two ends of a real TCP connection over the
// loopback interface.
func loopbackPair() (client, server net.Conn, err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	ch := make(chan acceptResult, 1)
	go func() {
		c, aerr := l.Accept()
		ch <- acceptResult{conn: c, err: aerr}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	res := <-ch
	if res.err != nil {
		client.Close()
		return nil, nil, res.err
	}
	return client, res.conn, nil
}

// frame layout: u32 payload length | u64 departure tick | payload.
const frameHeader = 4 + 8

// maxFrame bounds a frame so a corrupted length cannot trigger a huge
// allocation.
const maxFrame = wire.MaxPayload + 64

// appendFrame appends a zeroed frame header followed by m's wire
// encoding to buf (normally an endpoint-owned scratch, so steady-state
// sends allocate nothing). The header is stamped later by stampFrame,
// once the sender has charged its clock and knows the departure tick.
func appendFrame(buf []byte, m wire.Message) ([]byte, error) {
	var zero [frameHeader]byte
	buf = append(buf[:0], zero[:]...)
	buf, err := wire.AppendMessage(buf, m)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// stampFrame fills in the header of a buffer built by appendFrame.
func stampFrame(buf []byte, departure transport.Ticks) {
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-frameHeader))
	binary.LittleEndian.PutUint64(buf[4:], uint64(departure))
}

// startReader pumps frames from the connection into the inbox until
// the connection or network closes.
func (nw *Network) startReader(c net.Conn, inbox chan packet) {
	nw.readers.Add(1)
	go func() {
		defer nw.readers.Done()
		hdr := make([]byte, frameHeader)
		for {
			if _, err := io.ReadFull(c, hdr); err != nil {
				return
			}
			n := binary.LittleEndian.Uint32(hdr)
			if n > maxFrame {
				return
			}
			departure := transport.Ticks(binary.LittleEndian.Uint64(hdr[4:]))
			raw := make([]byte, n)
			if _, err := io.ReadFull(c, raw); err != nil {
				return
			}
			select {
			case inbox <- packet{raw: raw, arrival: departure + nw.cost.Latency}:
			case <-nw.closed:
				return
			}
		}
	}()
}

// Reset readies a quiescent network for another run: every inbox is
// drained of stale frames, the per-run traffic counters are zeroed,
// and the observability sinks are rebound (nil obsM selects
// obs.DefaultMetrics, mirroring New). The TCP connections and their
// reader goroutines are untouched — that is the point: a reused mesh
// skips the whole socket-setup cost of New.
//
// Reset must only be called between runs (no endpoint or host is
// live), and only after a run that terminated cleanly: a run that
// fail-stopped may still have frames crossing sockets, which a drain
// cannot bound. Callers that cannot prove quiescence should Close and
// rebuild instead — internal/server's pool does exactly that for
// fault-stricken networks.
func (nw *Network) Reset(obsM *obs.Metrics, flight *forensic.Flight) error {
	select {
	case <-nw.closed:
		return ErrClosed
	default:
	}
	for _, inboxes := range nw.inboxes {
		for _, inbox := range inboxes {
			drainPackets(inbox)
		}
	}
	for _, inbox := range nw.nodeHostInbox {
		drainPackets(inbox)
	}
	drainPackets(nw.hostInbox)
	for k := range nw.msgs {
		nw.msgs[k].Store(0)
		nw.bytes[k].Store(0)
	}
	if obsM == nil {
		obsM = obs.DefaultMetrics()
	}
	nw.obsM = obsM
	nw.flight = flight
	return nil
}

// drainPackets empties an inbox without blocking.
func drainPackets(ch chan packet) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// Close shuts the network down: all connections are closed and reader
// goroutines drained. Safe to call multiple times.
func (nw *Network) Close() {
	nw.closeOnce.Do(func() {
		close(nw.closed)
		for _, conns := range nw.nodeConns {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}
		for _, c := range nw.hostConns {
			if c != nil {
				c.Close()
			}
		}
		for _, c := range nw.nodeHostWrite {
			if c != nil {
				c.Close()
			}
		}
		nw.readers.Wait()
	})
}

// Topology returns the underlying hypercube.
func (nw *Network) Topology() hypercube.Topology { return nw.topo }

// Metrics returns a snapshot of the traffic counters.
func (nw *Network) Metrics() transport.MetricsSnapshot {
	s := transport.MetricsSnapshot{
		MsgsByKind:  make(map[wire.Kind]int64),
		BytesByKind: make(map[wire.Kind]int64),
	}
	for k := wire.Kind(1); int(k) < len(nw.msgs); k++ {
		if n := nw.msgs[k].Load(); n != 0 {
			s.MsgsByKind[k] = n
			s.BytesByKind[k] = nw.bytes[k].Load()
		}
	}
	return s
}

func (nw *Network) record(kind wire.Kind, n int) {
	if int(kind) < len(nw.msgs) {
		nw.msgs[kind].Add(1)
		nw.bytes[kind].Add(int64(n))
	}
}

// Endpoint returns node id's endpoint. Call once per node before
// starting its goroutine. Spare labels (beyond the cube, when
// Config.Spares pre-registered them) get endpoints with host links
// only: their Send/Recv across cube dimensions fail until a recovery
// remap promotes the spare into a future attempt's cube.
func (nw *Network) Endpoint(id int) (transport.Endpoint, error) {
	if !nw.topo.Contains(id) && !nw.isSpare(id) {
		return nil, fmt.Errorf("tcpnet: node %d outside cube of %d nodes (+%d spares)",
			id, nw.topo.Nodes(), nw.spares)
	}
	e := &Endpoint{net: nw, id: id, rec: nw.flight.Node(id)}
	if id < len(nw.tamper) {
		e.tamper = nw.tamper[id]
	}
	return e, nil
}

// Host returns the host endpoint. Call at most once per network.
func (nw *Network) Host() transport.Host { return &Host{net: nw, rec: nw.flight.Host()} }
