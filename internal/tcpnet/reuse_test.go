package tcpnet

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/blocksort"
	"repro/internal/wire"
)

// goroutineCount reports the current goroutine count after giving
// finished goroutines a moment to unwind (reader goroutines exit
// asynchronously after Close).
func settledGoroutines(t *testing.T, atMost int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > atMost && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestNetworkReuseAcrossRuns is the regression test for the "Not
// reusable across runs" lifecycle bug: two back-to-back verified block
// sorts over one TCP mesh (Reset between them) must produce identical
// verified results, identical virtual-time accounting, and identical
// per-run traffic counters — and the mesh must not accumulate
// goroutines or connections as runs pass through it.
func TestNetworkReuseAcrossRuns(t *testing.T) {
	before := runtime.NumGoroutine()

	nw, err := New(Config{Dim: 2, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	blocks := func() [][]int64 {
		return [][]int64{
			{31, -6, 14, 0},
			{10, 8, 3, 9},
			{22, -9, 17, 1},
			{4, 2, 7, 5},
		}
	}

	type runSummary struct {
		sorted   []int64
		makespan int64
		msgs     int64
		bytes    int64
	}
	var runs []runSummary
	const rounds = 3
	during := before
	for i := 0; i < rounds; i++ {
		if i > 0 {
			if err := nw.Reset(nil, nil); err != nil {
				t.Fatalf("run %d: reset: %v", i, err)
			}
		}
		oc, err := blocksort.RunFT(nw, blocks())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if oc.Detected() {
			t.Fatalf("run %d: unexpected fault: %v / %v", i, oc.HostErrors, oc.Result.AnyErr())
		}
		var flat []int64
		for _, b := range oc.SortedBlocks {
			flat = append(flat, b...)
		}
		runs = append(runs, runSummary{
			sorted:   flat,
			makespan: int64(oc.Result.Makespan()),
			msgs:     oc.Result.Metrics.TotalMsgs(),
			bytes:    oc.Result.Metrics.TotalBytes(),
		})
		// The mesh must not grow per run: node goroutines are gone
		// (RunFT waits for them) and the reader-goroutine census is
		// fixed at construction. Allow the same slack as the final
		// check for unrelated runtime goroutines.
		if i == 0 {
			during = runtime.NumGoroutine()
		} else if n := settledGoroutines(t, during+2); n > during+2 {
			t.Errorf("run %d: goroutine count grew: %d after run 0, %d now", i, during, n)
		}
	}
	for i := 1; i < rounds; i++ {
		if len(runs[i].sorted) != len(runs[0].sorted) {
			t.Fatalf("run %d: %d keys, run 0 had %d", i, len(runs[i].sorted), len(runs[0].sorted))
		}
		for j := range runs[0].sorted {
			if runs[i].sorted[j] != runs[0].sorted[j] {
				t.Fatalf("run %d diverges at key %d: %d vs %d", i, j, runs[i].sorted[j], runs[0].sorted[j])
			}
		}
		if runs[i].makespan != runs[0].makespan {
			t.Errorf("run %d makespan %d, run 0 %d (reuse must not change virtual time)", i, runs[i].makespan, runs[0].makespan)
		}
		if runs[i].msgs != runs[0].msgs || runs[i].bytes != runs[0].bytes {
			t.Errorf("run %d traffic %d msgs/%d bytes, run 0 %d/%d (Reset must zero per-run counters)",
				i, runs[i].msgs, runs[i].bytes, runs[0].msgs, runs[0].bytes)
		}
	}
	for j := 1; j < len(runs[0].sorted); j++ {
		if runs[0].sorted[j-1] > runs[0].sorted[j] {
			t.Fatalf("output not sorted at %d: %v", j, runs[0].sorted)
		}
	}

	nw.Close()
	if n := settledGoroutines(t, before+2); n > before+2 {
		t.Errorf("goroutine leak: %d before, %d after Close", before, n)
	}
}

// TestResetDrainsStaleMailboxes pins the drain half of Reset: a frame
// parked in a link inbox by a previous run must not leak into the next
// run's receives.
func TestResetDrainsStaleMailboxes(t *testing.T) {
	nw := newNet(t, 1)
	a, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	stale := wire.Message{Kind: wire.KindExchange, Stage: 7,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{99}})}
	if err := a.Send(0, stale); err != nil {
		t.Fatal(err)
	}
	// Wait for the reader goroutine to move the frame from the socket
	// into the inbox, so the drain deterministically sees it.
	deadline := time.Now().Add(5 * time.Second)
	for len(nw.inboxes[1][0]) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(nw.inboxes[1][0]) == 0 {
		t.Fatal("stale frame never reached the inbox")
	}
	if err := nw.Reset(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := nw.Metrics().TotalMsgs(); got != 0 {
		t.Errorf("counters after Reset: %d msgs, want 0", got)
	}
	b, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := wire.Message{Kind: wire.KindExchange, Stage: 1,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{7}})}
	a2, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Send(0, fresh); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stage != 1 {
		t.Fatalf("received stale frame: %+v", got)
	}
}

// TestResetAfterCloseFails pins the terminal state: a closed mesh
// cannot be resurrected.
func TestResetAfterCloseFails(t *testing.T) {
	nw, err := New(Config{Dim: 1, RecvTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	if err := nw.Reset(nil, nil); err == nil {
		t.Fatal("Reset after Close: want error")
	}
}
