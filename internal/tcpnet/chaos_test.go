package tcpnet

import (
	"testing"
	"time"

	"repro/internal/blocksort"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestBlocksortChaosOverTCP drives the FT block sort over real sockets
// with one node made Byzantine at the transport via Config.Tamper: the
// same fault.Spec strategies the simnet experiments use, but with the
// lie crossing a genuine TCP connection. Honest peers must detect the
// fault (fail-stop, Theorem 3) — the faulty node runs with SkipChecks
// so it never reports itself.
func TestBlocksortChaosOverTCP(t *testing.T) {
	const dim, faulty = 3, 5
	spec := fault.Spec{Node: faulty, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 7777}
	if err := spec.Validate(1 << dim); err != nil {
		t.Fatal(err)
	}
	tamper := make([]func(m *wire.Message) *wire.Message, 1<<dim)
	tamper[faulty] = spec.Tamper()

	// Short timeout: once honest nodes fail-stop, their partners wait
	// out the absence timeout, so a long one only slows the test.
	nw, err := New(Config{Dim: dim, RecvTimeout: 500 * time.Millisecond, Tamper: tamper})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	blocks := make([][]int64, 1<<dim)
	for id := range blocks {
		base := int64((len(blocks) - id) * 10)
		blocks[id] = []int64{base, base - 3, base + 5, base - 7}
	}
	opts := make([]blocksort.Options, 1<<dim)
	opts[faulty].SkipChecks = true

	oc, err := blocksort.RunFTWithOptions(nw, blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("transport-level key lie over TCP went undetected")
	}
	for _, he := range oc.HostErrors {
		if he.Node == faulty {
			t.Errorf("faulty node %d reported itself despite SkipChecks: %+v", faulty, he)
		}
	}
}

// TestTamperSilenceOverTCP checks the drop semantics: a nil return
// from the hook writes nothing to the socket, so the honest receiver
// sees a genuine timeout (absence evidence) rather than a decode
// error.
func TestTamperSilenceOverTCP(t *testing.T) {
	tamper := make([]func(m *wire.Message) *wire.Message, 2)
	tamper[1] = func(m *wire.Message) *wire.Message { return nil }
	nw, err := New(Config{Dim: 1, RecvTimeout: 100 * time.Millisecond, Tamper: tamper})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	a, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	pre := b.Clock()
	if err := b.Send(0, wire.Message{Kind: wire.KindExchange,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{1}})}); err != nil {
		t.Fatal(err)
	}
	if b.Clock() <= pre {
		t.Error("tampered send must still charge the sender's clock")
	}
	if got := nw.Metrics().TotalMsgs(); got != 1 {
		t.Errorf("tampered send must still count the genuine message, got %d", got)
	}
	if _, rerr := a.Recv(0); rerr == nil {
		t.Fatal("dropped message was delivered")
	}
}

// TestSpareSubstitutionOverTCP closes the loop at the top of the
// stack: a persistent Byzantine node over real sockets, supervised by
// the full AutoRecover path with one spare pooled and *real* backoff
// sleeps (no virtual Sleep injection). The run must detect, retry,
// quarantine the fault site, activate the pre-registered spare
// connection, and complete at full cube dimension.
func TestSpareSubstitutionOverTCP(t *testing.T) {
	const dim, faulty = 3, 5
	keys := []int64{41, -7, 13, 99, 0, -52, 8, 27, 64, -1, 300, 5, -9, 72, 2, 18}

	opts := reliablesort.Options{
		Dim:         dim,
		RecvTimeout: 400 * time.Millisecond,
		AutoRecover: true,
		MaxAttempts: 6,
		Spares:      1,
		// Real sleeping between attempts, kept short: the point is
		// that the wall-clock backoff path runs, not that it is long.
		Backoff: recovery.Backoff{Base: 2 * time.Millisecond, Max: 8 * time.Millisecond},
		Inject: func(attempt, d int, physical []int) []blocksort.Options {
			nodeOpts := make([]blocksort.Options, 1<<uint(d))
			for l, ph := range physical {
				if ph == faulty {
					spec := fault.Spec{Node: l, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 7777}
					nodeOpts[l] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
				}
			}
			return nodeOpts
		},
		NewNetwork: func(cfg reliablesort.NetConfig) (transport.Network, error) {
			return New(Config{Dim: cfg.Dim, Spares: cfg.Spares, RecvTimeout: cfg.RecvTimeout, Obs: cfg.Obs})
		},
	}
	start := time.Now()
	out, stats, err := reliablesort.Sort(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reliablesort.IsSorted(out, opts) || len(out) != len(keys) {
		t.Fatalf("unsorted or truncated result: %v", out)
	}
	rep := stats.Recovery
	if rep == nil {
		t.Fatal("no recovery report")
	}
	if rep.FinalDim != dim || stats.Nodes != 1<<dim {
		t.Fatalf("recovered at dim %d with %d nodes, want full dim %d", rep.FinalDim, stats.Nodes, dim)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != faulty {
		t.Fatalf("quarantined %v, want [%d]", rep.Quarantined, faulty)
	}
	if len(rep.Substitutions) != 1 || rep.Substitutions[0].Spare != 1<<dim || rep.Substitutions[0].Suspect != faulty {
		t.Fatalf("substitutions %v, want spare %d at suspect %d", rep.Substitutions, 1<<dim, faulty)
	}
	// The backoff really slept: the supervisor records nonzero waits
	// and the run took at least that long on the wall clock.
	if rep.TotalBackoff <= 0 {
		t.Fatalf("TotalBackoff = %v, want real wall-clock waits", rep.TotalBackoff)
	}
	if elapsed := time.Since(start); elapsed < rep.TotalBackoff {
		t.Fatalf("run finished in %v, less than its own recorded backoff %v", elapsed, rep.TotalBackoff)
	}
}
