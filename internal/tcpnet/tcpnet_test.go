package tcpnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/hostsort"
	"repro/internal/simnet"
	"repro/internal/sortnr"
	"repro/internal/wire"
)

func newNet(t testing.TB, dim int) *Network {
	t.Helper()
	nw, err := New(Config{Dim: dim, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: -1}); err == nil {
		t.Error("negative dim: want error")
	}
}

func TestSendRecvOverTCP(t *testing.T) {
	nw := newNet(t, 2)
	a, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.Message{Kind: wire.KindExchange, Stage: 1,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{7}})}
	if err := a.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.To != 1 || got.Stage != 1 {
		t.Fatalf("got %+v", got)
	}
	p, err := wire.DecodeExchange(got.Payload)
	if err != nil || p.Keys[0] != 7 {
		t.Fatalf("payload %v err %v", p, err)
	}
	if b.Clock() <= a.Clock()-1000 { // receiver waited for arrival
		t.Errorf("clocks: a=%d b=%d", a.Clock(), b.Clock())
	}
	if _, err := nw.Endpoint(99); err == nil {
		t.Error("bad node id: want error")
	}
	if _, err := b.Recv(9); err == nil {
		t.Error("bad bit: want error")
	}
}

func TestHostRoundTripOverTCP(t *testing.T) {
	nw := newNet(t, 1)
	ep, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	h := nw.Host()
	if err := ep.SendHost(wire.Message{Kind: wire.KindHostUpload,
		Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{9}})}); err != nil {
		t.Fatal(err)
	}
	m, err := h.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 {
		t.Fatalf("from = %d", m.From)
	}
	if err := h.Send(1, wire.Message{Kind: wire.KindHostDownload,
		Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{10}})}); err != nil {
		t.Fatal(err)
	}
	back, err := ep.RecvHost()
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != wire.KindHostDownload {
		t.Fatalf("kind = %v", back.Kind)
	}
	if err := h.Send(99, wire.Message{Kind: wire.KindHostDownload}); err == nil {
		t.Error("host send to bad node: want error")
	}
}

func TestRecvTimeout(t *testing.T) {
	nw, err := New(Config{Dim: 1, RecvTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ep, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := ep.Recv(0); !errors.Is(rerr, ErrAbsent) {
		t.Fatalf("want ErrAbsent, got %v", rerr)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	nw := newNet(t, 1)
	ep, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, rerr := ep.Recv(0)
		done <- rerr
	}()
	time.Sleep(20 * time.Millisecond)
	nw.Close()
	select {
	case rerr := <-done:
		if !errors.Is(rerr, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", rerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// The flagship test: S_FT over real TCP sorts correctly and produces
// the *identical* virtual-time results as the channel simulator —
// makespan, per-kind message and byte counts.
func TestSFTOverTCPMatchesSimnet(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}

	tcp := newNet(t, 3)
	ocTCP, err := core.Run(tcp, keys)
	if err != nil {
		t.Fatal(err)
	}
	if ocTCP.Detected() {
		t.Fatalf("spurious detection over TCP: %v %v", ocTCP.Result.FirstNodeErr(), ocTCP.HostErrors)
	}
	if err := checker.Verify(keys, ocTCP.Sorted, true); err != nil {
		t.Fatal(err)
	}

	sim, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ocSim, err := core.Run(sim, keys)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := ocTCP.Result.Makespan(), ocSim.Result.Makespan(); got != want {
		t.Errorf("makespan: tcp %d vs simnet %d", got, want)
	}
	for id := range ocTCP.Result.Nodes {
		tn, sn := ocTCP.Result.Nodes[id], ocSim.Result.Nodes[id]
		if tn.Clock != sn.Clock || tn.CommTicks != sn.CommTicks || tn.CompTicks != sn.CompTicks {
			t.Errorf("node %d clocks: tcp %+v vs simnet %+v", id, tn, sn)
		}
	}
	tm, sm := ocTCP.Result.Metrics, ocSim.Result.Metrics
	if tm.TotalMsgs() != sm.TotalMsgs() || tm.TotalBytes() != sm.TotalBytes() {
		t.Errorf("traffic: tcp %d/%d vs simnet %d/%d",
			tm.TotalMsgs(), tm.TotalBytes(), sm.TotalMsgs(), sm.TotalBytes())
	}
}

func TestSNROverTCP(t *testing.T) {
	keys := []int64{4, 1, 3, 2}
	nw := newNet(t, 2)
	out, res, err := sortnr.Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		t.Fatalf("%v (out=%v)", err, out)
	}
}

func TestHostSortOverTCP(t *testing.T) {
	keys := []int64{9, -1, 5, 0, 2, 2, 8, 7}
	nw := newNet(t, 3)
	out, res, err := hostsort.RunHostSort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		t.Fatal(err)
	}
	if res.HostComm == 0 {
		t.Error("host comm not charged")
	}
}

func TestMetricsOverTCP(t *testing.T) {
	keys := []int64{4, 3, 2, 1}
	nw := newNet(t, 2)
	_, res, err := sortnr.Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	steps := 2 * (2 + 1) / 2
	if got := res.Metrics.MsgsByKind[wire.KindExchange]; got != int64(4*steps) {
		t.Errorf("exchange msgs = %d, want %d", got, 4*steps)
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	nw := newNet(t, 1)
	nw.Close()
	nw.Close()
}

// Spares are real pre-registered loopback connections: reachable over
// the host socket while idle, but with no cube links.
func TestSpareEndpointsOverTCP(t *testing.T) {
	nw, err := New(Config{Dim: 2, Spares: 2, RecvTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if nw.Spares() != 2 {
		t.Fatalf("Spares() = %d, want 2", nw.Spares())
	}
	spare, err := nw.Endpoint(5)
	if err != nil {
		t.Fatalf("spare endpoint: %v", err)
	}
	if _, err := nw.Endpoint(6); err == nil {
		t.Error("Endpoint(6) beyond the spare pool: want error")
	}
	if err := spare.Send(0, wire.Message{Kind: wire.KindExchange}); err == nil {
		t.Error("spare Send on a cube link: want error")
	}
	if _, err := spare.Recv(0); err == nil {
		t.Error("spare Recv on a cube link: want error")
	}

	h := nw.Host()
	if err := h.Send(5, wire.Message{Kind: wire.KindHostDownload,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{11}})}); err != nil {
		t.Fatalf("host -> spare: %v", err)
	}
	m, err := spare.RecvHost()
	if err != nil {
		t.Fatalf("spare RecvHost: %v", err)
	}
	if m.Kind != wire.KindHostDownload {
		t.Fatalf("spare received %v", m.Kind)
	}
	if err := spare.SendHost(wire.Message{Kind: wire.KindHostUpload}); err != nil {
		t.Fatalf("spare SendHost: %v", err)
	}
	reply, err := h.Recv()
	if err != nil {
		t.Fatalf("host Recv from spare: %v", err)
	}
	if reply.From != 5 || reply.Kind != wire.KindHostUpload {
		t.Fatalf("host received %+v", reply)
	}
}
