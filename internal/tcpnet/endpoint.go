package tcpnet

import (
	"fmt"
	"time"

	"repro/internal/hypercube"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Endpoint is a node's handle on the TCP mesh. Goroutine-confined,
// like its simnet counterpart; the virtual-clock arithmetic is
// line-for-line the same so the two transports agree on every tick.
type Endpoint struct {
	net *Network
	id  int

	clock     transport.Ticks
	commTicks transport.Ticks
	compTicks transport.Ticks

	// sendBuf stages frame header + message for one-write sends and is
	// reused across calls: steady-state sends allocate nothing.
	sendBuf []byte

	// tamper is this node's Byzantine hook from Config.Tamper (nil for
	// honest nodes); tamperBuf stages replacement frames so even a
	// lying node's sends stay allocation-free.
	tamper    func(m *wire.Message) *wire.Message
	tamperBuf []byte

	// rec is the node's flight recorder, nil when the network has no
	// Flight attached.
	rec *forensic.Recorder
}

// ID returns the node label.
func (e *Endpoint) ID() int { return e.id }

// Topology returns the hypercube the endpoint belongs to.
func (e *Endpoint) Topology() hypercube.Topology { return e.net.topo }

// Clock returns the node's current virtual time.
func (e *Endpoint) Clock() transport.Ticks { return e.clock }

// CommTicks returns virtual time spent on communication.
func (e *Endpoint) CommTicks() transport.Ticks { return e.commTicks }

// CompTicks returns virtual time spent computing.
func (e *Endpoint) CompTicks() transport.Ticks { return e.compTicks }

// Compute advances the node clock by a computation cost.
func (e *Endpoint) Compute(t transport.Ticks) {
	if t < 0 {
		t = 0
	}
	e.clock += t
	e.compTicks += t
}

// ChargeCompare charges the cost of n key comparisons.
func (e *Endpoint) ChargeCompare(n int) {
	e.Compute(transport.Ticks(n) * e.net.cost.Compare)
}

// ChargeKeyMove charges the cost of moving n keys in memory.
func (e *Endpoint) ChargeKeyMove(n int) {
	e.Compute(transport.Ticks(n) * e.net.cost.KeyMove)
}

// Send transmits to the partner across the given dimension bit over
// the link's TCP connection.
func (e *Endpoint) Send(bit int, m wire.Message) error {
	if e.net.isSpare(e.id) {
		return fmt.Errorf("tcpnet: spare node %d has no cube links", e.id)
	}
	partner, err := e.net.topo.Partner(e.id, bit)
	if err != nil {
		return fmt.Errorf("tcpnet: send: %w", err)
	}
	m.From = int32(e.id)
	m.To = int32(partner)
	if e.rec != nil {
		m.Trace = e.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(e.clock))
	}
	buf, err := appendFrame(e.sendBuf, m)
	if err != nil {
		return fmt.Errorf("tcpnet: send: %w", err)
	}
	e.sendBuf = buf
	rawLen := wire.CostedLen(len(buf) - frameHeader)
	cost := e.net.cost.SendFixed + transport.Ticks(rawLen)*e.net.cost.SendPerByte
	e.clock += cost
	e.commTicks += cost
	e.net.record(m.Kind, rawLen)
	e.net.obsM.RecordMessage(m.Kind, rawLen)
	if e.tamper != nil {
		// Clock and counters above reflect the genuine message; the
		// hook now decides what actually crosses the socket.
		return e.sendTampered(bit, partner, m)
	}
	stampFrame(buf, e.clock)
	if _, err := e.net.nodeConns[e.id][bit].Write(buf); err != nil {
		return fmt.Errorf("tcpnet: %d -> %d: %w", e.id, partner, err)
	}
	return nil
}

// sendTampered runs the node's Byzantine hook and transmits whatever
// it returns. A nil return — and an unencodable replacement — degrade
// to silence: nothing is written and the receiver observes a genuine
// wall-clock timeout on the socket, the transport-level analogue of
// simnet's drop faults.
func (e *Endpoint) sendTampered(bit, partner int, m wire.Message) error {
	out := e.tamper(&m)
	if out == nil {
		return nil
	}
	buf, err := appendFrame(e.tamperBuf, *out)
	if err != nil {
		return nil
	}
	e.tamperBuf = buf
	stampFrame(buf, e.clock)
	if _, werr := e.net.nodeConns[e.id][bit].Write(buf); werr != nil {
		return fmt.Errorf("tcpnet: %d -> %d: %w", e.id, partner, werr)
	}
	return nil
}

// Recv blocks for the next message from the partner across the given
// dimension bit, advancing the virtual clock to its arrival.
func (e *Endpoint) Recv(bit int) (wire.Message, error) {
	if e.net.isSpare(e.id) {
		return wire.Message{}, fmt.Errorf("tcpnet: spare node %d has no cube links", e.id)
	}
	if bit < 0 || bit >= e.net.topo.Dim() {
		return wire.Message{}, fmt.Errorf("tcpnet: recv: bit %d outside dimension %d", bit, e.net.topo.Dim())
	}
	pkt, err := e.net.await(e.net.inboxes[e.id][bit])
	if err != nil {
		partner, _ := e.net.topo.Partner(e.id, bit)
		return wire.Message{}, fmt.Errorf("tcpnet: node %d waiting on link from %d: %w", e.id, partner, err)
	}
	return e.accept(pkt)
}

func (e *Endpoint) accept(pkt packet) (wire.Message, error) {
	if pkt.arrival > e.clock {
		e.clock = pkt.arrival // idle wait, unbilled
	}
	cost := e.net.cost.RecvFixed + transport.Ticks(wire.CostedLen(len(pkt.raw)))*e.net.cost.RecvPerByte
	e.clock += cost
	e.commTicks += cost
	// Zero-copy decode: the reader goroutine allocated pkt.raw for this
	// frame alone and never touches it again, so aliasing is safe here.
	m, err := wire.DecodeFrom(pkt.raw)
	if err != nil {
		return wire.Message{}, fmt.Errorf("tcpnet: node %d: garbled message: %w", e.id, err)
	}
	if e.rec != nil {
		e.rec.Recv(&m, int64(e.clock))
	}
	return m, nil
}

// SendHost transmits to the host over the node's host connection.
func (e *Endpoint) SendHost(m wire.Message) error {
	m.From = int32(e.id)
	m.To = wire.HostID
	if e.rec != nil {
		m.Trace = e.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(e.clock))
	}
	buf, err := appendFrame(e.sendBuf, m)
	if err != nil {
		return fmt.Errorf("tcpnet: send host: %w", err)
	}
	e.sendBuf = buf
	rawLen := wire.CostedLen(len(buf) - frameHeader)
	cost := e.net.cost.SendFixed + transport.Ticks(rawLen)*e.net.cost.SendPerByte
	e.clock += cost
	e.commTicks += cost
	e.net.record(m.Kind, rawLen)
	e.net.obsM.RecordMessage(m.Kind, rawLen)
	stampFrame(buf, e.clock)
	if _, err := e.net.nodeHostWrite[e.id].Write(buf); err != nil {
		return fmt.Errorf("tcpnet: node %d -> host: %w", e.id, err)
	}
	return nil
}

// RecvHost blocks for the next message from the host.
func (e *Endpoint) RecvHost() (wire.Message, error) {
	pkt, err := e.net.await(e.net.nodeHostInbox[e.id])
	if err != nil {
		return wire.Message{}, fmt.Errorf("tcpnet: node %d waiting on host: %w", e.id, err)
	}
	return e.accept(pkt)
}

// await pops the next packet from an inbox, bounded by the configured
// wall-clock timeout and the network lifetime.
func (nw *Network) await(inbox chan packet) (packet, error) {
	timer := time.NewTimer(nw.recvTimeout)
	defer timer.Stop()
	select {
	case pkt := <-inbox:
		return pkt, nil
	case <-nw.closed:
		return packet{}, ErrClosed
	case <-timer.C:
		return packet{}, ErrAbsent
	}
}

// Host is the reliable host processor's handle on the TCP mesh.
type Host struct {
	net *Network

	clock     transport.Ticks
	commTicks transport.Ticks
	compTicks transport.Ticks

	// sendBuf stages frame header + message, reused across sends.
	sendBuf []byte
	rec     *forensic.Recorder
}

// Clock returns the host's current virtual time.
func (h *Host) Clock() transport.Ticks { return h.clock }

// CommTicks returns virtual time the host spent on communication.
func (h *Host) CommTicks() transport.Ticks { return h.commTicks }

// CompTicks returns virtual time the host spent computing.
func (h *Host) CompTicks() transport.Ticks { return h.compTicks }

// Compute advances the host clock by a computation cost.
func (h *Host) Compute(t transport.Ticks) {
	if t < 0 {
		t = 0
	}
	h.clock += t
	h.compTicks += t
}

// ChargeCompare charges the host for n key comparisons.
func (h *Host) ChargeCompare(n int) {
	h.Compute(transport.Ticks(n) * h.net.cost.Compare)
}

// ChargeKeyMove charges the host for moving n keys.
func (h *Host) ChargeKeyMove(n int) {
	h.Compute(transport.Ticks(n) * h.net.cost.KeyMove)
}

// Send transmits from the host to a node over the host interface.
func (h *Host) Send(node int, m wire.Message) error {
	if !h.net.topo.Contains(node) && !h.net.isSpare(node) {
		return fmt.Errorf("tcpnet: host send: node %d outside cube of %d nodes (+%d spares)",
			node, h.net.topo.Nodes(), h.net.spares)
	}
	m.From = wire.HostID
	m.To = int32(node)
	if h.rec != nil {
		m.Trace = h.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(h.clock))
	}
	buf, err := appendFrame(h.sendBuf, m)
	if err != nil {
		return fmt.Errorf("tcpnet: host send: %w", err)
	}
	h.sendBuf = buf
	rawLen := wire.CostedLen(len(buf) - frameHeader)
	cost := h.net.cost.HostFixed + transport.Ticks(rawLen)*h.net.cost.HostPerByte
	h.clock += cost
	h.commTicks += cost
	h.net.record(m.Kind, rawLen)
	h.net.obsM.RecordMessage(m.Kind, rawLen)
	stampFrame(buf, h.clock)
	if _, err := h.net.hostConns[node].Write(buf); err != nil {
		return fmt.Errorf("tcpnet: host -> %d: %w", node, err)
	}
	return nil
}

// Recv blocks for the next message from any node.
func (h *Host) Recv() (wire.Message, error) {
	pkt, err := h.net.await(h.net.hostInbox)
	if err != nil {
		return wire.Message{}, fmt.Errorf("tcpnet: host: %w", err)
	}
	return h.accept(pkt)
}

func (h *Host) accept(pkt packet) (wire.Message, error) {
	if pkt.arrival > h.clock {
		h.clock = pkt.arrival
	}
	cost := h.net.cost.HostFixed + transport.Ticks(wire.CostedLen(len(pkt.raw)))*h.net.cost.HostPerByte
	h.clock += cost
	h.commTicks += cost
	m, err := wire.DecodeFrom(pkt.raw)
	if err != nil {
		return wire.Message{}, fmt.Errorf("tcpnet: host: garbled message: %w", err)
	}
	if h.rec != nil {
		h.rec.Recv(&m, int64(h.clock))
	}
	return m, nil
}

// TryRecv returns a pending host message without waiting for the full
// absence timeout.
func (h *Host) TryRecv() (wire.Message, bool, error) {
	select {
	case pkt := <-h.net.hostInbox:
		m, err := h.accept(pkt)
		if err != nil {
			return wire.Message{}, false, err
		}
		return m, true, nil
	default:
		return wire.Message{}, false, nil
	}
}
