// Package hostsort implements the two sequential baselines of the
// paper's Section 5:
//
//   - Host sort: every node ships its data to the reliable host, the
//     host sorts sequentially (O(N log N) comparisons, O(N)
//     communication), and ships the results back. This is the
//     alternative the paper argues against for large N.
//   - Host verification: the nodes sort among themselves with the
//     unreliable S_NR, and both the initial and the sorted data are
//     shipped to the host, which applies Theorem 1 (permutation +
//     order check) — O(N) communication and O(N log N) computation.
//
// Both support the block variant (m keys per node) used by Figure 8.
package hostsort

import (
	"fmt"
	"sort"

	"repro/internal/bitonic"
	"repro/internal/checker"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sortnr"
	"repro/internal/transport"
	"repro/internal/wire"
)

// MergeSortCount sorts xs ascending with a top-down merge sort and
// returns the comparison count, so the harness can charge the host
// deterministic virtual time. The input slice is not modified.
// It is re-exported from the bitonic package for API locality.
func MergeSortCount(xs []int64) (sorted []int64, compares int) {
	return bitonic.MergeSortCount(xs)
}

// RunHostSort executes the host-sort baseline with one key per node:
// upload, sequential sort on the host, download. It returns out with
// out[id] = node id's final key (ascending by node label).
func RunHostSort(nw transport.Network, keys []int64) ([]int64, *node.Result, error) {
	return RunHostSortObs(nw, keys, nil)
}

// RunHostSortObs is RunHostSort with an observer receiving
// upload/host-sort/download phase spans (nil disables them).
func RunHostSortObs(nw transport.Network, keys []int64, o *obs.Observer) ([]int64, *node.Result, error) {
	n := nw.Topology().Nodes()
	if len(keys) != n {
		return nil, nil, fmt.Errorf("hostsort: %d keys for %d nodes", len(keys), n)
	}
	blocks := make([][]int64, n)
	for i, k := range keys {
		blocks[i] = []int64{k}
	}
	outBlocks, res, err := RunHostSortBlocksObs(nw, blocks, o)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int64, n)
	for i, b := range outBlocks {
		if len(b) != 1 {
			return nil, nil, fmt.Errorf("hostsort: node %d received %d keys, want 1", i, len(b))
		}
		out[i] = b[0]
	}
	return out, res, nil
}

// RunHostSortBlocks executes the host-sort baseline with a block of
// keys per node. All blocks must have equal length. The returned
// blocks are globally sorted ascending across node labels.
func RunHostSortBlocks(nw transport.Network, blocks [][]int64) ([][]int64, *node.Result, error) {
	return RunHostSortBlocksObs(nw, blocks, nil)
}

// RunHostSortBlocksObs is RunHostSortBlocks with an observer. Each
// node journals "upload" and "download" spans; the host journals
// "host-gather", "host-sort", and "host-scatter" spans with node -1.
// The spans read the virtual clocks but never charge them.
func RunHostSortBlocksObs(nw transport.Network, blocks [][]int64, o *obs.Observer) ([][]int64, *node.Result, error) {
	n := nw.Topology().Nodes()
	if len(blocks) != n {
		return nil, nil, fmt.Errorf("hostsort: %d blocks for %d nodes", len(blocks), n)
	}
	m := len(blocks[0])
	for i, b := range blocks {
		if len(b) != m {
			return nil, nil, fmt.Errorf("hostsort: block %d has %d keys, want %d", i, len(b), m)
		}
	}

	out := make([][]int64, n)
	prog := func(ep transport.Endpoint) error {
		id := ep.ID()
		o.SpanBegin("upload", id, int64(ep.Clock()))
		up := wire.Message{
			Kind:    wire.KindHostUpload,
			Payload: wire.AppendHost(nil, blocks[id]),
		}
		if err := ep.SendHost(up); err != nil {
			return fmt.Errorf("hostsort: node %d upload: %w", id, err)
		}
		o.SpanEnd("upload", id, int64(ep.Clock()))
		o.SpanBegin("download", id, int64(ep.Clock()))
		down, err := ep.RecvHost()
		if err != nil {
			return fmt.Errorf("hostsort: node %d download: %w", id, err)
		}
		p, err := wire.DecodeHost(down.Payload)
		if err != nil {
			return fmt.Errorf("hostsort: node %d download: %w", id, err)
		}
		out[id] = p.Keys
		o.SpanEnd("download", id, int64(ep.Clock()))
		return nil
	}

	hostProg := func(h transport.Host) error {
		// The gather loop decodes into one scratch and appends into the
		// preallocated flat slice, so the host's per-message work is
		// allocation-free.
		var dec wire.DecodeScratch
		all := make([]int64, 0, n*m)
		o.SpanBegin("host-gather", -1, int64(h.Clock()))
		for seen := 0; seen < n; seen++ {
			msg, err := h.Recv()
			if err != nil {
				return fmt.Errorf("hostsort: host gather: %w", err)
			}
			p, err := wire.DecodeHostInto(&dec, msg.Payload)
			if err != nil {
				return fmt.Errorf("hostsort: host gather: %w", err)
			}
			all = append(all, p.Keys...)
		}
		o.SpanEnd("host-gather", -1, int64(h.Clock()))
		o.SpanBegin("host-sort", -1, int64(h.Clock()))
		// Parallel across the host's cores; output and comparison count
		// (and so the charged virtual time) match MergeSortCount exactly.
		sorted, compares := bitonic.ParallelMergeSortCount(all, 0)
		h.ChargeCompare(compares)
		h.ChargeKeyMove(len(sorted))
		o.SpanEnd("host-sort", -1, int64(h.Clock()))
		o.SpanBegin("host-scatter", -1, int64(h.Clock()))
		var enc []byte
		for id := 0; id < n; id++ {
			enc = wire.AppendHost(enc[:0], sorted[id*m:(id+1)*m])
			msg := wire.Message{
				Kind:    wire.KindHostDownload,
				Payload: enc,
			}
			if err := h.Send(id, msg); err != nil {
				return fmt.Errorf("hostsort: host scatter: %w", err)
			}
		}
		o.SpanEnd("host-scatter", -1, int64(h.Clock()))
		return nil
	}

	res, err := node.Run(nw, prog, hostProg)
	if err != nil {
		return nil, nil, fmt.Errorf("hostsort: %w", err)
	}
	return out, res, nil
}

// RunHostVerify executes the host-verification baseline: the nodes
// upload their initial keys, sort among themselves with S_NR, then
// upload the sorted keys; the host applies Theorem 1. The returned
// error from the host (in the Result) is non-nil when verification
// fails — but note this baseline cannot say *which* node misbehaved,
// and the host is a serial bottleneck; these are the drawbacks the
// paper's distributed checking removes.
func RunHostVerify(nw transport.Network, keys []int64) ([]int64, *node.Result, error) {
	n := nw.Topology().Nodes()
	if len(keys) != n {
		return nil, nil, fmt.Errorf("hostsort: %d keys for %d nodes", len(keys), n)
	}
	out := make([]int64, n)
	prog := func(ep transport.Endpoint) error {
		id := ep.ID()
		kbuf := [1]int64{keys[id]}
		up := wire.Message{
			Kind:    wire.KindHostUpload,
			Stage:   0, // phase marker: initial data
			Payload: wire.AppendHost(nil, kbuf[:]),
		}
		if err := ep.SendHost(up); err != nil {
			return fmt.Errorf("hostsort: node %d initial upload: %w", id, err)
		}
		final, err := sortnrNode(ep, keys[id])
		if err != nil {
			return err
		}
		out[id] = final
		kbuf[0] = final
		up2 := wire.Message{
			Kind:    wire.KindHostUpload,
			Stage:   1, // phase marker: sorted data
			Payload: wire.AppendHost(nil, kbuf[:]),
		}
		if err := ep.SendHost(up2); err != nil {
			return fmt.Errorf("hostsort: node %d sorted upload: %w", id, err)
		}
		return nil
	}

	hostProg := func(h transport.Host) error {
		var dec wire.DecodeScratch
		initial := make([]int64, n)
		sorted := make([]int64, n)
		for seen := 0; seen < 2*n; seen++ {
			msg, err := h.Recv()
			if err != nil {
				return fmt.Errorf("hostsort: host gather: %w", err)
			}
			p, err := wire.DecodeHostInto(&dec, msg.Payload)
			if err != nil || len(p.Keys) != 1 {
				return fmt.Errorf("hostsort: host gather from %d: bad payload", msg.From)
			}
			if msg.Stage == 0 {
				initial[msg.From] = p.Keys[0]
			} else {
				sorted[msg.From] = p.Keys[0]
			}
		}
		h.ChargeCompare(checker.VerifyCost(n))
		if err := checker.Verify(initial, sorted, true); err != nil {
			return fmt.Errorf("hostsort: verification failed: %w", err)
		}
		return nil
	}

	res, err := node.Run(nw, prog, hostProg)
	if err != nil {
		return nil, nil, fmt.Errorf("hostsort: %w", err)
	}
	return out, res, nil
}

// sortnrNode runs one node's share of S_NR inline (used by the
// host-verification baseline, which layers uploads around the
// unreliable sort).
func sortnrNode(ep transport.Endpoint, key int64) (int64, error) {
	var out int64
	prog := sortnr.NodeProgram(key, &out, sortnr.Options{})
	if err := prog(ep); err != nil {
		return 0, err
	}
	return out, nil
}

// SortedBlocksFlat flattens per-node blocks into one slice, in node
// order — a convenience for verifying block-sorted results.
func SortedBlocksFlat(blocks [][]int64) []int64 {
	var out []int64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// SortStdlibCount is a reference comparison-counting wrapper around
// the standard library's sort, used in tests to sanity-check
// MergeSortCount's comparison totals stay within the expected
// O(N log N) envelope.
func SortStdlibCount(xs []int64) (sorted []int64, compares int) {
	out := append([]int64{}, xs...)
	sort.Slice(out, func(i, j int) bool {
		compares++
		return out[i] < out[j]
	})
	return out, compares
}
