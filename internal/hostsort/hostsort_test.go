package hostsort

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/checker"
	"repro/internal/simnet"
)

func newNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestMergeSortCount(t *testing.T) {
	xs := []int64{5, 2, 9, 1, 7, 3}
	sorted, c := MergeSortCount(xs)
	if err := checker.Verify(xs, sorted, true); err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Error("no comparisons counted")
	}
	if xs[0] != 5 {
		t.Error("input mutated")
	}
	if _, c := MergeSortCount(nil); c != 0 {
		t.Error("empty sort counted comparisons")
	}
	if _, c := MergeSortCount([]int64{1}); c != 0 {
		t.Error("singleton sort counted comparisons")
	}
}

func TestMergeSortCountStaysNlogN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 256, 4096} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63()
		}
		_, c := MergeSortCount(xs)
		bound := int(float64(n) * math.Log2(float64(n)))
		if c > bound {
			t.Errorf("n=%d: %d compares > N·lgN bound %d", n, c, bound)
		}
		if c < bound/4 {
			t.Errorf("n=%d: %d compares suspiciously low (bound %d)", n, c, bound)
		}
	}
}

func TestMergeSortCountMatchesOracleProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		got, _ := MergeSortCount(xs)
		want, _ := SortStdlibCount(xs)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunHostSort(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	nw := newNet(t, 3)
	out, res, err := RunHostSort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		t.Fatalf("%v (out=%v)", err, out)
	}
	if res.HostComp == 0 {
		t.Error("host computation not charged")
	}
	if res.HostComm == 0 {
		t.Error("host communication not charged")
	}
}

func TestRunHostSortValidation(t *testing.T) {
	nw := newNet(t, 2)
	if _, _, err := RunHostSort(nw, []int64{1}); err == nil {
		t.Error("wrong key count: want error")
	}
	if _, _, err := RunHostSortBlocks(nw, [][]int64{{1}, {2}, {3}}); err == nil {
		t.Error("wrong block count: want error")
	}
	if _, _, err := RunHostSortBlocks(nw, [][]int64{{1}, {2}, {3}, {4, 5}}); err == nil {
		t.Error("ragged blocks: want error")
	}
}

func TestRunHostSortBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dim, m := 2, 8
	n := 1 << uint(dim)
	blocks := make([][]int64, n)
	var all []int64
	for i := range blocks {
		blocks[i] = make([]int64, m)
		for j := range blocks[i] {
			blocks[i][j] = int64(rng.Intn(100))
		}
		all = append(all, blocks[i]...)
	}
	nw := newNet(t, dim)
	out, res, err := RunHostSortBlocks(nw, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	flat := SortedBlocksFlat(out)
	if err := checker.Verify(all, flat, true); err != nil {
		t.Fatalf("%v (flat=%v)", err, flat)
	}
}

func TestRunHostVerifyAcceptsHonestSort(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	nw := newNet(t, 3)
	out, res, err := RunHostVerify(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostErr != nil {
		t.Fatalf("host rejected an honest sort: %v", res.HostErr)
	}
	if err := res.FirstNodeErr(); err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		t.Fatalf("%v (out=%v)", err, out)
	}
	if res.HostComp == 0 {
		t.Error("Theorem 1 verification cost not charged")
	}
}

func TestRunHostVerifyValidation(t *testing.T) {
	nw := newNet(t, 1)
	if _, _, err := RunHostVerify(nw, []int64{1, 2, 3}); err == nil {
		t.Error("wrong key count: want error")
	}
}

// Host-sort communication grows linearly with N while its computation
// grows as N log N — the asymptotic shape of the paper's table.
func TestHostSortCostShape(t *testing.T) {
	comm4 := hostCommFor(t, 2)
	comm16 := hostCommFor(t, 4)
	ratio := float64(comm16) / float64(comm4)
	// 4x nodes should cost roughly 4x comm (allow protocol overhead).
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("host comm ratio 16/4 nodes = %.2f, want ~4", ratio)
	}
}

func hostCommFor(t *testing.T, dim int) simnet.Ticks {
	t.Helper()
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	nw := newNet(t, dim)
	_, res, err := RunHostSort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	return res.HostComm
}

func TestHostVerifyRejectsCorruptedSort(t *testing.T) {
	// Sabotage: feed the verification phase disagreeing data by
	// corrupting what a node claims after the sort. Easiest honest
	// route: run with keys that S_NR sorts fine, then assert the
	// error path via a direct host check. The distributed corruption
	// path is covered in the fault package tests; here we pin the
	// host-side message plumbing.
	if err := checker.Verify([]int64{1, 2}, []int64{1, 3}, true); err == nil {
		t.Fatal("oracle accepted corrupted data")
	} else if !strings.Contains(err.Error(), "permutation") {
		t.Fatalf("unexpected error text: %v", err)
	}
}
