package sortnr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/checker"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func newNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSortsPaperExample(t *testing.T) {
	// Figure 5's input list on the 8-node cube.
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	nw := newNet(t, 3)
	out, res, err := Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 3, 4, 5, 7, 8, 9, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestSortsAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for dim := 0; dim <= 5; dim++ {
		n := 1 << uint(dim)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(1000) - 500)
		}
		nw := newNet(t, dim)
		out, res, err := Run(nw, keys)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if err := res.AnyErr(); err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if err := checker.Verify(keys, out, true); err != nil {
			t.Fatalf("dim %d: %v (out=%v)", dim, err, out)
		}
	}
}

func TestSortsWithDuplicates(t *testing.T) {
	keys := []int64{5, 5, 1, 5, 1, 1, 5, 1}
	nw := newNet(t, 3)
	out, res, err := Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AnyErr(); err != nil {
		t.Fatal(err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		t.Fatalf("%v (out=%v)", err, out)
	}
}

func TestSortRandomProperty(t *testing.T) {
	f := func(raw [16]int32) bool {
		keys := make([]int64, 16)
		for i, v := range raw {
			keys[i] = int64(v)
		}
		nw := newNet(t, 4)
		out, res, err := Run(nw, keys)
		if err != nil || res.AnyErr() != nil {
			return false
		}
		return checker.Verify(keys, out, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunValidatesKeyCount(t *testing.T) {
	nw := newNet(t, 2)
	if _, _, err := Run(nw, []int64{1, 2}); err == nil {
		t.Error("2 keys for 4 nodes: want error")
	}
}

func TestMessageCountMatchesSchedule(t *testing.T) {
	// Each of the n(n+1)/2 parallel steps sends exactly N messages
	// (one from each node: the passive key and the active reply).
	dim := 4
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	nw := newNet(t, dim)
	_, res, err := Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	steps := dim * (dim + 1) / 2
	want := int64(n * steps)
	if got := res.Metrics.MsgsByKind[wire.KindExchange]; got != want {
		t.Errorf("exchange messages = %d, want %d", got, want)
	}
}

// A Byzantine lie in S_NR corrupts the result with no error signal —
// the contrast that motivates S_FT.
func TestByzantineCorruptsSilently(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		opts := Options{}
		if id == 5 {
			opts.Tamper = func(m *wire.Message) *wire.Message {
				// Lie after the first exchange (env. assumption 5).
				if m.Stage == 0 && m.Iter == 0 {
					return m
				}
				p, err := wire.DecodeExchange(m.Payload)
				if err != nil || len(p.Keys) == 0 {
					return m
				}
				p.Keys[0] = 999 // substitute a bogus value
				m.Payload = wire.EncodeExchange(p)
				return m
			}
		}
		progs[id] = NodeProgram(keys[id], &out[id], opts)
	}
	nw := newNet(t, dim)
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No node reports an error...
	if err := res.AnyErr(); err != nil {
		t.Fatalf("S_NR unexpectedly detected the fault: %v", err)
	}
	// ...yet the output is wrong.
	if checker.Verify(keys, out, true) == nil {
		t.Fatalf("expected corrupted output, got a correct sort: %v", out)
	}
}

func TestByzantineSilenceIsAbsence(t *testing.T) {
	dim := 2
	n := 1 << uint(dim)
	keys := []int64{4, 3, 2, 1}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		opts := Options{}
		if id == 1 {
			opts.Tamper = func(m *wire.Message) *wire.Message {
				if m.Stage >= 1 {
					return nil // go silent from stage 1 on
				}
				return m
			}
		}
		progs[id] = NodeProgram(keys[id], &out[id], opts)
	}
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstNodeErr() == nil {
		t.Fatal("silence went unnoticed; expected ErrAbsent somewhere")
	}
}

func TestVirtualTimeGrowsWithDim(t *testing.T) {
	prev := simnet.Ticks(0)
	for dim := 1; dim <= 4; dim++ {
		n := 1 << uint(dim)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(n - i)
		}
		nw := newNet(t, dim)
		_, res, err := Run(nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan() <= prev {
			t.Fatalf("dim %d makespan %d not greater than dim %d's %d", dim, res.Makespan(), dim-1, prev)
		}
		prev = res.Makespan()
	}
}

func sortedCopy(xs []int64) []int64 {
	out := append([]int64{}, xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestOutputIsSortedCopy(t *testing.T) {
	keys := []int64{7, -2, 7, 0}
	nw := newNet(t, 2)
	out, _, err := Run(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(keys)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}
