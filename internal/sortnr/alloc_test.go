package sortnr

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
)

// TestExchangeStepZeroAllocs pins the steady-state cost of one S_NR
// compare-exchange over the simulated network at zero allocations:
// encode into the runner's buffer, send through the pooled link,
// zero-copy decode on the far side. Both endpoints run on one
// goroutine — the passive side sends before the active side receives,
// so no step ever blocks.
func TestExchangeStepZeroAllocs(t *testing.T) {
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ep0, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	active := &runner{ep: ep0}  // bit 0 of node 0 is clear: active
	passive := &runner{ep: ep1} // bit 0 of node 1 is set: passive

	a0, a1 := int64(7), int64(3)
	step := func() {
		// Passive sends first so the active side's Recv never blocks.
		if err := passive.sendKey(0, 0, 0, a1); err != nil {
			t.Fatal(err)
		}
		var err error
		a0, err = active.exchangeStep(a0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		a1, err = passive.recvOneKey(0)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Warm up: grow the encode buffers, decode scratch, and the link's
	// packet/buffer pools to steady state.
	for i := 0; i < 8; i++ {
		step()
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Errorf("exchange step: %v allocs/op, want 0", n)
	}
	if a0 > a1 {
		t.Errorf("exchange order violated: active %d > passive %d", a0, a1)
	}
}

// TestInstrumentedExchangeStepZeroAllocs is the ISSUE acceptance gate
// for the observability layer: the same steady-state compare-exchange,
// but with the full unified instrumentation enabled — transport
// message/byte counters, round spans into the journal — must still be
// zero allocations per step.
func TestInstrumentedExchangeStepZeroAllocs(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 512)
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second, Obs: o.Metrics()})
	if err != nil {
		t.Fatal(err)
	}
	ep0, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	active := &runner{ep: ep0, opts: Options{Obs: o}}
	passive := &runner{ep: ep1, opts: Options{Obs: o}}

	a0, a1 := int64(7), int64(3)
	step := func() {
		// The round spans runNode brackets every exchange with.
		o.RoundBegin(0, 0, 0, int64(ep0.Clock()))
		if err := passive.sendKey(0, 0, 0, a1); err != nil {
			t.Fatal(err)
		}
		var err error
		a0, err = active.exchangeStep(a0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		a1, err = passive.recvOneKey(0)
		if err != nil {
			t.Fatal(err)
		}
		o.RoundEnd(0, 0, 0, int64(ep0.Clock()))
	}

	for i := 0; i < 8; i++ {
		step()
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("instrumented exchange step: %v allocs/op, want 0", n)
	}
	if o.Journal().Total() == 0 {
		t.Error("journal recorded nothing")
	}
	if o.Metrics().MsgsTotal[1].Value() == 0 {
		t.Error("transport counters recorded nothing")
	}
}

// TestTracedExchangeStepZeroAllocs is the ISSUE acceptance gate for the
// causal tracing layer: the instrumented steady-state compare-exchange
// with a flight recorder attached — every message stamped with a trace
// trailer on send, linked on receive, both landing in the per-node
// rings — must still be zero allocations per step. The rings are
// preallocated and overwrite in place, so steady state (including after
// wrap) allocates nothing.
func TestTracedExchangeStepZeroAllocs(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 512)
	// A small ring so the measurement window runs in the wrapped
	// (overwrite) regime, not just the fill regime.
	flight := forensic.New(64)
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second, Obs: o.Metrics(), Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	ep0, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := nw.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	active := &runner{ep: ep0, opts: Options{Obs: o}}
	passive := &runner{ep: ep1, opts: Options{Obs: o}}

	a0, a1 := int64(7), int64(3)
	step := func() {
		o.RoundBegin(0, 0, 0, int64(ep0.Clock()))
		if err := passive.sendKey(0, 0, 0, a1); err != nil {
			t.Fatal(err)
		}
		var err error
		a0, err = active.exchangeStep(a0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		a1, err = passive.recvOneKey(0)
		if err != nil {
			t.Fatal(err)
		}
		o.RoundEnd(0, 0, 0, int64(ep0.Clock()))
	}

	// Warm up past the ring capacity so AllocsPerRun measures the
	// overwrite path.
	for i := 0; i < 80; i++ {
		step()
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("traced exchange step: %v allocs/op, want 0", n)
	}
	if flight.Node(0).Len() == 0 || flight.Node(1).Len() == 0 {
		t.Error("flight recorder captured nothing — tracing was not active")
	}
}
