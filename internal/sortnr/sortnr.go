// Package sortnr implements S_NR, the paper's non-redundant (and
// non-fault-tolerant) distributed bitonic sort of Figure 2: one key
// per node on an n-dimensional hypercube, sorted ascending by node
// label in n(n+1)/2 compare-exchange steps.
//
// S_NR is the performance baseline for S_FT and, under fault
// injection, the cautionary tale: a single Byzantine node corrupts the
// output silently.
package sortnr

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Options tunes a node program. The zero value is the honest protocol.
type Options struct {
	// Tamper, when non-nil, intercepts every outgoing message just
	// before transmission, modelling a Byzantine processor: it may
	// mutate the message (value lies, wrong compare-exchange results),
	// return a replacement, or return nil to stay silent. It is called
	// with From/To already stamped so strategies can vary by receiver.
	Tamper func(m *wire.Message) *wire.Message
	// Obs, when non-nil, receives stage and round spans. S_NR has no Φ
	// predicates to report; the spans exist so the baseline's schedule
	// shows up in the same journal as S_FT's. Nil-safe,
	// allocation-free, and never charges virtual time.
	Obs *obs.Observer
}

// NodeProgram returns the S_NR program for one node. The node's
// initial key is key; its final key is written to *out on completion
// (each node writes only its own slot, so a shared slice needs no
// locking).
func NodeProgram(key int64, out *int64, opts Options) node.Program {
	return func(ep transport.Endpoint) error {
		a, err := runNode(ep, key, opts)
		if err != nil {
			return err
		}
		*out = a
		return nil
	}
}

// Run executes S_NR over the network with keys[id] as node id's input
// and returns the gathered output (out[id] = node id's final key)
// along with the harness result.
func Run(nw transport.Network, keys []int64) ([]int64, *node.Result, error) {
	n := nw.Topology().Nodes()
	if len(keys) != n {
		return nil, nil, fmt.Errorf("sortnr: %d keys for %d nodes", len(keys), n)
	}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		progs[id] = NodeProgram(keys[id], &out[id], Options{})
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("sortnr: %w", err)
	}
	return out, res, nil
}

func runNode(ep transport.Endpoint, key int64, opts Options) (int64, error) {
	id := ep.ID()
	n := ep.Topology().Dim()
	r := &runner{ep: ep, opts: opts}
	a := key
	for i := 0; i < n; i++ {
		stageVT := int64(ep.Clock())
		opts.Obs.StageBegin(id, i, false, stageVT)
		for j := i; j >= 0; j-- {
			opts.Obs.RoundBegin(id, i, j, int64(ep.Clock()))
			var err error
			a, err = r.exchangeStep(a, i, j)
			if err != nil {
				return 0, fmt.Errorf("sortnr: node %d stage %d iter %d: %w", id, i, j, err)
			}
			opts.Obs.RoundEnd(id, i, j, int64(ep.Clock()))
		}
		opts.Obs.StageEnd(id, i, false, stageVT, int64(ep.Clock()))
	}
	return a, nil
}

// runner holds one node's reusable scratch — encode buffer, zero-copy
// decode scratch, and the one-key send staging array — so the
// steady-state exchange path performs no allocation.
type runner struct {
	ep   transport.Endpoint
	opts Options
	enc  []byte
	dec  wire.DecodeScratch
	kbuf [1]int64
}

// exchangeStep performs the (i, j) compare-exchange of Figure 2 and
// returns the node's new key. The node with a zero in bit j is active:
// it receives the partner's key, compares, keeps one value, and sends
// the other back. The partner is passive: it sends its key and adopts
// whatever comes back.
func (r *runner) exchangeStep(a int64, i, j int) (int64, error) {
	id := r.ep.ID()
	ascending := r.ep.Topology().Ascending(i, id)

	if id&(1<<uint(j)) == 0 { // active: node mod 2d < d
		data, err := r.recvOneKey(j)
		if err != nil {
			return 0, err
		}
		r.ep.ChargeCompare(1)
		lo, hi := minmax(data, a)
		keep, send := lo, hi
		if !ascending {
			keep, send = hi, lo
		}
		if err := r.sendKey(j, i, j, send); err != nil {
			return 0, err
		}
		return keep, nil
	}

	// Passive node: send our key, adopt the returned key.
	if err := r.sendKey(j, i, j, a); err != nil {
		return 0, err
	}
	return r.recvOneKey(j)
}

func (r *runner) recvOneKey(bit int) (int64, error) {
	got, err := r.ep.Recv(bit)
	if err != nil {
		return 0, err
	}
	p, err := wire.DecodeExchangeInto(&r.dec, got.Payload)
	if err != nil {
		return 0, err
	}
	if len(p.Keys) != 1 {
		return 0, fmt.Errorf("expected 1 key, got %d", len(p.Keys))
	}
	return p.Keys[0], nil
}

func (r *runner) sendKey(bit, stage, iter int, key int64) error {
	r.kbuf[0] = key
	r.enc = wire.AppendExchange(r.enc[:0], r.kbuf[:])
	m := wire.Message{
		Kind:    wire.KindExchange,
		Stage:   int32(stage),
		Iter:    int32(iter),
		Payload: r.enc,
	}
	if r.opts.Tamper != nil {
		return r.sendTampered(bit, m)
	}
	return r.ep.Send(bit, m)
}

// sendTampered is the Byzantine branch of sendKey, kept out of line:
// Tamper takes the message's address, which would otherwise force
// every honest send's message to the heap.
func (r *runner) sendTampered(bit int, m wire.Message) error {
	partner, err := r.ep.Topology().Partner(r.ep.ID(), bit)
	if err != nil {
		return err
	}
	m.From = int32(r.ep.ID())
	m.To = int32(partner)
	out := r.opts.Tamper(&m)
	if out == nil {
		return nil // Byzantine silence
	}
	return r.ep.Send(bit, *out)
}

func minmax(x, y int64) (lo, hi int64) {
	if x <= y {
		return x, y
	}
	return y, x
}
