// Scheduler conformance battery: every Scheduler implementation must
// deliver the same transport contract — no message dropped, duplicated,
// or delivered out of per-link FIFO order unless a fault injector says
// so — and controlled runs must replay bit-identically.
//
// The battery lives in an external test package because it drives the
// schedulers through internal/core and internal/fault, which import
// simnet.
package simnet_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// schedulers under conformance test. The enumerating scheduler used by
// internal/explore is exercised by that package's own tests against
// the same invariants (it cannot appear here without an import cycle
// through explore's test helpers).
func conformanceScheds() map[string]func() simnet.Scheduler {
	return map[string]func() simnet.Scheduler{
		"free":     func() simnet.Scheduler { return nil },
		"random-1": func() simnet.Scheduler { return simnet.NewRandom(1) },
		"random-2": func() simnet.Scheduler { return simnet.NewRandom(2) },
		// replay with no directives: every decision resolves canonically.
		"replay-canonical": func() simnet.Scheduler { return simnet.NewReplay(nil) },
	}
}

// fifoProgram sends count sequenced messages across every cube
// dimension and to the host, and asserts every inbound link stream
// arrives gap-free and in order.
func fifoProgram(count int) func(id int) node.Program {
	return func(id int) node.Program {
		return func(ep transport.Endpoint) error {
			dim := ep.Topology().Dim()
			for i := 0; i < count; i++ {
				for bit := 0; bit < dim; bit++ {
					m := wire.Message{Kind: wire.KindExchange, Stage: 1, Iter: int32(i),
						Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{int64(i)}})}
					if err := ep.Send(bit, m); err != nil {
						return err
					}
				}
				m := wire.Message{Kind: wire.KindError, Stage: 1, Iter: int32(i),
					Payload: wire.EncodeError(wire.ErrorPayload{Predicate: "conformance", Accused: -1})}
				if err := ep.SendHost(m); err != nil {
					return err
				}
			}
			for bit := 0; bit < dim; bit++ {
				for i := 0; i < count; i++ {
					m, err := ep.Recv(bit)
					if err != nil {
						return fmt.Errorf("recv bit %d iter %d: %w", bit, i, err)
					}
					if int(m.Iter) != i {
						return fmt.Errorf("bit %d: got iter %d, want %d (FIFO violated)", bit, m.Iter, i)
					}
				}
			}
			return nil
		}
	}
}

// TestSchedulerConformanceFIFO runs the battery: under every scheduler,
// per-link streams stay FIFO with no drops or duplicates, and the host
// mailbox preserves per-sender order.
func TestSchedulerConformanceFIFO(t *testing.T) {
	const count = 5
	for name, mk := range conformanceScheds() {
		for _, dim := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/dim%d", name, dim), func(t *testing.T) {
				nw, err := simnet.New(simnet.Config{Dim: dim, Sched: mk()})
				if err != nil {
					t.Fatal(err)
				}
				n := nw.Topology().Nodes()
				progs := make([]node.Program, n)
				for id := 0; id < n; id++ {
					progs[id] = fifoProgram(count)(id)
				}
				res, err := node.RunPer(nw, progs, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := res.FirstNodeErr(); err != nil {
					t.Fatalf("node error: %v", err)
				}
				// Host drain: per-sender iters must be gap-free and in
				// order; total count must be exact (no drop, no dup).
				h := nw.Host()
				seen := make(map[int]int)
				total := 0
				for {
					m, ok, err := h.TryRecv()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					from := int(m.From)
					if int(m.Iter) != seen[from] {
						t.Fatalf("host: sender %d iter %d, want %d (per-sender FIFO violated)", from, m.Iter, seen[from])
					}
					seen[from]++
					total++
				}
				if total != n*count {
					t.Fatalf("host drained %d messages, want %d (drop or dup)", total, n*count)
				}
			})
		}
	}
}

// TestControlledHonestMatchesFree pins schedule-independence of virtual
// time: an honest S_FT run produces the same sorted output and the same
// per-node virtual clocks under the free scheduler and under any
// controlled schedule.
func TestControlledHonestMatchesFree(t *testing.T) {
	for _, dim := range []int{1, 2} {
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			n := 1 << uint(dim)
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(n - i) // descending input
			}
			run := func(sched simnet.Scheduler) *core.Outcome {
				nw, err := simnet.New(simnet.Config{Dim: dim, Sched: sched})
				if err != nil {
					t.Fatal(err)
				}
				oc, err := core.Run(nw, append([]int64(nil), keys...))
				if err != nil {
					t.Fatal(err)
				}
				return oc
			}
			free := run(nil)
			ctl := run(simnet.NewRandom(7))
			if free.Detected() || ctl.Detected() {
				t.Fatalf("honest run detected a fault: free=%v ctl=%v", free.Detected(), ctl.Detected())
			}
			if err := checker.Verify(keys, ctl.Sorted, true); err != nil {
				t.Fatalf("controlled output not sorted: %v", err)
			}
			if !reflect.DeepEqual(free.Sorted, ctl.Sorted) {
				t.Fatalf("outputs differ: free=%v ctl=%v", free.Sorted, ctl.Sorted)
			}
			for id := range free.Result.Nodes {
				f, c := free.Result.Nodes[id], ctl.Result.Nodes[id]
				if f.Clock != c.Clock || f.CommTicks != c.CommTicks || f.CompTicks != c.CompTicks {
					t.Fatalf("node %d vticks differ: free=(%d,%d,%d) ctl=(%d,%d,%d)",
						id, f.Clock, f.CommTicks, f.CompTicks, c.Clock, c.CommTicks, c.CompTicks)
				}
			}
		})
	}
}

// faultedRun executes S_FT with a key-lie at one node under the given
// scheduler, with flight recording attached, and returns the outcome,
// the recorded schedule, and the forensic dumps.
func faultedRun(t *testing.T, dim int, sched simnet.Scheduler) (*core.Outcome, []simnet.Step, []*forensic.Report) {
	t.Helper()
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	spec := fault.Spec{Node: 1, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 999}
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{Dim: dim, Sched: sched, Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	opts := make([]core.Options, n)
	opts[spec.Node] = core.Options{SkipChecks: true, Tamper: spec.Tamper()}
	for i := range opts {
		opts[i].Forensic = flight.Node(i)
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return oc, nw.Steps(), flight.Reports()
}

// TestControlledReplayBitIdentical pins the replay guarantee: replaying
// a recorded schedule reproduces the run bit-for-bit — same host
// evidence in the same drain order, same virtual clocks, every replay
// directive consumed, and the same recorded schedule.
func TestControlledReplayBitIdentical(t *testing.T) {
	orig, steps, odumps := faultedRun(t, 2, simnet.NewRandom(3))
	if !orig.Detected() {
		t.Fatal("key-lie run was not detected")
	}
	directives := simnet.PickedActions(steps)
	rs := simnet.NewReplay(directives)
	replay, rsteps, rdumps := faultedRun(t, 2, rs)

	if !reflect.DeepEqual(orig.HostErrors, replay.HostErrors) {
		t.Fatalf("host evidence differs:\n orig: %+v\nreplay: %+v", orig.HostErrors, replay.HostErrors)
	}
	for id := range orig.Result.Nodes {
		o, r := orig.Result.Nodes[id], replay.Result.Nodes[id]
		if o.Clock != r.Clock || o.CommTicks != r.CommTicks || o.CompTicks != r.CompTicks {
			t.Fatalf("node %d vticks differ under replay", id)
		}
	}
	if rs.Matched != len(directives) || rs.Canonical != 0 {
		t.Fatalf("replay not faithful: matched %d/%d, canonical %d", rs.Matched, len(directives), rs.Canonical)
	}
	if !reflect.DeepEqual(simnet.PickedActions(rsteps), directives) {
		t.Fatalf("replayed schedule differs from original:\n orig: %v\nreplay: %v", directives, simnet.PickedActions(rsteps))
	}
	// Forensic dumps must be byte-identical too: the flight rings see
	// the same events with the same virtual timestamps.
	if len(odumps) != len(rdumps) {
		t.Fatalf("dump count differs: orig %d, replay %d", len(odumps), len(rdumps))
	}
	for i := range odumps {
		oj, err := odumps[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		rj, err := rdumps[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(oj) != string(rj) {
			t.Fatalf("forensic dump %d differs under replay:\n orig: %s\nreplay: %s", i, oj, rj)
		}
	}
}

// TestControlledCrashAbsence pins virtual-time absence: with one node
// crashed, a controlled run terminates promptly (no wall-clock timeout
// cascade) and the survivors detect the absence.
func TestControlledCrashAbsence(t *testing.T) {
	for _, dim := range []int{1, 2} {
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			n := 1 << uint(dim)
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(n - i)
			}
			nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 5 * time.Second, Sched: simnet.NewRandom(11)})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int64, n)
			progs := make([]node.Program, n)
			for id := 1; id < n; id++ {
				progs[id] = core.NodeProgram(keys[id], &out[id], core.Options{})
			}
			start := time.Now()
			res, err := node.RunPer(nw, progs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("crash run took %v: absence fell back to the wall-clock watchdog", elapsed)
			}
			detected := false
			for _, o := range res.Nodes {
				if o.Err != nil {
					detected = true
					if !errors.Is(o.Err, transport.ErrAbsent) && !errors.Is(o.Err, core.ErrProtocol) {
						t.Logf("node error (non-absence): %v", o.Err)
					}
				}
			}
			if !detected {
				t.Fatal("no survivor detected the crashed node")
			}
		})
	}
}
