// Scheduler seam: message delivery order is pluggable.
//
// A simnet Network runs in one of two regimes:
//
//   - Free-running (the default, Config.Sched nil or Free()): links are
//     raw buffered channels and delivery order is whatever the Go
//     runtime produces. This is the zero-overhead path every benchmark
//     and experiment pins — per-link order is still FIFO (each cube
//     link has a unique writer), but multi-producer order into the
//     host mailbox and timeout races are decided by the OS scheduler.
//
//   - Controlled (any other Scheduler): delivery is mediated by a
//     coordinator (controlled.go). The network waits until every live
//     worker is parked at a blocking receive, fires all *forced*
//     deliveries — those whose order no realizable execution can vary:
//     a cube or host-downlink queue has a unique writer, so its FIFO
//     head is the receiver's only possible next message — and consults
//     the Scheduler only at genuine races: which sender's pending
//     message the host mailbox yields next, or whether a poll beats a
//     concurrent send. This is DPOR-style independence by
//     construction: deliveries to distinct receivers commute, so they
//     are batched instead of branched.
//
// Every consulted decision is recorded as a Step, so any controlled
// run yields a schedule that NewReplay replays deterministically:
// bit-identical virtual-tick series, identical forensic dumps.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/wire"
)

// QueueKind discriminates the three delivery queue families.
type QueueKind uint8

const (
	// QLink is a cube link: inbound at Queue.Node from its partner
	// across dimension Queue.Bit. Unique writer, FIFO forced.
	QLink QueueKind = iota + 1
	// QHostIn is the host's inbound mailbox. Every node writes it, so
	// merge order across senders is a genuine race — the scheduler's
	// main choice point. Per-sender order stays FIFO.
	QHostIn
	// QHostOut is node Queue.Node's inbound mailbox for host messages.
	// Unique writer (the host), FIFO forced.
	QHostOut
)

// String names the queue kind.
func (k QueueKind) String() string {
	switch k {
	case QLink:
		return "link"
	case QHostIn:
		return "host-in"
	case QHostOut:
		return "host-out"
	default:
		return fmt.Sprintf("queue(%d)", uint8(k))
	}
}

// QueueID names one delivery queue.
type QueueID struct {
	Kind QueueKind `json:"kind"`
	// Node is the receiving node label (HostID for QHostIn).
	Node int `json:"node"`
	// Bit is the cube dimension for QLink, 0 otherwise.
	Bit int `json:"bit"`
}

func (q QueueID) String() string {
	if q.Kind == QLink {
		return fmt.Sprintf("link[%d.%d]", q.Node, q.Bit)
	}
	return fmt.Sprintf("%v[%d]", q.Kind, q.Node)
}

// ActionKind discriminates what an enabled scheduling action does.
type ActionKind uint8

const (
	// ActDeliver hands a pending message to the queue's receiver.
	ActDeliver ActionKind = iota + 1
	// ActEmpty resolves a non-blocking poll (TryRecv) as "nothing
	// pending yet" — the interleaving where the poll beat concurrent
	// sends. Enabled only while senders are still live.
	ActEmpty
)

// Action is one enabled scheduling action at a decision point. Its
// identity is positional, not content-addressed: From plus Seq (the
// per-(queue, sender) delivery index) names the same message on every
// re-execution of the same choice prefix, which is what lets replay
// directives survive schedule shrinking.
type Action struct {
	Kind  ActionKind `json:"act"`
	Queue QueueID    `json:"queue"`
	// From is the sending node label (HostID when the host sent it).
	// Meaningless for ActEmpty.
	From int `json:"from,omitempty"`
	// Seq is the 0-based index of this message among all messages From
	// has sent into Queue.
	Seq uint64 `json:"seq"`
	// MsgKind, Stage, and Iter describe the pending message's header,
	// for human-readable schedules. They do not participate in
	// identity.
	MsgKind wire.Kind `json:"msg,omitempty"`
	Stage   int32     `json:"stage,omitempty"`
	Iter    int32     `json:"iter,omitempty"`
}

// Same reports whether two actions name the same scheduling choice
// (identity fields only; header metadata is advisory).
func (a Action) Same(b Action) bool {
	return a.Kind == b.Kind && a.Queue == b.Queue && a.From == b.From && a.Seq == b.Seq
}

func (a Action) String() string {
	if a.Kind == ActEmpty {
		return fmt.Sprintf("empty(%v)", a.Queue)
	}
	return fmt.Sprintf("deliver(%v<-%d #%d %v s%d i%d)", a.Queue, a.From, a.Seq, a.MsgKind, a.Stage, a.Iter)
}

// Decision is one consulted scheduling choice: the canonical state
// hash at the quiescent point and the enabled actions, in canonical
// order (sorted by queue, then sender). len(Enabled) >= 2 — forced
// moves are never consulted.
type Decision struct {
	// Point is the 0-based index of this decision within the run.
	Point int
	// State is the canonical state hash at this decision point: each
	// node worker's exact receive-history digest plus park/done status,
	// with host-mailbox drain history folded commutatively (its only
	// consumers canonicalize order), plus all pending queue contents.
	// Equal hashes mean the same abstract system state, so subtrees
	// below a repeated hash are redundant.
	State uint64
	// Enabled lists the schedulable actions, canonically ordered.
	Enabled []Action
}

// Step is one recorded decision: what was enabled, what was picked.
// The sequence of Steps of a controlled run is its schedule.
type Step struct {
	State   uint64   `json:"state"`
	Enabled []Action `json:"enabled"`
	Picked  int      `json:"picked"`
}

// Scheduler decides delivery order for a Network. Implementations are
// consulted from network-internal goroutines and are never called
// concurrently with themselves.
type Scheduler interface {
	// Controlled reports whether the network must mediate delivery
	// through the coordinator. The free scheduler returns false and is
	// never consulted; everything else returns true.
	Controlled() bool
	// Pick chooses one of d.Enabled (returning its index) at a
	// consulted decision point. Out-of-range returns are clamped to
	// the canonical choice 0.
	Pick(d Decision) int
}

// freeSched is the default free-running scheduler: raw channels, OS
// scheduling, zero overhead.
type freeSched struct{}

func (freeSched) Controlled() bool  { return false }
func (freeSched) Pick(Decision) int { return 0 }
func (freeSched) String() string    { return "free" }

// Free returns the default scheduler: the free-running channel
// implementation the benchmarks pin. A nil Config.Sched means Free().
func Free() Scheduler { return freeSched{} }

// RandomSched picks uniformly among enabled actions, seeded — the
// controlled analogue of the chaos the OS scheduler provides for free,
// but reproducible and recorded. Use Network.Steps after the run to
// recover the schedule it chose.
type RandomSched struct {
	rng *rand.Rand
}

// NewRandom returns a seeded uniform controlled scheduler.
func NewRandom(seed int64) *RandomSched {
	return &RandomSched{rng: rand.New(rand.NewSource(seed))}
}

// Controlled reports true: random scheduling requires mediation.
func (s *RandomSched) Controlled() bool { return true }

// Pick implements Scheduler.
func (s *RandomSched) Pick(d Decision) int { return s.rng.Intn(len(d.Enabled)) }

// ReplaySched replays a recorded schedule: an ordered list of
// directives (the previously picked actions). At each decision point,
// if the next directive names an enabled action it is taken and
// consumed; otherwise the canonical choice 0 is taken and the
// directive stays, free to match a later point. Dropping a directive
// therefore degrades that one decision to canonical instead of
// desynchronizing the whole tail — the property the counterexample
// shrinker leans on.
type ReplaySched struct {
	directives []Action
	next       int
	// Matched counts directives consumed; Canonical counts decision
	// points resolved by default. Matched == len(directives) after a
	// faithful replay.
	Matched   int
	Canonical int
}

// NewReplay returns a scheduler replaying the given directives.
// Directives are typically the picked actions of a recorded run:
// PickedActions(steps).
func NewReplay(directives []Action) *ReplaySched {
	return &ReplaySched{directives: directives}
}

// Controlled reports true: replay requires mediation.
func (s *ReplaySched) Controlled() bool { return true }

// Pick implements Scheduler.
func (s *ReplaySched) Pick(d Decision) int {
	if s.next < len(s.directives) {
		want := s.directives[s.next]
		for i, a := range d.Enabled {
			if want.Same(a) {
				s.next++
				s.Matched++
				return i
			}
		}
	}
	s.Canonical++
	return 0
}

// PickedActions extracts a run's directives — the action picked at
// each recorded decision — for replay or shrinking.
func PickedActions(steps []Step) []Action {
	out := make([]Action, 0, len(steps))
	for _, st := range steps {
		if st.Picked >= 0 && st.Picked < len(st.Enabled) {
			out = append(out, st.Enabled[st.Picked])
		}
	}
	return out
}

// sortActions orders enabled actions canonically: deliveries by
// (queue kind, node, bit, sender) first, empties last. The canonical
// choice 0 is therefore stable across re-executions of the same prefix.
func sortActions(as []Action) {
	sort.Slice(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind // ActDeliver=1 before ActEmpty=2
		}
		if a.Queue.Kind != b.Queue.Kind {
			return a.Queue.Kind < b.Queue.Kind
		}
		if a.Queue.Node != b.Queue.Node {
			return a.Queue.Node < b.Queue.Node
		}
		if a.Queue.Bit != b.Queue.Bit {
			return a.Queue.Bit < b.Queue.Bit
		}
		return a.From < b.From
	})
}
