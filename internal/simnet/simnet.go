// Package simnet simulates the paper's target machine: a hypercube
// multicomputer (Ncube-class) of autonomous nodes with private memory,
// connected by point-to-point links, plus a reliable host processor.
//
// The simulator substitutes for the physical Ncube per the environmental
// assumptions of the paper:
//
//  1. node-to-node links and processors may fail in Byzantine ways —
//     modelled by LinkFault interceptors and by faulty node programs;
//  2. the host and host links are reliable — host channels bypass the
//     fault interceptors entirely;
//  3. message passing over point-to-point links is the only
//     communication; there is no atomic broadcast — a node can only
//     Send/Recv across a single cube dimension at a time;
//  4. the absence of a message is detectable — Recv enforces a timeout
//     and surfaces ErrAbsent.
//
// Time is virtual: every endpoint owns a deterministic tick clock.
// Sending charges the sender, receiving charges the receiver, and a
// message arrives at sender-departure-time + latency. The makespan of
// a run is the maximum node clock, which plays the role of the paper's
// measured "clock ticks".
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Compile-time checks: simnet implements the transport abstraction.
var (
	_ transport.Network  = (*Network)(nil)
	_ transport.Endpoint = (*Endpoint)(nil)
	_ transport.Host     = (*Host)(nil)
)

// Ticks is a quantity of virtual time (alias of transport.Ticks).
type Ticks = transport.Ticks

// CostModel assigns virtual-time costs to primitive operations
// (alias of transport.CostModel).
type CostModel = transport.CostModel

// DefaultCostModel returns the experiment harness's cost model; see
// transport.DefaultCostModel.
func DefaultCostModel() CostModel { return transport.DefaultCostModel() }

// ErrAbsent is returned by Recv when no message arrives within the
// configured timeout. Per environmental assumption 4, absence of an
// expected message is itself an error the application must surface.
// It wraps transport.ErrAbsent so callers can classify timeouts
// without knowing which network implementation ran.
var ErrAbsent = fmt.Errorf("simnet: expected message absent: %w", transport.ErrAbsent)

// ErrLinkBackpressure is returned when a link queue is full. The
// protocols in this repository exchange at most a handful of messages
// per link per step, so hitting this indicates a protocol bug rather
// than a load condition.
var ErrLinkBackpressure = errors.New("simnet: link queue full")

// linkQueueDepth is the modelled per-link hardware queue. The bitonic
// protocols keep at most a few messages in flight per link per
// exchange, so this depth makes sends non-blocking while still
// surfacing runaway senders via ErrLinkBackpressure. (The usual "size
// one or none" channel guidance is intentionally relaxed here: the
// queue depth is the modelled quantity.)
const linkQueueDepth = 32

// packet is a message in flight with its virtual arrival time. pooled
// marks buffers owned by the network's free list: the receiver recycles
// them at its next receive. Fault-path deliveries are never pooled,
// since interceptors may retain or alias the buffer.
type packet struct {
	raw     []byte
	arrival Ticks
	pooled  bool
}

// LinkFault intercepts traffic on one directed link. Apply receives
// the encoded message and returns the list of raw messages actually
// delivered: return nil to drop, a modified buffer to corrupt, or
// multiple buffers to duplicate. Implementations live in
// internal/fault; simnet only defines the seam.
type LinkFault interface {
	Apply(raw []byte) [][]byte
}

// Metrics aggregates traffic counters for a run. Counters are atomic;
// snapshots are taken with Snapshot after the run completes.
type Metrics struct {
	msgs  [8]atomic.Int64 // indexed by wire.Kind
	bytes [8]atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the traffic counters
// (alias of transport.MetricsSnapshot).
type MetricsSnapshot = transport.MetricsSnapshot

func (m *Metrics) record(kind wire.Kind, n int) {
	if int(kind) < len(m.msgs) {
		m.msgs[kind].Add(1)
		m.bytes[kind].Add(int64(n))
	}
}

// Snapshot copies the counters into a map-based view.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		MsgsByKind:  make(map[wire.Kind]int64),
		BytesByKind: make(map[wire.Kind]int64),
	}
	for k := wire.Kind(1); int(k) < len(m.msgs); k++ {
		if n := m.msgs[k].Load(); n != 0 {
			s.MsgsByKind[k] = n
			s.BytesByKind[k] = m.bytes[k].Load()
		}
	}
	return s
}

// Config parameterizes a Network.
type Config struct {
	// Dim is the hypercube dimension n; the network has 2^n nodes.
	Dim int
	// Cost is the virtual-time cost model; zero value means DefaultCostModel.
	Cost CostModel
	// RecvTimeout bounds how long a Recv waits in wall-clock time
	// before declaring the message absent. Zero means 2 seconds.
	RecvTimeout time.Duration
	// Spares is the number of spare nodes pre-registered beyond the
	// cube: physical labels 2^Dim .. 2^Dim+Spares-1 get endpoints and
	// reliable host links but no cube links. They sit idle —
	// contributing nothing to virtual time or traffic — until the
	// recovery supervisor activates one by remapping it into a future
	// attempt's cube. Negative is treated as zero.
	Spares int
	// Obs receives per-kind message and byte counters in addition to
	// the network's own Metrics. Nil means obs.DefaultMetrics(), so the
	// process-wide /metrics endpoint sees traffic without explicit
	// plumbing; recording is allocation-free and does not touch virtual
	// clocks.
	Obs *obs.Metrics
	// Flight, when non-nil, attaches causal tracing: every endpoint
	// stamps outgoing messages with a trace trailer and records
	// send/recv events in its node's flight-recorder ring. The trailer
	// bytes are excluded from cost charging and byte metrics
	// (wire.CostedLen), so tracing never perturbs virtual time.
	Flight *forensic.Flight
	// Sched selects the delivery scheduler. Nil (or Free()) keeps the
	// free-running channel implementation — the zero-overhead path the
	// benchmarks pin. Any controlled scheduler (NewRandom, NewReplay,
	// or the explorer's enumerator) mediates every delivery through the
	// coordinator in controlled.go instead: slower, but every genuine
	// race becomes a recorded, replayable decision. Harnesses must then
	// declare workers via WorkerStart/WorkerDone (internal/node does).
	Sched Scheduler
}

// Network is one simulated multicomputer instance: the links, the host
// mailboxes, the metrics, and any installed link faults. Create one
// with New. A free-running network is reusable across runs via Reset
// (controlled-scheduler networks are single-run: their coordinator
// state is not rewindable).
type Network struct {
	topo        hypercube.Topology
	cost        CostModel
	recvTimeout time.Duration
	// spares counts the idle spare endpoints registered beyond the
	// cube; they own host links only.
	spares int

	// links[node][bit] is the inbound queue at node for messages from
	// its partner across dimension bit.
	links [][]chan packet
	// hostIn is the host's inbound mailbox (any node -> host).
	hostIn chan packet
	// hostOut[node] is node's inbound mailbox for host messages.
	hostOut []chan packet

	mu     sync.RWMutex
	faults map[[2]int][]LinkFault // key: {from, to}
	// faultCount mirrors the total number of installed faults so Send
	// can skip the fault table (and its RLock) entirely when the count
	// is zero — the common case for every no-fault benchmark run.
	faultCount atomic.Int32

	// pool is a free list of message buffers shared by all endpoints.
	// A channel (rather than sync.Pool) keeps Get/Put allocation-free:
	// boxing a []byte in an interface would itself allocate.
	pool chan []byte

	metrics Metrics
	obsM    *obs.Metrics
	flight  *forensic.Flight

	// ctrl is non-nil iff the network runs under a controlled
	// scheduler; every delivery then routes through it instead of the
	// raw channels. The free path pays one nil test.
	ctrl *controller
}

// poolBufCap sizes fresh pool buffers to hold an FT-exchange frame for
// the dimensions the experiments sweep without regrowth.
const poolBufCap = 1024

func (nw *Network) getBuf() []byte {
	select {
	case b := <-nw.pool:
		return b[:0]
	default:
		return make([]byte, 0, poolBufCap)
	}
}

func (nw *Network) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case nw.pool <- b:
	default: // pool full; let the GC have it
	}
}

// New constructs a network for the given configuration.
func New(cfg Config) (*Network, error) {
	topo, err := hypercube.New(cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	cost := cfg.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	timeout := cfg.RecvTimeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	obsM := cfg.Obs
	if obsM == nil {
		obsM = obs.DefaultMetrics()
	}
	spares := cfg.Spares
	if spares < 0 {
		spares = 0
	}
	n := topo.Nodes()
	net := &Network{
		topo:        topo,
		cost:        cost,
		recvTimeout: timeout,
		spares:      spares,
		links:       make([][]chan packet, n),
		hostIn:      make(chan packet, 4*n+16),
		hostOut:     make([]chan packet, n+spares),
		faults:      make(map[[2]int][]LinkFault),
		pool:        make(chan []byte, 4*n+16),
		obsM:        obsM,
		flight:      cfg.Flight,
	}
	for id := 0; id < n; id++ {
		net.links[id] = make([]chan packet, topo.Dim())
		for b := 0; b < topo.Dim(); b++ {
			net.links[id][b] = make(chan packet, linkQueueDepth)
		}
	}
	// Spares share the reliable host interface (that is how they would
	// be loaded and activated) but have no cube links until a remap
	// promotes one into the cube proper.
	for id := 0; id < n+spares; id++ {
		net.hostOut[id] = make(chan packet, linkQueueDepth)
	}
	if cfg.Sched != nil && cfg.Sched.Controlled() {
		net.ctrl = newController(net, cfg.Sched)
	}
	return net, nil
}

// Spares returns the number of idle spare endpoints registered beyond
// the cube.
func (nw *Network) Spares() int { return nw.spares }

// isSpare reports whether id names a registered spare (a label beyond
// the cube with a host link but no cube links).
func (nw *Network) isSpare(id int) bool {
	return id >= nw.topo.Nodes() && id < nw.topo.Nodes()+nw.spares
}

// Reset readies a quiescent free-running network for another run: all
// link and host mailboxes are drained (pooled buffers returned to the
// free list), installed link faults are removed, the per-run traffic
// counters are zeroed, and the observability sinks are rebound (nil
// obsM selects obs.DefaultMetrics, mirroring New). Must only be called
// between runs, when no endpoint or host goroutine is live. Controlled
// networks refuse: their coordinator state is not rewindable.
func (nw *Network) Reset(obsM *obs.Metrics, flight *forensic.Flight) error {
	if nw.ctrl != nil {
		return errors.New("simnet: controlled-scheduler networks are single-run")
	}
	for _, chans := range nw.links {
		for _, ch := range chans {
			nw.drainPackets(ch)
		}
	}
	for _, ch := range nw.hostOut {
		nw.drainPackets(ch)
	}
	nw.drainPackets(nw.hostIn)
	nw.mu.Lock()
	clear(nw.faults)
	nw.mu.Unlock()
	nw.faultCount.Store(0)
	for k := range nw.metrics.msgs {
		nw.metrics.msgs[k].Store(0)
		nw.metrics.bytes[k].Store(0)
	}
	if obsM == nil {
		obsM = obs.DefaultMetrics()
	}
	nw.obsM = obsM
	nw.flight = flight
	return nil
}

// drainPackets empties a mailbox without blocking, recycling pooled
// buffers.
func (nw *Network) drainPackets(ch chan packet) {
	for {
		select {
		case pkt := <-ch:
			if pkt.pooled {
				nw.putBuf(pkt.raw)
			}
		default:
			return
		}
	}
}

// Topology returns the underlying hypercube.
func (nw *Network) Topology() hypercube.Topology { return nw.topo }

// Cost returns the network's cost model.
func (nw *Network) Cost() CostModel { return nw.cost }

// Metrics returns a snapshot of the traffic counters.
func (nw *Network) Metrics() MetricsSnapshot { return nw.metrics.Snapshot() }

// InstallLinkFault attaches a fault interceptor to the directed link
// from -> to. Multiple faults compose in installation order. Host
// links are reliable by assumption and cannot be faulted.
func (nw *Network) InstallLinkFault(from, to int, f LinkFault) error {
	if !nw.topo.AreNeighbors(from, to) {
		return fmt.Errorf("simnet: %d -> %d is not a hypercube link", from, to)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	key := [2]int{from, to}
	nw.faults[key] = append(nw.faults[key], f)
	nw.faultCount.Add(1)
	return nil
}

func (nw *Network) linkFaults(from, to int) []LinkFault {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.faults[[2]int{from, to}]
}

// Endpoint is a node's handle on the network. It owns the node's
// virtual clock and is confined to that node's goroutine: none of its
// methods are safe for concurrent use.
type Endpoint struct {
	net *Network
	id  int

	clock     Ticks
	commTicks Ticks
	compTicks Ticks

	// recvTimer is reused across blocking receives so the steady state
	// allocates no timers. It is only ever Reset after a clean Stop or
	// after its tick was consumed, which is safe under both pre- and
	// post-1.23 timer semantics.
	recvTimer *time.Timer
	// pendingFree is the pooled buffer backing the most recently
	// delivered message; it is recycled at the next receive, which is
	// what bounds the validity of a zero-copy Payload.
	pendingFree []byte

	// rec is the node's flight recorder, nil when the network has no
	// Flight attached (a nil recorder discards, so hot paths pay one
	// pointer test).
	rec *forensic.Recorder
}

// release recycles the buffer behind the previously delivered message.
func (e *Endpoint) release() {
	if e.pendingFree != nil {
		e.net.putBuf(e.pendingFree)
		e.pendingFree = nil
	}
}

// armTimer returns the endpoint's receive timer, running with the
// network's timeout.
func (e *Endpoint) armTimer() *time.Timer {
	if e.recvTimer == nil {
		e.recvTimer = time.NewTimer(e.net.recvTimeout)
	} else {
		e.recvTimer.Reset(e.net.recvTimeout)
	}
	return e.recvTimer
}

// disarmTimer stops the receive timer after a successful receive. If
// the timer already fired its tick may still be in flight, so the timer
// is retired instead of risking a stale tick on reuse.
func (e *Endpoint) disarmTimer() {
	if !e.recvTimer.Stop() {
		e.recvTimer = nil
	}
}

// Endpoint returns the endpoint for a node. Call once per node before
// starting its goroutine. Spare labels (beyond the cube, when
// Config.Spares pre-registered them) get endpoints with host links
// only: their Send/Recv across cube dimensions fail until a recovery
// remap promotes the spare into a future attempt's cube.
func (nw *Network) Endpoint(id int) (transport.Endpoint, error) {
	if !nw.topo.Contains(id) && !nw.isSpare(id) {
		return nil, fmt.Errorf("simnet: node %d outside cube of %d nodes (+%d spares)",
			id, nw.topo.Nodes(), nw.spares)
	}
	return &Endpoint{net: nw, id: id, rec: nw.flight.Node(id)}, nil
}

// ID returns the node label.
func (e *Endpoint) ID() int { return e.id }

// Topology returns the hypercube the endpoint belongs to.
func (e *Endpoint) Topology() hypercube.Topology { return e.net.topo }

// Clock returns the node's current virtual time.
func (e *Endpoint) Clock() Ticks { return e.clock }

// CommTicks returns the virtual time this node spent on communication.
func (e *Endpoint) CommTicks() Ticks { return e.commTicks }

// CompTicks returns the virtual time this node spent computing.
func (e *Endpoint) CompTicks() Ticks { return e.compTicks }

// Compute advances the node clock by a computation cost.
func (e *Endpoint) Compute(t Ticks) {
	if t < 0 {
		t = 0
	}
	e.clock += t
	e.compTicks += t
}

// ChargeCompare charges the cost of n key comparisons.
func (e *Endpoint) ChargeCompare(n int) { e.Compute(Ticks(n) * e.net.cost.Compare) }

// ChargeKeyMove charges the cost of moving n keys in local memory.
func (e *Endpoint) ChargeKeyMove(n int) { e.Compute(Ticks(n) * e.net.cost.KeyMove) }

// Send transmits a message to the partner across the given dimension
// bit. The sender's clock advances by the send cost; the message is
// stamped to arrive Latency ticks after departure. Installed link
// faults may drop, corrupt, or duplicate the message.
func (e *Endpoint) Send(bit int, m wire.Message) error {
	if e.net.isSpare(e.id) {
		return fmt.Errorf("simnet: spare node %d has no cube links", e.id)
	}
	partner, err := e.net.topo.Partner(e.id, bit)
	if err != nil {
		return fmt.Errorf("simnet: send: %w", err)
	}
	m.From = int32(e.id)
	m.To = int32(partner)
	if e.rec != nil {
		m.Trace = e.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(e.clock))
	}
	buf := e.net.getBuf()
	raw, err := wire.AppendMessage(buf, m)
	if err != nil {
		e.net.putBuf(buf)
		return fmt.Errorf("simnet: send: %w", err)
	}
	costed := wire.CostedLen(len(raw))
	cost := e.net.cost.SendFixed + Ticks(costed)*e.net.cost.SendPerByte
	e.clock += cost
	e.commTicks += cost
	e.net.metrics.record(m.Kind, costed)
	e.net.obsM.RecordMessage(m.Kind, costed)
	arrival := e.clock + e.net.cost.Latency

	if e.net.ctrl != nil {
		// Controlled path: fault interceptors apply exactly as on the
		// free fault path, then the deliveries queue at the coordinator
		// instead of a channel. Buffers are never pooled — the recorded
		// schedule may outlive the run.
		deliveries := [][]byte{raw}
		if e.net.faultCount.Load() != 0 {
			for _, f := range e.net.linkFaults(e.id, partner) {
				var next [][]byte
				for _, d := range deliveries {
					next = append(next, f.Apply(d)...)
				}
				deliveries = next
			}
		}
		e.net.ctrl.send(e.id, QueueID{Kind: QLink, Node: partner, Bit: bit}, deliveries, arrival, m.Kind, m.Stage, m.Iter)
		return nil
	}

	if e.net.faultCount.Load() == 0 {
		// Lock-free fast path: no fault anywhere in the network, so
		// skip the fault-table RLock and keep the buffer pooled.
		select {
		case e.net.links[partner][bit] <- packet{raw: raw, arrival: arrival, pooled: true}:
			return nil
		default:
			e.net.putBuf(raw)
			return fmt.Errorf("simnet: %d -> %d: %w", e.id, partner, ErrLinkBackpressure)
		}
	}

	// Fault path: interceptors may retain, alias, or split the buffer,
	// so deliveries leave the pool for good.
	deliveries := [][]byte{raw}
	for _, f := range e.net.linkFaults(e.id, partner) {
		var next [][]byte
		for _, d := range deliveries {
			next = append(next, f.Apply(d)...)
		}
		deliveries = next
	}
	for _, d := range deliveries {
		select {
		case e.net.links[partner][bit] <- packet{raw: d, arrival: arrival}:
		default:
			return fmt.Errorf("simnet: %d -> %d: %w", e.id, partner, ErrLinkBackpressure)
		}
	}
	return nil
}

// Recv blocks for the next message from the partner across the given
// dimension bit. The receiver's clock advances to at least the
// message's arrival time plus the receive cost. It returns ErrAbsent
// if nothing arrives within the network's wall-clock timeout, and a
// decode error if the (possibly fault-corrupted) bytes do not parse —
// both are detectable faults under the paper's model.
//
// The returned message's Payload aliases a network-owned buffer and is
// valid only until the endpoint's next receive (Recv or RecvHost):
// decode or copy the payload before receiving again.
func (e *Endpoint) Recv(bit int) (wire.Message, error) {
	if e.net.isSpare(e.id) {
		return wire.Message{}, fmt.Errorf("simnet: spare node %d has no cube links", e.id)
	}
	if bit < 0 || bit >= e.net.topo.Dim() {
		return wire.Message{}, fmt.Errorf("simnet: recv: bit %d outside dimension %d", bit, e.net.topo.Dim())
	}
	e.release()
	if e.net.ctrl != nil {
		res := e.net.ctrl.block(e.id, QueueID{Kind: QLink, Node: e.id, Bit: bit}, false, e.clock)
		if !res.ok {
			partner, _ := e.net.topo.Partner(e.id, bit)
			return wire.Message{}, fmt.Errorf("simnet: node %d waiting on link from %d: %w", e.id, partner, ErrAbsent)
		}
		return e.acceptPacket(packet{raw: res.pkt.raw, arrival: res.pkt.arrival})
	}
	ch := e.net.links[e.id][bit]
	// Fast path: a queued packet means no timer is needed at all.
	select {
	case pkt := <-ch:
		return e.acceptPacket(pkt)
	default:
	}
	timer := e.armTimer()
	select {
	case pkt := <-ch:
		e.disarmTimer()
		return e.acceptPacket(pkt)
	case <-timer.C:
		partner, _ := e.net.topo.Partner(e.id, bit)
		return wire.Message{}, fmt.Errorf("simnet: node %d waiting on link from %d: %w", e.id, partner, ErrAbsent)
	}
}

func (e *Endpoint) acceptPacket(pkt packet) (wire.Message, error) {
	if pkt.arrival > e.clock {
		// Waiting time is idle, charged to neither comm nor comp.
		e.clock = pkt.arrival
	}
	cost := e.net.cost.RecvFixed + Ticks(wire.CostedLen(len(pkt.raw)))*e.net.cost.RecvPerByte
	e.clock += cost
	e.commTicks += cost
	m, err := wire.DecodeFrom(pkt.raw)
	if err != nil {
		if pkt.pooled {
			e.net.putBuf(pkt.raw)
		}
		return wire.Message{}, fmt.Errorf("simnet: node %d: garbled message: %w", e.id, err)
	}
	if e.rec != nil {
		e.rec.Recv(&m, int64(e.clock))
	}
	if pkt.pooled {
		e.pendingFree = pkt.raw
	}
	return m, nil
}

// SendHost transmits a message to the host over the reliable host
// link. Host links bypass fault interceptors.
func (e *Endpoint) SendHost(m wire.Message) error {
	m.From = int32(e.id)
	m.To = wire.HostID
	if e.rec != nil {
		m.Trace = e.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(e.clock))
	}
	buf := e.net.getBuf()
	raw, err := wire.AppendMessage(buf, m)
	if err != nil {
		e.net.putBuf(buf)
		return fmt.Errorf("simnet: send host: %w", err)
	}
	costed := wire.CostedLen(len(raw))
	cost := e.net.cost.SendFixed + Ticks(costed)*e.net.cost.SendPerByte
	e.clock += cost
	e.commTicks += cost
	e.net.metrics.record(m.Kind, costed)
	e.net.obsM.RecordMessage(m.Kind, costed)
	if e.net.ctrl != nil {
		e.net.ctrl.send(e.id, QueueID{Kind: QHostIn, Node: hostWorker}, [][]byte{raw}, e.clock+e.net.cost.Latency, m.Kind, m.Stage, m.Iter)
		return nil
	}
	// Host links bypass fault interceptors, so the buffer stays pooled.
	select {
	case e.net.hostIn <- packet{raw: raw, arrival: e.clock + e.net.cost.Latency, pooled: true}:
		return nil
	default:
		e.net.putBuf(raw)
		return fmt.Errorf("simnet: node %d -> host: %w", e.id, ErrLinkBackpressure)
	}
}

// RecvHost blocks for the next message from the host. Like Recv, the
// returned Payload is valid only until the endpoint's next receive.
func (e *Endpoint) RecvHost() (wire.Message, error) {
	e.release()
	if e.net.ctrl != nil {
		res := e.net.ctrl.block(e.id, QueueID{Kind: QHostOut, Node: e.id}, false, e.clock)
		if !res.ok {
			return wire.Message{}, fmt.Errorf("simnet: node %d waiting on host: %w", e.id, ErrAbsent)
		}
		return e.acceptPacket(packet{raw: res.pkt.raw, arrival: res.pkt.arrival})
	}
	ch := e.net.hostOut[e.id]
	select {
	case pkt := <-ch:
		return e.acceptPacket(pkt)
	default:
	}
	timer := e.armTimer()
	select {
	case pkt := <-ch:
		e.disarmTimer()
		return e.acceptPacket(pkt)
	case <-timer.C:
		return wire.Message{}, fmt.Errorf("simnet: node %d waiting on host: %w", e.id, ErrAbsent)
	}
}

// Host is the reliable host processor's handle on the network. Like
// Endpoint it owns a virtual clock and is goroutine-confined.
type Host struct {
	net *Network

	clock     Ticks
	commTicks Ticks
	compTicks Ticks

	recvTimer   *time.Timer
	pendingFree []byte
	rec         *forensic.Recorder
}

// release recycles the buffer behind the previously delivered message.
func (h *Host) release() {
	if h.pendingFree != nil {
		h.net.putBuf(h.pendingFree)
		h.pendingFree = nil
	}
}

func (h *Host) armTimer() *time.Timer {
	if h.recvTimer == nil {
		h.recvTimer = time.NewTimer(h.net.recvTimeout)
	} else {
		h.recvTimer.Reset(h.net.recvTimeout)
	}
	return h.recvTimer
}

func (h *Host) disarmTimer() {
	if !h.recvTimer.Stop() {
		h.recvTimer = nil
	}
}

// Host returns the host endpoint. Call at most once per network.
func (nw *Network) Host() transport.Host { return &Host{net: nw, rec: nw.flight.Host()} }

// Clock returns the host's current virtual time.
func (h *Host) Clock() Ticks { return h.clock }

// CommTicks returns the virtual time the host spent on communication.
func (h *Host) CommTicks() Ticks { return h.commTicks }

// CompTicks returns the virtual time the host spent computing.
func (h *Host) CompTicks() Ticks { return h.compTicks }

// Compute advances the host clock by a computation cost.
func (h *Host) Compute(t Ticks) {
	if t < 0 {
		t = 0
	}
	h.clock += t
	h.compTicks += t
}

// ChargeCompare charges the host for n key comparisons.
func (h *Host) ChargeCompare(n int) { h.Compute(Ticks(n) * h.net.cost.Compare) }

// ChargeKeyMove charges the host for moving n keys.
func (h *Host) ChargeKeyMove(n int) { h.Compute(Ticks(n) * h.net.cost.KeyMove) }

// Send transmits a message from the host to a node over the host
// interface (HostFixed/HostPerByte costs).
func (h *Host) Send(node int, m wire.Message) error {
	if !h.net.topo.Contains(node) && !h.net.isSpare(node) {
		return fmt.Errorf("simnet: host send: node %d outside cube of %d nodes (+%d spares)",
			node, h.net.topo.Nodes(), h.net.spares)
	}
	m.From = wire.HostID
	m.To = int32(node)
	if h.rec != nil {
		m.Trace = h.rec.Send(m.Kind, m.To, m.Stage, m.Iter, int64(h.clock))
	}
	buf := h.net.getBuf()
	raw, err := wire.AppendMessage(buf, m)
	if err != nil {
		h.net.putBuf(buf)
		return fmt.Errorf("simnet: host send: %w", err)
	}
	costed := wire.CostedLen(len(raw))
	cost := h.net.cost.HostFixed + Ticks(costed)*h.net.cost.HostPerByte
	h.clock += cost
	h.commTicks += cost
	h.net.metrics.record(m.Kind, costed)
	h.net.obsM.RecordMessage(m.Kind, costed)
	if h.net.ctrl != nil {
		h.net.ctrl.send(hostWorker, QueueID{Kind: QHostOut, Node: node}, [][]byte{raw}, h.clock+h.net.cost.Latency, m.Kind, m.Stage, m.Iter)
		return nil
	}
	select {
	case h.net.hostOut[node] <- packet{raw: raw, arrival: h.clock + h.net.cost.Latency, pooled: true}:
		return nil
	default:
		h.net.putBuf(raw)
		return fmt.Errorf("simnet: host -> %d: %w", node, ErrLinkBackpressure)
	}
}

// acceptPacket advances the host clock for a delivery and decodes it
// zero-copy; the payload stays valid until the host's next receive.
func (h *Host) acceptPacket(pkt packet) (wire.Message, error) {
	if pkt.arrival > h.clock {
		h.clock = pkt.arrival
	}
	cost := h.net.cost.HostFixed + Ticks(wire.CostedLen(len(pkt.raw)))*h.net.cost.HostPerByte
	h.clock += cost
	h.commTicks += cost
	m, err := wire.DecodeFrom(pkt.raw)
	if err != nil {
		if pkt.pooled {
			h.net.putBuf(pkt.raw)
		}
		return wire.Message{}, fmt.Errorf("simnet: host: garbled message: %w", err)
	}
	if h.rec != nil {
		h.rec.Recv(&m, int64(h.clock))
	}
	if pkt.pooled {
		h.pendingFree = pkt.raw
	}
	return m, nil
}

// Recv blocks for the next message from any node. The returned
// Payload is valid only until the host's next receive.
func (h *Host) Recv() (wire.Message, error) {
	h.release()
	if h.net.ctrl != nil {
		res := h.net.ctrl.block(hostWorker, QueueID{Kind: QHostIn, Node: hostWorker}, false, h.clock)
		if !res.ok {
			return wire.Message{}, fmt.Errorf("simnet: host: %w", ErrAbsent)
		}
		return h.acceptPacket(packet{raw: res.pkt.raw, arrival: res.pkt.arrival})
	}
	select {
	case pkt := <-h.net.hostIn:
		return h.acceptPacket(pkt)
	default:
	}
	timer := h.armTimer()
	select {
	case pkt := <-h.net.hostIn:
		h.disarmTimer()
		return h.acceptPacket(pkt)
	case <-timer.C:
		return wire.Message{}, fmt.Errorf("simnet: host: %w", ErrAbsent)
	}
}

// TryRecv returns the next pending host message without waiting for
// the full absence timeout; ok is false when the mailbox is empty.
// The host uses this to poll for ERROR signals between phases.
func (h *Host) TryRecv() (m wire.Message, ok bool, err error) {
	h.release()
	if h.net.ctrl != nil {
		res := h.net.ctrl.block(hostWorker, QueueID{Kind: QHostIn, Node: hostWorker}, true, h.clock)
		if !res.ok {
			return wire.Message{}, false, nil
		}
		msg, derr := h.acceptPacket(packet{raw: res.pkt.raw, arrival: res.pkt.arrival})
		if derr != nil {
			return wire.Message{}, false, derr
		}
		return msg, true, nil
	}
	select {
	case pkt := <-h.net.hostIn:
		msg, derr := h.acceptPacket(pkt)
		if derr != nil {
			return wire.Message{}, false, derr
		}
		return msg, true, nil
	default:
		return wire.Message{}, false, nil
	}
}
