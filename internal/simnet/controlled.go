package simnet

import (
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// hostWorker is the controller's worker key for the host processor.
const hostWorker = int(wire.HostID)

// cpacket is a message pending in a controlled queue.
type cpacket struct {
	raw     []byte
	arrival Ticks
	from    int
	// seq is the per-(queue, sender) delivery index — the positional
	// identity replay directives match on.
	seq uint64
	// content is the FNV-1a digest of the costed frame bytes (trace
	// trailer excluded), folded into receiver histories and queue
	// hashes for canonical state hashing.
	content uint64
	// kind/stage/iter mirror the pre-fault message header, advisory
	// metadata for human-readable schedules.
	kind  wire.Kind
	stage int32
	iter  int32
}

// cqueue is one controlled delivery queue with per-sender FIFOs. Cube
// links and host downlinks have a unique writer; the host mailbox is
// the multi-writer case whose merge order is the scheduler's to pick.
type cqueue struct {
	sub     map[int][]cpacket
	nextSeq map[int]uint64
}

// senders returns the sorted sender labels with pending packets.
func (q *cqueue) senders() []int {
	out := make([]int, 0, len(q.sub))
	for from, fifo := range q.sub {
		if len(fifo) > 0 {
			out = append(out, from)
		}
	}
	sort.Ints(out)
	return out
}

// pop removes and returns sender from's FIFO head.
func (q *cqueue) pop(from int) (cpacket, bool) {
	fifo := q.sub[from]
	if len(fifo) == 0 {
		return cpacket{}, false
	}
	pkt := fifo[0]
	q.sub[from] = fifo[1:]
	return pkt, true
}

// cresult is what a parked worker wakes up with.
type cresult struct {
	pkt    cpacket
	ok     bool // delivered
	empty  bool // poll resolved "nothing pending"
	absent bool // blocking receive declared absent
}

type wphase uint8

const (
	wIdle wphase = iota
	wRunning
	wParked
	wDone
)

// cworker is one worker's controller-side state: a node program, the
// host program, or an external caller (a drain loop polling the host
// mailbox after the run) parked at a receive.
type cworker struct {
	id    int
	phase wphase
	// external marks a parked caller that was never declared through
	// WorkerStart: it does not count toward quiescence, and waking it
	// restores its prior phase instead of wRunning.
	external  bool
	prevPhase wphase
	poll      bool
	waitQ     QueueID
	// blockClock is the worker's virtual clock at park time; absence
	// cascades fire in (blockClock, id) order, the virtual-time analogue
	// of "the first timer armed expires first".
	blockClock Ticks
	wake       chan cresult

	// Receive-history digests. histSeq is the ordered fold of every
	// observed event; histSum/histXor additionally fold host-mailbox
	// deliveries commutatively, because every consumer of the drained
	// ERROR list canonicalizes order (fault.EarliestEvidence) — two
	// drain interleavings of the same message multiset are the same
	// abstract state, which is exactly what the explorer prunes on.
	histSeq uint64
	histSum uint64
	histXor uint64
}

// controller mediates all delivery for a controlled network: workers
// park at receives, and once every live worker is parked the
// controller fires forced unique-writer FIFO deliveries in a batch
// (they commute — distinct receivers, sole possible next message),
// consults the Scheduler at genuine races, and resolves absence
// deterministically when nothing can ever arrive.
type controller struct {
	net   *Network
	sched Scheduler

	mu      sync.Mutex
	workers map[int]*cworker
	queues  map[QueueID]*cqueue
	// running counts live (started, not done) workers currently
	// executing; zero means quiescent.
	running int
	// live counts started, not-done workers.
	live int

	steps     []Step
	decisions int
}

func newController(net *Network, sched Scheduler) *controller {
	return &controller{
		net:     net,
		sched:   sched,
		workers: make(map[int]*cworker),
		queues:  make(map[QueueID]*cqueue),
	}
}

func (c *controller) worker(id int) *cworker {
	w := c.workers[id]
	if w == nil {
		w = &cworker{id: id, phase: wIdle, wake: make(chan cresult, 1)}
		c.workers[id] = w
	}
	return w
}

func (c *controller) queue(q QueueID) *cqueue {
	cq := c.queues[q]
	if cq == nil {
		cq = &cqueue{sub: make(map[int][]cpacket), nextSeq: make(map[int]uint64)}
		c.queues[q] = cq
	}
	return cq
}

// workerStart declares a live worker before its goroutine runs.
func (c *controller) workerStart(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.worker(id)
	if w.phase == wIdle {
		w.phase = wRunning
		c.running++
		c.live++
	}
}

// workerDone retires a live worker.
func (c *controller) workerDone(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.worker(id)
	if w.phase == wRunning {
		c.running--
	}
	if w.phase == wRunning || w.phase == wParked {
		c.live--
	}
	w.phase = wDone
	c.decide()
}

// send appends fault-processed deliveries to a queue. The sender keeps
// running, so no decision can fire here.
func (c *controller) send(from int, q QueueID, deliveries [][]byte, arrival Ticks, kind wire.Kind, stage, iter int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq := c.queue(q)
	for _, raw := range deliveries {
		seq := cq.nextSeq[from]
		cq.nextSeq[from] = seq + 1
		cq.sub[from] = append(cq.sub[from], cpacket{
			raw: raw, arrival: arrival, from: from, seq: seq,
			content: contentHash(raw), kind: kind, stage: stage, iter: iter,
		})
	}
}

// block parks the calling worker on a queue until the controller hands
// it a delivery, an empty-poll resolution, or absence. poll marks
// non-blocking TryRecv semantics. A wall-clock watchdog at the
// network's receive timeout mirrors free-mode absence as a safety net
// against coordination bugs; a correct controlled run never hits it.
func (c *controller) block(id int, q QueueID, poll bool, clock Ticks) cresult {
	c.mu.Lock()
	w := c.worker(id)
	w.prevPhase = w.phase
	w.external = w.phase != wRunning
	if !w.external {
		c.running--
	}
	w.phase = wParked
	w.poll = poll
	w.waitQ = q
	w.blockClock = clock
	c.decide()
	c.mu.Unlock()

	timer := time.NewTimer(c.net.recvTimeout)
	defer timer.Stop()
	select {
	case r := <-w.wake:
		return r
	case <-timer.C:
		c.mu.Lock()
		defer c.mu.Unlock()
		select {
		case r := <-w.wake: // decision raced the watchdog; prefer it
			return r
		default:
		}
		c.unpark(w)
		w.histSeq = fnvU64(fnvU64(w.histSeq, tagAbsent), qHash(w.waitQ))
		return cresult{absent: true}
	}
}

// unpark restores a woken worker's running state. Callers hold c.mu.
func (c *controller) unpark(w *cworker) {
	if w.external {
		w.phase = w.prevPhase
		return
	}
	w.phase = wRunning
	c.running++
}

// wake hands a parked worker its result and restores its phase.
func (c *controller) wakeWith(w *cworker, r cresult) {
	c.unpark(w)
	w.wake <- r
}

// parkedSorted returns all parked workers in id order.
func (c *controller) parkedSorted() []*cworker {
	ids := make([]int, 0, len(c.workers))
	for id, w := range c.workers {
		if w.phase == wParked {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]*cworker, len(ids))
	for i, id := range ids {
		out[i] = c.workers[id]
	}
	return out
}

// anyLiveBeside reports whether a live (started, not done) worker other
// than w exists — the condition under which a poll may legitimately
// race a future send and "empty" is a real alternative.
func (c *controller) anyLiveBeside(w *cworker) bool {
	for _, o := range c.workers {
		if o != w && !o.external && (o.phase == wRunning || o.phase == wParked) {
			return true
		}
	}
	return false
}

// decide fires the next scheduling action(s) if the network is
// quiescent. Callers hold c.mu.
//
// Phase 1 — forced FIFO: every parked blocking receiver on a
// unique-writer queue (cube link, host downlink) with a pending head
// gets it, all in one batch: each such delivery is the receiver's only
// realizable next message and deliveries to distinct receivers
// commute, so branching here would explore distinctions no execution
// can observe (the DPOR independence argument, DESIGN.md §11).
//
// Phase 2 — host-mailbox decisions, only at full quiescence so the
// pending set is maximal: one head is forced; several sender heads are
// a real race and consult the Scheduler, as is poll-vs-send while
// senders are live. Polls on an empty mailbox resolve empty, matching
// free-running TryRecv.
//
// Phase 3 — absence: nothing can ever arrive, so the parked worker
// with the smallest (blockClock, id) times out, the virtual-time
// analogue of the earliest-armed wall-clock timer; the cascade
// re-evaluates after every wake since a timed-out worker may send.
func (c *controller) decide() {
	// Keep deciding while the network stays quiescent: waking an
	// external caller (a post-run drain loop) does not make any live
	// worker runnable, so remaining parked workers would otherwise
	// never get their decision. Each firing wakes at least one parked
	// worker and nobody re-parks while we hold the lock, so this
	// terminates.
	for c.running == 0 {
		if !c.decideOnce() {
			return
		}
	}
}

// decideOnce fires at most one batch or decision, reporting whether
// anything fired. Callers hold c.mu and have checked quiescence.
func (c *controller) decideOnce() bool {
	// Phase 1: forced unique-writer FIFO deliveries, batched.
	fired := false
	for _, w := range c.parkedSorted() {
		if w.poll || w.waitQ.Kind == QHostIn {
			continue
		}
		cq := c.queue(w.waitQ)
		from := uniqueWriter(c.net, w.waitQ)
		if pkt, ok := cq.pop(from); ok {
			c.foldDelivery(w, pkt)
			c.wakeWith(w, cresult{pkt: pkt, ok: true})
			fired = true
		}
	}
	if fired {
		return true
	}
	// Phase 2: host-mailbox decisions.
	for _, w := range c.parkedSorted() {
		if w.waitQ.Kind != QHostIn {
			continue
		}
		acts := c.hostActions(w)
		if len(acts) == 0 {
			if w.poll {
				w.histSeq = fnvU64(fnvU64(w.histSeq, tagEmpty), qHash(w.waitQ))
				c.wakeWith(w, cresult{empty: true})
				return true
			}
			continue // blocking host receive on empty mailbox: phase 3
		}
		idx := 0
		if len(acts) > 1 {
			idx = c.consult(acts)
		}
		c.fire(w, acts[idx])
		return true
	}
	// Phase 3: absence.
	var victim *cworker
	for _, w := range c.parkedSorted() {
		if victim == nil || w.blockClock < victim.blockClock ||
			(w.blockClock == victim.blockClock && w.id < victim.id) {
			victim = w
		}
	}
	if victim != nil {
		victim.histSeq = fnvU64(fnvU64(victim.histSeq, tagAbsent), qHash(victim.waitQ))
		c.wakeWith(victim, cresult{absent: true})
		return true
	}
	return false
}

// hostActions builds the canonical enabled-action list for a worker
// parked on the host mailbox: one ActDeliver per sender FIFO head,
// plus ActEmpty for polls while other senders are live.
func (c *controller) hostActions(w *cworker) []Action {
	cq := c.queue(w.waitQ)
	var acts []Action
	for _, from := range cq.senders() {
		pkt := cq.sub[from][0]
		acts = append(acts, Action{
			Kind: ActDeliver, Queue: w.waitQ, From: from, Seq: pkt.seq,
			MsgKind: pkt.kind, Stage: pkt.stage, Iter: pkt.iter,
		})
	}
	if w.poll && len(acts) > 0 && c.anyLiveBeside(w) {
		acts = append(acts, Action{Kind: ActEmpty, Queue: w.waitQ})
	}
	sortActions(acts)
	return acts
}

// consult records a Step and asks the Scheduler to pick. Callers hold
// c.mu; the enabled list is already canonically ordered.
func (c *controller) consult(acts []Action) int {
	d := Decision{Point: c.decisions, State: c.stateHash(), Enabled: acts}
	idx := c.sched.Pick(d)
	if idx < 0 || idx >= len(acts) {
		idx = 0
	}
	c.steps = append(c.steps, Step{State: d.State, Enabled: acts, Picked: idx})
	c.decisions++
	return idx
}

// fire executes one chosen action for a parked worker.
func (c *controller) fire(w *cworker, a Action) {
	if a.Kind == ActEmpty {
		w.histSeq = fnvU64(fnvU64(w.histSeq, tagEmpty), qHash(w.waitQ))
		c.wakeWith(w, cresult{empty: true})
		return
	}
	pkt, ok := c.queue(w.waitQ).pop(a.From)
	if !ok { // cannot happen: actions are built from pending heads
		c.wakeWith(w, cresult{absent: true})
		return
	}
	c.foldDelivery(w, pkt)
	c.wakeWith(w, cresult{pkt: pkt, ok: true})
}

// foldDelivery folds a delivered packet into the receiver's history
// digest: commutatively for host-mailbox drains, ordered otherwise.
func (c *controller) foldDelivery(w *cworker, pkt cpacket) {
	e := fnvU64(fnvU64(fnvU64(fnvU64(fnvOffset, qHash(w.waitQ)), uint64(int64(pkt.from))), pkt.content), uint64(pkt.arrival))
	if w.waitQ.Kind == QHostIn {
		w.histSum += e
		w.histXor ^= e
		return
	}
	w.histSeq = fnvU64(w.histSeq, e)
}

// stateHash folds the canonical system state at a quiescent decision
// point: every worker's phase, awaited queue, and receive-history
// digests, plus all pending queue contents (per-sender chains combined
// commutatively — a pending multiset, like the mailbox it models).
func (c *controller) stateHash() uint64 {
	ids := make([]int, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := fnvOffset
	for _, id := range ids {
		w := c.workers[id]
		h = fnvU64(h, uint64(int64(id)))
		h = fnvU64(h, uint64(w.phase))
		if w.phase == wParked {
			h = fnvU64(h, qHash(w.waitQ))
		}
		h = fnvU64(h, w.histSeq)
		h = fnvU64(h, w.histSum)
		h = fnvU64(h, w.histXor)
	}
	qids := make([]QueueID, 0, len(c.queues))
	for q := range c.queues {
		qids = append(qids, q)
	}
	sort.Slice(qids, func(i, j int) bool {
		a, b := qids[i], qids[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Bit < b.Bit
	})
	for _, qid := range qids {
		cq := c.queues[qid]
		var sum, xor uint64
		for from, fifo := range cq.sub {
			if len(fifo) == 0 {
				continue
			}
			chain := fnvU64(fnvOffset, uint64(int64(from)))
			for _, pkt := range fifo {
				chain = fnvU64(chain, pkt.content)
			}
			sum += chain
			xor ^= chain
		}
		if sum != 0 || xor != 0 {
			h = fnvU64(h, qHash(qid))
			h = fnvU64(h, sum)
			h = fnvU64(h, xor)
		}
	}
	return h
}

// stepsSnapshot copies the recorded schedule.
func (c *controller) stepsSnapshot() []Step {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Step, len(c.steps))
	copy(out, c.steps)
	return out
}

// uniqueWriter names the sole sender of a unique-writer queue.
func uniqueWriter(net *Network, q QueueID) int {
	switch q.Kind {
	case QHostOut:
		return hostWorker
	default: // QLink
		partner, _ := net.topo.Partner(q.Node, q.Bit)
		return partner
	}
}

// --- hashing helpers --------------------------------------------------------

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211

	tagAbsent uint64 = 0x61627300 // "abs"
	tagEmpty  uint64 = 0x656d7000 // "emp"
)

// fnvU64 folds one 64-bit value into an FNV-1a hash, byte by byte.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// contentHash digests the costed bytes of a frame (the trace trailer
// rides for free here exactly as it does in the cost model, so traced
// and untraced runs hash identically).
func contentHash(raw []byte) uint64 {
	h := fnvOffset
	for _, b := range raw[:wire.CostedLen(len(raw))] {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// qHash folds a queue identity into a single word.
func qHash(q QueueID) uint64 {
	return uint64(q.Kind)<<32 ^ uint64(uint32(q.Node))<<8 ^ uint64(uint32(q.Bit))
}

// --- Network surface --------------------------------------------------------

// Compile-time check: controlled networks expose worker control.
var _ transport.WorkerControl = (*Network)(nil)

// WorkerStart implements transport.WorkerControl: it declares a live
// worker before its goroutine launches. No-op on free-running networks.
func (nw *Network) WorkerStart(id int) {
	if nw.ctrl != nil {
		nw.ctrl.workerStart(id)
	}
}

// WorkerDone implements transport.WorkerControl: it retires a started
// worker. No-op on free-running networks.
func (nw *Network) WorkerDone(id int) {
	if nw.ctrl != nil {
		nw.ctrl.workerDone(id)
	}
}

// Steps returns the schedule a controlled run recorded: one Step per
// consulted scheduling decision, in order. Free-running networks
// return nil — their delivery races are decided by the OS scheduler
// and cannot be replayed.
func (nw *Network) Steps() []Step {
	if nw.ctrl == nil {
		return nil
	}
	return nw.ctrl.stepsSnapshot()
}
