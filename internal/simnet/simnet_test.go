package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func newNet(t *testing.T, dim int) *Network {
	t.Helper()
	nw, err := New(Config{Dim: dim, RecvTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: -1}); err == nil {
		t.Error("negative dim: want error")
	}
	nw, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Topology().Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", nw.Topology().Nodes())
	}
	if nw.Cost() != DefaultCostModel() {
		t.Error("zero cost config should yield default cost model")
	}
}

func TestEndpointValidation(t *testing.T) {
	nw := newNet(t, 2)
	if _, err := nw.Endpoint(4); err == nil {
		t.Error("Endpoint(4) on 4-node cube: want error")
	}
	ep, err := nw.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID() != 0 {
		t.Errorf("ID = %d", ep.ID())
	}
}

func TestSendRecvAcrossLink(t *testing.T) {
	nw := newNet(t, 3)
	a, _ := nw.Endpoint(2)
	b, _ := nw.Endpoint(3) // partner across bit 0

	var wg sync.WaitGroup
	wg.Add(1)
	var got wire.Message
	var recvErr error
	go func() {
		defer wg.Done()
		got, recvErr = b.Recv(0)
	}()
	msg := wire.Message{Kind: wire.KindExchange, Stage: 1, Iter: 0,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{99}})}
	if err := a.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if got.From != 2 || got.To != 3 || got.Stage != 1 {
		t.Fatalf("header = %+v", got)
	}
	p, err := wire.DecodeExchange(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if p.Keys[0] != 99 {
		t.Fatalf("key = %d", p.Keys[0])
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	nw := newNet(t, 1)
	a, _ := nw.Endpoint(0)
	b, _ := nw.Endpoint(1)
	cost := nw.Cost()

	msg := wire.Message{Kind: wire.KindExchange,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{1}})}
	if err := a.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	raw, _ := wire.Encode(wire.Message{Kind: wire.KindExchange, From: 0, To: 1,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{1}})})
	wantSend := cost.SendFixed + Ticks(wire.CostedLen(len(raw)))*cost.SendPerByte
	if a.Clock() != wantSend {
		t.Errorf("sender clock = %d, want %d", a.Clock(), wantSend)
	}
	if a.CommTicks() != wantSend {
		t.Errorf("sender comm = %d, want %d", a.CommTicks(), wantSend)
	}

	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	wantRecvStart := wantSend + cost.Latency // receiver idles until arrival
	wantRecv := wantRecvStart + cost.RecvFixed + Ticks(wire.CostedLen(len(raw)))*cost.RecvPerByte
	if b.Clock() != wantRecv {
		t.Errorf("receiver clock = %d, want %d", b.Clock(), wantRecv)
	}
	// Idle waiting is not billed as comm.
	if b.CommTicks() != cost.RecvFixed+Ticks(wire.CostedLen(len(raw)))*cost.RecvPerByte {
		t.Errorf("receiver comm = %d", b.CommTicks())
	}
}

func TestComputeCharges(t *testing.T) {
	nw := newNet(t, 1)
	ep, _ := nw.Endpoint(0)
	ep.Compute(50)
	ep.ChargeCompare(3)
	ep.ChargeKeyMove(7)
	want := Ticks(50) + 3*nw.Cost().Compare + 7*nw.Cost().KeyMove
	if ep.Clock() != want || ep.CompTicks() != want {
		t.Errorf("clock=%d comp=%d, want %d", ep.Clock(), ep.CompTicks(), want)
	}
	ep.Compute(-5) // negative cost clamps to zero
	if ep.Clock() != want {
		t.Errorf("negative compute changed clock to %d", ep.Clock())
	}
}

func TestRecvTimeoutIsAbsence(t *testing.T) {
	nw, err := New(Config{Dim: 1, RecvTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := nw.Endpoint(0)
	_, err = ep.Recv(0)
	if !errors.Is(err, ErrAbsent) {
		t.Fatalf("want ErrAbsent, got %v", err)
	}
	if _, err := ep.Recv(5); err == nil {
		t.Error("Recv on invalid bit: want error")
	}
}

func TestHostRoundTrip(t *testing.T) {
	nw := newNet(t, 2)
	ep, _ := nw.Endpoint(3)
	h := nw.Host()

	if err := ep.SendHost(wire.Message{Kind: wire.KindHostUpload,
		Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{5}})}); err != nil {
		t.Fatal(err)
	}
	m, err := h.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 3 || m.To != wire.HostID {
		t.Fatalf("host got %+v", m)
	}
	if err := h.Send(3, wire.Message{Kind: wire.KindHostDownload,
		Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{6}})}); err != nil {
		t.Fatal(err)
	}
	back, err := ep.RecvHost()
	if err != nil {
		t.Fatal(err)
	}
	if back.From != wire.HostID || back.Kind != wire.KindHostDownload {
		t.Fatalf("node got %+v", back)
	}
	if h.Clock() == 0 || h.CommTicks() == 0 {
		t.Error("host clocks did not advance")
	}
	h.Compute(10)
	h.ChargeCompare(1)
	h.ChargeKeyMove(1)
	if h.CompTicks() != 10+nw.Cost().Compare+nw.Cost().KeyMove {
		t.Errorf("host comp = %d", h.CompTicks())
	}
	if err := h.Send(99, wire.Message{Kind: wire.KindHostDownload}); err == nil {
		t.Error("host send to invalid node: want error")
	}
}

func TestHostTryRecv(t *testing.T) {
	nw := newNet(t, 1)
	h := nw.Host()
	if _, ok, err := h.TryRecv(); ok || err != nil {
		t.Fatalf("empty TryRecv: ok=%v err=%v", ok, err)
	}
	ep, _ := nw.Endpoint(0)
	if err := ep.SendHost(wire.Message{Kind: wire.KindError,
		Payload: wire.EncodeError(wire.ErrorPayload{Predicate: "progress"})}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := h.TryRecv()
	if err != nil || !ok {
		t.Fatalf("TryRecv: ok=%v err=%v", ok, err)
	}
	if m.Kind != wire.KindError {
		t.Fatalf("kind = %v", m.Kind)
	}
}

func TestMetricsCountTraffic(t *testing.T) {
	nw := newNet(t, 1)
	a, _ := nw.Endpoint(0)
	msg := wire.Message{Kind: wire.KindExchange,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{1, 2}})}
	for i := 0; i < 3; i++ {
		if err := a.Send(0, msg); err != nil {
			t.Fatal(err)
		}
	}
	snap := nw.Metrics()
	if snap.MsgsByKind[wire.KindExchange] != 3 {
		t.Errorf("msg count = %d, want 3", snap.MsgsByKind[wire.KindExchange])
	}
	raw, _ := wire.Encode(wire.Message{Kind: wire.KindExchange, From: 0, To: 1, Payload: msg.Payload})
	wantBytes := wire.CostedLen(len(raw))
	if snap.BytesByKind[wire.KindExchange] != int64(3*wantBytes) {
		t.Errorf("byte count = %d, want %d", snap.BytesByKind[wire.KindExchange], 3*wantBytes)
	}
	if snap.TotalMsgs() != 3 || snap.TotalBytes() != int64(3*wantBytes) {
		t.Errorf("totals = %d msgs / %d bytes", snap.TotalMsgs(), snap.TotalBytes())
	}
}

type dropFault struct{}

func (dropFault) Apply([]byte) [][]byte { return nil }

type dupFault struct{}

func (dupFault) Apply(raw []byte) [][]byte { return [][]byte{raw, raw} }

type flipFault struct{ off int }

func (f flipFault) Apply(raw []byte) [][]byte {
	out := make([]byte, len(raw))
	copy(out, raw)
	if f.off < len(out) {
		out[f.off] ^= 0xFF
	}
	return [][]byte{out}
}

func TestLinkFaultDrop(t *testing.T) {
	nw, err := New(Config{Dim: 1, RecvTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(0, 1, dropFault{}); err != nil {
		t.Fatal(err)
	}
	a, _ := nw.Endpoint(0)
	b, _ := nw.Endpoint(1)
	if err := a.Send(0, wire.Message{Kind: wire.KindExchange, Payload: wire.EncodeExchange(wire.ExchangePayload{})}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); !errors.Is(err, ErrAbsent) {
		t.Fatalf("want ErrAbsent after drop, got %v", err)
	}
}

func TestLinkFaultDuplicate(t *testing.T) {
	nw := newNet(t, 1)
	if err := nw.InstallLinkFault(0, 1, dupFault{}); err != nil {
		t.Fatal(err)
	}
	a, _ := nw.Endpoint(0)
	b, _ := nw.Endpoint(1)
	if err := a.Send(0, wire.Message{Kind: wire.KindExchange, Payload: wire.EncodeExchange(wire.ExchangePayload{})}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(0); err != nil {
			t.Fatalf("dup copy %d: %v", i, err)
		}
	}
}

func TestLinkFaultCorruptionDetectedAtDecode(t *testing.T) {
	nw := newNet(t, 1)
	// Flip the kind byte so decode fails.
	if err := nw.InstallLinkFault(0, 1, flipFault{off: 0}); err != nil {
		t.Fatal(err)
	}
	a, _ := nw.Endpoint(0)
	b, _ := nw.Endpoint(1)
	if err := a.Send(0, wire.Message{Kind: wire.KindExchange, Payload: wire.EncodeExchange(wire.ExchangePayload{})}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err == nil {
		t.Fatal("corrupted kind byte decoded successfully")
	}
}

func TestInstallLinkFaultValidation(t *testing.T) {
	nw := newNet(t, 2)
	if err := nw.InstallLinkFault(0, 3, dropFault{}); err == nil {
		t.Error("0->3 not a link in dim-2 cube: want error")
	}
	if err := nw.InstallLinkFault(0, 1, dropFault{}); err != nil {
		t.Errorf("valid link: %v", err)
	}
}

func TestFaultsComposeInOrder(t *testing.T) {
	nw := newNet(t, 1)
	// duplicate then drop => nothing arrives
	if err := nw.InstallLinkFault(0, 1, dupFault{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallLinkFault(0, 1, dropFault{}); err != nil {
		t.Fatal(err)
	}
	a, _ := nw.Endpoint(0)
	if err := a.Send(0, wire.Message{Kind: wire.KindExchange, Payload: wire.EncodeExchange(wire.ExchangePayload{})}); err != nil {
		t.Fatal(err)
	}
	nw2, _ := New(Config{Dim: 1, RecvTimeout: 30 * time.Millisecond})
	b2, _ := nw2.Endpoint(1)
	_ = b2
	// Drain directly: the queue must be empty.
	b, _ := nw.Endpoint(1)
	nwOld := nw.recvTimeout
	nw.recvTimeout = 30 * time.Millisecond
	if _, err := b.Recv(0); !errors.Is(err, ErrAbsent) {
		t.Fatalf("want ErrAbsent, got %v", err)
	}
	nw.recvTimeout = nwOld
}

func TestBackpressure(t *testing.T) {
	nw := newNet(t, 1)
	a, _ := nw.Endpoint(0)
	msg := wire.Message{Kind: wire.KindExchange, Payload: wire.EncodeExchange(wire.ExchangePayload{})}
	var err error
	for i := 0; i < linkQueueDepth+1; i++ {
		err = a.Send(0, msg)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLinkBackpressure) {
		t.Fatalf("want ErrLinkBackpressure after flooding, got %v", err)
	}
}

// Spares are pre-registered endpoints beyond the cube: reachable over
// the host interface (a spare is a powered part awaiting activation)
// but with no cube links until a remap gives them a logical slot.
func TestSpareEndpoints(t *testing.T) {
	nw, err := New(Config{Dim: 2, Spares: 2, RecvTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Spares() != 2 {
		t.Fatalf("Spares() = %d, want 2", nw.Spares())
	}
	// Labels 4 and 5 exist; 6 is beyond the pool.
	spare, err := nw.Endpoint(5)
	if err != nil {
		t.Fatalf("spare endpoint: %v", err)
	}
	if _, err := nw.Endpoint(6); err == nil {
		t.Error("Endpoint(6) beyond the spare pool: want error")
	}

	// No cube links while idle.
	if err := spare.Send(0, wire.Message{Kind: wire.KindExchange}); err == nil {
		t.Error("spare Send on a cube link: want error")
	}
	if _, err := spare.Recv(0); err == nil {
		t.Error("spare Recv on a cube link: want error")
	}

	// Host link works both ways.
	h := nw.Host()
	if err := h.Send(5, wire.Message{Kind: wire.KindHostDownload,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{11}})}); err != nil {
		t.Fatalf("host -> spare: %v", err)
	}
	m, err := spare.RecvHost()
	if err != nil {
		t.Fatalf("spare RecvHost: %v", err)
	}
	if m.Kind != wire.KindHostDownload {
		t.Fatalf("spare received %v", m.Kind)
	}
	if err := spare.SendHost(wire.Message{Kind: wire.KindHostUpload}); err != nil {
		t.Fatalf("spare SendHost: %v", err)
	}
	reply, err := h.Recv()
	if err != nil {
		t.Fatalf("host Recv from spare: %v", err)
	}
	if reply.From != 5 || reply.Kind != wire.KindHostUpload {
		t.Fatalf("host received %+v", reply)
	}
}

// Idle spares must not perturb the cube: a run on a spared network
// produces the identical virtual-time result as one without spares.
func TestSparesDoNotPerturbCube(t *testing.T) {
	run := func(spares int) (transportTicks int64) {
		nw, err := New(Config{Dim: 1, Spares: spares, RecvTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := nw.Endpoint(0)
		b, _ := nw.Endpoint(1)
		payload := wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{1, 2, 3}})
		if err := a.Send(0, wire.Message{Kind: wire.KindExchange, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(0); err != nil {
			t.Fatal(err)
		}
		return int64(a.Clock() + b.Clock())
	}
	if bare, spared := run(0), run(3); bare != spared {
		t.Fatalf("idle spares changed cube ticks: %d vs %d", bare, spared)
	}
}
