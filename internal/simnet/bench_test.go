package simnet

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkLinkRoundTrip measures one encode-send-recv-decode cycle
// across a hypercube link, the inner loop of every simulated protocol.
func BenchmarkLinkRoundTrip(b *testing.B) {
	nw, err := New(Config{Dim: 1, RecvTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	a, err := nw.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	c, err := nw.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	msg := wire.Message{Kind: wire.KindExchange,
		Payload: wire.EncodeExchange(wire.ExchangePayload{Keys: []int64{42}})}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(0, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostRoundTrip(b *testing.B) {
	nw, err := New(Config{Dim: 1, RecvTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := nw.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	h := nw.Host()
	msg := wire.Message{Kind: wire.KindHostUpload,
		Payload: wire.EncodeHost(wire.HostPayload{Keys: []int64{42}})}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep.SendHost(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := h.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
