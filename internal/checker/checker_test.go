package checker

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsPermutation(t *testing.T) {
	tests := []struct {
		name string
		a, b []int64
		want bool
	}{
		{"both empty", nil, nil, true},
		{"equal", []int64{1, 2, 3}, []int64{3, 1, 2}, true},
		{"duplicates match", []int64{2, 2, 1}, []int64{1, 2, 2}, true},
		{"duplicates differ", []int64{2, 2, 1}, []int64{1, 1, 2}, false},
		{"different lengths", []int64{1}, []int64{1, 1}, false},
		{"value swapped", []int64{1, 2}, []int64{1, 3}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsPermutation(tc.a, tc.b); got != tc.want {
				t.Errorf("IsPermutation(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestVerifySorted(t *testing.T) {
	if err := VerifySorted([]int64{1, 2, 2, 9}, true); err != nil {
		t.Errorf("sorted asc: %v", err)
	}
	if err := VerifySorted([]int64{9, 2, 2, 1}, false); err != nil {
		t.Errorf("sorted desc: %v", err)
	}
	err := VerifySorted([]int64{1, 3, 2}, true)
	if !errors.Is(err, ErrNotSorted) {
		t.Errorf("want ErrNotSorted, got %v", err)
	}
	if err := VerifySorted([]int64{1, 2, 3}, false); !errors.Is(err, ErrNotSorted) {
		t.Error("ascending run must fail descending check")
	}
	if err := VerifySorted(nil, true); err != nil {
		t.Errorf("empty: %v", err)
	}
}

func TestVerify(t *testing.T) {
	in := []int64{5, 1, 4, 1}
	if err := Verify(in, []int64{1, 1, 4, 5}, true); err != nil {
		t.Errorf("correct sort rejected: %v", err)
	}
	if err := Verify(in, []int64{1, 4, 5}, true); !errors.Is(err, ErrNotPermutation) {
		t.Errorf("short output: want ErrNotPermutation, got %v", err)
	}
	if err := Verify(in, []int64{1, 1, 4, 6}, true); !errors.Is(err, ErrNotPermutation) {
		t.Errorf("value substitution: want ErrNotPermutation, got %v", err)
	}
	if err := Verify(in, []int64{1, 4, 1, 5}, true); !errors.Is(err, ErrNotSorted) {
		t.Errorf("unsorted permutation: want ErrNotSorted, got %v", err)
	}
}

// The two Theorem 1 failure modes the paper names: output not a
// permutation (part 1) and an out-of-order adjacent pair (part 2).
func TestVerifyCatchesSingleCorruptionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(raw []int16, pick uint8, delta int16) bool {
		if len(raw) == 0 || delta == 0 {
			return true
		}
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		out := append([]int64{}, in...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		// Corrupt one element the way a faulty processor would.
		i := int(pick) % len(out)
		out[i] += int64(delta)
		if IsPermutation(in, out) {
			// The corruption happened to produce another value already
			// present with compensation — impossible with one change.
			return false
		}
		return Verify(in, out, true) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestVerifyAcceptsAllSortedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		out := append([]int64{}, in...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return Verify(in, out, true) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifyCost(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 2}, {8, 24}, {1024, 10240},
	}
	for _, tc := range tests {
		if got := VerifyCost(tc.n); got != tc.want {
			t.Errorf("VerifyCost(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
