// Package checker implements the paper's Theorem 1 as an executable
// assertion: a sorting procedure's output is correct only if it is (1)
// a permutation of the input and (2) monotonic. The host-verification
// baseline of Section 5 and the test suites use it as the ground-truth
// oracle against which the distributed algorithms are judged.
package checker

import (
	"errors"
	"fmt"
)

// ErrNotPermutation indicates the output multiset differs from the input's.
var ErrNotPermutation = errors.New("checker: output is not a permutation of input")

// ErrNotSorted indicates the output violates the required ordering.
var ErrNotSorted = errors.New("checker: output is not sorted")

// IsPermutation reports whether a and b contain the same elements with
// the same multiplicities.
func IsPermutation(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[int64]int, len(a))
	for _, x := range a {
		counts[x]++
	}
	for _, x := range b {
		counts[x]--
		if counts[x] < 0 {
			return false
		}
	}
	return true
}

// VerifySorted checks condition (2) of Theorem 1 and returns a
// descriptive error naming the first offending index on failure.
func VerifySorted(out []int64, ascending bool) error {
	for i := 1; i < len(out); i++ {
		bad := out[i-1] > out[i]
		if !ascending {
			bad = out[i-1] < out[i]
		}
		if bad {
			return fmt.Errorf("index %d: %d then %d (ascending=%v): %w",
				i-1, out[i-1], out[i], ascending, ErrNotSorted)
		}
	}
	return nil
}

// Verify implements Theorem 1 in full: out must be a sorted
// permutation of in. It returns nil when the result is a correct sort.
func Verify(in, out []int64, ascending bool) error {
	if len(in) != len(out) {
		return fmt.Errorf("length %d in vs %d out: %w", len(in), len(out), ErrNotPermutation)
	}
	if !IsPermutation(in, out) {
		return ErrNotPermutation
	}
	return VerifySorted(out, ascending)
}

// VerifyCost returns the comparison count the paper attributes to a
// sequential Theorem 1 verification: matching the ordered and
// unordered lists is equivalent to finding the permutation, an
// O(N log N) comparison process. The harness charges this cost to the
// host in the host-verification baseline.
func VerifyCost(n int) int {
	if n <= 1 {
		return 0
	}
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * lg
}
