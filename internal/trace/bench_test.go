package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypercube"
)

// populate fills a recorder the way a dim-6 block run would: nodes×
// stages events, each with a small assembled slice.
func populate(b *testing.B, nodes, stages int) *Recorder {
	b.Helper()
	rec := &Recorder{}
	hook := rec.Hook()
	buf := []int64{1, 2, 3, 4}
	for s := 0; s < stages; s++ {
		sc := hypercube.Subcube{Dim: 1, Start: 0, End: 1}
		for id := 0; id < nodes; id++ {
			hook(core.TraceEvent{Node: id, Stage: s, Subcube: sc, Assembled: buf})
		}
	}
	return rec
}

// BenchmarkRecorderByNode pins the single-lock query path: before the
// refactor every ByNode call copied the entire recording via Events.
func BenchmarkRecorderByNode(b *testing.B) {
	rec := populate(b, 64, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := rec.ByNode(13); len(got) != 7 {
			b.Fatalf("events = %d", len(got))
		}
	}
}

func BenchmarkRecorderStage(b *testing.B) {
	rec := populate(b, 64, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := rec.Stage(3); len(got) != 1 {
			b.Fatalf("views = %d", len(got))
		}
	}
}
