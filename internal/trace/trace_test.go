package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/simnet"
)

func TestRecorderCollectsAndDeduplicates(t *testing.T) {
	var rec Recorder
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]core.Options, len(keys))
	for id := range opts {
		opts[id] = core.Options{Trace: rec.Hook()}
	}
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() {
		t.Fatal("spurious detection")
	}

	// 8 nodes × 4 events each.
	if got := len(rec.Events()); got != 32 {
		t.Fatalf("events = %d, want 32", got)
	}
	if got := rec.Stages(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("stages = %v", got)
	}
	// Stage 0: four dimension-1 subcubes.
	views := rec.Stage(0)
	if len(views) != 4 {
		t.Fatalf("stage 0 views = %d", len(views))
	}
	for _, v := range views {
		if !v.Agreed {
			t.Fatalf("nodes disagree in honest run: %+v", v)
		}
		if len(v.Assembled) != 2 {
			t.Fatalf("stage 0 assembled = %v", v.Assembled)
		}
	}
	// Final: one whole-cube view, sorted.
	finals := rec.Stage(3)
	if len(finals) != 1 || !finals[0].Final {
		t.Fatalf("final views = %+v", finals)
	}
	want := []int64{2, 3, 4, 5, 7, 8, 9, 10}
	for i := range want {
		if finals[0].Assembled[i] != want[i] {
			t.Fatalf("final assembled = %v", finals[0].Assembled)
		}
	}
	// ByNode ordering.
	evs := rec.ByNode(5)
	if len(evs) != 4 {
		t.Fatalf("node 5 events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Stage < evs[i-1].Stage {
			t.Fatal("ByNode not stage-ordered")
		}
	}
}

// TestRecorderAsStageSubscriber drives the same honest run through the
// unified observability stream instead of the legacy Trace hook: the
// recorder subscribed to an obs.Observer must collect the identical
// per-stage views.
func TestRecorderAsStageSubscriber(t *testing.T) {
	var rec Recorder
	o := obs.New(obs.NewRegistry(), 0)
	o.Subscribe(&rec)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]core.Options, len(keys))
	for id := range opts {
		opts[id] = core.Options{Obs: o}
	}
	nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() {
		t.Fatal("spurious detection")
	}
	if got := len(rec.Events()); got != 32 {
		t.Fatalf("events = %d, want 32", got)
	}
	finals := rec.Stage(3)
	if len(finals) != 1 || !finals[0].Final || !finals[0].Agreed {
		t.Fatalf("final views = %+v", finals)
	}
	if finals[0].Start != 0 || finals[0].End != 7 {
		t.Fatalf("final subcube = [%d..%d], want [0..7]", finals[0].Start, finals[0].End)
	}
	want := []int64{2, 3, 4, 5, 7, 8, 9, 10}
	for i := range want {
		if finals[0].Assembled[i] != want[i] {
			t.Fatalf("final assembled = %v", finals[0].Assembled)
		}
	}
}

// TestSubscriberCopiesAssembled pins the aliasing contract: StageView's
// Assembled slice belongs to the producer, so the recorder must copy.
func TestSubscriberCopiesAssembled(t *testing.T) {
	var rec Recorder
	buf := []int64{7, 8}
	rec.OnStageView(obs.StageView{Node: 0, Stage: 0, SubcubeStart: 0, SubcubeSize: 2, BlockLen: 1, Assembled: buf})
	buf[0] = -1
	if rec.Events()[0].Assembled[0] != 7 {
		t.Error("subscriber did not copy the assembled slice")
	}
}

func TestRecorderRender(t *testing.T) {
	var rec Recorder
	hook := rec.Hook()
	sc := hypercube.Subcube{Dim: 1, Start: 0, End: 1}
	hook(core.TraceEvent{Node: 0, Stage: 0, Subcube: sc, Assembled: []int64{5, 1}})
	hook(core.TraceEvent{Node: 1, Stage: 0, Subcube: sc, Assembled: []int64{5, 1}})
	out := rec.Render()
	if !strings.Contains(out, "End of stage 0") || !strings.Contains(out, "SC[0..1]") {
		t.Errorf("Render = %q", out)
	}
	if strings.Contains(out, "DISAGREE") {
		t.Errorf("agreeing views flagged: %q", out)
	}
}

func TestRecorderFlagsDisagreement(t *testing.T) {
	var rec Recorder
	hook := rec.Hook()
	sc := hypercube.Subcube{Dim: 1, Start: 2, End: 3}
	hook(core.TraceEvent{Node: 2, Stage: 1, Subcube: sc, Assembled: []int64{1, 2}})
	hook(core.TraceEvent{Node: 3, Stage: 1, Subcube: sc, Assembled: []int64{1, 99}})
	views := rec.Stage(1)
	if len(views) != 1 || views[0].Agreed {
		t.Fatalf("views = %+v", views)
	}
	if !strings.Contains(rec.Render(), "DISAGREE") {
		t.Error("Render does not flag disagreement")
	}
	// Length mismatch is also disagreement.
	var rec2 Recorder
	h2 := rec2.Hook()
	h2(core.TraceEvent{Node: 2, Stage: 1, Subcube: sc, Assembled: []int64{1, 2}})
	h2(core.TraceEvent{Node: 3, Stage: 1, Subcube: sc, Assembled: []int64{1}})
	if rec2.Stage(1)[0].Agreed {
		t.Error("length mismatch not flagged")
	}
}

func TestRecorderCopiesAssembled(t *testing.T) {
	var rec Recorder
	hook := rec.Hook()
	buf := []int64{7, 8}
	hook(core.TraceEvent{Node: 0, Stage: 0, Subcube: hypercube.Subcube{Dim: 1, Start: 0, End: 1}, Assembled: buf})
	buf[0] = -1 // producer reuses its buffer
	if rec.Events()[0].Assembled[0] != 7 {
		t.Error("recorder did not copy the assembled slice")
	}
}

func TestRecorderEmpty(t *testing.T) {
	var rec Recorder
	if len(rec.Events()) != 0 || len(rec.Stages()) != 0 || rec.Render() != "" {
		t.Error("zero-value recorder not empty")
	}
	if len(rec.Stage(0)) != 0 || len(rec.ByNode(3)) != 0 {
		t.Error("zero-value recorder queries not empty")
	}
}
