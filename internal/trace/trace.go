// Package trace collects the per-node stage events S_FT emits into a
// thread-safe, queryable recording — the machinery behind
// cmd/tracesort's reproduction of the paper's Figure 5 worked example,
// and a debugging aid for protocol tests.
//
// The recorder consumes either event source: the legacy
// core.Options.Trace hook (Hook), or the unified observability stream
// (the Recorder is an obs.StageSubscriber — pass it to
// obs.Observer.Subscribe and both the one-key and block sorts feed it).
package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Event is one recorded stage view: the legacy TraceEvent fields plus
// the causal flight-recorder event id the publishing node held at
// publish time. Causal is the join key against forensic dump chains
// (zero for untraced runs and events fed through the deprecated Hook).
type Event struct {
	core.TraceEvent
	Causal wire.EventID
}

// Recorder accumulates stage events from concurrently running nodes.
// The zero value is ready to use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Recorder subscribes to the unified stage-view stream.
var _ obs.StageSubscriber = (*Recorder)(nil)

// Hook returns the function to install as core.Options.Trace. The same
// hook may be shared by every node.
//
// Deprecated: subscribe the Recorder through obs.Observer.Subscribe
// instead; the stage-view stream carries the causal event id the hook
// path cannot.
func (r *Recorder) Hook() func(core.TraceEvent) {
	return func(ev core.TraceEvent) { r.record(Event{TraceEvent: ev}) }
}

// OnStageView implements obs.StageSubscriber: it adapts the unified
// event stream's stage views into trace events, so an observer-wired
// run needs no separate Trace hook.
func (r *Recorder) OnStageView(v obs.StageView) {
	r.record(Event{
		TraceEvent: core.TraceEvent{
			Node:  v.Node,
			Stage: v.Stage,
			Final: v.Final,
			Subcube: hypercube.Subcube{
				Dim:   bits.Len(uint(v.SubcubeSize)) - 1,
				Start: v.SubcubeStart,
				End:   v.SubcubeStart + v.SubcubeSize - 1,
			},
			Assembled: v.Assembled,
		},
		Causal: v.Causal,
	})
}

func (r *Recorder) record(ev Event) {
	// Copy the assembled slice: the producer reuses its scratch.
	cp := ev
	cp.Assembled = append([]int64{}, ev.Assembled...)
	r.mu.Lock()
	r.events = append(r.events, cp)
	r.mu.Unlock()
}

// Events returns a copy of all recorded events in arrival order,
// stripped to the legacy TraceEvent shape. Use CausalEvents for the
// forensic join key.
func (r *Recorder) Events() []core.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.TraceEvent, len(r.events))
	for i, ev := range r.events {
		out[i] = ev.TraceEvent
	}
	return out
}

// CausalEvents returns a copy of all recorded events in arrival order,
// including their causal flight-recorder ids.
func (r *Recorder) CausalEvents() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event{}, r.events...)
}

// ByNode returns node id's events sorted by stage. The recording is
// filtered under one lock acquisition, without copying the full event
// slice the way Events does.
func (r *Recorder) ByNode(id int) []core.TraceEvent {
	r.mu.Lock()
	var out []core.TraceEvent
	for _, ev := range r.events {
		if ev.Node == id {
			out = append(out, ev.TraceEvent)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// StageView is one distinct home subcube's assembled sequence at the
// end of a stage, deduplicated across the (identical) copies every
// member node holds.
type StageView struct {
	Stage     int
	Final     bool
	Start     int // subcube bounds
	End       int
	Assembled []int64
	// Agreed is false when member nodes reported different sequences
	// for the same subcube — impossible in a fault-free run.
	Agreed bool
}

// Stage returns the deduplicated subcube views for one stage, ordered
// by subcube start. Like ByNode, it walks the recording under a single
// lock acquisition.
func (r *Recorder) Stage(stage int) []StageView {
	views := map[[2]int]*StageView{}
	r.mu.Lock()
	for _, ev := range r.events {
		if ev.Stage != stage {
			continue
		}
		key := [2]int{ev.Subcube.Start, ev.Subcube.End}
		v, ok := views[key]
		if !ok {
			views[key] = &StageView{
				Stage: ev.Stage, Final: ev.Final,
				Start: ev.Subcube.Start, End: ev.Subcube.End,
				Assembled: ev.Assembled, Agreed: true,
			}
			continue
		}
		if len(v.Assembled) != len(ev.Assembled) {
			v.Agreed = false
			continue
		}
		for i := range v.Assembled {
			if v.Assembled[i] != ev.Assembled[i] {
				v.Agreed = false
				break
			}
		}
	}
	r.mu.Unlock()
	out := make([]StageView, 0, len(views))
	for _, v := range views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Stages returns the distinct stage indices recorded, ascending.
func (r *Recorder) Stages() []int {
	seen := map[int]bool{}
	r.mu.Lock()
	for _, ev := range r.events {
		seen[ev.Stage] = true
	}
	r.mu.Unlock()
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Render formats the whole recording in the style of the paper's
// Figure 5: one line per distinct subcube per stage.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, s := range r.Stages() {
		views := r.Stage(s)
		if len(views) == 0 {
			continue
		}
		if views[0].Final {
			fmt.Fprintf(&b, "Final verification — every node holds the full verified result:\n")
		} else {
			fmt.Fprintf(&b, "End of stage %d — verified LBS per home subcube:\n", s)
		}
		for _, v := range views {
			mark := ""
			if !v.Agreed {
				mark = "  (NODES DISAGREE)"
			}
			fmt.Fprintf(&b, "  SC[%d..%d]  LBS = %v%s\n", v.Start, v.End, v.Assembled, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
