package bitonic

import (
	"fmt"
	"math/rand"
	"testing"
)

func randKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63()
	}
	return xs
}

func BenchmarkSort(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := randKeys(n, 1)
			buf := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if _, err := Sort(buf, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Build a bitonic input: ascending then descending halves.
			src := randKeys(n, 2)
			if _, err := Sort(src[:n/2], true); err != nil {
				b.Fatal(err)
			}
			if _, err := Sort(src[n/2:], false); err != nil {
				b.Fatal(err)
			}
			buf := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				if _, err := Merge(buf, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMergeSplit(b *testing.B) {
	for _, m := range []int{64, 1024} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			x := randKeys(m, 3)
			y := randKeys(m, 4)
			if _, err := Sort(x, true); err != nil {
				b.Fatal(err)
			}
			if _, err := Sort(y, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := MergeSplit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMergeSortCount(b *testing.B) {
	src := randKeys(4096, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeSortCount(src)
	}
}

func BenchmarkIsBitonic(b *testing.B) {
	xs := randKeys(4096, 6)
	if _, err := Sort(xs[:2048], true); err != nil {
		b.Fatal(err)
	}
	if _, err := Sort(xs[2048:], false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsBitonic(xs) {
			b.Fatal("not bitonic")
		}
	}
}
