package bitonic

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareExchange(t *testing.T) {
	tests := []struct{ a, b, lo, hi int64 }{
		{1, 2, 1, 2}, {2, 1, 1, 2}, {5, 5, 5, 5}, {-3, 0, -3, 0},
	}
	for _, tc := range tests {
		lo, hi := CompareExchange(tc.a, tc.b)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("CompareExchange(%d,%d) = (%d,%d), want (%d,%d)", tc.a, tc.b, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestIsSorted(t *testing.T) {
	tests := []struct {
		name string
		xs   []int64
		asc  bool
		want bool
	}{
		{"empty asc", nil, true, true},
		{"single", []int64{3}, false, true},
		{"asc ok", []int64{1, 2, 2, 3}, true, true},
		{"asc bad", []int64{1, 3, 2}, true, false},
		{"desc ok", []int64{3, 2, 2, 1}, false, true},
		{"desc bad", []int64{3, 1, 2}, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsSorted(tc.xs, tc.asc); got != tc.want {
				t.Errorf("IsSorted(%v,%v) = %v, want %v", tc.xs, tc.asc, got, tc.want)
			}
		})
	}
}

func TestIsBitonic(t *testing.T) {
	tests := []struct {
		name string
		xs   []int64
		want bool
	}{
		{"empty", nil, true},
		{"single", []int64{1}, true},
		{"ascending", []int64{1, 2, 3}, true},
		{"descending", []int64{3, 2, 1}, true},
		{"up-down", []int64{1, 5, 9, 7, 2}, true},
		{"down-up", []int64{9, 4, 1, 3, 8}, true},
		{"up-down-up", []int64{1, 5, 2, 6}, false},
		{"down-up-down", []int64{5, 1, 4, 0}, false},
		{"plateau", []int64{2, 2, 2}, true},
		{"up plateau down", []int64{1, 3, 3, 2}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsBitonic(tc.xs); got != tc.want {
				t.Errorf("IsBitonic(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestIsBitonicRotation(t *testing.T) {
	base := []int64{1, 4, 9, 6, 3}
	for r := 0; r < len(base); r++ {
		rot := append(append([]int64{}, base[r:]...), base[:r]...)
		if !IsBitonicRotation(rot) {
			t.Errorf("rotation %v of bitonic not accepted", rot)
		}
	}
	if IsBitonicRotation([]int64{1, 5, 2, 6, 3, 7}) {
		t.Error("zig-zag accepted as bitonic rotation")
	}
	if !IsBitonicRotation([]int64{2, 1}) || !IsBitonicRotation(nil) {
		t.Error("tiny sequences must be accepted")
	}
}

func TestMergeSortsBitonicInput(t *testing.T) {
	xs := []int64{1, 4, 9, 16, 14, 7, 3, 0}
	c, err := Merge(xs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(xs, true) {
		t.Fatalf("merged = %v", xs)
	}
	if c != 12 { // N/2 * log2(N) = 4*3
		t.Errorf("compares = %d, want 12", c)
	}
	ys := []int64{1, 4, 9, 16, 14, 7, 3, 0}
	if _, err := Merge(ys, false); err != nil {
		t.Fatal(err)
	}
	if !IsSorted(ys, false) {
		t.Fatalf("desc merged = %v", ys)
	}
}

func TestMergeRejectsNonPow2(t *testing.T) {
	if _, err := Merge(make([]int64, 3), true); err == nil {
		t.Error("length 3: want error")
	}
	if _, err := Merge(nil, true); err != nil {
		t.Errorf("empty merge should be fine: %v", err)
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(100) - 50)
		}
		want := append([]int64{}, xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		c, err := Sort(xs, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d sorted = %v, want %v", n, xs, want)
			}
		}
		if n > 1 && c == 0 {
			t.Errorf("n=%d: zero comparisons reported", n)
		}
	}
}

func TestSortDescending(t *testing.T) {
	xs := []int64{5, 1, 4, 2, 8, 0, 9, 3}
	if _, err := Sort(xs, false); err != nil {
		t.Fatal(err)
	}
	if !IsSorted(xs, false) {
		t.Fatalf("desc sorted = %v", xs)
	}
}

func TestSortRejectsNonPow2(t *testing.T) {
	if _, err := Sort(make([]int64, 6), true); err == nil {
		t.Error("length 6: want error")
	}
}

// Zero-one principle: a comparison network sorts all inputs iff it
// sorts all 0-1 inputs. Exhaustively check all 0-1 vectors up to N=16.
func TestSortZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		for mask := 0; mask < 1<<uint(n); mask++ {
			xs := make([]int64, n)
			ones := 0
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					xs[i] = 1
					ones++
				}
			}
			if _, err := Sort(xs, true); err != nil {
				t.Fatal(err)
			}
			for i, x := range xs {
				want := int64(0)
				if i >= n-ones {
					want = 1
				}
				if x != want {
					t.Fatalf("n=%d mask=%b: result %v", n, mask, xs)
				}
			}
		}
	}
}

func TestMergeZeroOnePrinciple(t *testing.T) {
	// All bitonic 0-1 sequences of length 8: 0^a 1^b 0^c and 1^a 0^b 1^c.
	const n = 8
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			c := n - a - b
			for _, inv := range []bool{false, true} {
				xs := make([]int64, 0, n)
				v0, v1 := int64(0), int64(1)
				if inv {
					v0, v1 = 1, 0
				}
				for i := 0; i < a; i++ {
					xs = append(xs, v0)
				}
				for i := 0; i < b; i++ {
					xs = append(xs, v1)
				}
				for i := 0; i < c; i++ {
					xs = append(xs, v0)
				}
				if !IsBitonic(xs) {
					continue
				}
				if _, err := Merge(xs, true); err != nil {
					t.Fatal(err)
				}
				if !IsSorted(xs, true) {
					t.Fatalf("a=%d b=%d inv=%v: %v", a, b, inv, xs)
				}
			}
		}
	}
}

func TestSortIsPermutationProperty(t *testing.T) {
	f := func(raw []int16) bool {
		n := 1
		for n*2 <= len(raw) && n < 64 {
			n *= 2
		}
		xs := make([]int64, n)
		counts := map[int64]int{}
		for i := 0; i < n && i < len(raw); i++ {
			xs[i] = int64(raw[i])
		}
		for _, x := range xs {
			counts[x]++
		}
		if _, err := Sort(xs, true); err != nil {
			return false
		}
		for _, x := range xs {
			counts[x]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return IsSorted(xs, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeSplit(t *testing.T) {
	a := []int64{1, 5, 9}
	b := []int64{2, 3, 10}
	lo, hi, c, err := MergeSplit(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantLo, wantHi := []int64{1, 2, 3}, []int64{5, 9, 10}
	for i := range wantLo {
		if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
			t.Fatalf("lo=%v hi=%v", lo, hi)
		}
	}
	if c == 0 {
		t.Error("zero comparisons reported")
	}
	if _, _, _, err := MergeSplit([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("mismatched block lengths: want error")
	}
}

func TestMergeSplitProperty(t *testing.T) {
	f := func(av, bv []int16) bool {
		m := len(av)
		if len(bv) < m {
			m = len(bv)
		}
		if m == 0 {
			return true
		}
		a := make([]int64, m)
		b := make([]int64, m)
		for i := 0; i < m; i++ {
			a[i], b[i] = int64(av[i]), int64(bv[i])
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		lo, hi, _, err := MergeSplit(a, b)
		if err != nil {
			return false
		}
		if !IsSorted(lo, true) || !IsSorted(hi, true) {
			return false
		}
		// Every element of lo <= every element of hi.
		return len(lo) == m && len(hi) == m && lo[m-1] <= hi[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortCount(t *testing.T) {
	xs := []int64{5, 1, 4, 1, 9, 0}
	sorted, c := MergeSortCount(xs)
	if !IsSorted(sorted, true) {
		t.Fatalf("sorted = %v", sorted)
	}
	if xs[0] != 5 {
		t.Error("input mutated")
	}
	if c <= 0 {
		t.Error("no comparisons counted")
	}
	if _, c := MergeSortCount(nil); c != 0 {
		t.Error("empty sort counted comparisons")
	}
	if out, c := MergeSortCount([]int64{7}); c != 0 || out[0] != 7 {
		t.Error("singleton sort wrong")
	}
}

func TestMergeSortCountMatchesSortProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		got, _ := MergeSortCount(xs)
		want := append([]int64{}, xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	xs := []int64{1, 2, 3, 4}
	Reverse(xs)
	want := []int64{4, 3, 2, 1}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Reverse = %v", xs)
		}
	}
	odd := []int64{1, 2, 3}
	Reverse(odd)
	if odd[0] != 3 || odd[1] != 2 || odd[2] != 1 {
		t.Fatalf("Reverse odd = %v", odd)
	}
	Reverse(nil) // must not panic
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]int64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %d,%d", min, max)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("empty MinMax: want error")
	}
}

func TestMergeSplitFuncIntoHonest(t *testing.T) {
	// With the honest comparator (or nil) the pluggable merge must be
	// indistinguishable from MergeSplitInto, comparison count included.
	f := func(av, bv []int16) bool {
		m := len(av)
		if len(bv) < m {
			m = len(bv)
		}
		if m == 0 {
			return true
		}
		a := make([]int64, m)
		b := make([]int64, m)
		for i := 0; i < m; i++ {
			a[i], b[i] = int64(av[i]), int64(bv[i])
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		wantLo, wantHi, wantC, err := MergeSplitInto(nil, a, b)
		if err != nil {
			return false
		}
		for _, leq := range []Comparator{Leq, nil} {
			lo, hi, c, err := MergeSplitFuncInto(nil, a, b, leq)
			if err != nil || c != wantC {
				return false
			}
			for i := 0; i < m; i++ {
				if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSplitFuncIntoLyingComparator(t *testing.T) {
	// An inverted comparator misroutes keys but still emits a
	// permutation of the inputs — the property that makes comparison
	// faults invisible to everything except order-sensitive predicates.
	a := []int64{1, 5, 9}
	b := []int64{2, 3, 10}
	lo, hi, c, err := MergeSplitFuncInto(nil, a, b, func(x, y int64) bool { return x > y })
	if err != nil {
		t.Fatal(err)
	}
	if c == 0 {
		t.Error("zero comparisons reported")
	}
	got := append(append([]int64{}, lo...), hi...)
	want := append(append([]int64{}, a...), b...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge with lying comparator lost keys: lo=%v hi=%v", lo, hi)
		}
	}
	// The inverted merge must differ from the honest one somewhere.
	honestLo, _, _, err := MergeSplitInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range honestLo {
		if lo[i] != honestLo[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("inverted comparator produced the honest split: lo=%v", lo)
	}
	if _, _, _, err := MergeSplitFuncInto(nil, []int64{1}, []int64{1, 2}, Leq); err == nil {
		t.Error("mismatched block lengths: want error")
	}
}

func TestMergeSplitFuncIntoReusesScratch(t *testing.T) {
	a := []int64{1, 3}
	b := []int64{2, 4}
	scratch := make([]int64, 0, 4)
	lo, _, _, err := MergeSplitFuncInto(scratch, a, b, Leq)
	if err != nil {
		t.Fatal(err)
	}
	if &lo[0] != &scratch[:1][0] {
		t.Error("merge did not reuse the caller's scratch")
	}
}
