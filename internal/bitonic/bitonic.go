// Package bitonic implements Batcher's bitonic sequence primitives
// (Batcher, 1968): compare-exchange, bitonic merge, full bitonic sort,
// and the sequence predicates of the paper's Definition 2. These are
// the building blocks of both the distributed algorithms (S_NR, S_FT)
// and the local phases of block sorting.
package bitonic

import (
	"fmt"

	"repro/internal/hypercube"
)

// CompareExchange returns (min, max) of its arguments — the
// fundamental bitonic operation.
func CompareExchange(a, b int64) (lo, hi int64) {
	if a <= b {
		return a, b
	}
	return b, a
}

// IsSorted reports whether xs is monotonic in the given direction
// (non-decreasing when ascending, non-increasing otherwise). Empty and
// single-element sequences are sorted.
func IsSorted(xs []int64, ascending bool) bool {
	for i := 1; i < len(xs); i++ {
		if ascending && xs[i-1] > xs[i] {
			return false
		}
		if !ascending && xs[i-1] < xs[i] {
			return false
		}
	}
	return true
}

// IsBitonic reports whether xs satisfies the paper's Definition 2:
// there is an index i such that the sequence is non-decreasing up to i
// and non-increasing after it, or the mirror form. Monotonic sequences
// are (degenerate) bitonic. The empty sequence is bitonic.
func IsBitonic(xs []int64) bool {
	return isUpDown(xs) || isDownUp(xs)
}

func isUpDown(xs []int64) bool {
	i := 1
	for i < len(xs) && xs[i-1] <= xs[i] {
		i++
	}
	for i < len(xs) && xs[i-1] >= xs[i] {
		i++
	}
	return i >= len(xs)
}

func isDownUp(xs []int64) bool {
	i := 1
	for i < len(xs) && xs[i-1] >= xs[i] {
		i++
	}
	for i < len(xs) && xs[i-1] <= xs[i] {
		i++
	}
	return i >= len(xs)
}

// IsBitonicRotation reports whether some cyclic rotation of xs is
// bitonic — the closure Batcher's merge actually accepts. It counts
// the number of "direction changes" around the cycle; a rotation of a
// bitonic sequence has at most two.
func IsBitonicRotation(xs []int64) bool {
	n := len(xs)
	if n <= 2 {
		return true
	}
	changes := 0
	// sign of the step from i to i+1 (cyclically), ignoring equal steps
	prev := 0
	for i := 0; i < n; i++ {
		a, b := xs[i], xs[(i+1)%n]
		var s int
		switch {
		case a < b:
			s = 1
		case a > b:
			s = -1
		default:
			continue
		}
		if prev != 0 && s != prev {
			changes++
		}
		prev = s
	}
	// Close the cycle: compare last non-flat sign with first.
	return changes <= 2
}

// Merge performs an in-place bitonic merge: given a bitonic xs of
// power-of-two length, it produces a sorted sequence in the given
// direction. It returns the number of comparisons performed (for cost
// accounting) and an error for non-power-of-two lengths.
func Merge(xs []int64, ascending bool) (compares int, err error) {
	if !hypercube.IsPow2(len(xs)) && len(xs) != 0 {
		return 0, fmt.Errorf("bitonic: merge length %d is not a power of two", len(xs))
	}
	return merge(xs, ascending), nil
}

func merge(xs []int64, ascending bool) int {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	half := n / 2
	c := half
	for i := 0; i < half; i++ {
		if (xs[i] > xs[i+half]) == ascending {
			xs[i], xs[i+half] = xs[i+half], xs[i]
		}
	}
	c += merge(xs[:half], ascending)
	c += merge(xs[half:], ascending)
	return c
}

// Sort performs an in-place Batcher bitonic sort of a power-of-two
// length slice and returns the number of comparisons performed. A
// sequential bitonic sort costs O(N log² N) comparisons; the harness
// uses the returned count to charge virtual time.
func Sort(xs []int64, ascending bool) (compares int, err error) {
	if !hypercube.IsPow2(len(xs)) && len(xs) != 0 {
		return 0, fmt.Errorf("bitonic: sort length %d is not a power of two", len(xs))
	}
	return bsort(xs, ascending), nil
}

func bsort(xs []int64, ascending bool) int {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	half := n / 2
	c := bsort(xs[:half], true)
	c += bsort(xs[half:], false)
	c += merge(xs, ascending)
	return c
}

// Comparator reports whether a orders at or before b — the honest
// comparator is Leq (a <= b). The compare paths of the distributed
// sorts are pluggable through this hook so fault injection can model
// comparators that lie (Geissmann et al.'s persistent random
// comparison faults): a lying comparator changes which keys travel
// where without touching any message, the adversary axis the Φ
// predicates must catch at the application level.
type Comparator func(a, b int64) bool

// Leq is the honest comparator.
func Leq(a, b int64) bool { return a <= b }

// MergeSplit is the block-sorting compare-exchange (Section 5's
// bitonic sort/merge with m elements per node): given two sorted
// ascending blocks a and b of equal length m, it returns the smallest
// m elements (sorted ascending) and the largest m elements (sorted
// ascending), plus the comparison count of the linear merge.
func MergeSplit(a, b []int64) (lo, hi []int64, compares int, err error) {
	return MergeSplitInto(nil, a, b)
}

// MergeSplitInto is MergeSplit merging into a caller-owned scratch
// buffer (grown as needed), so steady-state block exchanges allocate
// nothing. The returned lo and hi alias the scratch; dst must not
// overlap a or b.
func MergeSplitInto(dst []int64, a, b []int64) (lo, hi []int64, compares int, err error) {
	if len(a) != len(b) {
		return nil, nil, 0, fmt.Errorf("bitonic: merge-split blocks differ in length: %d vs %d", len(a), len(b))
	}
	m := len(a)
	var merged []int64
	if cap(dst) < 2*m {
		merged = make([]int64, 0, 2*m)
	} else {
		merged = dst[:0]
	}
	i, j := 0, 0
	for i < m && j < m {
		compares++
		if a[i] <= b[j] {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	lo = merged[:m:m]
	hi = merged[m:]
	return lo, hi, compares, nil
}

// MergeSplitFuncInto is MergeSplitInto with a pluggable comparator: the
// linear merge consults leq instead of the machine's <=. It exists for
// comparison-fault injection — a lying leq silently misroutes keys —
// and is kept separate from MergeSplitInto so the honest hot path pays
// no indirect call.
func MergeSplitFuncInto(dst []int64, a, b []int64, leq Comparator) (lo, hi []int64, compares int, err error) {
	if leq == nil {
		return MergeSplitInto(dst, a, b)
	}
	if len(a) != len(b) {
		return nil, nil, 0, fmt.Errorf("bitonic: merge-split blocks differ in length: %d vs %d", len(a), len(b))
	}
	m := len(a)
	var merged []int64
	if cap(dst) < 2*m {
		merged = make([]int64, 0, 2*m)
	} else {
		merged = dst[:0]
	}
	i, j := 0, 0
	for i < m && j < m {
		compares++
		if leq(a[i], b[j]) {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	lo = merged[:m:m]
	hi = merged[m:]
	return lo, hi, compares, nil
}

// MergeSortCount sorts a copy of xs ascending with a top-down merge
// sort and returns the comparison count, so harnesses can charge
// deterministic virtual time for sequential sorting. The input is not
// modified.
func MergeSortCount(xs []int64) (sorted []int64, compares int) {
	out := append([]int64{}, xs...)
	if len(out) <= 1 {
		return out, 0
	}
	buf := make([]int64, len(out))
	return out, msortCount(out, buf)
}

func msortCount(xs, buf []int64) int {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	mid := n / 2
	c := msortCount(xs[:mid], buf[:mid])
	c += msortCount(xs[mid:], buf[mid:])
	copy(buf[:n], xs)
	i, j := 0, mid
	for k := 0; k < n; k++ {
		switch {
		case i >= mid:
			xs[k] = buf[j]
			j++
		case j >= n:
			xs[k] = buf[i]
			i++
		default:
			c++
			if buf[i] <= buf[j] {
				xs[k] = buf[i]
				i++
			} else {
				xs[k] = buf[j]
				j++
			}
		}
	}
	return c
}

// Reverse reverses xs in place. Block sorting uses it to flip a sorted
// block between ascending and descending representations.
func Reverse(xs []int64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MinMax returns the smallest and largest values of a non-empty slice.
func MinMax(xs []int64) (min, max int64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("bitonic: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}
