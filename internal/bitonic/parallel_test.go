package bitonic

import (
	"math/rand"
	"testing"
)

// naiveMergePoint recomputes mergePoint by actually running the
// sequential merge and counting how many of the first k outputs came
// from a.
func naiveMergePoint(a, b []int64, k int) int {
	i, j := 0, 0
	for i+j < k {
		if i < len(a) && (j >= len(b) || a[i] <= b[j]) {
			i++
		} else {
			j++
		}
	}
	return i
}

func TestMergePointMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		la, lb := rng.Intn(20), rng.Intn(20)
		a := sortedRandom(rng, la)
		b := sortedRandom(rng, lb)
		for k := 0; k <= la+lb; k++ {
			if got, want := mergePoint(a, b, k), naiveMergePoint(a, b, k); got != want {
				t.Fatalf("mergePoint(%v, %v, %d) = %d, want %d", a, b, k, got, want)
			}
		}
	}
}

func sortedRandom(rng *rand.Rand, n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(12)) // duplicates stress the tie rule
	}
	out, _ := MergeSortCount(xs)
	return out
}

// countingMerge runs the literal two-cursor merge and reports its
// comparison count — the ground truth sequentialMergeCompares must
// reproduce in O(log).
func countingMerge(a, b []int64) (out []int64, compares int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		compares++
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, compares
}

func TestSequentialMergeComparesMatchesCountingMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 1000; trial++ {
		a := sortedRandom(rng, rng.Intn(24))
		b := sortedRandom(rng, rng.Intn(24))
		_, want := countingMerge(a, b)
		if got := sequentialMergeCompares(a, b); got != want {
			t.Fatalf("sequentialMergeCompares(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

// TestParallelMergeMatchesSequential forces the parallel partition on
// tiny inputs across worker counts: output must be byte-identical to
// the sequential merge for every partition.
func TestParallelMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 400; trial++ {
		a := sortedRandom(rng, 1+rng.Intn(40))
		b := sortedRandom(rng, 1+rng.Intn(40))
		want := make([]int64, len(a)+len(b))
		seqMergeInto(want, a, b)
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			got := make([]int64, len(a)+len(b))
			parallelMergeInto(got, a, b, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: merge diverges at %d: %v vs %v (a=%v b=%v)",
						workers, i, got, want, a, b)
				}
			}
		}
	}
}

// TestMergeSplitParallelMatchesSequential drives the cutoff-
// parameterized internals so the parallel path runs on small blocks,
// and checks lo/hi/compares against MergeSplitInto exactly.
func TestMergeSplitParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 400; trial++ {
		m := 1 + rng.Intn(48)
		a := sortedRandom(rng, m)
		b := sortedRandom(rng, m)
		wantLo, wantHi, wantC, err := MergeSplitInto(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			lo, hi, c, err := mergeSplitParallelInto(nil, a, b, workers, 2)
			if err != nil {
				t.Fatal(err)
			}
			if c != wantC {
				t.Fatalf("workers=%d m=%d: compares %d, want %d", workers, m, c, wantC)
			}
			for i := range wantLo {
				if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
					t.Fatalf("workers=%d m=%d: split diverges at %d", workers, m, i)
				}
			}
		}
	}
}

// TestMergeSplitParallelRejectsMismatchedBlocks pins the error contract
// to MergeSplitInto's.
func TestMergeSplitParallelRejectsMismatchedBlocks(t *testing.T) {
	if _, _, _, err := MergeSplitParallelInto(nil, []int64{1, 2}, []int64{3}, 0); err == nil {
		t.Fatal("mismatched block lengths accepted")
	}
}

// TestParallelMergeSortCountMatchesSequential pins both the sorted
// output and the comparison count of the parallel sort to the
// sequential MergeSortCount, across worker counts and a forced-low
// cutoff (whitebox psortCount so small inputs take the parallel path).
func TestParallelMergeSortCountMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(40))
		}
		wantSorted, wantC := MergeSortCount(xs)
		for _, workers := range []int{1, 2, 3, 8} {
			got := append([]int64{}, xs...)
			buf := make([]int64, n)
			c := psortCount(got, buf, workers, 2)
			if c != wantC {
				t.Fatalf("workers=%d n=%d: compares %d, want %d", workers, n, c, wantC)
			}
			for i := range wantSorted {
				if got[i] != wantSorted[i] {
					t.Fatalf("workers=%d n=%d: sort diverges at %d", workers, n, i)
				}
			}
		}
		// The exported entry point must agree too (cutoff applies, so
		// small n stays sequential — output is identical either way).
		gotSorted, gotC := ParallelMergeSortCount(xs, 4)
		if gotC != wantC {
			t.Fatalf("exported: compares %d, want %d", gotC, wantC)
		}
		for i := range wantSorted {
			if gotSorted[i] != wantSorted[i] {
				t.Fatalf("exported: sort diverges at %d", i)
			}
		}
	}
}

// FuzzMergeSplitParallel is the satellite fuzz target: for arbitrary
// equal-length sorted blocks and any worker count, the parallel
// merge-split must produce exactly the sequential outputs and count.
func FuzzMergeSplitParallel(f *testing.F) {
	f.Add(int64(1), 8, 4)
	f.Add(int64(42), 64, 3)
	f.Add(int64(7), 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, m, workers int) {
		if m <= 0 || m > 1<<12 || workers < 1 || workers > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := sortedRandom(rng, m)
		b := sortedRandom(rng, m)
		wantLo, wantHi, wantC, err := MergeSplitInto(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, c, err := mergeSplitParallelInto(nil, a, b, workers, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c != wantC {
			t.Fatalf("compares %d, want %d", c, wantC)
		}
		for i := 0; i < m; i++ {
			if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
				t.Fatalf("split diverges at %d: parallel (%v, %v) vs sequential (%v, %v)",
					i, lo, hi, wantLo, wantHi)
			}
		}
	})
}

// BenchmarkMergeSplitSeqVsPar is the satellite microbenchmark:
// sequential vs parallel merge-split across block lengths and worker
// counts. The parallel rows force the path with a cutoff of 2 so the
// small-m rows show the fan-out overhead the DefaultParallelCutoff
// exists to avoid.
func BenchmarkMergeSplitSeqVsPar(b *testing.B) {
	for _, m := range []int{1 << 10, 1 << 14, 1 << 17} {
		a := make([]int64, m)
		bb := make([]int64, m)
		for i := 0; i < m; i++ {
			a[i] = int64(2 * i)
			bb[i] = int64(2*i + 1)
		}
		dst := make([]int64, 2*m)
		b.Run(benchName("seq", m, 1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := MergeSplitInto(dst[:0], a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{2, 4, 8} {
			b.Run(benchName("par", m, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := mergeSplitParallelInto(dst[:0], a, bb, workers, 2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchName(kind string, m, workers int) string {
	return kind + "/m=" + itoa(m) + "/workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkParallelMergeSortCount compares the sequential and parallel
// sorts on a host-scale input (the hostsort baseline's workload).
func BenchmarkParallelMergeSortCount(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(26))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63()
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeSortCount(xs)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run("par/workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelMergeSortCount(xs, workers)
			}
		})
	}
}
