package bitonic

import (
	"fmt"
	"runtime"
	"sync"
)

// This file adds data-parallel variants of the merge primitives for
// large block lengths m: the merge of two sorted runs is split across
// cores with the merge-path partition (each worker binary-searches its
// output range's boundaries, then merges its slice independently).
// Every parallel variant produces output — and reports comparison
// counts — bit-identical to its sequential counterpart, so virtual-time
// accounting and golden series are unaffected by the worker count: the
// count charged is the number of comparisons the sequential two-cursor
// merge would perform, computed in O(log) by sequentialMergeCompares,
// not the (nondeterministic) number the workers happen to execute.

// DefaultParallelCutoff is the total merged length below which the
// parallel variants fall back to the sequential code path: goroutine
// fan-out only pays for itself on large m.
const DefaultParallelCutoff = 1 << 14

// mergePoint returns how many of the first k elements of the merge of
// sorted runs a and b come from a, under the sequential merge's tie
// rule (equal keys: a first). Binary search, O(log min(k, len(a))).
func mergePoint(a, b []int64, k int) int {
	lo, hi := k-len(b), len(a)
	if lo < 0 {
		lo = 0
	}
	if hi > k {
		hi = k
	}
	for lo < hi {
		i := int(uint(lo+hi) / 2)
		// i < hi <= min(k, len(a)) and i >= lo >= k-len(b), so both
		// indexes below are in range.
		if a[i] <= b[k-i-1] {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo
}

// countLess returns how many elements of sorted xs are < x.
func countLess(xs []int64, x int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		i := int(uint(lo+hi) / 2)
		if xs[i] < x {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo
}

// countLeq returns how many elements of sorted xs are <= x.
func countLeq(xs []int64, x int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		i := int(uint(lo+hi) / 2)
		if xs[i] <= x {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo
}

// sequentialMergeCompares returns the number of comparisons the
// sequential two-cursor merge (tie rule: a first) performs merging
// sorted runs a and b: one per emitted element until one run exhausts.
// If a exhausts first (a's last element orders at or before b's), that
// takes len(a) emissions from a plus one for every b element emitted
// before it; symmetrically for b.
func sequentialMergeCompares(a, b []int64) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if a[len(a)-1] <= b[len(b)-1] {
		return len(a) + countLess(b, a[len(a)-1])
	}
	return len(b) + countLeq(a, b[len(b)-1])
}

// seqMergeInto merges sorted runs a and b into dst (len(a)+len(b)
// long) with the canonical tie rule.
func seqMergeInto(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// parallelMergeInto merges sorted runs a and b into dst across up to
// workers goroutines. Each worker owns an equal share of the output;
// the merge-path partition makes the shares independent, and the
// shared tie rule makes the result identical to seqMergeInto.
func parallelMergeInto(dst, a, b []int64, workers int) {
	n := len(a) + len(b)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		seqMergeInto(dst, a, b)
		return
	}
	do := func(w int) {
		klo, khi := w*n/workers, (w+1)*n/workers
		alo, ahi := mergePoint(a, b, klo), mergePoint(a, b, khi)
		seqMergeInto(dst[klo:khi], a[alo:ahi], b[klo-alo:khi-ahi])
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			do(w)
		}(w)
	}
	do(0)
	wg.Wait()
}

// resolveWorkers maps the Parallelism knob to a concrete worker count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// mergeSplitParallelInto is MergeSplitInto with the merge fanned out
// across workers when the merged length reaches cutoff. The cutoff is a
// parameter (rather than the constant) so tests can force the parallel
// path on small inputs.
func mergeSplitParallelInto(dst, a, b []int64, workers, cutoff int) (lo, hi []int64, compares int, err error) {
	if len(a) != len(b) {
		return nil, nil, 0, fmt.Errorf("bitonic: merge-split blocks differ in length: %d vs %d", len(a), len(b))
	}
	m := len(a)
	workers = resolveWorkers(workers)
	if 2*m < cutoff || workers <= 1 {
		return MergeSplitInto(dst, a, b)
	}
	var merged []int64
	if cap(dst) < 2*m {
		merged = make([]int64, 2*m)
	} else {
		merged = dst[:2*m]
	}
	parallelMergeInto(merged, a, b, workers)
	return merged[:m:m], merged[m:], sequentialMergeCompares(a, b), nil
}

// MergeSplitParallelInto is MergeSplitInto for large m: the linear
// merge runs across up to workers cores (<= 0 means GOMAXPROCS) once
// the merged length reaches DefaultParallelCutoff, and sequentially
// below it. Output, aliasing contract, and the reported comparison
// count are identical to MergeSplitInto for every input.
func MergeSplitParallelInto(dst, a, b []int64, workers int) (lo, hi []int64, compares int, err error) {
	return mergeSplitParallelInto(dst, a, b, workers, DefaultParallelCutoff)
}

// MergeSplitParallelFuncInto is the comparator-pluggable variant. A
// non-nil leq cannot be assumed pure (fault injection deliberately
// plugs in lying, stateful comparators), so that case stays on the
// sequential MergeSplitFuncInto path; only the honest nil-comparator
// case parallelizes.
func MergeSplitParallelFuncInto(dst, a, b []int64, leq Comparator, workers int) (lo, hi []int64, compares int, err error) {
	if leq != nil {
		return MergeSplitFuncInto(dst, a, b, leq)
	}
	return MergeSplitParallelInto(dst, a, b, workers)
}

// psortCount is msortCount with the two half-sorts recursing in
// parallel and the combining merge fanned out, below which (n < cutoff
// or a single worker) it defers to msortCount. Output and comparison
// count are identical to msortCount.
func psortCount(xs, buf []int64, workers, cutoff int) int {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	if workers <= 1 || n < cutoff {
		return msortCount(xs, buf)
	}
	mid := n / 2
	var cLeft int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cLeft = psortCount(xs[:mid], buf[:mid], workers/2, cutoff)
	}()
	c := psortCount(xs[mid:], buf[mid:], workers-workers/2, cutoff)
	wg.Wait()
	c += cLeft
	copy(buf[:n], xs)
	parallelMergeInto(xs, buf[:mid], buf[mid:n], workers)
	return c + sequentialMergeCompares(buf[:mid], buf[mid:n])
}

// ParallelMergeSortCount is MergeSortCount across up to workers cores
// (<= 0 means GOMAXPROCS): same sorted output, same comparison count,
// so callers charging virtual time from the count are unaffected by
// the worker count.
func ParallelMergeSortCount(xs []int64, workers int) (sorted []int64, compares int) {
	out := append([]int64{}, xs...)
	if len(out) <= 1 {
		return out, 0
	}
	buf := make([]int64, len(out))
	return out, psortCount(out, buf, resolveWorkers(workers), DefaultParallelCutoff)
}
