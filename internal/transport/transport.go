// Package transport defines the multicomputer abstraction the
// distributed algorithms are written against: a hypercube of node
// endpoints with point-to-point links, a reliable host, and a
// deterministic virtual clock. Two implementations exist:
//
//   - internal/simnet — in-process, channels as links, with fault
//     injection hooks; the default for tests and experiments.
//   - internal/tcpnet — real TCP connections (stdlib net) between
//     in-process nodes; demonstrates that the protocols and the
//     virtual-time accounting are transport-independent. Both
//     implementations produce identical virtual-time results for the
//     same protocol run (asserted by tcpnet's equivalence tests).
//
// Virtual time: every endpoint owns a Ticks clock. Sending charges the
// sender, receiving charges the receiver, and a message arrives
// Latency ticks after its departure, so makespans are reproducible
// regardless of wall-clock scheduling.
package transport

import (
	"errors"

	"repro/internal/hypercube"
	"repro/internal/wire"
)

// ErrAbsent is the transport-independent absence sentinel: Recv gave up
// waiting for a message that never arrived. Environmental assumption 4
// makes absence detectable, and both network implementations wrap this
// sentinel in their timeout errors so protocol code can classify the
// evidence with errors.Is instead of parsing error text.
var ErrAbsent = errors.New("transport: expected message absent (timeout)")

// Ticks is a quantity of virtual time.
type Ticks int64

// CostModel assigns virtual-time costs to primitive operations. All
// values are in ticks. The defaults are calibrated so that fitted
// constants for the reproduced experiments have the same term
// structure as the paper's Section 5 table (see internal/costmodel).
type CostModel struct {
	// SendFixed is the per-message software overhead charged to the sender.
	SendFixed Ticks
	// SendPerByte is the per-byte transmission cost charged to the sender.
	SendPerByte Ticks
	// Latency is the wire time between departure and arrival.
	Latency Ticks
	// RecvFixed is the per-message software overhead charged to the receiver.
	RecvFixed Ticks
	// RecvPerByte is the per-byte copy-in cost charged to the receiver.
	RecvPerByte Ticks
	// HostFixed and HostPerByte are the host interface's per-message
	// and per-byte costs, charged to the host for traffic crossing the
	// host channel. On the paper's Ncube the host interface was far
	// slower per byte than inter-node DMA links; this asymmetry is
	// what makes host sorting communication-bound (the 14·N term of
	// the paper's table) while node-to-node piggybacking stays cheap.
	HostFixed   Ticks
	HostPerByte Ticks
	// Compare is the cost of one key comparison.
	Compare Ticks
	// KeyMove is the cost of moving one key in memory.
	KeyMove Ticks
}

// DefaultCostModel returns the cost model used by the experiment
// harness. The ratios mirror the paper's Ncube-class multicomputer:
// per-message software setup dominates node-link cost (millisecond
// messaging software over fast DMA), the host channel is slow per
// byte, and comparisons are cheap relative to either.
func DefaultCostModel() CostModel {
	return CostModel{
		SendFixed:   3000,
		SendPerByte: 1,
		Latency:     1000,
		RecvFixed:   3000,
		RecvPerByte: 1,
		HostFixed:   1000,
		HostPerByte: 50,
		Compare:     25,
		KeyMove:     5,
	}
}

// Endpoint is a node processor's handle on the network. Endpoints are
// goroutine-confined: all methods must be called from the owning
// node's goroutine only.
type Endpoint interface {
	// ID returns the node label in [0, Topology().Nodes()).
	ID() int
	// Topology returns the hypercube the endpoint belongs to.
	Topology() hypercube.Topology

	// Send transmits to the partner across the given dimension bit,
	// charging the sender's clock.
	Send(bit int, m wire.Message) error
	// Recv blocks for the next message from the partner across the
	// given dimension bit, advancing the clock to at least the
	// message's arrival. Message absence (timeout) is an error.
	Recv(bit int) (wire.Message, error)
	// SendHost and RecvHost exchange messages with the reliable host.
	SendHost(m wire.Message) error
	RecvHost() (wire.Message, error)

	// Compute charges local computation time.
	Compute(t Ticks)
	// ChargeCompare charges the cost of n key comparisons.
	ChargeCompare(n int)
	// ChargeKeyMove charges the cost of moving n keys in local memory.
	ChargeKeyMove(n int)

	// Clock returns the node's virtual time; CommTicks and CompTicks
	// split it into communication and computation components (idle
	// waiting belongs to neither).
	Clock() Ticks
	CommTicks() Ticks
	CompTicks() Ticks
}

// Host is the reliable host processor's handle. Like Endpoint it is
// goroutine-confined.
type Host interface {
	// Send transmits to a node over the host interface.
	Send(node int, m wire.Message) error
	// Recv blocks for the next message from any node.
	Recv() (wire.Message, error)
	// TryRecv returns a pending message without waiting for the full
	// absence timeout; ok is false when none is queued.
	TryRecv() (m wire.Message, ok bool, err error)

	Compute(t Ticks)
	ChargeCompare(n int)
	ChargeKeyMove(n int)

	Clock() Ticks
	CommTicks() Ticks
	CompTicks() Ticks
}

// MetricsSnapshot is a point-in-time copy of a network's traffic
// counters, per message kind.
type MetricsSnapshot struct {
	MsgsByKind  map[wire.Kind]int64
	BytesByKind map[wire.Kind]int64
}

// TotalMsgs returns the message count across all kinds.
func (s MetricsSnapshot) TotalMsgs() int64 {
	var t int64
	for _, v := range s.MsgsByKind {
		t += v
	}
	return t
}

// TotalBytes returns the byte count across all kinds.
func (s MetricsSnapshot) TotalBytes() int64 {
	var t int64
	for _, v := range s.BytesByKind {
		t += v
	}
	return t
}

// Network is a multicomputer instance: it hands out endpoints and the
// host, and reports traffic. A Network serves a single run.
type Network interface {
	Topology() hypercube.Topology
	// Endpoint returns node id's endpoint. Call once per node, before
	// starting its goroutine.
	Endpoint(id int) (Endpoint, error)
	// Host returns the host endpoint. Call at most once.
	Host() Host
	// Metrics snapshots the traffic counters.
	Metrics() MetricsSnapshot
}

// WorkerControl is optionally implemented by networks whose message
// delivery is mediated by a controlled scheduler (internal/simnet in
// controlled mode). Such networks decide which enabled delivery fires
// next only once every live worker has reached a blocking receive, so
// they must know exactly which node and host goroutines exist.
//
// Harnesses that run node programs (internal/node) type-assert for
// this interface and, when present, declare every worker before its
// goroutine starts and retire it when the goroutine returns. The host
// worker is declared with id wire.HostID. Free-running networks do not
// implement the interface and pay nothing.
type WorkerControl interface {
	// WorkerStart declares that the worker with the given node label
	// (wire.HostID for the host) is about to start executing. It must
	// be called before the worker's goroutine is launched.
	WorkerStart(id int)
	// WorkerDone retires a started worker: it will issue no further
	// transport operations.
	WorkerDone(id int)
}
