package experiments

import (
	"testing"

	"repro/internal/obs"
)

// TestDigestAwareTampersNeverSilent is the adversarial check for the
// digest fast path: a tamper that corrupts the aggregate digest while
// relaying honest entries (digest-lie) and a tamper that corrupts the
// entries while preserving the multiset — and therefore the digest —
// (permute-lie) must both end every run verified-or-detected on both
// algorithms. "Correct" outcomes are acceptable (a lie that lands only
// on receivers whose state it cannot change is harmless); silent-wrong
// is not, per Theorem 3.
func TestDigestAwareTampersNeverSilent(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 16)
	cells, err := MeasureCoverage(goldenSweep(), o)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, c := range cells {
		if c.Label != "digest-lie" && c.Label != "permute-lie" {
			continue
		}
		seen[c.Algo+"/"+c.Label]++
		if c.Silent != 0 {
			t.Errorf("%s %s dim %d: %d silent-wrong run(s)", c.Algo, c.Label, c.Dim, c.Silent)
		}
		if c.Detected+c.Correct != c.Runs {
			t.Errorf("%s %s dim %d: verdicts %d+%d don't cover %d runs",
				c.Algo, c.Label, c.Dim, c.Detected, c.Correct, c.Runs)
		}
		// A forged aggregate digest over honest entries is direct
		// Byzantine evidence in the block algorithm: every relayed
		// view there carries slots the receiver already holds, so the
		// inconsistency must actually be caught, not merely neutered.
		if c.Algo == AlgoBlockFT && c.Label == "digest-lie" && c.Detected == 0 {
			t.Errorf("BlockFT digest-lie dim %d: never detected", c.Dim)
		}
	}
	for _, key := range []string{
		AlgoSFT + "/digest-lie", AlgoSFT + "/permute-lie",
		AlgoBlockFT + "/digest-lie", AlgoBlockFT + "/permute-lie",
	} {
		if seen[key] == 0 {
			t.Errorf("sweep produced no %s cells", key)
		}
	}
}
