package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/obs"
)

// TestRecoveryModelWithinTolerance is the acceptance gate for the
// recovery-aware cost model: calibrate from a seeded simnet sweep,
// then require the model's predicted E[total vticks] to land within
// 10% of the measured mean in every swept (dim, load, spares) cell.
func TestRecoveryModelWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded recovery sweep is slow")
	}
	cfg := RecoverySweep{Seed: 1989}
	cells, err := MeasureRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := CalibrateRecovery(cells)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calibration: attempt=%s (R²=%.4f) detect=%.4f waste=%.4f",
		cal.Attempt, cal.AttemptR2, cal.Calib.DetectFrac, cal.Calib.WasteFrac)
	if cal.Calib.DetectFrac <= 0 || cal.Calib.DetectFrac > 1 {
		t.Fatalf("detect fraction out of range: %v", cal.Calib.DetectFrac)
	}
	if cal.Calib.WasteFrac <= 0 || cal.Calib.WasteFrac > 1.5 {
		t.Fatalf("waste fraction implausible: %v", cal.Calib.WasteFrac)
	}

	o := obs.New(obs.NewRegistry(), 64)
	vals, err := ValidateRecovery(cells, cal, o, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(cells) {
		t.Fatalf("validated %d of %d cells", len(vals), len(cells))
	}
	for _, v := range vals {
		t.Logf("dim=%d load=%.2f spares=%d: predicted=%.0f measured=%.0f relerr=%.3f",
			v.Cell.Dim, v.Cell.Load, v.Cell.Spares, v.Predicted, v.Measured, v.RelErr)
		if !v.Within {
			t.Errorf("dim=%d load=%.2f spares=%d: model off by %.1f%% (>10%%)",
				v.Cell.Dim, v.Cell.Load, v.Cell.Spares, 100*v.RelErr)
		}
	}

	// The validation pass must have charged the obs instruments.
	m := o.Metrics()
	if got := m.CostModelCells.Value(); got != int64(len(vals)) {
		t.Errorf("costmodel cells counter = %d, want %d", got, len(vals))
	}
	within := 0
	for _, v := range vals {
		if v.Within {
			within++
		}
	}
	if got := m.CostModelWithin.Value(); got != int64(within) {
		t.Errorf("within-tolerance counter = %d, want %d", got, within)
	}
}

// TestFigure7Faulty checks the faulty-regime projection composes the
// fitted fault-free models with repair-aware variants and keeps the
// crossover ordering sane: repair cost can only push the crossover to
// larger N.
func TestFigure7Faulty(t *testing.T) {
	fit := Table1Result{
		SFT:        costmodel.PaperSFT(),
		Sequential: costmodel.PaperSequential(),
	}
	cal := RecoveryCalibration{
		Calib:          costmodel.Calibration{DetectFrac: 0.9, WasteFrac: 0.5},
		PersistentFrac: 0.5,
	}
	fig, err := Figure7Faulty(fit, cal, []float64{1e8, 1e6}, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Models) != 4 { // S_FT, two faulty variants, Sequential
		t.Fatalf("model count = %d", len(fig.Models))
	}
	if fig.PaperCrossover == 0 || fig.MeasuredCrossover == 0 {
		t.Fatalf("missing crossover: %+v", fig)
	}
	if fig.MeasuredCrossover < fig.PaperCrossover {
		t.Errorf("repair cost moved crossover earlier: %d < %d",
			fig.MeasuredCrossover, fig.PaperCrossover)
	}
	if !strings.Contains(fig.Render(), "faulty regime") {
		t.Error("render missing title")
	}
	for _, r := range fig.Rows {
		// Repair-aware totals bracket between fault-free S_FT and never negative.
		if r.Totals[1] < r.Totals[0] || r.Totals[2] < r.Totals[0] {
			t.Errorf("N=%d: repair-aware cheaper than fault-free: %v", r.N, r.Totals)
		}
	}
	if math.IsNaN(fig.Rows[0].Totals[1]) {
		t.Error("NaN in projection")
	}
}
