// Detection-coverage matrix: the Theorem 3 claim held against every
// adversary class at once. MeasureCoverage sweeps fault class × rate ×
// cube dimension × algorithm (S_FT and the fault-tolerant block sort)
// through the fault package's injectors and tallies, per cell, how
// often the run fail-stopped (and on which predicate), finished
// correct despite the fault, or — the outcome the theorem forbids —
// finished undetected with a wrong output. CalibrateCoverage folds the
// per-class detection fractions into a costmodel.CoverageCalibration
// so the recovery model can price machines whose faults are not all
// wire lies.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Algorithm names used in coverage cells.
const (
	AlgoSFT     = "S_FT"
	AlgoBlockFT = "BlockFT"
)

// CoverageSweep configures a MeasureCoverage grid. The zero value
// selects the default sweep.
type CoverageSweep struct {
	// Dims are the cube dimensions (default {2, 3}).
	Dims []int
	// Rates are the fault rates swept for the rate-parameterized
	// classes (comparison and memory); message and absence strategies
	// are all-or-nothing and run once per cell (default {0.5, 1}).
	Rates []float64
	// Runs is the number of seeded injections per cell; the faulty
	// node and the fault seed vary per run (default 8).
	Runs int
	// BlockLen is the keys-per-node width of the block-sort cells
	// (default 2).
	BlockLen int
	// Lie parameterizes the value-substitution message strategies and
	// the stuck-at memory value (default 1<<30).
	Lie int64
	// Seed roots the whole sweep; every cell and run derives
	// deterministically from it (default 1989).
	Seed int64
	// Timeout bounds absence detection per run (default 150ms).
	Timeout time.Duration
}

func (s CoverageSweep) withDefaults() CoverageSweep {
	if len(s.Dims) == 0 {
		s.Dims = []int{2, 3}
	}
	if len(s.Rates) == 0 {
		s.Rates = []float64{0.5, 1}
	}
	if s.Runs <= 0 {
		s.Runs = 8
	}
	if s.BlockLen <= 0 {
		s.BlockLen = 2
	}
	if s.Lie == 0 {
		s.Lie = 1 << 30
	}
	if s.Seed == 0 {
		s.Seed = 1989
	}
	if s.Timeout <= 0 {
		s.Timeout = 150 * time.Millisecond
	}
	return s
}

// CoverageCell is one matrix cell: a (algorithm, dim, fault, rate)
// coordinate and its verdict tallies over the cell's seeded runs.
type CoverageCell struct {
	// Algo is AlgoSFT or AlgoBlockFT.
	Algo string
	// Dim is the cube dimension.
	Dim int
	// Class is the adversary class.
	Class fault.Class
	// Label names the concrete strategy or mode within the class.
	Label string
	// Rate is the fault rate (1 for the all-or-nothing classes).
	Rate float64
	// Runs is the number of injections behind the tallies.
	Runs int
	// Detected, Correct and Silent split the runs by verdict; Silent
	// counts the undetected-wrong outcomes Theorem 3 forbids.
	Detected int
	Correct  int
	Silent   int
	// Detectors histograms what detected the fault: predicate name,
	// "absence", or "node-local", per the fault package's Result.
	Detectors map[string]int
}

// DetectFrac is the cell's measured detection fraction.
func (c CoverageCell) DetectFrac() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Runs)
}

// coverageRow is one fault coordinate of the matrix, before the run
// axis is applied.
type coverageRow struct {
	class fault.Class
	label string
	rate  float64
	// mode/strategy payloads; exactly one family is meaningful.
	strategy fault.Strategy
	cmpMode  fault.CmpMode
	memMode  fault.MemMode
}

// coverageRows enumerates the matrix's fault axis in render order:
// message strategies, absence, then the rate-swept comparison and
// memory modes.
func coverageRows(rates []float64) []coverageRow {
	var rows []coverageRow
	for _, st := range fault.AllStrategies() {
		rows = append(rows, coverageRow{
			class: st.Class(), label: st.String(), rate: 1, strategy: st,
		})
	}
	for _, m := range fault.AllCmpModes() {
		for _, r := range rates {
			rows = append(rows, coverageRow{
				class: fault.ClassComparison, label: m.String(), rate: r, cmpMode: m,
			})
		}
	}
	for _, m := range fault.AllMemModes() {
		for _, r := range rates {
			rows = append(rows, coverageRow{
				class: fault.ClassMemory, label: m.String(), rate: r, memMode: m,
			})
		}
	}
	return rows
}

// MeasureCoverage runs the sweep and returns the matrix cells, in
// (algorithm, dim, row) order. Cells run concurrently on the shared
// worker pool; runs within a cell are sequential and deterministic in
// the sweep seed. Each run's outcome is recorded on the observer's
// per-class fault counters (nil-safe).
func MeasureCoverage(cfg CoverageSweep, o *obs.Observer) ([]CoverageCell, error) {
	cfg = cfg.withDefaults()
	for _, d := range cfg.Dims {
		if d < 1 {
			return nil, fmt.Errorf("experiments: coverage sweep dim %d < 1", d)
		}
	}
	for _, r := range cfg.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("experiments: coverage sweep rate %v outside (0,1]", r)
		}
	}
	rows := coverageRows(cfg.Rates)
	type coord struct {
		algo string
		dim  int
		row  coverageRow
	}
	var coords []coord
	for _, algo := range []string{AlgoSFT, AlgoBlockFT} {
		for _, d := range cfg.Dims {
			for _, row := range rows {
				coords = append(coords, coord{algo: algo, dim: d, row: row})
			}
		}
	}
	cells := make([]CoverageCell, len(coords))
	err := forEach(len(coords), func(i int) error {
		c := coords[i]
		cell, err := measureCoverageCell(cfg, c.algo, c.dim, c.row, cfg.Seed+int64(i)*7919, o)
		if err != nil {
			return fmt.Errorf("experiments: coverage cell %s d%d %s rate %v: %w",
				c.algo, c.dim, c.row.label, c.row.rate, err)
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

func measureCoverageCell(cfg CoverageSweep, algo string, dim int, row coverageRow, cellSeed int64, o *obs.Observer) (CoverageCell, error) {
	n := 1 << uint(dim)
	cell := CoverageCell{
		Algo: algo, Dim: dim, Class: row.class, Label: row.label,
		Rate: row.rate, Runs: cfg.Runs, Detectors: map[string]int{},
	}
	for run := 0; run < cfg.Runs; run++ {
		node := run % n
		seed := cellSeed ^ (int64(run)+1)*0x9E3779B9
		keys := Keys(n, seed)
		blocks := Blocks(n, cfg.BlockLen, seed)

		var res fault.Result
		var err error
		switch {
		case row.class == fault.ClassComparison:
			spec := fault.CmpSpec{Node: node, Mode: row.cmpMode, Rate: row.rate, Seed: seed, ActivateStage: 1}
			if algo == AlgoSFT {
				res, err = fault.InjectCmpSFT(dim, keys, spec, cfg.Timeout)
			} else {
				res, err = fault.InjectCmpBlockFT(dim, blocks, spec, cfg.Timeout)
			}
		case row.class == fault.ClassMemory:
			spec := fault.MemSpec{Node: node, Mode: row.memMode, Rate: row.rate, Seed: seed,
				ActivateStage: 1, StuckValue: cfg.Lie}
			if algo == AlgoSFT {
				res, err = fault.InjectMemSFT(dim, keys, spec, cfg.Timeout)
			} else {
				res, err = fault.InjectMemBlockFT(dim, blocks, spec, cfg.Timeout)
			}
		default:
			spec := fault.Spec{Node: node, Strategy: row.strategy, ActivateStage: 1, LieValue: cfg.Lie}
			if algo == AlgoSFT {
				res, err = fault.InjectSFT(dim, keys, spec, cfg.Timeout)
			} else {
				res, err = fault.InjectBlockFT(dim, blocks, spec, cfg.Timeout)
			}
		}
		if err != nil {
			return CoverageCell{}, fmt.Errorf("run %d node %d: %w", run, node, err)
		}
		switch res.Verdict {
		case fault.Detected:
			cell.Detected++
			det := res.Detector
			if det == "" {
				det = "node-local"
			}
			cell.Detectors[det]++
			if ferr := validateForensic(res, row.class); ferr != nil {
				return CoverageCell{}, fmt.Errorf("run %d node %d: %w", run, node, ferr)
			}
		case fault.CorrectDespiteFault:
			cell.Correct++
		case fault.SilentWrong:
			cell.Silent++
		default:
			return CoverageCell{}, fmt.Errorf("run %d node %d: unclassified verdict %v", run, node, res.Verdict)
		}
		o.FaultOutcome(row.class.Obs(), res.Verdict == fault.Detected, res.Verdict == fault.SilentWrong)
	}
	return cell, nil
}

// validateForensic cross-checks a detected run's flight-recorder dump
// against its verdict: every host-level detection must come with a
// report whose accused node and predicate agree with the earliest host
// evidence, and — for the classes whose lies travel over messages
// (message and comparison faults) — whose causal chain spans at least
// the accuser-side evidence and the hop it arrived on.
func validateForensic(res fault.Result, class fault.Class) error {
	if res.Detector == "node-local" {
		// The node fail-stopped before its ERROR reached the host, so
		// no accusation dump was taken.
		return nil
	}
	rep := res.Forensic
	if rep == nil {
		return fmt.Errorf("detected (%s via %s) but no forensic report attached",
			res.Predicate, res.Detector)
	}
	if len(rep.Chain) == 0 || len(rep.Nodes) == 0 {
		return fmt.Errorf("forensic report is empty: %d chain hops, %d node logs",
			len(rep.Chain), len(rep.Nodes))
	}
	if res.Accused >= 0 && int(rep.Accused) != res.Accused {
		return fmt.Errorf("forensic report accuses node %d, verdict accuses node %d",
			rep.Accused, res.Accused)
	}
	if rep.Predicate != res.Predicate {
		return fmt.Errorf("forensic report predicate %q, verdict predicate %q",
			rep.Predicate, res.Predicate)
	}
	if (class == fault.ClassMessage || class == fault.ClassComparison) && len(rep.Chain) < 2 {
		return fmt.Errorf("%s-fault dump has a causal chain of %d hop(s), want >= 2",
			class, len(rep.Chain))
	}
	return nil
}

// SilentWrongCells returns the cells with at least one silent-wrong
// run — Theorem 3 escapes; an empty result is the theorem holding over
// the whole sweep.
func SilentWrongCells(cells []CoverageCell) []CoverageCell {
	var out []CoverageCell
	for _, c := range cells {
		if c.Silent > 0 {
			out = append(out, c)
		}
	}
	return out
}

// ClassCoverage is one adversary class's tallies summed over its
// matrix cells.
type ClassCoverage struct {
	Class    fault.Class
	Runs     int
	Detected int
	Correct  int
	Silent   int
}

// DetectFrac is the class's overall measured detection fraction.
func (c ClassCoverage) DetectFrac() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Runs)
}

// SummarizeCoverage folds cells into per-class totals, in
// fault.AllClasses order (classes absent from the cells are omitted).
func SummarizeCoverage(cells []CoverageCell) []ClassCoverage {
	byClass := map[fault.Class]*ClassCoverage{}
	for _, c := range cells {
		cc := byClass[c.Class]
		if cc == nil {
			cc = &ClassCoverage{Class: c.Class}
			byClass[c.Class] = cc
		}
		cc.Runs += c.Runs
		cc.Detected += c.Detected
		cc.Correct += c.Correct
		cc.Silent += c.Silent
	}
	var out []ClassCoverage
	for _, cl := range fault.AllClasses() {
		if cc, ok := byClass[cl]; ok {
			out = append(out, *cc)
		}
	}
	return out
}

// CalibrateCoverage converts a measured matrix into the cost model's
// per-class detection profile: each class's DetectFrac is its overall
// detection fraction and its Share is its run share of the sweep (the
// uniform-mix assumption; callers with a better arrival mix can
// reweight the shares before use).
func CalibrateCoverage(cells []CoverageCell) (costmodel.CoverageCalibration, error) {
	sums := SummarizeCoverage(cells)
	if len(sums) == 0 {
		return costmodel.CoverageCalibration{}, errors.New("experiments: no coverage cells to calibrate")
	}
	var total int
	for _, cc := range sums {
		total += cc.Runs
	}
	var cal costmodel.CoverageCalibration
	for _, cc := range sums {
		cal.Classes = append(cal.Classes, costmodel.ClassDetection{
			Class:      cc.Class.String(),
			Share:      float64(cc.Runs) / float64(total),
			DetectFrac: cc.DetectFrac(),
		})
	}
	if err := cal.Validate(); err != nil {
		return costmodel.CoverageCalibration{}, err
	}
	return cal, nil
}

// RenderCoverage renders the matrix as a fixed-width text table, one
// line per cell plus per-class totals — the E6 table extended across
// adversary classes.
func RenderCoverage(cells []CoverageCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection-coverage matrix — fault class × rate × dim × algorithm\n")
	fmt.Fprintf(&b, "%-8s %-4s %-11s %-15s %5s  %9s %8s %13s  %s\n",
		"algo", "dim", "class", "fault", "rate", "detected", "correct", "SILENT-WRONG", "detectors")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-8s %-4d %-11s %-15s %5.2f  %5d/%-3d %8d %13d  %s\n",
			c.Algo, c.Dim, c.Class, c.Label, c.Rate, c.Detected, c.Runs, c.Correct, c.Silent,
			renderDetectors(c.Detectors))
	}
	b.WriteString("\nPer-class totals\n")
	fmt.Fprintf(&b, "%-11s %9s %8s %13s %12s\n",
		"class", "detected", "correct", "SILENT-WRONG", "detect-frac")
	for _, cc := range SummarizeCoverage(cells) {
		fmt.Fprintf(&b, "%-11s %5d/%-3d %8d %13d %12.3f\n",
			cc.Class, cc.Detected, cc.Runs, cc.Correct, cc.Silent, cc.DetectFrac())
	}
	return b.String()
}

// renderDetectors formats a detector histogram deterministically
// (keys sorted).
func renderDetectors(d map[string]int) string {
	if len(d) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, d[k]))
	}
	return strings.Join(parts, " ")
}
