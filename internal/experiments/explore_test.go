package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMeasureExploreDim1 exhausts the dim-1 sweep: every case, every
// schedule, zero violations (E9's correctness half; the dim-2 sweep
// runs in cmd/explore and CI).
func TestMeasureExploreDim1(t *testing.T) {
	rows, err := MeasureExplore([]int{1}, obs.NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows for 1 dim", len(rows))
	}
	r := rows[0]
	if r.Violations != 0 {
		t.Fatalf("dim 1 sweep found %d violations", r.Violations)
	}
	if r.Branches < r.Cases {
		t.Fatalf("%d branches < %d cases", r.Branches, r.Cases)
	}
	var b strings.Builder
	RenderExplore(&b, rows)
	if !strings.Contains(b.String(), "branches") {
		t.Fatalf("render missing header:\n%s", b.String())
	}
}
