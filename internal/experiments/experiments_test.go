package experiments

import (
	"strings"
	"testing"
)

func TestKeysDeterministic(t *testing.T) {
	a := Keys(16, 1)
	b := Keys(16, 1)
	c := Keys(16, 2)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different keys")
	}
	if !diff {
		t.Error("different seeds produced identical keys")
	}
}

func TestBlocksShape(t *testing.T) {
	bs := Blocks(4, 3, 9)
	if len(bs) != 4 {
		t.Fatalf("blocks = %d", len(bs))
	}
	for _, b := range bs {
		if len(b) != 3 {
			t.Fatalf("block len = %d", len(b))
		}
	}
}

func TestMeasurementsProduceSaneCosts(t *testing.T) {
	type fn func(int, int64) (Measurement, error)
	algos := map[string]fn{
		"snr":        MeasureSNR,
		"sft":        MeasureSFT,
		"host":       MeasureHostSort,
		"hostverify": MeasureHostVerify,
	}
	for name, f := range algos {
		m, err := f(3, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.N != 8 || m.M != 1 {
			t.Errorf("%s: N=%d M=%d", name, m.N, m.M)
		}
		if m.Makespan <= 0 || m.Comm <= 0 || m.Comp <= 0 {
			t.Errorf("%s: non-positive costs %+v", name, m)
		}
		if m.Msgs <= 0 || m.Bytes <= 0 {
			t.Errorf("%s: no traffic recorded %+v", name, m)
		}
	}
}

// The reproduced relationships the paper reports:
//   - S_FT is slower than S_NR but has the same main-loop message count
//     (tested in core); here we check makespan ordering.
//   - S_FT computation grows faster than S_NR's (O(N) vs O(lg²N)).
func TestSFTCostRelationships(t *testing.T) {
	snr, err := MeasureSNR(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sft, err := MeasureSFT(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sft.Makespan <= snr.Makespan {
		t.Errorf("S_FT makespan %d not above S_NR %d", sft.Makespan, snr.Makespan)
	}
	if sft.Bytes <= snr.Bytes {
		t.Errorf("S_FT bytes %d not above S_NR %d", sft.Bytes, snr.Bytes)
	}
}

func TestTable1FitsWell(t *testing.T) {
	res, err := Table1([]int{2, 3, 4, 5, 6}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.SFTCommR2 < 0.98 || res.SFTCompR2 < 0.98 {
		t.Errorf("S_FT fit R² = %.4f/%.4f", res.SFTCommR2, res.SFTCompR2)
	}
	if res.SeqCommR2 < 0.98 || res.SeqCompR2 < 0.98 {
		t.Errorf("Sequential fit R² = %.4f/%.4f", res.SeqCommR2, res.SeqCompR2)
	}
	// Coefficients must be positive for the dominant terms.
	if res.SFT.Comp[0].Coef <= 0 {
		t.Errorf("S_FT comp coefficient %v not positive", res.SFT.Comp[0].Coef)
	}
	if res.Sequential.Comm[0].Coef <= 0 || res.Sequential.Comp[0].Coef <= 0 {
		t.Errorf("Sequential coefficients %v %v", res.Sequential.Comm, res.Sequential.Comp)
	}
	out := res.Render()
	for _, want := range []string{"S_FT", "Sequential", "paper", "R²"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6ShapesHold(t *testing.T) {
	res, err := Figure6([]int{2, 3, 4, 5}, []int{2, 3, 4, 5}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SFT.Makespan <= r.SNR.Makespan {
			t.Errorf("N=%d: S_FT %d not slower than S_NR %d", r.N, r.SFT.Makespan, r.SNR.Makespan)
		}
		if r.SFTOverhead <= 1 {
			t.Errorf("N=%d: overhead ratio %.2f", r.N, r.SFTOverhead)
		}
	}
	// Paper: at these small sizes the host sort is competitive —
	// S_FT/host ratio must shrink as N grows (heading to a crossover).
	first := float64(res.Rows[0].SFT.Makespan) / float64(res.Rows[0].Host.Makespan)
	last := float64(res.Rows[len(res.Rows)-1].SFT.Makespan) / float64(res.Rows[len(res.Rows)-1].Host.Makespan)
	if last >= first {
		t.Errorf("S_FT/host ratio did not shrink: %.2f -> %.2f", first, last)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "S_FT obs") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestFigure7ProjectionsCross(t *testing.T) {
	fit, err := Table1([]int{2, 3, 4, 5, 6}, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure7(fit, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PaperCrossover == 0 {
		t.Error("paper models never cross")
	}
	if res.MeasuredCrossover == 0 {
		t.Error("measured models never cross: S_FT never beats host sorting")
	}
	out := res.Render()
	if !strings.Contains(out, "Crossover") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestFigure8BlockComparison(t *testing.T) {
	res, err := Figure8([]int{2, 3, 4}, 32, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.BlockFT.Makespan <= r.BlockNR.Makespan {
			t.Errorf("N=%d: block S_FT %d not slower than block S_NR %d",
				r.N, r.BlockFT.Makespan, r.BlockNR.Makespan)
		}
	}
	// Figure 8's point: with blocks, the FT/host ratio shrinks with N.
	first := float64(res.Rows[0].BlockFT.Makespan) / float64(res.Rows[0].Host.Makespan)
	last := float64(res.Rows[2].BlockFT.Makespan) / float64(res.Rows[2].Host.Makespan)
	if last >= first {
		t.Errorf("block FT/host ratio did not shrink: %.2f -> %.2f", first, last)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 8") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestFigure8ProjectionBeatsHostEarly(t *testing.T) {
	res, err := Figure8([]int{2, 3, 4}, 32, 19)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Figure8Projection(res, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if proj.MeasuredCrossover == 0 {
		t.Fatal("block S_FT never beats host in projection")
	}
	// With blocks the crossover is at (or very near) the smallest cube.
	if proj.MeasuredCrossover > 16 {
		t.Errorf("block crossover at N=%d, expected <= 16", proj.MeasuredCrossover)
	}
	if proj.PaperCrossover == 0 {
		t.Error("paper block models never cross")
	}
	if !strings.Contains(proj.Render(), "Crossover") {
		t.Error("projection Render missing crossover line")
	}
}

func TestFigure8ProjectionNeedsThreeRows(t *testing.T) {
	res, err := Figure8([]int{2, 3}, 8, 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Figure8Projection(res, 2, 10); err == nil {
		t.Error("two rows: want error")
	}
}
