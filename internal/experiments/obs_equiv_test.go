package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/blocksort"
	"repro/internal/core"
	"repro/internal/hostsort"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
	"repro/internal/sortnr"
)

// benchPoint mirrors the virtual-time columns of cmd/benchjson's
// report; the wall-clock columns are machine-dependent and ignored.
type benchPoint struct {
	Name      string `json:"name"`
	VTicks    int64  `json:"vticks"`
	VComm     int64  `json:"vcomm"`
	VComp     int64  `json:"vcomp"`
	Msgs      int64  `json:"msgs"`
	WireBytes int64  `json:"wirebytes"`
}

type benchReport struct {
	Seed   int64        `json:"seed"`
	Points []benchPoint `json:"points"`
}

func loadBaseline(t *testing.T) (map[string]benchPoint, int64) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_PR7.json")
	if err != nil {
		t.Skipf("no recorded baseline: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_PR7.json: %v", err)
	}
	pts := make(map[string]benchPoint, len(rep.Points))
	for _, p := range rep.Points {
		pts[p.Name] = p
	}
	return pts, rep.Seed
}

func checkPoint(t *testing.T, pts map[string]benchPoint, name string, m Measurement) {
	t.Helper()
	p, ok := pts[name]
	if !ok {
		t.Fatalf("point %q missing from BENCH_PR7.json", name)
	}
	got := [5]int64{int64(m.Makespan), int64(m.Comm), int64(m.Comp), m.Msgs, m.Bytes}
	want := [5]int64{p.VTicks, p.VComm, p.VComp, p.Msgs, p.WireBytes}
	if got != want {
		t.Errorf("%s: instrumented series (vticks,vcomm,vcomp,msgs,wirebytes) = %v, baseline %v", name, got, want)
	}
}

// TestObservedSeriesMatchBaseline pins ISSUE acceptance: the recorded
// virtual-tick series must stay bit-identical when the unified
// observability layer is fully enabled — metrics, journal, spans, Φ
// recording, and causal flight-recorder tracing all on. Observation
// reads the virtual clocks but must never charge them, and the trace
// trailer every traced message carries must never count as wire bytes.
func TestObservedSeriesMatchBaseline(t *testing.T) {
	pts, seed := loadBaseline(t)
	o := obs.New(obs.NewRegistry(), 1024)
	flight := forensic.New(0)

	obsNet := func(dim int) *simnet.Network {
		nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: runTimeout, Obs: o.Metrics(), Flight: flight})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}

	for _, dim := range []int{2, 3, 4, 5} {
		n := 1 << uint(dim)

		// S_NR with stage/round spans on every node.
		keys := Keys(n, seed)
		out := make([]int64, n)
		progs := make([]node.Program, n)
		for id := 0; id < n; id++ {
			progs[id] = sortnr.NodeProgram(keys[id], &out[id], sortnr.Options{Obs: o})
		}
		res, err := node.RunPer(obsNet(dim), progs, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig6_SNR/N=%d", n), Measurement{
			Makespan: res.Makespan(), Comm: res.MaxNodeComm(), Comp: res.MaxNodeComp(),
			Msgs: res.Metrics.TotalMsgs(), Bytes: res.Metrics.TotalBytes(),
		})

		// S_FT with the full event stream: spans, Φ checks, stage views.
		keys = Keys(n, seed)
		copts := make([]core.Options, n)
		for id := range copts {
			copts[id].Obs = o
			copts[id].Forensic = flight.Node(id)
		}
		oc, err := core.RunWithOptions(obsNet(dim), keys, copts)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Detected() {
			t.Fatalf("N=%d: spurious detection", n)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig6_SFT/N=%d", n), Measurement{
			Makespan: oc.Result.Makespan(), Comm: oc.Result.MaxNodeComm(), Comp: oc.Result.MaxNodeComp(),
			Msgs: oc.Result.Metrics.TotalMsgs(), Bytes: oc.Result.Metrics.TotalBytes(),
		})

		// Host sort with upload/host-sort/download spans.
		keys = Keys(n, seed)
		_, hres, err := hostsort.RunHostSortObs(obsNet(dim), keys, o)
		if err != nil {
			t.Fatal(err)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig6_HostSort/N=%d", n), Measurement{
			Makespan: hres.Makespan(), Comm: hres.HostComm, Comp: hres.HostComp,
			Msgs: hres.Metrics.TotalMsgs(), Bytes: hres.Metrics.TotalBytes(),
		})
	}

	const m = 64
	for _, dim := range []int{2, 3, 4} {
		n := 1 << uint(dim)

		// Block S_NR: the unreliable variant has no per-node options;
		// the observability in play is the transport's message counters.
		blocks := Blocks(n, m, seed)
		_, res, err := blocksort.RunNR(obsNet(dim), blocks)
		if err != nil {
			t.Fatal(err)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig8_BlockNR/N=%d/m=64", n), Measurement{
			Makespan: res.Makespan(), Comm: res.MaxNodeComm(), Comp: res.MaxNodeComp(),
			Msgs: res.Metrics.TotalMsgs(), Bytes: res.Metrics.TotalBytes(),
		})

		// Block S_FT with the full event stream.
		blocks = Blocks(n, m, seed)
		bopts := make([]blocksort.Options, n)
		for id := range bopts {
			bopts[id].Obs = o
			bopts[id].Forensic = flight.Node(id)
		}
		oc, err := blocksort.RunFTWithOptions(obsNet(dim), blocks, bopts)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Detected() {
			t.Fatalf("block N=%d: spurious detection", n)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig8_BlockFT/N=%d/m=64", n), Measurement{
			Makespan: oc.Result.Makespan(), Comm: oc.Result.MaxNodeComm(), Comp: oc.Result.MaxNodeComp(),
			Msgs: oc.Result.Metrics.TotalMsgs(), Bytes: oc.Result.Metrics.TotalBytes(),
		})

		// Host block sort with spans.
		blocks = Blocks(n, m, seed)
		_, hres, err := hostsort.RunHostSortBlocksObs(obsNet(dim), blocks, o)
		if err != nil {
			t.Fatal(err)
		}
		checkPoint(t, pts, fmt.Sprintf("Fig8_HostBlocks/N=%d/m=64", n), Measurement{
			Makespan: hres.Makespan(), Comm: hres.HostComm, Comp: hres.HostComp,
			Msgs: hres.Metrics.TotalMsgs(), Bytes: hres.Metrics.TotalBytes(),
		})
	}

	// The observer must actually have been fed: an accidentally nil-wired
	// observer would pass the equality checks above vacuously.
	if o.Journal().Total() == 0 {
		t.Error("journal recorded no events — observer was not wired through")
	}
	if v := o.Metrics().MsgsTotal[1].Value(); v == 0 {
		t.Error("message counters recorded nothing — transport obs not wired")
	}
	if flight.Node(0).Len() == 0 {
		t.Error("flight recorder captured no events — causal tracing was not wired through")
	}
}
