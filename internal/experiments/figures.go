package experiments

import (
	"fmt"
	"strings"

	"repro/internal/costmodel"
)

// Table1Result is the reproduced component-time table of Section 5:
// fitted tick formulas for S_FT and the sequential host sort, with the
// measured points and fit quality.
type Table1Result struct {
	SFT        costmodel.Model
	Sequential costmodel.Model
	SFTPoints  []costmodel.Point
	SeqPoints  []costmodel.Point
	SFTCommR2  float64
	SFTCompR2  float64
	SFTTotalR2 float64
	SeqCommR2  float64
	SeqCompR2  float64
	SeqTotalR2 float64
}

// Table1 sweeps the given cube dimensions, measures S_FT and the host
// sort, and fits the basis shapes:
//
//	S_FT:       comm = A·lg²N + B·N    comp = C·N
//	Sequential: comm = D·N             comp = E·N·lgN
//
// The paper fits its S_FT communication with an N·lgN second term
// (0.05·N·lgN); over its measured range (N = 4..32) that basis is
// numerically indistinguishable from N, and the algorithm's actual
// per-node view traffic (Σ_i Σ_j 2^{i-j} keys) is Θ(N), so this
// reproduction fits the linear basis to keep large-system projections
// well-behaved. EXPERIMENTS.md records the substitution.
func Table1(dims []int, seed int64) (Table1Result, error) {
	var res Table1Result
	// The (dim, algorithm) points are independent — each owns a private
	// simulated network — so they run concurrently, slotted by index.
	res.SFTPoints = make([]costmodel.Point, len(dims))
	res.SeqPoints = make([]costmodel.Point, len(dims))
	err := forEach(2*len(dims), func(k int) error {
		d := dims[k/2]
		if k%2 == 0 {
			ms, err := MeasureSFT(d, seed)
			if err != nil {
				return fmt.Errorf("table1: dim %d: %w", d, err)
			}
			res.SFTPoints[k/2] = ms.Point()
			return nil
		}
		mh, err := MeasureHostSort(d, seed)
		if err != nil {
			return fmt.Errorf("table1: dim %d: %w", d, err)
		}
		res.SeqPoints[k/2] = mh.Point()
		return nil
	})
	if err != nil {
		return Table1Result{}, err
	}
	res.SFT, err = costmodel.Fit("S_FT (measured)", res.SFTPoints,
		[]costmodel.Basis{costmodel.BasisLg2N, costmodel.BasisLgN, costmodel.BasisN},
		[]costmodel.Basis{costmodel.BasisN})
	if err != nil {
		return Table1Result{}, err
	}
	res.Sequential, err = costmodel.Fit("Sequential (measured)", res.SeqPoints,
		[]costmodel.Basis{costmodel.BasisN},
		[]costmodel.Basis{costmodel.BasisNLgN})
	if err != nil {
		return Table1Result{}, err
	}
	res.SFTCommR2, res.SFTCompR2, res.SFTTotalR2, err = costmodel.FitQuality(res.SFT, res.SFTPoints)
	if err != nil {
		return Table1Result{}, err
	}
	res.SeqCommR2, res.SeqCompR2, res.SeqTotalR2, err = costmodel.FitQuality(res.Sequential, res.SeqPoints)
	if err != nil {
		return Table1Result{}, err
	}
	return res, nil
}

// Render formats the table side by side with the paper's constants.
func (t Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Component-time table (Section 5) — measured simulator ticks vs paper clock ticks\n\n")
	fmt.Fprintf(&b, "%-12s  %-34s  %-26s\n", "Algorithm", "Communication Time", "Computation Time")
	fmt.Fprintf(&b, "%-12s  %-34s  %-26s\n", "S_FT", t.SFT.Comm.String(), t.SFT.Comp.String())
	fmt.Fprintf(&b, "%-12s  %-34s  %-26s\n", "  (paper)", costmodel.PaperSFT().Comm.String(), costmodel.PaperSFT().Comp.String())
	fmt.Fprintf(&b, "%-12s  %-34s  %-26s\n", "Sequential", t.Sequential.Comm.String(), t.Sequential.Comp.String())
	fmt.Fprintf(&b, "%-12s  %-34s  %-26s\n", "  (paper)", costmodel.PaperSequential().Comm.String(), costmodel.PaperSequential().Comp.String())
	fmt.Fprintf(&b, "\nFit quality: S_FT comm R²=%.4f comp R²=%.4f total R²=%.4f; Sequential comm R²=%.4f comp R²=%.4f total R²=%.4f\n",
		t.SFTCommR2, t.SFTCompR2, t.SFTTotalR2, t.SeqCommR2, t.SeqCompR2, t.SeqTotalR2)
	return b.String()
}

// Figure6Row is one cube size's observed and modelled times.
type Figure6Row struct {
	N           int
	SNR         Measurement
	SFT         Measurement
	Host        Measurement
	SFTTheory   float64 // fitted model total
	HostTheory  float64
	SFTOverhead float64 // SFT/SNR makespan ratio
}

// Figure6Result is the small-cube comparison of Figure 6.
type Figure6Result struct {
	Rows []Figure6Row
	Fit  Table1Result
}

// Figure6 measures the three algorithms at the given dimensions
// (paper: N = 4, 8, 16, 32) and attaches fitted-model "theoretical"
// curves, as the paper plots measured against its fitted formulas.
// fitDims selects the sweep used to fit those curves; it needs at
// least three dimensions for the three-basis communication fit.
func Figure6(dims, fitDims []int, seed int64) (Figure6Result, error) {
	fit, err := Table1(fitDims, seed)
	if err != nil {
		return Figure6Result{}, err
	}
	out := Figure6Result{Fit: fit}
	// Fan the (dim, algorithm) measurement points out on the worker
	// pool; each owns a private simulated network. Results slot into
	// their row by index so the output is deterministic.
	out.Rows = make([]Figure6Row, len(dims))
	err = forEach(3*len(dims), func(k int) error {
		i, alg := k/3, k%3
		d := dims[i]
		var m Measurement
		var merr error
		switch alg {
		case 0:
			m, merr = MeasureSNR(d, seed)
		case 1:
			m, merr = MeasureSFT(d, seed)
		default:
			m, merr = MeasureHostSort(d, seed)
		}
		if merr != nil {
			return fmt.Errorf("figure6: dim %d: %w", d, merr)
		}
		switch alg {
		case 0:
			out.Rows[i].SNR = m
		case 1:
			out.Rows[i].SFT = m
		default:
			out.Rows[i].Host = m
		}
		return nil
	})
	if err != nil {
		return Figure6Result{}, err
	}
	for i, d := range dims {
		n := float64(int64(1) << uint(d))
		sftTheory, err := fit.SFT.Total(n)
		if err != nil {
			return Figure6Result{}, err
		}
		hostTheory, err := fit.Sequential.Total(n)
		if err != nil {
			return Figure6Result{}, err
		}
		row := &out.Rows[i]
		row.N = 1 << uint(d)
		row.SFTTheory = sftTheory
		row.HostTheory = hostTheory
		if row.SNR.Makespan > 0 {
			row.SFTOverhead = float64(row.SFT.Makespan) / float64(row.SNR.Makespan)
		}
	}
	return out, nil
}

// Render formats the figure as the paper's observed/theoretical series.
func (f Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — sorting time comparisons, small cubes (virtual ticks)\n\n")
	fmt.Fprintf(&b, "%6s  %12s  %12s  %12s  %14s  %14s  %9s\n",
		"N", "S_NR obs", "S_FT obs", "Host obs", "S_FT theory", "Host theory", "FT/NR")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%6d  %12d  %12d  %12d  %14.0f  %14.0f  %8.2fx\n",
			r.N, r.SNR.Makespan, r.SFT.Makespan, r.Host.Makespan,
			r.SFTTheory, r.HostTheory, r.SFTOverhead)
	}
	return b.String()
}

// Figure7Result is the large-system projection.
type Figure7Result struct {
	// Title heads the rendered table; empty means the Figure 7 default.
	Title string
	Rows  []costmodel.ProjectionRow
	// Models in row order: measured S_FT, measured Sequential,
	// paper S_FT, paper Sequential. Faulty-regime projections mix
	// formula models with recovery-aware ones, hence Coster.
	Models []costmodel.Coster
	// MeasuredCrossover and PaperCrossover are the smallest N where
	// S_FT beats the host sort under each pair of models.
	MeasuredCrossover int
	PaperCrossover    int
	// AsymptoticRatio is the measured S_FT/Sequential limit ratio
	// (paper: ~0.11).
	AsymptoticRatio float64
}

// Figure7 projects the fitted and paper models to large cubes.
func Figure7(fit Table1Result, minDim, maxDim int) (Figure7Result, error) {
	models := []costmodel.Coster{fit.SFT, fit.Sequential, costmodel.PaperSFT(), costmodel.PaperSequential()}
	rows, err := costmodel.Project(models, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	mx, err := costmodel.Crossover(fit.SFT, fit.Sequential, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	px, err := costmodel.Crossover(costmodel.PaperSFT(), costmodel.PaperSequential(), minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	ar, err := costmodel.AsymptoticRatio(fit.SFT, fit.Sequential)
	if err != nil {
		// A fitted model may lack a strict dominant-term match; treat
		// as unavailable rather than fatal.
		ar = 0
	}
	return Figure7Result{
		Rows: rows, Models: models,
		MeasuredCrossover: mx, PaperCrossover: px,
		AsymptoticRatio: ar,
	}, nil
}

// Render formats the projection table.
func (f Figure7Result) Render() string {
	var b strings.Builder
	title := f.Title
	if title == "" {
		title = "Figure 7 — projected sorting times, large systems (ticks)"
	}
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%10s", "N")
	for _, m := range f.Models {
		fmt.Fprintf(&b, "  %22s", m.CostName())
	}
	fmt.Fprintln(&b)
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%10d", r.N)
		for _, v := range r.Totals {
			fmt.Fprintf(&b, "  %22.0f", v)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\nCrossover (S_FT beats host sort): measured N=%d, paper N=%d\n",
		f.MeasuredCrossover, f.PaperCrossover)
	if f.AsymptoticRatio > 0 {
		fmt.Fprintf(&b, "Asymptotic S_FT/Sequential ratio: measured %.3f (paper ~0.11)\n", f.AsymptoticRatio)
	}
	return b.String()
}

// Figure8Projection fits cost models to the measured block rows and
// projects them to larger cubes, mirroring what the paper does for its
// Figure 8 plot ("a right shift of Figure 6 due to the scale by m").
// It needs at least three measured dimensions for the three-basis fit.
func Figure8Projection(res Figure8Result, minDim, maxDim int) (Figure7Result, error) {
	if len(res.Rows) < 3 {
		return Figure7Result{}, fmt.Errorf("experiments: %d block rows, need >= 3 for fitting", len(res.Rows))
	}
	m := res.Rows[0].M
	var ftPts, hostPts []costmodel.Point
	for _, r := range res.Rows {
		ftPts = append(ftPts, r.BlockFT.Point())
		hostPts = append(hostPts, r.Host.Point())
	}
	ft, err := costmodel.Fit(fmt.Sprintf("block S_FT m=%d (measured)", m), ftPts,
		[]costmodel.Basis{costmodel.BasisLg2N, costmodel.BasisLgN, costmodel.BasisN},
		[]costmodel.Basis{costmodel.BasisN})
	if err != nil {
		return Figure7Result{}, err
	}
	host, err := costmodel.Fit(fmt.Sprintf("host sort m=%d (measured)", m), hostPts,
		[]costmodel.Basis{costmodel.BasisN},
		[]costmodel.Basis{costmodel.BasisNLgN})
	if err != nil {
		return Figure7Result{}, err
	}
	paperFT := costmodel.ScaleByBlock(costmodel.PaperSFT(), m)
	paperHost := costmodel.ScaleByBlock(costmodel.PaperSequential(), m)
	models := []costmodel.Coster{ft, host, paperFT, paperHost}
	rows, err := costmodel.Project(models, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	mx, err := costmodel.Crossover(ft, host, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	px, err := costmodel.Crossover(paperFT, paperHost, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	return Figure7Result{
		Title:             fmt.Sprintf("Figure 8 projection — block sorting (m=%d) at scale (ticks)", m),
		Rows:              rows,
		Models:            models,
		MeasuredCrossover: mx,
		PaperCrossover:    px,
	}, nil
}

// Figure8Row is one cube size of the block-sort comparison.
type Figure8Row struct {
	N       int
	M       int
	BlockNR Measurement
	BlockFT Measurement
	Host    Measurement
}

// Figure8Result is the block sort/merge comparison.
type Figure8Result struct {
	Rows []Figure8Row
	// Crossover is the smallest measured N at which the fault-tolerant
	// block sort beats host sorting (0 when it never does in range).
	Crossover int
}

// Figure8 measures block sorting at the given dimensions for a
// representative block size m, against the host baseline.
func Figure8(dims []int, m int, seed int64) (Figure8Result, error) {
	var out Figure8Result
	// Independent (dim, algorithm) points run concurrently on the
	// worker pool, each with a private simulated network.
	out.Rows = make([]Figure8Row, len(dims))
	err := forEach(3*len(dims), func(k int) error {
		i, alg := k/3, k%3
		d := dims[i]
		var ms Measurement
		var merr error
		switch alg {
		case 0:
			ms, merr = MeasureBlockNR(d, m, seed)
		case 1:
			ms, merr = MeasureBlockFT(d, m, seed)
		default:
			ms, merr = MeasureHostSortBlocks(d, m, seed)
		}
		if merr != nil {
			return fmt.Errorf("figure8: dim %d: %w", d, merr)
		}
		switch alg {
		case 0:
			out.Rows[i].BlockNR = ms
		case 1:
			out.Rows[i].BlockFT = ms
		default:
			out.Rows[i].Host = ms
		}
		return nil
	})
	if err != nil {
		return Figure8Result{}, err
	}
	for i, d := range dims {
		out.Rows[i].N = 1 << uint(d)
		out.Rows[i].M = m
		if out.Crossover == 0 && out.Rows[i].BlockFT.Makespan < out.Rows[i].Host.Makespan {
			out.Crossover = 1 << uint(d)
		}
	}
	return out, nil
}

// Render formats the comparison.
func (f Figure8Result) Render() string {
	var b strings.Builder
	if len(f.Rows) > 0 {
		fmt.Fprintf(&b, "Figure 8 — block bitonic sort/merge vs host sort, m=%d keys/node (ticks)\n\n", f.Rows[0].M)
	}
	fmt.Fprintf(&b, "%8s  %14s  %14s  %14s  %10s\n", "N", "block S_NR", "block S_FT", "Host sort", "FT/host")
	for _, r := range f.Rows {
		ratio := float64(r.BlockFT.Makespan) / float64(r.Host.Makespan)
		fmt.Fprintf(&b, "%8d  %14d  %14d  %14d  %9.2fx\n",
			r.N, r.BlockNR.Makespan, r.BlockFT.Makespan, r.Host.Makespan, ratio)
	}
	if f.Crossover > 0 {
		fmt.Fprintf(&b, "\nFault-tolerant block sort beats host sort from N=%d\n", f.Crossover)
	} else {
		fmt.Fprintf(&b, "\nNo crossover in measured range\n")
	}
	return b.String()
}
