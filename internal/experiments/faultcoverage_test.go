package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

var updateCoverage = flag.Bool("update", false, "rewrite golden files")

// goldenSweep is the fixed-seed sweep the golden file pins: small but
// still spanning every adversary class and both algorithms.
func goldenSweep() CoverageSweep {
	return CoverageSweep{
		Dims:     []int{2},
		Rates:    []float64{1},
		Runs:     2,
		BlockLen: 2,
		Seed:     1989,
		Timeout:  100 * time.Millisecond,
	}
}

// TestCoverageMatrixGolden pins the rendered matrix on a fixed seed:
// any change to the verdicts, the detector attribution, or the table
// format shows up as a diff against testdata/coverage_matrix.golden.
func TestCoverageMatrixGolden(t *testing.T) {
	o := obs.New(obs.NewRegistry(), 16)
	cells, err := MeasureCoverage(goldenSweep(), o)
	if err != nil {
		t.Fatal(err)
	}
	got := RenderCoverage(cells)
	path := filepath.Join("testdata", "coverage_matrix.golden")
	if *updateCoverage {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run go test -run Golden -update ./internal/experiments to create)", err)
	}
	if got != string(want) {
		t.Errorf("coverage matrix drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The sweep is the Theorem 3 check in matrix form: no escapes, and
	// every run lands on the observer's per-class counters.
	if esc := SilentWrongCells(cells); len(esc) != 0 {
		t.Fatalf("silent-wrong cells: %+v", esc)
	}
	m := o.Metrics()
	var runs, detected int64
	for c := obs.FaultClass(0); c < obs.NumFaultClasses; c++ {
		runs += m.FaultRuns[c].Value()
		detected += m.FaultDetected[c].Value()
		if m.FaultSilent[c].Value() != 0 {
			t.Errorf("class %v silent-wrong counter = %d", c, m.FaultSilent[c].Value())
		}
	}
	wantRuns := int64(len(cells) * goldenSweep().Runs)
	if runs != wantRuns {
		t.Errorf("obs runs = %d, want %d", runs, wantRuns)
	}
	if detected+0 == 0 {
		t.Error("obs detected nothing")
	}
}

func TestCoverageSweepRejectsBadConfig(t *testing.T) {
	if _, err := MeasureCoverage(CoverageSweep{Dims: []int{0}}, nil); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := MeasureCoverage(CoverageSweep{Rates: []float64{0}}, nil); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := MeasureCoverage(CoverageSweep{Rates: []float64{1.5}}, nil); err == nil {
		t.Error("rate 1.5 accepted")
	}
}

// synthetic cells exercise the fold/calibrate paths without running
// simulations.
func syntheticCells() []CoverageCell {
	return []CoverageCell{
		{Algo: AlgoSFT, Dim: 2, Class: fault.ClassMessage, Label: "key-lie", Rate: 1,
			Runs: 10, Detected: 9, Correct: 1},
		{Algo: AlgoSFT, Dim: 2, Class: fault.ClassComparison, Label: "cmp-transient", Rate: 0.5,
			Runs: 10, Detected: 8, Correct: 2},
		{Algo: AlgoBlockFT, Dim: 2, Class: fault.ClassComparison, Label: "cmp-transient", Rate: 0.5,
			Runs: 10, Detected: 10},
		{Algo: AlgoBlockFT, Dim: 2, Class: fault.ClassMemory, Label: "mem-flip", Rate: 1,
			Runs: 10, Detected: 9, Silent: 1},
	}
}

func TestSummarizeAndSilentWrongCells(t *testing.T) {
	cells := syntheticCells()
	sums := SummarizeCoverage(cells)
	if len(sums) != 3 {
		t.Fatalf("summaries = %+v", sums)
	}
	// fault.AllClasses order: message, comparison, memory.
	if sums[0].Class != fault.ClassMessage || sums[1].Class != fault.ClassComparison || sums[2].Class != fault.ClassMemory {
		t.Fatalf("class order = %v %v %v", sums[0].Class, sums[1].Class, sums[2].Class)
	}
	if sums[1].Runs != 20 || sums[1].Detected != 18 {
		t.Errorf("comparison totals = %+v", sums[1])
	}
	if got := sums[1].DetectFrac(); got != 0.9 {
		t.Errorf("comparison detect frac = %v", got)
	}
	esc := SilentWrongCells(cells)
	if len(esc) != 1 || esc[0].Label != "mem-flip" {
		t.Errorf("silent-wrong cells = %+v", esc)
	}
	if (ClassCoverage{}).DetectFrac() != 0 || (CoverageCell{}).DetectFrac() != 0 {
		t.Error("zero-run detect frac not 0")
	}
}

func TestCalibrateCoverage(t *testing.T) {
	cal, err := CalibrateCoverage(syntheticCells())
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Classes) != 3 {
		t.Fatalf("classes = %+v", cal.Classes)
	}
	byName := map[string]float64{}
	var shares float64
	for _, cd := range cal.Classes {
		byName[cd.Class] = cd.DetectFrac
		shares += cd.Share
	}
	if byName["message"] != 0.9 || byName["comparison"] != 0.9 || byName["memory"] != 0.9 {
		t.Errorf("detect fractions = %v", byName)
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("shares sum to %v", shares)
	}
	eff, err := cal.EffectiveDetectFrac()
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.899 || eff > 0.901 {
		t.Errorf("effective fraction = %v", eff)
	}
	if _, err := CalibrateCoverage(nil); err == nil {
		t.Error("empty matrix calibrated")
	}
}

func TestRenderDetectorsDeterministic(t *testing.T) {
	d := map[string]int{"progress": 2, "absence": 1, "feasibility": 3}
	want := "absence:1 feasibility:3 progress:2"
	for i := 0; i < 8; i++ {
		if got := renderDetectors(d); got != want {
			t.Fatalf("render %d = %q", i, got)
		}
	}
	if renderDetectors(nil) != "-" {
		t.Error("empty histogram not rendered as -")
	}
}
