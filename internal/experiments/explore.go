package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/explore"
	"repro/internal/obs"
)

// ExploreRow is one dimension's schedule-space exploration tally (E9):
// how many interleavings the bounded model checker executed, how many
// decision subtrees canonical state hashing pruned, and the wall-clock
// cost of exhausting the single-fault sweep.
type ExploreRow struct {
	// Dim is the explored cube dimension.
	Dim int
	// Cases is the single-fault menu size (fault.SingleFaultCases).
	Cases int
	// Branches is the number of complete schedules executed.
	Branches int
	// Pruned counts decision points cut by canonical state hashing.
	Pruned int
	// Decisions is the total consulted scheduling decisions.
	Decisions int
	// MaxDepth is the deepest consulted-decision sequence seen.
	MaxDepth int
	// Violations counts invariant counterexamples — any nonzero value
	// is a Theorem 3 schedule-dependence escape.
	Violations int
	// Wall is the sweep's wall-clock duration. Unlike every other
	// experiment in this package, the explorer's cost is measured in
	// real time, not vticks: it re-executes the protocol once per
	// branch, so its cost is harness time, not modeled network time.
	Wall time.Duration
}

// MeasureExplore exhausts the single-fault schedule sweep for each
// dimension and returns one row per dimension. A row with Violations
// != 0 is a correctness escape; callers (cmd/explore, CI) must treat
// it as a failure.
func MeasureExplore(dims []int, m *obs.Metrics) ([]ExploreRow, error) {
	rows := make([]ExploreRow, 0, len(dims))
	for _, dim := range dims {
		start := time.Now()
		res, err := explore.Run(explore.Config{Dim: dim, Obs: m})
		if err != nil {
			return nil, fmt.Errorf("experiments: explore dim %d: %w", dim, err)
		}
		rows = append(rows, ExploreRow{
			Dim:        dim,
			Cases:      len(res.Cases),
			Branches:   res.Branches,
			Pruned:     res.Pruned,
			Decisions:  res.Decisions,
			MaxDepth:   res.MaxDepth,
			Violations: len(res.Violations),
			Wall:       time.Since(start),
		})
	}
	return rows, nil
}

// RenderExplore writes the E9 table.
func RenderExplore(w io.Writer, rows []ExploreRow) {
	fmt.Fprintf(w, "%-4s %6s %9s %7s %10s %9s %11s %10s\n",
		"dim", "cases", "branches", "pruned", "decisions", "maxdepth", "violations", "wall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %6d %9d %7d %10d %9d %11d %10s\n",
			r.Dim, r.Cases, r.Branches, r.Pruned, r.Decisions, r.MaxDepth, r.Violations,
			r.Wall.Round(time.Millisecond))
	}
}
