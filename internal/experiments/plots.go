package experiments

import (
	"fmt"

	"repro/internal/plot"
)

// Plot renders Figure 6 as an ASCII chart: the three observed curves
// over the measured cube sizes.
func (f Figure6Result) Plot() (string, error) {
	ticks := make([]string, len(f.Rows))
	snr := make([]float64, len(f.Rows))
	sft := make([]float64, len(f.Rows))
	host := make([]float64, len(f.Rows))
	for i, r := range f.Rows {
		ticks[i] = fmt.Sprintf("N=%d", r.N)
		snr[i] = float64(r.SNR.Makespan)
		sft[i] = float64(r.SFT.Makespan)
		host[i] = float64(r.Host.Makespan)
	}
	return plot.Render(plot.Config{
		Title:  "Figure 6 — sorting time, small cubes",
		XLabel: "cube size",
		YLabel: "virtual ticks",
		XTicks: ticks,
	}, []plot.Series{
		{Name: "S_NR observed", Rune: 'n', Y: snr},
		{Name: "S_FT observed", Rune: 'F', Y: sft},
		{Name: "Host sort observed", Rune: 'h', Y: host},
	})
}

// Plot renders the projection as a log-scale ASCII chart of the
// measured-model curves (the paper's Figure 7 uses a log time axis for
// the same reason: the curves span orders of magnitude).
func (f Figure7Result) Plot() (string, error) {
	if len(f.Models) < 2 {
		return "", fmt.Errorf("experiments: projection has %d models", len(f.Models))
	}
	ticks := make([]string, len(f.Rows))
	a := make([]float64, len(f.Rows))
	b := make([]float64, len(f.Rows))
	for i, r := range f.Rows {
		ticks[i] = fmt.Sprintf("%d", r.N)
		a[i] = r.Totals[0]
		b[i] = r.Totals[1]
	}
	title := f.Title
	if title == "" {
		title = "Figure 7 — projected sorting times, large systems"
	}
	return plot.Render(plot.Config{
		Title:  title,
		XLabel: "nodes",
		YLabel: "virtual ticks",
		XTicks: ticks,
		LogY:   true,
	}, []plot.Series{
		{Name: f.Models[0].CostName(), Rune: 'F', Y: a},
		{Name: f.Models[1].CostName(), Rune: 'h', Y: b},
	})
}

// Plot renders Figure 8's measured block-sorting curves.
func (f Figure8Result) Plot() (string, error) {
	ticks := make([]string, len(f.Rows))
	nr := make([]float64, len(f.Rows))
	ft := make([]float64, len(f.Rows))
	host := make([]float64, len(f.Rows))
	for i, r := range f.Rows {
		ticks[i] = fmt.Sprintf("N=%d", r.N)
		nr[i] = float64(r.BlockNR.Makespan)
		ft[i] = float64(r.BlockFT.Makespan)
		host[i] = float64(r.Host.Makespan)
	}
	m := 0
	if len(f.Rows) > 0 {
		m = f.Rows[0].M
	}
	return plot.Render(plot.Config{
		Title:  fmt.Sprintf("Figure 8 — block sort/merge vs host sort (m=%d)", m),
		XLabel: "cube size",
		YLabel: "virtual ticks",
		XTicks: ticks,
	}, []plot.Series{
		{Name: "block S_NR", Rune: 'n', Y: nr},
		{Name: "block S_FT", Rune: 'F', Y: ft},
		{Name: "host sort", Rune: 'h', Y: host},
	})
}
