package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs f(0), …, f(n-1) on a bounded worker pool (at most
// GOMAXPROCS workers) and waits for all of them. Every task runs even
// if an earlier one fails; the returned error is the lowest-indexed
// failure, so results and errors are deterministic regardless of
// scheduling.
//
// The sweep points of Table 1 and Figures 6/8 are independent — each
// owns a private simulated network — which is what makes this fan-out
// safe.
func forEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
