// Package experiments runs the paper's evaluation (Section 5 and the
// error-coverage analysis of Section 4) on the simulated multicomputer
// and renders the tables and figures:
//
//	Figure 5 — worked example of S_FT on {10,8,3,9,4,2,7,5} (cmd/tracesort)
//	Table 1  — fitted communication/computation tick formulas
//	Figure 6 — observed + theoretical sorting times, small cubes
//	Figure 7 — projected times, large systems, and the crossover
//	Figure 8 — block bitonic sort/merge vs host sort
//	E6       — fault-injection coverage (cmd/faultdemo)
//
// The same entry points back cmd/sortbench and the bench_test.go
// harness, so every artifact is regenerable from one code path.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/hostsort"
	"repro/internal/simnet"
	"repro/internal/sortnr"
)

// runTimeout bounds absence detection in healthy runs; generous since
// no faults are injected by these experiments.
const runTimeout = 30 * time.Second

// Measurement is one simulated run's costs.
type Measurement struct {
	// N is the node count; M the keys per node (1 except block runs).
	N int
	M int
	// Makespan is the run's virtual completion time.
	Makespan simnet.Ticks
	// Comm and Comp are the critical-path per-processor ticks: the
	// maximum node communication/computation for distributed
	// algorithms, the host's own for host-centered ones.
	Comm simnet.Ticks
	Comp simnet.Ticks
	// Msgs and Bytes are total network traffic.
	Msgs  int64
	Bytes int64
}

// Point converts the measurement for model fitting.
func (m Measurement) Point() costmodel.Point {
	return costmodel.Point{N: m.N, Comm: float64(m.Comm), Comp: float64(m.Comp)}
}

// Keys generates the deterministic random workload for a given size
// and seed: uniform 32-bit-ish integers, matching the paper's
// "sort 32-bit integers into ascending order".
func Keys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(int32(rng.Uint32()))
	}
	return keys
}

// Blocks generates n blocks of m deterministic random keys.
func Blocks(n, m int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, n)
	for i := range out {
		out[i] = make([]int64, m)
		for j := range out[i] {
			out[i][j] = int64(int32(rng.Uint32()))
		}
	}
	return out
}

func newNet(dim int) (*simnet.Network, error) {
	return simnet.New(simnet.Config{Dim: dim, RecvTimeout: runTimeout})
}

// MeasureSNR runs the unreliable distributed sort and measures it.
func MeasureSNR(dim int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	keys := Keys(n, seed)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	out, res, err := sortnr.Run(nw, keys)
	if err != nil {
		return Measurement{}, err
	}
	if err := res.AnyErr(); err != nil {
		return Measurement{}, fmt.Errorf("experiments: S_NR run failed: %w", err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: S_NR output invalid: %w", err)
	}
	return Measurement{
		N: n, M: 1,
		Makespan: res.Makespan(),
		Comm:     res.MaxNodeComm(),
		Comp:     res.MaxNodeComp(),
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureSFT runs the fault-tolerant sort and measures it.
func MeasureSFT(dim int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	keys := Keys(n, seed)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	oc, err := core.Run(nw, keys)
	if err != nil {
		return Measurement{}, err
	}
	if oc.Detected() {
		return Measurement{}, fmt.Errorf("experiments: S_FT spurious detection: %v / %v",
			oc.Result.FirstNodeErr(), oc.HostErrors)
	}
	if err := checker.Verify(keys, oc.Sorted, true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: S_FT output invalid: %w", err)
	}
	res := oc.Result
	return Measurement{
		N: n, M: 1,
		Makespan: res.Makespan(),
		Comm:     res.MaxNodeComm(),
		Comp:     res.MaxNodeComp(),
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureHostSort runs the host sequential baseline and measures it.
// Comm/Comp are the host's own components, matching the paper's
// "Sequential" table row.
func MeasureHostSort(dim int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	keys := Keys(n, seed)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	out, res, err := hostsort.RunHostSort(nw, keys)
	if err != nil {
		return Measurement{}, err
	}
	if err := res.AnyErr(); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host sort failed: %w", err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host sort output invalid: %w", err)
	}
	return Measurement{
		N: n, M: 1,
		Makespan: res.Makespan(),
		Comm:     res.HostComm,
		Comp:     res.HostComp,
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureHostVerify runs the host-verification baseline (S_NR plus
// Theorem 1 at the host).
func MeasureHostVerify(dim int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	keys := Keys(n, seed)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	out, res, err := hostsort.RunHostVerify(nw, keys)
	if err != nil {
		return Measurement{}, err
	}
	if err := res.AnyErr(); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host verify failed: %w", err)
	}
	if err := checker.Verify(keys, out, true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host verify output invalid: %w", err)
	}
	return Measurement{
		N: n, M: 1,
		Makespan: res.Makespan(),
		Comm:     res.HostComm,
		Comp:     res.HostComp,
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureBlockFT runs the fault-tolerant block sort with m keys/node.
func MeasureBlockFT(dim, m int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	blocks := Blocks(n, m, seed)
	all := hostsort.SortedBlocksFlat(blocks)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	oc, err := blocksort.RunFT(nw, blocks)
	if err != nil {
		return Measurement{}, err
	}
	if oc.Detected() {
		return Measurement{}, fmt.Errorf("experiments: block S_FT spurious detection: %v / %v",
			oc.Result.FirstNodeErr(), oc.HostErrors)
	}
	if err := checker.Verify(all, hostsort.SortedBlocksFlat(oc.SortedBlocks), true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: block S_FT output invalid: %w", err)
	}
	res := oc.Result
	return Measurement{
		N: n, M: m,
		Makespan: res.Makespan(),
		Comm:     res.MaxNodeComm(),
		Comp:     res.MaxNodeComp(),
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureBlockNR runs the unreliable block sort with m keys/node.
func MeasureBlockNR(dim, m int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	blocks := Blocks(n, m, seed)
	all := hostsort.SortedBlocksFlat(blocks)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	out, res, err := blocksort.RunNR(nw, blocks)
	if err != nil {
		return Measurement{}, err
	}
	if err := res.AnyErr(); err != nil {
		return Measurement{}, fmt.Errorf("experiments: block S_NR failed: %w", err)
	}
	if err := checker.Verify(all, hostsort.SortedBlocksFlat(out), true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: block S_NR output invalid: %w", err)
	}
	return Measurement{
		N: n, M: m,
		Makespan: res.Makespan(),
		Comm:     res.MaxNodeComm(),
		Comp:     res.MaxNodeComp(),
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}

// MeasureHostSortBlocks runs the host baseline with m keys/node.
func MeasureHostSortBlocks(dim, m int, seed int64) (Measurement, error) {
	n := 1 << uint(dim)
	blocks := Blocks(n, m, seed)
	all := hostsort.SortedBlocksFlat(blocks)
	nw, err := newNet(dim)
	if err != nil {
		return Measurement{}, err
	}
	out, res, err := hostsort.RunHostSortBlocks(nw, blocks)
	if err != nil {
		return Measurement{}, err
	}
	if err := res.AnyErr(); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host block sort failed: %w", err)
	}
	if err := checker.Verify(all, hostsort.SortedBlocksFlat(out), true); err != nil {
		return Measurement{}, fmt.Errorf("experiments: host block sort output invalid: %w", err)
	}
	return Measurement{
		N: n, M: m,
		Makespan: res.Makespan(),
		Comm:     res.HostComm,
		Comp:     res.HostComp,
		Msgs:     res.Metrics.TotalMsgs(),
		Bytes:    res.Metrics.TotalBytes(),
	}, nil
}
