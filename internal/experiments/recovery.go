// Recovery sweep: the measured side of the recovery-aware cost model.
// MeasureRecovery drives the AutoRecover supervisor over the simnet
// chaos machinery's rate-based fault injector across a
// (dim × fault-load × spare-pool) grid, CalibrateRecovery fits the
// model's empirical terms (per-attempt cost formula, detection
// fraction, waste fraction) with the stats least-squares machinery,
// and ValidateRecovery checks the fitted model's expected-total-vticks
// predictions against the measured means cell by cell — the §5
// analysis carried from detection to repair, with the model held to
// the data.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/recovery/chaostest"
	"repro/internal/reliablesort"
	"repro/internal/stats"
)

// RecoverySweep configures a MeasureRecovery grid. The zero value
// selects the default sweep.
type RecoverySweep struct {
	// Dims are the initial cube dimensions (default {2, 3}).
	Dims []int
	// Loads are the fault pressures to sweep: expected fault arrivals
	// per fault-free attempt (n·T/MTTF), the dimensionless axis that
	// keeps cells comparable across cube sizes. Each load is converted
	// to a per-node MTTF per cell (default {0.25, 0.75}).
	Loads []float64
	// SparePools are the spare-pool sizes (default {0, 2}).
	SparePools []int
	// Runs is the number of seeded supervisions per cell (default 48).
	Runs int
	// BlockLen is the keys-per-node workload scale (default 2).
	BlockLen int
	// MaxAttempts is the supervisor budget per run (default 5).
	MaxAttempts int
	// PersistentFrac is the persistent share of arrivals (default 0.5).
	PersistentFrac float64
	// Seed roots the whole sweep; every cell and run derives
	// deterministically from it.
	Seed int64
}

func (s RecoverySweep) withDefaults() RecoverySweep {
	if len(s.Dims) == 0 {
		s.Dims = []int{2, 3}
	}
	if len(s.Loads) == 0 {
		s.Loads = []float64{0.25, 0.75}
	}
	if len(s.SparePools) == 0 {
		s.SparePools = []int{0, 2}
	}
	if s.Runs <= 0 {
		s.Runs = 48
	}
	if s.BlockLen <= 0 {
		s.BlockLen = 2
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 5
	}
	if s.PersistentFrac <= 0 {
		s.PersistentFrac = 0.5
	}
	if s.Seed == 0 {
		s.Seed = 1989
	}
	return s
}

// calibrationStrategies is the Byzantine pool the rate injector draws
// from: strategies whose diagnosis reliably attributes the top suspect
// to the injected site, so the supervisor's persistent-streak
// machinery behaves as the model's state machine assumes. (Weakly
// attributed strategies remain covered by the scenario-based chaos
// harness; here attribution noise would contaminate the calibration.)
func calibrationStrategies() []fault.Strategy {
	return []fault.Strategy{fault.KeyLie, fault.SplitLie, fault.WrongCompare}
}

// RecoveryCell is one sweep cell's configuration and measured
// aggregates over its seeded runs.
type RecoveryCell struct {
	// Dim, Load, Spares echo the grid coordinates; MTTF is the
	// per-node mean time between faults the load translates to for
	// this cell's workload (n·T(dim)/Load vticks).
	Dim    int
	Load   float64
	MTTF   float64
	Spares int
	// Runs, MaxAttempts, PersistentFrac echo the sweep config.
	Runs           int
	MaxAttempts    int
	PersistentFrac float64
	// Baselines maps cube dimension → measured fault-free attempt
	// vticks for this cell's workload, for every dimension quarantine
	// can reach.
	Baselines map[int]float64
	// MeanTotalTicks is the measured E[Σ attempt costs] — the
	// quantity the cost model predicts.
	MeanTotalTicks float64
	// MeanAttempts, MeanWastedTicks, MeanBackoffNanos are the other
	// measured expectations.
	MeanAttempts     float64
	MeanWastedTicks  float64
	MeanBackoffNanos float64
	// Manifestations and Failures count fault-active attempts and
	// fail-stopped attempts across the cell's runs: their ratio is
	// the measured detection fraction.
	Manifestations int64
	Failures       int64
	// Exhausted counts runs that escalated with ExhaustedError.
	Exhausted int
	// Quarantines and Substitutions count repair actions.
	Quarantines   int64
	Substitutions int64
	// WastePairs holds one (fault-free attempt ticks at the failed
	// attempt's dim, failed attempt's measured cost) sample per failed
	// attempt, for the through-origin waste-fraction fit.
	WastePairs [][2]float64
}

// MeasureRecovery runs the sweep and returns one measured cell per
// (dim, load, spare-pool) grid point. Cells run concurrently on the
// shared worker pool; runs within a cell are sequential and
// deterministic in the sweep seed.
func MeasureRecovery(cfg RecoverySweep) ([]RecoveryCell, error) {
	cfg = cfg.withDefaults()
	type coord struct {
		dim, spares int
		load        float64
	}
	var coords []coord
	for _, d := range cfg.Dims {
		if d < 2 {
			return nil, fmt.Errorf("experiments: recovery sweep dim %d < 2", d)
		}
		for _, load := range cfg.Loads {
			if load <= 0 {
				return nil, fmt.Errorf("experiments: recovery sweep load %v <= 0", load)
			}
			for _, sp := range cfg.SparePools {
				coords = append(coords, coord{dim: d, spares: sp, load: load})
			}
		}
	}
	cells := make([]RecoveryCell, len(coords))
	err := forEach(len(coords), func(i int) error {
		c := coords[i]
		cell, err := measureRecoveryCell(cfg, c.dim, c.load, c.spares, cfg.Seed+int64(i)*7919)
		if err != nil {
			return fmt.Errorf("experiments: recovery cell dim=%d load=%v spares=%d: %w",
				c.dim, c.load, c.spares, err)
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

func measureRecoveryCell(cfg RecoverySweep, dim int, load float64, spares int, cellSeed int64) (RecoveryCell, error) {
	n := 1 << uint(dim)
	keys := Keys(n*cfg.BlockLen, cellSeed)

	// Absence detection must be short here: tamper strategies can
	// desynchronize an exchange so that a node waits out the full
	// timeout in wall-clock time, and the sweep runs hundreds of
	// supervisions. The chaos harness's simnet timeout is calibrated
	// for exactly this trade-off. (Timeout waits are idle virtual
	// time, so the choice does not move measured vtick costs.)
	timeout := chaostest.RecvTimeout(chaostest.Simnet)

	// Fault-free baselines for every dimension quarantine can reach:
	// the same workload on the degraded geometry, measured with the
	// same entry point the supervised attempts use.
	baselines := make(map[int]float64, dim)
	for d := dim; d >= 1; d-- {
		_, st, err := reliablesort.Sort(keys, reliablesort.Options{Dim: d, RecvTimeout: timeout})
		if err != nil {
			return RecoveryCell{}, fmt.Errorf("baseline dim %d: %w", d, err)
		}
		if st.Makespan <= 0 {
			return RecoveryCell{}, fmt.Errorf("baseline dim %d: makespan %d", d, st.Makespan)
		}
		baselines[d] = float64(st.Makespan)
	}

	cell := RecoveryCell{
		Dim: dim, Load: load, Spares: spares,
		MTTF:           float64(n) * baselines[dim] / load,
		Runs:           cfg.Runs,
		MaxAttempts:    cfg.MaxAttempts,
		PersistentFrac: cfg.PersistentFrac,
		Baselines:      baselines,
	}

	var totalTicks, totalAttempts, wasted, backoff float64
	for r := 0; r < cfg.Runs; r++ {
		inj := chaostest.NewRateInjector(chaostest.RateConfig{
			MTTF:           cell.MTTF,
			Baselines:      baselines,
			PersistentFrac: cfg.PersistentFrac,
			Strategies:     calibrationStrategies(),
			Seed:           cellSeed ^ (int64(r)+1)*0x9E3779B9,
		})
		_, st, err := reliablesort.Sort(keys, reliablesort.Options{
			Dim:         dim,
			RecvTimeout: timeout,
			AutoRecover: true,
			MaxAttempts: cfg.MaxAttempts,
			Spares:      spares,
			Sleep:       func(time.Duration) {},
			Seed:        cellSeed + int64(r) + 1,
			Inject:      inj.Inject,
		})
		var attempts []recovery.Attempt
		switch {
		case err == nil:
			if st.Recovery == nil {
				return RecoveryCell{}, errors.New("supervised success without recovery report")
			}
			attempts = st.Recovery.Attempts
		default:
			var ex *recovery.ExhaustedError
			if !errors.As(err, &ex) {
				return RecoveryCell{}, fmt.Errorf("run %d: %w", r, err)
			}
			attempts = ex.Attempts
			cell.Exhausted++
		}
		totalAttempts += float64(len(attempts))
		for _, a := range attempts {
			totalTicks += float64(a.Cost)
			backoff += float64(a.Backoff)
			if a.Err != nil {
				cell.Failures++
				wasted += float64(a.Cost)
				cell.WastePairs = append(cell.WastePairs, [2]float64{baselines[a.Dim], float64(a.Cost)})
			}
			if a.Quarantined != recovery.NoNode {
				cell.Quarantines++
				if a.Substituted != recovery.NoNode {
					cell.Substitutions++
				}
			}
		}
		cell.Manifestations += inj.Manifestations
	}
	runs := float64(cfg.Runs)
	cell.MeanTotalTicks = totalTicks / runs
	cell.MeanAttempts = totalAttempts / runs
	cell.MeanWastedTicks = wasted / runs
	cell.MeanBackoffNanos = backoff / runs
	return cell, nil
}

// RecoveryCalibration is the fitted model input CalibrateRecovery
// produces from a measured sweep.
type RecoveryCalibration struct {
	// Attempt is the fitted fault-free per-attempt cost formula over
	// N, from the cells' top-level baselines (the recovery analogue of
	// the Section 5 component table, in makespan rather than split
	// comm/comp ticks).
	Attempt costmodel.Formula
	// AttemptR2 scores the attempt fit against its points.
	AttemptR2 float64
	// Calib carries the fitted detection and waste fractions.
	Calib costmodel.Calibration
	// PersistentFrac echoes the sweep's transient/persistent split.
	PersistentFrac float64
}

// attemptBases are the fitted bases for the per-attempt makespan: the
// paper's dominant S_FT terms (lg²N latency plus linear volume).
var attemptBases = []costmodel.Basis{costmodel.BasisLg2N, costmodel.BasisN}

// CalibrateRecovery fits the recovery model's empirical terms from a
// measured sweep: the per-attempt cost formula by least squares over
// the cells' baselines, the waste fraction by a through-origin fit of
// failed-attempt cost against the fault-free attempt cost, and the
// detection fraction as the failure share of fault manifestations.
func CalibrateRecovery(cells []RecoveryCell) (RecoveryCalibration, error) {
	if len(cells) == 0 {
		return RecoveryCalibration{}, errors.New("experiments: no recovery cells to calibrate")
	}
	var ns []int
	var ticks []float64
	var wasteX [][]float64
	var wasteY []float64
	var manifests, failures int64
	for _, c := range cells {
		ns = append(ns, 1<<uint(c.Dim))
		ticks = append(ticks, c.Baselines[c.Dim])
		manifests += c.Manifestations
		failures += c.Failures
		for _, p := range c.WastePairs {
			wasteX = append(wasteX, []float64{p[0]})
			wasteY = append(wasteY, p[1])
		}
	}
	cal := RecoveryCalibration{PersistentFrac: cells[0].PersistentFrac}

	// A sweep over a single cube size cannot resolve two bases; drop
	// to the dominant linear term rather than failing the whole
	// calibration (the detection/waste fits don't need the span).
	distinct := map[int]bool{}
	for _, n := range ns {
		distinct[n] = true
	}
	bases := attemptBases
	if len(distinct) < len(bases) {
		bases = attemptBases[len(attemptBases)-1:]
	}
	attempt, err := costmodel.FitSeries(ns, ticks, bases)
	if err != nil {
		return RecoveryCalibration{}, fmt.Errorf("experiments: attempt-cost fit: %w", err)
	}
	cal.Attempt = attempt
	pred := make([]float64, len(ns))
	for i, n := range ns {
		if pred[i], err = attempt.Eval(float64(n)); err != nil {
			return RecoveryCalibration{}, err
		}
	}
	if cal.AttemptR2, err = stats.RSquared(ticks, pred); err != nil {
		return RecoveryCalibration{}, err
	}

	if manifests == 0 {
		return RecoveryCalibration{}, errors.New("experiments: sweep produced no fault manifestations; raise the load")
	}
	cal.Calib.DetectFrac = float64(failures) / float64(manifests)
	if len(wasteY) == 0 {
		cal.Calib.WasteFrac = 1
	} else {
		coef, err := stats.LeastSquares(wasteX, wasteY)
		if err != nil {
			return RecoveryCalibration{}, fmt.Errorf("experiments: waste-fraction fit: %w", err)
		}
		cal.Calib.WasteFrac = coef[0]
	}
	return cal, nil
}

// CellModel builds the recovery-aware cost model for one measured
// cell: measured baselines as the attempt-cost table, the cell's fault
// regime and supervisor policy, and the sweep-wide calibration.
func CellModel(cell RecoveryCell, cal RecoveryCalibration) *costmodel.RecoveryModel {
	pol := costmodel.DefaultPolicyParams()
	pol.MaxAttempts = cell.MaxAttempts
	pol.Spares = cell.Spares
	return &costmodel.RecoveryModel{
		Name:         fmt.Sprintf("d%d load %.2g spares %d", cell.Dim, cell.Load, cell.Spares),
		AttemptTicks: costmodel.AttemptTable(cell.Baselines),
		Regime:       costmodel.FaultRegime{MTTF: cell.MTTF, PersistentFrac: cell.PersistentFrac},
		Policy:       pol,
		Calib:        cal.Calib,
	}
}

// RecoveryValidation is one cell's modeled-vs-measured comparison.
type RecoveryValidation struct {
	Cell RecoveryCell
	// Breakdown is the model's expectation decomposition for the cell.
	Breakdown costmodel.Breakdown
	// Predicted and Measured are E[total vticks], modeled vs measured.
	Predicted float64
	Measured  float64
	// RelErr is |Predicted−Measured|/Measured; Within reports whether
	// it landed inside the tolerance.
	RelErr float64
	Within bool
}

// ValidateRecovery compares the calibrated model's expected total
// vticks against every measured cell, records each comparison on the
// observer's cost-model counters (nil-safe), and returns the per-cell
// results. tol is the acceptance tolerance as a fraction (0.10 for the
// 10% criterion).
func ValidateRecovery(cells []RecoveryCell, cal RecoveryCalibration, o *obs.Observer, tol float64) ([]RecoveryValidation, error) {
	out := make([]RecoveryValidation, 0, len(cells))
	for _, cell := range cells {
		bd, err := CellModel(cell, cal).Breakdown(cell.Dim)
		if err != nil {
			return nil, fmt.Errorf("experiments: cell d%d load %v spares %d: %w", cell.Dim, cell.Load, cell.Spares, err)
		}
		v := RecoveryValidation{
			Cell:      cell,
			Breakdown: bd,
			Predicted: bd.ExpectedTicks,
			Measured:  cell.MeanTotalTicks,
		}
		if v.Measured > 0 {
			v.RelErr = absf(v.Predicted-v.Measured) / v.Measured
		}
		v.Within = v.RelErr <= tol
		o.CostModelPoint(v.RelErr, v.Within)
		out = append(out, v)
	}
	return out, nil
}

// Figure7Faulty answers the Figure 7 question with repair cost
// included: it projects the measured S_FT model, recovery-aware
// variants of it at the given per-node MTTFs (using the sweep's
// calibration and the supervisor's default policy), and the measured
// sequential model, and reports where reliable parallel sorting still
// beats the host under the least reliable regime.
func Figure7Faulty(fit Table1Result, cal RecoveryCalibration, mttfs []float64, minDim, maxDim int) (Figure7Result, error) {
	if len(mttfs) == 0 {
		return Figure7Result{}, errors.New("experiments: no MTTF values for the faulty projection")
	}
	models := []costmodel.Coster{fit.SFT}
	var worst *costmodel.RecoveryModel
	for _, mttf := range mttfs {
		rm := costmodel.NewRecoveryModel(
			fmt.Sprintf("S_FT+repair MTTF=%.3g", mttf),
			fit.SFT,
			costmodel.FaultRegime{MTTF: mttf, PersistentFrac: cal.PersistentFrac},
			costmodel.DefaultPolicyParams(),
			cal.Calib,
		)
		models = append(models, rm)
		if worst == nil || mttf < worst.Regime.MTTF {
			worst = rm
		}
	}
	models = append(models, fit.Sequential)
	rows, err := costmodel.Project(models, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	// Crossover of the least reliable regime against the host sort:
	// the repair loop's tax on the paper's closing claim.
	fx, err := costmodel.Crossover(worst, fit.Sequential, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	px, err := costmodel.Crossover(fit.SFT, fit.Sequential, minDim, maxDim)
	if err != nil {
		return Figure7Result{}, err
	}
	return Figure7Result{
		Title:             "Figure 7 (faulty regime) — projected sorting times with repair cost (ticks)",
		Rows:              rows,
		Models:            models,
		MeasuredCrossover: fx,
		PaperCrossover:    px,
	}, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
