package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		m    Message
	}{
		{"empty payload", Message{Kind: KindExchange, From: 3, To: 7, Stage: 2, Iter: 1}},
		{"with payload", Message{Kind: KindFTExchange, From: 0, To: 1, Payload: []byte{1, 2, 3}}},
		{"host error", Message{Kind: KindError, From: 5, To: HostID, Payload: EncodeError(ErrorPayload{Predicate: "progress", Detail: "x"})}},
		{"negative from (host)", Message{Kind: KindHostDownload, From: HostID, To: 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			buf, err := Encode(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != EncodedSize(len(tc.m.Payload)) {
				t.Errorf("encoded %d bytes, EncodedSize says %d", len(buf), EncodedSize(len(tc.m.Payload)))
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != tc.m.Kind || got.From != tc.m.From || got.To != tc.m.To ||
				got.Stage != tc.m.Stage || got.Iter != tc.m.Iter {
				t.Fatalf("header mismatch: got %+v want %+v", got, tc.m)
			}
			if string(got.Payload) != string(tc.m.Payload) {
				t.Fatalf("payload mismatch: %v vs %v", got.Payload, tc.m.Payload)
			}
		})
	}
}

func TestEncodeRejectsInvalidKind(t *testing.T) {
	if _, err := Encode(Message{Kind: 0}); err == nil {
		t.Error("kind 0: want error")
	}
	if _, err := Encode(Message{Kind: 200}); err == nil {
		t.Error("kind 200: want error")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := Encode(Message{Kind: KindExchange, Payload: []byte{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"short header", good[:10]},
		{"truncated payload", good[:len(good)-1]},
		{"trailing garbage", append(append([]byte{}, good...), 0xFF)},
		{"bad kind", append([]byte{0}, good[1:]...)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.buf); err == nil {
				t.Errorf("Decode(%s): want error, got nil", tc.name)
			}
		})
	}
}

func TestDecodeRejectsHugeDeclaredPayload(t *testing.T) {
	m := Message{Kind: KindExchange}
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the length field to something absurd.
	buf[17], buf[18], buf[19], buf[20] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Decode(buf); err == nil {
		t.Error("huge declared payload: want error")
	}
}

func TestKindString(t *testing.T) {
	if KindFTExchange.String() != "ft-exchange" {
		t.Errorf("String = %q", KindFTExchange.String())
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind String = %q", Kind(99).String())
	}
}

func TestExchangePayloadRoundTrip(t *testing.T) {
	p := ExchangePayload{Keys: []int64{-5, 0, 1 << 40}}
	got, err := DecodeExchange(EncodeExchange(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 3 || got.Keys[0] != -5 || got.Keys[2] != 1<<40 {
		t.Fatalf("got %+v", got)
	}
	if _, err := DecodeExchange([]byte{1, 0, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated keys: want ErrTruncated, got %v", err)
	}
	if _, err := DecodeExchange(append(EncodeExchange(p), 0)); err == nil {
		t.Error("trailing byte: want error")
	}
}

func makeView(t *testing.T, base int, vals map[int]int64, size int) View {
	t.Helper()
	v := NewView(base, size)
	idxs := make([]int, 0, len(vals))
	for i := range vals {
		idxs = append(idxs, i)
	}
	// Insert in ascending slot order.
	for i := 0; i < size; i++ {
		if val, ok := vals[i]; ok {
			v.Mask.Add(i)
			v.Vals = append(v.Vals, val)
		}
	}
	_ = idxs
	return v
}

func TestViewValidate(t *testing.T) {
	v := makeView(t, 4, map[int]int64{0: 10, 3: 20}, 4)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := v
	bad.Vals = bad.Vals[:1]
	if err := bad.Validate(); err == nil {
		t.Error("value/mask count mismatch: want error")
	}
	bad2 := v
	bad2.Size = 5
	if err := bad2.Validate(); err == nil {
		t.Error("mask length mismatch: want error")
	}
	bad3 := v
	bad3.Base = -2
	if err := bad3.Validate(); err == nil {
		t.Error("negative base: want error")
	}
	bad4 := v
	bad4.BlockLen = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero block length: want error")
	}
}

func TestBlockViewRoundTrip(t *testing.T) {
	v := NewBlockView(4, 4, 3)
	v.Mask.Add(0)
	v.Mask.Add(2)
	v.Vals = []int64{1, 2, 3, 10, 20, 30}
	buf, err := EncodeVerify(VerifyPayload{View: v})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVerify(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.View.BlockLen != 3 || got.View.Mask.Count() != 2 {
		t.Fatalf("view %+v", got.View)
	}
	b0 := got.View.Block(0)
	b1 := got.View.Block(1)
	if b0[0] != 1 || b0[2] != 3 || b1[0] != 10 || b1[2] != 30 {
		t.Fatalf("blocks %v %v", b0, b1)
	}
	if len(buf) != ViewEncodedSize(4, 2, 3) {
		t.Errorf("encoded %d bytes, ViewEncodedSize says %d", len(buf), ViewEncodedSize(4, 2, 3))
	}
}

func TestBlockViewDecodeRejectsHugeClaim(t *testing.T) {
	v := NewBlockView(0, 2, 2)
	v.Mask.Add(0)
	v.Vals = []int64{1, 2}
	buf, err := EncodeVerify(VerifyPayload{View: v})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt blockLen (bytes 8..11) to a huge value.
	buf[8], buf[9], buf[10], buf[11] = 0xFF, 0xFF, 0x00, 0x00
	if _, err := DecodeVerify(buf); err == nil {
		t.Error("huge block length: want error")
	}
}

func TestFTExchangeRoundTrip(t *testing.T) {
	v := makeView(t, 0, map[int]int64{1: 7, 2: -9}, 4)
	p := FTExchangePayload{Keys: []int64{42, 43}, View: v}
	buf, err := EncodeFTExchange(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFTExchange(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 2 || got.Keys[0] != 42 {
		t.Fatalf("keys = %v", got.Keys)
	}
	if got.View.Base != 0 || got.View.Size != 4 {
		t.Fatalf("view bounds = %d/%d", got.View.Base, got.View.Size)
	}
	if !got.View.Mask.Has(1) || !got.View.Mask.Has(2) || got.View.Mask.Count() != 2 {
		t.Fatalf("mask = %v", got.View.Mask.String())
	}
	if got.View.Vals[0] != 7 || got.View.Vals[1] != -9 {
		t.Fatalf("vals = %v", got.View.Vals)
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	v := makeView(t, 8, map[int]int64{0: 1, 1: 2, 2: 3, 3: 4}, 4)
	buf, err := EncodeVerify(VerifyPayload{View: v})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVerify(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.View.Base != 8 || got.View.Mask.Count() != 4 {
		t.Fatalf("got view %+v", got.View)
	}
	if len(buf) != ViewEncodedSize(4, 4, 1) {
		t.Errorf("encoded %d bytes, ViewEncodedSize says %d", len(buf), ViewEncodedSize(4, 4, 1))
	}
}

func TestHostRoundTrip(t *testing.T) {
	p := HostPayload{Keys: []int64{1, 2, 3}}
	got, err := DecodeHost(EncodeHost(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 3 {
		t.Fatalf("got %v", got.Keys)
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	p := ErrorPayload{Predicate: "consistency", Kind: 1, Accused: 5, Detail: "slot 3 mismatch: 10 vs 12"}
	got, err := DecodeError(EncodeError(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("got %+v want %+v", got, p)
	}
	if _, err := DecodeError([]byte{10, 0, 0, 0, 'a'}); err == nil {
		t.Error("truncated string: want error")
	}
}

func TestViewDecodeRejectsCorruptMask(t *testing.T) {
	v := makeView(t, 0, map[int]int64{0: 5}, 3)
	buf, err := EncodeVerify(VerifyPayload{View: v})
	if err != nil {
		t.Fatal(err)
	}
	// Set a mask bit beyond the view size (byte 28 — after base, size,
	// blockLen, and the 16-byte digest — is the start of the mask word;
	// bit 3 of a 3-slot view is invalid).
	buf[28] |= 1 << 3
	if _, err := DecodeVerify(buf); err == nil {
		t.Error("mask bit beyond size: want error")
	}
}

func TestFTExchangeRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(nKeys uint8, size uint8, maskSeed uint32) bool {
		keys := make([]int64, int(nKeys)%8)
		for i := range keys {
			keys[i] = rng.Int63() - rng.Int63()
		}
		sz := int(size)%100 + 1
		mask := bitset.New(sz)
		var vals []int64
		for i := 0; i < sz; i++ {
			if (maskSeed>>(uint(i)%32))&1 == 1 {
				mask.Add(i)
				vals = append(vals, rng.Int63())
			}
		}
		p := FTExchangePayload{Keys: keys, View: View{Base: 16, Size: int32(sz), BlockLen: 1, Mask: mask, Vals: vals}}
		buf, err := EncodeFTExchange(p)
		if err != nil {
			return false
		}
		got, err := DecodeFTExchange(buf)
		if err != nil {
			return false
		}
		if len(got.Keys) != len(keys) || !got.View.Mask.Equal(mask) || len(got.Vals()) != len(vals) {
			return false
		}
		for i := range vals {
			if got.Vals()[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Vals is a test helper accessor for the view values of a payload.
func (p FTExchangePayload) Vals() []int64 { return p.View.Vals }
