package wire

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
)

func benchView(slots, known int) View {
	v := NewView(0, slots)
	for i := 0; i < known; i++ {
		v.Mask.Add(i)
		v.Vals = append(v.Vals, int64(i)*3)
	}
	return v
}

func BenchmarkEncodeFTExchange(b *testing.B) {
	for _, slots := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			p := FTExchangePayload{Keys: []int64{1, 2}, View: benchView(slots, slots)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := EncodeFTExchange(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeFTExchange(b *testing.B) {
	for _, slots := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			p := FTExchangePayload{Keys: []int64{1, 2}, View: benchView(slots, slots)}
			buf, err := EncodeFTExchange(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeFTExchange(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMessageRoundTrip(b *testing.B) {
	m := Message{Kind: KindFTExchange, From: 1, To: 2, Stage: 3, Iter: 1,
		Payload: make([]byte, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitsetOps(b *testing.B) {
	x := bitset.New(1024)
	y := bitset.New(1024)
	for i := 0; i < 1024; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		if err := c.UnionWith(y); err != nil {
			b.Fatal(err)
		}
		_ = c.Count()
	}
}
