package wire

import "testing"

// The zero-allocation contract of the append/scratch API: once the
// destination buffer and decode scratch have grown to steady-state
// size, an encode/decode round trip performs no allocation. These
// tests pin that contract so a regression shows up as a test failure,
// not as a slow drift in the benchmark numbers.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up: grow buffers and scratch to steady state
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestMessageRoundTripZeroAllocs(t *testing.T) {
	payload := AppendExchange(nil, []int64{7, 11, 13})
	m := Message{Kind: KindExchange, From: 2, To: 3, Stage: 1, Iter: 0, Payload: payload}
	var enc []byte
	assertZeroAllocs(t, "AppendMessage+DecodeFrom", func() {
		var err error
		enc, err = AppendMessage(enc[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrom(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != m.Kind || len(got.Payload) != len(payload) {
			t.Fatal("round trip mismatch")
		}
	})
}

func TestExchangeRoundTripZeroAllocs(t *testing.T) {
	keys := []int64{5, 3, 8, 1}
	var enc []byte
	var s DecodeScratch
	assertZeroAllocs(t, "AppendExchange+DecodeExchangeInto", func() {
		enc = AppendExchange(enc[:0], keys)
		p, err := DecodeExchangeInto(&s, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Keys) != len(keys) {
			t.Fatal("round trip mismatch")
		}
	})
}

func TestFTExchangeRoundTripZeroAllocs(t *testing.T) {
	v := NewView(0, 8)
	v.Mask.Add(1)
	v.Mask.Add(4)
	v.Vals = []int64{42, 17}
	p := FTExchangePayload{Keys: []int64{9, 2}, View: v}
	var enc []byte
	var s DecodeScratch
	assertZeroAllocs(t, "AppendFTExchange+DecodeFTExchangeInto", func() {
		var err error
		enc, err = AppendFTExchange(enc[:0], p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFTExchangeInto(&s, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Keys) != 2 || len(got.View.Vals) != 2 {
			t.Fatal("round trip mismatch")
		}
	})
}

func TestVerifyRoundTripZeroAllocs(t *testing.T) {
	v := NewBlockView(0, 4, 3)
	v.Mask.Add(0)
	v.Mask.Add(2)
	v.Vals = []int64{1, 2, 3, 10, 11, 12}
	p := VerifyPayload{View: v}
	var enc []byte
	var s DecodeScratch
	assertZeroAllocs(t, "AppendVerify+DecodeVerifyInto", func() {
		var err error
		enc, err = AppendVerify(enc[:0], p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeVerifyInto(&s, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.View.Vals) != 6 {
			t.Fatal("round trip mismatch")
		}
	})
}

// TestDigestMaintenanceZeroAllocs pins the incremental digest ops the
// exchange hot path performs per element — Add, Remove, Merge — plus
// the from-scratch DigestOf used by slow paths, at zero allocations.
func TestDigestMaintenanceZeroAllocs(t *testing.T) {
	keys := []int64{4, -4, 2, 9, 0, 7}
	var d Digest
	assertZeroAllocs(t, "Digest.Add/Remove/Merge/DigestOf", func() {
		for _, k := range keys {
			d.Add(k)
		}
		d.Merge(DigestOf(keys))
		for _, k := range keys {
			d.Remove(k)
			d.Remove(k) // undo the merged copy too
		}
		if d != (Digest{}) {
			t.Fatal("digest did not cancel")
		}
	})
}

func TestHostRoundTripZeroAllocs(t *testing.T) {
	keys := []int64{4, 4, 2, 9, 0, 7}
	var enc []byte
	var s DecodeScratch
	assertZeroAllocs(t, "AppendHost+DecodeHostInto", func() {
		enc = AppendHost(enc[:0], keys)
		p, err := DecodeHostInto(&s, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Keys) != len(keys) {
			t.Fatal("round trip mismatch")
		}
	})
}
