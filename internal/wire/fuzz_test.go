package wire

import (
	"bytes"
	"testing"

	"repro/internal/bitset"
)

// The Byzantine fault model hands the decoders arbitrary bytes; they
// must reject garbage with errors, never panic or over-allocate.

func FuzzDecodeMessage(f *testing.F) {
	good, err := Encode(Message{Kind: KindFTExchange, From: 1, To: 2, Stage: 3, Iter: 1,
		Payload: []byte{1, 2, 3}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(make([]byte, 21))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode.
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeFTExchange(f *testing.F) {
	v := NewView(0, 4)
	v.Mask.Add(1)
	v.Vals = []int64{42}
	good, err := EncodeFTExchange(FTExchangePayload{Keys: []int64{1, 2}, View: v})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeFTExchange(data)
		if err != nil {
			return
		}
		if err := p.View.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid view: %v", err)
		}
		if _, err := EncodeFTExchange(p); err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeVerify(f *testing.F) {
	v := NewBlockView(4, 2, 3)
	v.Mask.Add(0)
	v.Vals = []int64{7, 8, 9}
	good, err := EncodeVerify(VerifyPayload{View: v})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeVerify(data)
		if err != nil {
			return
		}
		if err := p.View.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid view: %v", err)
		}
	})
}

func FuzzDecodeError(f *testing.F) {
	f.Add(EncodeError(ErrorPayload{Predicate: "progress", Detail: "x"}))
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeError(data)
		if err != nil {
			return
		}
		back, err := DecodeError(EncodeError(p))
		if err != nil || back != p {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", p, back, err)
		}
	})
}

func FuzzBitsetFromWords(f *testing.F) {
	f.Add(10, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 || n > 1<<16 {
			return
		}
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for k := 0; k < 8; k++ {
				words[i] |= uint64(raw[i*8+k]) << uint(8*k)
			}
		}
		s, err := bitset.FromWords(n, words)
		if err != nil {
			return
		}
		if s.Count() > n {
			t.Fatalf("count %d exceeds length %d", s.Count(), n)
		}
	})
}

// FuzzDecodeFrom pins the zero-copy decoder to the allocating one:
// on every input they must agree on accept/reject, and on accept the
// decoded messages must match field for field (DecodeFrom's payload
// aliasing the input instead of copying it).
func FuzzDecodeFrom(f *testing.F) {
	good, err := Encode(Message{Kind: KindVerify, From: 3, To: 1, Stage: 2, Iter: 1,
		Payload: []byte{9, 9, 9}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(make([]byte, headerLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, errWant := Decode(data)
		got, errGot := DecodeFrom(data)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("Decode err=%v, DecodeFrom err=%v", errWant, errGot)
		}
		if errWant != nil {
			return
		}
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
			got.Stage != want.Stage || got.Iter != want.Iter ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("DecodeFrom = %+v, Decode = %+v", got, want)
		}
	})
}
