package wire

// Digest is an incremental, order-independent multiset digest over sort
// keys: the sum and XOR of a 64-bit mix of each key. Two multisets of
// keys are equal only if their digests are equal, and equal digests
// imply equal multisets up to hash collision (the ABFT checksum move of
// Bosilca et al., arXiv:0806.3121, applied to the paper's acceptance
// tests). Properties the verification stack relies on:
//
//   - O(1) per element: Add folds one key in with one multiply-mix, one
//     add, one XOR. Merge combines two digests in O(1), so a view's
//     digest is maintained under adoption without rescanning.
//   - Order independence: Sum and XOR are commutative and associative,
//     so any interleaving of Add/Merge over the same multiset yields
//     the same digest — exactly what Φ_F (permutation) needs.
//   - Fail-safe direction: a digest MISMATCH between equal-length
//     sequences proves the multisets differ (no false alarms), so the
//     element-level scan demoted to the mismatch slow path always finds
//     real, attributable evidence. Only digest EQUALITY is
//     probabilistic (~2⁻⁶⁴ per check against random corruption; the mix
//     is not keyed, so it is not collision-resistant against an
//     adversary who targets the constant — DESIGN.md §8).
type Digest struct {
	Sum uint64
	Xor uint64
}

// MixKey is the 64-bit finalizer (splitmix64) applied to each key
// before folding. Raw sums of keys would let two corruptions cancel
// (e.g. +1 here, -1 there); mixing makes cancellation as hard as a
// generic collision.
func MixKey(v int64) uint64 {
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add folds one key into the digest.
func (d *Digest) Add(v int64) {
	h := MixKey(v)
	d.Sum += h
	d.Xor ^= h
}

// AddHash folds an already-mixed key hash into the digest.
func (d *Digest) AddHash(h uint64) {
	d.Sum += h
	d.Xor ^= h
}

// Remove unfolds one key from the digest (the inverse of Add), letting
// a slot be overwritten without rebuilding the whole digest.
func (d *Digest) Remove(v int64) {
	h := MixKey(v)
	d.Sum -= h
	d.Xor ^= h
}

// Merge folds another digest in: the result is the digest of the
// multiset union.
func (d *Digest) Merge(o Digest) {
	d.Sum += o.Sum
	d.Xor ^= o.Xor
}

// Merged returns the digest of the multiset union without mutating d.
func (d Digest) Merged(o Digest) Digest {
	return Digest{Sum: d.Sum + o.Sum, Xor: d.Xor ^ o.Xor}
}

// DigestOf returns the digest of a whole key slice.
func DigestOf(keys []int64) Digest {
	var d Digest
	for _, v := range keys {
		d.Add(v)
	}
	return d
}

// DigestCompareCost is the virtual comparisons charged for one digest
// check: the Sum and Xor word comparisons. Fast paths charge this
// instead of the element-level scan they replace, keeping vcomp
// faithful to the work actually performed.
const DigestCompareCost = 2
