// Package wire defines the on-the-wire message format exchanged by
// node processors and the host. Messages are serialized with
// encoding/binary (little endian) so the simulator can charge
// communication cost by *byte length*, reproducing the paper's
// observation that the fault-tolerant algorithm S_FT keeps the message
// count of S_NR while growing the message length.
//
// The format deliberately carries no checksums: the paper's threat
// model is Byzantine (arbitrarily corrupted) messages, and detection is
// the job of the application-level constraint predicate, not the
// transport.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds. Values are fixed wire constants; do not reorder.
const (
	// KindExchange is an S_NR compare-exchange message carrying keys only.
	KindExchange Kind = iota + 1
	// KindFTExchange is an S_FT compare-exchange message carrying keys
	// plus the piggybacked bitonic-sequence view (LBS).
	KindFTExchange
	// KindVerify is the final pure-exchange verification message of
	// S_FT, carrying a view only.
	KindVerify
	// KindHostUpload carries node data to the host (sequential baselines).
	KindHostUpload
	// KindHostDownload carries host data to a node.
	KindHostDownload
	// KindError is a node's diagnostic ERROR signal to the host.
	KindError
)

var kindNames = map[Kind]string{
	KindExchange:     "exchange",
	KindFTExchange:   "ft-exchange",
	KindVerify:       "verify",
	KindHostUpload:   "host-upload",
	KindHostDownload: "host-download",
	KindError:        "error",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Message is the unit of communication between processors. From/To are
// node labels (HostID for the host). Stage and Iter are the (i, j)
// loop indices of the bitonic schedule at sending time, letting the
// receiver match messages to protocol steps.
type Message struct {
	Kind    Kind
	From    int32
	To      int32
	Stage   int32
	Iter    int32
	Payload []byte
}

// HostID is the pseudo-node label of the host processor.
const HostID int32 = -1

// headerLen is the encoded size of the fixed header:
// kind(1) + from(4) + to(4) + stage(4) + iter(4) + payloadLen(4).
const headerLen = 1 + 4*5

// MaxPayload bounds a single message payload; it exists only to reject
// absurd length fields in corrupted headers before allocation.
const MaxPayload = 1 << 26 // 64 MiB

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("wire: truncated message")

// Encode serializes the message. The encoding is
// deterministic, so byte counts are reproducible across runs.
func Encode(m Message) ([]byte, error) {
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("wire: encode: invalid kind %d", m.Kind)
	}
	if len(m.Payload) > MaxPayload {
		return nil, fmt.Errorf("wire: encode: payload %d bytes exceeds max %d", len(m.Payload), MaxPayload)
	}
	buf := make([]byte, headerLen+len(m.Payload))
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(buf[1:], uint32(m.From))
	binary.LittleEndian.PutUint32(buf[5:], uint32(m.To))
	binary.LittleEndian.PutUint32(buf[9:], uint32(m.Stage))
	binary.LittleEndian.PutUint32(buf[13:], uint32(m.Iter))
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(m.Payload)))
	copy(buf[headerLen:], m.Payload)
	return buf, nil
}

// Decode parses a message from buf. Trailing bytes after the declared
// payload are an error: links are message-framed, not streams.
func Decode(buf []byte) (Message, error) {
	if len(buf) < headerLen {
		return Message{}, ErrTruncated
	}
	m := Message{
		Kind:  Kind(buf[0]),
		From:  int32(binary.LittleEndian.Uint32(buf[1:])),
		To:    int32(binary.LittleEndian.Uint32(buf[5:])),
		Stage: int32(binary.LittleEndian.Uint32(buf[9:])),
		Iter:  int32(binary.LittleEndian.Uint32(buf[13:])),
	}
	if !m.Kind.Valid() {
		return Message{}, fmt.Errorf("wire: decode: invalid kind %d", buf[0])
	}
	n := binary.LittleEndian.Uint32(buf[17:])
	if n > MaxPayload {
		return Message{}, fmt.Errorf("wire: decode: payload length %d exceeds max %d", n, MaxPayload)
	}
	if len(buf) != headerLen+int(n) {
		return Message{}, fmt.Errorf("wire: decode: buffer %d bytes, header declares %d: %w",
			len(buf), headerLen+int(n), ErrTruncated)
	}
	m.Payload = make([]byte, n)
	copy(m.Payload, buf[headerLen:])
	return m, nil
}

// EncodedSize returns the number of bytes Encode will produce for a
// message with the given payload length.
func EncodedSize(payloadLen int) int { return headerLen + payloadLen }

// --- payload building blocks -------------------------------------------

// AppendKeys appends a length-prefixed key slice to buf.
func AppendKeys(buf []byte, keys []int64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf
}

// reader is a cursor over a payload buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) keys() ([]int64, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(r.buf)-r.off)/8 {
		return nil, fmt.Errorf("wire: key count %d exceeds remaining buffer: %w", n, ErrTruncated)
	}
	out := make([]int64, n)
	for i := range out {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(r.buf)-r.off)
	}
	return nil
}

// --- view ----------------------------------------------------------------

// View is a node's partial knowledge of the bitonic sequence held by a
// subcube: for each subcube slot (node label Base+k, 0 <= k < Size),
// Mask records whether the value is known and Vals holds the known
// values in ascending slot order. This is the LBS structure of
// algorithm S_FT together with its lmask knowledge bit vector.
//
// In block sorting each slot holds BlockLen keys rather than one; Vals
// then carries BlockLen consecutive keys per known slot. BlockLen is 1
// for the one-key-per-node algorithms.
type View struct {
	Base     int32
	Size     int32
	BlockLen int32
	Mask     bitset.Set
	Vals     []int64
}

// NewView returns an empty one-key-per-slot view over the subcube
// [base, base+size).
func NewView(base, size int) View {
	return NewBlockView(base, size, 1)
}

// NewBlockView returns an empty view whose slots each hold blockLen keys.
func NewBlockView(base, size, blockLen int) View {
	return View{Base: int32(base), Size: int32(size), BlockLen: int32(blockLen), Mask: bitset.New(size)}
}

// Validate checks structural invariants: non-negative bounds, positive
// block length, mask length matching Size, and BlockLen values per set
// mask bit.
func (v View) Validate() error {
	if v.Base < 0 || v.Size < 0 {
		return fmt.Errorf("wire: view bounds base=%d size=%d invalid", v.Base, v.Size)
	}
	if v.BlockLen < 1 {
		return fmt.Errorf("wire: view block length %d invalid", v.BlockLen)
	}
	if v.Mask.Len() != int(v.Size) {
		return fmt.Errorf("wire: view mask length %d != size %d", v.Mask.Len(), v.Size)
	}
	if len(v.Vals) != v.Mask.Count()*int(v.BlockLen) {
		return fmt.Errorf("wire: view has %d values for %d known slots of %d keys",
			len(v.Vals), v.Mask.Count(), v.BlockLen)
	}
	return nil
}

// Block returns the keys of the i-th known slot (in mask index order).
func (v View) Block(i int) []int64 {
	b := int(v.BlockLen)
	return v.Vals[i*b : (i+1)*b]
}

// AppendView appends the view's encoding to buf:
// base(4) size(4) blockLen(4) words(8 each) vals(8 each).
func AppendView(buf []byte, v View) ([]byte, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Base))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Size))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.BlockLen))
	for _, w := range v.Mask.Words() {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for _, k := range v.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf, nil
}

func (r *reader) view() (View, error) {
	base, err := r.u32()
	if err != nil {
		return View{}, err
	}
	size, err := r.u32()
	if err != nil {
		return View{}, err
	}
	blockLen, err := r.u32()
	if err != nil {
		return View{}, err
	}
	if size > MaxPayload/8 || blockLen < 1 || blockLen > MaxPayload/8 {
		return View{}, fmt.Errorf("wire: view size %d block %d implausible: %w", size, blockLen, ErrTruncated)
	}
	nWords := (int(size) + 63) / 64
	words := make([]uint64, nWords)
	for i := range words {
		w, err := r.u64()
		if err != nil {
			return View{}, err
		}
		words[i] = w
	}
	mask, err := bitset.FromWords(int(size), words)
	if err != nil {
		return View{}, fmt.Errorf("wire: view mask: %w", err)
	}
	total := mask.Count() * int(blockLen)
	if total > (len(r.buf)-r.off)/8 {
		return View{}, fmt.Errorf("wire: view claims %d values beyond buffer: %w", total, ErrTruncated)
	}
	vals := make([]int64, total)
	for i := range vals {
		x, err := r.u64()
		if err != nil {
			return View{}, err
		}
		vals[i] = int64(x)
	}
	return View{Base: int32(base), Size: int32(size), BlockLen: int32(blockLen), Mask: mask, Vals: vals}, nil
}

// ViewEncodedSize returns the payload bytes AppendView produces for a
// view over size slots with known known slots of blockLen keys each.
func ViewEncodedSize(size, known, blockLen int) int {
	return 4 + 4 + 4 + 8*((size+63)/64) + 8*known*blockLen
}

// --- composite payloads ----------------------------------------------------

// ExchangePayload is the body of a KindExchange message: the compare-
// exchange keys only (one key from the passive node, the min/max pair
// back from the active node, or a block of m keys in block sorting).
type ExchangePayload struct {
	Keys []int64
}

// EncodeExchange serializes an ExchangePayload.
func EncodeExchange(p ExchangePayload) []byte {
	return AppendKeys(nil, p.Keys)
}

// DecodeExchange parses an ExchangePayload.
func DecodeExchange(buf []byte) (ExchangePayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return ExchangePayload{}, err
	}
	if err := r.done(); err != nil {
		return ExchangePayload{}, err
	}
	return ExchangePayload{Keys: keys}, nil
}

// FTExchangePayload is the body of a KindFTExchange message: the
// compare-exchange keys plus the sender's piggybacked view of the
// current stage's bitonic sequence (LBS).
type FTExchangePayload struct {
	Keys []int64
	View View
}

// EncodeFTExchange serializes an FTExchangePayload.
func EncodeFTExchange(p FTExchangePayload) ([]byte, error) {
	buf := AppendKeys(nil, p.Keys)
	return AppendView(buf, p.View)
}

// DecodeFTExchange parses an FTExchangePayload.
func DecodeFTExchange(buf []byte) (FTExchangePayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return FTExchangePayload{}, err
	}
	v, err := r.view()
	if err != nil {
		return FTExchangePayload{}, err
	}
	if err := r.done(); err != nil {
		return FTExchangePayload{}, err
	}
	return FTExchangePayload{Keys: keys, View: v}, nil
}

// VerifyPayload is the body of a KindVerify message: the final sorted
// view exchanged in S_FT's last pure-verification stage.
type VerifyPayload struct {
	View View
}

// EncodeVerify serializes a VerifyPayload.
func EncodeVerify(p VerifyPayload) ([]byte, error) {
	return AppendView(nil, p.View)
}

// DecodeVerify parses a VerifyPayload.
func DecodeVerify(buf []byte) (VerifyPayload, error) {
	r := &reader{buf: buf}
	v, err := r.view()
	if err != nil {
		return VerifyPayload{}, err
	}
	if err := r.done(); err != nil {
		return VerifyPayload{}, err
	}
	return VerifyPayload{View: v}, nil
}

// HostPayload is the body of host upload/download messages.
type HostPayload struct {
	Keys []int64
}

// EncodeHost serializes a HostPayload.
func EncodeHost(p HostPayload) []byte { return AppendKeys(nil, p.Keys) }

// DecodeHost parses a HostPayload.
func DecodeHost(buf []byte) (HostPayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return HostPayload{}, err
	}
	if err := r.done(); err != nil {
		return HostPayload{}, err
	}
	return HostPayload{Keys: keys}, nil
}

// ErrorPayload is the body of a node's ERROR signal to the host: which
// constraint predicate failed, what kind of evidence fired it, whom
// the evidence implicates, and a short description.
type ErrorPayload struct {
	Predicate string // "progress", "feasibility", "consistency", "protocol"
	// Kind is the structured evidence class (core.ErrorKind: value,
	// absence, or shape), carried as a raw byte so the wire layer stays
	// free of higher-layer imports. Diagnosis keys off this field;
	// Detail is for humans only.
	Kind uint8
	// Accused is the node the evidence implicates, -1 when none.
	Accused int32
	Detail  string
}

// EncodeError serializes an ErrorPayload.
func EncodeError(p ErrorPayload) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(p.Predicate)))
	buf = append(buf, p.Predicate...)
	buf = append(buf, p.Kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Accused))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Detail)))
	buf = append(buf, p.Detail...)
	return buf
}

// DecodeError parses an ErrorPayload.
func DecodeError(buf []byte) (ErrorPayload, error) {
	r := &reader{buf: buf}
	pred, err := r.str()
	if err != nil {
		return ErrorPayload{}, err
	}
	kind, err := r.u8()
	if err != nil {
		return ErrorPayload{}, err
	}
	acc, err := r.u32()
	if err != nil {
		return ErrorPayload{}, err
	}
	det, err := r.str()
	if err != nil {
		return ErrorPayload{}, err
	}
	if err := r.done(); err != nil {
		return ErrorPayload{}, err
	}
	return ErrorPayload{Predicate: pred, Kind: kind, Accused: int32(acc), Detail: det}, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.buf)-r.off {
		return "", fmt.Errorf("wire: string length %d exceeds remaining buffer: %w", n, ErrTruncated)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}
