// Package wire defines the on-the-wire message format exchanged by
// node processors and the host. Messages are serialized with
// encoding/binary (little endian) so the simulator can charge
// communication cost by *byte length*, reproducing the paper's
// observation that the fault-tolerant algorithm S_FT keeps the message
// count of S_NR while growing the message length.
//
// The format deliberately carries no transport checksums: the paper's
// threat model is Byzantine (arbitrarily corrupted) messages, and
// detection is the job of the application-level constraint predicate,
// not the transport. The View's multiset Digest is not a transport
// checksum — it is part of the application-level acceptance tests (the
// sender's *claim* about its view, which Φ_C/Φ_F verify and may turn
// into Byzantine evidence).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"repro/internal/bitset"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds. Values are fixed wire constants; do not reorder.
const (
	// KindExchange is an S_NR compare-exchange message carrying keys only.
	KindExchange Kind = iota + 1
	// KindFTExchange is an S_FT compare-exchange message carrying keys
	// plus the piggybacked bitonic-sequence view (LBS).
	KindFTExchange
	// KindVerify is the final pure-exchange verification message of
	// S_FT, carrying a view only.
	KindVerify
	// KindHostUpload carries node data to the host (sequential baselines).
	KindHostUpload
	// KindHostDownload carries host data to a node.
	KindHostDownload
	// KindError is a node's diagnostic ERROR signal to the host.
	KindError
)

// kindNames is indexed by Kind; Valid and String are on the hot path
// of every Encode/Decode, so this is an array lookup, not a map.
var kindNames = [...]string{
	KindExchange:     "exchange",
	KindFTExchange:   "ft-exchange",
	KindVerify:       "verify",
	KindHostUpload:   "host-upload",
	KindHostDownload: "host-download",
	KindError:        "error",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if k.Valid() {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool {
	return int(k) < len(kindNames) && kindNames[k] != ""
}

// Message is the unit of communication between processors. From/To are
// node labels (HostID for the host). Stage and Iter are the (i, j)
// loop indices of the bitonic schedule at sending time, letting the
// receiver match messages to protocol steps.
type Message struct {
	Kind    Kind
	From    int32
	To      int32
	Stage   int32
	Iter    int32
	Payload []byte
	// Trace is the causal trailer stamped by the sending transport
	// (zero when tracing is off). It is excluded from cost charging
	// and never consulted by the predicates — see trace.go.
	Trace TraceContext
}

// HostID is the pseudo-node label of the host processor.
const HostID int32 = -1

// headerLen is the encoded size of the fixed header:
// kind(1) + from(4) + to(4) + stage(4) + iter(4) + payloadLen(4).
const headerLen = 1 + 4*5

// MaxPayload bounds a single message payload; it exists only to reject
// absurd length fields in corrupted headers before allocation.
const MaxPayload = 1 << 26 // 64 MiB

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("wire: truncated message")

// Encode serializes the message. The encoding is
// deterministic, so byte counts are reproducible across runs.
func Encode(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, EncodedSize(len(m.Payload))), m)
}

// AppendMessage appends the wire encoding of m to buf and returns the
// extended slice. It is the allocation-free form of Encode: callers
// that reuse buf across sends pay no per-message garbage.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("wire: encode: invalid kind %d", m.Kind)
	}
	if len(m.Payload) > MaxPayload {
		return nil, fmt.Errorf("wire: encode: payload %d bytes exceeds max %d", len(m.Payload), MaxPayload)
	}
	off := len(buf)
	buf = extend(buf, headerLen+len(m.Payload))
	b := buf[off:]
	b[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(b[1:], uint32(m.From))
	binary.LittleEndian.PutUint32(b[5:], uint32(m.To))
	binary.LittleEndian.PutUint32(b[9:], uint32(m.Stage))
	binary.LittleEndian.PutUint32(b[13:], uint32(m.Iter))
	binary.LittleEndian.PutUint32(b[17:], uint32(len(m.Payload)))
	copy(b[headerLen:], m.Payload)
	return appendTrace(buf, m.Trace), nil
}

// Decode parses a message from buf. Trailing bytes after the declared
// payload are an error: links are message-framed, not streams. The
// returned payload is an independent copy of buf's bytes.
func Decode(buf []byte) (Message, error) {
	m, err := DecodeFrom(buf)
	if err != nil {
		return Message{}, err
	}
	p := make([]byte, len(m.Payload))
	copy(p, m.Payload)
	m.Payload = p
	return m, nil
}

// DecodeFrom parses a message from buf without copying: the returned
// Payload aliases buf. Callers own the aliasing contract — the message
// is valid only as long as buf is neither reused nor mutated. The
// simulated and TCP transports rely on this to deliver messages with
// zero steady-state allocation.
func DecodeFrom(buf []byte) (Message, error) {
	if len(buf) < headerLen {
		return Message{}, ErrTruncated
	}
	m := Message{
		Kind:  Kind(buf[0]),
		From:  int32(binary.LittleEndian.Uint32(buf[1:])),
		To:    int32(binary.LittleEndian.Uint32(buf[5:])),
		Stage: int32(binary.LittleEndian.Uint32(buf[9:])),
		Iter:  int32(binary.LittleEndian.Uint32(buf[13:])),
	}
	if !m.Kind.Valid() {
		return Message{}, fmt.Errorf("wire: decode: invalid kind %d", buf[0])
	}
	n := binary.LittleEndian.Uint32(buf[17:])
	if n > MaxPayload {
		return Message{}, fmt.Errorf("wire: decode: payload length %d exceeds max %d", n, MaxPayload)
	}
	if len(buf) != headerLen+int(n)+TraceWireLen {
		return Message{}, fmt.Errorf("wire: decode: buffer %d bytes, header declares %d: %w",
			len(buf), headerLen+int(n)+TraceWireLen, ErrTruncated)
	}
	m.Payload = buf[headerLen : headerLen+int(n)]
	m.Trace = decodeTrace(buf[headerLen+int(n):])
	return m, nil
}

// extend grows buf by n bytes in place when capacity allows, returning
// the lengthened slice. The appended region is uninitialized; callers
// must overwrite all of it.
func extend(buf []byte, n int) []byte {
	return slices.Grow(buf, n)[:len(buf)+n]
}

// EncodedSize returns the number of bytes Encode will produce for a
// message with the given payload length, trace trailer included.
func EncodedSize(payloadLen int) int { return headerLen + payloadLen + TraceWireLen }

// --- payload building blocks -------------------------------------------

// AppendKeys appends a length-prefixed key slice to buf. Keys are
// marshalled in one 8-byte-stride pass over a pre-grown buffer rather
// than element-wise appends.
func AppendKeys(buf []byte, keys []int64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	off := len(buf)
	buf = extend(buf, 8*len(keys))
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[off:], uint64(k))
		off += 8
	}
	return buf
}

// reader is a cursor over a payload buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// keyCount reads and bounds-checks a key-count prefix; after a nil
// error, readKeys for that many keys cannot run out of buffer.
func (r *reader) keyCount() (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int(n) > (len(r.buf)-r.off)/8 {
		return 0, fmt.Errorf("wire: key count %d exceeds remaining buffer: %w", n, ErrTruncated)
	}
	return int(n), nil
}

// readKeys fills dst from the buffer in one 8-byte-stride pass. The
// caller must have bounds-checked len(dst) via keyCount or equivalent.
func (r *reader) readKeys(dst []int64) {
	src := r.buf[r.off:]
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	r.off += 8 * len(dst)
}

func (r *reader) keys() ([]int64, error) {
	n, err := r.keyCount()
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	r.readKeys(out)
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(r.buf)-r.off)
	}
	return nil
}

// --- view ----------------------------------------------------------------

// View is a node's partial knowledge of the bitonic sequence held by a
// subcube: for each subcube slot (node label Base+k, 0 <= k < Size),
// Mask records whether the value is known and Vals holds the known
// values in ascending slot order. This is the LBS structure of
// algorithm S_FT together with its lmask knowledge bit vector.
//
// In block sorting each slot holds BlockLen keys rather than one; Vals
// then carries BlockLen consecutive keys per known slot. BlockLen is 1
// for the one-key-per-node algorithms.
type View struct {
	Base     int32
	Size     int32
	BlockLen int32
	// Dig is the sender-claimed multiset digest of Vals (all known
	// keys, order-independent). Receivers use it for the constant-time
	// Φ_F/Φ_C fast paths; Validate deliberately does NOT check Dig
	// against Vals — an inconsistent claim is Byzantine evidence the
	// merge logic detects and attributes, not a malformed message.
	Dig  Digest
	Mask bitset.Set
	Vals []int64
}

// NewView returns an empty one-key-per-slot view over the subcube
// [base, base+size).
func NewView(base, size int) View {
	return NewBlockView(base, size, 1)
}

// NewBlockView returns an empty view whose slots each hold blockLen keys.
func NewBlockView(base, size, blockLen int) View {
	return View{Base: int32(base), Size: int32(size), BlockLen: int32(blockLen), Mask: bitset.New(size)}
}

// Validate checks structural invariants: non-negative bounds, positive
// block length, mask length matching Size, and BlockLen values per set
// mask bit.
func (v View) Validate() error {
	if v.Base < 0 || v.Size < 0 {
		return fmt.Errorf("wire: view bounds base=%d size=%d invalid", v.Base, v.Size)
	}
	if v.BlockLen < 1 {
		return fmt.Errorf("wire: view block length %d invalid", v.BlockLen)
	}
	if v.Mask.Len() != int(v.Size) {
		return fmt.Errorf("wire: view mask length %d != size %d", v.Mask.Len(), v.Size)
	}
	if len(v.Vals) != v.Mask.Count()*int(v.BlockLen) {
		return fmt.Errorf("wire: view has %d values for %d known slots of %d keys",
			len(v.Vals), v.Mask.Count(), v.BlockLen)
	}
	return nil
}

// Block returns the keys of the i-th known slot (in mask index order).
func (v View) Block(i int) []int64 {
	b := int(v.BlockLen)
	return v.Vals[i*b : (i+1)*b]
}

// AppendView appends the view's encoding to buf:
// base(4) size(4) blockLen(4) digSum(8) digXor(8) words(8 each)
// vals(8 each).
func AppendView(buf []byte, v View) ([]byte, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Base))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Size))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.BlockLen))
	buf = binary.LittleEndian.AppendUint64(buf, v.Dig.Sum)
	buf = binary.LittleEndian.AppendUint64(buf, v.Dig.Xor)
	nWords := v.Mask.WordCount()
	off := len(buf)
	buf = extend(buf, 8*(nWords+len(v.Vals)))
	for i := 0; i < nWords; i++ {
		binary.LittleEndian.PutUint64(buf[off:], v.Mask.Word(i))
		off += 8
	}
	for _, k := range v.Vals {
		binary.LittleEndian.PutUint64(buf[off:], uint64(k))
		off += 8
	}
	return buf, nil
}

func (r *reader) view() (View, error) {
	// A throwaway scratch detaches the result: viewInto allocates all
	// storage fresh when the scratch starts empty.
	var s DecodeScratch
	return r.viewInto(&s)
}

// viewInto parses a view using (and resizing) the scratch's buffers.
// The returned View's Mask and Vals alias the scratch.
func (r *reader) viewInto(s *DecodeScratch) (View, error) {
	base, err := r.u32()
	if err != nil {
		return View{}, err
	}
	size, err := r.u32()
	if err != nil {
		return View{}, err
	}
	blockLen, err := r.u32()
	if err != nil {
		return View{}, err
	}
	digSum, err := r.u64()
	if err != nil {
		return View{}, err
	}
	digXor, err := r.u64()
	if err != nil {
		return View{}, err
	}
	if size > MaxPayload/8 || blockLen < 1 || blockLen > MaxPayload/8 {
		return View{}, fmt.Errorf("wire: view size %d block %d implausible: %w", size, blockLen, ErrTruncated)
	}
	nWords := (int(size) + 63) / 64
	if nWords > (len(r.buf)-r.off)/8 {
		return View{}, ErrTruncated
	}
	s.words = scratchSlice(s.words, nWords)
	src := r.buf[r.off:]
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	r.off += 8 * nWords
	if err := s.mask.LoadWords(int(size), s.words); err != nil {
		return View{}, fmt.Errorf("wire: view mask: %w", err)
	}
	total := s.mask.Count() * int(blockLen)
	if total > (len(r.buf)-r.off)/8 {
		return View{}, fmt.Errorf("wire: view claims %d values beyond buffer: %w", total, ErrTruncated)
	}
	s.vals = scratchSlice(s.vals, total)
	r.readKeys(s.vals)
	return View{Base: int32(base), Size: int32(size), BlockLen: int32(blockLen),
		Dig: Digest{Sum: digSum, Xor: digXor}, Mask: s.mask, Vals: s.vals}, nil
}

// ViewEncodedSize returns the payload bytes AppendView produces for a
// view over size slots with known known slots of blockLen keys each.
func ViewEncodedSize(size, known, blockLen int) int {
	return 4 + 4 + 4 + 16 + 8*((size+63)/64) + 8*known*blockLen
}

// --- scratch decoding ------------------------------------------------------

// DecodeScratch holds reusable buffers for the allocation-free
// Decode*Into variants. Payloads returned by those methods alias the
// scratch storage (Keys, View.Mask, View.Vals), so each result is valid
// only until the next Decode*Into call on the same scratch. The zero
// value is ready to use; after a warm-up call per payload shape, decodes
// perform no allocation.
type DecodeScratch struct {
	keys  []int64
	vals  []int64
	words []uint64
	mask  bitset.Set
}

// scratchSlice resizes a scratch slice to n elements, reusing capacity
// when possible. Contents are unspecified; callers overwrite. The
// result is always non-nil so decoded empty slices compare equal to
// their allocating counterparts.
func scratchSlice[T any](s []T, n int) []T {
	if s == nil || cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// DecodeExchangeInto parses an ExchangePayload into the scratch.
func DecodeExchangeInto(s *DecodeScratch, buf []byte) (ExchangePayload, error) {
	r := &reader{buf: buf}
	n, err := r.keyCount()
	if err != nil {
		return ExchangePayload{}, err
	}
	s.keys = scratchSlice(s.keys, n)
	r.readKeys(s.keys)
	if err := r.done(); err != nil {
		return ExchangePayload{}, err
	}
	return ExchangePayload{Keys: s.keys}, nil
}

// DecodeFTExchangeInto parses an FTExchangePayload into the scratch.
func DecodeFTExchangeInto(s *DecodeScratch, buf []byte) (FTExchangePayload, error) {
	r := &reader{buf: buf}
	n, err := r.keyCount()
	if err != nil {
		return FTExchangePayload{}, err
	}
	s.keys = scratchSlice(s.keys, n)
	r.readKeys(s.keys)
	v, err := r.viewInto(s)
	if err != nil {
		return FTExchangePayload{}, err
	}
	if err := r.done(); err != nil {
		return FTExchangePayload{}, err
	}
	return FTExchangePayload{Keys: s.keys, View: v}, nil
}

// DecodeVerifyInto parses a VerifyPayload into the scratch.
func DecodeVerifyInto(s *DecodeScratch, buf []byte) (VerifyPayload, error) {
	r := &reader{buf: buf}
	v, err := r.viewInto(s)
	if err != nil {
		return VerifyPayload{}, err
	}
	if err := r.done(); err != nil {
		return VerifyPayload{}, err
	}
	return VerifyPayload{View: v}, nil
}

// DecodeHostInto parses a HostPayload into the scratch.
func DecodeHostInto(s *DecodeScratch, buf []byte) (HostPayload, error) {
	r := &reader{buf: buf}
	n, err := r.keyCount()
	if err != nil {
		return HostPayload{}, err
	}
	s.keys = scratchSlice(s.keys, n)
	r.readKeys(s.keys)
	if err := r.done(); err != nil {
		return HostPayload{}, err
	}
	return HostPayload{Keys: s.keys}, nil
}

// --- composite payloads ----------------------------------------------------

// ExchangePayload is the body of a KindExchange message: the compare-
// exchange keys only (one key from the passive node, the min/max pair
// back from the active node, or a block of m keys in block sorting).
type ExchangePayload struct {
	Keys []int64
}

// EncodeExchange serializes an ExchangePayload.
func EncodeExchange(p ExchangePayload) []byte {
	return AppendExchange(nil, p.Keys)
}

// AppendExchange appends an ExchangePayload encoding to buf; the
// allocation-free form of EncodeExchange.
func AppendExchange(buf []byte, keys []int64) []byte {
	return AppendKeys(buf, keys)
}

// DecodeExchange parses an ExchangePayload.
func DecodeExchange(buf []byte) (ExchangePayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return ExchangePayload{}, err
	}
	if err := r.done(); err != nil {
		return ExchangePayload{}, err
	}
	return ExchangePayload{Keys: keys}, nil
}

// FTExchangePayload is the body of a KindFTExchange message: the
// compare-exchange keys plus the sender's piggybacked view of the
// current stage's bitonic sequence (LBS).
type FTExchangePayload struct {
	Keys []int64
	View View
}

// EncodeFTExchange serializes an FTExchangePayload.
func EncodeFTExchange(p FTExchangePayload) ([]byte, error) {
	return AppendFTExchange(nil, p)
}

// AppendFTExchange appends an FTExchangePayload encoding to buf; the
// allocation-free form of EncodeFTExchange.
func AppendFTExchange(buf []byte, p FTExchangePayload) ([]byte, error) {
	buf = AppendKeys(buf, p.Keys)
	return AppendView(buf, p.View)
}

// DecodeFTExchange parses an FTExchangePayload.
func DecodeFTExchange(buf []byte) (FTExchangePayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return FTExchangePayload{}, err
	}
	v, err := r.view()
	if err != nil {
		return FTExchangePayload{}, err
	}
	if err := r.done(); err != nil {
		return FTExchangePayload{}, err
	}
	return FTExchangePayload{Keys: keys, View: v}, nil
}

// VerifyPayload is the body of a KindVerify message: the final sorted
// view exchanged in S_FT's last pure-verification stage.
type VerifyPayload struct {
	View View
}

// EncodeVerify serializes a VerifyPayload.
func EncodeVerify(p VerifyPayload) ([]byte, error) {
	return AppendVerify(nil, p)
}

// AppendVerify appends a VerifyPayload encoding to buf; the
// allocation-free form of EncodeVerify.
func AppendVerify(buf []byte, p VerifyPayload) ([]byte, error) {
	return AppendView(buf, p.View)
}

// DecodeVerify parses a VerifyPayload.
func DecodeVerify(buf []byte) (VerifyPayload, error) {
	r := &reader{buf: buf}
	v, err := r.view()
	if err != nil {
		return VerifyPayload{}, err
	}
	if err := r.done(); err != nil {
		return VerifyPayload{}, err
	}
	return VerifyPayload{View: v}, nil
}

// HostPayload is the body of host upload/download messages.
type HostPayload struct {
	Keys []int64
}

// EncodeHost serializes a HostPayload.
func EncodeHost(p HostPayload) []byte { return AppendHost(nil, p.Keys) }

// AppendHost appends a HostPayload encoding to buf; the
// allocation-free form of EncodeHost.
func AppendHost(buf []byte, keys []int64) []byte { return AppendKeys(buf, keys) }

// DecodeHost parses a HostPayload.
func DecodeHost(buf []byte) (HostPayload, error) {
	r := &reader{buf: buf}
	keys, err := r.keys()
	if err != nil {
		return HostPayload{}, err
	}
	if err := r.done(); err != nil {
		return HostPayload{}, err
	}
	return HostPayload{Keys: keys}, nil
}

// ErrorPayload is the body of a node's ERROR signal to the host: which
// constraint predicate failed, what kind of evidence fired it, whom
// the evidence implicates, and a short description.
type ErrorPayload struct {
	Predicate string // "progress", "feasibility", "consistency", "protocol"
	// Kind is the structured evidence class (core.ErrorKind: value,
	// absence, or shape), carried as a raw byte so the wire layer stays
	// free of higher-layer imports. Diagnosis keys off this field;
	// Detail is for humans only.
	Kind uint8
	// Accused is the node the evidence implicates, -1 when none.
	Accused int32
	Detail  string
}

// EncodeError serializes an ErrorPayload.
func EncodeError(p ErrorPayload) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(p.Predicate)))
	buf = append(buf, p.Predicate...)
	buf = append(buf, p.Kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Accused))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Detail)))
	buf = append(buf, p.Detail...)
	return buf
}

// DecodeError parses an ErrorPayload.
func DecodeError(buf []byte) (ErrorPayload, error) {
	r := &reader{buf: buf}
	pred, err := r.str()
	if err != nil {
		return ErrorPayload{}, err
	}
	kind, err := r.u8()
	if err != nil {
		return ErrorPayload{}, err
	}
	acc, err := r.u32()
	if err != nil {
		return ErrorPayload{}, err
	}
	det, err := r.str()
	if err != nil {
		return ErrorPayload{}, err
	}
	if err := r.done(); err != nil {
		return ErrorPayload{}, err
	}
	return ErrorPayload{Predicate: pred, Kind: kind, Accused: int32(acc), Detail: det}, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.buf)-r.off {
		return "", fmt.Errorf("wire: string length %d exceeds remaining buffer: %w", n, ErrTruncated)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}
