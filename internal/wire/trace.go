package wire

import "encoding/binary"

// Causal trace context. Every encoded message carries a fixed 16-byte
// trailer after its payload identifying the send event that produced
// it (origin node + per-node sequence) and the sender's causally
// preceding flight-recorder event. The trailer is part of the frame
// but NOT part of the protocol: the cost model and byte metrics charge
// CostedLen bytes, so enabling tracing never perturbs virtual time,
// and the constraint predicates never read it. It exists purely so the
// forensic layer can reconstruct happens-before chains after an
// accusation.

// EventID names one flight-recorder record globally: the owning node
// label plus two in the top 16 bits (so the host's -1 and the zero
// "no event" value stay distinct from node 0) and the node-local
// sequence number in the low 48 bits. The zero EventID means "none".
type EventID uint64

// MakeEventID packs a node label and a node-local sequence number.
func MakeEventID(node int32, seq uint64) EventID {
	return EventID(uint64(uint16(node+2))<<48 | seq&(1<<48-1))
}

// Node returns the node label the event belongs to (HostID for host
// events).
func (id EventID) Node() int32 { return int32(uint16(id>>48)) - 2 }

// Seq returns the node-local sequence number of the event.
func (id EventID) Seq() uint64 { return uint64(id) & (1<<48 - 1) }

// TraceContext is the causal trailer stamped on every message by the
// sending transport. Origin and Seq name the send event itself;
// Parent is the sender's previous flight-recorder event, letting a
// receiver (or a post-mortem) walk the sender's causal history.
// The zero value means "untraced" and is what untraced transports
// stamp.
type TraceContext struct {
	Origin int32
	Seq    uint32
	Parent EventID
}

// TraceWireLen is the encoded size of the trace trailer:
// origin(4) + seq(4) + parent(8).
const TraceWireLen = 4 + 4 + 8

// ID returns the EventID of the send event this context names, or 0
// for the zero (untraced) context.
func (t TraceContext) ID() EventID {
	if t == (TraceContext{}) {
		return 0
	}
	return MakeEventID(t.Origin, uint64(t.Seq))
}

// appendTrace appends the 16-byte trailer encoding of t to buf.
func appendTrace(buf []byte, t TraceContext) []byte {
	off := len(buf)
	buf = extend(buf, TraceWireLen)
	b := buf[off:]
	binary.LittleEndian.PutUint32(b[0:], uint32(t.Origin))
	binary.LittleEndian.PutUint32(b[4:], t.Seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(t.Parent))
	return buf
}

// decodeTrace parses a 16-byte trailer; the caller has bounds-checked.
func decodeTrace(b []byte) TraceContext {
	return TraceContext{
		Origin: int32(binary.LittleEndian.Uint32(b[0:])),
		Seq:    binary.LittleEndian.Uint32(b[4:]),
		Parent: EventID(binary.LittleEndian.Uint64(b[8:])),
	}
}

// CostedLen returns the byte length the virtual cost model and the
// byte-count metrics charge for an encoded frame of n bytes: the
// trace trailer rides for free, so the virtual-time series of a run
// are bit-identical with and without forensics attached. Frames
// shorter than a trailer (fault-truncated buffers) charge as-is.
func CostedLen(n int) int {
	if n < TraceWireLen {
		return n
	}
	return n - TraceWireLen
}
