package obs

import (
	"sync"
	"time"

	"repro/internal/wire"
)

// Metrics bundles the pre-registered instruments the protocol layers
// record into. Resolving instruments once at construction keeps record
// sites down to a single atomic add — no name lookups, no maps, no
// allocation.
type Metrics struct {
	// MsgsTotal and BytesTotal count transport traffic by message kind
	// (indexed by wire.Kind, like the transports' own counters).
	MsgsTotal  [8]*Counter
	BytesTotal [8]*Counter

	// PhiPass and PhiFail count constraint-predicate evaluations by
	// predicate (indexed by Phi).
	PhiPass [4]*Counter
	PhiFail [4]*Counter

	// MergeCompares counts key comparisons charged by merge-split and
	// bit_compare work — the block sort's dominant computation.
	MergeCompares *Counter

	// DigestHits and DigestMisses count digest-accelerated predicate
	// checks by result: a hit skipped the element-level scan, a miss
	// fell through to it. DigestSlowScans counts the slow-path scans
	// actually run (one per miss; kept separate so the slow-path rate
	// maps directly onto the paper's §5 overhead accounting).
	DigestHits      *Counter
	DigestMisses    *Counter
	DigestSlowScans *Counter

	// Accusations counts ERROR signals that implicate a specific peer.
	Accusations *Counter

	// JournalDropped counts journal events overwritten by the bounded
	// ring — nonzero means /debug/journal is showing a truncated view.
	JournalDropped *Counter

	// Stages and Rounds count completed bitonic stages and
	// compare-exchange rounds across all nodes.
	Stages *Counter
	Rounds *Counter

	// StageVTicks is the per-node virtual-time cost of completed
	// stages.
	StageVTicks *Histogram

	// RecoveryAttempts..RecoveryBackoffNanos are the supervisor's
	// telemetry: total attempts, retries (attempts after the first),
	// verified completions, quarantines, spare substitutions (the
	// subset of quarantines repaired at full dimension), the virtual
	// time burned by failed attempts (the ROADMAP's recovery-cost
	// series), and wall-clock backoff.
	RecoveryAttempts      *Counter
	RecoveryRetries       *Counter
	RecoveryVerified      *Counter
	RecoveryQuarantines   *Counter
	RecoverySubstitutions *Counter
	RecoveryWastedVTicks  *Counter
	RecoveryBackoffNanos  *Counter

	// CostModelCells, CostModelWithin and CostModelDevPpm track the
	// recovery-aware cost model's predictive quality: validated sweep
	// cells, how many predicted measured expected ticks within the
	// acceptance tolerance, and the absolute relative deviation in
	// parts per million.
	CostModelCells  *Counter
	CostModelWithin *Counter
	CostModelDevPpm *Histogram

	// FaultRuns, FaultDetected and FaultSilent count fault-injection
	// runs by adversary class (indexed by FaultClass): total runs,
	// runs some honest node detected, and runs that finished
	// undetected with a wrong output — the Theorem 3 escapes.
	FaultRuns     [NumFaultClasses]*Counter
	FaultDetected [NumFaultClasses]*Counter
	FaultSilent   [NumFaultClasses]*Counter

	// ExploreBranches..ExploreCounterexamples are the interleaving
	// explorer's telemetry: complete schedule branches executed,
	// branches pruned by canonical state-hash match, scheduling
	// decisions consulted, and invariant-violating branches found.
	ExploreBranches        *Counter
	ExplorePruned          *Counter
	ExploreDecisions       *Counter
	ExploreCounterexamples *Counter
}

// NewMetrics registers the standard instrument set on reg and returns
// the bundle.
func NewMetrics(reg *Registry) *Metrics {
	m := &Metrics{}
	for k := wire.KindExchange; k <= wire.KindError; k++ {
		m.MsgsTotal[k] = reg.Counter("sort_msgs_total",
			"Messages sent, by wire kind.", Label{"kind", k.String()})
		m.BytesTotal[k] = reg.Counter("sort_wire_bytes_total",
			"Wire bytes sent, by message kind.", Label{"kind", k.String()})
	}
	for _, phi := range []Phi{PhiP, PhiF, PhiC} {
		m.PhiPass[phi] = reg.Counter("sort_phi_checks_total",
			"Constraint predicate evaluations, by predicate and verdict.",
			Label{"phi", phi.String()}, Label{"result", "pass"})
		m.PhiFail[phi] = reg.Counter("sort_phi_checks_total",
			"Constraint predicate evaluations, by predicate and verdict.",
			Label{"phi", phi.String()}, Label{"result", "fail"})
	}
	m.MergeCompares = reg.Counter("sort_merge_compares_total",
		"Key comparisons charged by merge-split and bit_compare work.")
	m.DigestHits = reg.Counter("sort_digest_checks_total",
		"Digest-accelerated predicate checks, by result.",
		Label{"result", "hit"})
	m.DigestMisses = reg.Counter("sort_digest_checks_total",
		"Digest-accelerated predicate checks, by result.",
		Label{"result", "miss"})
	m.DigestSlowScans = reg.Counter("sort_digest_slow_scans_total",
		"Element-level slow-path scans run after a digest mismatch.")
	m.Accusations = reg.Counter("sort_accusations_total",
		"ERROR signals implicating a specific peer.")
	m.JournalDropped = reg.Counter("obs_journal_dropped_total",
		"Journal events overwritten by the bounded ring.")
	m.Stages = reg.Counter("sort_stages_total",
		"Completed bitonic stages across all nodes (final verification included).")
	m.Rounds = reg.Counter("sort_rounds_total",
		"Completed compare-exchange (merge-split) rounds across all nodes.")
	m.StageVTicks = reg.Histogram("sort_stage_vticks",
		"Per-node virtual-time cost of completed stages, in ticks.",
		DefaultVTickBuckets())
	m.RecoveryAttempts = reg.Counter("recovery_attempts_total",
		"Sort attempts driven by the recovery supervisor.")
	m.RecoveryRetries = reg.Counter("recovery_retries_total",
		"Recovery attempts after the first (retries and quarantined re-runs).")
	m.RecoveryVerified = reg.Counter("recovery_verified_total",
		"Supervised runs that ended with a verified result.")
	m.RecoveryQuarantines = reg.Counter("recovery_quarantines_total",
		"Nodes quarantined for persistent accusations.")
	m.RecoverySubstitutions = reg.Counter("recovery_substitutions_total",
		"Quarantined nodes replaced by spares at full cube dimension.")
	m.RecoveryWastedVTicks = reg.Counter("recovery_wasted_vticks_total",
		"Virtual time burned by failed attempts (the recovery cost series).")
	m.RecoveryBackoffNanos = reg.Counter("recovery_backoff_nanos_total",
		"Wall-clock nanoseconds spent in between-attempt backoff.")
	m.CostModelCells = reg.Counter("recovery_costmodel_cells_total",
		"Sweep cells validated against the recovery-aware cost model.")
	m.CostModelWithin = reg.Counter("recovery_costmodel_within_tolerance_total",
		"Validated cells whose modeled expected ticks matched measurement within tolerance.")
	m.CostModelDevPpm = reg.Histogram("recovery_costmodel_abs_deviation_ppm",
		"Absolute modeled-vs-measured deviation of expected total vticks, in parts per million.",
		[]int64{1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000})
	for c := FaultClass(0); c < NumFaultClasses; c++ {
		m.FaultRuns[c] = reg.Counter("fault_injection_runs_total",
			"Fault-injection runs, by adversary class.", Label{"class", c.String()})
		m.FaultDetected[c] = reg.Counter("fault_injection_detected_total",
			"Fault-injection runs detected by some honest node, by adversary class.",
			Label{"class", c.String()})
		m.FaultSilent[c] = reg.Counter("fault_injection_silent_wrong_total",
			"Fault-injection runs that finished undetected with a wrong output, by adversary class.",
			Label{"class", c.String()})
	}
	m.ExploreBranches = reg.Counter("explore_branches_total",
		"Complete schedule branches executed by the interleaving explorer.")
	m.ExplorePruned = reg.Counter("explore_pruned_total",
		"Branch prefixes pruned by canonical state-hash match.")
	m.ExploreDecisions = reg.Counter("explore_decisions_total",
		"Scheduling decisions consulted across explored branches.")
	m.ExploreCounterexamples = reg.Counter("explore_counterexamples_total",
		"Invariant-violating branches found by the explorer.")
	return m
}

// RecordMessage counts one sent message of the given kind and encoded
// size. Nil-safe and allocation-free; the transports call this on
// every send.
func (m *Metrics) RecordMessage(kind wire.Kind, bytes int) {
	if m == nil || int(kind) >= len(m.MsgsTotal) {
		return
	}
	m.MsgsTotal[kind].Inc()
	m.BytesTotal[kind].Add(int64(bytes))
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
	defaultObsOnce     sync.Once
	defaultObs         *Observer
)

// DefaultMetrics returns the process-wide Metrics bundle, registered
// on DefaultRegistry. The transports record message traffic here when
// no explicit bundle is injected.
func DefaultMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(defaultRegistry) })
	return defaultMetrics
}

// Default returns the process-wide Observer: DefaultMetrics plus a
// DefaultJournalCap journal, on DefaultRegistry. This is what the
// commands' -obs.listen endpoint serves.
func Default() *Observer {
	defaultObsOnce.Do(func() {
		defaultObs = &Observer{M: DefaultMetrics(), J: NewJournal(DefaultJournalCap)}
		defaultObs.J.BindDroppedCounter(defaultObs.M.JournalDropped)
	})
	return defaultObs
}

// StageView is the verified assembled sequence a node holds at the end
// of a stage — the paper's LBS — published on the unified event stream
// for subscribers such as internal/trace. Assembled aliases the
// producer's scratch and is valid only for the duration of the
// callback: subscribers that retain it must copy.
type StageView struct {
	// Node is the reporting node.
	Node int
	// Stage is the completed stage index (the cube dimension for the
	// final verification round).
	Stage int
	// Final marks the final verification round.
	Final bool
	// SubcubeStart and SubcubeSize locate the home subcube the
	// sequence covers.
	SubcubeStart int
	SubcubeSize  int
	// BlockLen is the keys-per-slot width (1 for the scalar sort).
	BlockLen int
	// Assembled is the gathered verified sequence.
	Assembled []int64
	// Causal is the publishing node's most recent flight-recorder event
	// id at publish time (zero when the run is untraced). It joins the
	// stage-view stream — and anything downstream of it, such as
	// cmd/tracesort output — against forensic dump chains.
	Causal wire.EventID
}

// StageSubscriber receives stage views from the unified event stream.
type StageSubscriber interface {
	OnStageView(v StageView)
}

// Observer is the façade protocol code records through: metrics,
// journal spans, and the stage-view stream. A single Observer is
// shared by every node of a run (its parts are concurrency-safe).
// All methods are nil-receiver safe so un-instrumented call sites pay
// one branch and nothing else.
type Observer struct {
	// M receives counters and histograms; nil disables metrics.
	M *Metrics
	// J receives span and check events; nil disables the journal.
	J *Journal

	// mu guards subs; subscription happens at setup, publishing on the
	// protocol's stage boundaries (not per-message), so a read lock per
	// stage is cheap.
	mu   sync.RWMutex
	subs []StageSubscriber
}

// New returns an Observer with a fresh Metrics bundle on reg and a
// journal of the given capacity (DefaultJournalCap when <= 0).
func New(reg *Registry, journalCap int) *Observer {
	o := &Observer{M: NewMetrics(reg), J: NewJournal(journalCap)}
	o.J.BindDroppedCounter(o.M.JournalDropped)
	return o
}

// Subscribe registers a stage-view subscriber.
func (o *Observer) Subscribe(s StageSubscriber) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.subs = append(o.subs, s)
	o.mu.Unlock()
}

// PublishStage fans a stage view out to all subscribers.
func (o *Observer) PublishStage(v StageView) {
	if o == nil {
		return
	}
	o.mu.RLock()
	subs := o.subs
	o.mu.RUnlock()
	for _, s := range subs {
		s.OnStageView(v)
	}
}

// Journal returns the observer's journal (nil for a nil observer).
func (o *Observer) Journal() *Journal {
	if o == nil {
		return nil
	}
	return o.J
}

// Metrics returns the observer's metrics bundle (nil for a nil
// observer).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.M
}

// StageBegin records the start of stage stage on node node at virtual
// time vticks. Label "final-verify" replaces "stage" when final.
func (o *Observer) StageBegin(node, stage int, final bool, vticks int64) {
	if o == nil {
		return
	}
	label := "stage"
	if final {
		label = "final-verify"
	}
	o.J.Append(Event{Kind: EvStageBegin, Label: label,
		Node: int32(node), Stage: int32(stage), Iter: -1, VTicks: vticks})
}

// StageEnd records the completion of a stage, observing its
// virtual-time cost (endVT-beginVT) in the stage histogram.
func (o *Observer) StageEnd(node, stage int, final bool, beginVT, endVT int64) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.Stages.Inc()
		o.M.StageVTicks.Observe(endVT - beginVT)
	}
	label := "stage"
	if final {
		label = "final-verify"
	}
	o.J.Append(Event{Kind: EvStageEnd, Label: label,
		Node: int32(node), Stage: int32(stage), Iter: -1,
		VTicks: endVT, Aux: endVT - beginVT})
}

// RoundBegin records the start of the (stage, iter) compare-exchange
// round on node node.
func (o *Observer) RoundBegin(node, stage, iter int, vticks int64) {
	if o == nil {
		return
	}
	o.J.Append(Event{Kind: EvRoundBegin, Label: "round",
		Node: int32(node), Stage: int32(stage), Iter: int32(iter), VTicks: vticks})
}

// RoundEnd records the completion of a compare-exchange round.
func (o *Observer) RoundEnd(node, stage, iter int, vticks int64) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.Rounds.Inc()
	}
	o.J.Append(Event{Kind: EvRoundEnd, Label: "round",
		Node: int32(node), Stage: int32(stage), Iter: int32(iter), VTicks: vticks})
}

// PhiCheck records one evaluation of constraint predicate phi.
func (o *Observer) PhiCheck(phi Phi, node, stage, iter int, pass bool, vticks int64) {
	if o == nil {
		return
	}
	if o.M != nil && int(phi) < len(o.M.PhiPass) {
		if pass {
			o.M.PhiPass[phi].Inc()
		} else {
			o.M.PhiFail[phi].Inc()
		}
	}
	o.J.Append(Event{Kind: EvPhiCheck, Label: phi.String(),
		Node: int32(node), Stage: int32(stage), Iter: int32(iter),
		Pass: pass, VTicks: vticks})
}

// Accusation records node implicating accused at (stage, iter).
func (o *Observer) Accusation(node, stage, iter, accused int, vticks int64) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.Accusations.Inc()
	}
	o.J.Append(Event{Kind: EvAccusation,
		Node: int32(node), Stage: int32(stage), Iter: int32(iter),
		VTicks: vticks, Aux: int64(accused)})
}

// MergeCompares counts n key comparisons of merge-split/bit_compare
// work.
func (o *Observer) MergeCompares(n int) {
	if o == nil || o.M == nil {
		return
	}
	o.M.MergeCompares.Add(int64(n))
}

// DigestCheck records one digest-accelerated predicate check.
// Metrics-only (no journal event): digest checks happen on the hot
// merge path and must stay allocation-free.
func (o *Observer) DigestCheck(hit bool) {
	if o == nil || o.M == nil {
		return
	}
	if hit {
		o.M.DigestHits.Inc()
	} else {
		o.M.DigestMisses.Inc()
	}
}

// DigestSlowScan records one element-level slow-path scan run after a
// digest mismatch.
func (o *Observer) DigestSlowScan() {
	if o == nil || o.M == nil {
		return
	}
	o.M.DigestSlowScans.Inc()
}

// SpanBegin records the start of a labeled phase outside the bitonic
// schedule (host upload/sort/download and similar). label must be a
// constant string.
func (o *Observer) SpanBegin(label string, node int, vticks int64) {
	if o == nil {
		return
	}
	o.J.Append(Event{Kind: EvSpanBegin, Label: label,
		Node: int32(node), Stage: -1, Iter: -1, VTicks: vticks})
}

// SpanEnd records the end of a labeled phase.
func (o *Observer) SpanEnd(label string, node int, vticks int64) {
	if o == nil {
		return
	}
	o.J.Append(Event{Kind: EvSpanEnd, Label: label,
		Node: int32(node), Stage: -1, Iter: -1, VTicks: vticks})
}

// AttemptBegin records the start of recovery attempt attempt on a
// cube of dimension dim.
func (o *Observer) AttemptBegin(attempt, dim int) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.RecoveryAttempts.Inc()
		if attempt > 0 {
			o.M.RecoveryRetries.Inc()
		}
	}
	o.J.Append(Event{Kind: EvAttemptBegin, Label: "attempt",
		Node: -1, Stage: int32(attempt), Iter: int32(dim)})
}

// AttemptEnd records the outcome of a recovery attempt: its
// virtual-time cost and whether it produced a verified result. Failed
// attempts accumulate into the wasted-vticks counter.
func (o *Observer) AttemptEnd(attempt, dim int, costVT int64, verified bool) {
	if o == nil {
		return
	}
	if o.M != nil {
		if verified {
			o.M.RecoveryVerified.Inc()
		} else {
			o.M.RecoveryWastedVTicks.Add(costVT)
		}
	}
	o.J.Append(Event{Kind: EvAttemptEnd, Label: "attempt",
		Node: -1, Stage: int32(attempt), Iter: int32(dim),
		Pass: verified, VTicks: costVT, Aux: costVT})
}

// Quarantine records physical node node being dropped after attempt
// attempt.
func (o *Observer) Quarantine(node, attempt int) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.RecoveryQuarantines.Inc()
	}
	o.J.Append(Event{Kind: EvQuarantine,
		Node: int32(node), Stage: int32(attempt), Iter: -1})
}

// Substitution records spare taking over the logical slot of the
// quarantined physical node suspect after attempt attempt, preserving
// the full cube dimension. Emitted alongside Quarantine: every
// substitution is a quarantine, but not every quarantine finds a
// spare.
func (o *Observer) Substitution(suspect, spare, attempt int) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.RecoverySubstitutions.Inc()
	}
	o.J.Append(Event{Kind: EvSubstitution,
		Node: int32(suspect), Stage: int32(attempt), Iter: -1, Aux: int64(spare)})
}

// CostModelPoint records one modeled-vs-measured validation of the
// recovery-aware cost model: the absolute relative deviation of the
// predicted expected total vticks (as a fraction; recorded in ppm) and
// whether it landed within the acceptance tolerance.
func (o *Observer) CostModelPoint(absRelDev float64, withinTol bool) {
	if o == nil || o.M == nil {
		return
	}
	o.M.CostModelCells.Inc()
	if withinTol {
		o.M.CostModelWithin.Inc()
	}
	o.M.CostModelDevPpm.Observe(int64(absRelDev * 1e6))
}

// Backoff records a between-attempt wait.
func (o *Observer) Backoff(d time.Duration) {
	if o == nil {
		return
	}
	if o.M != nil {
		o.M.RecoveryBackoffNanos.Add(int64(d))
	}
	o.J.Append(Event{Kind: EvBackoff, Node: -1, Stage: -1, Iter: -1, Aux: int64(d)})
}
