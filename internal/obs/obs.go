// Package obs is the repository's unified observability layer: a
// process-wide but injectable core of metrics, protocol spans, and a
// bounded event journal, with Prometheus and JSON exporters and an
// HTTP introspection endpoint.
//
// The paper's whole argument is that visibility into the running
// algorithm — the constraint predicate Φ = (Φ_P, Φ_F, Φ_C) — *is* the
// fault tolerance. This package turns the same visibility outward:
// every Φ evaluation, compare-exchange round, stage boundary, and
// recovery attempt can be counted, timed (in both virtual ticks and
// wall time), journaled, and scraped, without perturbing the quantities
// the paper measures.
//
// Design constraints, in order:
//
//  1. Recording must be allocation-free. The PR-2 steady-state message
//     path performs zero allocations per exchange, and attaching an
//     Observer must keep it that way: counters and gauges are single
//     atomic adds, histograms are an atomic add into a fixed bucket,
//     and journal events are fixed-size structs copied into a
//     preallocated ring under a mutex.
//  2. Recording must not touch virtual time. Observability reads
//     endpoint clocks; it never charges them, so every virtual-tick
//     series (vticks, vcomm, vcomp, msgs, wirebytes) is bit-identical
//     with and without an Observer attached.
//  3. Everything is injectable. Registries, journals, and observers
//     are plain values; Default()/DefaultMetrics() provide the
//     process-wide instance the commands serve over HTTP, but tests
//     and libraries can build private ones.
//
// The pieces:
//
//   - Registry (registry.go): named counters, gauges, and fixed-bucket
//     histograms, exported as Prometheus text and JSON (export.go).
//   - Journal (journal.go): a bounded ring buffer of protocol Events
//     with an optional slog sink.
//   - Observer (observer.go): the façade protocol code records
//     through — stage/round spans, Φ checks, accusations, recovery
//     attempts — plus the stage-view stream internal/trace subscribes
//     to. All methods are nil-receiver safe, so un-instrumented runs
//     pay a single predictable branch.
//   - Handler/Serve (http.go): /metrics and /debug/journal.
package obs

import "fmt"

// Phi identifies one of the paper's three constraint predicates.
type Phi uint8

const (
	// PhiP is Φ_P, the progress (shape) predicate.
	PhiP Phi = iota + 1
	// PhiF is Φ_F, the feasibility (permutation) predicate.
	PhiF
	// PhiC is Φ_C, the consistency (cross-copy agreement) predicate.
	PhiC
)

// phiNames is indexed by Phi.
var phiNames = [...]string{PhiP: "P", PhiF: "F", PhiC: "C"}

// String returns the predicate's short name ("P", "F", "C").
func (p Phi) String() string {
	if int(p) < len(phiNames) && phiNames[p] != "" {
		return phiNames[p]
	}
	return fmt.Sprintf("phi(%d)", uint8(p))
}

// EventKind discriminates journal events.
type EventKind uint8

const (
	// EvStageBegin/EvStageEnd bracket one bitonic stage (or the final
	// verification round, Label "final-verify") on one node.
	EvStageBegin EventKind = iota + 1
	EvStageEnd
	// EvRoundBegin/EvRoundEnd bracket one compare-exchange (or
	// merge-split) round on one node.
	EvRoundBegin
	EvRoundEnd
	// EvPhiCheck is one evaluation of a constraint predicate; Pass
	// records the verdict and Label names the predicate.
	EvPhiCheck
	// EvAccusation is a node implicating a peer (Aux = accused label).
	EvAccusation
	// EvSpanBegin/EvSpanEnd bracket a labeled phase outside the bitonic
	// schedule (host upload/sort/download, run-level phases).
	EvSpanBegin
	EvSpanEnd
	// EvAttemptBegin/EvAttemptEnd bracket one recovery attempt
	// (Stage = attempt index, Iter = cube dimension; on end Aux = the
	// attempt's virtual-time cost and Pass = verified).
	EvAttemptBegin
	EvAttemptEnd
	// EvQuarantine records a persistent suspect being dropped
	// (Node = physical label, Stage = attempt index).
	EvQuarantine
	// EvBackoff records a between-attempt wait (Aux = nanoseconds).
	EvBackoff
	// EvSubstitution records a spare node being activated at a
	// quarantined suspect's logical slot, preserving the cube dimension
	// (Node = suspect physical label, Aux = spare physical label,
	// Stage = attempt index).
	EvSubstitution
)

// eventKindNames is indexed by EventKind.
var eventKindNames = [...]string{
	EvStageBegin:   "stage-begin",
	EvStageEnd:     "stage-end",
	EvRoundBegin:   "round-begin",
	EvRoundEnd:     "round-end",
	EvPhiCheck:     "phi-check",
	EvAccusation:   "accusation",
	EvSpanBegin:    "span-begin",
	EvSpanEnd:      "span-end",
	EvAttemptBegin: "attempt-begin",
	EvAttemptEnd:   "attempt-end",
	EvQuarantine:   "quarantine",
	EvBackoff:      "backoff",
	EvSubstitution: "substitution",
}

// String returns the kind's kebab-case name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one fixed-size journal record. Producers fill the fields
// relevant to the Kind and leave the rest zero; Seq and Wall are
// stamped by the Journal at append time.
type Event struct {
	// Seq is the journal-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
	// Kind discriminates the event.
	Kind EventKind `json:"kind"`
	// Label names the span or predicate ("stage", "final-verify",
	// "round", "P", "upload", ...). Always a constant string, so
	// assigning it allocates nothing.
	Label string `json:"label,omitempty"`
	// Node is the acting node's label (-1 for the host/supervisor).
	Node int32 `json:"node"`
	// Stage and Iter locate the event in the bitonic schedule (or the
	// attempt index/dimension for recovery events). -1 when not
	// applicable.
	Stage int32 `json:"stage"`
	Iter  int32 `json:"iter"`
	// Pass is the verdict for EvPhiCheck and EvAttemptEnd.
	Pass bool `json:"pass,omitempty"`
	// VTicks is the producer's virtual clock when the event fired.
	VTicks int64 `json:"vticks"`
	// Wall is the wall-clock time in Unix nanoseconds, stamped at
	// append.
	Wall int64 `json:"wall"`
	// Aux is a kind-specific scalar: accused node for EvAccusation,
	// attempt cost for EvAttemptEnd, nanoseconds for EvBackoff.
	Aux int64 `json:"aux,omitempty"`
}
