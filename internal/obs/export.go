package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP and # TYPE lines per
// family, one sample line per series, histograms expanded into
// cumulative _bucket{le=...} samples plus _sum and _count. Families
// are sorted by name and series by label key, so output is
// deterministic given the same counter values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.c.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.g.Value())
		return err
	case typeHistogram:
		return writeHistogram(w, f.name, s)
	}
	return nil
}

// writeHistogram emits the cumulative bucket expansion. The le label
// is appended to the series' own labels.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, bucketKey(s.key, fmt.Sprintf("%d", bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketKey(s.key, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, s.key, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, h.Count())
	return err
}

// bucketKey merges an le="..." label into an existing rendered label
// set.
func bucketKey(key, le string) string {
	if key == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(key, "}"), le)
}

// SnapshotSeries is one exported series in a JSON snapshot.
type SnapshotSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// Histogram-only fields.
	Buckets []SnapshotBucket `json:"buckets,omitempty"`
	Sum     int64            `json:"sum,omitempty"`
	Count   int64            `json:"count,omitempty"`
}

// SnapshotBucket is one cumulative histogram bucket; UpperBound is 0
// with Inf=true for the +Inf bucket.
type SnapshotBucket struct {
	UpperBound int64 `json:"le"`
	Inf        bool  `json:"inf,omitempty"`
	Count      int64 `json:"count"`
}

// SnapshotFamily is one metric family in a JSON snapshot.
type SnapshotFamily struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SnapshotSeries `json:"series"`
}

// Snapshot returns a point-in-time copy of every registered metric,
// in the same deterministic order as WritePrometheus.
func (r *Registry) Snapshot() []SnapshotFamily {
	fams := r.sortedFamilies()
	out := make([]SnapshotFamily, 0, len(fams))
	for _, f := range fams {
		sf := SnapshotFamily{Name: f.name, Help: f.help, Type: f.typ.String()}
		for _, s := range f.series {
			ss := SnapshotSeries{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				ss.Value = s.c.Value()
			case typeGauge:
				ss.Value = s.g.Value()
			case typeHistogram:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					ss.Buckets = append(ss.Buckets, SnapshotBucket{UpperBound: bound, Count: cum})
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				ss.Buckets = append(ss.Buckets, SnapshotBucket{Inf: true, Count: cum})
				ss.Sum = s.h.Sum()
				ss.Count = s.h.Count()
			}
			sf.Series = append(sf.Series, ss)
		}
		out = append(out, sf)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
