package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// DefaultJournalCap is the journal capacity used when callers pass a
// non-positive capacity: enough for every stage, round, and Φ event of
// a dimension-5 block sort without wrapping.
const DefaultJournalCap = 4096

// Journal is a bounded ring buffer of protocol Events. Appending is
// allocation-free: the ring is preallocated and events are fixed-size
// structs copied by value; once full, the oldest events are
// overwritten (Dropped counts them). Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	next    uint64 // total events ever appended; next%cap is the write slot
	dropped uint64 // events overwritten after the ring filled

	// dropCtr, when non-nil, mirrors dropped into a registry counter
	// (obs_journal_dropped_total) so scrapes see losses without holding
	// the journal lock.
	dropCtr *Counter

	// sink, when non-nil, additionally receives every event as a
	// structured log record. The sink path allocates (slog attrs), so
	// hot protocol loops leave it unset and attach one only while
	// debugging.
	sink *slog.Logger
}

// NewJournal returns a journal holding up to capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, 0, capacity)}
}

// SetSink attaches (or with nil detaches) an slog logger that receives
// every subsequent event as a structured record at LevelDebug.
func (j *Journal) SetSink(l *slog.Logger) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = l
	j.mu.Unlock()
}

// Append stamps ev's Seq and Wall fields and stores it, overwriting
// the oldest event when full.
func (j *Journal) Append(ev Event) {
	if j == nil {
		return
	}
	ev.Wall = time.Now().UnixNano()
	j.mu.Lock()
	ev.Seq = j.next
	j.next++
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[int(ev.Seq)%cap(j.ring)] = ev
		j.dropped++
		j.dropCtr.Inc()
	}
	sink := j.sink
	j.mu.Unlock()
	if sink != nil {
		sink.LogAttrs(context.Background(), slog.LevelDebug, ev.Kind.String(),
			slog.Uint64("seq", ev.Seq),
			slog.String("label", ev.Label),
			slog.Int("node", int(ev.Node)),
			slog.Int("stage", int(ev.Stage)),
			slog.Int("iter", int(ev.Iter)),
			slog.Bool("pass", ev.Pass),
			slog.Int64("vticks", ev.VTicks),
			slog.Int64("aux", ev.Aux),
		)
	}
}

// Events returns a copy of the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if int(j.next) > cap(j.ring) {
		// Wrapped: the oldest retained event sits at the write cursor.
		start := int(j.next) % cap(j.ring)
		out = append(out, j.ring[start:]...)
		out = append(out, j.ring[:start]...)
		return out
	}
	return append(out, j.ring...)
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ring)
}

// Total returns the number of events ever appended.
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events have been overwritten.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// BindDroppedCounter mirrors every future overwrite into c (typically
// the obs_journal_dropped_total registry counter), seeding it with
// overwrites that already happened.
func (j *Journal) BindDroppedCounter(c *Counter) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.dropCtr = c
	c.Add(int64(j.dropped))
	j.mu.Unlock()
}
