package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; registry-created counters are exported.
// All methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (either sign).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram over int64
// observations. Bucket bounds are set at registration; Observe is a
// linear scan over a handful of bounds plus two atomic adds, so
// recording allocates nothing.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DefaultVTickBuckets are the bounds used for virtual-tick duration
// histograms: roughly geometric, spanning a single cheap exchange
// (thousands of ticks) to a large block stage (hundreds of millions).
func DefaultVTickBuckets() []int64 {
	return []int64{
		1_000, 10_000, 30_000, 100_000, 300_000,
		1_000_000, 3_000_000, 10_000_000, 30_000_000,
		100_000_000, 300_000_000, 1_000_000_000,
	}
}

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// metricType discriminates registered families.
type metricType uint8

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one label set of a family.
type series struct {
	labels []Label
	key    string // rendered label string, the dedup key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds named metrics for export. Registration takes a
// mutex and may allocate; recording on the returned instruments never
// does. The zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry served by the commands'
// -obs.listen endpoint.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// renderLabels produces the canonical `{k="v",...}` form ("" for no
// labels), used both as the series dedup key and in the Prometheus
// exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for (name, labels), enforcing
// type and help consistency across the family.
func (r *Registry) lookup(name, help string, typ metricType, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, re-registered as %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	for _, s := range f.series {
		if s.key == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use. Registering the same (name, labels) twice
// returns the same counter; registering the name with a different
// metric type panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram named name with the given bucket
// bounds (ascending). The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return s.h
}

// sortedFamilies snapshots the families sorted by name, each with its
// series sorted by label key — the deterministic export order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, f := range out {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	}
	return out
}
