package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestJournalAppendAndOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Append(Event{Kind: EvRoundBegin, Iter: int32(i)})
	}
	evs := j.Events()
	if len(evs) != 5 || j.Len() != 5 || j.Total() != 5 || j.Dropped() != 0 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 5/5/0", j.Len(), j.Total(), j.Dropped())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Iter != int32(i) {
			t.Fatalf("event %d out of order: seq=%d iter=%d", i, ev.Seq, ev.Iter)
		}
		if ev.Wall == 0 {
			t.Fatalf("event %d missing wall stamp", i)
		}
	}
}

func TestJournalWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EvRoundBegin, Iter: int32(i)})
	}
	if j.Len() != 4 || j.Total() != 10 || j.Dropped() != 6 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 4/10/6", j.Len(), j.Total(), j.Dropped())
	}
	evs := j.Events()
	for i, ev := range evs {
		want := int32(6 + i) // oldest retained is event 6
		if ev.Iter != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d: seq=%d iter=%d, want %d", i, ev.Seq, ev.Iter, want)
		}
	}
}

func TestJournalDroppedCounter(t *testing.T) {
	reg := NewRegistry()
	o := New(reg, 4)
	for i := 0; i < 10; i++ {
		o.Journal().Append(Event{Kind: EvRoundBegin, Iter: int32(i)})
	}
	if got := o.Metrics().JournalDropped.Value(); got != 6 {
		t.Fatalf("obs_journal_dropped_total = %d, want 6", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_journal_dropped_total 6") {
		t.Fatalf("exposition missing dropped counter:\n%s", buf.String())
	}

	// Binding after the ring has already wrapped seeds the counter with
	// the drops that happened before it was attached.
	j := NewJournal(2)
	for i := 0; i < 5; i++ {
		j.Append(Event{Kind: EvBackoff})
	}
	c := NewRegistry().Counter("obs_journal_dropped_total", "test")
	j.BindDroppedCounter(c)
	if c.Value() != 3 {
		t.Fatalf("late-bound counter = %d, want 3 pre-bind drops", c.Value())
	}
	j.Append(Event{Kind: EvBackoff})
	if c.Value() != 4 {
		t.Fatalf("counter after one more drop = %d, want 4", c.Value())
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(Event{Kind: EvBackoff})
	j.SetSink(slog.Default())
	if j.Events() != nil || j.Len() != 0 || j.Total() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal should be inert")
	}
}

func TestJournalSlogSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(4)
	j.SetSink(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	j.Append(Event{Kind: EvPhiCheck, Label: "P", Node: 3, Stage: 1, Iter: 0, Pass: true, VTicks: 77})
	out := buf.String()
	for _, want := range []string{"phi-check", "label=P", "node=3", "pass=true", "vticks=77"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sink output missing %q:\n%s", want, out)
		}
	}
	// Detach and confirm silence.
	j.SetSink(nil)
	buf.Reset()
	j.Append(Event{Kind: EvBackoff})
	if buf.Len() != 0 {
		t.Fatalf("detached sink still received output: %s", buf.String())
	}
}
