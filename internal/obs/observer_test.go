package obs

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	// Every method on a nil observer must be a no-op, since protocol
	// code calls them unconditionally.
	o.StageBegin(0, 0, false, 0)
	o.StageEnd(0, 0, false, 0, 10)
	o.RoundBegin(0, 0, 0, 0)
	o.RoundEnd(0, 0, 0, 0)
	o.PhiCheck(PhiP, 0, 0, 0, true, 0)
	o.Accusation(0, 0, 0, 1, 0)
	o.MergeCompares(5)
	o.SpanBegin("x", 0, 0)
	o.SpanEnd("x", 0, 0)
	o.AttemptBegin(0, 3)
	o.AttemptEnd(0, 3, 100, true)
	o.Quarantine(2, 0)
	o.Backoff(time.Millisecond)
	o.PublishStage(StageView{})
	o.Subscribe(nil)
	if o.Journal() != nil || o.Metrics() != nil {
		t.Fatal("nil observer accessors should return nil")
	}
}

func TestObserverRecordsMetricsAndJournal(t *testing.T) {
	o := New(NewRegistry(), 64)
	o.StageBegin(1, 0, false, 100)
	o.RoundBegin(1, 0, 0, 100)
	o.PhiCheck(PhiP, 1, 0, 0, true, 150)
	o.PhiCheck(PhiF, 1, 0, 0, false, 160)
	o.RoundEnd(1, 0, 0, 200)
	o.StageEnd(1, 0, false, 100, 400)
	o.Accusation(1, 0, 0, 3, 410)
	o.MergeCompares(17)
	o.AttemptBegin(0, 3)
	o.AttemptEnd(0, 3, 9000, false)
	o.AttemptBegin(1, 3)
	o.AttemptEnd(1, 3, 8000, true)
	o.Quarantine(5, 1)
	o.Backoff(2 * time.Millisecond)

	m := o.M
	if m.Stages.Value() != 1 || m.Rounds.Value() != 1 {
		t.Fatalf("stages/rounds = %d/%d", m.Stages.Value(), m.Rounds.Value())
	}
	if m.PhiPass[PhiP].Value() != 1 || m.PhiFail[PhiF].Value() != 1 || m.PhiFail[PhiP].Value() != 0 {
		t.Fatal("phi counters wrong")
	}
	if m.Accusations.Value() != 1 || m.MergeCompares.Value() != 17 {
		t.Fatal("accusation/compare counters wrong")
	}
	if m.StageVTicks.Count() != 1 || m.StageVTicks.Sum() != 300 {
		t.Fatalf("stage histogram count/sum = %d/%d", m.StageVTicks.Count(), m.StageVTicks.Sum())
	}
	if m.RecoveryAttempts.Value() != 2 || m.RecoveryRetries.Value() != 1 {
		t.Fatalf("attempts/retries = %d/%d", m.RecoveryAttempts.Value(), m.RecoveryRetries.Value())
	}
	if m.RecoveryVerified.Value() != 1 || m.RecoveryWastedVTicks.Value() != 9000 {
		t.Fatalf("verified/wasted = %d/%d", m.RecoveryVerified.Value(), m.RecoveryWastedVTicks.Value())
	}
	if m.RecoveryQuarantines.Value() != 1 {
		t.Fatal("quarantine counter wrong")
	}
	if m.RecoveryBackoffNanos.Value() != int64(2*time.Millisecond) {
		t.Fatal("backoff counter wrong")
	}

	evs := o.J.Events()
	// MergeCompares is metrics-only, so 13 of the 14 calls journal.
	if len(evs) != 13 {
		t.Fatalf("journal has %d events, want 13", len(evs))
	}
	if evs[0].Kind != EvStageBegin || evs[0].Label != "stage" {
		t.Fatalf("first event %+v", evs[0])
	}
	end := evs[5]
	if end.Kind != EvStageEnd || end.Aux != 300 || end.VTicks != 400 {
		t.Fatalf("stage end event %+v", end)
	}
	acc := evs[6]
	if acc.Kind != EvAccusation || acc.Aux != 3 {
		t.Fatalf("accusation event %+v", acc)
	}
}

func TestRecordMessage(t *testing.T) {
	m := NewMetrics(NewRegistry())
	m.RecordMessage(wire.KindExchange, 40)
	m.RecordMessage(wire.KindExchange, 40)
	m.RecordMessage(wire.KindFTExchange, 100)
	m.RecordMessage(wire.Kind(200), 7) // out of range: ignored
	if m.MsgsTotal[wire.KindExchange].Value() != 2 ||
		m.BytesTotal[wire.KindExchange].Value() != 80 {
		t.Fatal("exchange counters wrong")
	}
	if m.MsgsTotal[wire.KindFTExchange].Value() != 1 ||
		m.BytesTotal[wire.KindFTExchange].Value() != 100 {
		t.Fatal("ft-exchange counters wrong")
	}
	var nilM *Metrics
	nilM.RecordMessage(wire.KindExchange, 1) // nil-safe
}

type captureSub struct{ views []StageView }

func (c *captureSub) OnStageView(v StageView) {
	// Assembled aliases producer scratch; a real subscriber copies.
	v.Assembled = append([]int64(nil), v.Assembled...)
	c.views = append(c.views, v)
}

func TestPublishStageFansOut(t *testing.T) {
	o := New(NewRegistry(), 8)
	a, b := &captureSub{}, &captureSub{}
	o.Subscribe(a)
	o.Subscribe(b)
	o.PublishStage(StageView{Node: 2, Stage: 1, Assembled: []int64{3, 1, 2}})
	if len(a.views) != 1 || len(b.views) != 1 {
		t.Fatal("both subscribers should receive the view")
	}
	if a.views[0].Node != 2 || a.views[0].Assembled[0] != 3 {
		t.Fatalf("view %+v", a.views[0])
	}
}

func TestDefaultSingletons(t *testing.T) {
	if DefaultMetrics() != DefaultMetrics() {
		t.Fatal("DefaultMetrics should be a singleton")
	}
	if Default() != Default() {
		t.Fatal("Default should be a singleton")
	}
	if Default().M != DefaultMetrics() {
		t.Fatal("Default observer should carry the default metrics")
	}
}
