package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsText(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry(), NewJournal(8)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE sort_msgs_total counter",
		`sort_msgs_total{kind="exchange"} 24`,
		`sort_phi_checks_total{phi="P",result="pass"} 32`,
		`sort_stage_vticks_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics?json=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fams []SnapshotFamily
	if err := json.NewDecoder(resp.Body).Decode(&fams); err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("families = %d, want 4", len(fams))
	}
}

func TestHandlerJournal(t *testing.T) {
	j := NewJournal(8)
	j.Append(Event{Kind: EvPhiCheck, Label: "C", Node: 1, Pass: true})
	srv := httptest.NewServer(Handler(nil, j))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 1 || len(got.Events) != 1 {
		t.Fatalf("journal response %+v", got)
	}
	if got.Events[0].Kind != EvPhiCheck || got.Events[0].Label != "C" || !got.Events[0].Pass {
		t.Fatalf("event %+v", got.Events[0])
	}
}

func TestServeBindsAndServes(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", goldenRegistry(), NewJournal(8))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "sort_msgs_total") {
		t.Fatalf("served metrics missing expected counter:\n%s", body)
	}
}
