package obs

import (
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(41)
	c.Add(-5) // counters only go up; negative adds are ignored
	c.Add(0)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Inc() // nil-safe
	nilC.Add(1)
	if nilC.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(5)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	// Buckets are cumulative at export; raw counts are per-bucket.
	if got := h.counts[0].Load(); got != 2 { // <= 10: {5, 10}
		t.Fatalf("bucket le=10 raw count = %d, want 2", got)
	}
	if got := h.counts[1].Load(); got != 2 { // (10, 100]: {11, 100}
		t.Fatalf("bucket le=100 raw count = %d, want 2", got)
	}
	if got := h.counts[2].Load(); got != 1 { // +Inf: {1000}
		t.Fatalf("+Inf bucket raw count = %d, want 1", got)
	}
	if h.Count() != 5 || h.Sum() != 1126 {
		t.Fatalf("Count/Sum = %d/%d, want 5/1126", h.Count(), h.Sum())
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", Label{"k", "v"})
	b := r.Counter("dup_total", "help", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) should return the same counter")
	}
	c := r.Counter("dup_total", "help", Label{"k", "other"})
	if a == c {
		t.Fatal("different labels should return a different counter")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflicted", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge should panic")
		}
	}()
	r.Gauge("conflicted", "help")
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("race_total", "help", Label{"k", "v"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("race_total", "help", Label{"k", "v"}).Value(); got != 800 {
		t.Fatalf("Value() = %d, want 800", got)
	}
}

func TestRenderLabels(t *testing.T) {
	if got := renderLabels(nil); got != "" {
		t.Fatalf("renderLabels(nil) = %q, want empty", got)
	}
	got := renderLabels([]Label{{"a", "x"}, {"b", `q"uote`}})
	want := `{a="x",b="q\"uote"}`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
}
