package obs

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestRecordingZeroAllocs pins every record-time entry point at zero
// allocations per operation. These are the calls the steady-state
// send/receive path makes; if any of them allocates, attaching an
// Observer would break the PR-2 zero-allocation guarantee.
func TestRecordingZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	m := NewMetrics(reg)
	o := &Observer{M: m, J: NewJournal(64)}
	h := reg.Histogram("alloc_h", "", DefaultVTickBuckets())

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { m.MergeCompares.Inc() }},
		{"counter-add", func() { m.MergeCompares.Add(3) }},
		{"gauge-set", func() { reg.Gauge("alloc_g", "").Set(7) }},
		{"histogram-observe", func() { h.Observe(123456) }},
		{"record-message", func() { m.RecordMessage(wire.KindFTExchange, 96) }},
		{"journal-append", func() { o.J.Append(Event{Kind: EvRoundBegin, Node: 1}) }},
		{"stage-begin", func() { o.StageBegin(1, 2, false, 100) }},
		{"stage-end", func() { o.StageEnd(1, 2, false, 100, 400) }},
		{"round-span", func() { o.RoundBegin(1, 2, 0, 100); o.RoundEnd(1, 2, 0, 200) }},
		{"phi-check", func() { o.PhiCheck(PhiC, 1, 2, 0, true, 150) }},
		{"digest-check", func() { o.DigestCheck(true); o.DigestCheck(false) }},
		{"digest-slow-scan", func() { o.DigestSlowScan() }},
		{"accusation", func() { o.Accusation(1, 2, 0, 3, 160) }},
		{"merge-compares", func() { o.MergeCompares(31) }},
		{"attempt-span", func() { o.AttemptBegin(1, 3); o.AttemptEnd(1, 3, 500, true) }},
		{"quarantine", func() { o.Quarantine(4, 1) }},
		{"backoff", func() { o.Backoff(time.Millisecond) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm up so lazy runtime state doesn't count.
			for i := 0; i < 8; i++ {
				tc.fn()
			}
			if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
				t.Fatalf("%s: %v allocs/op, want 0", tc.name, n)
			}
		})
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Append(Event{Kind: EvRoundBegin, Node: 1, Stage: 2, Iter: 3, VTicks: int64(i)})
	}
}

func BenchmarkPhiCheck(b *testing.B) {
	o := New(NewRegistry(), 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.PhiCheck(PhiP, 1, 2, 0, true, int64(i))
	}
}
