package obs

import "fmt"

// FaultClass indexes the per-class fault-injection counters. It
// mirrors the fault package's adversary taxonomy (message, absence,
// comparison, memory) without importing it — obs sits below fault in
// the dependency order, so the enum lives here and fault maps onto it.
type FaultClass int

const (
	// FaultMessage: Byzantine message faults (lies on the wire).
	FaultMessage FaultClass = iota
	// FaultAbsence: missing messages (silence, crashes).
	FaultAbsence
	// FaultComparison: lying comparators (Geissmann et al.).
	FaultComparison
	// FaultMemory: resident-cell corruption (Kopelowitz & Talmon).
	FaultMemory

	// NumFaultClasses sizes the per-class counter arrays.
	NumFaultClasses
)

var faultClassNames = [NumFaultClasses]string{
	FaultMessage:    "message",
	FaultAbsence:    "absence",
	FaultComparison: "comparison",
	FaultMemory:     "memory",
}

// String returns the class label used on the counters.
func (c FaultClass) String() string {
	if c >= 0 && c < NumFaultClasses {
		return faultClassNames[c]
	}
	return fmt.Sprintf("faultclass(%d)", int(c))
}

// FaultOutcome records one fault-injection run of class c: always
// bumps the runs counter, plus detected or (when undetected and
// wrong) silent-wrong. An undetected-but-correct run bumps runs only.
// Nil-safe like every Observer method.
func (o *Observer) FaultOutcome(c FaultClass, detected, silentWrong bool) {
	if o == nil || o.M == nil || c < 0 || c >= NumFaultClasses {
		return
	}
	o.M.FaultRuns[c].Inc()
	if detected {
		o.M.FaultDetected[c].Inc()
	} else if silentWrong {
		o.M.FaultSilent[c].Inc()
	}
}
