package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fixed values covering every
// metric type, label shapes, and histogram bucket edges.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sort_msgs_total", "Messages sent, by wire kind.", Label{"kind", "exchange"}).Add(24)
	r.Counter("sort_msgs_total", "Messages sent, by wire kind.", Label{"kind", "ft-exchange"}).Add(96)
	r.Counter("sort_phi_checks_total", "Constraint predicate evaluations.",
		Label{"phi", "P"}, Label{"result", "pass"}).Add(32)
	r.Counter("sort_phi_checks_total", "Constraint predicate evaluations.",
		Label{"phi", "P"}, Label{"result", "fail"}).Add(1)
	r.Gauge("run_active_nodes", "Nodes participating in the current attempt.").Set(8)
	h := r.Histogram("sort_stage_vticks", "Per-node stage cost in ticks.", []int64{1000, 10000, 100000})
	for _, v := range []int64{500, 1000, 1001, 50000, 2_000_000} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run go test -run Golden -update ./internal/obs to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE h histogram\n" +
		"h_bucket{le=\"10\"} 1\n" +
		"h_bucket{le=\"100\"} 2\n" +
		"h_bucket{le=\"+Inf\"} 3\n" +
		"h_sum 555\n" +
		"h_count 3\n"
	if buf.String() != want {
		t.Fatalf("histogram exposition:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestSnapshotValues(t *testing.T) {
	fams := goldenRegistry().Snapshot()
	if len(fams) != 4 {
		t.Fatalf("families = %d, want 4", len(fams))
	}
	// Families are sorted by name: run_active_nodes first.
	if fams[0].Name != "run_active_nodes" || fams[0].Series[0].Value != 8 {
		t.Fatalf("unexpected first family %q value %d", fams[0].Name, fams[0].Series[0].Value)
	}
	for _, f := range fams {
		if f.Name != "sort_stage_vticks" {
			continue
		}
		s := f.Series[0]
		if s.Count != 5 || s.Sum != 2_052_501 {
			t.Fatalf("histogram count/sum = %d/%d", s.Count, s.Sum)
		}
		last := s.Buckets[len(s.Buckets)-1]
		if !last.Inf || last.Count != 5 {
			t.Fatalf("+Inf bucket = %+v", last)
		}
	}
}
