package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// Handler serves the introspection endpoints for a registry/journal
// pair:
//
//	GET /metrics         Prometheus text exposition
//	GET /metrics?json=1  JSON snapshot of the same registry
//	GET /debug/journal   retained journal events, oldest first, JSON
//
// Either argument may be nil; the corresponding endpoint then serves
// an empty document.
func Handler(reg *Registry, j *Journal) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("json") != "" {
			w.Header().Set("Content-Type", "application/json")
			if reg != nil {
				reg.WriteJSON(w)
			} else {
				w.Write([]byte("[]\n"))
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{Total: j.Total(), Dropped: j.Dropped(), Events: j.Events()}
		if resp.Events == nil {
			resp.Events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
	return mux
}

// Serve listens on addr (e.g. "localhost:9141" or ":0") and serves
// Handler(reg, j) in a background goroutine. It returns the bound
// address — useful with ":0" — or an error if the listen fails. The
// listener runs until the process exits; there is deliberately no
// shutdown plumbing, because the endpoint exists to outlive the run it
// observes.
func Serve(addr string, reg *Registry, j *Journal) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg, j)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
