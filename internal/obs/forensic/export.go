package forensic

import (
	"encoding/json"
	"fmt"
)

// Chrome trace_event export. Events are keyed on virtual time, not
// wall time, so the same seed renders the same trace byte-for-byte —
// the golden test pins the shape. Load the output in a trace viewer
// (chrome://tracing, Perfetto): one track per node, instant events for
// every flight-recorder record, flow arrows from each send to its
// receive, and the chain hops marked so the accusation's lineage
// stands out.

// chromeEvent is one entry of the trace_event "traceEvents" array.
// Field order is fixed by the struct, which is what keeps the export
// deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"otherData"`
}

// ChromeTrace renders the report in Chrome trace_event JSON format.
func (r *Report) ChromeTrace() ([]byte, error) {
	onChain := make(map[string]bool, len(r.Chain))
	for _, h := range r.Chain {
		onChain[fmt.Sprintf("%d", uint64(h.ID))] = true
	}
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		Metadata: map[string]string{
			"accuser":   fmt.Sprintf("%d", r.Accuser),
			"accused":   fmt.Sprintf("%d", r.Accused),
			"predicate": r.Predicate,
		},
	}
	for _, log := range r.Nodes {
		for _, h := range log.Events {
			id := fmt.Sprintf("%d", uint64(h.ID))
			cat := h.Kind
			if onChain[id] {
				cat = h.Kind + ",chain"
			}
			ev := chromeEvent{
				Name:  eventName(h),
				Phase: "i",
				TS:    h.VTicks,
				TID:   h.Node,
				Scope: "t",
				Cat:   cat,
				Args: map[string]any{
					"id":    uint64(h.ID),
					"stage": h.Stage,
					"iter":  h.Iter,
					"peer":  h.Peer,
				},
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
			// Flow arrows: one start per send, one finish per recv that
			// resolved its sender.
			switch h.Kind {
			case "send":
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "msg", Phase: "s", TS: h.VTicks, TID: h.Node,
					ID: id, Cat: "flow",
				})
			case "recv":
				if h.Remote != 0 {
					tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
						Name: "msg", Phase: "f", BP: "e", TS: h.VTicks, TID: h.Node,
						ID: fmt.Sprintf("%d", uint64(h.Remote)), Cat: "flow",
					})
				}
			}
		}
	}
	return json.MarshalIndent(tr, "", " ")
}

// eventName is the display label of a record in the trace viewer.
func eventName(h Hop) string {
	switch h.Kind {
	case "send", "recv":
		return h.Kind + " " + h.MsgKind
	case "phi":
		verdict := "fail"
		if h.Pass {
			verdict = "pass"
		}
		return "phi " + h.Predicate + " " + verdict
	case "accuse":
		return "accuse " + h.Predicate
	default:
		return h.Kind
	}
}
