package forensic

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the flight's forensic dumps over HTTP, mounted next
// to the obs /metrics and /debug/journal endpoints:
//
//	/debug/forensic            — all reports as a JSON array
//	/debug/forensic?latest=1   — the most recent report only
//	/debug/forensic?seq=N      — report N
//	/debug/forensic?chrome=1   — Chrome trace_event rendering of the
//	                             selected report (combine with seq=N)
//
// An empty flight (no accusations yet) serves an empty array, or 404
// for latest/seq/chrome selections.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reports := f.Reports()
		q := req.URL.Query()

		var sel *Report
		switch {
		case q.Get("seq") != "":
			n, err := strconv.Atoi(q.Get("seq"))
			if err != nil || n < 0 || n >= len(reports) {
				http.Error(w, "forensic: no such report", http.StatusNotFound)
				return
			}
			sel = reports[n]
		case q.Get("latest") != "" || q.Get("chrome") != "":
			if len(reports) == 0 {
				http.Error(w, "forensic: no reports", http.StatusNotFound)
				return
			}
			sel = reports[len(reports)-1]
		}

		if q.Get("chrome") != "" {
			buf, err := sel.ChromeTrace()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(buf)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if sel != nil {
			enc.Encode(sel)
			return
		}
		if reports == nil {
			reports = []*Report{}
		}
		enc.Encode(reports)
	})
}
