package forensic

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHandler(t *testing.T) {
	f := New(8)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Empty flight: an empty JSON array, 404 for selections.
	code, body := get(t, srv.URL)
	if code != http.StatusOK {
		t.Fatalf("empty flight: status %d", code)
	}
	var reports []json.RawMessage
	if err := json.Unmarshal(body, &reports); err != nil || len(reports) != 0 {
		t.Fatalf("empty flight body %q, want []", body)
	}
	if code, _ := get(t, srv.URL+"?latest=1"); code != http.StatusNotFound {
		t.Errorf("latest on empty flight: status %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"?chrome=1"); code != http.StatusNotFound {
		t.Errorf("chrome on empty flight: status %d, want 404", code)
	}

	rep := f.Node(0).Accuse(PredProgress, 0, 3, 2, 1, "stalled", 42)

	code, body = get(t, srv.URL+"?latest=1")
	if code != http.StatusOK {
		t.Fatalf("latest: status %d", code)
	}
	var got Report
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Accused != rep.Accused || got.Predicate != rep.Predicate || got.Stage != 3 {
		t.Errorf("latest = %+v, want %+v", got, rep)
	}

	if code, _ := get(t, srv.URL+"?seq=0"); code != http.StatusOK {
		t.Errorf("seq=0: status %d", code)
	}
	if code, _ := get(t, srv.URL+"?seq=5"); code != http.StatusNotFound {
		t.Errorf("seq=5: status %d, want 404", code)
	}

	code, body = get(t, srv.URL+"?chrome=1")
	if code != http.StatusOK {
		t.Fatalf("chrome: status %d", code)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil || len(tr.TraceEvents) == 0 {
		t.Fatalf("chrome body not a trace_event document: %v\n%s", err, body)
	}
}
