// Package forensic is the causal evidence layer under the constraint
// predicates: a per-node bounded flight recorder plus the machinery to
// turn an accusation into a replayable happens-before chain.
//
// Every message sent through a traced transport carries a 16-byte
// causal trailer (wire.TraceContext) naming the send event and the
// sender's previous event. Each node (and the host) owns a Recorder —
// a fixed-capacity ring of fixed-size Records, appended with the same
// zero-allocation discipline as the obs journal — logging sends,
// receives, predicate evaluations, merge-splits, and accusations. When
// a predicate fails (or the recovery supervisor quarantines), the
// Flight snapshots every ring and walks the causal links backwards
// from the accusation — local Parent edges within a node, Remote edges
// across the wire — into a Report: accused node, violated predicate,
// and the offending message's lineage back toward its origin with
// per-hop digests and virtual times.
//
// The trailer is excluded from cost charging and byte metrics at every
// transport (wire.CostedLen), so attaching a Flight never perturbs the
// virtual-time series; the equivalence test in internal/experiments
// pins this bit-identically against BENCH_PR7.json.
package forensic

import (
	"sync"

	"repro/internal/wire"
)

// EventKind discriminates flight-recorder records.
type EventKind uint8

// Record kinds.
const (
	EvNone EventKind = iota
	// EvSend: a message left this node; ID doubles as the wire trace id.
	EvSend
	// EvRecv: a message was accepted; Remote names the sender's send event.
	EvRecv
	// EvPhi: a constraint predicate was evaluated (Pred, Pass).
	EvPhi
	// EvMerge: a merge-split or view merge ran (Aux = comparisons).
	EvMerge
	// EvAccuse: a predicate failure was turned into an ERROR signal.
	EvAccuse
	// EvQuarantine: the recovery supervisor quarantined a node.
	EvQuarantine
)

var evNames = [...]string{
	EvNone:       "none",
	EvSend:       "send",
	EvRecv:       "recv",
	EvPhi:        "phi",
	EvMerge:      "merge-split",
	EvAccuse:     "accuse",
	EvQuarantine: "quarantine",
}

// String returns the lowercase name of the kind.
func (k EventKind) String() string {
	if int(k) < len(evNames) {
		return evNames[k]
	}
	return "invalid"
}

// Predicate codes carried in Records. These mirror the wire-level
// predicate names produced by core.PredicateName; the wire strings are
// the source of truth and PredCode/PredName convert.
const (
	PredNone uint8 = iota
	PredProgress
	PredFeasibility
	PredConsistency
	PredProtocol
	// PredQuarantine marks supervisor-level quarantine reports, which
	// accuse by diagnosis rank rather than by a single predicate.
	PredQuarantine
)

var predNames = [...]string{
	PredNone:        "",
	PredProgress:    "progress",
	PredFeasibility: "feasibility",
	PredConsistency: "consistency",
	PredProtocol:    "protocol",
	PredQuarantine:  "quarantine",
}

// PredName returns the wire name of a predicate code.
func PredName(code uint8) string {
	if int(code) < len(predNames) {
		return predNames[code]
	}
	return "unknown"
}

// PredCode returns the code of a wire predicate name, PredNone if
// unrecognized.
func PredCode(name string) uint8 {
	for c, n := range predNames {
		if n == name && c != int(PredNone) {
			return uint8(c)
		}
	}
	return PredNone
}

// Record is one fixed-size flight-recorder entry. Field meaning varies
// by Kind; unused fields are zero.
type Record struct {
	// ID names this event; Parent is the node's previous event (the
	// local happens-before edge), Remote the cross-wire edge (the
	// sender's send event, for EvRecv only).
	ID     wire.EventID
	Parent wire.EventID
	Remote wire.EventID
	Kind   EventKind
	// Node is the owning node label (wire.HostID for the host); Peer
	// the other end of a send/recv, or the accused for EvAccuse.
	Node int32
	Peer int32
	// Stage and Iter locate the protocol step.
	Stage int32
	Iter  int32
	// MsgKind is the wire kind of send/recv events.
	MsgKind wire.Kind
	// Pred and Pass describe predicate evaluations and accusations.
	Pred uint8
	Pass bool
	// VTicks is the node's virtual clock when the event was recorded.
	VTicks int64
	// Dig carries a view digest where the event has one (merges, phi
	// evaluations over views); zero elsewhere.
	Dig wire.Digest
	// Aux is kind-specific (merge comparisons, evidence class for
	// accusations).
	Aux int64
}

// DefaultRingCap is the per-node ring capacity when Flight is created
// with cap <= 0: enough for several stages of a dim-5 cube's sends,
// receives, and predicate evaluations.
const DefaultRingCap = 512

// Recorder is one node's bounded flight recorder. Methods are safe for
// concurrent use (scrapes snapshot rings while node goroutines append)
// and allocation-free after construction; a nil *Recorder discards
// everything, so untraced runs pay a single pointer test per event.
type Recorder struct {
	flight *Flight
	node   int32

	mu      sync.Mutex
	ring    []Record
	next    uint64 // total events ever recorded; seq of the next event
	dropped uint64
	last    wire.EventID
}

// append stamps and stores rec, returning its id and the id of the
// node's previous event. Caller must not hold mu.
func (r *Recorder) append(rec Record) (id, parent wire.EventID) {
	r.mu.Lock()
	rec.ID = wire.MakeEventID(r.node, r.next)
	rec.Parent = r.last
	rec.Node = r.node
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		// Ring full: overwrite the oldest slot.
		r.ring[r.next%uint64(cap(r.ring))] = rec
		r.dropped++
	}
	r.next++
	parent = r.last
	r.last = rec.ID
	r.mu.Unlock()
	return rec.ID, parent
}

// Node returns the owning node label (wire.HostID for the host).
func (r *Recorder) Node() int32 {
	if r == nil {
		return wire.HostID
	}
	return r.node
}

// LastID returns the id of the most recent event, 0 if none. Nil-safe.
func (r *Recorder) LastID() wire.EventID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Len returns the number of events recorded so far (including any that
// the ring has since overwritten). Nil-safe.
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Send records a message departure and returns the causal trailer to
// stamp on the wire: the send event's identity plus the node's
// previous event. Nil recorders return the zero (untraced) context.
func (r *Recorder) Send(kind wire.Kind, peer, stage, iter int32, vticks int64) wire.TraceContext {
	if r == nil {
		return wire.TraceContext{}
	}
	id, parent := r.append(Record{
		Kind: EvSend, Peer: peer, Stage: stage, Iter: iter,
		MsgKind: kind, VTicks: vticks,
	})
	return wire.TraceContext{Origin: r.node, Seq: uint32(id.Seq()), Parent: parent}
}

// Recv records a message acceptance, linking it to the sender's send
// event via the message's trace trailer. Nil-safe.
func (r *Recorder) Recv(m *wire.Message, vticks int64) {
	if r == nil {
		return
	}
	r.append(Record{
		Kind: EvRecv, Peer: m.From, Stage: m.Stage, Iter: m.Iter,
		MsgKind: m.Kind, Remote: m.Trace.ID(), VTicks: vticks,
	})
}

// Phi records a constraint-predicate evaluation. Nil-safe.
func (r *Recorder) Phi(pred uint8, stage, iter int32, pass bool, dig wire.Digest, vticks int64) {
	if r == nil {
		return
	}
	r.append(Record{
		Kind: EvPhi, Pred: pred, Stage: stage, Iter: iter, Pass: pass,
		Dig: dig, VTicks: vticks,
	})
}

// Merge records a merge-split or view merge with its comparison count
// and the resulting view digest. Nil-safe.
func (r *Recorder) Merge(stage, iter int32, compares int64, dig wire.Digest, vticks int64) {
	if r == nil {
		return
	}
	r.append(Record{
		Kind: EvMerge, Stage: stage, Iter: iter, Aux: compares,
		Dig: dig, VTicks: vticks,
	})
}

// Accuse records that a predicate failure became an ERROR signal and
// triggers a forensic dump: the flight snapshots every ring and
// reconstructs the happens-before chain ending here. It returns the
// report (nil from a nil recorder). evidence is the structured
// evidence class (core.ErrorKind as a raw byte); accused is -1 when
// the evidence implicates nobody.
func (r *Recorder) Accuse(pred uint8, evidence uint8, stage, iter, accused int32, detail string, vticks int64) *Report {
	if r == nil {
		return nil
	}
	id, _ := r.append(Record{
		Kind: EvAccuse, Pred: pred, Peer: accused, Stage: stage, Iter: iter,
		Aux: int64(evidence), VTicks: vticks,
	})
	return r.flight.dump(r.node, accused, id, pred, evidence, stage, iter, detail, vticks)
}

// Flight is the run-wide forensic context: one Recorder per node plus
// the accumulated reports. Attach the same Flight to the transport
// (simnet/tcpnet Config.Flight) and to each node's protocol options so
// transport-level send/recv events and protocol-level predicate events
// land in the same rings.
type Flight struct {
	ringCap int

	mu      sync.Mutex
	recs    map[int32]*Recorder
	reports []*Report
}

// New creates a Flight whose per-node rings hold ringCap records each
// (DefaultRingCap if <= 0).
func New(ringCap int) *Flight {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Flight{ringCap: ringCap, recs: make(map[int32]*Recorder)}
}

// Node returns node id's recorder, creating it on first use. Safe for
// concurrent use; nil Flights return nil recorders (which discard).
func (f *Flight) Node(id int) *Recorder {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodeLocked(int32(id))
}

func (f *Flight) nodeLocked(id int32) *Recorder {
	r := f.recs[id]
	if r == nil {
		r = &Recorder{flight: f, node: id, ring: make([]Record, 0, f.ringCap)}
		f.recs[id] = r
	}
	return r
}

// Host returns the host processor's recorder (node label wire.HostID).
func (f *Flight) Host() *Recorder { return f.Node(int(wire.HostID)) }

// Quarantine records a supervisor-level quarantine on the host ring
// and dumps a report accusing the culprit. attempt is carried as the
// report's Iter. Nil-safe.
func (f *Flight) Quarantine(culprit, attempt int, detail string) *Report {
	if f == nil {
		return nil
	}
	h := f.Host()
	id, _ := h.append(Record{
		Kind: EvQuarantine, Pred: PredQuarantine, Peer: int32(culprit),
		Iter: int32(attempt),
	})
	return f.dump(wire.HostID, int32(culprit), id, PredQuarantine, 0, -1, int32(attempt), detail, 0)
}

// Reports returns the accumulated forensic reports in occurrence order.
func (f *Flight) Reports() []*Report {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Report, len(f.reports))
	copy(out, f.reports)
	return out
}

// Latest returns the most recent report, nil if none.
func (f *Flight) Latest() *Report {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.reports) == 0 {
		return nil
	}
	return f.reports[len(f.reports)-1]
}
