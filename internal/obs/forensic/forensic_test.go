package forensic

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

func TestPredRoundTrip(t *testing.T) {
	for _, code := range []uint8{PredProgress, PredFeasibility, PredConsistency, PredProtocol, PredQuarantine} {
		name := PredName(code)
		if name == "" || name == "unknown" {
			t.Errorf("code %d has no name", code)
		}
		if got := PredCode(name); got != code {
			t.Errorf("PredCode(%q) = %d, want %d", name, got, code)
		}
	}
	if PredCode("bogus") != PredNone {
		t.Error("unknown name should map to PredNone")
	}
	if PredName(PredNone) != "" {
		t.Error("PredNone should render empty")
	}
}

func TestNilRecorderDiscards(t *testing.T) {
	var r *Recorder
	tc := r.Send(wire.KindExchange, 1, 0, 0, 10)
	if tc != (wire.TraceContext{}) {
		t.Errorf("nil Send returned %+v, want zero context", tc)
	}
	r.Recv(&wire.Message{}, 10)
	r.Phi(PredProgress, 0, 0, true, wire.Digest{}, 10)
	r.Merge(0, 0, 3, wire.Digest{}, 10)
	if rep := r.Accuse(PredProgress, 0, 0, 0, -1, "x", 10); rep != nil {
		t.Error("nil Accuse should return nil report")
	}
	if r.Len() != 0 || r.LastID() != 0 {
		t.Error("nil recorder should be inert")
	}
	var f *Flight
	if f.Node(0) != nil || f.Latest() != nil || f.Reports() != nil {
		t.Error("nil flight should be inert")
	}
	if rep := f.Quarantine(1, 0, "x"); rep != nil {
		t.Error("nil Quarantine should return nil report")
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	f := New(4)
	rec := f.Node(0)
	for i := 0; i < 10; i++ {
		rec.Phi(PredProgress, int32(i), 0, true, wire.Digest{}, int64(i))
	}
	if rec.Len() != 10 {
		t.Fatalf("Len = %d, want 10", rec.Len())
	}
	rep := rec.Accuse(PredProgress, 0, 9, 0, -1, "wrap", 10)
	if rep == nil || len(rep.Nodes) != 1 {
		t.Fatalf("expected a single-node report, got %+v", rep)
	}
	log := rep.Nodes[0]
	// 11 events through a 4-slot ring: 7 dropped, snapshot holds the
	// newest 4 (seqs 7..10), oldest first.
	if log.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", log.Dropped)
	}
	if len(log.Events) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(log.Events))
	}
	for i, h := range log.Events {
		if want := uint64(7 + i); h.ID.Seq() != want {
			t.Errorf("snapshot[%d] seq = %d, want %d (oldest-first order broken)", i, h.ID.Seq(), want)
		}
	}
	if log.Events[3].Kind != "accuse" {
		t.Errorf("newest snapshot event is %q, want the accusation", log.Events[3].Kind)
	}
}

// TestChainCrossesWire pins the tentpole property: an accusation's
// chain follows the local Parent edge to the received message, then the
// Remote edge across the wire to the sender's send event.
func TestChainCrossesWire(t *testing.T) {
	f := New(0)
	sender, recver := f.Node(1), f.Node(0)

	sender.Phi(PredProgress, 0, 0, true, wire.Digest{}, 5)
	tc := sender.Send(wire.KindExchange, 0, 2, 1, 10)
	if tc.Origin != 1 || tc.Parent == 0 {
		t.Fatalf("send context %+v: want origin 1 and a parent edge", tc)
	}
	m := &wire.Message{Kind: wire.KindExchange, From: 1, To: 0, Stage: 2, Iter: 1, Trace: tc}
	recver.Recv(m, 12)
	rep := recver.Accuse(PredConsistency, 1, 2, 1, 1, "digest mismatch", 15)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Accuser != 0 || rep.Accused != 1 || rep.Predicate != "consistency" {
		t.Fatalf("report header = accuser %d accused %d pred %q", rep.Accuser, rep.Accused, rep.Predicate)
	}
	kinds := make([]string, len(rep.Chain))
	nodes := make([]int32, len(rep.Chain))
	for i, h := range rep.Chain {
		kinds[i], nodes[i] = h.Kind, h.Node
	}
	// accuse(0) -> recv(0) -> send(1) -> phi(1): newest first, hopping
	// nodes at the recv→send edge.
	want := []string{"accuse", "recv", "send", "phi"}
	wantNodes := []int32{0, 0, 1, 1}
	if len(kinds) != len(want) {
		t.Fatalf("chain kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] || nodes[i] != wantNodes[i] {
			t.Fatalf("chain = %v on nodes %v, want %v on %v", kinds, nodes, want, wantNodes)
		}
	}
	if rep.ChainTruncated {
		t.Error("chain should be complete")
	}
	if f.Latest() != rep || len(f.Reports()) != 1 {
		t.Error("report not retained by the flight")
	}
}

func TestChainTruncatedOnEvictedEdge(t *testing.T) {
	f := New(2)
	sender, recver := f.Node(1), f.Node(0)
	tc := sender.Send(wire.KindExchange, 0, 0, 0, 1)
	// Push the send event out of the sender's 2-slot ring.
	for i := 0; i < 4; i++ {
		sender.Phi(PredProgress, 0, int32(i), true, wire.Digest{}, int64(2+i))
	}
	m := &wire.Message{Kind: wire.KindExchange, From: 1, Trace: tc}
	recver.Recv(m, 8)
	rep := recver.Accuse(PredFeasibility, 0, 0, 0, 1, "evicted", 9)
	if !rep.ChainTruncated {
		t.Error("walk into an overwritten ring slot must mark the chain truncated")
	}
	if len(rep.Chain) != 2 { // accuse + recv; the send edge is gone
		t.Errorf("chain length %d, want 2", len(rep.Chain))
	}
}

func TestQuarantineReport(t *testing.T) {
	f := New(0)
	f.Node(3).Phi(PredProgress, 0, 0, false, wire.Digest{}, 1)
	rep := f.Quarantine(3, 2, "persistent accusation streak")
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Accuser != wire.HostID || rep.Accused != 3 || rep.Predicate != "quarantine" || rep.Iter != 2 {
		t.Fatalf("quarantine report header: %+v", rep)
	}
	if len(rep.Nodes) != 2 { // node 3 and the host ring
		t.Fatalf("snapshot covers %d rings, want 2", len(rep.Nodes))
	}
}

func TestReportJSON(t *testing.T) {
	f := New(0)
	rep := f.Node(0).Accuse(PredProtocol, 2, 1, 0, -1, "shape", 3)
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"predicate": "protocol"`, `"accused": -1`, `"chain"`} {
		if !bytes.Contains(buf, []byte(want)) {
			t.Errorf("JSON missing %q:\n%s", want, buf)
		}
	}
}
