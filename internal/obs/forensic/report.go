package forensic

import (
	"encoding/json"
	"sort"

	"repro/internal/wire"
)

// Hop is one event on a reconstructed causal chain (or in a ring
// snapshot), rendered with names instead of raw codes so dumps are
// self-describing.
type Hop struct {
	Node      int32        `json:"node"`
	Kind      string       `json:"kind"`
	ID        wire.EventID `json:"id"`
	Parent    wire.EventID `json:"parent,omitempty"`
	Remote    wire.EventID `json:"remote,omitempty"`
	Peer      int32        `json:"peer"`
	Stage     int32        `json:"stage"`
	Iter      int32        `json:"iter"`
	MsgKind   string       `json:"msg_kind,omitempty"`
	Predicate string       `json:"predicate,omitempty"`
	Pass      bool         `json:"pass,omitempty"`
	VTicks    int64        `json:"vticks"`
	DigSum    uint64       `json:"dig_sum,omitempty"`
	DigXor    uint64       `json:"dig_xor,omitempty"`
	Aux       int64        `json:"aux,omitempty"`
}

// hopOf renders a Record as a Hop.
func hopOf(rec Record) Hop {
	h := Hop{
		Node:   rec.Node,
		Kind:   rec.Kind.String(),
		ID:     rec.ID,
		Parent: rec.Parent,
		Remote: rec.Remote,
		Peer:   rec.Peer,
		Stage:  rec.Stage,
		Iter:   rec.Iter,
		Pass:   rec.Pass,
		VTicks: rec.VTicks,
		DigSum: rec.Dig.Sum,
		DigXor: rec.Dig.Xor,
		Aux:    rec.Aux,
	}
	if rec.MsgKind != 0 {
		h.MsgKind = rec.MsgKind.String()
	}
	if rec.Pred != PredNone {
		h.Predicate = PredName(rec.Pred)
	}
	return h
}

// NodeLog is one node's ring snapshot inside a Report, oldest first.
type NodeLog struct {
	Node    int32  `json:"node"`
	Dropped uint64 `json:"dropped"`
	Events  []Hop  `json:"events"`
}

// Report is one forensic dump: everything needed to explain (and
// replay) an accusation. Chain is the happens-before lineage, newest
// first: the accusation itself, then backwards through local Parent
// edges and cross-wire Remote edges toward the offending message's
// origin. Nodes holds the full ring snapshots the chain was
// reconstructed from, for side-by-side accused-vs-honest diffs.
type Report struct {
	// Seq numbers reports within a Flight in occurrence order.
	Seq int `json:"seq"`
	// Accuser raised the accusation (wire.HostID for supervisor-level
	// quarantines); Accused is the implicated node, -1 when none.
	Accuser   int32  `json:"accuser"`
	Accused   int32  `json:"accused"`
	Predicate string `json:"predicate"`
	// EvidenceKind is the structured evidence class (core.ErrorKind as
	// a raw byte: value, absence, shape).
	EvidenceKind uint8  `json:"evidence_kind"`
	Stage        int32  `json:"stage"`
	Iter         int32  `json:"iter"`
	Detail       string `json:"detail,omitempty"`
	VTicks       int64  `json:"vticks"`
	Chain        []Hop  `json:"chain"`
	// ChainTruncated reports that the walk hit an event the bounded
	// rings had already overwritten (or the chain-length cap).
	ChainTruncated bool      `json:"chain_truncated,omitempty"`
	Nodes          []NodeLog `json:"nodes"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// FirstDivergence scans the accused's and the accuser's ring snapshots
// for the earliest (stage, iter) protocol step at which their recorded
// view digests disagree — the same comparison `forensic -diff` renders.
// ok is false when the rings never diverge (absence faults, node-local
// detections, or reports missing one side's ring), in which case the
// accusation's own (Stage, Iter) is the only locator available.
func (r *Report) FirstDivergence() (stage, iter int32, ok bool) {
	type key struct {
		stage, iter int32
		kind        string
	}
	digests := func(node int32) map[key][2]uint64 {
		m := map[key][2]uint64{}
		for _, log := range r.Nodes {
			if log.Node != node {
				continue
			}
			for _, h := range log.Events {
				if h.DigSum == 0 && h.DigXor == 0 {
					continue
				}
				// Last write per step wins: rings are oldest-first.
				m[key{h.Stage, h.Iter, h.Kind}] = [2]uint64{h.DigSum, h.DigXor}
			}
		}
		return m
	}
	acd, acr := digests(r.Accused), digests(r.Accuser)
	if len(acd) == 0 || len(acr) == 0 {
		return 0, 0, false
	}
	found := false
	for k, a := range acd {
		b, both := acr[k]
		if both && a == b {
			continue // agreement
		}
		if !both {
			continue // one-sided steps happen legitimately (ring caps)
		}
		if !found || k.stage < stage || (k.stage == stage && k.iter < iter) {
			stage, iter, found = k.stage, k.iter, true
		}
	}
	return stage, iter, found
}

// maxChain bounds the reconstructed happens-before chain. Lineage past
// this depth is protocol history, not evidence.
const maxChain = 64

// dump snapshots every ring and reconstructs the chain ending at
// accusation event id on the accuser's ring.
func (f *Flight) dump(accuser, accused int32, id wire.EventID, pred, evidence uint8, stage, iter int32, detail string, vticks int64) *Report {
	rep := &Report{
		Accuser:      accuser,
		Accused:      accused,
		Predicate:    PredName(pred),
		EvidenceKind: evidence,
		Stage:        stage,
		Iter:         iter,
		Detail:       detail,
		VTicks:       vticks,
	}

	// Snapshot all rings. Records causally prior to the accusation are
	// visible: a traced send is recorded before the packet enters the
	// link channel, and the channel receive happens-before the
	// accuser's decode, so every cross-wire edge the walk follows
	// resolves unless the bounded ring has already overwritten it.
	f.mu.Lock()
	ids := make([]int32, 0, len(f.recs))
	for nid := range f.recs {
		ids = append(ids, nid)
	}
	f.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index := make(map[wire.EventID]Record)
	for _, nid := range ids {
		r := f.Node(int(nid))
		r.mu.Lock()
		log := NodeLog{Node: nid, Dropped: r.dropped, Events: make([]Hop, 0, len(r.ring))}
		start := uint64(0)
		if r.dropped > 0 {
			start = r.next % uint64(cap(r.ring))
		}
		for i := 0; i < len(r.ring); i++ {
			rec := r.ring[(start+uint64(i))%uint64(len(r.ring))]
			log.Events = append(log.Events, hopOf(rec))
			index[rec.ID] = rec
		}
		r.mu.Unlock()
		rep.Nodes = append(rep.Nodes, log)
	}

	// Walk backwards from the accusation: prefer the cross-wire edge
	// (Remote: jump to the sender of the message just accepted), else
	// the local predecessor (Parent).
	cur, ok := index[id]
	for ok {
		rep.Chain = append(rep.Chain, hopOf(cur))
		if len(rep.Chain) >= maxChain {
			rep.ChainTruncated = true
			break
		}
		next := cur.Remote
		if next == 0 {
			next = cur.Parent
		}
		if next == 0 {
			break
		}
		cur, ok = index[next]
		if !ok {
			rep.ChainTruncated = true
		}
	}

	f.mu.Lock()
	rep.Seq = len(f.reports)
	f.reports = append(f.reports, rep)
	f.mu.Unlock()
	return rep
}
