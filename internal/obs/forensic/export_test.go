package forensic

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport builds a small fully-deterministic two-node report: an
// honest exchange, a lying message, a failed consistency check, the
// accusation.
func goldenReport() *Report {
	f := New(8)
	sender, recver := f.Node(1), f.Node(0)
	sender.Phi(PredProgress, 1, 0, true, wire.Digest{Sum: 11, Xor: 5}, 4)
	tc := sender.Send(wire.KindExchange, 0, 2, 1, 10)
	recver.Recv(&wire.Message{Kind: wire.KindExchange, From: 1, To: 0, Stage: 2, Iter: 1, Trace: tc}, 12)
	recver.Merge(2, 1, 3, wire.Digest{Sum: 7, Xor: 3}, 13)
	recver.Phi(PredConsistency, 2, 1, false, wire.Digest{Sum: 7, Xor: 3}, 14)
	return recver.Accuse(PredConsistency, 1, 2, 1, 1, "view digest mismatch", 15)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run go test -run Golden -update ./internal/obs/forensic to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenChromeTrace pins the Chrome trace_event export shape:
// virtual-time timestamps, one instant event per record, flow arrows
// joining each send to its receive, chain hops tagged in cat.
func TestGoldenChromeTrace(t *testing.T) {
	buf, err := goldenReport().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.json", buf)
}

// TestChromeTraceDeterministic double-renders a structurally identical
// report and demands byte equality — the export must not depend on map
// iteration or wall time.
func TestChromeTraceDeterministic(t *testing.T) {
	a, err := goldenReport().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenReport().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two renders of the same report differ")
	}
}
