// Package bitset provides a compact, fixed-capacity bit set used to
// track which entries of a bitonic-sequence view a node has collected
// (the paper's lmask / vect_mask bit vectors). The paper stores these
// masks in machine words, which caps the cube at word size; this
// implementation removes that cap so simulations can exceed 64 nodes.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over positions [0, Len()). The zero value is an
// empty set of length 0; construct sized sets with New.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over positions [0, n). It panics if n is
// negative (a programming error, not a runtime condition).
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set of length n with the given positions set.
// It returns an error when a position is out of range.
func FromIndices(n int, idxs []int) (Set, error) {
	s := New(n)
	for _, i := range idxs {
		if i < 0 || i >= n {
			return Set{}, fmt.Errorf("bitset: index %d out of range [0,%d)", i, n)
		}
		s.Add(i)
	}
	return s, nil
}

// Len returns the set's capacity (number of addressable positions).
func (s Set) Len() int { return s.n }

// Add sets bit i. Out-of-range positions panic: masks are always built
// from validated subcube indices, so this indicates a logic bug.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set. Positions outside [0, Len()) are
// reported as unset rather than panicking, so callers can probe
// uniformly across differently sized views.
func (s Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith sets s = s ∪ o in place. The sets must have equal length.
func (s Set) UnionWith(o Set) error {
	if s.n != o.n {
		return fmt.Errorf("bitset: union of mismatched lengths %d and %d", s.n, o.n)
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return nil
}

// IntersectWith sets s = s ∩ o in place. The sets must have equal length.
func (s Set) IntersectWith(o Set) error {
	if s.n != o.n {
		return fmt.Errorf("bitset: intersect of mismatched lengths %d and %d", s.n, o.n)
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return nil
}

// Equal reports whether the two sets have the same length and members.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is also in o. The sets
// must have equal length; mismatched lengths report false.
func (s Set) SubsetOf(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Each calls fn for every set bit position in ascending order,
// stopping early when fn returns false. Unlike Indices it performs no
// allocation, so hot merge/validation paths can iterate views without
// per-call garbage.
func (s Set) Each(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bit positions in ascending order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Full reports whether every position is set.
func (s Set) Full() bool { return s.Count() == s.n }

// String renders the set as its bit pattern, LSB first, e.g. "1010".
func (s Set) String() string {
	var b strings.Builder
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Words returns a copy of the underlying word array (LSB-first), used
// by the wire codec.
func (s Set) Words() []uint64 {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return w
}

// WordCount returns the number of underlying machine words.
func (s Set) WordCount() int { return len(s.words) }

// Word returns the i-th underlying word (LSB-first). Together with
// WordCount it lets the wire codec marshal a mask without the copy
// Words makes.
func (s Set) Word(i int) uint64 { return s.words[i] }

// Reset reinitializes s in place to an empty set of length n, reusing
// the word storage when capacity allows. It panics on negative n, like
// New.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	want := (n + wordBits - 1) / wordBits
	if cap(s.words) < want {
		s.words = make([]uint64, want)
	} else {
		s.words = s.words[:want]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// LoadWords reinitializes s in place from a word array produced by
// Words, reusing storage when capacity allows. Validation matches
// FromWords: the word count must fit n exactly and no bits beyond n may
// be set. On error s is left unchanged.
func (s *Set) LoadWords(n int, words []uint64) error {
	if n < 0 {
		return fmt.Errorf("bitset: negative length %d", n)
	}
	want := (n + wordBits - 1) / wordBits
	if len(words) != want {
		return fmt.Errorf("bitset: %d words for length %d, want %d", len(words), n, want)
	}
	if rem := n % wordBits; rem != 0 && len(words) > 0 {
		if words[len(words)-1]>>uint(rem) != 0 {
			return fmt.Errorf("bitset: bits set beyond length %d", n)
		}
	}
	if cap(s.words) < want {
		s.words = make([]uint64, want)
	} else {
		s.words = s.words[:want]
	}
	copy(s.words, words)
	s.n = n
	return nil
}

// FromWords reconstructs a set of length n from a word array produced
// by Words. It returns an error when the word count does not match n
// or when bits beyond n are set (a malformed or tampered encoding).
func FromWords(n int, words []uint64) (Set, error) {
	if n < 0 {
		return Set{}, fmt.Errorf("bitset: negative length %d", n)
	}
	want := (n + wordBits - 1) / wordBits
	if len(words) != want {
		return Set{}, fmt.Errorf("bitset: %d words for length %d, want %d", len(words), n, want)
	}
	s := Set{n: n, words: make([]uint64, len(words))}
	copy(s.words, words)
	if rem := n % wordBits; rem != 0 && len(s.words) > 0 {
		if s.words[len(s.words)-1]>>uint(rem) != 0 {
			return Set{}, fmt.Errorf("bitset: bits set beyond length %d", n)
		}
	}
	return s, nil
}
