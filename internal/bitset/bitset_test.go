package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	s := New(130) // spans three words
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("fresh set: Len=%d Count=%d", s.Len(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) = true after Remove")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
}

func TestHasOutOfRangeIsFalse(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Error("out-of-range Has must be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(10) on length-10 set did not panic")
		}
	}()
	New(10).Add(10)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromIndices(t *testing.T) {
	s, err := FromIndices(8, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "01010100" {
		t.Fatalf("String = %q", s.String())
	}
	if _, err := FromIndices(8, []int{8}); err == nil {
		t.Error("FromIndices out of range: want error")
	}
	if _, err := FromIndices(8, []int{-1}); err == nil {
		t.Error("FromIndices negative: want error")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, _ := FromIndices(100, []int{1, 50, 99})
	b, _ := FromIndices(100, []int{2, 50})
	u := a.Clone()
	if err := u.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if got := u.Indices(); len(got) != 4 {
		t.Fatalf("union indices = %v", got)
	}
	i := a.Clone()
	if err := i.IntersectWith(b); err != nil {
		t.Fatal(err)
	}
	if got := i.Indices(); len(got) != 1 || got[0] != 50 {
		t.Fatalf("intersect indices = %v", got)
	}
	if err := u.UnionWith(New(5)); err == nil {
		t.Error("union mismatched lengths: want error")
	}
	if err := u.IntersectWith(New(5)); err == nil {
		t.Error("intersect mismatched lengths: want error")
	}
}

func TestEqualAndSubset(t *testing.T) {
	a, _ := FromIndices(70, []int{0, 65})
	b, _ := FromIndices(70, []int{0, 65})
	c, _ := FromIndices(70, []int{0})
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c")
	}
	if a.Equal(New(71)) {
		t.Error("length-mismatched Equal must be false")
	}
	if !c.SubsetOf(a) {
		t.Error("c ⊄ a")
	}
	if a.SubsetOf(c) {
		t.Error("a ⊆ c")
	}
	if a.SubsetOf(New(71)) {
		t.Error("length-mismatched SubsetOf must be false")
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromIndices(10, []int{3})
	b := a.Clone()
	b.Add(4)
	if a.Has(4) {
		t.Error("mutating clone affected original")
	}
}

func TestIndicesAndFull(t *testing.T) {
	s := New(5)
	for i := 0; i < 5; i++ {
		s.Add(i)
	}
	if !s.Full() {
		t.Error("Full() = false on full set")
	}
	want := []int{0, 1, 2, 3, 4}
	got := s.Indices()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v", got)
		}
	}
	if New(3).Full() {
		t.Error("empty set reported Full")
	}
	if !New(0).Full() {
		t.Error("zero-length set should be trivially full")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		back, err := FromWords(n, s.Words())
		if err != nil {
			t.Fatalf("n=%d FromWords: %v", n, err)
		}
		if !back.Equal(s) {
			t.Fatalf("n=%d round trip mismatch", n)
		}
	}
}

func TestFromWordsRejectsMalformed(t *testing.T) {
	if _, err := FromWords(10, []uint64{0, 0}); err == nil {
		t.Error("wrong word count: want error")
	}
	if _, err := FromWords(10, []uint64{1 << 10}); err == nil {
		t.Error("bit beyond length: want error")
	}
	if _, err := FromWords(-1, nil); err == nil {
		t.Error("negative length: want error")
	}
	if _, err := FromWords(64, []uint64{^uint64(0)}); err != nil {
		t.Errorf("full final word at exact boundary should be valid: %v", err)
	}
}

func TestUnionIsCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 128
		a := New(n)
		b := New(n)
		for _, x := range xs {
			a.Add(int(x) % n)
		}
		for _, y := range ys {
			b.Add(int(y) % n)
		}
		ab := a.Clone()
		_ = ab.UnionWith(b)
		ba := b.Clone()
		_ = ba.UnionWith(a)
		return ab.Equal(ba) && a.SubsetOf(ab) && b.SubsetOf(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesIndicesProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		const n = 200
		s := New(n)
		for _, x := range xs {
			s.Add(int(x) % n)
		}
		return s.Count() == len(s.Indices())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s, _ := FromIndices(4, []int{0, 3})
	if s.String() != "1001" {
		t.Errorf("String = %q, want 1001", s.String())
	}
}
