package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hypercube"
	"repro/internal/wire"
)

// gatherView is a node's working copy of the stage's bitonic-sequence
// view (the paper's LBS plus its lmask): values indexed by subcube
// slot, with a knowledge mask saying which slots have been collected.
// Alongside the values it maintains incremental multiset digests, one
// per half of the subcube, so Φ_F can compare a stage's half against
// the previous stage in O(1) and Φ_C can short-circuit whole-view
// comparisons (see wire.Digest).
type gatherView struct {
	sc   hypercube.Subcube
	have bitset.Set
	vals []int64
	// dig[0] digests the collected slots in [0, size/2), dig[1] those
	// in [size/2, size). Maintained under every set/adopt so reading
	// either half — or their merge, the full view — is O(1).
	dig [2]wire.Digest
}

func newGatherView(sc hypercube.Subcube) *gatherView {
	g := &gatherView{}
	g.reset(sc)
	return g
}

// reset reinitializes the view for a new subcube, reusing storage so a
// node's per-stage views share one arena across the whole run.
func (g *gatherView) reset(sc hypercube.Subcube) {
	g.sc = sc
	g.have.Reset(sc.Size())
	g.dig = [2]wire.Digest{}
	if cap(g.vals) < sc.Size() {
		g.vals = make([]int64, sc.Size())
	} else {
		g.vals = g.vals[:sc.Size()]
		for i := range g.vals {
			g.vals[i] = 0
		}
	}
}

// halfOf maps a slot index to the digest half it belongs to.
func (g *gatherView) halfOf(slot int) int {
	if slot < g.sc.Size()/2 {
		return 0
	}
	return 1
}

// halfDig returns the digest of the collected slots in the given half.
func (g *gatherView) halfDig(i int) wire.Digest { return g.dig[i] }

// viewDigest returns the digest of every collected slot.
func (g *gatherView) viewDigest() wire.Digest { return g.dig[0].Merged(g.dig[1]) }

// set records the value for an absolute node label.
func (g *gatherView) set(nodeLabel int, v int64) {
	slot := nodeLabel - g.sc.Start
	if g.have.Has(slot) {
		g.dig[g.halfOf(slot)].Remove(g.vals[slot])
	}
	g.have.Add(slot)
	g.vals[slot] = v
	g.dig[g.halfOf(slot)].Add(v)
}

// complete reports whether every slot has been collected.
func (g *gatherView) complete() bool { return g.have.Full() }

// values returns a copy of the assembled sequence; valid only when
// complete.
func (g *gatherView) values() []int64 {
	out := make([]int64, len(g.vals))
	copy(out, g.vals)
	return out
}

// wireView converts the working view to its wire representation.
func (g *gatherView) wireView() wire.View {
	return g.wireViewInto(nil)
}

// wireViewInto is wireView with a caller-owned Vals scratch (grown as
// needed and returned inside the view). The result's Mask shares the
// working view's storage and its Vals share the scratch, so it must be
// encoded before the view or scratch changes — which every send path
// does immediately.
func (g *gatherView) wireViewInto(scratch []int64) wire.View {
	vals := scratch[:0]
	g.have.Each(func(idx int) bool {
		vals = append(vals, g.vals[idx])
		return true
	})
	return wire.View{
		Base:     int32(g.sc.Start),
		Size:     int32(g.sc.Size()),
		BlockLen: 1,
		Mask:     g.have,
		Vals:     vals,
		Dig:      g.viewDigest(),
	}
}

// mergeChecked implements the heart of Φ_C (Figure 4c): fold a
// received view into the local one. For every slot the sender claims:
// if we already hold a copy (collected via a vertex-disjoint relay
// path), the two copies must be identical; otherwise we adopt it. The
// sender's claimed mask must exactly match the knowledge the exchange
// schedule entitles it to (the vect_mask prediction) — claiming more
// is fabrication, claiming less is withholding, and both are faults.
//
// When the sender's mask equals ours the merge can only compare copies,
// never adopt, so the relayed digest stands in for the whole walk: a
// digest match accepts in O(1) (DigestHit), a mismatch runs the
// element walk to produce the usual slot-level conflict evidence
// (DigestMiss). If the walk finds no conflict, the sender's aggregate
// digest disagrees with the entries it relayed — itself Byzantine
// evidence against the sender. When masks differ the fast path does
// not apply (DigestNone) and the merge walks entries as before.
func (g *gatherView) mergeChecked(rv wire.View, expected bitset.Set) (DigestOutcome, error) {
	if err := rv.Validate(); err != nil {
		return DigestNone, fmt.Errorf("malformed view: %w", err)
	}
	if int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return DigestNone, fmt.Errorf("view bounds [%d,+%d) do not match subcube %v", rv.Base, rv.Size, g.sc)
	}
	if !rv.Mask.Equal(expected) {
		return DigestNone, fmt.Errorf("claimed knowledge mask %s differs from schedule's %s", rv.Mask.String(), expected.String())
	}
	if rv.Mask.Equal(g.have) {
		if rv.Dig == g.viewDigest() {
			return DigestHit, nil
		}
		if err := g.adopt(rv); err != nil {
			return DigestMiss, err
		}
		return DigestMiss, fmt.Errorf("view digest inconsistent with relayed entries")
	}
	return DigestNone, g.adopt(rv)
}

// adopt folds the (already validated) view's entries in: overlapping
// copies must agree, missing slots are adopted. Iteration uses the
// mask's allocation-free Each, keeping the per-exchange merge garbage-
// free.
func (g *gatherView) adopt(rv wire.View) error {
	var conflict error
	vi := 0
	rv.Mask.Each(func(idx int) bool {
		v := rv.Vals[vi]
		vi++
		if g.have.Has(idx) {
			if g.vals[idx] != v {
				conflict = fmt.Errorf("slot %d (node %d): held copy %d disagrees with relayed copy %d",
					idx, g.sc.Start+idx, g.vals[idx], v)
				return false
			}
			return true
		}
		g.have.Add(idx)
		g.vals[idx] = v
		g.dig[g.halfOf(idx)].Add(v)
		return true
	})
	return conflict
}

// mergeTrusting folds a received view in while believing the sender's
// claimed mask (the TrustSenderMasks ablation): overlapping copies are
// still compared, but fabricated or withheld knowledge claims are not
// rejected at merge time.
func (g *gatherView) mergeTrusting(rv wire.View) error {
	if err := rv.Validate(); err != nil {
		return fmt.Errorf("malformed view: %w", err)
	}
	if int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return fmt.Errorf("view bounds [%d,+%d) do not match subcube %v", rv.Base, rv.Size, g.sc)
	}
	return g.adopt(rv)
}

// mergeLenient folds a received view in without any checking: slots we
// lack are adopted, conflicts are ignored. Byzantine (SkipChecks)
// nodes use it so they keep participating without self-reporting.
func (g *gatherView) mergeLenient(rv wire.View) {
	if rv.Validate() != nil || int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return
	}
	vi := 0
	rv.Mask.Each(func(idx int) bool {
		v := rv.Vals[vi]
		vi++
		if !g.have.Has(idx) {
			g.have.Add(idx)
			g.vals[idx] = v
			g.dig[g.halfOf(idx)].Add(v)
		}
		return true
	})
}
