package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hypercube"
	"repro/internal/wire"
)

// gatherView is a node's working copy of the stage's bitonic-sequence
// view (the paper's LBS plus its lmask): values indexed by subcube
// slot, with a knowledge mask saying which slots have been collected.
type gatherView struct {
	sc   hypercube.Subcube
	have bitset.Set
	vals []int64
}

func newGatherView(sc hypercube.Subcube) *gatherView {
	g := &gatherView{}
	g.reset(sc)
	return g
}

// reset reinitializes the view for a new subcube, reusing storage so a
// node's per-stage views share one arena across the whole run.
func (g *gatherView) reset(sc hypercube.Subcube) {
	g.sc = sc
	g.have.Reset(sc.Size())
	if cap(g.vals) < sc.Size() {
		g.vals = make([]int64, sc.Size())
	} else {
		g.vals = g.vals[:sc.Size()]
		for i := range g.vals {
			g.vals[i] = 0
		}
	}
}

// set records the value for an absolute node label.
func (g *gatherView) set(nodeLabel int, v int64) {
	g.have.Add(nodeLabel - g.sc.Start)
	g.vals[nodeLabel-g.sc.Start] = v
}

// complete reports whether every slot has been collected.
func (g *gatherView) complete() bool { return g.have.Full() }

// values returns a copy of the assembled sequence; valid only when
// complete.
func (g *gatherView) values() []int64 {
	out := make([]int64, len(g.vals))
	copy(out, g.vals)
	return out
}

// wireView converts the working view to its wire representation.
func (g *gatherView) wireView() wire.View {
	return g.wireViewInto(nil)
}

// wireViewInto is wireView with a caller-owned Vals scratch (grown as
// needed and returned inside the view). The result's Mask shares the
// working view's storage and its Vals share the scratch, so it must be
// encoded before the view or scratch changes — which every send path
// does immediately.
func (g *gatherView) wireViewInto(scratch []int64) wire.View {
	vals := scratch[:0]
	g.have.Each(func(idx int) bool {
		vals = append(vals, g.vals[idx])
		return true
	})
	return wire.View{
		Base:     int32(g.sc.Start),
		Size:     int32(g.sc.Size()),
		BlockLen: 1,
		Mask:     g.have,
		Vals:     vals,
	}
}

// mergeChecked implements the heart of Φ_C (Figure 4c): fold a
// received view into the local one. For every slot the sender claims:
// if we already hold a copy (collected via a vertex-disjoint relay
// path), the two copies must be identical; otherwise we adopt it. The
// sender's claimed mask must exactly match the knowledge the exchange
// schedule entitles it to (the vect_mask prediction) — claiming more
// is fabrication, claiming less is withholding, and both are faults.
func (g *gatherView) mergeChecked(rv wire.View, expected bitset.Set) error {
	if err := rv.Validate(); err != nil {
		return fmt.Errorf("malformed view: %w", err)
	}
	if int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return fmt.Errorf("view bounds [%d,+%d) do not match subcube %v", rv.Base, rv.Size, g.sc)
	}
	if !rv.Mask.Equal(expected) {
		return fmt.Errorf("claimed knowledge mask %s differs from schedule's %s", rv.Mask.String(), expected.String())
	}
	return g.adopt(rv)
}

// adopt folds the (already validated) view's entries in: overlapping
// copies must agree, missing slots are adopted. Iteration uses the
// mask's allocation-free Each, keeping the per-exchange merge garbage-
// free.
func (g *gatherView) adopt(rv wire.View) error {
	var conflict error
	vi := 0
	rv.Mask.Each(func(idx int) bool {
		v := rv.Vals[vi]
		vi++
		if g.have.Has(idx) {
			if g.vals[idx] != v {
				conflict = fmt.Errorf("slot %d (node %d): held copy %d disagrees with relayed copy %d",
					idx, g.sc.Start+idx, g.vals[idx], v)
				return false
			}
			return true
		}
		g.have.Add(idx)
		g.vals[idx] = v
		return true
	})
	return conflict
}

// mergeTrusting folds a received view in while believing the sender's
// claimed mask (the TrustSenderMasks ablation): overlapping copies are
// still compared, but fabricated or withheld knowledge claims are not
// rejected at merge time.
func (g *gatherView) mergeTrusting(rv wire.View) error {
	if err := rv.Validate(); err != nil {
		return fmt.Errorf("malformed view: %w", err)
	}
	if int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return fmt.Errorf("view bounds [%d,+%d) do not match subcube %v", rv.Base, rv.Size, g.sc)
	}
	return g.adopt(rv)
}

// mergeLenient folds a received view in without any checking: slots we
// lack are adopted, conflicts are ignored. Byzantine (SkipChecks)
// nodes use it so they keep participating without self-reporting.
func (g *gatherView) mergeLenient(rv wire.View) {
	if rv.Validate() != nil || int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() {
		return
	}
	vi := 0
	rv.Mask.Each(func(idx int) bool {
		v := rv.Vals[vi]
		vi++
		if !g.have.Has(idx) {
			g.have.Add(idx)
			g.vals[idx] = v
		}
		return true
	})
}
