// Package core implements S_FT, the paper's primary contribution: the
// fault-tolerant distributed bitonic sort built with the
// application-oriented fault tolerance paradigm (Figure 3).
//
// The algorithm runs the bitonic schedule of S_NR unchanged, but every
// message additionally piggybacks the sender's partial view of the
// previous stage's output sequence (the LBS). Views spread through the
// same exchanges the sort already performs; because every pair
// exchange echoes the merged view back, each value travels to each
// checker along vertex-disjoint paths, and any two copies that meet
// must agree (Φ_C). At the end of each stage the fully assembled
// previous-stage sequence is checked for shape (Φ_P) and for being a
// permutation of the stage before it (Φ_F). A final pure-exchange
// round verifies the last stage's output. The result is fail-stop
// behaviour from Byzantine parts: the sort completes correctly or some
// honest node signals ERROR to the host and halts — it never silently
// delivers a wrong permutation (Theorem 3).
package core

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hypercube"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TraceEvent reports a node's assembled, verified sequence at the end
// of a stage; cmd/tracesort uses it to reproduce the paper's Figure 5
// worked example.
//
// Deprecated: subscribe to obs.StageView through Options.Obs instead;
// stage views carry the same assembled sequence plus the causal event
// id that joins them against forensic dumps. TraceEvent remains for
// compatibility and will receive no new fields.
type TraceEvent struct {
	// Node is the reporting node.
	Node int
	// Stage is the completed stage index, or Dim for the final
	// verification round.
	Stage int
	// Final marks the final verification round.
	Final bool
	// Subcube is the home subcube the sequence covers.
	Subcube hypercube.Subcube
	// Assembled is the gathered sequence (the verified LBS): the
	// output of stage Stage-1 for regular stages, the final sorted
	// sequence when Final.
	Assembled []int64
}

// Options tunes one node's S_FT program. The zero value is the honest
// protocol.
type Options struct {
	// Tamper, when non-nil, intercepts every outgoing message just
	// before transmission, modelling a Byzantine processor. It may
	// mutate the message, return a replacement, or return nil to stay
	// silent. From/To are stamped before the call so strategies can
	// vary by receiver (the split-lie attack Φ_C exists to catch).
	Tamper func(m *wire.Message) *wire.Message
	// Compare, when non-nil, replaces the node's compare-exchange
	// comparator: Compare(stage, a, b) reports whether a orders at or
	// before b. A lying comparator models Geissmann et al.'s faulty
	// comparisons — the node runs the schedule faithfully but routes
	// keys by wrong answers, which honest partners must catch at the
	// application level (misordered replies, Φ_P violations). Nil is
	// the honest machine comparator.
	Compare func(stage int, a, b int64) bool
	// CorruptMemory, when non-nil, is invoked at every stage boundary
	// (stages >= 1 and before the final verification round, with the
	// cube dimension as the stage label) on the node's resident key
	// slice, modelling Kopelowitz & Talmon's faulty memory: cells that
	// corrupt between accesses. The hook may mutate the slice in
	// place; the node then proceeds honestly on the corrupted state.
	CorruptMemory func(stage int, keys []int64)
	// SkipChecks disables the node's own executable assertions: a
	// malicious processor does not report itself. Honest peers are
	// the ones expected to detect it.
	SkipChecks bool
	// Trace, when non-nil, receives a TraceEvent at the end of every
	// stage and after the final verification.
	//
	// Deprecated: use Options.Obs with a StageSubscriber; published
	// stage views additionally carry the causal event id forensic
	// dumps key on.
	Trace func(ev TraceEvent)
	// Forensic, when non-nil, is this node's flight recorder: predicate
	// evaluations, view merges, and accusations are recorded alongside
	// the transport's send/recv events, and a predicate failure
	// triggers a forensic dump of every ring. Use the same
	// forensic.Flight the transport was configured with so causal
	// chains cross the wire. Recording reads the endpoint clock but
	// never charges it, and appends are allocation-free, so attaching a
	// recorder perturbs neither virtual time nor the zero-alloc
	// exchange path.
	Forensic *forensic.Recorder
	// Obs, when non-nil, receives stage/round spans, Φ evaluations,
	// accusations, and stage views. Recording reads the endpoint clock
	// but never charges it, so virtual-time results are identical with
	// and without an observer; all Observer methods are nil-safe and
	// allocation-free, so the steady-state exchange path stays
	// zero-allocation.
	Obs *obs.Observer
	// Parallelism caps the worker count for data-parallel merge paths
	// (bitonic.MergeSplitParallelInto and friends). <= 0 means
	// GOMAXPROCS. The scalar S_FT sort exchanges a single key per round
	// so it has no parallel merge site of its own; the knob lives here
	// because Options is the shared tuning surface the block variants
	// (blocksort, reliablesort) mirror and thread through to their
	// merge-split calls.
	Parallelism int

	// The remaining flags are ablation switches used to quantify how
	// much each mechanism of the paradigm contributes (DESIGN.md §5).
	// Production callers leave them false.

	// TrustSenderMasks skips the vect_mask validation of claimed
	// knowledge masks in Φ_C: any mask the sender claims is believed.
	// Detection of fabrication/withholding then falls to later
	// conflict or completeness checks — the ablation measures the
	// added detection latency.
	TrustSenderMasks bool
	// SkipFinalVerification drops the final pure-exchange round. The
	// last stage's output is then unchecked, and a last-stage lie
	// becomes silent corruption — the ablation that shows why the
	// paper adds the extra round.
	SkipFinalVerification bool
	// SeparateCheckMessages sends each view in its own message after
	// the compare-exchange keys instead of piggybacking, doubling the
	// main-loop message count. The ablation quantifies the messaging
	// overhead piggybacking avoids. All nodes of a run must agree on
	// this flag.
	SeparateCheckMessages bool
}

// NodeProgram returns the S_FT program for one node with initial key
// key. On successful completion the node's final key is written to
// *out (each node writes only its own slot).
func NodeProgram(key int64, out *int64, opts Options) node.Program {
	return func(ep transport.Endpoint) error {
		r := &sftRunner{ep: ep, opts: opts}
		a, err := r.run(key)
		if err != nil {
			return err
		}
		*out = a
		return nil
	}
}

type sftRunner struct {
	ep   transport.Endpoint
	opts Options

	// Per-node arenas reused across every stage and iteration so the
	// steady-state exchange path performs no allocation: payload
	// encoding scratch, zero-copy decode scratch, the gather view
	// itself, the wire-view Vals staging area, the two-key send buffer,
	// and the vect_mask prediction scratch.
	enc    []byte
	dec    wire.DecodeScratch
	view   gatherView
	wvVals []int64
	keyBuf [2]int64
	expect bitset.Set
}

// fail constructs the node's predicate error with no specific accused
// node (shape evidence); failFrom is the variant used when the
// evidence implicates a sender, failAbsent when the evidence is a
// missing message.
func (r *sftRunner) fail(kind error, stage, iter int, format string, args ...any) error {
	return r.failEvidence(kind, KindShape, stage, iter, -1, format, args...)
}

func (r *sftRunner) failFrom(kind error, stage, iter, accused int, format string, args ...any) error {
	return r.failEvidence(kind, KindValue, stage, iter, accused, format, args...)
}

func (r *sftRunner) failAbsent(kind error, stage, iter, accused int, format string, args ...any) error {
	return r.failEvidence(kind, KindAbsence, stage, iter, accused, format, args...)
}

// failEvidence constructs the node's predicate error, signals ERROR
// (with the evidence kind and accused node) to the host — the reliable
// diagnostic channel of the paradigm — and returns the error so the
// node fail-stops.
func (r *sftRunner) failEvidence(kind error, ev ErrorKind, stage, iter, accused int, format string, args ...any) error {
	if accused >= 0 {
		r.opts.Obs.Accusation(r.ep.ID(), stage, iter, accused, int64(r.ep.Clock()))
	}
	pe := &PredicateError{
		Node:     r.ep.ID(),
		Stage:    stage,
		Iter:     iter,
		Kind:     kind,
		Evidence: ev,
		Accused:  accused,
		Detail:   fmt.Sprintf(format, args...),
	}
	// The accusation is recorded (and the forensic dump taken) before
	// the ERROR signal leaves, so the report's rings cannot contain the
	// signalling itself — only the evidence that led to it.
	r.opts.Forensic.Accuse(forensic.PredCode(PredicateName(kind)), uint8(ev),
		int32(stage), int32(iter), int32(accused), pe.Detail, int64(r.ep.Clock()))
	// Host signalling is best-effort: the host link is reliable by
	// assumption, but a full mailbox must not mask the local error.
	_ = r.ep.SendHost(wire.Message{
		Kind:  wire.KindError,
		Stage: int32(stage),
		Iter:  int32(iter),
		Payload: wire.EncodeError(wire.ErrorPayload{
			Predicate: PredicateName(kind),
			Kind:      uint8(ev),
			Accused:   int32(accused),
			Detail:    pe.Detail,
		}),
	})
	return pe
}

// phiCheck reports one constraint-predicate evaluation to the
// observer and the flight recorder. A no-op without either.
func (r *sftRunner) phiCheck(p obs.Phi, stage, iter int, pass bool) {
	r.opts.Obs.PhiCheck(p, r.ep.ID(), stage, iter, pass, int64(r.ep.Clock()))
	r.opts.Forensic.Phi(PhiPred(p), int32(stage), int32(iter), pass,
		r.view.viewDigest(), int64(r.ep.Clock()))
}

// PhiPred maps an obs predicate label to its forensic record code.
func PhiPred(p obs.Phi) uint8 {
	switch p {
	case obs.PhiP:
		return forensic.PredProgress
	case obs.PhiF:
		return forensic.PredFeasibility
	case obs.PhiC:
		return forensic.PredConsistency
	default:
		return forensic.PredNone
	}
}

func (r *sftRunner) run(key int64) (int64, error) {
	id := r.ep.ID()
	topo := r.ep.Topology()
	n := topo.Dim()
	a := key
	if n == 0 {
		return a, nil // a single node is trivially sorted
	}

	// prevSeq is the verified output of stage s-2 over prevSC = SC_s,
	// i.e. the paper's LLBS; prevDig is its multiset digest, saved at
	// the previous stage boundary so Φ_F's common case is an O(1)
	// digest comparison against the matching half of the current view.
	var prevSeq []int64
	var prevSC hypercube.Subcube
	var prevDig wire.Digest

	for s := 0; s < n; s++ {
		// Faulty-memory hook: the resident key may corrupt between
		// stages (never before the first exchange, per environmental
		// assumption 5 — a stage-0 corruption would be different input).
		if r.opts.CorruptMemory != nil && s > 0 {
			r.keyBuf[0] = a
			r.opts.CorruptMemory(s, r.keyBuf[:1])
			a = r.keyBuf[0]
		}
		stageVT := int64(r.ep.Clock())
		r.opts.Obs.StageBegin(id, s, false, stageVT)
		sc, err := topo.HomeSubcube(s+1, id)
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		view := &r.view
		view.reset(sc)
		view.set(id, a) // seed LBS with this stage's starting value
		for j := s; j >= 0; j-- {
			r.opts.Obs.RoundBegin(id, s, j, int64(r.ep.Clock()))
			a, err = r.ftExchange(view, a, s, j)
			if err != nil {
				return 0, err
			}
			r.opts.Obs.RoundEnd(id, s, j, int64(r.ep.Clock()))
		}
		if !view.complete() && !r.opts.SkipChecks {
			r.phiCheck(obs.PhiC, s, -1, false)
			return 0, r.fail(ErrConsistency, s, -1,
				"stage gather incomplete: mask %s", view.have.String())
		}
		assembled := view.values()
		if s > 0 && !r.opts.SkipChecks {
			// bit_compare: Φ_P over the assembled previous-stage
			// output, Φ_F over this node's half against LLBS. The
			// charges reflect Lemma 8's O(2^i) bound.
			r.ep.ChargeCompare(len(assembled))
			perr := Progress(assembled, false)
			r.phiCheck(obs.PhiP, s, -1, perr == nil)
			if perr != nil {
				return 0, r.fail(ErrProgress, s, -1, "%v", perr)
			}
			myHalf := halfContaining(assembled, sc, prevSC)
			// Φ_F fast path: the view maintains one digest per half of
			// the home subcube, and prevSC is exactly one of those
			// halves, so the permutation test is a digest comparison.
			// Equal multisets always digest equally, so a mismatch
			// proves a real difference and the element-level scan runs
			// only to produce today's attribution evidence (it remains
			// authoritative: whatever it reports is the verdict).
			halfIdx := 1
			if prevSC.Start == sc.Start {
				halfIdx = 0
			}
			r.ep.ChargeCompare(wire.DigestCompareCost)
			var ferr error
			if view.halfDig(halfIdx) == prevDig {
				r.opts.Obs.DigestCheck(true)
			} else {
				r.opts.Obs.DigestCheck(false)
				r.opts.Obs.DigestSlowScan()
				r.ep.ChargeCompare(2 * len(prevSeq))
				ferr = Feasibility(prevSeq, myHalf)
			}
			r.phiCheck(obs.PhiF, s, -1, ferr == nil)
			if ferr != nil {
				return 0, r.fail(ErrFeasibility, s, -1, "%v", ferr)
			}
		}
		r.ep.ChargeKeyMove(len(assembled)) // LLBS update
		if r.opts.Trace != nil {
			r.opts.Trace(TraceEvent{Node: id, Stage: s, Subcube: sc, Assembled: assembled})
		}
		r.opts.Obs.StageEnd(id, s, false, stageVT, int64(r.ep.Clock()))
		r.opts.Obs.PublishStage(obs.StageView{
			Node: id, Stage: s,
			SubcubeStart: sc.Start, SubcubeSize: sc.Size(),
			BlockLen: 1, Assembled: assembled,
			Causal: r.opts.Forensic.LastID(),
		})
		prevSeq = assembled
		prevSC = sc
		prevDig = view.viewDigest()
	}

	if r.opts.SkipFinalVerification {
		// Ablation: the last stage's output goes unchecked.
		return a, nil
	}

	// Faulty memory can also strike between the last stage and the
	// final verification round — the corruption Theorem 3's extra
	// round exists to expose.
	if r.opts.CorruptMemory != nil {
		r.keyBuf[0] = a
		r.opts.CorruptMemory(n, r.keyBuf[:1])
		a = r.keyBuf[0]
	}

	// Final verification: a pure exchange of the final sorted values
	// over the whole cube, then the last bit_compare.
	finalVT := int64(r.ep.Clock())
	r.opts.Obs.StageBegin(id, n, true, finalVT)
	scAll, err := topo.HomeSubcube(n, id)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	view := &r.view
	view.reset(scAll)
	view.set(id, a)
	for j := n - 1; j >= 0; j-- {
		r.opts.Obs.RoundBegin(id, n, j, int64(r.ep.Clock()))
		if err := r.verifyExchange(view, n-1, j); err != nil {
			return 0, err
		}
		r.opts.Obs.RoundEnd(id, n, j, int64(r.ep.Clock()))
	}
	if !view.complete() && !r.opts.SkipChecks {
		r.phiCheck(obs.PhiC, n, -1, false)
		return 0, r.fail(ErrConsistency, n, -1,
			"final gather incomplete: mask %s", view.have.String())
	}
	finalSeq := view.values()
	if !r.opts.SkipChecks {
		r.ep.ChargeCompare(len(finalSeq))
		perr := Progress(finalSeq, true)
		r.phiCheck(obs.PhiP, n, -1, perr == nil)
		if perr != nil {
			return 0, r.fail(ErrProgress, n, -1, "%v", perr)
		}
		// Final Φ_F: the verification round re-gathers the whole cube,
		// so the full view digest stands in for the permutation scan.
		r.ep.ChargeCompare(wire.DigestCompareCost)
		var ferr error
		if view.viewDigest() == prevDig {
			r.opts.Obs.DigestCheck(true)
		} else {
			r.opts.Obs.DigestCheck(false)
			r.opts.Obs.DigestSlowScan()
			r.ep.ChargeCompare(2 * len(prevSeq))
			ferr = Feasibility(prevSeq, finalSeq)
		}
		r.phiCheck(obs.PhiF, n, -1, ferr == nil)
		if ferr != nil {
			return 0, r.fail(ErrFeasibility, n, -1, "%v", ferr)
		}
	}
	if r.opts.Trace != nil {
		r.opts.Trace(TraceEvent{Node: id, Stage: n, Final: true, Subcube: scAll, Assembled: finalSeq})
	}
	r.opts.Obs.StageEnd(id, n, true, finalVT, int64(r.ep.Clock()))
	r.opts.Obs.PublishStage(obs.StageView{
		Node: id, Stage: n, Final: true,
		SubcubeStart: scAll.Start, SubcubeSize: scAll.Size(),
		BlockLen: 1, Assembled: finalSeq,
		Causal: r.opts.Forensic.LastID(),
	})
	return a, nil
}

// halfContaining slices the assembled sequence (over sc) down to the
// node's own previous home subcube prevSC.
func halfContaining(assembled []int64, sc, prevSC hypercube.Subcube) []int64 {
	lo := prevSC.Start - sc.Start
	hi := lo + prevSC.Size()
	return assembled[lo:hi]
}

// ftExchange performs the stage-s iteration-j compare-exchange of
// Figure 3, with the piggybacked view merge (Φ_C) on both sides, and
// returns the node's new key.
func (r *sftRunner) ftExchange(view *gatherView, a int64, s, j int) (int64, error) {
	id := r.ep.ID()
	topo := r.ep.Topology()
	partner, err := topo.Partner(id, j)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	ascending := topo.Ascending(s, id)

	if hypercube.Active(id, j) {
		// Active side: receive the partner's key and pre-merge view,
		// run Φ_C, compare-exchange, and reply with both keys and the
		// merged (echoed) view.
		keys, rv, ok, err := r.recvParts(j, s, partner)
		if err != nil {
			return 0, err
		}
		var data int64
		haveData := false
		if ok {
			switch {
			case len(keys) != 1 && !r.opts.SkipChecks:
				return 0, r.failFrom(ErrProtocol, s, j, partner, "expected 1 key from %d, got %d", partner, len(keys))
			default:
				if len(keys) == 1 {
					data = keys[0]
					haveData = true
				}
				if err := r.mergeView(view, rv, s, j, partner, false); err != nil {
					return 0, err
				}
				// At the stage's first iteration the passive node's key
				// must match its seeded view entry: its stage-start value.
				if j == s && !r.opts.SkipChecks && haveData {
					if idx := partner - view.sc.Start; view.have.Has(idx) && view.vals[idx] != data {
						return 0, r.failFrom(ErrProtocol, s, j, partner,
							"node %d sent key %d but its view claims %d", partner, data, view.vals[idx])
					}
				}
			}
		}
		if !haveData {
			// No usable key (only possible for SkipChecks nodes);
			// degrade to keeping our own value.
			data = a
		}
		r.ep.ChargeCompare(1)
		leq := data <= a
		if r.opts.Compare != nil {
			leq = r.opts.Compare(s, data, a)
		}
		lo, hi := data, a
		if !leq {
			lo, hi = a, data
		}
		keep, give := lo, hi
		if !ascending {
			keep, give = hi, lo
		}
		r.keyBuf[0], r.keyBuf[1] = keep, give
		if err := r.sendParts(j, s, r.keyBuf[:2], view); err != nil {
			return 0, err
		}
		return keep, nil
	}

	// Passive side: send our key and current view, then adopt the
	// returned key after validating the pair.
	r.keyBuf[0] = a
	if err := r.sendParts(j, s, r.keyBuf[:1], view); err != nil {
		return 0, err
	}
	keys, rv, ok, err := r.recvParts(j, s, partner)
	if err != nil {
		return 0, err
	}
	if !ok {
		return a, nil // SkipChecks node tolerating a dead partner
	}
	if len(keys) != 2 {
		if r.opts.SkipChecks {
			return a, nil
		}
		return 0, r.failFrom(ErrProtocol, s, j, partner, "expected 2 keys from %d, got %d", partner, len(keys))
	}
	if err := r.mergeView(view, rv, s, j, partner, true); err != nil {
		return 0, err
	}
	keep, give := keys[0], keys[1]
	if !r.opts.SkipChecks {
		// The returned pair must contain our contributed key and be
		// oriented per the schedule's direction.
		if keep != a && give != a {
			return 0, r.failFrom(ErrProtocol, s, j, partner,
				"compare-exchange reply (%d,%d) from %d lost our key %d", keep, give, partner, a)
		}
		if ascending && keep > give {
			return 0, r.failFrom(ErrProtocol, s, j, partner,
				"ascending compare-exchange reply (%d,%d) from %d misordered", keep, give, partner)
		}
		if !ascending && keep < give {
			return 0, r.failFrom(ErrProtocol, s, j, partner,
				"descending compare-exchange reply (%d,%d) from %d misordered", keep, give, partner)
		}
		// At the stage's first iteration we also know the active
		// node's stage-start value from the echoed view, so the whole
		// compare-exchange is verifiable.
		if j == s {
			if idx := partner - view.sc.Start; view.have.Has(idx) {
				other := view.vals[idx]
				lo, hi := other, a
				if lo > hi {
					lo, hi = hi, lo
				}
				wantKeep, wantGive := lo, hi
				if !ascending {
					wantKeep, wantGive = hi, lo
				}
				if keep != wantKeep || give != wantGive {
					return 0, r.failFrom(ErrProtocol, s, j, partner,
						"compare-exchange of (%d,%d) by %d returned (%d,%d), want (%d,%d)",
						other, a, partner, keep, give, wantKeep, wantGive)
				}
			}
		}
	}
	return give, nil
}

// verifyExchange performs one iteration of the final pure-exchange
// verification round.
func (r *sftRunner) verifyExchange(view *gatherView, s, j int) error {
	id := r.ep.ID()
	partner, err := r.ep.Topology().Partner(id, j)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	stageLabel := s + 1 // distinguishes the final round in message headers

	if hypercube.Active(id, j) {
		m, ok, err := r.recvChecked(j, wire.KindVerify, stageLabel, j, partner)
		if err != nil {
			return err
		}
		if ok {
			p, derr := wire.DecodeVerifyInto(&r.dec, m.Payload)
			if derr != nil && !r.opts.SkipChecks {
				return r.failFrom(ErrProtocol, stageLabel, j, partner, "undecodable verify from %d: %v", partner, derr)
			}
			if derr == nil {
				if err := r.mergeView(view, p.View, s, j, partner, false); err != nil {
					return err
				}
			}
		}
		v := view.wireViewInto(r.wvVals)
		r.wvVals = v.Vals
		return r.sendVerify(j, wire.Message{
			Kind:  wire.KindVerify,
			Stage: int32(stageLabel),
			Iter:  int32(j),
		}, wire.VerifyPayload{View: v})
	}

	v := view.wireViewInto(r.wvVals)
	r.wvVals = v.Vals
	if err := r.sendVerify(j, wire.Message{
		Kind:  wire.KindVerify,
		Stage: int32(stageLabel),
		Iter:  int32(j),
	}, wire.VerifyPayload{View: v}); err != nil {
		return err
	}
	m, ok, err := r.recvChecked(j, wire.KindVerify, stageLabel, j, partner)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	p, derr := wire.DecodeVerifyInto(&r.dec, m.Payload)
	if derr != nil {
		if r.opts.SkipChecks {
			return nil
		}
		return r.failFrom(ErrProtocol, stageLabel, j, partner, "undecodable verify from %d: %v", partner, derr)
	}
	return r.mergeView(view, p.View, s, j, partner, true)
}

// sendParts transmits one compare-exchange leg: keys plus view,
// piggybacked in one message normally, or as two messages under the
// SeparateCheckMessages ablation. The wire view is staged in the
// runner's scratch and encoded immediately, so nothing it aliases can
// change under it.
func (r *sftRunner) sendParts(bit, s int, keys []int64, view *gatherView) error {
	v := view.wireViewInto(r.wvVals)
	r.wvVals = v.Vals
	if !r.opts.SeparateCheckMessages {
		return r.sendFT(bit, wire.Message{
			Kind:  wire.KindFTExchange,
			Stage: int32(s),
			Iter:  int32(bit),
		}, wire.FTExchangePayload{Keys: keys, View: v})
	}
	if err := r.sendExchange(bit, wire.Message{
		Kind:  wire.KindExchange,
		Stage: int32(s),
		Iter:  int32(bit),
	}, keys); err != nil {
		return err
	}
	return r.sendVerify(bit, wire.Message{
		Kind:  wire.KindVerify,
		Stage: int32(s),
		Iter:  int32(bit),
	}, wire.VerifyPayload{View: v})
}

// recvParts receives one compare-exchange leg in whichever framing the
// run uses. ok is false only for SkipChecks nodes tolerating garbage.
// Returned keys and view alias the runner's decode scratch; both are
// consumed before the next receive.
func (r *sftRunner) recvParts(bit, s, partner int) (keys []int64, v wire.View, ok bool, err error) {
	if !r.opts.SeparateCheckMessages {
		m, ok, err := r.recvChecked(bit, wire.KindFTExchange, s, bit, partner)
		if err != nil || !ok {
			return nil, wire.View{}, false, err
		}
		p, derr := wire.DecodeFTExchangeInto(&r.dec, m.Payload)
		if derr != nil {
			if r.opts.SkipChecks {
				return nil, wire.View{}, false, nil
			}
			return nil, wire.View{}, false, r.failFrom(ErrProtocol, s, bit, partner, "undecodable exchange from %d: %v", partner, derr)
		}
		return p.Keys, p.View, true, nil
	}
	m1, ok, err := r.recvChecked(bit, wire.KindExchange, s, bit, partner)
	if err != nil || !ok {
		return nil, wire.View{}, false, err
	}
	// The keys land in the scratch's key buffer and the view (below) in
	// its separate view buffers, so the second decode does not clobber
	// the first.
	kp, derr := wire.DecodeExchangeInto(&r.dec, m1.Payload)
	if derr != nil {
		if r.opts.SkipChecks {
			return nil, wire.View{}, false, nil
		}
		return nil, wire.View{}, false, r.failFrom(ErrProtocol, s, bit, partner, "undecodable keys from %d: %v", partner, derr)
	}
	m2, ok, err := r.recvChecked(bit, wire.KindVerify, s, bit, partner)
	if err != nil || !ok {
		return nil, wire.View{}, false, err
	}
	vp, derr := wire.DecodeVerifyInto(&r.dec, m2.Payload)
	if derr != nil {
		if r.opts.SkipChecks {
			return nil, wire.View{}, false, nil
		}
		return nil, wire.View{}, false, r.failFrom(ErrProtocol, s, bit, partner, "undecodable view from %d: %v", partner, derr)
	}
	return kp.Keys, vp.View, true, nil
}

// mergeView folds a received view into the local one under Φ_C. The
// expected knowledge mask is the vect_mask prediction: pre-exchange
// knowledge when the sender is the passive party (postExchange false),
// post-exchange knowledge when the sender is the active party echoing
// its merged view (postExchange true).
func (r *sftRunner) mergeView(view *gatherView, rv wire.View, s, j, sender int, postExchange bool) error {
	if r.opts.SkipChecks {
		// Φ_C work is linear in the received entries plus the
		// vect_mask evaluation (Lemma 9's O(2^{j+1} + 2^{i-j}) bound).
		r.ep.ChargeCompare(rv.Mask.Count())
		view.mergeLenient(rv)
		r.opts.Forensic.Merge(int32(s), int32(j), int64(rv.Mask.Count()),
			view.viewDigest(), int64(r.ep.Clock()))
		return nil
	}
	if r.opts.TrustSenderMasks {
		// Ablation: believe any claimed mask; only overlap conflicts
		// are still checked, entry by entry as before digests.
		r.ep.ChargeCompare(rv.Mask.Count())
		merr := view.mergeTrusting(rv)
		r.opts.Forensic.Merge(int32(s), int32(j), int64(rv.Mask.Count()),
			view.viewDigest(), int64(r.ep.Clock()))
		r.phiCheck(obs.PhiC, s, j, merr == nil)
		if merr != nil {
			return r.failFrom(ErrConsistency, s, j, sender, "view from %d: %v", sender, merr)
		}
		return nil
	}
	expected, eErr := r.expectedMask(s, j, sender, view.sc, postExchange)
	if eErr != nil {
		return fmt.Errorf("core: %w", eErr)
	}
	outcome, merr := view.mergeChecked(rv, expected)
	// Charge what the merge actually did: a digest hit replaces the
	// entry walk with two word comparisons; a miss pays both; when the
	// fast path does not apply the cost is the entry walk, as before.
	switch outcome {
	case DigestHit:
		r.ep.ChargeCompare(wire.DigestCompareCost)
		r.opts.Obs.DigestCheck(true)
	case DigestMiss:
		r.ep.ChargeCompare(wire.DigestCompareCost + rv.Mask.Count())
		r.opts.Obs.DigestCheck(false)
		r.opts.Obs.DigestSlowScan()
	default:
		r.ep.ChargeCompare(rv.Mask.Count())
	}
	r.opts.Forensic.Merge(int32(s), int32(j), int64(rv.Mask.Count()),
		view.viewDigest(), int64(r.ep.Clock()))
	r.phiCheck(obs.PhiC, s, j, merr == nil)
	if merr != nil {
		return r.failFrom(ErrConsistency, s, j, sender, "view from %d: %v", sender, merr)
	}
	return nil
}

func (r *sftRunner) expectedMask(s, j, sender int, sc hypercube.Subcube, postExchange bool) (bitset.Set, error) {
	if postExchange {
		return VectMaskInto(&r.expect, s, j, sender, sc)
	}
	return VectMaskBeforeInto(&r.expect, s, j, sender, sc)
}

// recvChecked receives from the given link and validates the header
// against the expected kind, stage, iteration, and sender. For
// SkipChecks nodes every validation failure degrades to ok == false
// rather than an error: a Byzantine node never fail-stops itself.
func (r *sftRunner) recvChecked(bit int, kind wire.Kind, stage, iter, partner int) (wire.Message, bool, error) {
	m, err := r.ep.Recv(bit)
	if err != nil {
		if r.opts.SkipChecks {
			return wire.Message{}, false, nil
		}
		if errors.Is(err, transport.ErrAbsent) {
			return wire.Message{}, false, r.failAbsent(ErrProtocol, stage, iter, partner, "receive from %d: %v", partner, err)
		}
		return wire.Message{}, false, r.failFrom(ErrProtocol, stage, iter, partner, "receive from %d: %v", partner, err)
	}
	if m.Kind != kind || int(m.Stage) != stage || int(m.Iter) != iter ||
		int(m.From) != partner || int(m.To) != r.ep.ID() {
		if r.opts.SkipChecks {
			return wire.Message{}, false, nil
		}
		return wire.Message{}, false, r.failFrom(ErrProtocol, stage, iter, partner,
			"unexpected header kind=%v stage=%d iter=%d from=%d to=%d (want kind=%v stage=%d iter=%d from=%d)",
			m.Kind, m.Stage, m.Iter, m.From, m.To, kind, stage, iter, partner)
	}
	return m, true, nil
}

// sendFT, sendVerify, and sendExchange encode their payload into the
// runner's scratch buffer and transmit. They are typed (rather than one
// method taking `any`) because interface boxing of a payload struct
// would allocate on every send.

func (r *sftRunner) sendFT(bit int, m wire.Message, p wire.FTExchangePayload) error {
	buf, err := wire.AppendFTExchange(r.enc[:0], p)
	if err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	r.enc = buf
	m.Payload = buf
	return r.transmit(bit, m)
}

func (r *sftRunner) sendVerify(bit int, m wire.Message, p wire.VerifyPayload) error {
	buf, err := wire.AppendVerify(r.enc[:0], p)
	if err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	r.enc = buf
	m.Payload = buf
	return r.transmit(bit, m)
}

func (r *sftRunner) sendExchange(bit int, m wire.Message, keys []int64) error {
	r.enc = wire.AppendExchange(r.enc[:0], keys)
	m.Payload = r.enc
	return r.transmit(bit, m)
}

// transmit applies the Byzantine tamper hook if any and sends. The
// transport copies the payload into its own buffer before returning, so
// the runner's encode scratch is immediately reusable. The tamper path
// lives in its own method: Tamper takes the message's address, which
// would otherwise force every honest send's message to the heap.
func (r *sftRunner) transmit(bit int, m wire.Message) error {
	if r.opts.Tamper != nil {
		return r.transmitTampered(bit, m)
	}
	if err := r.ep.Send(bit, m); err != nil {
		return fmt.Errorf("core: send: %w", err)
	}
	return nil
}

func (r *sftRunner) transmitTampered(bit int, m wire.Message) error {
	partner, perr := r.ep.Topology().Partner(r.ep.ID(), bit)
	if perr != nil {
		return fmt.Errorf("core: %w", perr)
	}
	m.From = int32(r.ep.ID())
	m.To = int32(partner)
	out := r.opts.Tamper(&m)
	if out == nil {
		return nil // Byzantine silence
	}
	if err := r.ep.Send(bit, *out); err != nil {
		return fmt.Errorf("core: send: %w", err)
	}
	return nil
}
