package core

import (
	"fmt"
)

// Progress implements Φ_P (Figure 4a). At the end of a regular stage,
// the assembled sequence over the home subcube SC_{i+1} is the
// previous stage's output: its lower half must be sorted ascending and
// its upper half descending (the canonical bitonic form the schedule
// produces — Lemma 2). At the final verification (final == true) the
// whole sequence must be sorted ascending. A violation means some
// processor failed to advance the computation toward the goal.
func Progress(seq []int64, final bool) error {
	if final {
		if i := firstDisorder(seq, true); i >= 0 {
			return fmt.Errorf("final sequence not ascending at offset %d (%d then %d): %w",
				i, seq[i], seq[i+1], ErrProgress)
		}
		return nil
	}
	if len(seq)%2 != 0 {
		return fmt.Errorf("stage sequence length %d is odd: %w", len(seq), ErrProgress)
	}
	half := len(seq) / 2
	if i := firstDisorder(seq[:half], true); i >= 0 {
		return fmt.Errorf("lower half not ascending at offset %d (%d then %d): %w",
			i, seq[i], seq[i+1], ErrProgress)
	}
	if i := firstDisorder(seq[half:], false); i >= 0 {
		return fmt.Errorf("upper half not descending at offset %d (%d then %d): %w",
			half+i, seq[half+i], seq[half+i+1], ErrProgress)
	}
	return nil
}

// firstDisorder returns the first index i where (seq[i], seq[i+1])
// violates the direction, or -1 when the sequence is monotonic.
func firstDisorder(seq []int64, ascending bool) int {
	for i := 1; i < len(seq); i++ {
		if ascending && seq[i-1] > seq[i] {
			return i - 1
		}
		if !ascending && seq[i-1] < seq[i] {
			return i - 1
		}
	}
	return -1
}

// Feasibility implements Φ_F (Figure 4b): the current stage's
// assembled sequence, restricted to the checking node's half, must be
// exactly the multiset of the previously verified sequence over that
// same subcube — the intermediate result stays inside the solution
// space (no sort key is invented, dropped, or duplicated). Residents
// of the other half run the mirror-image check, so the union of local
// checks is a global permutation test.
func Feasibility(prev, cur []int64) error {
	if len(prev) != len(cur) {
		return fmt.Errorf("sequence lengths %d vs %d: %w", len(prev), len(cur), ErrFeasibility)
	}
	counts := make(map[int64]int, len(prev))
	for _, v := range prev {
		counts[v]++
	}
	for _, v := range cur {
		counts[v]--
		if counts[v] < 0 {
			return fmt.Errorf("value %d appears more often than in previous stage: %w", v, ErrFeasibility)
		}
	}
	// Balanced counts with equal lengths imply none remain positive,
	// but report the first missing value explicitly for diagnostics.
	// Scan prev in order (not the counts map) so the reported value is
	// deterministic run-to-run.
	for _, v := range prev {
		if counts[v] > 0 {
			return fmt.Errorf("value %d from previous stage is missing: %w", v, ErrFeasibility)
		}
	}
	return nil
}

// DigestOutcome records how a digest-accelerated check resolved, for
// virtual-time charging and observability. Both the scalar S_FT path
// and the blocksort BlockFT path report one of these per check.
type DigestOutcome int

const (
	// DigestNone: the digest fast path did not apply (e.g. masks
	// differ on a view merge) and the check ran element-level work
	// directly, as before digests existed.
	DigestNone DigestOutcome = iota
	// DigestHit: digests agreed and the element-level scan was
	// skipped.
	DigestHit
	// DigestMiss: digests disagreed; the element-level slow path ran
	// to produce attribution evidence.
	DigestMiss
)

// FeasibilityTwoPointer is the paper's literal Φ_F (Figure 4b): it
// walks the current sequence in sort order, consuming the previous
// *bitonic* sequence from both ends with two cursors (l from the
// ascending run, u from the descending run); every element must match
// one of the cursors. It requires prev to be bitonic in the canonical
// up-down form and cur to be sorted ascending — exactly the state at a
// stage boundary. Under those preconditions it is equivalent to the
// multiset test Feasibility implements (property-tested), in O(n) time
// and O(1) space instead of a counting map.
func FeasibilityTwoPointer(prev, cur []int64) error {
	if len(prev) != len(cur) {
		return fmt.Errorf("sequence lengths %d vs %d: %w", len(prev), len(cur), ErrFeasibility)
	}
	l, u := 0, len(prev)-1
	for m := 0; m < len(cur); m++ {
		switch {
		case l <= u && cur[m] == prev[l]:
			l++
		case l <= u && cur[m] == prev[u]:
			u--
		default:
			return fmt.Errorf("element %d (value %d) matches neither cursor of previous sequence: %w",
				m, cur[m], ErrFeasibility)
		}
	}
	return nil
}

// BitCompare is the paper's bit_compare: Φ_P over the full assembled
// sequence followed by Φ_F over the checking node's half (or the whole
// sequence at the final verification, where every node holds the full
// previous sequence).
func BitCompare(prev, assembled, myHalf []int64, final bool) error {
	if err := Progress(assembled, final); err != nil {
		return err
	}
	if final {
		return Feasibility(prev, assembled)
	}
	return Feasibility(prev, myHalf)
}
