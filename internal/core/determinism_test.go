package core

import (
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Virtual time must be deterministic: goroutine scheduling varies
// across runs, but the per-node clocks, the makespan, and the traffic
// counters may not. This is what makes the reproduced "measured"
// figures reproducible bit-for-bit.
func TestVirtualTimeIsDeterministic(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	type snapshot struct {
		makespan transport.Ticks
		clocks   [8]transport.Ticks
		msgs     int64
		bytes    int64
	}
	run := func() snapshot {
		oc, err := Run(newNet(t, 3), keys)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Detected() {
			t.Fatal("spurious detection")
		}
		var s snapshot
		s.makespan = oc.Result.Makespan()
		for i, n := range oc.Result.Nodes {
			s.clocks[i] = n.Clock
		}
		s.msgs = oc.Result.Metrics.TotalMsgs()
		s.bytes = oc.Result.Metrics.TotalBytes()
		return s
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); got != first {
			t.Fatalf("trial %d: %+v != %+v", trial, got, first)
		}
	}
}

// A different cost model changes the clocks but never the sorted
// output or the detection behaviour: correctness is independent of
// the performance model.
func TestCostModelIndependence(t *testing.T) {
	keys := []int64{5, -3, 12, 0, 7, 7, -9, 1}
	models := []simnet.CostModel{
		simnet.DefaultCostModel(),
		{SendFixed: 1, SendPerByte: 1, Latency: 1, RecvFixed: 1, RecvPerByte: 1,
			HostFixed: 1, HostPerByte: 1, Compare: 1, KeyMove: 1},
		{SendFixed: 999999, SendPerByte: 77, Latency: 12345, RecvFixed: 5, RecvPerByte: 3,
			HostFixed: 2, HostPerByte: 9999, Compare: 1000, KeyMove: 321},
	}
	var makespans []transport.Ticks
	for i, cm := range models {
		nw, err := simnet.New(simnet.Config{Dim: 3, Cost: cm, RecvTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		oc, err := Run(nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Detected() {
			t.Fatalf("model %d: spurious detection", i)
		}
		if err := checker.Verify(keys, oc.Sorted, true); err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		makespans = append(makespans, oc.Result.Makespan())
	}
	if makespans[0] == makespans[1] || makespans[1] == makespans[2] {
		t.Errorf("distinct cost models gave identical makespans: %v", makespans)
	}
}
