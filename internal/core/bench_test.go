package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/hypercube"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func benchSeq(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 20)
	}
	return xs
}

func BenchmarkProgress(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			seq := benchSeq(n, 1)
			// Shape it canonically: ascending lower, descending upper.
			lo, hi := seq[:n/2], seq[n/2:]
			sortAsc(lo)
			sortDesc(hi)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := Progress(seq, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sortAsc(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func sortDesc(xs []int64) {
	sortAsc(xs)
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func BenchmarkFeasibility(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prev := benchSeq(n, 2)
			cur := append([]int64{}, prev...)
			rng := rand.New(rand.NewSource(3))
			rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := Feasibility(prev, cur); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFeasibilityTwoPointer measures the paper-literal Φ_F slow
// path on its preconditioned inputs (bitonic prev, sorted cur) — the
// O(n)/O(1)-space alternative to the counting map above.
func BenchmarkFeasibilityTwoPointer(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prev := benchSeq(n, 2)
			lo, hi := prev[:n/2], prev[n/2:]
			sortAsc(lo)
			sortDesc(hi)
			cur := append([]int64{}, prev...)
			sortAsc(cur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := FeasibilityTwoPointer(prev, cur); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFeasibilityDigest measures the Φ_F fast path the other two
// benchmarks are the slow paths of: the steady-state check is one
// 128-bit comparison of incrementally maintained digests, independent
// of n (the per-element Add cost is amortized into the exchange and
// benchmarked by wire's digest benches).
func BenchmarkFeasibilityDigest(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prev := benchSeq(n, 2)
			cur := append([]int64{}, prev...)
			rng := rand.New(rand.NewSource(3))
			rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
			prevDig := wire.DigestOf(prev)
			curDig := wire.DigestOf(cur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if prevDig != curDig {
					b.Fatal("digests of a permutation differ")
				}
			}
		})
	}
}

func BenchmarkVectMaskClosedForm(b *testing.B) {
	topo := hypercube.MustNew(10)
	sc, err := topo.HomeSubcube(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VectMask(9, 0, 0, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectMaskRecursive(b *testing.B) {
	topo := hypercube.MustNew(10)
	sc, err := topo.HomeSubcube(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VectMaskRecursive(9, 0, 0, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSFTEndToEnd measures the wall-clock cost of a whole S_FT
// run on the simulator (goroutines + channels + encoding), per cube size.
func BenchmarkSFTEndToEnd(b *testing.B) {
	for _, dim := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("N=%d", 1<<uint(dim)), func(b *testing.B) {
			keys := benchSeq(1<<uint(dim), 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 10 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				oc, err := Run(nw, keys)
				if err != nil {
					b.Fatal(err)
				}
				if oc.Detected() {
					b.Fatal("spurious detection")
				}
			}
		})
	}
}
