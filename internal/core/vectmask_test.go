package core

import (
	"testing"

	"repro/internal/hypercube"
)

func sc(t *testing.T, topo hypercube.Topology, dim, node int) hypercube.Subcube {
	t.Helper()
	s, err := topo.HomeSubcube(dim, node)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVectMaskBaseCase(t *testing.T) {
	topo := hypercube.MustNew(3)
	// Stage 2, iteration 2 (first exchange): node knows itself and its
	// bit-2 partner.
	s := sc(t, topo, 3, 5)
	m, err := VectMask(2, 2, 5, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 5} // labels 1 and 5 relative to base 0
	got := m.Indices()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("VectMask(2,2,5) = %v, want %v", got, want)
	}
}

func TestVectMaskFullAfterLastIteration(t *testing.T) {
	topo := hypercube.MustNew(4)
	for stage := 0; stage < 4; stage++ {
		for nodeID := 0; nodeID < topo.Nodes(); nodeID++ {
			s := sc(t, topo, stage+1, nodeID)
			m, err := VectMask(stage, 0, nodeID, s)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Full() {
				t.Fatalf("stage %d node %d: mask %s not full after iteration 0", stage, nodeID, m.String())
			}
		}
	}
}

func TestVectMaskSizeDoubling(t *testing.T) {
	topo := hypercube.MustNew(4)
	s := sc(t, topo, 4, 6)
	// After iteration j of stage 3, knowledge has 2^(3-j+1) entries.
	for j := 3; j >= 0; j-- {
		m, err := VectMask(3, j, 6, s)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 << uint(3-j+1)
		if m.Count() != want {
			t.Fatalf("iter %d: %d entries, want %d", j, m.Count(), want)
		}
	}
}

func TestVectMaskBefore(t *testing.T) {
	topo := hypercube.MustNew(3)
	s := sc(t, topo, 3, 2)
	// Before the first exchange the node knows only itself.
	m, err := VectMaskBefore(2, 2, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 1 || !m.Has(2) {
		t.Fatalf("seed mask = %s", m.String())
	}
	// Before iteration j < stage it equals post-knowledge of j+1.
	before, err := VectMaskBefore(2, 0, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	after, err := VectMask(2, 1, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after) {
		t.Fatalf("before(j=0) %s != after(j=1) %s", before.String(), after.String())
	}
}

// The closed form must agree with the paper's literal recurrence
// everywhere.
func TestVectMaskMatchesRecursive(t *testing.T) {
	topo := hypercube.MustNew(4)
	for stage := 0; stage < topo.Dim(); stage++ {
		for nodeID := 0; nodeID < topo.Nodes(); nodeID++ {
			s := sc(t, topo, stage+1, nodeID)
			for j := stage; j >= 0; j-- {
				closed, err := VectMask(stage, j, nodeID, s)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := VectMaskRecursive(stage, j, nodeID, s)
				if err != nil {
					t.Fatal(err)
				}
				if !closed.Equal(rec) {
					t.Fatalf("stage=%d j=%d node=%d: closed %s != recursive %s",
						stage, j, nodeID, closed.String(), rec.String())
				}
			}
		}
	}
}

// The mask must equal the knowledge an actual simulation of the
// exchange schedule produces: seed {self}, then at each iteration both
// partners end up with the union of their pre-exchange knowledge.
func TestVectMaskMatchesScheduleSimulation(t *testing.T) {
	topo := hypercube.MustNew(4)
	for stage := 0; stage < topo.Dim(); stage++ {
		size := 1 << uint(stage+1)
		// know[node] = set of absolute labels known (within home subcube)
		know := make([]map[int]bool, topo.Nodes())
		for id := range know {
			know[id] = map[int]bool{id: true}
		}
		for j := stage; j >= 0; j-- {
			next := make([]map[int]bool, topo.Nodes())
			for id := range next {
				p := id ^ (1 << uint(j))
				u := map[int]bool{}
				for k := range know[id] {
					u[k] = true
				}
				for k := range know[p] {
					u[k] = true
				}
				next[id] = u
			}
			know = next
			for id := 0; id < topo.Nodes(); id++ {
				s := sc(t, topo, stage+1, id)
				m, err := VectMask(stage, j, id, s)
				if err != nil {
					t.Fatal(err)
				}
				if m.Count() != len(know[id]) {
					t.Fatalf("stage=%d j=%d node=%d: mask size %d, sim %d",
						stage, j, id, m.Count(), len(know[id]))
				}
				for k := range know[id] {
					if !m.Has(k - s.Start) {
						t.Fatalf("stage=%d j=%d node=%d: mask missing %d", stage, j, id, k)
					}
				}
			}
		}
		_ = size
	}
}

func TestVectMaskValidation(t *testing.T) {
	topo := hypercube.MustNew(3)
	s := sc(t, topo, 3, 0)
	if _, err := VectMask(2, 3, 0, s); err == nil {
		t.Error("iter > stage: want error")
	}
	if _, err := VectMask(2, -1, 0, s); err == nil {
		t.Error("negative iter: want error")
	}
	wrong := sc(t, topo, 2, 0)
	if _, err := VectMask(2, 1, 0, wrong); err == nil {
		t.Error("subcube dim mismatch: want error")
	}
	outside := sc(t, topo, 3, 0)
	if _, err := VectMask(2, 1, 99, outside); err == nil {
		t.Error("node outside subcube: want error")
	}
	if _, err := VectMaskRecursive(2, 3, 0, s); err == nil {
		t.Error("recursive iter > stage: want error")
	}
	if _, err := VectMaskBefore(2, 3, 0, s); err == nil {
		t.Error("before iter > stage: want error")
	}
}
