package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/checker"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func newNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// newFaultNet uses a short absence timeout so cascades resolve quickly.
func newFaultNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSortsPaperExample(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5} // Figure 5 input
	oc, err := Run(newNet(t, 3), keys)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() {
		t.Fatalf("fault detected on honest run: nodes=%v host=%v", oc.Result.FirstNodeErr(), oc.HostErrors)
	}
	want := []int64{2, 3, 4, 5, 7, 8, 9, 10}
	for i := range want {
		if oc.Sorted[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", oc.Sorted, want)
		}
	}
}

func TestSortsAllDims(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for dim := 0; dim <= 5; dim++ {
		n := 1 << uint(dim)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(1000) - 500)
		}
		oc, err := Run(newNet(t, dim), keys)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if oc.Detected() {
			t.Fatalf("dim %d: spurious detection: %v %v", dim, oc.Result.FirstNodeErr(), oc.HostErrors)
		}
		if err := checker.Verify(keys, oc.Sorted, true); err != nil {
			t.Fatalf("dim %d: %v (out=%v)", dim, err, oc.Sorted)
		}
	}
}

func TestSortsDuplicatesAndExtremes(t *testing.T) {
	cases := [][]int64{
		{7, 7, 7, 7, 7, 7, 7, 7},
		{1, 1, 2, 2, 1, 1, 2, 2},
		{-(1 << 62), 1 << 62, 0, -1, 5, -5, 100, -100},
		{8, 7, 6, 5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	for _, keys := range cases {
		oc, err := Run(newNet(t, 3), keys)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Detected() {
			t.Fatalf("keys %v: spurious detection", keys)
		}
		if err := checker.Verify(keys, oc.Sorted, true); err != nil {
			t.Fatalf("keys %v: %v (out=%v)", keys, err, oc.Sorted)
		}
	}
}

func TestSortRandomProperty(t *testing.T) {
	f := func(raw [16]int32) bool {
		keys := make([]int64, 16)
		for i, v := range raw {
			keys[i] = int64(v)
		}
		oc, err := Run(newNet(t, 4), keys)
		if err != nil || oc.Detected() {
			return false
		}
		return checker.Verify(keys, oc.Sorted, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	nw := newNet(t, 2)
	if _, err := Run(nw, []int64{1}); err == nil {
		t.Error("1 key for 4 nodes: want error")
	}
	if _, err := RunWithOptions(nw, []int64{1, 2, 3, 4}, make([]Options, 2)); err == nil {
		t.Error("2 option sets for 4 nodes: want error")
	}
}

// Message count must equal S_NR's schedule plus the final verification
// round: the checks ride along, they do not add messages to the main
// loop (the paper's headline overhead claim).
func TestMessageCountMatchesSNRPlusVerify(t *testing.T) {
	dim := 4
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	oc, err := Run(newNet(t, dim), keys)
	if err != nil {
		t.Fatal(err)
	}
	steps := dim * (dim + 1) / 2
	wantMain := int64(n * steps) // identical to S_NR
	if got := oc.Result.Metrics.MsgsByKind[wire.KindFTExchange]; got != wantMain {
		t.Errorf("ft-exchange msgs = %d, want %d", got, wantMain)
	}
	wantVerify := int64(n * dim)
	if got := oc.Result.Metrics.MsgsByKind[wire.KindVerify]; got != wantVerify {
		t.Errorf("verify msgs = %d, want %d", got, wantVerify)
	}
}

// S_FT messages are longer than S_NR's — the cost the paper accepts.
func TestBytesExceedSNR(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 3 % n)
	}
	oc, err := Run(newNet(t, dim), keys)
	if err != nil {
		t.Fatal(err)
	}
	ftBytes := oc.Result.Metrics.BytesByKind[wire.KindFTExchange]
	ftMsgs := oc.Result.Metrics.MsgsByKind[wire.KindFTExchange]
	if ftBytes/ftMsgs < 40 {
		t.Errorf("average S_FT message only %d bytes; views not piggybacked?", ftBytes/ftMsgs)
	}
}

func TestTraceEventsCoverAllStages(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	var mu sync.Mutex
	events := map[int][]TraceEvent{}
	opts := make([]Options, n)
	for id := 0; id < n; id++ {
		opts[id] = Options{Trace: func(ev TraceEvent) {
			mu.Lock()
			defer mu.Unlock()
			events[ev.Node] = append(events[ev.Node], ev)
		}}
	}
	oc, err := RunWithOptions(newNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() {
		t.Fatal("spurious detection")
	}
	for id := 0; id < n; id++ {
		evs := events[id]
		if len(evs) != dim+1 {
			t.Fatalf("node %d: %d trace events, want %d", id, len(evs), dim+1)
		}
		last := evs[len(evs)-1]
		if !last.Final || len(last.Assembled) != n {
			t.Fatalf("node %d: final event %+v", id, last)
		}
		want := []int64{2, 3, 4, 5, 7, 8, 9, 10}
		for i := range want {
			if last.Assembled[i] != want[i] {
				t.Fatalf("node %d final assembled = %v", id, last.Assembled)
			}
		}
		// Stage events carry the previous stage's output over
		// growing subcubes.
		for s, ev := range evs[:dim] {
			if ev.Stage != s || len(ev.Assembled) != 1<<uint(s+1) {
				t.Fatalf("node %d stage event %+v", id, ev)
			}
		}
	}
}

// tamperKeys replaces every key in FT-exchange payloads after the
// given stage with the supplied value.
func tamperKeys(afterStage int, value int64) func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if int(m.Stage) <= afterStage || m.Kind != wire.KindFTExchange {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		for i := range p.Keys {
			p.Keys[i] = value
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}
}

func TestByzantineKeyLieDetected(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]Options, n)
	opts[5] = Options{SkipChecks: true, Tamper: tamperKeys(0, 999)}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatalf("Byzantine key lie went undetected; output %v", oc.Sorted)
	}
}

func TestByzantineViewLieDetected(t *testing.T) {
	// Corrupt a relayed view entry (a lie about ANOTHER node's value).
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]Options, n)
	opts[2] = Options{SkipChecks: true, Tamper: func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindFTExchange || m.Stage < 1 {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil || len(p.View.Vals) == 0 {
			return m
		}
		p.View.Vals[len(p.View.Vals)-1] = -777
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatalf("Byzantine view lie went undetected; output %v", oc.Sorted)
	}
}

func TestByzantineSplitLieDetected(t *testing.T) {
	// The canonical Φ_C attack: tell different neighbors different
	// values for your own entry.
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]Options, n)
	faulty := 6
	opts[faulty] = Options{SkipChecks: true, Tamper: func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindFTExchange || m.Stage < 1 {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		// Lie about our own view slot, differently per receiver.
		slot := faulty - int(p.View.Base)
		vi := 0
		for _, idx := range p.View.Mask.Indices() {
			if idx == slot {
				p.View.Vals[vi] = 500 + int64(m.To)
			}
			vi++
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatalf("split lie went undetected; output %v", oc.Sorted)
	}
}

func TestByzantineSilenceDetected(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]Options, n)
	opts[3] = Options{SkipChecks: true, Tamper: func(m *wire.Message) *wire.Message {
		if m.Stage >= 1 {
			return nil
		}
		return m
	}}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("silence went undetected")
	}
}

func TestByzantineWrongCompareExchangeDetected(t *testing.T) {
	// A node whose comparator lies routes real keys the wrong way: no
	// message is tampered, the node faithfully reports its wrong
	// answers, and detection must come from its honest peers'
	// predicates. The table covers both lie directions and a lie
	// confined to the last merge stage, where only the final
	// verification round is left to catch it.
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	cases := []struct {
		name    string
		faulty  int
		compare func(stage int, a, b int64) bool
	}{
		{
			// Claims a <= b whenever the truth is a > b.
			name:   "lie-low",
			faulty: 0,
			compare: func(stage int, a, b int64) bool {
				return true
			},
		},
		{
			// Claims a > b whenever the truth is a <= b.
			name:   "lie-high",
			faulty: 0,
			compare: func(stage int, a, b int64) bool {
				return false
			},
		},
		{
			// Honest until the last merge stage, then inverts every
			// answer: only the final verification round remains.
			name:   "final-stage",
			faulty: 5,
			compare: func(stage int, a, b int64) bool {
				if stage < dim-1 {
					return a <= b
				}
				return a > b
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := make([]Options, n)
			opts[tc.faulty] = Options{SkipChecks: true, Compare: tc.compare}
			oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !oc.Detected() {
				t.Fatalf("lying comparator went undetected; output %v", oc.Sorted)
			}
		})
	}
}

func TestByzantineMaskInflationDetected(t *testing.T) {
	// Claim knowledge the schedule does not entitle the sender to.
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	opts := make([]Options, n)
	opts[1] = Options{SkipChecks: true, Tamper: func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindFTExchange || m.Stage < 1 {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		// Add a fabricated entry for an unknown slot, if any remain.
		for i := 0; i < int(p.View.Size); i++ {
			if !p.View.Mask.Has(i) {
				p.View.Mask.Add(i)
				// Insert the value keeping slot order.
				idxs := p.View.Mask.Indices()
				vals := make([]int64, 0, len(idxs))
				vi := 0
				for _, idx := range idxs {
					if idx == i {
						vals = append(vals, -1)
					} else {
						vals = append(vals, p.View.Vals[vi])
						vi++
					}
				}
				p.View.Vals = vals
				break
			}
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("mask inflation went undetected")
	}
}

func TestHostReceivesErrorSignal(t *testing.T) {
	dim := 2
	n := 1 << uint(dim)
	keys := []int64{4, 3, 2, 1}
	opts := make([]Options, n)
	opts[2] = Options{SkipChecks: true, Tamper: tamperKeys(0, -42)}
	oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(oc.HostErrors) == 0 {
		t.Fatal("no ERROR signal reached the host")
	}
	he := oc.HostErrors[0]
	if he.Predicate == "" || he.Detail == "" {
		t.Fatalf("empty diagnostic: %+v", he)
	}
	if he.Node == 2 {
		t.Fatalf("the faulty node itself reported the error: %+v", he)
	}
}

// The fail-stop guarantee (Theorem 3): across many random single-fault
// runs, the system must never complete silently with a wrong output.
func TestNeverSilentlyWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dim := 3
	n := 1 << uint(dim)
	for trial := 0; trial < 15; trial++ {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(40))
		}
		faulty := rng.Intn(n)
		lie := int64(rng.Intn(2000) - 1000)
		afterStage := rng.Intn(dim - 1)
		opts := make([]Options, n)
		opts[faulty] = Options{SkipChecks: true, Tamper: tamperKeys(afterStage, lie)}
		oc, err := RunWithOptions(newFaultNet(t, dim), keys, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !oc.Detected() {
			// Permitted only if the output is actually correct (the
			// lie may coincide with true values).
			if verr := checker.Verify(keys, oc.Sorted, true); verr != nil {
				t.Fatalf("trial %d: silent wrong output: faulty=%d lie=%d after=%d out=%v keys=%v",
					trial, faulty, lie, afterStage, oc.Sorted, keys)
			}
		}
	}
}

func TestDimZeroTrivial(t *testing.T) {
	oc, err := Run(newNet(t, 0), []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() || oc.Sorted[0] != 42 {
		t.Fatalf("outcome %+v", oc)
	}
}

func TestDimOneDetectsFinalLie(t *testing.T) {
	// With N=2 the main loop is one stage; detection rides on the
	// final verification round.
	keys := []int64{9, 1}
	opts := make([]Options, 2)
	opts[1] = Options{SkipChecks: true, Tamper: func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindVerify {
			return m
		}
		p, err := wire.DecodeVerify(m.Payload)
		if err != nil || len(p.View.Vals) == 0 {
			return m
		}
		p.View.Vals[len(p.View.Vals)-1] = 555
		buf, err := wire.EncodeVerify(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}}
	oc, err := RunWithOptions(newFaultNet(t, 1), keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatalf("final-stage lie went undetected; output %v", oc.Sorted)
	}
}
