package core

import (
	"math/rand"
	"testing"

	"repro/internal/hypercube"
	"repro/internal/wire"
)

// TestFeasibilityDiagnosticDeterministic pins the Φ_F slow-path error
// messages: the reported value must be the same on every run (the
// "missing value" scan walks prev in order, never the counting map, so
// map iteration order cannot leak into diagnostics). The exact strings
// matter — operators grep journals for them, and the digest fast path
// promises the slow path still produces today's errors.
func TestFeasibilityDiagnosticDeterministic(t *testing.T) {
	cases := []struct {
		name       string
		prev, cur  []int64
		wantErrMsg string
	}{
		{
			name:       "accept",
			prev:       []int64{5, 1, 5, 2},
			cur:        []int64{2, 5, 1, 5},
			wantErrMsg: "",
		},
		{
			// Several candidate values are wrong; the reported one must
			// be the first offender in cur scan order (the second 2),
			// not whichever map key iteration happens to visit.
			name:       "excess value",
			prev:       []int64{5, 1, 5, 2},
			cur:        []int64{5, 1, 2, 2},
			wantErrMsg: "value 2 appears more often than in previous stage: core: feasibility predicate violated",
		},
		{
			name:       "invented value",
			prev:       []int64{9, 9, 4, 4},
			cur:        []int64{9, 4, 7, 9},
			wantErrMsg: "value 7 appears more often than in previous stage: core: feasibility predicate violated",
		},
		{
			name:       "length mismatch",
			prev:       []int64{1, 2},
			cur:        []int64{1},
			wantErrMsg: "sequence lengths 2 vs 1: core: feasibility predicate violated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 100; i++ {
				err := Feasibility(tc.prev, tc.cur)
				got := ""
				if err != nil {
					got = err.Error()
				}
				if got != tc.wantErrMsg {
					t.Fatalf("run %d: Feasibility = %q, want %q", i, got, tc.wantErrMsg)
				}
			}
		})
	}
}

// TestDigestAcceptsIffFeasibilityAccepts is the property the tentpole
// rests on: over random multisets, the digest comparison accepts
// exactly when the element-level Feasibility scan accepts. One
// direction is unconditional (equal multisets always digest equal, so
// a digest mismatch is proof of a real difference and the slow path
// will find it); the other is probabilistic with ~2^-64 collision
// odds, which the seeded trials exercise across permutations, single
// mutations, drops-with-duplication, and swaps-with-neighbours.
func TestDigestAcceptsIffFeasibilityAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(64)
		prev := make([]int64, n)
		for i := range prev {
			// Small value range forces duplicates.
			prev[i] = int64(rng.Intn(n))
		}
		cur := append([]int64{}, prev...)
		rng.Shuffle(n, func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
		switch trial % 4 {
		case 0:
			// Pure permutation: must accept.
		case 1:
			// Mutate one element (may or may not change the multiset).
			cur[rng.Intn(n)] += int64(rng.Intn(3)) - 1
		case 2:
			// Replace one element with a copy of another: changes the
			// multiset unless the two were already equal.
			cur[rng.Intn(n)] = cur[rng.Intn(n)]
		case 3:
			// Large disjoint corruption.
			cur[rng.Intn(n)] = int64(1 << 40)
		}
		digestAccept := wire.DigestOf(prev) == wire.DigestOf(cur)
		feasAccept := Feasibility(prev, cur) == nil
		if digestAccept != feasAccept {
			t.Fatalf("trial %d: digest accept = %v, Feasibility accept = %v\nprev = %v\ncur  = %v",
				trial, digestAccept, feasAccept, prev, cur)
		}
		// The two-pointer variant needs its preconditions; the map
		// variant is the ground truth here, and TestFeasibilityAgree*
		// in predicates_test pins the two slow paths to each other.
	}
}

// TestGatherViewDigestTracksValues pins the incremental maintenance:
// after any interleaving of set and adopt, each half digest equals the
// from-scratch digest of that half's collected values.
func TestGatherViewDigestTracksValues(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := hypercube.Subcube{Dim: 3, Start: 8, End: 15}
	g := newGatherView(sc)
	for step := 0; step < 200; step++ {
		g.set(sc.Start+rng.Intn(sc.Size()), int64(rng.Intn(32)))
		var want [2]wire.Digest
		for slot := 0; slot < sc.Size(); slot++ {
			if g.have.Has(slot) {
				want[g.halfOf(slot)].Add(g.vals[slot])
			}
		}
		if g.halfDig(0) != want[0] || g.halfDig(1) != want[1] {
			t.Fatalf("step %d: half digests diverged from recomputation", step)
		}
		if g.viewDigest() != want[0].Merged(want[1]) {
			t.Fatalf("step %d: full digest != merged halves", step)
		}
	}
}

// TestMergeCheckedDigestHitZeroAllocs is the steady-state alloc gate
// for the Φ_C fast path: once masks are equal, a merge resolves by the
// O(1) digest comparison and must not allocate — the digest layer may
// not undo the zero-allocation exchange guarantee.
func TestMergeCheckedDigestHitZeroAllocs(t *testing.T) {
	sc := hypercube.Subcube{Dim: 3, Start: 0, End: 7}
	src := newGatherView(sc)
	dst := newGatherView(sc)
	for slot := 0; slot < sc.Size(); slot++ {
		src.set(slot, int64(slot*3))
		dst.set(slot, int64(slot*3))
	}
	scratch := make([]int64, 0, sc.Size())
	rv := src.wireViewInto(scratch)
	step := func() {
		outcome, err := dst.mergeChecked(rv, rv.Mask)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != DigestHit {
			t.Fatalf("outcome = %v, want DigestHit", outcome)
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("digest-hit merge: %v allocs/op, want 0", n)
	}
}

// TestMergeCheckedDigestInconsistencyAccusesSender: a relayed view
// whose aggregate digest disagrees with its own entries (entries match
// ours, so no slot-level conflict exists) must still be rejected — the
// inconsistency itself is Byzantine evidence against the sender.
func TestMergeCheckedDigestInconsistencyAccusesSender(t *testing.T) {
	sc := hypercube.Subcube{Dim: 2, Start: 0, End: 3}
	src := newGatherView(sc)
	dst := newGatherView(sc)
	for slot := 0; slot < sc.Size(); slot++ {
		src.set(slot, int64(slot+10))
		dst.set(slot, int64(slot+10))
	}
	rv := src.wireView()
	rv.Dig.Sum += 1 // lie about the aggregate, keep entries honest
	outcome, err := dst.mergeChecked(rv, rv.Mask)
	if outcome != DigestMiss {
		t.Fatalf("outcome = %v, want DigestMiss", outcome)
	}
	if err == nil || err.Error() != "view digest inconsistent with relayed entries" {
		t.Fatalf("err = %v, want digest-inconsistency error", err)
	}
}
