package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hypercube"
)

// VectMask computes the paper's vect_mask(i, j, node): the set of
// subcube slots whose stage-start values node has legitimately
// collected *after* completing iteration j of stage i's exchange
// schedule (the inner loop runs j = i downto 0). The returned set is
// indexed relative to sc.Start, where sc is the stage's home subcube
// SC_{i+1,node}.
//
// It follows the paper's recurrence
//
//	vect_mask(i, i, k) = {k, k XOR 2^i}
//	vect_mask(i, j, k) = vect_mask(i, j+1, k) ∪ vect_mask(i, j+1, k XOR 2^j)
//
// which has the closed form {k XOR m : m ⊆ bits j..i} — every label
// reachable from k by flipping any subset of the already-exchanged
// dimensions. VectMaskRecursive implements the literal recurrence; the
// two are property-tested against each other.
func VectMask(stage, iter, node int, sc hypercube.Subcube) (bitset.Set, error) {
	var set bitset.Set
	return VectMaskInto(&set, stage, iter, node, sc)
}

// VectMaskInto computes VectMask into a caller-owned scratch set,
// reusing its storage; the merge path evaluates one vect_mask per
// received view, so this keeps Φ_C allocation-free in steady state.
// The returned set shares dst's storage.
func VectMaskInto(dst *bitset.Set, stage, iter, node int, sc hypercube.Subcube) (bitset.Set, error) {
	if err := checkMaskArgs(stage, iter, node, sc); err != nil {
		return bitset.Set{}, err
	}
	dst.Reset(sc.Size())
	// Enumerate all subsets of bit positions iter..stage: the k-th bit
	// of sub selects dimension iter+k.
	width := stage - iter + 1
	for sub := 0; sub < 1<<uint(width); sub++ {
		m := 0
		for k := 0; k < width; k++ {
			if sub&(1<<uint(k)) != 0 {
				m |= 1 << uint(iter+k)
			}
		}
		dst.Add((node ^ m) - sc.Start)
	}
	return *dst, nil
}

// VectMaskBefore returns the knowledge a node holds *before* the
// iteration-iter exchange of stage: its seed {node} when iter == stage
// (nothing exchanged yet), otherwise the post-exchange knowledge of
// iteration iter+1. Receivers use it to validate the mask claimed by
// a passive sender, whose view is transmitted pre-merge.
func VectMaskBefore(stage, iter, node int, sc hypercube.Subcube) (bitset.Set, error) {
	var set bitset.Set
	return VectMaskBeforeInto(&set, stage, iter, node, sc)
}

// VectMaskBeforeInto is VectMaskBefore into a caller-owned scratch set;
// the returned set shares dst's storage.
func VectMaskBeforeInto(dst *bitset.Set, stage, iter, node int, sc hypercube.Subcube) (bitset.Set, error) {
	if iter == stage {
		if err := checkMaskArgs(stage, iter, node, sc); err != nil {
			return bitset.Set{}, err
		}
		dst.Reset(sc.Size())
		dst.Add(node - sc.Start)
		return *dst, nil
	}
	return VectMaskInto(dst, stage, iter+1, node, sc)
}

// VectMaskRecursive is the paper's vect_mask recurrence implemented
// literally (Figure 4c). It exists to cross-validate the closed form;
// production code calls VectMask.
func VectMaskRecursive(stage, iter, node int, sc hypercube.Subcube) (bitset.Set, error) {
	if err := checkMaskArgs(stage, iter, node, sc); err != nil {
		return bitset.Set{}, err
	}
	return vmRec(stage, iter, node, sc), nil
}

func vmRec(stage, iter, node int, sc hypercube.Subcube) bitset.Set {
	d := 1 << uint(iter)
	set := bitset.New(sc.Size())
	if iter == stage {
		set.Add(node - sc.Start)
		set.Add((node ^ d) - sc.Start)
		return set
	}
	a := vmRec(stage, iter+1, node, sc)
	b := vmRec(stage, iter+1, node^d, sc)
	_ = a.UnionWith(b) // lengths match by construction
	return a
}

func checkMaskArgs(stage, iter, node int, sc hypercube.Subcube) error {
	if iter < 0 || iter > stage {
		return fmt.Errorf("core: vect_mask iter %d outside [0, %d]", iter, stage)
	}
	if sc.Dim != stage+1 {
		return fmt.Errorf("core: vect_mask subcube dim %d, want stage+1 = %d", sc.Dim, stage+1)
	}
	if !sc.Contains(node) {
		return fmt.Errorf("core: vect_mask node %d outside %v", node, sc)
	}
	return nil
}
