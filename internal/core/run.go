package core

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/wire"
)

// HostError is one diagnostic ERROR signal drained from the host
// mailbox after a run.
type HostError struct {
	// Node is the signalling node.
	Node int
	// Stage and Iter locate the detection point.
	Stage int
	Iter  int
	// Predicate names the violated predicate class.
	Predicate string
	// Kind is the structured evidence class (value, absence, shape);
	// diagnosis keys off it, Detail stays human-readable only.
	Kind ErrorKind
	// Accused is the node the evidence implicates, -1 when none.
	Accused int
	// Detail describes the evidence.
	Detail string
}

// Outcome aggregates an S_FT run.
type Outcome struct {
	// Sorted is the gathered output, out[id] = node id's final key.
	// Trust it only when Detected() is false.
	Sorted []int64
	// Result carries per-node errors, virtual clocks, and traffic.
	Result *node.Result
	// HostErrors are the ERROR signals the host received.
	HostErrors []HostError
}

// Detected reports whether any fault was detected: an ERROR reached
// the host or any node fail-stopped. The fail-stop guarantee of
// Theorem 3 is: if Detected() is false, Sorted is a correct ascending
// sort of the input.
func (o *Outcome) Detected() bool {
	if len(o.HostErrors) > 0 {
		return true
	}
	return o.Result.AnyErr() != nil
}

// Run executes S_FT with all-honest nodes: keys[id] is node id's
// initial key.
func Run(nw transport.Network, keys []int64) (*Outcome, error) {
	return RunWithOptions(nw, keys, nil)
}

// RunWithOptions executes S_FT with per-node options (fault injection,
// tracing). opts may be nil (all honest) or have exactly one entry per
// node.
func RunWithOptions(nw transport.Network, keys []int64, opts []Options) (*Outcome, error) {
	n := nw.Topology().Nodes()
	if len(keys) != n {
		return nil, fmt.Errorf("core: %d keys for %d nodes", len(keys), n)
	}
	if opts == nil {
		opts = make([]Options, n)
	}
	if len(opts) != n {
		return nil, fmt.Errorf("core: %d option sets for %d nodes", len(opts), n)
	}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		progs[id] = NodeProgram(keys[id], &out[id], opts[id])
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	oc := &Outcome{Sorted: out, Result: res}
	oc.HostErrors = drainHostErrors(nw)
	return oc, nil
}

// DrainHostErrors empties the host mailbox of ERROR signals after the
// nodes have terminated. Exported for harnesses that run node programs
// directly (the recovery supervisor, the interleaving explorer) yet
// still need the standard evidence decode.
func DrainHostErrors(nw transport.Network) []HostError { return drainHostErrors(nw) }

// drainHostErrors empties the host mailbox of ERROR signals after the
// nodes have terminated.
func drainHostErrors(nw transport.Network) []HostError {
	h := nw.Host()
	var out []HostError
	for {
		m, ok, err := h.TryRecv()
		if err != nil || !ok {
			return out
		}
		if m.Kind != wire.KindError {
			continue
		}
		p, err := wire.DecodeError(m.Payload)
		if err != nil {
			continue
		}
		out = append(out, HostError{
			Node:      int(m.From),
			Stage:     int(m.Stage),
			Iter:      int(m.Iter),
			Predicate: p.Predicate,
			Kind:      ErrorKind(p.Kind),
			Accused:   int(p.Accused),
			Detail:    p.Detail,
		})
	}
}
