package core

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/wire"
)

// withFlag returns n option sets with the given ablation applied to
// every honest node and the Byzantine spec at one node.
func ablationOpts(n int, apply func(*Options), faulty int, tamper func(*wire.Message) *wire.Message) []Options {
	opts := make([]Options, n)
	for id := range opts {
		if apply != nil {
			apply(&opts[id])
		}
		if id == faulty {
			opts[id].SkipChecks = true
			opts[id].Tamper = tamper
		}
	}
	return opts
}

// finalStageLie makes the node, when it is the passive party of a
// non-first iteration of the LAST main-loop stage, lie about its
// current key. The inline protocol checks cannot see this (the
// key-vs-view cross-check only applies at a stage's first iteration),
// the stage-end checks only cover earlier stages' outputs, so the lie
// corrupts the final output and only the final pure-exchange
// verification can catch it.
func finalStageLie(dim int, bogus int64) func(m *wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindFTExchange || int(m.Stage) != dim-1 || int(m.Iter) >= dim-1 {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil || len(p.Keys) != 1 {
			return m // only the passive (1-key) leg
		}
		p.Keys[0] = bogus
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}
}

// The final verification round is load-bearing: with it, a last-stage
// lie is detected; without it (ablated), the same lie produces a
// silently wrong output.
func TestAblationFinalVerificationIsLoadBearing(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	faulty := 3 // passive at iterations 0 and 1 of the last stage

	// Baseline: detected.
	base, err := RunWithOptions(newFaultNet(t, dim), keys,
		ablationOpts(n, nil, faulty, finalStageLie(dim, 777)))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Detected() {
		t.Fatalf("baseline failed to detect final-stage lie; out=%v", base.Sorted)
	}

	// Ablated: the lie slips through as silent corruption.
	ablated, err := RunWithOptions(newFaultNet(t, dim), keys,
		ablationOpts(n, func(o *Options) { o.SkipFinalVerification = true }, faulty, finalStageLie(dim, 777)))
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Detected() {
		t.Fatalf("ablated run still detected: %v %v — attack needs sharpening",
			ablated.Result.FirstNodeErr(), ablated.HostErrors)
	}
	if checker.Verify(keys, ablated.Sorted, true) == nil {
		t.Fatalf("ablated run produced a correct sort; the lie had no effect (out=%v)", ablated.Sorted)
	}
}

// Honest runs still succeed under every ablation (the switches remove
// checks, they do not break the protocol).
func TestAblationsPreserveHonestRuns(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	cases := []struct {
		name  string
		apply func(*Options)
	}{
		{"trust-sender-masks", func(o *Options) { o.TrustSenderMasks = true }},
		{"skip-final-verification", func(o *Options) { o.SkipFinalVerification = true }},
		{"separate-check-messages", func(o *Options) { o.SeparateCheckMessages = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oc, err := RunWithOptions(newNet(t, 3), keys, ablationOpts(8, tc.apply, -1, nil))
			if err != nil {
				t.Fatal(err)
			}
			if oc.Detected() {
				t.Fatalf("spurious detection: %v %v", oc.Result.FirstNodeErr(), oc.HostErrors)
			}
			if err := checker.Verify(keys, oc.Sorted, true); err != nil {
				t.Fatalf("%v (out=%v)", err, oc.Sorted)
			}
		})
	}
}

// Separate check messages double the main-loop message count — the
// overhead the paper's piggybacking design avoids.
func TestAblationSeparateMessagesDoubleCount(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	steps := int64(dim * (dim + 1) / 2)

	base, err := RunWithOptions(newNet(t, dim), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	piggy := base.Result.Metrics.MsgsByKind[wire.KindFTExchange]
	if piggy != int64(n)*steps {
		t.Fatalf("baseline main-loop msgs = %d", piggy)
	}

	abl, err := RunWithOptions(newNet(t, dim), keys,
		ablationOpts(n, func(o *Options) { o.SeparateCheckMessages = true }, -1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if abl.Detected() {
		t.Fatal(abl.Result.FirstNodeErr())
	}
	sepKeys := abl.Result.Metrics.MsgsByKind[wire.KindExchange]
	sepViews := abl.Result.Metrics.MsgsByKind[wire.KindVerify] - int64(n*dim) // minus final round
	if sepKeys != piggy || sepViews != piggy {
		t.Errorf("separate-mode msgs: keys=%d views=%d, want %d each", sepKeys, sepViews, piggy)
	}
	if abl.Result.Makespan() <= base.Result.Makespan() {
		t.Errorf("separate mode makespan %d not above piggybacked %d",
			abl.Result.Makespan(), base.Result.Makespan())
	}
}

// With TrustSenderMasks, a mask-inflation attack is no longer rejected
// at merge time — but the fabricated value still collides with the
// true copy later, so detection happens via a different (later) check.
// The ablation shows mask validation buys early, attributable
// detection; removing it degrades diagnosis, not safety.
func TestAblationTrustMasksDelaysButDetects(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	tamper := func(m *wire.Message) *wire.Message {
		if m.Kind != wire.KindFTExchange || m.Stage < 1 {
			return m
		}
		p, err := wire.DecodeFTExchange(m.Payload)
		if err != nil {
			return m
		}
		for i := 0; i < int(p.View.Size); i++ {
			if !p.View.Mask.Has(i) {
				p.View.Mask.Add(i)
				idxs := p.View.Mask.Indices()
				vals := make([]int64, 0, len(idxs))
				vi := 0
				for _, idx := range idxs {
					if idx == i {
						vals = append(vals, -1)
					} else {
						vals = append(vals, p.View.Vals[vi])
						vi++
					}
				}
				p.View.Vals = vals
				break
			}
		}
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return m
		}
		m.Payload = buf
		return m
	}

	base, err := RunWithOptions(newFaultNet(t, dim), keys, ablationOpts(n, nil, 1, tamper))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Detected() {
		t.Fatal("baseline failed to detect mask inflation")
	}
	baseConsistency := false
	for _, he := range base.HostErrors {
		if he.Predicate == "consistency" {
			baseConsistency = true
		}
	}
	if !baseConsistency {
		t.Errorf("baseline detection not attributed to consistency: %v", base.HostErrors)
	}

	abl, err := RunWithOptions(newFaultNet(t, dim), keys,
		ablationOpts(n, func(o *Options) { o.TrustSenderMasks = true }, 1, tamper))
	if err != nil {
		t.Fatal(err)
	}
	if !abl.Detected() {
		if cerr := checker.Verify(keys, abl.Sorted, true); cerr != nil {
			t.Fatalf("trusting masks made corruption silent: %v", cerr)
		}
		t.Fatal("trusting masks made the attack invisible and harmless — unexpected for this tamper")
	}
}
