package core

import (
	"errors"
	"fmt"
)

// Sentinel errors classify which component of the constraint predicate
// Φ = (Φ_P, Φ_F, Φ_C) detected faulty behaviour, plus a fourth class
// for violations of the message protocol itself (wrong kind, wrong
// step labels, malformed payloads — all detectable faults under the
// paper's Byzantine model).
var (
	// ErrProgress is a Φ_P violation: an assembled stage sequence is
	// not monotonic/bitonic in the direction the schedule requires.
	ErrProgress = errors.New("core: progress predicate violated")
	// ErrFeasibility is a Φ_F violation: a stage sequence is not a
	// permutation of the previous verified stage sequence.
	ErrFeasibility = errors.New("core: feasibility predicate violated")
	// ErrConsistency is a Φ_C violation: two copies of the same
	// logical value, relayed along vertex-disjoint paths, disagree —
	// or a sender claimed knowledge it cannot legitimately have.
	ErrConsistency = errors.New("core: consistency predicate violated")
	// ErrProtocol is a violation of the exchange protocol itself.
	ErrProtocol = errors.New("core: protocol violated")
)

// ErrorKind classifies the *evidence* behind a detection, orthogonally
// to which predicate fired: a concrete bad value or header from an
// identifiable sender, the absence of an expected message, or an
// unattributed shape failure over an assembled sequence. It rides the
// ERROR signal so diagnosis (internal/diagnose) keys off structure
// instead of parsing human-readable detail text.
type ErrorKind uint8

const (
	// KindValue: the evidence is a concrete bad value, view, or header
	// received from an identifiable sender.
	KindValue ErrorKind = iota
	// KindAbsence: an expected message never arrived (timeout). Weak
	// evidence — once one honest node fail-stops, its silent links
	// accuse *it* in cascades.
	KindAbsence
	// KindShape: a shape or permutation check over an assembled
	// sequence failed without implicating a specific sender.
	KindShape
)

// String returns the kind's wire-stable name.
func (k ErrorKind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindAbsence:
		return "absence"
	case KindShape:
		return "shape"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PredicateError carries the full diagnostic a node ships to the host
// when an executable assertion fires.
type PredicateError struct {
	// Node is the detecting node's label.
	Node int
	// Stage and Iter locate the (i, j) step at which detection happened.
	// Iter is -1 for stage-end checks.
	Stage int
	Iter  int
	// Kind is the violated predicate sentinel (ErrProgress, ...).
	Kind error
	// Evidence classifies what fired the assertion (value, absence,
	// shape).
	Evidence ErrorKind
	// Accused is the node whose message triggered the assertion, or
	// -1 when the evidence does not implicate a specific sender
	// (shape/permutation failures over an assembled sequence).
	// Diagnosis heuristics in internal/diagnose rank accusations to
	// localize the fault.
	Accused int
	// Detail is a human-readable description of the evidence.
	Detail string
}

// Error implements the error interface.
func (e *PredicateError) Error() string {
	return fmt.Sprintf("node %d stage %d iter %d: %v: %s", e.Node, e.Stage, e.Iter, e.Kind, e.Detail)
}

// Unwrap exposes the predicate sentinel for errors.Is.
func (e *PredicateError) Unwrap() error { return e.Kind }

// PredicateName returns the wire name of the predicate class for the
// host ERROR payload.
func PredicateName(kind error) string {
	switch {
	case errors.Is(kind, ErrProgress):
		return "progress"
	case errors.Is(kind, ErrFeasibility):
		return "feasibility"
	case errors.Is(kind, ErrConsistency):
		return "consistency"
	default:
		return "protocol"
	}
}
