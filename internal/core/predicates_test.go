package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestProgressStageShape(t *testing.T) {
	tests := []struct {
		name    string
		seq     []int64
		wantErr bool
	}{
		{"canonical bitonic", []int64{1, 3, 5, 9, 8, 6, 4, 2}, false},
		{"flat", []int64{2, 2, 2, 2}, false},
		{"pair", []int64{5, 1}, false}, // halves of length 1
		{"lower half broken", []int64{3, 1, 9, 8}, true},
		{"upper half broken", []int64{1, 3, 4, 9}, true},
		{"odd length", []int64{1, 2, 3}, true},
		{"empty", nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Progress(tc.seq, false)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Progress(%v) err = %v, wantErr %v", tc.seq, err, tc.wantErr)
			}
			if err != nil && !errors.Is(err, ErrProgress) {
				t.Fatalf("error %v does not wrap ErrProgress", err)
			}
		})
	}
}

func TestProgressFinal(t *testing.T) {
	if err := Progress([]int64{1, 2, 2, 9}, true); err != nil {
		t.Errorf("sorted final rejected: %v", err)
	}
	if err := Progress([]int64{1, 9, 2}, true); !errors.Is(err, ErrProgress) {
		t.Errorf("unsorted final: want ErrProgress, got %v", err)
	}
}

func TestFeasibility(t *testing.T) {
	tests := []struct {
		name      string
		prev, cur []int64
		wantErr   bool
	}{
		{"identical", []int64{1, 2}, []int64{1, 2}, false},
		{"permuted", []int64{1, 2, 3}, []int64{3, 1, 2}, false},
		{"duplicates ok", []int64{5, 5, 1}, []int64{1, 5, 5}, false},
		{"value substituted", []int64{1, 2}, []int64{1, 3}, true},
		{"value duplicated", []int64{1, 2}, []int64{1, 1}, true},
		{"length mismatch", []int64{1, 2}, []int64{1}, true},
		{"both empty", nil, nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Feasibility(tc.prev, tc.cur)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Feasibility(%v,%v) err = %v, wantErr %v", tc.prev, tc.cur, err, tc.wantErr)
			}
			if err != nil && !errors.Is(err, ErrFeasibility) {
				t.Fatalf("error %v does not wrap ErrFeasibility", err)
			}
		})
	}
}

func TestFeasibilityDetectsAnySingleSubstitutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(raw []int16, pick uint8, delta int16) bool {
		if len(raw) == 0 || delta == 0 {
			return true
		}
		prev := make([]int64, len(raw))
		for i, v := range raw {
			prev[i] = int64(v)
		}
		cur := append([]int64{}, prev...)
		rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
		cur[int(pick)%len(cur)] += int64(delta)
		return Feasibility(prev, cur) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFeasibilityAcceptsPermutationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(raw []int16) bool {
		prev := make([]int64, len(raw))
		for i, v := range raw {
			prev[i] = int64(v)
		}
		cur := append([]int64{}, prev...)
		rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
		return Feasibility(prev, cur) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeasibilityTwoPointer(t *testing.T) {
	tests := []struct {
		name      string
		prev, cur []int64
		wantErr   bool
	}{
		{"canonical", []int64{1, 5, 9, 7}, []int64{1, 5, 7, 9}, false},
		{"all ascending run", []int64{1, 2, 3, 4}, []int64{1, 2, 3, 4}, false},
		{"all descending run", []int64{4, 3, 2, 1}, []int64{1, 2, 3, 4}, false},
		{"duplicates", []int64{2, 2, 5, 2}, []int64{2, 2, 2, 5}, false},
		{"substituted", []int64{1, 5, 9, 7}, []int64{1, 5, 7, 8}, true},
		{"length mismatch", []int64{1, 2}, []int64{1}, true},
		{"both empty", nil, nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := FeasibilityTwoPointer(tc.prev, tc.cur)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err != nil && !errors.Is(err, ErrFeasibility) {
				t.Fatalf("error %v does not wrap ErrFeasibility", err)
			}
		})
	}
}

// Under the stage-boundary preconditions (prev bitonic up-down, cur
// fully sorted) the paper's two-pointer Φ_F and the multiset Φ_F agree
// on accept and on reject.
func TestFeasibilityVariantsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(raw []int16, split uint8, corrupt bool, pick uint8, delta int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		cur := append([]int64{}, vals...)
		sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
		// prev: ascending run then descending run over the same multiset.
		k := int(split) % (len(vals) + 1)
		prev := append([]int64{}, cur...)
		rng.Shuffle(len(prev), func(i, j int) { prev[i], prev[j] = prev[j], prev[i] })
		asc := append([]int64{}, prev[:k]...)
		desc := append([]int64{}, prev[k:]...)
		sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
		sort.Slice(desc, func(i, j int) bool { return desc[i] > desc[j] })
		prev = append(asc, desc...)
		if corrupt && delta != 0 {
			cur[int(pick)%len(cur)] += int64(delta)
			sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
		}
		a := Feasibility(prev, cur) == nil
		b := FeasibilityTwoPointer(prev, cur) == nil
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBitCompare(t *testing.T) {
	// Stage case: assembled over SC_{s+1} with my half = lower.
	prev := []int64{3, 1} // previous verified sequence over my SC_s
	assembled := []int64{1, 3, 9, 4}
	if err := BitCompare(prev, assembled, assembled[:2], false); err != nil {
		t.Errorf("valid bit_compare failed: %v", err)
	}
	// Progress failure dominates.
	bad := []int64{3, 1, 9, 4}
	if err := BitCompare(prev, bad, bad[:2], false); !errors.Is(err, ErrProgress) {
		t.Errorf("want ErrProgress, got %v", err)
	}
	// Feasibility failure on my half.
	sub := []int64{1, 4, 9, 4}
	if err := BitCompare(prev, sub, sub[:2], false); !errors.Is(err, ErrFeasibility) {
		t.Errorf("want ErrFeasibility, got %v", err)
	}
	// Final case: whole-sequence comparison.
	finalPrev := []int64{4, 2, 3, 1}
	finalSeq := []int64{1, 2, 3, 4}
	if err := BitCompare(finalPrev, finalSeq, nil, true); err != nil {
		t.Errorf("valid final bit_compare failed: %v", err)
	}
	if err := BitCompare(finalPrev, []int64{1, 2, 3, 5}, nil, true); !errors.Is(err, ErrFeasibility) {
		t.Errorf("final substitution: want ErrFeasibility, got %v", err)
	}
}

func TestPredicateErrorFormatting(t *testing.T) {
	pe := &PredicateError{Node: 3, Stage: 2, Iter: 1, Kind: ErrConsistency, Detail: "copies differ"}
	if !errors.Is(pe, ErrConsistency) {
		t.Error("PredicateError does not unwrap to its kind")
	}
	msg := pe.Error()
	for _, want := range []string{"node 3", "stage 2", "iter 1", "copies differ"} {
		if !contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPredicateName(t *testing.T) {
	tests := []struct {
		kind error
		want string
	}{
		{ErrProgress, "progress"},
		{ErrFeasibility, "feasibility"},
		{ErrConsistency, "consistency"},
		{ErrProtocol, "protocol"},
		{errors.New("other"), "protocol"},
	}
	for _, tc := range tests {
		if got := PredicateName(tc.kind); got != tc.want {
			t.Errorf("PredicateName(%v) = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

// A full bitonic schedule simulated sequentially: at the end of each
// stage the assembled previous-stage output must satisfy Progress.
// This pins the predicate to the actual algorithm behaviour it asserts.
func TestProgressHoldsAlongHonestSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim = 4
	n := 1 << dim
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(50))
	}
	for s := 0; s < dim; s++ {
		stageStart := append([]int64{}, vals...)
		// Run stage s of the schedule sequentially.
		for j := s; j >= 0; j-- {
			d := 1 << uint(j)
			for id := 0; id < n; id++ {
				if id&d != 0 {
					continue
				}
				p := id | d
				asc := id&(1<<uint(s+1)) == 0 || s == dim-1
				lo, hi := vals[id], vals[p]
				if lo > hi {
					lo, hi = hi, lo
				}
				if asc {
					vals[id], vals[p] = lo, hi
				} else {
					vals[id], vals[p] = hi, lo
				}
			}
		}
		// stageStart holds stage-(s-1) output: at end of stage s each
		// SC_{s+1} of it must pass Progress (for s >= 1).
		if s >= 1 {
			size := 1 << uint(s+1)
			for base := 0; base < n; base += size {
				if err := Progress(stageStart[base:base+size], false); err != nil {
					t.Fatalf("stage %d subcube at %d: %v (%v)", s, base, err, stageStart[base:base+size])
				}
			}
		}
	}
	sorted := append([]int64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range vals {
		if vals[i] != sorted[i] {
			t.Fatalf("schedule simulation did not sort: %v", vals)
		}
	}
	if err := Progress(vals, true); err != nil {
		t.Fatalf("final Progress: %v", err)
	}
}
