package blocksort

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/hypercube"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func newNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func newFaultNet(t testing.TB, dim int) *simnet.Network {
	t.Helper()
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func randomBlocks(rng *rand.Rand, n, m, span int) ([][]int64, []int64) {
	blocks := make([][]int64, n)
	var all []int64
	for i := range blocks {
		blocks[i] = make([]int64, m)
		for j := range blocks[i] {
			blocks[i][j] = int64(rng.Intn(span) - span/2)
		}
		all = append(all, blocks[i]...)
	}
	return blocks, all
}

func flatten(blocks [][]int64) []int64 {
	var out []int64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func TestRunNRSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ dim, m int }{
		{0, 4}, {1, 1}, {1, 4}, {2, 3}, {3, 8}, {4, 5},
	} {
		blocks, all := randomBlocks(rng, 1<<uint(tc.dim), tc.m, 200)
		nw := newNet(t, tc.dim)
		out, res, err := RunNR(nw, blocks)
		if err != nil {
			t.Fatalf("dim=%d m=%d: %v", tc.dim, tc.m, err)
		}
		if err := res.AnyErr(); err != nil {
			t.Fatalf("dim=%d m=%d: %v", tc.dim, tc.m, err)
		}
		if err := checker.Verify(all, flatten(out), true); err != nil {
			t.Fatalf("dim=%d m=%d: %v", tc.dim, tc.m, err)
		}
	}
}

func TestRunFTSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tc := range []struct{ dim, m int }{
		{0, 4}, {1, 3}, {2, 4}, {3, 4}, {4, 2},
	} {
		blocks, all := randomBlocks(rng, 1<<uint(tc.dim), tc.m, 100)
		nw := newNet(t, tc.dim)
		oc, err := RunFT(nw, blocks)
		if err != nil {
			t.Fatalf("dim=%d m=%d: %v", tc.dim, tc.m, err)
		}
		if oc.Detected() {
			t.Fatalf("dim=%d m=%d: spurious detection: %v %v",
				tc.dim, tc.m, oc.Result.FirstNodeErr(), oc.HostErrors)
		}
		if err := checker.Verify(all, flatten(oc.SortedBlocks), true); err != nil {
			t.Fatalf("dim=%d m=%d: %v (out=%v)", tc.dim, tc.m, err, oc.SortedBlocks)
		}
	}
}

func TestRunFTDuplicateHeavy(t *testing.T) {
	blocks := [][]int64{{5, 5, 5}, {5, 5, 5}, {1, 5, 1}, {5, 1, 5}}
	all := flatten(blocks)
	oc, err := RunFT(newNet(t, 2), blocks)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Detected() {
		t.Fatalf("spurious detection: %v", oc.HostErrors)
	}
	if err := checker.Verify(all, flatten(oc.SortedBlocks), true); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	nw := newNet(t, 1)
	if _, _, err := RunNR(nw, [][]int64{{1}}); err == nil {
		t.Error("wrong block count: want error")
	}
	if _, _, err := RunNR(nw, [][]int64{{1}, {2, 3}}); err == nil {
		t.Error("ragged blocks: want error")
	}
	if _, _, err := RunNR(nw, [][]int64{{}, {}}); err == nil {
		t.Error("empty blocks: want error")
	}
	if _, err := RunFTWithOptions(nw, [][]int64{{1}, {2}}, make([]Options, 1)); err == nil {
		t.Error("wrong option count: want error")
	}
}

func TestProgressBlocks(t *testing.T) {
	tests := []struct {
		name    string
		blocks  [][]int64
		final   bool
		wantErr bool
	}{
		{"final sorted", [][]int64{{1, 2}, {3, 4}}, true, false},
		{"final unsorted boundary", [][]int64{{1, 5}, {3, 4}}, true, true},
		{"block internally unsorted", [][]int64{{2, 1}, {3, 4}}, true, true},
		{"stage canonical", [][]int64{{1, 2}, {3, 4}, {9, 10}, {5, 6}}, false, false},
		{"stage lower broken", [][]int64{{3, 4}, {1, 2}, {9, 10}, {5, 6}}, false, true},
		{"stage upper broken", [][]int64{{1, 2}, {3, 4}, {5, 6}, {9, 10}}, false, true},
		{"odd count", [][]int64{{1}, {2}, {3}}, false, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := ProgressBlocks(tc.blocks, tc.final)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ProgressBlocks(%v, final=%v) = %v, wantErr %v", tc.blocks, tc.final, err, tc.wantErr)
			}
		})
	}
}

func TestFTMessageCountMatchesNR(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dim, m := 3, 4
	n := 1 << uint(dim)
	blocks, _ := randomBlocks(rng, n, m, 100)

	nwNR := newNet(t, dim)
	_, resNR, err := RunNR(nwNR, blocks)
	if err != nil {
		t.Fatal(err)
	}
	nwFT := newNet(t, dim)
	oc, err := RunFT(nwFT, blocks)
	if err != nil {
		t.Fatal(err)
	}
	nrMsgs := resNR.Metrics.MsgsByKind[wire.KindExchange]
	ftMsgs := oc.Result.Metrics.MsgsByKind[wire.KindFTExchange]
	if nrMsgs != ftMsgs {
		t.Errorf("main-loop messages: NR %d vs FT %d (must match)", nrMsgs, ftMsgs)
	}
	nrBytes := resNR.Metrics.BytesByKind[wire.KindExchange]
	ftBytes := oc.Result.Metrics.BytesByKind[wire.KindFTExchange]
	if ftBytes <= nrBytes {
		t.Errorf("FT bytes %d not larger than NR bytes %d", ftBytes, nrBytes)
	}
}

func TestFTByzantineBlockLieDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dim, m := 3, 4
	n := 1 << uint(dim)
	blocks, _ := randomBlocks(rng, n, m, 50)
	opts := make([]Options, n)
	opts[4] = Options{SkipChecks: true, Tamper: func(msg *wire.Message) *wire.Message {
		if msg.Kind != wire.KindFTExchange || msg.Stage < 1 {
			return msg
		}
		p, err := wire.DecodeFTExchange(msg.Payload)
		if err != nil || len(p.Keys) == 0 {
			return msg
		}
		p.Keys[0] = 7777
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return msg
		}
		msg.Payload = buf
		return msg
	}}
	oc, err := RunFTWithOptions(newFaultNet(t, dim), blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatalf("block key lie went undetected; out=%v", oc.SortedBlocks)
	}
}

func TestFTByzantineViewLieDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	dim, m := 2, 3
	n := 1 << uint(dim)
	blocks, _ := randomBlocks(rng, n, m, 50)
	opts := make([]Options, n)
	opts[1] = Options{SkipChecks: true, Tamper: func(msg *wire.Message) *wire.Message {
		if msg.Kind != wire.KindFTExchange || msg.Stage < 1 {
			return msg
		}
		p, err := wire.DecodeFTExchange(msg.Payload)
		if err != nil || len(p.View.Vals) == 0 {
			return msg
		}
		p.View.Vals[0] = -9999
		buf, err := wire.EncodeFTExchange(p)
		if err != nil {
			return msg
		}
		msg.Payload = buf
		return msg
	}}
	oc, err := RunFTWithOptions(newFaultNet(t, dim), blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("block view lie went undetected")
	}
}

func TestFTNeverSilentlyWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	dim, m := 2, 3
	n := 1 << uint(dim)
	for trial := 0; trial < 10; trial++ {
		blocks, all := randomBlocks(rng, n, m, 30)
		faulty := rng.Intn(n)
		lie := int64(rng.Intn(500) - 250)
		opts := make([]Options, n)
		opts[faulty] = Options{SkipChecks: true, Tamper: func(msg *wire.Message) *wire.Message {
			if msg.Kind != wire.KindFTExchange || msg.Stage < 1 {
				return msg
			}
			p, err := wire.DecodeFTExchange(msg.Payload)
			if err != nil || len(p.Keys) == 0 {
				return msg
			}
			for i := range p.Keys {
				p.Keys[i] = lie
			}
			buf, err := wire.EncodeFTExchange(p)
			if err != nil {
				return msg
			}
			msg.Payload = buf
			return msg
		}}
		oc, err := RunFTWithOptions(newFaultNet(t, dim), blocks, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !oc.Detected() {
			if verr := checker.Verify(all, flatten(oc.SortedBlocks), true); verr != nil {
				t.Fatalf("trial %d: silent wrong output (faulty=%d lie=%d): %v",
					trial, faulty, lie, verr)
			}
		}
	}
}

func TestBlockViewFlattenHelpers(t *testing.T) {
	topo := hypercube.MustNew(2)
	sc, err := topo.HomeSubcube(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bv := newBlockView(sc, 2)
	bv.set(0, []int64{1, 2})
	bv.set(1, []int64{3, 4})
	bv.set(2, []int64{5, 6})
	bv.set(3, []int64{7, 8})
	got := bv.flatten(0, 4)
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flatten = %v", got)
		}
	}
	rev := bv.flattenReversed(2, 4)
	wantRev := []int64{7, 8, 5, 6}
	for i := range wantRev {
		if rev[i] != wantRev[i] {
			t.Fatalf("flattenReversed = %v", rev)
		}
	}
	if !bv.complete() {
		t.Error("complete() = false on full view")
	}
}
