// Package blocksort implements the bitonic block sort/merge of the
// paper's Section 5: each of the N nodes holds a block of m keys
// instead of one. The message-exchange structure of the bitonic
// schedule is preserved; each compare-exchange becomes a merge-split
// of 2m keys, adding O(m + m log m) local work per step, and each of
// the constraint predicates Φ scales by m. Figure 8 compares this
// fault-tolerant block sort against host sorting.
//
// Both the unreliable (NR) and fault-tolerant (FT) variants are
// provided. The FT variant reuses the core package's predicates and
// vect_mask knowledge schedule, with views carrying whole blocks.
package blocksort

import (
	"fmt"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Options tunes one node's program; the zero value is honest.
type Options struct {
	// Tamper intercepts outgoing messages (Byzantine processor); nil
	// for honest nodes. Returning nil drops the message.
	Tamper func(m *wire.Message) *wire.Message
	// Compare, when non-nil, replaces the node's merge-split
	// comparator: Compare(stage, a, b) reports whether a orders at or
	// before b. A lying comparator models faulty comparisons — the
	// merge-split misroutes keys without any message being tampered.
	// Nil is the honest machine comparator.
	Compare func(stage int, a, b int64) bool
	// CorruptMemory, when non-nil, is invoked at every stage boundary
	// (stages >= 1 and before the final verification round, with the
	// cube dimension as the stage label) on the node's resident block,
	// modelling memory cells that corrupt between accesses. The hook
	// mutates the block in place.
	CorruptMemory func(stage int, keys []int64)
	// SkipChecks disables the node's own assertions (used together
	// with Tamper for malicious nodes).
	SkipChecks bool
	// Obs, when non-nil, receives stage/round spans, Φ evaluations,
	// merge-split compare counts, and accusations. Recording reads the
	// endpoint clock but never charges it; all Observer methods are
	// nil-safe and allocation-free.
	Obs *obs.Observer
	// Forensic, when non-nil, is this node's flight recorder (mirrors
	// core.Options.Forensic): predicate evaluations, merge-splits, and
	// accusations land in the same ring as the transport's send/recv
	// events, and a predicate failure triggers a forensic dump. Use a
	// recorder from the Flight the transport was configured with.
	Forensic *forensic.Recorder
	// Parallelism caps the worker count for the data-parallel
	// merge-split and local-sort paths (mirrors core.Options): <= 0
	// means GOMAXPROCS. Worker count never changes outputs or charged
	// comparison counts — the parallel merges are bit-identical to
	// their sequential counterparts — only wall-clock time.
	Parallelism int
}

// RunNR executes the unreliable block bitonic sort: blocks[id] is node
// id's initial block (all equal length). The returned blocks form the
// globally sorted ascending sequence when concatenated in node order.
func RunNR(nw transport.Network, blocks [][]int64) ([][]int64, *node.Result, error) {
	if err := validateBlocks(nw, blocks); err != nil {
		return nil, nil, err
	}
	n := nw.Topology().Nodes()
	out := make([][]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		progs[id] = nodeProgramNR(blocks[id], &out[id])
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("blocksort: %w", err)
	}
	return out, res, nil
}

// Outcome aggregates an FT block-sort run, mirroring core.Outcome.
type Outcome struct {
	// SortedBlocks is the per-node output; trust it only when
	// Detected() is false.
	SortedBlocks [][]int64
	// Result carries per-node errors and clocks.
	Result *node.Result
	// HostErrors are the drained ERROR diagnostics.
	HostErrors []core.HostError
}

// Detected reports whether any fault was detected.
func (o *Outcome) Detected() bool {
	if len(o.HostErrors) > 0 {
		return true
	}
	return o.Result.AnyErr() != nil
}

// RunFT executes the fault-tolerant block bitonic sort.
func RunFT(nw transport.Network, blocks [][]int64) (*Outcome, error) {
	return RunFTWithOptions(nw, blocks, nil)
}

// RunFTWithOptions executes the fault-tolerant block sort with
// per-node options (nil means all honest).
func RunFTWithOptions(nw transport.Network, blocks [][]int64, opts []Options) (*Outcome, error) {
	if err := validateBlocks(nw, blocks); err != nil {
		return nil, err
	}
	n := nw.Topology().Nodes()
	if opts == nil {
		opts = make([]Options, n)
	}
	if len(opts) != n {
		return nil, fmt.Errorf("blocksort: %d option sets for %d nodes", len(opts), n)
	}
	out := make([][]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		progs[id] = nodeProgramFT(blocks[id], &out[id], opts[id])
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return nil, fmt.Errorf("blocksort: %w", err)
	}
	oc := &Outcome{SortedBlocks: out, Result: res}
	oc.HostErrors = drainHostErrors(nw)
	return oc, nil
}

func validateBlocks(nw transport.Network, blocks [][]int64) error {
	n := nw.Topology().Nodes()
	if len(blocks) != n {
		return fmt.Errorf("blocksort: %d blocks for %d nodes", len(blocks), n)
	}
	if n == 0 {
		return nil
	}
	m := len(blocks[0])
	if m == 0 {
		return fmt.Errorf("blocksort: empty blocks")
	}
	for i, b := range blocks {
		if len(b) != m {
			return fmt.Errorf("blocksort: block %d has %d keys, want %d", i, len(b), m)
		}
	}
	return nil
}

// localSort sorts a block ascending in place and charges the endpoint
// the comparison cost. workers caps the sort's parallelism (<= 0 means
// GOMAXPROCS); the charged count is identical for every worker count.
func localSort(ep transport.Endpoint, b []int64, workers int) error {
	sorted, compares := bitonic.ParallelMergeSortCount(b, workers)
	copy(b, sorted)
	ep.ChargeCompare(compares)
	ep.ChargeKeyMove(len(b))
	return nil
}

// nodeProgramNR is the unreliable block sort: local sort, then the
// bitonic schedule with merge-split exchanges.
func nodeProgramNR(block []int64, out *[]int64) node.Program {
	return func(ep transport.Endpoint) error {
		id := ep.ID()
		n := ep.Topology().Dim()
		mine := append([]int64{}, block...)
		if err := localSort(ep, mine, 0); err != nil {
			return err
		}
		r := &nrRunner{ep: ep, m: len(mine)}
		for i := 0; i < n; i++ {
			for j := i; j >= 0; j-- {
				var err error
				mine, err = r.exchange(mine, i, j)
				if err != nil {
					return fmt.Errorf("blocksort: node %d stage %d iter %d: %w", id, i, j, err)
				}
			}
		}
		*out = mine
		return nil
	}
}

// nrRunner holds the per-node arenas of the unreliable block sort:
// encode scratch, zero-copy decode scratch, and the two alternating
// merge-split buffers (output always goes to the buffer not holding
// the node's current block). Steady-state exchanges allocate nothing.
type nrRunner struct {
	ep   transport.Endpoint
	m    int
	enc  []byte
	dec  wire.DecodeScratch
	bufs [2][]int64
	cur  int
}

func (r *nrRunner) nextBuf() []int64 {
	i := 1 - r.cur
	if cap(r.bufs[i]) < 2*r.m {
		r.bufs[i] = make([]int64, 0, 2*r.m)
	}
	r.cur = i
	return r.bufs[i][:0]
}

func (r *nrRunner) sendKeys(bit, stage, iter int, keys []int64) error {
	r.enc = wire.AppendExchange(r.enc[:0], keys)
	return r.ep.Send(bit, wire.Message{
		Kind:    wire.KindExchange,
		Stage:   int32(stage),
		Iter:    int32(iter),
		Payload: r.enc,
	})
}

func (r *nrRunner) exchange(mine []int64, i, j int) ([]int64, error) {
	id := r.ep.ID()
	ascending := r.ep.Topology().Ascending(i, id)

	if hypercube.Active(id, j) {
		got, err := r.ep.Recv(j)
		if err != nil {
			return nil, err
		}
		p, err := wire.DecodeExchangeInto(&r.dec, got.Payload)
		if err != nil {
			return nil, err
		}
		if len(p.Keys) != len(mine) {
			return nil, fmt.Errorf("partner block %d keys, want %d", len(p.Keys), len(mine))
		}
		lo, hi, compares, err := bitonic.MergeSplitInto(r.nextBuf(), mine, p.Keys)
		if err != nil {
			return nil, err
		}
		r.ep.ChargeCompare(compares)
		r.ep.ChargeKeyMove(2 * len(mine))
		keep, give := lo, hi
		if !ascending {
			keep, give = hi, lo
		}
		if err := r.sendKeys(j, i, j, give); err != nil {
			return nil, err
		}
		return keep, nil
	}

	if err := r.sendKeys(j, i, j, mine); err != nil {
		return nil, err
	}
	got, err := r.ep.Recv(j)
	if err != nil {
		return nil, err
	}
	p, err := wire.DecodeExchangeInto(&r.dec, got.Payload)
	if err != nil {
		return nil, err
	}
	if len(p.Keys) != len(mine) {
		return nil, fmt.Errorf("returned block %d keys, want %d", len(p.Keys), len(mine))
	}
	// The returned block aliases the decode scratch; copy it into the
	// buffer not holding mine before the next receive clobbers it.
	adopted := r.nextBuf()[:len(mine)]
	copy(adopted, p.Keys)
	return adopted, nil
}

func drainHostErrors(nw transport.Network) []core.HostError {
	h := nw.Host()
	var out []core.HostError
	for {
		m, ok, err := h.TryRecv()
		if err != nil || !ok {
			return out
		}
		if m.Kind != wire.KindError {
			continue
		}
		p, err := wire.DecodeError(m.Payload)
		if err != nil {
			continue
		}
		out = append(out, core.HostError{
			Node:      int(m.From),
			Stage:     int(m.Stage),
			Iter:      int(m.Iter),
			Predicate: p.Predicate,
			Kind:      core.ErrorKind(p.Kind),
			Accused:   int(p.Accused),
			Detail:    p.Detail,
		})
	}
}
