package blocksort

import (
	"errors"
	"fmt"

	"repro/internal/bitonic"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/transport"
	"repro/internal/wire"
)

// blockView is the block-sorting analogue of the core package's
// gathered LBS: one sorted block per subcube slot plus the knowledge
// mask. Blocks are slices into one flat arena (data) so a view reset
// between stages reuses storage instead of reallocating per slot.
// slotDig holds the multiset digest of each held slot's block, always
// computed locally from the adopted bytes (never taken from a sender's
// claim), so folding a slot into an aggregate check is O(1) and the
// aggregates a node relays are consistent with what it actually holds.
type blockView struct {
	sc      hypercube.Subcube
	m       int
	have    bitset.Set
	data    []int64
	blocks  [][]int64
	slotDig []wire.Digest
}

func newBlockView(sc hypercube.Subcube, m int) *blockView {
	g := &blockView{}
	g.reset(sc, m)
	return g
}

// reset reinitializes the view for a new subcube, reusing the arena.
// Slot contents are left stale; the knowledge mask gates every read.
func (g *blockView) reset(sc hypercube.Subcube, m int) {
	g.sc = sc
	g.m = m
	g.have.Reset(sc.Size())
	need := sc.Size() * m
	if cap(g.data) < need {
		g.data = make([]int64, need)
	} else {
		g.data = g.data[:need]
	}
	if cap(g.blocks) < sc.Size() {
		g.blocks = make([][]int64, sc.Size())
	} else {
		g.blocks = g.blocks[:sc.Size()]
	}
	if cap(g.slotDig) < sc.Size() {
		g.slotDig = make([]wire.Digest, sc.Size())
	} else {
		g.slotDig = g.slotDig[:sc.Size()]
		for i := range g.slotDig {
			g.slotDig[i] = wire.Digest{}
		}
	}
	for i := 0; i < sc.Size(); i++ {
		g.blocks[i] = g.data[i*m : (i+1)*m : (i+1)*m]
	}
}

func (g *blockView) set(nodeLabel int, b []int64) {
	idx := nodeLabel - g.sc.Start
	g.have.Add(idx)
	copy(g.blocks[idx], b)
	g.slotDig[idx] = wire.DigestOf(g.blocks[idx])
}

// rangeDigest folds the digests of slots [lo, hi); valid only when
// those slots are held.
func (g *blockView) rangeDigest(lo, hi int) wire.Digest {
	var d wire.Digest
	for i := lo; i < hi; i++ {
		d.Merge(g.slotDig[i])
	}
	return d
}

func (g *blockView) complete() bool { return g.have.Full() }

// flatten concatenates the blocks of the slot range [lo, hi) in slot
// order; valid only when those slots are known.
func (g *blockView) flatten(lo, hi int) []int64 {
	return g.flattenInto(nil, lo, hi)
}

// flattenInto is flatten appending into a caller-owned scratch
// (normally dst[:0] of a reused buffer).
func (g *blockView) flattenInto(dst []int64, lo, hi int) []int64 {
	for i := lo; i < hi; i++ {
		dst = append(dst, g.blocks[i]...)
	}
	return dst
}

// flattenReversed concatenates blocks in reverse slot order (each
// block kept in its internal ascending order).
func (g *blockView) flattenReversed(lo, hi int) []int64 {
	out := make([]int64, 0, (hi-lo)*g.m)
	for i := hi - 1; i >= lo; i-- {
		out = append(out, g.blocks[i]...)
	}
	return out
}

func (g *blockView) wireView() wire.View {
	return g.wireViewInto(nil)
}

// wireViewInto is wireView with a caller-owned Vals scratch. The
// result's Mask shares the working view's storage and its Vals share
// the scratch, so it must be encoded before either changes — which
// every send path does immediately.
func (g *blockView) wireViewInto(scratch []int64) wire.View {
	vals := scratch[:0]
	var dig wire.Digest
	g.have.Each(func(idx int) bool {
		vals = append(vals, g.blocks[idx]...)
		dig.Merge(g.slotDig[idx])
		return true
	})
	return wire.View{
		Base:     int32(g.sc.Start),
		Size:     int32(g.sc.Size()),
		BlockLen: int32(g.m),
		Mask:     g.have,
		Vals:     vals,
		Dig:      dig,
	}
}

// mergeChecked is Φ_C for blocks: the sender's mask must match the
// vect_mask prediction, and any block we already hold must be
// identical key-for-key to the relayed copy.
//
// The key-for-key walk over held slots (O(Count·m)) is demoted to a
// slow path: one pass folds the held slots' stored digests (O(1) each)
// and self-hashes the slots it adopts, and if the accumulated digest
// matches the sender's aggregate, every held copy agrees with its
// relayed copy up to hash collision (DigestHit). On a mismatch the
// key-for-key re-walk runs to produce the usual slot-level conflict
// evidence; adopted slots were copied verbatim so they cannot conflict,
// and if no held slot conflicts either, the sender's aggregate
// disagrees with the very entries it relayed — Byzantine evidence
// against the sender (DigestMiss both ways). Adopting before the
// verdict is sound because every mergeChecked error fail-stops the
// node.
func (g *blockView) mergeChecked(rv wire.View, expected bitset.Set) (core.DigestOutcome, error) {
	if err := rv.Validate(); err != nil {
		return core.DigestNone, fmt.Errorf("malformed view: %w", err)
	}
	if int(rv.Base) != g.sc.Start || int(rv.Size) != g.sc.Size() || int(rv.BlockLen) != g.m {
		return core.DigestNone, fmt.Errorf("view geometry [%d,+%d)x%d does not match subcube %v x%d",
			rv.Base, rv.Size, rv.BlockLen, g.sc, g.m)
	}
	if !rv.Mask.Equal(expected) {
		return core.DigestNone, fmt.Errorf("claimed knowledge mask %s differs from schedule's %s", rv.Mask.String(), expected.String())
	}
	var acc wire.Digest
	i := 0
	rv.Mask.Each(func(idx int) bool {
		if g.have.Has(idx) {
			acc.Merge(g.slotDig[idx])
		} else {
			g.have.Add(idx)
			copy(g.blocks[idx], rv.Block(i))
			g.slotDig[idx] = wire.DigestOf(g.blocks[idx])
			acc.Merge(g.slotDig[idx])
		}
		i++
		return true
	})
	if acc == rv.Dig {
		return core.DigestHit, nil
	}
	var conflict error
	i = 0
	rv.Mask.Each(func(idx int) bool {
		b := rv.Block(i)
		i++
		for k := range b {
			if g.blocks[idx][k] != b[k] {
				conflict = fmt.Errorf("slot %d (node %d) key %d: held copy %d disagrees with relayed copy %d",
					idx, g.sc.Start+idx, k, g.blocks[idx][k], b[k])
				return false
			}
		}
		return true
	})
	if conflict != nil {
		return core.DigestMiss, conflict
	}
	return core.DigestMiss, fmt.Errorf("view digest inconsistent with relayed entries")
}

func (g *blockView) mergeLenient(rv wire.View) {
	if rv.Validate() != nil || int(rv.Base) != g.sc.Start ||
		int(rv.Size) != g.sc.Size() || int(rv.BlockLen) != g.m {
		return
	}
	i := 0
	rv.Mask.Each(func(idx int) bool {
		b := rv.Block(i)
		i++
		if !g.have.Has(idx) {
			g.have.Add(idx)
			copy(g.blocks[idx], b)
			// Even a checks-skipping node keeps its slot digests
			// consistent with what it holds, so the aggregates it
			// relays match its entries.
			g.slotDig[idx] = wire.DigestOf(g.blocks[idx])
		}
		return true
	})
}

// ProgressBlocks is Φ_P scaled by m: each block must be internally
// ascending; for a regular stage the lower half's node-order
// concatenation and the upper half's reverse-node-order concatenation
// must both be globally ascending; at the final verification the whole
// node-order concatenation must be ascending.
func ProgressBlocks(blocks [][]int64, final bool) error {
	for i, b := range blocks {
		if !bitonic.IsSorted(b, true) {
			return fmt.Errorf("block %d not internally sorted: %w", i, core.ErrProgress)
		}
	}
	flat := func(lo, hi int, rev bool) []int64 {
		var out []int64
		if rev {
			for i := hi - 1; i >= lo; i-- {
				out = append(out, blocks[i]...)
			}
		} else {
			for i := lo; i < hi; i++ {
				out = append(out, blocks[i]...)
			}
		}
		return out
	}
	if final {
		if !bitonic.IsSorted(flat(0, len(blocks), false), true) {
			return fmt.Errorf("final block concatenation not ascending: %w", core.ErrProgress)
		}
		return nil
	}
	if len(blocks)%2 != 0 {
		return fmt.Errorf("odd block count %d: %w", len(blocks), core.ErrProgress)
	}
	half := len(blocks) / 2
	if !bitonic.IsSorted(flat(0, half, false), true) {
		return fmt.Errorf("lower half block concatenation not ascending: %w", core.ErrProgress)
	}
	if !bitonic.IsSorted(flat(half, len(blocks), true), true) {
		return fmt.Errorf("upper half reverse concatenation not ascending: %w", core.ErrProgress)
	}
	return nil
}

// nodeProgramFT is the fault-tolerant block sort node program.
func nodeProgramFT(block []int64, out *[]int64, opts Options) node.Program {
	return func(ep transport.Endpoint) error {
		r := &ftRunner{ep: ep, opts: opts, m: len(block)}
		b, err := r.run(block)
		if err != nil {
			return err
		}
		*out = b
		return nil
	}
}

type ftRunner struct {
	ep   transport.Endpoint
	opts Options
	m    int

	// Per-node arenas reused across every stage and iteration: payload
	// encoding scratch, zero-copy decode scratch, the block view, the
	// wire-view Vals staging area, the keep·give send staging buffer,
	// the two alternating merge-split buffers, the merge-split
	// verification scratch, the flatten scratches, and the vect_mask
	// prediction scratch.
	enc      []byte
	dec      wire.DecodeScratch
	view     blockView
	wvVals   []int64
	keyStage []int64
	bufs     [2][]int64
	cur      int
	msCheck  []int64
	halfBuf  []int64
	prevBuf  []int64
	expect   bitset.Set
}

// nextBuf flips to the merge-split buffer NOT holding the node's
// current block and returns it (cap 2m, length 0). Alternating between
// two buffers lets MergeSplitInto write its output while reading the
// current block from the other.
func (r *ftRunner) nextBuf() []int64 {
	i := 1 - r.cur
	if cap(r.bufs[i]) < 2*r.m {
		r.bufs[i] = make([]int64, 0, 2*r.m)
	}
	r.cur = i
	return r.bufs[i][:0]
}

// ensureCap returns s emptied, reallocated if its capacity is below n.
func ensureCap(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, 0, n)
	}
	return s[:0]
}

// fail constructs the node's predicate error with no specific accused
// node (shape evidence); failFrom implicates a sender, failAbsent
// reports a missing message. Mirrors the core package's S_FT runner.
func (r *ftRunner) fail(kind error, stage, iter int, format string, args ...any) error {
	return r.failEvidence(kind, core.KindShape, stage, iter, -1, format, args...)
}

func (r *ftRunner) failFrom(kind error, stage, iter, accused int, format string, args ...any) error {
	return r.failEvidence(kind, core.KindValue, stage, iter, accused, format, args...)
}

func (r *ftRunner) failAbsent(kind error, stage, iter, accused int, format string, args ...any) error {
	return r.failEvidence(kind, core.KindAbsence, stage, iter, accused, format, args...)
}

func (r *ftRunner) failEvidence(kind error, ev core.ErrorKind, stage, iter, accused int, format string, args ...any) error {
	if accused >= 0 {
		r.opts.Obs.Accusation(r.ep.ID(), stage, iter, accused, int64(r.ep.Clock()))
	}
	pe := &core.PredicateError{
		Node:     r.ep.ID(),
		Stage:    stage,
		Iter:     iter,
		Kind:     kind,
		Evidence: ev,
		Accused:  accused,
		Detail:   fmt.Sprintf(format, args...),
	}
	// Record the accusation (and take the forensic dump) before the
	// ERROR signal leaves, mirroring the core runner.
	r.opts.Forensic.Accuse(forensic.PredCode(core.PredicateName(kind)), uint8(ev),
		int32(stage), int32(iter), int32(accused), pe.Detail, int64(r.ep.Clock()))
	_ = r.ep.SendHost(wire.Message{
		Kind:  wire.KindError,
		Stage: int32(stage),
		Iter:  int32(iter),
		Payload: wire.EncodeError(wire.ErrorPayload{
			Predicate: core.PredicateName(kind),
			Kind:      uint8(ev),
			Accused:   int32(accused),
			Detail:    pe.Detail,
		}),
	})
	return pe
}

// phiCheck reports one constraint-predicate evaluation to the
// observer and the flight recorder. A no-op without either.
func (r *ftRunner) phiCheck(p obs.Phi, stage, iter int, pass bool) {
	r.opts.Obs.PhiCheck(p, r.ep.ID(), stage, iter, pass, int64(r.ep.Clock()))
	if r.opts.Forensic != nil {
		r.opts.Forensic.Phi(core.PhiPred(p), int32(stage), int32(iter), pass,
			r.view.rangeDigest(0, r.view.sc.Size()), int64(r.ep.Clock()))
	}
}

func (r *ftRunner) run(block []int64) ([]int64, error) {
	id := r.ep.ID()
	topo := r.ep.Topology()
	n := topo.Dim()
	mine := append([]int64{}, block...)
	if err := localSort(r.ep, mine, r.opts.Parallelism); err != nil {
		return nil, err
	}
	if n == 0 {
		return mine, nil
	}

	var prevFlat []int64 // verified previous sequence, flattened (LLBS · m)
	var prevSC hypercube.Subcube
	var prevDig wire.Digest // multiset digest of prevFlat, saved at the stage boundary

	for s := 0; s < n; s++ {
		// Faulty-memory hook: the resident block may corrupt between
		// stages (never before the first exchange, per environmental
		// assumption 5 — a stage-0 corruption would be different input).
		if r.opts.CorruptMemory != nil && s > 0 {
			r.opts.CorruptMemory(s, mine)
		}
		stageVT := int64(r.ep.Clock())
		r.opts.Obs.StageBegin(id, s, false, stageVT)
		sc, err := topo.HomeSubcube(s+1, id)
		if err != nil {
			return nil, fmt.Errorf("blocksort: %w", err)
		}
		view := &r.view
		view.reset(sc, r.m)
		view.set(id, mine)
		for j := s; j >= 0; j-- {
			r.opts.Obs.RoundBegin(id, s, j, int64(r.ep.Clock()))
			mine, err = r.exchange(view, mine, s, j)
			if err != nil {
				return nil, err
			}
			r.opts.Obs.RoundEnd(id, s, j, int64(r.ep.Clock()))
		}
		if !view.complete() && !r.opts.SkipChecks {
			r.phiCheck(obs.PhiC, s, -1, false)
			return nil, r.fail(core.ErrConsistency, s, -1,
				"stage gather incomplete: mask %s", view.have.String())
		}
		if s > 0 && !r.opts.SkipChecks {
			// ProgressBlocks only reads, so the view's slots are passed
			// directly rather than defensively copied.
			r.ep.ChargeCompare(sc.Size() * r.m)
			perr := ProgressBlocks(view.blocks, false)
			r.phiCheck(obs.PhiP, s, -1, perr == nil)
			if perr != nil {
				return nil, r.fail(core.ErrProgress, s, -1, "%v", perr)
			}
			// Φ_F fast path: the previous home subcube is a contiguous
			// slot range of this stage's view, so its multiset digest
			// folds from the stored per-slot digests in O(slots) and the
			// permutation test is a digest comparison. A mismatch proves
			// a real difference (equal multisets always digest equally);
			// the element-level scan then runs only to produce today's
			// attribution evidence, and remains authoritative.
			lo := prevSC.Start - sc.Start
			r.ep.ChargeCompare(wire.DigestCompareCost)
			var ferr error
			if view.rangeDigest(lo, lo+prevSC.Size()) == prevDig {
				r.opts.Obs.DigestCheck(true)
			} else {
				r.opts.Obs.DigestCheck(false)
				r.opts.Obs.DigestSlowScan()
				r.halfBuf = view.flattenInto(r.halfBuf[:0], lo, lo+prevSC.Size())
				r.ep.ChargeCompare(2 * len(prevFlat))
				ferr = core.Feasibility(prevFlat, r.halfBuf)
			}
			r.phiCheck(obs.PhiF, s, -1, ferr == nil)
			if ferr != nil {
				return nil, r.fail(core.ErrFeasibility, s, -1, "%v", ferr)
			}
		}
		// prevFlat from the previous stage has been consumed above, so
		// its buffer can be overwritten with this stage's sequence.
		r.prevBuf = view.flattenInto(r.prevBuf[:0], 0, sc.Size())
		prevFlat = r.prevBuf
		prevDig = view.rangeDigest(0, sc.Size())
		r.ep.ChargeKeyMove(len(prevFlat))
		r.opts.Obs.StageEnd(id, s, false, stageVT, int64(r.ep.Clock()))
		r.opts.Obs.PublishStage(obs.StageView{
			Node: id, Stage: s,
			SubcubeStart: sc.Start, SubcubeSize: sc.Size(),
			BlockLen: r.m, Assembled: prevFlat,
			Causal: r.opts.Forensic.LastID(),
		})
		prevSC = sc
	}

	// Faulty memory can also strike between the last stage and the
	// final verification round.
	if r.opts.CorruptMemory != nil {
		r.opts.CorruptMemory(n, mine)
	}

	// Final verification round.
	finalVT := int64(r.ep.Clock())
	r.opts.Obs.StageBegin(id, n, true, finalVT)
	scAll, err := topo.HomeSubcube(n, id)
	if err != nil {
		return nil, fmt.Errorf("blocksort: %w", err)
	}
	view := &r.view
	view.reset(scAll, r.m)
	view.set(id, mine)
	for j := n - 1; j >= 0; j-- {
		r.opts.Obs.RoundBegin(id, n, j, int64(r.ep.Clock()))
		if err := r.verifyExchange(view, n-1, j); err != nil {
			return nil, err
		}
		r.opts.Obs.RoundEnd(id, n, j, int64(r.ep.Clock()))
	}
	if !view.complete() && !r.opts.SkipChecks {
		r.phiCheck(obs.PhiC, n, -1, false)
		return nil, r.fail(core.ErrConsistency, n, -1,
			"final gather incomplete: mask %s", view.have.String())
	}
	if !r.opts.SkipChecks {
		r.ep.ChargeCompare(scAll.Size() * r.m)
		perr := ProgressBlocks(view.blocks, true)
		r.phiCheck(obs.PhiP, n, -1, perr == nil)
		if perr != nil {
			return nil, r.fail(core.ErrProgress, n, -1, "%v", perr)
		}
		// Final Φ_F: the verification round re-gathers the whole cube,
		// so the full range digest stands in for the permutation scan.
		r.ep.ChargeCompare(wire.DigestCompareCost)
		var ferr error
		if view.rangeDigest(0, scAll.Size()) == prevDig {
			r.opts.Obs.DigestCheck(true)
		} else {
			r.opts.Obs.DigestCheck(false)
			r.opts.Obs.DigestSlowScan()
			r.halfBuf = view.flattenInto(r.halfBuf[:0], 0, scAll.Size())
			r.ep.ChargeCompare(2 * len(prevFlat))
			ferr = core.Feasibility(prevFlat, r.halfBuf)
		}
		r.phiCheck(obs.PhiF, n, -1, ferr == nil)
		if ferr != nil {
			return nil, r.fail(core.ErrFeasibility, n, -1, "%v", ferr)
		}
	}
	r.opts.Obs.StageEnd(id, n, true, finalVT, int64(r.ep.Clock()))
	if r.opts.Obs != nil {
		// Flatten explicitly rather than reusing halfBuf, which is
		// stale when SkipChecks bypassed the final predicates.
		r.halfBuf = view.flattenInto(r.halfBuf[:0], 0, scAll.Size())
		r.opts.Obs.PublishStage(obs.StageView{
			Node: id, Stage: n, Final: true,
			SubcubeStart: scAll.Start, SubcubeSize: scAll.Size(),
			BlockLen: r.m, Assembled: r.halfBuf,
			Causal: r.opts.Forensic.LastID(),
		})
	}
	return mine, nil
}

func (r *ftRunner) exchange(view *blockView, mine []int64, s, j int) ([]int64, error) {
	id := r.ep.ID()
	topo := r.ep.Topology()
	partner, err := topo.Partner(id, j)
	if err != nil {
		return nil, fmt.Errorf("blocksort: %w", err)
	}
	ascending := topo.Ascending(s, id)

	if hypercube.Active(id, j) {
		m, ok, err := r.recvChecked(j, wire.KindFTExchange, s, j, partner)
		if err != nil {
			return nil, err
		}
		theirs := mine // degenerate fallback for SkipChecks nodes
		if ok {
			p, derr := wire.DecodeFTExchangeInto(&r.dec, m.Payload)
			switch {
			case derr != nil && r.opts.SkipChecks:
			case derr != nil:
				return nil, r.failFrom(core.ErrProtocol, s, j, partner, "undecodable exchange from %d: %v", partner, derr)
			case len(p.Keys) != r.m && !r.opts.SkipChecks:
				return nil, r.failFrom(core.ErrProtocol, s, j, partner, "expected %d keys from %d, got %d", r.m, partner, len(p.Keys))
			default:
				if len(p.Keys) == r.m {
					theirs = p.Keys
				}
				if err := r.mergeView(view, p.View, s, j, partner, false); err != nil {
					return nil, err
				}
				if !r.opts.SkipChecks && !bitonic.IsSorted(theirs, true) {
					return nil, r.failFrom(core.ErrProtocol, s, j, partner, "block from %d not sorted", partner)
				}
				// At the stage's first iteration the sender's block and
				// its own relayed view entry are both its stage-start
				// block; disagreement proves the sender lied about one
				// of them (Φ_C, with the liar named).
				if !r.opts.SkipChecks && j == s {
					if idx := partner - view.sc.Start; view.have.Has(idx) && !equalKeys(theirs, view.blocks[idx]) {
						return nil, r.failFrom(core.ErrConsistency, s, j, partner,
							"stage-start keys from %d disagree with its relayed view entry", partner)
					}
				}
			}
		}
		// Merge into the buffer not holding mine; theirs may still
		// alias the decode scratch, which MergeSplitInto only reads.
		var lo, hi []int64
		var compares int
		var merr error
		if r.opts.Compare != nil {
			stage := s
			lo, hi, compares, merr = bitonic.MergeSplitParallelFuncInto(r.nextBuf(), mine, theirs,
				func(a, b int64) bool { return r.opts.Compare(stage, a, b) }, r.opts.Parallelism)
		} else {
			lo, hi, compares, merr = bitonic.MergeSplitParallelInto(r.nextBuf(), mine, theirs, r.opts.Parallelism)
		}
		if merr != nil {
			return nil, fmt.Errorf("blocksort: %w", merr)
		}
		r.ep.ChargeCompare(compares)
		r.opts.Obs.MergeCompares(compares)
		if r.opts.Forensic != nil {
			// The kept half's digest fingerprints the merge-split verdict
			// in the flight recorder (wall-clock only; never charged).
			r.opts.Forensic.Merge(int32(s), int32(j), int64(compares),
				wire.DigestOf(lo), int64(r.ep.Clock()))
		}
		r.ep.ChargeKeyMove(2 * r.m)
		keep, give := lo, hi
		if !ascending {
			keep, give = hi, lo
		}
		r.keyStage = append(append(ensureCap(r.keyStage, 2*r.m), keep...), give...)
		v := view.wireViewInto(r.wvVals)
		r.wvVals = v.Vals
		if err := r.sendFT(j, wire.Message{
			Kind:  wire.KindFTExchange,
			Stage: int32(s),
			Iter:  int32(j),
		}, wire.FTExchangePayload{Keys: r.keyStage, View: v}); err != nil {
			return nil, err
		}
		return keep, nil
	}

	// Passive side.
	v := view.wireViewInto(r.wvVals)
	r.wvVals = v.Vals
	if err := r.sendFT(j, wire.Message{
		Kind:  wire.KindFTExchange,
		Stage: int32(s),
		Iter:  int32(j),
	}, wire.FTExchangePayload{Keys: mine, View: v}); err != nil {
		return nil, err
	}
	m, ok, err := r.recvChecked(j, wire.KindFTExchange, s, j, partner)
	if err != nil {
		return nil, err
	}
	if !ok {
		return mine, nil
	}
	p, derr := wire.DecodeFTExchangeInto(&r.dec, m.Payload)
	if derr != nil {
		if r.opts.SkipChecks {
			return mine, nil
		}
		return nil, r.failFrom(core.ErrProtocol, s, j, partner, "undecodable exchange from %d: %v", partner, derr)
	}
	if len(p.Keys) != 2*r.m {
		if r.opts.SkipChecks {
			return mine, nil
		}
		return nil, r.failFrom(core.ErrProtocol, s, j, partner, "expected %d keys from %d, got %d", 2*r.m, partner, len(p.Keys))
	}
	if err := r.mergeView(view, p.View, s, j, partner, true); err != nil {
		return nil, err
	}
	keep, give := p.Keys[:r.m], p.Keys[r.m:]
	if !r.opts.SkipChecks {
		if !bitonic.IsSorted(keep, true) || !bitonic.IsSorted(give, true) {
			return nil, r.failFrom(core.ErrProtocol, s, j, partner, "merge-split reply from %d has unsorted halves", partner)
		}
		if ascending && keep[r.m-1] > give[0] {
			return nil, r.failFrom(core.ErrProtocol, s, j, partner,
				"ascending merge-split reply from %d misordered (%d > %d)", partner, keep[r.m-1], give[0])
		}
		if !ascending && keep[0] < give[r.m-1] {
			return nil, r.failFrom(core.ErrProtocol, s, j, partner,
				"descending merge-split reply from %d misordered (%d < %d)", partner, keep[0], give[r.m-1])
		}
		// At the stage's first iteration both input blocks are known
		// (the partner's is its seeded view entry), so the whole
		// merge-split is verifiable.
		if j == s {
			if idx := partner - view.sc.Start; view.have.Has(idx) {
				r.msCheck = ensureCap(r.msCheck, 2*r.m)
				wantLo, wantHi, _, merr := bitonic.MergeSplitParallelInto(r.msCheck, mine, view.blocks[idx], r.opts.Parallelism)
				if merr == nil {
					wantKeep, wantGive := wantLo, wantHi
					if !ascending {
						wantKeep, wantGive = wantHi, wantLo
					}
					if !equalKeys(keep, wantKeep) || !equalKeys(give, wantGive) {
						return nil, r.failFrom(core.ErrProtocol, s, j, partner,
							"merge-split by %d returned wrong halves", partner)
					}
				}
			}
		}
	}
	// give aliases the decode scratch, which the next receive will
	// clobber; copy it into the buffer not holding mine.
	adopted := r.nextBuf()[:r.m]
	copy(adopted, give)
	return adopted, nil
}

func equalKeys(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *ftRunner) verifyExchange(view *blockView, s, j int) error {
	id := r.ep.ID()
	partner, err := r.ep.Topology().Partner(id, j)
	if err != nil {
		return fmt.Errorf("blocksort: %w", err)
	}
	stageLabel := s + 1

	if hypercube.Active(id, j) {
		m, ok, err := r.recvChecked(j, wire.KindVerify, stageLabel, j, partner)
		if err != nil {
			return err
		}
		if ok {
			p, derr := wire.DecodeVerifyInto(&r.dec, m.Payload)
			if derr != nil && !r.opts.SkipChecks {
				return r.failFrom(core.ErrProtocol, stageLabel, j, partner, "undecodable verify from %d: %v", partner, derr)
			}
			if derr == nil {
				if err := r.mergeView(view, p.View, s, j, partner, false); err != nil {
					return err
				}
			}
		}
		v := view.wireViewInto(r.wvVals)
		r.wvVals = v.Vals
		return r.sendVerify(j, wire.Message{
			Kind:  wire.KindVerify,
			Stage: int32(stageLabel),
			Iter:  int32(j),
		}, wire.VerifyPayload{View: v})
	}

	v := view.wireViewInto(r.wvVals)
	r.wvVals = v.Vals
	if err := r.sendVerify(j, wire.Message{
		Kind:  wire.KindVerify,
		Stage: int32(stageLabel),
		Iter:  int32(j),
	}, wire.VerifyPayload{View: v}); err != nil {
		return err
	}
	m, ok, err := r.recvChecked(j, wire.KindVerify, stageLabel, j, partner)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	p, derr := wire.DecodeVerifyInto(&r.dec, m.Payload)
	if derr != nil {
		if r.opts.SkipChecks {
			return nil
		}
		return r.failFrom(core.ErrProtocol, stageLabel, j, partner, "undecodable verify from %d: %v", partner, derr)
	}
	return r.mergeView(view, p.View, s, j, partner, true)
}

func (r *ftRunner) mergeView(view *blockView, rv wire.View, s, j, sender int, postExchange bool) error {
	// The sender's claimed aggregate digest fingerprints the merged view
	// in the flight recorder.
	r.opts.Forensic.Merge(int32(s), int32(j), int64(rv.Mask.Count()),
		rv.Dig, int64(r.ep.Clock()))
	if r.opts.SkipChecks {
		r.ep.ChargeCompare(rv.Mask.Count() * int(rv.BlockLen))
		view.mergeLenient(rv)
		return nil
	}
	var expected bitset.Set
	var err error
	if postExchange {
		expected, err = core.VectMaskInto(&r.expect, s, j, sender, view.sc)
	} else {
		expected, err = core.VectMaskBeforeInto(&r.expect, s, j, sender, view.sc)
	}
	if err != nil {
		return fmt.Errorf("blocksort: %w", err)
	}
	outcome, merr := view.mergeChecked(rv, expected)
	// Charge what the merge actually did: a hit folds one stored digest
	// per relayed slot plus the aggregate comparison; a miss pays the
	// key-for-key walk on top; a merge that failed validation before
	// the digest pass charges the legacy walk cost.
	switch outcome {
	case core.DigestHit:
		r.ep.ChargeCompare(rv.Mask.Count() + wire.DigestCompareCost)
		r.opts.Obs.DigestCheck(true)
	case core.DigestMiss:
		r.ep.ChargeCompare(rv.Mask.Count() + wire.DigestCompareCost + rv.Mask.Count()*int(rv.BlockLen))
		r.opts.Obs.DigestCheck(false)
		r.opts.Obs.DigestSlowScan()
	default:
		r.ep.ChargeCompare(rv.Mask.Count() * int(rv.BlockLen))
	}
	r.phiCheck(obs.PhiC, s, j, merr == nil)
	if merr != nil {
		return r.failFrom(core.ErrConsistency, s, j, sender, "view from %d: %v", sender, merr)
	}
	return nil
}

func (r *ftRunner) recvChecked(bit int, kind wire.Kind, stage, iter, partner int) (wire.Message, bool, error) {
	m, err := r.ep.Recv(bit)
	if err != nil {
		if r.opts.SkipChecks {
			return wire.Message{}, false, nil
		}
		if errors.Is(err, transport.ErrAbsent) {
			return wire.Message{}, false, r.failAbsent(core.ErrProtocol, stage, iter, partner, "receive from %d: %v", partner, err)
		}
		return wire.Message{}, false, r.failFrom(core.ErrProtocol, stage, iter, partner, "receive from %d: %v", partner, err)
	}
	if m.Kind != kind || int(m.Stage) != stage || int(m.Iter) != iter ||
		int(m.From) != partner || int(m.To) != r.ep.ID() {
		if r.opts.SkipChecks {
			return wire.Message{}, false, nil
		}
		return wire.Message{}, false, r.failFrom(core.ErrProtocol, stage, iter, partner,
			"unexpected header kind=%v stage=%d iter=%d from=%d (want kind=%v stage=%d iter=%d from=%d)",
			m.Kind, m.Stage, m.Iter, m.From, kind, stage, iter, partner)
	}
	return m, true, nil
}

// sendFT and sendVerify encode into the runner's scratch buffer and
// transmit. They are typed (rather than one method taking `any`)
// because interface boxing of a payload struct would allocate on every
// send.

func (r *ftRunner) sendFT(bit int, m wire.Message, p wire.FTExchangePayload) error {
	buf, err := wire.AppendFTExchange(r.enc[:0], p)
	if err != nil {
		return fmt.Errorf("blocksort: encode: %w", err)
	}
	r.enc = buf
	m.Payload = buf
	return r.transmit(bit, m)
}

func (r *ftRunner) sendVerify(bit int, m wire.Message, p wire.VerifyPayload) error {
	buf, err := wire.AppendVerify(r.enc[:0], p)
	if err != nil {
		return fmt.Errorf("blocksort: encode: %w", err)
	}
	r.enc = buf
	m.Payload = buf
	return r.transmit(bit, m)
}

// transmit applies the Byzantine tamper hook if any and sends. The
// transport copies the payload into its own buffer before returning,
// so the runner's encode scratch is immediately reusable. The tamper
// path lives in its own method: Tamper takes the message's address,
// which would otherwise force every honest send's message to the heap.
func (r *ftRunner) transmit(bit int, m wire.Message) error {
	if r.opts.Tamper != nil {
		return r.transmitTampered(bit, m)
	}
	if err := r.ep.Send(bit, m); err != nil {
		return fmt.Errorf("blocksort: send: %w", err)
	}
	return nil
}

func (r *ftRunner) transmitTampered(bit int, m wire.Message) error {
	partner, perr := r.ep.Topology().Partner(r.ep.ID(), bit)
	if perr != nil {
		return fmt.Errorf("blocksort: %w", perr)
	}
	m.From = int32(r.ep.ID())
	m.To = int32(partner)
	out := r.opts.Tamper(&m)
	if out == nil {
		return nil
	}
	if err := r.ep.Send(bit, *out); err != nil {
		return fmt.Errorf("blocksort: send: %w", err)
	}
	return nil
}
