package costmodel

import (
	"math"
	"strings"
	"testing"
)

// flatTable prices every dim at the given cost.
func flatTable(t float64) func(int) (float64, error) {
	return func(int) (float64, error) { return t, nil }
}

func TestFaultRegimeArrivalProb(t *testing.T) {
	r := FaultRegime{MTTF: 1000}
	if p := r.ArrivalProb(4, 250); math.Abs(p-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("ArrivalProb(4,250) = %v, want 1-e^-1", p)
	}
	if p := (FaultRegime{}).ArrivalProb(4, 250); p != 0 {
		t.Errorf("fault-free regime arrival prob = %v", p)
	}
	if p := r.ArrivalProb(0, 250); p != 0 {
		t.Errorf("zero-node arrival prob = %v", p)
	}
	if p := r.ArrivalProb(1<<20, 1e12); p > 1 || p < 0.999 {
		t.Errorf("saturated arrival prob = %v", p)
	}
}

// A fault-free regime must reduce the model to the base cost exactly:
// one attempt, no waste, no backoff, zero overhead.
func TestRecoveryModelFaultFree(t *testing.T) {
	rm := &RecoveryModel{Name: "ff", AttemptTicks: flatTable(500)}
	bd, err := rm.Breakdown(3)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ExpectedTicks != 500 || bd.ExpectedAttempts != 1 || bd.ExpectedWastedTicks != 0 ||
		bd.ExpectedBackoffNanos != 0 || bd.Overhead != 0 || bd.PVerified != 1 || bd.PExhausted != 0 {
		t.Errorf("fault-free breakdown = %+v", bd)
	}
	total, err := rm.Total(8)
	if err != nil || total != 500 {
		t.Errorf("Total(8) = %v, %v", total, err)
	}
}

// Hand-computed two-attempt recursion: dim 2, T=100 at every dim,
// arrival prob p=0.2 per attempt (MTTF chosen so n·T/MTTF solves it),
// every arrival persistent and detected, waste fraction 0.5,
// MaxAttempts 2, PersistStreak 2, no spares.
//
// Attempt 0: succeeds w.p. 0.8 (cost 100); fails w.p. 0.2 (waste 50),
// opening a persistent streak. Attempt 1: the persistent fault is
// detected for certain (waste 50), the streak reaches 2 and the cube
// shrinks — but the budget is spent, so that mass exhausts.
// E[total] = 0.8·100 + 0.2·(50+50) = 100; E[attempts] = 1.2;
// P[exhausted] = 0.2; E[shrinks] = 0.2.
func TestRecoveryModelHandComputed(t *testing.T) {
	p := 0.2
	mttf := -4.0 * 100 / math.Log(1-p) // ArrivalProb(4,100) == p
	rm := &RecoveryModel{
		Name:         "hand",
		AttemptTicks: flatTable(100),
		Regime:       FaultRegime{MTTF: mttf, PersistentFrac: 1},
		Policy:       PolicyParams{MaxAttempts: 2, PersistStreak: 2, MinDim: 1},
		Calib:        Calibration{DetectFrac: 1, WasteFrac: 0.5},
	}
	bd, err := rm.Breakdown(2)
	if err != nil {
		t.Fatal(err)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("ExpectedTicks", bd.ExpectedTicks, 100)
	approx("ExpectedAttempts", bd.ExpectedAttempts, 1.2)
	approx("ExpectedRetries", bd.ExpectedRetries, 0.2)
	approx("ExpectedWastedTicks", bd.ExpectedWastedTicks, 20)
	approx("PVerified", bd.PVerified, 0.8)
	approx("PExhausted", bd.PExhausted, 0.2)
	approx("ExpectedQuarantines", bd.ExpectedQuarantines, 0.2)
	approx("ExpectedShrinks", bd.ExpectedShrinks, 0.2)
	approx("ExpectedSubstitutions", bd.ExpectedSubstitutions, 0)
	approx("Overhead", bd.Overhead, 0)
	// The one retry waits the expected first backoff: 10ms nominal,
	// equal jitter 0.5 → 7.5ms expected, weighted by the 0.2 mass.
	approx("ExpectedBackoffNanos", bd.ExpectedBackoffNanos, 0.2*7.5e6)
}

// With spares pooled, quarantine substitutes instead of shrinking.
func TestRecoveryModelSparesSubstitute(t *testing.T) {
	rm := &RecoveryModel{
		Name:         "spared",
		AttemptTicks: flatTable(100),
		Regime:       FaultRegime{MTTF: 100, PersistentFrac: 1},
		Policy:       PolicyParams{MaxAttempts: 6, PersistStreak: 2, MinDim: 1, Spares: 2},
		Calib:        DefaultCalibration(),
	}
	bd, err := rm.Breakdown(2)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ExpectedSubstitutions <= 0 {
		t.Errorf("no substitutions with a pooled spare: %+v", bd)
	}
	if bd.ExpectedQuarantines < bd.ExpectedSubstitutions {
		t.Errorf("quarantines %v < substitutions %v", bd.ExpectedQuarantines, bd.ExpectedSubstitutions)
	}
	// The same regime without spares must shrink instead.
	rm.Policy.Spares = 0
	bd0, err := rm.Breakdown(2)
	if err != nil {
		t.Fatal(err)
	}
	if bd0.ExpectedShrinks <= bd.ExpectedShrinks {
		t.Errorf("shrinks with empty pool %v <= with spares %v", bd0.ExpectedShrinks, bd.ExpectedShrinks)
	}
}

// Overhead must grow monotonically as the machine gets less reliable.
func TestRecoveryOverheadCurveMonotone(t *testing.T) {
	rm := NewRecoveryModel("curve", PaperSFT(),
		FaultRegime{PersistentFrac: 0.5}, DefaultPolicyParams(), DefaultCalibration())
	pts, err := rm.OverheadCurve(5, []float64{1e8, 1e6, 1e5, 1e4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Overhead <= pts[i-1].Overhead {
			t.Errorf("overhead not increasing with fault rate: %+v", pts)
		}
	}
	if pts[0].Overhead < 0 {
		t.Errorf("negative overhead at near-reliable MTTF: %+v", pts[0])
	}
	if pts[0].ArrivalsPerAttempt <= 0 {
		t.Errorf("arrivals per attempt not populated: %+v", pts[0])
	}
}

// RecoveryModel is a Coster: it must ride the shared projection and
// crossover machinery next to formula models.
func TestRecoveryModelProjects(t *testing.T) {
	rm := NewRecoveryModel("S_FT+repair", PaperSFT(),
		FaultRegime{MTTF: 1e7, PersistentFrac: 0.5}, DefaultPolicyParams(), DefaultCalibration())
	rows, err := Project([]Coster{PaperSFT(), rm, PaperSequential()}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Totals[1] >= r.Totals[0]) {
			t.Errorf("N=%d: repair-aware total %v below fault-free %v", r.N, r.Totals[1], r.Totals[0])
		}
	}
	x, err := Crossover(rm, PaperSequential(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	xff, err := Crossover(PaperSFT(), PaperSequential(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if x == 0 {
		t.Fatal("repair-aware S_FT never beats the host sort at this MTTF")
	}
	if x < xff {
		t.Errorf("repair cost moved the crossover earlier: %d < %d", x, xff)
	}
	if !strings.Contains(rm.CostName(), "repair") {
		t.Errorf("CostName = %q", rm.CostName())
	}
}

func TestRecoveryModelErrors(t *testing.T) {
	var nilModel *RecoveryModel
	if _, err := nilModel.Breakdown(2); err == nil {
		t.Error("nil model: want error")
	}
	rm := &RecoveryModel{Name: "x", AttemptTicks: flatTable(100)}
	if _, err := rm.Breakdown(0); err == nil {
		t.Error("dim 0: want error")
	}
	if _, err := rm.Total(12); err == nil {
		t.Error("non-power-of-two N: want error")
	}
	if _, err := rm.Total(1); err == nil {
		t.Error("N=1: want error")
	}
	rm.AttemptTicks = flatTable(0)
	if _, err := rm.Breakdown(2); err == nil {
		t.Error("non-positive attempt cost: want error")
	}
	rm.AttemptTicks = AttemptTable(map[int]float64{2: 100})
	if _, err := rm.Breakdown(3); err == nil {
		t.Error("missing baseline dim: want error")
	}
	bad := Model{Name: "bad", Comm: Formula{{Coef: 1, Basis: Basis(99)}}}
	if _, err := NewRecoveryModel("b", bad, FaultRegime{}, PolicyParams{}, Calibration{}).Breakdown(2); err == nil {
		t.Error("base Eval failure: want error")
	}
}
