package costmodel

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestBasisEval(t *testing.T) {
	tests := []struct {
		b    Basis
		n    float64
		want float64
	}{
		{BasisOne, 64, 1},
		{BasisLgN, 64, 6},
		{BasisLg2N, 64, 36},
		{BasisN, 64, 64},
		{BasisNLgN, 64, 384},
	}
	for _, tc := range tests {
		got, err := tc.b.Eval(tc.n)
		if err != nil {
			t.Fatalf("%v: %v", tc.b, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%v.Eval(%v) = %v, want %v", tc.b, tc.n, got, tc.want)
		}
	}
	if _, err := BasisN.Eval(0); err == nil {
		t.Error("Eval at N=0: want error")
	}
	if _, err := Basis(99).Eval(4); err == nil {
		t.Error("unknown basis: want error")
	}
	if Basis(99).String() != "basis(99)" {
		t.Error("unknown basis name")
	}
}

func TestPaperModelsMatchTable(t *testing.T) {
	sft := PaperSFT()
	// At N=32 (lg=5): comm = 8·25 + 0.05·160 = 208, comp = 368.
	comm, err := sft.Comm.Eval(32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comm-208) > 1e-9 {
		t.Errorf("SFT comm(32) = %v, want 208", comm)
	}
	comp, err := sft.Comp.Eval(32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comp-368) > 1e-9 {
		t.Errorf("SFT comp(32) = %v, want 368", comp)
	}
	seq := PaperSequential()
	// comm = 14·32 = 448, comp = 0.45·160 = 72.
	comm, _ = seq.Comm.Eval(32)
	comp, _ = seq.Comp.Eval(32)
	if math.Abs(comm-448) > 1e-9 || math.Abs(comp-72) > 1e-9 {
		t.Errorf("Seq(32) = %v/%v, want 448/72", comm, comp)
	}
}

func TestFormulaString(t *testing.T) {
	f := PaperSFT().Comm
	s := f.String()
	if !strings.Contains(s, "lg²N") || !strings.Contains(s, "N·lgN") {
		t.Errorf("String = %q", s)
	}
	if (Formula{}).String() != "0" {
		t.Error("empty formula String")
	}
}

// Fitted formulas can carry negative coefficients; they must render
// with a subtraction joiner, never as "+ -0.3·N".
func TestFormulaStringNegativeCoefficients(t *testing.T) {
	tests := []struct {
		f    Formula
		want string
	}{
		{Formula{{Coef: 8, Basis: BasisLg2N}, {Coef: -0.3, Basis: BasisN}}, "8·lg²N − 0.3·N"},
		{Formula{{Coef: -2, Basis: BasisLgN}}, "−2·lgN"},
		{Formula{{Coef: -1.5, Basis: BasisOne}, {Coef: 4, Basis: BasisN}}, "−1.5·1 + 4·N"},
		{Formula{{Coef: -1, Basis: BasisLgN}, {Coef: -2, Basis: BasisN}}, "−1·lgN − 2·N"},
	}
	for _, tc := range tests {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
		if got := tc.f.String(); strings.Contains(got, "+ -") || strings.Contains(got, "+ −") {
			t.Errorf("String %q still renders additive negative terms", got)
		}
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := PaperSFT()
	var pts []Point
	for d := 2; d <= 10; d++ {
		n := 1 << uint(d)
		comm, err := truth.Comm.Eval(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		comp, err := truth.Comp.Eval(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, Point{N: n, Comm: comm, Comp: comp})
	}
	m, err := Fit("recovered", pts, []Basis{BasisLg2N, BasisNLgN}, []Basis{BasisN})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Comm[0].Coef-8) > 1e-6 || math.Abs(m.Comm[1].Coef-0.05) > 1e-9 {
		t.Errorf("recovered comm = %v", m.Comm)
	}
	if math.Abs(m.Comp[0].Coef-11.5) > 1e-6 {
		t.Errorf("recovered comp = %v", m.Comp)
	}
	commR2, compR2, totalR2, err := FitQuality(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if commR2 < 0.9999 || compR2 < 0.9999 || totalR2 < 0.9999 {
		t.Errorf("R² = %v/%v/%v", commR2, compR2, totalR2)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit("x", nil, []Basis{BasisN}, []Basis{BasisN}); err == nil {
		t.Error("no points: want error")
	}
	pts := []Point{{N: 4, Comm: 1, Comp: 1}, {N: 8, Comm: 2, Comp: 2}}
	if _, err := Fit("x", pts, nil, []Basis{BasisN}); err == nil {
		t.Error("no comm bases: want error")
	}
}

// An underdetermined point set (fewer observations than bases) must
// surface the solver's singularity error, not silently produce junk
// coefficients.
func TestFitUnderdetermined(t *testing.T) {
	pts := []Point{{N: 8, Comm: 5, Comp: 3}}
	_, err := Fit("under", pts, []Basis{BasisLg2N, BasisN}, []Basis{BasisN})
	if !errors.Is(err, stats.ErrSingular) {
		t.Errorf("underdetermined fit: err = %v, want ErrSingular", err)
	}
	// Same count of points as bases but a rank-deficient design matrix
	// (duplicate N values) is singular too.
	dup := []Point{{N: 8, Comm: 5, Comp: 3}, {N: 8, Comm: 5, Comp: 3}}
	_, err = Fit("dup", dup, []Basis{BasisLg2N, BasisN}, []Basis{BasisN})
	if !errors.Is(err, stats.ErrSingular) {
		t.Errorf("rank-deficient fit: err = %v, want ErrSingular", err)
	}
}

func TestFitSeriesValidation(t *testing.T) {
	if _, err := FitSeries([]int{4, 8}, []float64{1}, []Basis{BasisN}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := FitSeries([]int{4}, []float64{1}, nil); err == nil {
		t.Error("no bases: want error")
	}
	f, err := FitSeries([]int{2, 4, 8}, []float64{6, 12, 24}, []Basis{BasisN})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[0].Coef-3) > 1e-9 {
		t.Errorf("fitted coef = %v, want 3", f[0].Coef)
	}
}

// FitQuality's three returns pinned against hand-computed R² values:
// comm obs {2,4,10} vs pred {2,4,8} → 23/26; comp obs {3,4,8} vs pred
// {2,4,8} → 13/14; total obs {5,8,18} vs pred {4,8,16} → 1 − 45/834.
func TestFitQualityPinned(t *testing.T) {
	m := Model{
		Name: "unit",
		Comm: Formula{{Coef: 1, Basis: BasisN}},
		Comp: Formula{{Coef: 1, Basis: BasisN}},
	}
	pts := []Point{
		{N: 2, Comm: 2, Comp: 3},
		{N: 4, Comm: 4, Comp: 4},
		{N: 8, Comm: 10, Comp: 8},
	}
	commR2, compR2, totalR2, err := FitQuality(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if want := 23.0 / 26.0; math.Abs(commR2-want) > 1e-12 {
		t.Errorf("comm R² = %v, want %v", commR2, want)
	}
	if want := 13.0 / 14.0; math.Abs(compR2-want) > 1e-12 {
		t.Errorf("comp R² = %v, want %v", compR2, want)
	}
	if want := 1.0 - 45.0/834.0; math.Abs(totalR2-want) > 1e-12 {
		t.Errorf("total R² = %v, want %v", totalR2, want)
	}
	// Total R² is its own series' fit, not a blend of the component
	// scores: it must differ from both here.
	if totalR2 == commR2 || totalR2 == compR2 {
		t.Errorf("total R² %v suspiciously equals a component score", totalR2)
	}
}

// The paper's own models must cross: the host wins at small N, S_FT
// wins for every larger cube (Figure 7's message).
func TestPaperCrossover(t *testing.T) {
	x, err := Crossover(PaperSFT(), PaperSequential(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if x == 0 {
		t.Fatal("S_FT never beats sequential in the paper's own models")
	}
	if x > 256 {
		t.Errorf("crossover at N=%d, expected well below 256", x)
	}
	// Below the crossover the host must win (small cubes).
	sft, _ := PaperSFT().Total(4)
	seq, _ := PaperSequential().Total(4)
	if sft < seq {
		t.Errorf("at N=4: S_FT %v beats sequential %v; paper says host wins small", sft, seq)
	}
}

// In the limit the paper reports reliable parallel sorting costs ~11%
// of host sorting: the N·lgN coefficients 0.05/0.45.
func TestPaperLimitRatio(t *testing.T) {
	r, err := AsymptoticRatio(PaperSFT(), PaperSequential())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1.0/9.0) > 1e-9 {
		t.Errorf("asymptotic ratio = %v, paper says ~0.11", r)
	}
	// At finite N the ratio is still descending toward the limit.
	r20, err := LimitRatio(PaperSFT(), PaperSequential(), float64(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	r10, err := LimitRatio(PaperSFT(), PaperSequential(), float64(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	if !(r20 < r10) {
		t.Errorf("ratio not descending: N=2^10 %v vs N=2^20 %v", r10, r20)
	}
}

func TestAsymptoticRatioEdges(t *testing.T) {
	slow := Model{Name: "slow", Comp: Formula{{Coef: 3, Basis: BasisLgN}}}
	fast := Model{Name: "fast", Comp: Formula{{Coef: 2, Basis: BasisN}}}
	r, err := AsymptoticRatio(slow, fast)
	if err != nil || r != 0 {
		t.Errorf("slow/fast = %v, %v", r, err)
	}
	if _, err := AsymptoticRatio(fast, slow); err == nil {
		t.Error("diverging ratio: want error")
	}
	if _, err := AsymptoticRatio(fast, Model{Name: "empty"}); err == nil {
		t.Error("empty denominator model: want error")
	}
}

func TestProject(t *testing.T) {
	rows, err := Project([]Coster{PaperSFT(), PaperSequential()}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].N != 4 || rows[3].N != 32 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if len(r.Totals) != 2 || r.Totals[0] <= 0 || r.Totals[1] <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	if _, err := Project(nil, 0, 5); err == nil {
		t.Error("minDim 0: want error")
	}
	if _, err := Project(nil, 5, 2); err == nil {
		t.Error("inverted range: want error")
	}
}

// Project, Crossover and LimitRatio must propagate Eval failures from
// malformed formulas and reject bad dimension ranges.
func TestProjectionErrorPaths(t *testing.T) {
	bad := Model{Name: "bad", Comm: Formula{{Coef: 1, Basis: Basis(99)}}}
	good := PaperSFT()
	if _, err := Project([]Coster{bad}, 2, 3); err == nil {
		t.Error("Project with unknown basis: want error")
	}
	if _, err := Crossover(bad, good, 2, 3); err == nil {
		t.Error("Crossover with unknown basis: want error")
	}
	if _, err := Crossover(good, good, 0, 3); err == nil {
		t.Error("Crossover minDim 0: want error")
	}
	if _, err := Crossover(good, good, 4, 2); err == nil {
		t.Error("Crossover inverted range: want error")
	}
	if _, err := LimitRatio(bad, good, 16); err == nil {
		t.Error("LimitRatio bad numerator: want error")
	}
	if _, err := LimitRatio(good, bad, 16); err == nil {
		t.Error("LimitRatio bad denominator: want error")
	}
	if _, err := LimitRatio(good, PaperSequential(), 0.5); err == nil {
		t.Error("LimitRatio at N<1: want error")
	}
}

func TestScaleByBlock(t *testing.T) {
	m := ScaleByBlock(PaperSFT(), 64)
	base, _ := PaperSFT().Total(32)
	scaled, _ := m.Total(32)
	if math.Abs(scaled-64*base) > 1e-6 {
		t.Errorf("scaled total = %v, want %v", scaled, 64*base)
	}
	if !strings.Contains(m.Name, "m=64") {
		t.Errorf("name = %q", m.Name)
	}
}

// Figure 8's message: scaling by m shifts the crossover to smaller N
// or keeps it — block sorting makes fault tolerance pay off sooner in
// absolute problem size. With both models scaled by m the crossover N
// is unchanged; the win is that total work per node grows so the
// constant-dominated region shrinks relative to problem size.
func TestBlockScalingPreservesCrossover(t *testing.T) {
	x1, err := Crossover(PaperSFT(), PaperSequential(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Crossover(ScaleByBlock(PaperSFT(), 1024), ScaleByBlock(PaperSequential(), 1024), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Errorf("crossovers differ: %d vs %d", x1, x2)
	}
}

func TestLimitRatioZeroDenominator(t *testing.T) {
	zero := Model{Name: "zero"}
	if _, err := LimitRatio(PaperSFT(), zero, 16); err == nil {
		t.Error("zero denominator: want error")
	}
}
