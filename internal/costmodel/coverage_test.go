package costmodel

import (
	"math"
	"testing"
)

func TestCoverageCalibrationValidate(t *testing.T) {
	good := CoverageCalibration{Classes: []ClassDetection{
		{Class: "message", Share: 0.5, DetectFrac: 1},
		{Class: "memory", Share: 0.5, DetectFrac: 0.9},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	bads := map[string]CoverageCalibration{
		"empty": {},
		"negative share": {Classes: []ClassDetection{
			{Class: "message", Share: -1, DetectFrac: 1}}},
		"fraction above one": {Classes: []ClassDetection{
			{Class: "message", Share: 1, DetectFrac: 1.5}}},
		"zero total share": {Classes: []ClassDetection{
			{Class: "message", Share: 0, DetectFrac: 1}}},
	}
	for name, bad := range bads {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := bad.EffectiveDetectFrac(); err == nil {
			t.Errorf("%s: effective fraction computed", name)
		}
	}
}

func TestEffectiveDetectFrac(t *testing.T) {
	cov := CoverageCalibration{Classes: []ClassDetection{
		{Class: "message", Share: 3, DetectFrac: 1},
		{Class: "comparison", Share: 1, DetectFrac: 0.6},
	}}
	eff, err := cov.EffectiveDetectFrac()
	if err != nil {
		t.Fatal(err)
	}
	// (3·1 + 1·0.6)/4 = 0.9; shares need not be normalized.
	if math.Abs(eff-0.9) > 1e-12 {
		t.Fatalf("effective fraction = %v, want 0.9", eff)
	}
}

// TestWithCoverageCalibration is the coverage-calibrated regime's
// calibration test: per-class measured fractions fold into the model's
// DetectFrac, and the folded model prices a supervision differently
// from the idealized one exactly when coverage is imperfect.
func TestWithCoverageCalibration(t *testing.T) {
	base := NewRecoveryModel(
		"ideal",
		PaperSFT(),
		FaultRegime{MTTF: 1e6, PersistentFrac: 0.5},
		DefaultPolicyParams(),
		DefaultCalibration(),
	)

	perfect := CoverageCalibration{Classes: []ClassDetection{
		{Class: "message", Share: 0.5, DetectFrac: 1},
		{Class: "comparison", Share: 0.25, DetectFrac: 1},
		{Class: "memory", Share: 0.25, DetectFrac: 1},
	}}
	same, err := base.WithCoverage("", perfect)
	if err != nil {
		t.Fatal(err)
	}
	if same.Calib.DetectFrac != 1 {
		t.Fatalf("perfect coverage folded to %v", same.Calib.DetectFrac)
	}
	if same.Name != base.Name {
		t.Fatalf("empty name overrode %q with %q", base.Name, same.Name)
	}
	bdBase, err := base.Breakdown(8)
	if err != nil {
		t.Fatal(err)
	}
	bdSame, err := same.Breakdown(8)
	if err != nil {
		t.Fatal(err)
	}
	if bdSame.ExpectedTicks != bdBase.ExpectedTicks {
		t.Fatalf("perfect coverage moved E[ticks]: %v vs %v", bdSame.ExpectedTicks, bdBase.ExpectedTicks)
	}

	leaky := CoverageCalibration{Classes: []ClassDetection{
		{Class: "message", Share: 0.5, DetectFrac: 1},
		{Class: "comparison", Share: 0.25, DetectFrac: 0.8},
		{Class: "memory", Share: 0.25, DetectFrac: 0.6},
	}}
	cov, err := base.WithCoverage("leaky", leaky)
	if err != nil {
		t.Fatal(err)
	}
	wantEff := 0.5*1 + 0.25*0.8 + 0.25*0.6
	if math.Abs(cov.Calib.DetectFrac-wantEff) > 1e-12 {
		t.Fatalf("folded DetectFrac = %v, want %v", cov.Calib.DetectFrac, wantEff)
	}
	if cov.Name != "leaky" {
		t.Fatalf("name = %q", cov.Name)
	}
	// Everything but detection carries over.
	if cov.Calib.WasteFrac != base.Calib.WasteFrac || cov.Regime != base.Regime {
		t.Fatal("coverage fold changed unrelated fields")
	}
	// The base model is untouched (WithCoverage returns a copy).
	if base.Calib.DetectFrac != 1 {
		t.Fatalf("base model mutated: DetectFrac %v", base.Calib.DetectFrac)
	}
	bdCov, err := cov.Breakdown(8)
	if err != nil {
		t.Fatal(err)
	}
	// Undetected manifestations complete verified in the model, so
	// leaky coverage must cost fewer retries and fewer expected ticks.
	if bdCov.ExpectedTicks >= bdBase.ExpectedTicks {
		t.Fatalf("leaky coverage E[ticks] %v >= ideal %v", bdCov.ExpectedTicks, bdBase.ExpectedTicks)
	}
	if bdCov.ExpectedRetries >= bdBase.ExpectedRetries {
		t.Fatalf("leaky coverage E[retries] %v >= ideal %v", bdCov.ExpectedRetries, bdBase.ExpectedRetries)
	}

	if _, err := (*RecoveryModel)(nil).WithCoverage("x", perfect); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := base.WithCoverage("x", CoverageCalibration{}); err == nil {
		t.Error("empty profile accepted")
	}
}
