// Recovery-aware cost model: the extension of the paper's Section 5
// overhead analysis from detection to repair. The paper prices S_FT's
// fault-free overhead (comm = 8·lg²N + 0.05·N·lgN, comp = 11.5·N) and
// stops at the fail-stop; this file prices what happens next, in the
// MTTF-driven framing of Gray's failure-rate analyses: fault arrivals
// at a rate set by per-node MTTF and the attempt's virtual-time
// length, detection with an empirically calibrated coverage fraction,
// retries under capped exponential backoff, persistent-suspect
// quarantine after a streak of same-suspect accusations, and repair by
// spare substitution (full dimension preserved) or subcube shrink.
//
// A RecoveryModel is a forward probability-mass recursion over the
// supervisor's exact state machine (internal/recovery.Supervise) — not
// a closed-form formula — so a Breakdown's expectations can be
// validated against measured seeded sweeps attempt for attempt. The
// model implements Coster, so the Figure 7 question "when does
// reliable parallel sorting win" is answerable with repair cost
// included via the same Project/Crossover machinery as the fault-free
// regime.
package costmodel

import (
	"fmt"
	"math"
)

// FaultRegime is the fault environment a supervision runs in: a
// per-node MTTF in virtual ticks, and the transient/persistent split
// of arrivals. Arrivals are memoryless, so the probability that a
// fault arrives somewhere in an n-node cube during an attempt of T
// ticks is 1 − exp(−n·T/MTTF) — the exponential-arrival form the
// MTTF literature uses.
type FaultRegime struct {
	// MTTF is the per-node mean virtual time between fault arrivals,
	// in vticks. Zero or negative means a fault-free machine.
	MTTF float64
	// PersistentFrac is the probability that an arrival is a
	// persistent (hard) fault that manifests on every subsequent
	// attempt until its site is quarantined; the rest are transient
	// episodes that vanish after one attempt.
	PersistentFrac float64
}

// ArrivalProb returns the probability that at least one fault arrives
// in an n-node cube during an attempt of ticks virtual time.
func (r FaultRegime) ArrivalProb(nodes int, ticks float64) float64 {
	if r.MTTF <= 0 || nodes <= 0 || ticks <= 0 {
		return 0
	}
	return 1 - math.Exp(-float64(nodes)*ticks/r.MTTF)
}

// PolicyParams mirrors the recovery supervisor's policy knobs in plain
// numbers, so the model and the supervisor agree on the state machine
// without this package importing the recovery runtime.
type PolicyParams struct {
	// MaxAttempts is the attempt budget (supervisor default 4).
	MaxAttempts int
	// PersistStreak is how many consecutive same-suspect accusations
	// judge a fault persistent (supervisor default 2).
	PersistStreak int
	// MinDim floors the quarantine shrink (supervisor default 1).
	MinDim int
	// Spares is the spare-pool size; substitutions preserve the cube
	// dimension while the pool lasts.
	Spares int
	// BackoffBaseNanos, BackoffMaxNanos and BackoffJitter shape the
	// capped exponential between-attempt waits (supervisor defaults
	// 10ms, 2s, 0.5 equal jitter).
	BackoffBaseNanos float64
	BackoffMaxNanos  float64
	BackoffJitter    float64
}

// DefaultPolicyParams returns the supervisor's default policy in model
// form.
func DefaultPolicyParams() PolicyParams {
	return PolicyParams{
		MaxAttempts:      4,
		PersistStreak:    2,
		MinDim:           1,
		Spares:           0,
		BackoffBaseNanos: 10e6,
		BackoffMaxNanos:  2e9,
		BackoffJitter:    0.5,
	}
}

func (p PolicyParams) withDefaults() PolicyParams {
	d := DefaultPolicyParams()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.PersistStreak <= 0 {
		p.PersistStreak = d.PersistStreak
	}
	if p.MinDim <= 0 {
		p.MinDim = d.MinDim
	}
	if p.Spares < 0 {
		p.Spares = 0
	}
	if p.BackoffBaseNanos <= 0 {
		p.BackoffBaseNanos = d.BackoffBaseNanos
	}
	if p.BackoffMaxNanos <= 0 {
		p.BackoffMaxNanos = d.BackoffMaxNanos
	}
	if p.BackoffJitter == 0 {
		p.BackoffJitter = d.BackoffJitter
	}
	if p.BackoffJitter < 0 {
		p.BackoffJitter = 0
	}
	if p.BackoffJitter > 1 {
		p.BackoffJitter = 1
	}
	return p
}

// expectedBackoff returns the expected wait before retry number retry
// (1-based): the capped doubled nominal scaled by the equal-jitter
// expectation nominal·(1 − Jitter/2).
func (p PolicyParams) expectedBackoff(retry int) float64 {
	nominal := p.BackoffBaseNanos
	for i := 1; i < retry && nominal < p.BackoffMaxNanos; i++ {
		nominal *= 2
	}
	if nominal > p.BackoffMaxNanos {
		nominal = p.BackoffMaxNanos
	}
	return nominal * (1 - p.BackoffJitter/2)
}

// Calibration holds the empirically fitted per-attempt overhead terms
// that close the gap between the idealized state machine and the
// measured system (experiments.CalibrateRecovery produces them from
// seeded simnet sweeps).
type Calibration struct {
	// DetectFrac is the probability that a manifested fault actually
	// fail-stops the attempt. Coverage is high but not 1: a Byzantine
	// act can be harmless on a given workload (the fault-injection
	// campaign's CorrectDespiteFault verdict), in which case the
	// attempt completes verified.
	DetectFrac float64
	// WasteFrac is a failed attempt's cost as a fraction of the
	// fault-free attempt cost at the same geometry: detection can
	// fail-stop the run before the full schedule completes.
	WasteFrac float64
}

// DefaultCalibration is the uncalibrated idealization: every
// manifested fault is detected and a failed attempt costs a full
// attempt.
func DefaultCalibration() Calibration {
	return Calibration{DetectFrac: 1, WasteFrac: 1}
}

func (c Calibration) withDefaults() Calibration {
	if c.DetectFrac <= 0 || c.DetectFrac > 1 {
		c.DetectFrac = 1
	}
	if c.WasteFrac <= 0 {
		c.WasteFrac = 1
	}
	return c
}

// RecoveryModel composes a fault-free cost model with a FaultRegime,
// the supervisor's policy, and calibrated overheads, yielding expected
// end-to-end cost under faults. It implements Coster.
type RecoveryModel struct {
	// Name labels the model in projection tables.
	Name string
	// AttemptTicks prices one fault-free attempt at cube dimension d,
	// in vticks. NewRecoveryModel derives it from a base Coster;
	// validation harnesses install a measured-baseline table instead
	// so predictions are comparable to seeded runs tick for tick.
	AttemptTicks func(dim int) (float64, error)
	// Regime is the fault environment.
	Regime FaultRegime
	// Policy is the supervisor configuration.
	Policy PolicyParams
	// Calib holds the fitted detection/waste fractions.
	Calib Calibration
}

// NewRecoveryModel builds a recovery-aware model over any fault-free
// base Coster: one attempt at dimension d costs base.Total(2^d).
func NewRecoveryModel(name string, base Coster, regime FaultRegime, pol PolicyParams, cal Calibration) *RecoveryModel {
	return &RecoveryModel{
		Name: name,
		AttemptTicks: func(dim int) (float64, error) {
			return base.Total(float64(int64(1) << uint(dim)))
		},
		Regime: regime,
		Policy: pol,
		Calib:  cal,
	}
}

// AttemptTable returns an AttemptTicks function backed by a
// dim→vticks table of measured fault-free baselines.
func AttemptTable(baselines map[int]float64) func(dim int) (float64, error) {
	return func(dim int) (float64, error) {
		t, ok := baselines[dim]
		if !ok {
			return 0, fmt.Errorf("costmodel: no attempt baseline for dim %d", dim)
		}
		return t, nil
	}
}

// Breakdown is the expectation decomposition of a supervision: where
// the virtual time goes when the §5 analysis is carried through the
// repair loop.
type Breakdown struct {
	// Dim is the initial cube dimension.
	Dim int
	// BaselineTicks is the fault-free single-attempt cost at Dim.
	BaselineTicks float64
	// ExpectedTicks is E[Σ attempt costs]: the successful attempt's
	// full cost plus every failed attempt's wasted cost, exhausted
	// supervisions included.
	ExpectedTicks float64
	// ExpectedAttempts and ExpectedRetries are E[attempts run] and
	// E[attempts after the first].
	ExpectedAttempts float64
	ExpectedRetries  float64
	// ExpectedWastedTicks is E[virtual time burned by failed
	// attempts] — the recovery_wasted_vticks_total series in
	// expectation.
	ExpectedWastedTicks float64
	// ExpectedBackoffNanos is E[wall-clock between-attempt wait].
	ExpectedBackoffNanos float64
	// ExpectedQuarantines, ExpectedSubstitutions and ExpectedShrinks
	// count the repair actions in expectation (quarantines =
	// substitutions + shrinks).
	ExpectedQuarantines   float64
	ExpectedSubstitutions float64
	ExpectedShrinks       float64
	// PVerified and PExhausted split the outcome mass: verified
	// result within budget vs ExhaustedError escalation.
	PVerified  float64
	PExhausted float64
	// Overhead is ExpectedTicks/BaselineTicks − 1: the fractional
	// repair-loop cost over the fault-free run, the recovery analogue
	// of the paper's S_FT/S_NR overhead ratio.
	Overhead float64
}

// state is one configuration of the supervisor's machine: current
// dimension, spares left, and the active persistent fault's accusation
// streak (0 = no persistent fault active).
type state struct {
	dim    int
	spares int
	streak int
}

// Breakdown runs the probability-mass recursion for an initial cube of
// dimension dim and returns the expectation decomposition.
//
// The recursion mirrors internal/recovery.Supervise exactly, under the
// single-fault-at-a-time regime the paper's Theorem 3 analyses: each
// attempt either runs clean, suffers a fresh arrival (persistent with
// probability PersistentFrac), or re-manifests the active persistent
// fault. A manifested fault fail-stops the attempt with probability
// DetectFrac — an undetected manifestation completes verified (the
// CorrectDespiteFault case), ending the supervision. Detected
// persistent faults accumulate a same-suspect streak; at PersistStreak
// the suspect is quarantined — substitution while spares last, shrink
// above MinDim, and a floor state that can only retry once both are
// spent (the supervisor's acted == false branch).
func (rm *RecoveryModel) Breakdown(dim int) (Breakdown, error) {
	if rm == nil || rm.AttemptTicks == nil {
		return Breakdown{}, fmt.Errorf("costmodel: recovery model has no attempt cost")
	}
	if dim < 1 {
		return Breakdown{}, fmt.Errorf("costmodel: recovery breakdown at dim %d", dim)
	}
	pol := rm.Policy.withDefaults()
	cal := rm.Calib.withDefaults()

	// Attempt costs for every reachable dimension, resolved up front
	// so cost errors surface before any mass moves.
	minDim := pol.MinDim
	if minDim > dim {
		minDim = dim
	}
	ticks := make(map[int]float64, dim-minDim+1)
	for d := dim; d >= minDim; d-- {
		t, err := rm.AttemptTicks(d)
		if err != nil {
			return Breakdown{}, err
		}
		if t <= 0 {
			return Breakdown{}, fmt.Errorf("costmodel: attempt cost %v at dim %d", t, d)
		}
		ticks[d] = t
	}

	bd := Breakdown{Dim: dim, BaselineTicks: ticks[dim]}
	mass := map[state]float64{{dim: dim, spares: pol.Spares}: 1}
	eps := cal.DetectFrac
	rho := rm.Regime.PersistentFrac

	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		next := make(map[state]float64, len(mass))
		for st, w := range mass {
			if w == 0 {
				continue
			}
			T := ticks[st.dim]
			bd.ExpectedAttempts += w
			if attempt > 0 {
				bd.ExpectedRetries += w
				bd.ExpectedBackoffNanos += w * pol.expectedBackoff(attempt)
			}

			// pFail is this attempt's fail-stop probability; the
			// complement completes verified and leaves the recursion.
			var pFail float64
			if st.streak > 0 {
				// Active persistent fault: it manifests for certain,
				// fail-stops with the calibrated coverage.
				pFail = eps
			} else {
				pFail = rm.Regime.ArrivalProb(1<<uint(st.dim), T) * eps
			}
			pOK := 1 - pFail
			bd.PVerified += w * pOK
			bd.ExpectedTicks += w * (pOK*T + pFail*cal.WasteFrac*T)
			bd.ExpectedWastedTicks += w * pFail * cal.WasteFrac * T
			if pFail == 0 {
				continue
			}

			move := func(to state, m float64) {
				if m > 0 {
					next[to] += m
				}
			}
			if st.streak > 0 {
				// Detected re-manifestation: streak grows; at the
				// policy threshold the suspect is quarantined.
				ns := st
				ns.streak++
				if ns.streak < pol.PersistStreak {
					move(ns, w*pFail)
					continue
				}
				switch {
				case st.spares > 0:
					bd.ExpectedQuarantines += w * pFail
					bd.ExpectedSubstitutions += w * pFail
					move(state{dim: st.dim, spares: st.spares - 1}, w*pFail)
				case st.dim > pol.MinDim:
					bd.ExpectedQuarantines += w * pFail
					bd.ExpectedShrinks += w * pFail
					move(state{dim: st.dim - 1, spares: st.spares}, w*pFail)
				default:
					// Floor: the supervisor takes no action and the
					// fault stays; the streak stays saturated.
					move(ns, w*pFail)
				}
				continue
			}
			// Fresh arrival, detected: transient episodes clear by the
			// next attempt; persistent ones open a streak at 1 (this
			// attempt's accusation), quarantined once it reaches the
			// policy threshold — immediately when PersistStreak <= 1.
			move(state{dim: st.dim, spares: st.spares}, w*pFail*(1-rho))
			if rho > 0 {
				if pol.PersistStreak > 1 {
					move(state{dim: st.dim, spares: st.spares, streak: 1}, w*pFail*rho)
				} else {
					switch {
					case st.spares > 0:
						bd.ExpectedQuarantines += w * pFail * rho
						bd.ExpectedSubstitutions += w * pFail * rho
						move(state{dim: st.dim, spares: st.spares - 1}, w*pFail*rho)
					case st.dim > pol.MinDim:
						bd.ExpectedQuarantines += w * pFail * rho
						bd.ExpectedShrinks += w * pFail * rho
						move(state{dim: st.dim - 1, spares: st.spares}, w*pFail*rho)
					default:
						move(state{dim: st.dim, spares: st.spares, streak: 1}, w*pFail*rho)
					}
				}
			}
		}
		mass = next
	}
	for _, w := range mass {
		bd.PExhausted += w
	}
	if bd.BaselineTicks > 0 {
		bd.Overhead = bd.ExpectedTicks/bd.BaselineTicks - 1
	}
	return bd, nil
}

// CostName implements Coster.
func (rm *RecoveryModel) CostName() string { return rm.Name }

// Total implements Coster: the expected end-to-end virtual time of a
// supervised sort on the cube with n nodes (n must be a power of two,
// as every projection in this package steps in dimensions).
func (rm *RecoveryModel) Total(n float64) (float64, error) {
	dim, err := dimOf(n)
	if err != nil {
		return 0, err
	}
	bd, err := rm.Breakdown(dim)
	if err != nil {
		return 0, err
	}
	return bd.ExpectedTicks, nil
}

// OverheadPoint is one sample of the overhead-vs-fault-rate curve.
type OverheadPoint struct {
	// MTTF is the per-node mean time between faults, in vticks.
	MTTF float64
	// ArrivalsPerAttempt is the expected fault arrivals per fault-free
	// attempt at this MTTF (n·T/MTTF) — the dimensionless fault
	// pressure, comparable across cube sizes.
	ArrivalsPerAttempt float64
	// Overhead is E[total ticks]/baseline − 1.
	Overhead float64
	// ExpectedTicks is E[total ticks].
	ExpectedTicks float64
}

// OverheadCurve sweeps the model's fault regime over the given MTTF
// values at a fixed dimension, returning the overhead-vs-fault-rate
// curve the §5 extension plots: how the repair loop's expected cost
// grows as the machine gets less reliable.
func (rm *RecoveryModel) OverheadCurve(dim int, mttfs []float64) ([]OverheadPoint, error) {
	if rm == nil {
		return nil, fmt.Errorf("costmodel: nil recovery model")
	}
	out := make([]OverheadPoint, 0, len(mttfs))
	for _, mttf := range mttfs {
		m := *rm
		m.Regime.MTTF = mttf
		bd, err := m.Breakdown(dim)
		if err != nil {
			return nil, err
		}
		pt := OverheadPoint{MTTF: mttf, Overhead: bd.Overhead, ExpectedTicks: bd.ExpectedTicks}
		if mttf > 0 {
			pt.ArrivalsPerAttempt = float64(int64(1)<<uint(dim)) * bd.BaselineTicks / mttf
		}
		out = append(out, pt)
	}
	return out, nil
}

// dimOf maps a node count to its cube dimension, rejecting non-powers
// of two (tolerating float rounding from projection call sites).
func dimOf(n float64) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("costmodel: recovery model at N=%v", n)
	}
	dim := int(math.Round(math.Log2(n)))
	if math.Abs(float64(int64(1)<<uint(dim))-n) > 1e-6 {
		return 0, fmt.Errorf("costmodel: recovery model needs a power-of-two N, got %v", n)
	}
	return dim, nil
}
