// Package costmodel implements the analytic run-time models of the
// paper's Section 5: the fitted component-time table (communication
// and computation tick formulas for S_FT and for host sequential
// sorting), the large-system projections of Figure 7, and the block
// sort/merge projections of Figure 8. It also fits the same two-term
// bases to *measured* simulator ticks so the reproduction can compare
// its constants to the paper's.
package costmodel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Basis identifies one term of a cost formula in N (nodes).
type Basis int

const (
	// BasisOne is the constant term.
	BasisOne Basis = iota + 1
	// BasisLgN is log2 N.
	BasisLgN
	// BasisLg2N is (log2 N)^2.
	BasisLg2N
	// BasisN is N.
	BasisN
	// BasisNLgN is N·log2 N.
	BasisNLgN
)

var basisNames = map[Basis]string{
	BasisOne:  "1",
	BasisLgN:  "lgN",
	BasisLg2N: "lg²N",
	BasisN:    "N",
	BasisNLgN: "N·lgN",
}

// String names the basis term.
func (b Basis) String() string {
	if s, ok := basisNames[b]; ok {
		return s
	}
	return fmt.Sprintf("basis(%d)", int(b))
}

// Eval evaluates the basis at N nodes.
func (b Basis) Eval(n float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("costmodel: basis eval at N=%v", n)
	}
	lg := math.Log2(n)
	switch b {
	case BasisOne:
		return 1, nil
	case BasisLgN:
		return lg, nil
	case BasisLg2N:
		return lg * lg, nil
	case BasisN:
		return n, nil
	case BasisNLgN:
		return n * lg, nil
	default:
		return 0, fmt.Errorf("costmodel: unknown basis %d", int(b))
	}
}

// Term is one coefficient·basis component.
type Term struct {
	Coef  float64
	Basis Basis
}

// Formula is a sum of terms, e.g. 8·lg²N + 0.05·N·lgN.
type Formula []Term

// Eval evaluates the formula at N nodes.
func (f Formula) Eval(n float64) (float64, error) {
	var s float64
	for _, t := range f {
		v, err := t.Basis.Eval(n)
		if err != nil {
			return 0, err
		}
		s += t.Coef * v
	}
	return s, nil
}

// String renders the formula in the paper's style. Fitted formulas can
// carry negative coefficients, which render with a subtraction joiner
// (8·lg²N − 0.3·N), never as "+ -0.3·N".
func (f Formula) String() string {
	if len(f) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range f {
		switch {
		case i == 0 && t.Coef < 0:
			b.WriteString("−")
		case i > 0 && t.Coef < 0:
			b.WriteString(" − ")
		case i > 0:
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.4g·%s", math.Abs(t.Coef), t.Basis)
	}
	return b.String()
}

// Model is a per-algorithm cost model: separate communication and
// computation formulas whose sum is the projected run time.
type Model struct {
	Name string
	Comm Formula
	Comp Formula
}

// Coster is anything that can price a run at N nodes: the formula
// Models of this file, and the recovery-aware models of recovery.go
// whose totals come from a probability-mass recursion rather than a
// closed-form formula. Project, Crossover and LimitRatio accept any
// Coster so fault-free and faulty regimes share one projection path.
type Coster interface {
	CostName() string
	Total(n float64) (float64, error)
}

// CostName names the model for projection tables.
func (m Model) CostName() string { return m.Name }

// Total evaluates comm+comp at N nodes.
func (m Model) Total(n float64) (float64, error) {
	c1, err := m.Comm.Eval(n)
	if err != nil {
		return 0, err
	}
	c2, err := m.Comp.Eval(n)
	if err != nil {
		return 0, err
	}
	return c1 + c2, nil
}

// PaperSFT returns the paper's measured component-time model for S_FT
// (Section 5 table): comm = 8·lg²N + 0.05·N·lgN, comp = 11.5·N.
func PaperSFT() Model {
	return Model{
		Name: "S_FT (paper)",
		Comm: Formula{{Coef: 8, Basis: BasisLg2N}, {Coef: 0.05, Basis: BasisNLgN}},
		Comp: Formula{{Coef: 11.5, Basis: BasisN}},
	}
}

// PaperSequential returns the paper's host sequential-sort model:
// comm = 14·N, comp = 0.45·N·lgN.
func PaperSequential() Model {
	return Model{
		Name: "Sequential (paper)",
		Comm: Formula{{Coef: 14, Basis: BasisN}},
		Comp: Formula{{Coef: 0.45, Basis: BasisNLgN}},
	}
}

// Point is one measured observation: a cube of N nodes with measured
// communication and computation ticks (per-node maxima, matching the
// paper's per-component timings).
type Point struct {
	N    int
	Comm float64
	Comp float64
}

// Fit fits comm and comp formulas over the given bases to measured
// points by least squares, returning a Model with the recovered
// constants — the reproduction's analogue of the paper's table.
func Fit(name string, points []Point, commBases, compBases []Basis) (Model, error) {
	ns := make([]int, len(points))
	comms := make([]float64, len(points))
	comps := make([]float64, len(points))
	for i, p := range points {
		ns[i] = p.N
		comms[i] = p.Comm
		comps[i] = p.Comp
	}
	comm, err := FitSeries(ns, comms, commBases)
	if err != nil {
		return Model{}, fmt.Errorf("costmodel: fit %s comm: %w", name, err)
	}
	comp, err := FitSeries(ns, comps, compBases)
	if err != nil {
		return Model{}, fmt.Errorf("costmodel: fit %s comp: %w", name, err)
	}
	return Model{Name: name, Comm: comm, Comp: comp}, nil
}

// FitSeries fits one formula over the given bases to a single measured
// series y[i] at ns[i] nodes — the one-component companion of Fit,
// used for makespan-style series that have no comm/comp split (the
// recovery calibration's per-attempt cost curves).
func FitSeries(ns []int, ys []float64, bases []Basis) (Formula, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("no bases")
	}
	if len(ns) != len(ys) {
		return nil, fmt.Errorf("costmodel: %d sizes vs %d observations", len(ns), len(ys))
	}
	X := make([][]float64, len(ns))
	y := make([]float64, len(ns))
	for i, n := range ns {
		row := make([]float64, len(bases))
		for j, b := range bases {
			v, err := b.Eval(float64(n))
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		X[i] = row
		y[i] = ys[i]
	}
	coef, err := stats.LeastSquares(X, y)
	if err != nil {
		return nil, err
	}
	f := make(Formula, len(bases))
	for j, b := range bases {
		f[j] = Term{Coef: coef[j], Basis: b}
	}
	return f, nil
}

// FitQuality returns the fit quality of the model against the points,
// per component and in total: commR2 and compR2 are the R² of the comm
// and comp formulas against the points' comm and comp series
// separately, and totalR2 is the R² of comm+comp against the points'
// summed observations — the single number that scores the model's
// Total predictions.
func FitQuality(m Model, points []Point) (commR2, compR2, totalR2 float64, err error) {
	var comm, commPred, comp, compPred, total, totalPred []float64
	for _, p := range points {
		cm, err := m.Comm.Eval(float64(p.N))
		if err != nil {
			return 0, 0, 0, err
		}
		cp, err := m.Comp.Eval(float64(p.N))
		if err != nil {
			return 0, 0, 0, err
		}
		comm = append(comm, p.Comm)
		commPred = append(commPred, cm)
		comp = append(comp, p.Comp)
		compPred = append(compPred, cp)
		total = append(total, p.Comm+p.Comp)
		totalPred = append(totalPred, cm+cp)
	}
	commR2, err = stats.RSquared(comm, commPred)
	if err != nil {
		return 0, 0, 0, err
	}
	compR2, err = stats.RSquared(comp, compPred)
	if err != nil {
		return 0, 0, 0, err
	}
	totalR2, err = stats.RSquared(total, totalPred)
	return commR2, compR2, totalR2, err
}

// ProjectionRow is one line of the Figure 7 projection table.
type ProjectionRow struct {
	N      int
	Totals []float64 // one per model, in argument order
}

// Project evaluates the models at N = 2^minDim .. 2^maxDim.
func Project(models []Coster, minDim, maxDim int) ([]ProjectionRow, error) {
	if minDim < 1 || maxDim < minDim {
		return nil, fmt.Errorf("costmodel: bad projection range [%d,%d]", minDim, maxDim)
	}
	var rows []ProjectionRow
	for d := minDim; d <= maxDim; d++ {
		n := 1 << uint(d)
		row := ProjectionRow{N: n}
		for _, m := range models {
			v, err := m.Total(float64(n))
			if err != nil {
				return nil, err
			}
			row.Totals = append(row.Totals, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Crossover returns the smallest N = 2^d (d in [minDim, maxDim]) at
// which model a's total is below model b's, or 0 when a never wins in
// the range — the Figure 7 question "when does reliable parallel
// sorting beat host sorting".
func Crossover(a, b Coster, minDim, maxDim int) (int, error) {
	rows, err := Project([]Coster{a, b}, minDim, maxDim)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		if r.Totals[0] < r.Totals[1] {
			return r.N, nil
		}
	}
	return 0, nil
}

// LimitRatio returns the asymptotic-ish ratio a.Total/b.Total at the
// given (large) N — the paper's closing observation that reliable
// parallel sorting tends to ~11% of sequential cost.
func LimitRatio(a, b Coster, n float64) (float64, error) {
	ta, err := a.Total(n)
	if err != nil {
		return 0, err
	}
	tb, err := b.Total(n)
	if err != nil {
		return 0, err
	}
	if tb == 0 {
		return 0, fmt.Errorf("costmodel: zero denominator at N=%v", n)
	}
	return ta / tb, nil
}

// growthOrder ranks bases by asymptotic growth.
var growthOrder = map[Basis]int{
	BasisOne:  1,
	BasisLgN:  2,
	BasisLg2N: 3,
	BasisN:    4,
	BasisNLgN: 5,
}

// dominantCoef returns the coefficient sum of the fastest-growing
// basis present in the model's total (comm+comp).
func dominantCoef(m Model) (Basis, float64) {
	best := Basis(0)
	var coef float64
	scan := func(f Formula) {
		for _, t := range f {
			if t.Coef == 0 {
				continue
			}
			switch {
			case growthOrder[t.Basis] > growthOrder[best]:
				best = t.Basis
				coef = t.Coef
			case t.Basis == best:
				coef += t.Coef
			}
		}
	}
	scan(m.Comm)
	scan(m.Comp)
	return best, coef
}

// AsymptoticRatio returns lim N→∞ a.Total(N)/b.Total(N). For the
// paper's models both totals are dominated by their N·lgN terms, so
// the limit is 0.05/0.45 ≈ 11% — the closing claim of Section 5.
// When a's dominant term grows slower than b's the limit is 0; when it
// grows faster the limit diverges and an error is returned.
func AsymptoticRatio(a, b Model) (float64, error) {
	ba, ca := dominantCoef(a)
	bb, cb := dominantCoef(b)
	if bb == 0 || cb == 0 {
		return 0, fmt.Errorf("costmodel: model %q has no dominant term", b.Name)
	}
	switch {
	case growthOrder[ba] < growthOrder[bb]:
		return 0, nil
	case growthOrder[ba] > growthOrder[bb]:
		return 0, fmt.Errorf("costmodel: ratio %q/%q diverges", a.Name, b.Name)
	default:
		return ca / cb, nil
	}
}

// ScaleByBlock returns a copy of the model with every coefficient
// multiplied by m — the paper's observation that for block sorting
// "each of the predicates Φ scales by m" and the exchange volume
// scales likewise. Used for Figure 8 projections.
func ScaleByBlock(m Model, blockLen int) Model {
	scale := func(f Formula) Formula {
		out := make(Formula, len(f))
		for i, t := range f {
			out[i] = Term{Coef: t.Coef * float64(blockLen), Basis: t.Basis}
		}
		return out
	}
	return Model{
		Name: fmt.Sprintf("%s ×m=%d", m.Name, blockLen),
		Comm: scale(m.Comm),
		Comp: scale(m.Comp),
	}
}
