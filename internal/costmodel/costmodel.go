// Package costmodel implements the analytic run-time models of the
// paper's Section 5: the fitted component-time table (communication
// and computation tick formulas for S_FT and for host sequential
// sorting), the large-system projections of Figure 7, and the block
// sort/merge projections of Figure 8. It also fits the same two-term
// bases to *measured* simulator ticks so the reproduction can compare
// its constants to the paper's.
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Basis identifies one term of a cost formula in N (nodes).
type Basis int

const (
	// BasisOne is the constant term.
	BasisOne Basis = iota + 1
	// BasisLgN is log2 N.
	BasisLgN
	// BasisLg2N is (log2 N)^2.
	BasisLg2N
	// BasisN is N.
	BasisN
	// BasisNLgN is N·log2 N.
	BasisNLgN
)

var basisNames = map[Basis]string{
	BasisOne:  "1",
	BasisLgN:  "lgN",
	BasisLg2N: "lg²N",
	BasisN:    "N",
	BasisNLgN: "N·lgN",
}

// String names the basis term.
func (b Basis) String() string {
	if s, ok := basisNames[b]; ok {
		return s
	}
	return fmt.Sprintf("basis(%d)", int(b))
}

// Eval evaluates the basis at N nodes.
func (b Basis) Eval(n float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("costmodel: basis eval at N=%v", n)
	}
	lg := math.Log2(n)
	switch b {
	case BasisOne:
		return 1, nil
	case BasisLgN:
		return lg, nil
	case BasisLg2N:
		return lg * lg, nil
	case BasisN:
		return n, nil
	case BasisNLgN:
		return n * lg, nil
	default:
		return 0, fmt.Errorf("costmodel: unknown basis %d", int(b))
	}
}

// Term is one coefficient·basis component.
type Term struct {
	Coef  float64
	Basis Basis
}

// Formula is a sum of terms, e.g. 8·lg²N + 0.05·N·lgN.
type Formula []Term

// Eval evaluates the formula at N nodes.
func (f Formula) Eval(n float64) (float64, error) {
	var s float64
	for _, t := range f {
		v, err := t.Basis.Eval(n)
		if err != nil {
			return 0, err
		}
		s += t.Coef * v
	}
	return s, nil
}

// String renders the formula in the paper's style.
func (f Formula) String() string {
	if len(f) == 0 {
		return "0"
	}
	out := ""
	for i, t := range f {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%.4g·%s", t.Coef, t.Basis)
	}
	return out
}

// Model is a per-algorithm cost model: separate communication and
// computation formulas whose sum is the projected run time.
type Model struct {
	Name string
	Comm Formula
	Comp Formula
}

// Total evaluates comm+comp at N nodes.
func (m Model) Total(n float64) (float64, error) {
	c1, err := m.Comm.Eval(n)
	if err != nil {
		return 0, err
	}
	c2, err := m.Comp.Eval(n)
	if err != nil {
		return 0, err
	}
	return c1 + c2, nil
}

// PaperSFT returns the paper's measured component-time model for S_FT
// (Section 5 table): comm = 8·lg²N + 0.05·N·lgN, comp = 11.5·N.
func PaperSFT() Model {
	return Model{
		Name: "S_FT (paper)",
		Comm: Formula{{Coef: 8, Basis: BasisLg2N}, {Coef: 0.05, Basis: BasisNLgN}},
		Comp: Formula{{Coef: 11.5, Basis: BasisN}},
	}
}

// PaperSequential returns the paper's host sequential-sort model:
// comm = 14·N, comp = 0.45·N·lgN.
func PaperSequential() Model {
	return Model{
		Name: "Sequential (paper)",
		Comm: Formula{{Coef: 14, Basis: BasisN}},
		Comp: Formula{{Coef: 0.45, Basis: BasisNLgN}},
	}
}

// Point is one measured observation: a cube of N nodes with measured
// communication and computation ticks (per-node maxima, matching the
// paper's per-component timings).
type Point struct {
	N    int
	Comm float64
	Comp float64
}

// Fit fits comm and comp formulas over the given bases to measured
// points by least squares, returning a Model with the recovered
// constants — the reproduction's analogue of the paper's table.
func Fit(name string, points []Point, commBases, compBases []Basis) (Model, error) {
	comm, err := fitFormula(points, commBases, func(p Point) float64 { return p.Comm })
	if err != nil {
		return Model{}, fmt.Errorf("costmodel: fit %s comm: %w", name, err)
	}
	comp, err := fitFormula(points, compBases, func(p Point) float64 { return p.Comp })
	if err != nil {
		return Model{}, fmt.Errorf("costmodel: fit %s comp: %w", name, err)
	}
	return Model{Name: name, Comm: comm, Comp: comp}, nil
}

func fitFormula(points []Point, bases []Basis, get func(Point) float64) (Formula, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("no bases")
	}
	X := make([][]float64, len(points))
	y := make([]float64, len(points))
	for i, p := range points {
		row := make([]float64, len(bases))
		for j, b := range bases {
			v, err := b.Eval(float64(p.N))
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		X[i] = row
		y[i] = get(p)
	}
	coef, err := stats.LeastSquares(X, y)
	if err != nil {
		return nil, err
	}
	f := make(Formula, len(bases))
	for j, b := range bases {
		f[j] = Term{Coef: coef[j], Basis: b}
	}
	return f, nil
}

// FitQuality returns R² of the model's total against the points.
func FitQuality(m Model, points []Point) (commR2, compR2 float64, err error) {
	var comm, commPred, comp, compPred []float64
	for _, p := range points {
		cm, err := m.Comm.Eval(float64(p.N))
		if err != nil {
			return 0, 0, err
		}
		cp, err := m.Comp.Eval(float64(p.N))
		if err != nil {
			return 0, 0, err
		}
		comm = append(comm, p.Comm)
		commPred = append(commPred, cm)
		comp = append(comp, p.Comp)
		compPred = append(compPred, cp)
	}
	commR2, err = stats.RSquared(comm, commPred)
	if err != nil {
		return 0, 0, err
	}
	compR2, err = stats.RSquared(comp, compPred)
	return commR2, compR2, err
}

// ProjectionRow is one line of the Figure 7 projection table.
type ProjectionRow struct {
	N      int
	Totals []float64 // one per model, in argument order
}

// Project evaluates the models at N = 2^minDim .. 2^maxDim.
func Project(models []Model, minDim, maxDim int) ([]ProjectionRow, error) {
	if minDim < 1 || maxDim < minDim {
		return nil, fmt.Errorf("costmodel: bad projection range [%d,%d]", minDim, maxDim)
	}
	var rows []ProjectionRow
	for d := minDim; d <= maxDim; d++ {
		n := 1 << uint(d)
		row := ProjectionRow{N: n}
		for _, m := range models {
			v, err := m.Total(float64(n))
			if err != nil {
				return nil, err
			}
			row.Totals = append(row.Totals, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Crossover returns the smallest N = 2^d (d in [minDim, maxDim]) at
// which model a's total is below model b's, or 0 when a never wins in
// the range — the Figure 7 question "when does reliable parallel
// sorting beat host sorting".
func Crossover(a, b Model, minDim, maxDim int) (int, error) {
	rows, err := Project([]Model{a, b}, minDim, maxDim)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		if r.Totals[0] < r.Totals[1] {
			return r.N, nil
		}
	}
	return 0, nil
}

// LimitRatio returns the asymptotic-ish ratio a.Total/b.Total at the
// given (large) N — the paper's closing observation that reliable
// parallel sorting tends to ~11% of sequential cost.
func LimitRatio(a, b Model, n float64) (float64, error) {
	ta, err := a.Total(n)
	if err != nil {
		return 0, err
	}
	tb, err := b.Total(n)
	if err != nil {
		return 0, err
	}
	if tb == 0 {
		return 0, fmt.Errorf("costmodel: zero denominator at N=%v", n)
	}
	return ta / tb, nil
}

// growthOrder ranks bases by asymptotic growth.
var growthOrder = map[Basis]int{
	BasisOne:  1,
	BasisLgN:  2,
	BasisLg2N: 3,
	BasisN:    4,
	BasisNLgN: 5,
}

// dominantCoef returns the coefficient sum of the fastest-growing
// basis present in the model's total (comm+comp).
func dominantCoef(m Model) (Basis, float64) {
	best := Basis(0)
	var coef float64
	scan := func(f Formula) {
		for _, t := range f {
			if t.Coef == 0 {
				continue
			}
			switch {
			case growthOrder[t.Basis] > growthOrder[best]:
				best = t.Basis
				coef = t.Coef
			case t.Basis == best:
				coef += t.Coef
			}
		}
	}
	scan(m.Comm)
	scan(m.Comp)
	return best, coef
}

// AsymptoticRatio returns lim N→∞ a.Total(N)/b.Total(N). For the
// paper's models both totals are dominated by their N·lgN terms, so
// the limit is 0.05/0.45 ≈ 11% — the closing claim of Section 5.
// When a's dominant term grows slower than b's the limit is 0; when it
// grows faster the limit diverges and an error is returned.
func AsymptoticRatio(a, b Model) (float64, error) {
	ba, ca := dominantCoef(a)
	bb, cb := dominantCoef(b)
	if bb == 0 || cb == 0 {
		return 0, fmt.Errorf("costmodel: model %q has no dominant term", b.Name)
	}
	switch {
	case growthOrder[ba] < growthOrder[bb]:
		return 0, nil
	case growthOrder[ba] > growthOrder[bb]:
		return 0, fmt.Errorf("costmodel: ratio %q/%q diverges", a.Name, b.Name)
	default:
		return ca / cb, nil
	}
}

// ScaleByBlock returns a copy of the model with every coefficient
// multiplied by m — the paper's observation that for block sorting
// "each of the predicates Φ scales by m" and the exchange volume
// scales likewise. Used for Figure 8 projections.
func ScaleByBlock(m Model, blockLen int) Model {
	scale := func(f Formula) Formula {
		out := make(Formula, len(f))
		for i, t := range f {
			out[i] = Term{Coef: t.Coef * float64(blockLen), Basis: t.Basis}
		}
		return out
	}
	return Model{
		Name: fmt.Sprintf("%s ×m=%d", m.Name, blockLen),
		Comm: scale(m.Comm),
		Comp: scale(m.Comp),
	}
}
