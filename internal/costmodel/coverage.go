// Coverage-calibrated fault regime: the detection-coverage matrix's
// feed into the recovery model. The base calibration's DetectFrac is a
// single number fitted from message-fault sweeps; the coverage matrix
// measures detection per adversary class (message, absence,
// comparison, memory), and this file folds those per-class fractions
// — weighted by an assumed arrival mix — into an effective DetectFrac
// so the repair-loop expectations price a machine whose faults are not
// all wire lies.
package costmodel

import "fmt"

// ClassDetection is one adversary class's measured detection behaviour
// plus its assumed share of fault arrivals.
type ClassDetection struct {
	// Class names the adversary class ("message", "absence",
	// "comparison", "memory").
	Class string
	// Share is the class's weight in the arrival mix. Shares need not
	// sum to 1; EffectiveDetectFrac normalizes.
	Share float64
	// DetectFrac is the measured probability that a manifested fault
	// of this class fail-stops the run (detected / runs from the
	// coverage matrix).
	DetectFrac float64
}

// CoverageCalibration is a per-class detection profile, typically
// produced by experiments.CalibrateCoverage from a measured
// detection-coverage matrix.
type CoverageCalibration struct {
	Classes []ClassDetection
}

// Validate rejects profiles the effective fraction cannot be computed
// from.
func (c CoverageCalibration) Validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("costmodel: coverage calibration has no classes")
	}
	var total float64
	for _, cd := range c.Classes {
		if cd.Share < 0 {
			return fmt.Errorf("costmodel: class %q share %v < 0", cd.Class, cd.Share)
		}
		if cd.DetectFrac < 0 || cd.DetectFrac > 1 {
			return fmt.Errorf("costmodel: class %q detect fraction %v outside [0,1]", cd.Class, cd.DetectFrac)
		}
		total += cd.Share
	}
	if total <= 0 {
		return fmt.Errorf("costmodel: coverage calibration shares sum to %v", total)
	}
	return nil
}

// EffectiveDetectFrac is the share-weighted mean detection fraction —
// the probability that a manifested fault drawn from the profile's
// arrival mix fail-stops the attempt.
func (c CoverageCalibration) EffectiveDetectFrac() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	var total, weighted float64
	for _, cd := range c.Classes {
		total += cd.Share
		weighted += cd.Share * cd.DetectFrac
	}
	return weighted / total, nil
}

// WithCoverage returns a copy of the model whose detection fraction is
// the profile's effective per-class fraction — the coverage-calibrated
// regime. The waste fraction and everything else carry over unchanged.
func (rm *RecoveryModel) WithCoverage(name string, cov CoverageCalibration) (*RecoveryModel, error) {
	if rm == nil {
		return nil, fmt.Errorf("costmodel: nil recovery model")
	}
	eff, err := cov.EffectiveDetectFrac()
	if err != nil {
		return nil, err
	}
	m := *rm
	if name != "" {
		m.Name = name
	}
	m.Calib.DetectFrac = eff
	return &m, nil
}
