package explore

import (
	"testing"

	"repro/internal/simnet"
)

// mkActions builds n distinct synthetic directives.
func mkActions(n int) []simnet.Action {
	out := make([]simnet.Action, n)
	for i := range out {
		out[i] = simnet.Action{
			Kind:  simnet.ActDeliver,
			Queue: simnet.QueueID{Kind: simnet.QHostIn, Node: -1},
			From:  i % 4,
			Seq:   uint64(i),
		}
	}
	return out
}

// contains reports whether every target appears in cand (as an
// identity-matching action), in order — the subsequence predicate the
// synthetic failure models: a violation that needs a specific set of
// delivery steps to manifest, tolerant of unrelated steps between
// them, exactly how ReplaySched treats dropped directives.
func containsSubseq(cand, targets []simnet.Action) bool {
	j := 0
	for _, a := range cand {
		if j < len(targets) && a.Same(targets[j]) {
			j++
		}
	}
	return j == len(targets)
}

// TestShrinkToTargetSubsequence checks the shrinker finds exactly the
// minimal failing core when the predicate is a target subsequence.
func TestShrinkToTargetSubsequence(t *testing.T) {
	all := mkActions(12)
	targets := []simnet.Action{all[2], all[5], all[11]}
	fails := func(cand []simnet.Action) bool { return containsSubseq(cand, targets) }
	got := ShrinkSchedule(all, fails)
	if len(got) != len(targets) {
		t.Fatalf("shrunk to %d directives, minimal core has %d", len(got), len(targets))
	}
	for i := range targets {
		if !got[i].Same(targets[i]) {
			t.Fatalf("shrunk[%d] = %v, want %v", i, got[i], targets[i])
		}
	}
}

// TestShrinkPassingInputUnchanged: a schedule that does not fail is
// returned unchanged (there is nothing to preserve).
func TestShrinkPassingInputUnchanged(t *testing.T) {
	all := mkActions(5)
	got := ShrinkSchedule(all, func([]simnet.Action) bool { return false })
	if len(got) != len(all) {
		t.Fatalf("passing input reshaped: %d directives, want %d", len(got), len(all))
	}
}

// FuzzShrinkSchedule drives the shrinker with fuzz-derived schedules
// and target-subsequence predicates, asserting the two contract
// properties on every input:
//
//   - the shrunk schedule still fails the same predicate;
//   - it is 1-minimal — removing any single remaining directive makes
//     the predicate pass.
func FuzzShrinkSchedule(f *testing.F) {
	f.Add(uint16(0b101), uint8(8))
	f.Add(uint16(0), uint8(3))
	f.Add(uint16(0xFFFF), uint8(16))
	f.Add(uint16(0b1100110), uint8(12))
	f.Fuzz(func(t *testing.T, mask uint16, n uint8) {
		size := int(n%16) + 1
		all := mkActions(size)
		var targets []simnet.Action
		for i := 0; i < size; i++ {
			if mask&(1<<uint(i)) != 0 {
				targets = append(targets, all[i])
			}
		}
		calls := 0
		fails := func(cand []simnet.Action) bool {
			calls++
			return containsSubseq(cand, targets)
		}
		got := ShrinkSchedule(all, fails)
		if !fails(got) {
			t.Fatalf("shrunk schedule no longer fails (mask %b, size %d)", mask, size)
		}
		for i := range got {
			cand := append(append([]simnet.Action(nil), got[:i]...), got[i+1:]...)
			if fails(cand) {
				t.Fatalf("not 1-minimal: dropping directive %d of %d still fails (mask %b)", i, len(got), mask)
			}
		}
		// For the subsequence predicate the 1-minimal core is unique:
		// exactly the targets.
		if len(got) != len(targets) {
			t.Fatalf("shrunk to %d, unique minimal core has %d (mask %b)", len(got), len(targets), mask)
		}
		if calls > 4*size*size+64 {
			t.Fatalf("shrinker used %d predicate calls for %d directives", calls, size)
		}
	})
}
