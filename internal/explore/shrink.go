package explore

import "repro/internal/simnet"

// ShrinkSchedule reduces a failing directive list to a 1-minimal one:
// the returned schedule still satisfies fails, and removing any single
// remaining directive makes fails false. The input is never mutated.
//
// fails must be a pure predicate of its argument (typically "replaying
// this schedule breaks the same invariant"). Replay semantics make
// arbitrary sublists legal schedules — a dropped directive degrades
// exactly one decision to the canonical choice instead of
// desynchronizing the tail (simnet.ReplaySched) — so ddmin-style
// chunk removal is sound here.
//
// The reduction runs a greedy delta-debugging loop: first coarse
// chunk removal (halving granularity, classic ddmin) to shed large
// passing regions cheaply, then single-directive passes until a full
// pass removes nothing. If fails rejects even the original input, the
// input is returned unchanged (nothing to preserve).
func ShrinkSchedule(directives []simnet.Action, fails func([]simnet.Action) bool) []simnet.Action {
	cur := append([]simnet.Action(nil), directives...)
	if !fails(cur) {
		return cur
	}
	// Coarse phase: try dropping contiguous chunks, halving the chunk
	// size as removals stop helping.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := make([]simnet.Action, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if fails(cand) {
				cur = cand // chunk was irrelevant; keep position
			} else {
				start += chunk
			}
		}
	}
	// Fine phase: single removals to a fixpoint. The coarse phase is
	// an accelerator only — 1-minimality is established here.
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(cur); i++ {
			cand := make([]simnet.Action, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if fails(cand) {
				cur = cand
				progress = true
				i--
			}
		}
	}
	return cur
}
