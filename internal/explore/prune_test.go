package explore

import (
	"testing"

	"repro/internal/fault"
)

// TestStateHashPruningDim3 exercises canonical state-hash pruning
// where it first has room to fire: a detected dim-3 case has up to 7
// honest detectors racing ERROR reports into the host mailbox, and the
// commutative host-drain fold makes delivery order below two drained
// sets {A,B} and {B,A} provably equivalent. Without pruning the
// explorer would walk all 7! = 5040 drain permutations; with it the
// walk collapses by more than an order of magnitude while still
// checking every inequivalent interleaving (zero violations). At
// dim <= 2 at most 3 writers race, which never re-reaches an expanded
// state — the per-case pruned counts there are legitimately zero.
func TestStateHashPruningDim3(t *testing.T) {
	c := fault.Case{
		Name:    "msg/key-lie/n1/s1",
		Class:   fault.ClassMessage,
		Msg:     &fault.Spec{Node: 1, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 1 << 20},
		Crashed: -1,
	}
	res, err := Run(Config{Dim: 3, Cases: []fault.Case{c}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("dim-3 case violated: %+v", res.Violations[0])
	}
	cs := res.Cases[0]
	if cs.Pruned == 0 {
		t.Fatalf("no decision subtrees pruned across %d branches; state hashing is dead", cs.Branches)
	}
	if cs.Branches >= 5040 {
		t.Fatalf("%d branches: pruning failed to collapse the 7! drain permutations", cs.Branches)
	}
	if cs.Truncated {
		t.Fatal("sweep truncated without a cap")
	}
}
