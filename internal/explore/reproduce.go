package explore

import (
	"encoding/json"
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
)

// Reproducer is a self-contained, JSON-serializable counterexample: the
// cube geometry, the fault placement, and the shrunk schedule. Anyone
// holding the artifact replays the exact failing execution —
// bit-identical virtual-tick series, identical forensic dump — via
// Replay (or the chaostest bridge, chaostest.ReplayCounterexample).
type Reproducer struct {
	// Dim is the cube dimension; the workload is Workload(Dim).
	Dim int `json:"dim"`
	// Case is the fault placement (fault.Case serializes directly: the
	// pointer specs carry only exported scalar fields).
	Case fault.Case `json:"case"`
	// WeakenChecks replays with every node's assertions disabled (the
	// test-only hook the counterexample was found under, if any).
	WeakenChecks bool `json:"weaken_checks,omitempty"`
	// Invariant is the assertion the schedule breaks.
	Invariant string `json:"invariant"`
	// Schedule is the shrunk directive list for simnet.NewReplay.
	Schedule []simnet.Action `json:"schedule"`
}

// Reproducer packages the violation for a dim-cube sweep.
func (v *Violation) Reproducer(dim int, weakened bool) Reproducer {
	return Reproducer{
		Dim:          dim,
		Case:         v.Placement,
		WeakenChecks: weakened,
		Invariant:    v.Invariant,
		Schedule:     v.Schedule,
	}
}

// JSON renders the reproducer as indented JSON.
func (r Reproducer) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// ParseReproducer decodes a reproducer artifact.
func ParseReproducer(data []byte) (Reproducer, error) {
	var r Reproducer
	if err := json.Unmarshal(data, &r); err != nil {
		return Reproducer{}, fmt.Errorf("explore: reproducer: %w", err)
	}
	return r, nil
}

// Record executes one controlled branch of a case (under any
// controlled scheduler — enumerating, random, replay) and returns the
// recorded schedule alongside the branch's diagnosis and forensic
// dump. The schedule feeds a Reproducer: replaying it through
// chaostest.ReplayCounterexample must reproduce the same diagnosis.
func Record(cfg Config, c fault.Case, sched simnet.Scheduler) ([]simnet.Action, Diagnosis, *forensic.Report, error) {
	x, err := newExplorer(cfg)
	if err != nil {
		return nil, Diagnosis{}, nil, err
	}
	br, err := x.runOnce(c, sched)
	if err != nil {
		return nil, Diagnosis{}, nil, err
	}
	return simnet.PickedActions(br.steps), br.diag, br.dump, nil
}

// Replay re-executes a reproducer once under schedule replay and
// returns the branch's diagnosis, the invariant it broke ("" when the
// replay unexpectedly passes), and the forensic dump (nil when the run
// raised no accusation).
func Replay(r Reproducer) (Diagnosis, string, *forensic.Report, error) {
	x, err := newExplorer(Config{Dim: r.Dim, WeakenChecks: r.WeakenChecks})
	if err != nil {
		return Diagnosis{}, "", nil, err
	}
	c := r.Case
	br, err := x.runOnce(c, simnet.NewReplay(append([]simnet.Action(nil), r.Schedule...)))
	if err != nil {
		return Diagnosis{}, "", nil, err
	}
	inv, _ := x.checkInvariant(c, br)
	return br.diag, inv, br.dump, nil
}
