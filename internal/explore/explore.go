// Package explore is the bounded interleaving explorer: schedule-space
// model checking of S_FT on small cubes.
//
// A free-running simnet exercises one interleaving per run — whatever
// the OS scheduler happens to produce. The explorer instead drives the
// network through simnet's controlled scheduler seam and enumerates
// *every* realizable delivery interleaving, crossed with every
// single-fault placement from the full four-way adversary taxonomy
// (message, absence, comparison, memory — fault.SingleFaultCases),
// asserting on every branch the two invariants the paper's Theorem 3
// rests on:
//
//   - fault-free runs terminate undetected with a verified ascending
//     permutation of the input, under every schedule;
//   - single-fault runs are verified-or-escalated: an undetected run's
//     output must still verify — silent corruption is the one outcome
//     the application-oriented paradigm forbids.
//
// The state space stays tractable through two mechanisms the simnet
// coordinator provides for free (DESIGN.md §11): forced deliveries
// (unique-writer FIFO queues never branch — DPOR-style independence by
// construction, deliveries to distinct receivers commute and are
// batched) and canonical state hashing (decision points that reach an
// already-expanded abstract state are pruned, which collapses the
// host-mailbox drain permutations every run ends with).
//
// A failing branch is shrunk to a 1-minimal schedule (removing any
// single directive makes it pass), replayed deterministically for its
// forensic dump, and packaged as a Reproducer — a self-contained JSON
// artifact the chaostest harness replays bit-identically
// (chaostest.ReplayCounterexample).
package explore

import (
	"fmt"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/simnet"
)

// Invariant identifiers. A Violation's Invariant names which assertion
// its branch broke; the shrinker preserves it (the shrunk schedule
// fails the *same* invariant, not merely some invariant).
const (
	// InvFaultFree: a fault-free run must terminate undetected with a
	// verified sort under every schedule.
	InvFaultFree = "fault-free-sorts"
	// InvVerifiedOrEscalated: a faulted run must never end undetected
	// with a wrong output (Theorem 3's fail-stop guarantee).
	InvVerifiedOrEscalated = "verified-or-escalated"
)

// Config parameterizes one exploration sweep.
type Config struct {
	// Dim is the cube dimension (1 or 2 are tractable exhaustively).
	Dim int
	// Cases is the fault-placement menu; nil means the full
	// fault.SingleFaultCases(Dim) sweep.
	Cases []fault.Case
	// MaxDepth bounds the decision depth at which branches are
	// expanded; deeper decisions resolve canonically. 0 means
	// unbounded (exhaustive). CI smoke runs set a small bound.
	MaxDepth int
	// MaxBranches caps the executed branches per case; 0 means
	// unbounded. When the cap trips, the case is marked Truncated.
	MaxBranches int
	// WeakenChecks disables every node's executable assertions
	// (SkipChecks on honest nodes too) — the test-only hook that
	// demonstrates the explorer catching silent corruption: with the
	// checks gone, a lying node yields a shrunk, replayable
	// counterexample instead of a detection.
	WeakenChecks bool
	// RecvTimeout is the wall-clock watchdog handed to simnet. Under
	// controlled scheduling absence resolves at quiescence, so this
	// only bounds a wedged run. Zero means 10s.
	RecvTimeout time.Duration
	// Obs receives explorer counters (explore_branches_total & co);
	// nil means obs.DefaultMetrics().
	Obs *obs.Metrics
}

// Diagnosis is the explorer's classification of one branch, the same
// fields the chaostest replay must reproduce: verdict, accused node,
// earliest evidence coordinate, and the forensic first-divergence
// locator.
type Diagnosis struct {
	// Verdict classifies the run (fault.Detected,
	// fault.CorrectDespiteFault, fault.SilentWrong).
	Verdict fault.Verdict `json:"verdict"`
	// Detector is the coverage-matrix column when Detected: the
	// predicate name, "absence", or "node-local".
	Detector string `json:"detector,omitempty"`
	// Predicate is the earliest host evidence's predicate class.
	Predicate string `json:"predicate,omitempty"`
	// Accused is the node the earliest evidence implicates, -1 when
	// none (and for undetected runs).
	Accused int `json:"accused"`
	// Stage/Iter locate the earliest detection evidence.
	Stage int `json:"stage"`
	Iter  int `json:"iter"`
	// DivStage/DivIter locate the first digest divergence between the
	// accused's and the accuser's forensic rings
	// (forensic.Report.FirstDivergence); DivOK reports whether the
	// rings diverge at all.
	DivStage int32 `json:"div_stage"`
	DivIter  int32 `json:"div_iter"`
	DivOK    bool  `json:"div_ok"`
}

// Violation is one counterexample: a schedule under which a case broke
// an invariant.
type Violation struct {
	// Case names the fault placement (fault.Case.Name).
	Case string `json:"case"`
	// Placement is the full fault placement, for reproducer artifacts.
	Placement fault.Case `json:"placement"`
	// Class is the adversary class, 0 for the fault-free case.
	Class fault.Class `json:"class"`
	// Invariant is the broken assertion (InvFaultFree or
	// InvVerifiedOrEscalated).
	Invariant string `json:"invariant"`
	// Detail describes the failure (the checker's complaint or the
	// unexpected detection).
	Detail string `json:"detail"`
	// Schedule is the shrunk, 1-minimal directive list: replaying it
	// (simnet.NewReplay) reproduces the violation, and removing any
	// single directive makes the run pass.
	Schedule []simnet.Action `json:"schedule"`
	// Full is the complete recorded schedule of the originally failing
	// branch, before shrinking.
	Full []simnet.Action `json:"full_schedule"`
	// Diag is the explorer's classification of the shrunk replay.
	Diag Diagnosis `json:"diagnosis"`
	// Dump is the forensic flight-recorder dump of the shrunk replay,
	// nil when the failing run raised no accusation (silent-wrong
	// branches with all checks weakened).
	Dump *forensic.Report `json:"-"`
}

// CaseStats is the per-case exploration tally.
type CaseStats struct {
	// Case names the fault placement.
	Case string `json:"case"`
	// Branches is the number of complete schedules executed.
	Branches int `json:"branches"`
	// Pruned counts decision points skipped because their canonical
	// state hash was already expanded.
	Pruned int `json:"pruned"`
	// Decisions is the total consulted scheduling decisions across all
	// branches.
	Decisions int `json:"decisions"`
	// MaxDepth is the deepest decision sequence any branch recorded.
	MaxDepth int `json:"max_depth"`
	// Truncated reports the MaxBranches cap tripped before the
	// frontier emptied.
	Truncated bool `json:"truncated,omitempty"`
}

// Result aggregates a sweep.
type Result struct {
	// Dim is the explored cube dimension.
	Dim int `json:"dim"`
	// Cases holds the per-case tallies in sweep order.
	Cases []CaseStats `json:"cases"`
	// Branches/Pruned/Decisions/MaxDepth aggregate over all cases.
	Branches  int `json:"branches"`
	Pruned    int `json:"pruned"`
	Decisions int `json:"decisions"`
	MaxDepth  int `json:"max_depth"`
	// Violations are the counterexamples found (at most one per case —
	// a case stops exploring once falsified).
	Violations []*Violation `json:"violations,omitempty"`
}

// Workload returns the explorer's canonical deterministic input for a
// dim-cube: the reversed sequence, maximally out of order so every
// stage moves keys. Exported so replay harnesses (chaostest) rebuild
// the identical run.
func Workload(dim int) []int64 {
	n := 1 << uint(dim)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	return keys
}

// Run explores every schedule of every case and returns the aggregate
// result. It errors only on harness failures (malformed cases, a
// non-deterministic re-execution); invariant violations are data, not
// errors.
func Run(cfg Config) (*Result, error) {
	x, err := newExplorer(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Dim: cfg.Dim}
	for _, c := range x.cases {
		cs, v, err := x.exploreCase(c)
		if err != nil {
			return nil, fmt.Errorf("explore: case %s: %w", c.Name, err)
		}
		res.Cases = append(res.Cases, cs)
		res.Branches += cs.Branches
		res.Pruned += cs.Pruned
		res.Decisions += cs.Decisions
		if cs.MaxDepth > res.MaxDepth {
			res.MaxDepth = cs.MaxDepth
		}
		if v != nil {
			res.Violations = append(res.Violations, v)
		}
	}
	return res, nil
}

// explorer is one sweep's machinery.
type explorer struct {
	cfg   Config
	cases []fault.Case
	keys  []int64
	obs   *obs.Metrics
}

func newExplorer(cfg Config) (*explorer, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("explore: dim %d < 1", cfg.Dim)
	}
	if cfg.RecvTimeout == 0 {
		cfg.RecvTimeout = 10 * time.Second
	}
	cases := cfg.Cases
	if cases == nil {
		cases = fault.SingleFaultCases(cfg.Dim)
	}
	m := cfg.Obs
	if m == nil {
		m = obs.DefaultMetrics()
	}
	return &explorer{cfg: cfg, cases: cases, keys: Workload(cfg.Dim), obs: m}, nil
}

// enumSched drives one branch of the DFS: decisions below the prefix
// re-take the recorded action (matched positionally by identity —
// deterministic re-execution presents the identical Enabled set), and
// everything beyond resolves canonically (choice 0).
type enumSched struct {
	prefix   []simnet.Action
	mismatch bool
}

func (s *enumSched) Controlled() bool { return true }

func (s *enumSched) Pick(d simnet.Decision) int {
	if d.Point < len(s.prefix) {
		want := s.prefix[d.Point]
		for i, a := range d.Enabled {
			if want.Same(a) {
				return i
			}
		}
		// The replayed prefix no longer matches the enabled set: the
		// system re-executed differently, which breaks the stateless
		// DFS's soundness. Flag it; the explorer aborts the sweep.
		s.mismatch = true
		return 0
	}
	return 0
}

// branchRun is one executed schedule.
type branchRun struct {
	steps []simnet.Step
	diag  Diagnosis
	dump  *forensic.Report
	// verifyErr is the checker's complaint about the output, nil when
	// it verified (meaningless for Detected runs).
	verifyErr error
	// detected mirrors Outcome.Detected().
	detected bool
}

// runOnce executes the case once under the given controlled scheduler
// and classifies the branch.
func (x *explorer) runOnce(c fault.Case, sched simnet.Scheduler) (branchRun, error) {
	n := 1 << uint(x.cfg.Dim)
	flight := forensic.New(0)
	nw, err := simnet.New(simnet.Config{
		Dim:         x.cfg.Dim,
		RecvTimeout: x.cfg.RecvTimeout,
		Sched:       sched,
		Flight:      flight,
	})
	if err != nil {
		return branchRun{}, err
	}
	opts := c.Options(n)
	for i := range opts {
		if x.cfg.WeakenChecks {
			opts[i].SkipChecks = true
		}
		opts[i].Forensic = flight.Node(i)
	}
	crashed := -1
	if c.Msg == nil && c.Cmp == nil && c.Mem == nil {
		crashed = c.Crashed
	}
	out := make([]int64, n)
	progs := make([]node.Program, n)
	for id := 0; id < n; id++ {
		if id == crashed {
			continue // fail-stop from time zero: nil program
		}
		progs[id] = core.NodeProgram(x.keys[id], &out[id], opts[id])
	}
	res, err := node.RunPer(nw, progs, nil)
	if err != nil {
		return branchRun{}, err
	}
	hostErrs := core.DrainHostErrors(nw)
	oc := &core.Outcome{Sorted: out, Result: res, HostErrors: hostErrs}

	br := branchRun{steps: nw.Steps(), detected: oc.Detected()}
	br.verifyErr = checker.Verify(x.keys, out, true)
	br.diag, br.dump = diagnose(oc, br.verifyErr, flight)
	return br, nil
}

// diagnose classifies a finished run the same way the coverage matrix
// does (earliest host evidence, forensic dump attachment), extended
// with the first-divergence locator the chaostest replay cross-checks.
func diagnose(oc *core.Outcome, verifyErr error, flight *forensic.Flight) (Diagnosis, *forensic.Report) {
	d := Diagnosis{Accused: -1}
	if !oc.Detected() {
		if verifyErr != nil {
			d.Verdict = fault.SilentWrong
		} else {
			d.Verdict = fault.CorrectDespiteFault
		}
		return d, nil
	}
	d.Verdict = fault.Detected
	he, ok := fault.EarliestEvidence(oc.HostErrors)
	if !ok {
		d.Detector = "node-local"
		return d, nil
	}
	d.Predicate = he.Predicate
	d.Accused = he.Accused
	d.Stage, d.Iter = he.Stage, he.Iter
	if he.Kind == core.KindAbsence {
		d.Detector = "absence"
	} else {
		d.Detector = he.Predicate
	}
	dump := matchDump(flight, he)
	if dump != nil {
		d.DivStage, d.DivIter, d.DivOK = dump.FirstDivergence()
	}
	return d, dump
}

// matchDump pairs the earliest host evidence with the forensic dump it
// triggered, by (accuser, stage, iter, predicate); the latest dump
// stands in when none matches, mirroring fault.Result.attachForensic.
func matchDump(flight *forensic.Flight, he core.HostError) *forensic.Report {
	reports := flight.Reports()
	if len(reports) == 0 {
		return nil
	}
	for _, rep := range reports {
		if int(rep.Accuser) == he.Node && int(rep.Stage) == he.Stage &&
			int(rep.Iter) == he.Iter && rep.Predicate == he.Predicate {
			return rep
		}
	}
	return reports[len(reports)-1]
}

// checkInvariant returns the broken invariant's identifier and a
// human-readable detail, or ("", "") when the branch upheld its
// contract.
func (x *explorer) checkInvariant(c fault.Case, br branchRun) (string, string) {
	faultFree := c.Faulty() < 0
	if faultFree && !x.cfg.WeakenChecks {
		switch {
		case br.detected:
			return InvFaultFree, fmt.Sprintf("fault-free run detected: verdict %v, accused %d (%s at stage %d iter %d)",
				br.diag.Verdict, br.diag.Accused, br.diag.Detector, br.diag.Stage, br.diag.Iter)
		case br.verifyErr != nil:
			return InvFaultFree, fmt.Sprintf("fault-free output failed verification: %v", br.verifyErr)
		}
		return "", ""
	}
	if !br.detected && br.verifyErr != nil {
		return InvVerifiedOrEscalated, fmt.Sprintf("undetected run with wrong output: %v", br.verifyErr)
	}
	return "", ""
}

// exploreCase runs the stateless DFS over one case's schedule space:
// execute a branch, expand each new decision's alternatives onto the
// frontier, prune decisions whose canonical state hash was already
// expanded. Returns the tally and the first violation found (the case
// stops once falsified — one counterexample suffices).
func (x *explorer) exploreCase(c fault.Case) (CaseStats, *Violation, error) {
	cs := CaseStats{Case: c.Name}
	m := x.obs
	prune := make(map[uint64]bool)
	frontier := [][]simnet.Action{nil}
	for len(frontier) > 0 {
		if x.cfg.MaxBranches > 0 && cs.Branches >= x.cfg.MaxBranches {
			cs.Truncated = true
			break
		}
		prefix := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		sched := &enumSched{prefix: prefix}
		br, err := x.runOnce(c, sched)
		if err != nil {
			return cs, nil, err
		}
		if sched.mismatch {
			return cs, nil, fmt.Errorf("non-deterministic re-execution: prefix of %d actions diverged", len(prefix))
		}
		cs.Branches++
		cs.Decisions += len(br.steps)
		m.ExploreBranches.Inc()
		m.ExploreDecisions.Add(int64(len(br.steps)))
		if len(br.steps) > cs.MaxDepth {
			cs.MaxDepth = len(br.steps)
		}

		if inv, detail := x.checkInvariant(c, br); inv != "" {
			v, err := x.falsify(c, br, inv, detail)
			if err != nil {
				return cs, nil, err
			}
			m.ExploreCounterexamples.Inc()
			return cs, v, nil
		}

		// Expand: every decision this branch reached beyond its prefix
		// is a new choice point. A decision whose canonical state hash
		// was already expanded contributes nothing new — the subtree
		// below an identical abstract state is identical — so the rest
		// of the branch is pruned.
		for i := len(prefix); i < len(br.steps); i++ {
			st := br.steps[i]
			if x.cfg.MaxDepth > 0 && i >= x.cfg.MaxDepth {
				break
			}
			if prune[st.State] {
				cs.Pruned++
				m.ExplorePruned.Inc()
				break
			}
			prune[st.State] = true
			base := simnet.PickedActions(br.steps[:i])
			for alt := 1; alt < len(st.Enabled); alt++ {
				np := make([]simnet.Action, len(base), len(base)+1)
				copy(np, base)
				frontier = append(frontier, append(np, st.Enabled[alt]))
			}
		}
	}
	return cs, nil, nil
}

// falsify packages a failing branch as a Violation: shrink its recorded
// schedule to a 1-minimal directive list that still breaks the same
// invariant, then replay the shrunk schedule once more for the
// diagnosis and forensic dump the artifact ships with.
func (x *explorer) falsify(c fault.Case, br branchRun, inv, detail string) (*Violation, error) {
	full := simnet.PickedActions(br.steps)
	var shrinkErr error
	shrunk := ShrinkSchedule(full, func(cand []simnet.Action) bool {
		if shrinkErr != nil {
			return false
		}
		rr, err := x.runOnce(c, simnet.NewReplay(cand))
		if err != nil {
			shrinkErr = err
			return false
		}
		got, _ := x.checkInvariant(c, rr)
		return got == inv
	})
	if shrinkErr != nil {
		return nil, fmt.Errorf("shrinking: %w", shrinkErr)
	}
	rr, err := x.runOnce(c, simnet.NewReplay(shrunk))
	if err != nil {
		return nil, err
	}
	return &Violation{
		Case:      c.Name,
		Placement: c,
		Class:     c.Class,
		Invariant: inv,
		Detail:    detail,
		Schedule:  shrunk,
		Full:      full,
		Diag:      rr.diag,
		Dump:      rr.dump,
	}, nil
}
