package explore

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// TestExhaustiveDim1 runs the full single-fault sweep on the 1-cube:
// every schedule of every case must uphold its invariant, so the sweep
// returns no violations.
func TestExhaustiveDim1(t *testing.T) {
	m := obs.NewMetrics(obs.NewRegistry())
	res, err := Run(Config{Dim: 1, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("violation: case %s broke %s: %s", v.Case, v.Invariant, v.Detail)
		}
	}
	if want := len(fault.SingleFaultCases(1)); len(res.Cases) != want {
		t.Fatalf("swept %d cases, menu has %d", len(res.Cases), want)
	}
	for _, cs := range res.Cases {
		if cs.Branches < 1 {
			t.Errorf("case %s executed %d branches", cs.Case, cs.Branches)
		}
		if cs.Truncated {
			t.Errorf("case %s truncated without a cap", cs.Case)
		}
	}
	if res.Branches < len(res.Cases) {
		t.Errorf("total branches %d < cases %d", res.Branches, len(res.Cases))
	}
	if m.ExploreBranches.Value() != int64(res.Branches) {
		t.Errorf("obs explore_branches_total = %d, result says %d", m.ExploreBranches.Value(), res.Branches)
	}
	if m.ExploreDecisions.Value() != int64(res.Decisions) {
		t.Errorf("obs explore_decisions_total = %d, result says %d", m.ExploreDecisions.Value(), res.Decisions)
	}
	if m.ExplorePruned.Value() != int64(res.Pruned) {
		t.Errorf("obs explore_pruned_total = %d, result says %d", m.ExplorePruned.Value(), res.Pruned)
	}
	if m.ExploreCounterexamples.Value() != 0 {
		t.Errorf("obs explore_counterexamples_total = %d on a clean sweep", m.ExploreCounterexamples.Value())
	}
}

// keyLieCase is the canonical detected dim-2 case used across tests:
// a key lie at node 1 from stage 1, caught by honest partners.
func keyLieCase() fault.Case {
	return fault.Case{
		Name:    "msg/key-lie/n1/s1",
		Class:   fault.ClassMessage,
		Msg:     &fault.Spec{Node: 1, Strategy: fault.KeyLie, ActivateStage: 1, LieValue: 1 << 20},
		Crashed: -1,
	}
}

// memStuckCase corrupts node 0's resident key before the final
// verification round — the case whose detection the WeakenChecks hook
// turns into silent corruption.
func memStuckCase() fault.Case {
	return fault.Case{
		Name:    "mem/mem-stuck/n0",
		Class:   fault.ClassMemory,
		Mem:     &fault.MemSpec{Node: 0, Mode: fault.MemStuck, Rate: 1, Seed: 42, ActivateStage: 1, StuckValue: -7},
		Crashed: -1,
	}
}

// TestFaultedBranchingDim2 checks that a detected dim-2 case actually
// branches: the honest detectors' ERROR reports race into the host
// mailbox, and the explorer enumerates every merge order (k detectors
// yield k! interleavings, all verified-or-escalated).
func TestFaultedBranchingDim2(t *testing.T) {
	res, err := Run(Config{Dim: 2, Cases: []fault.Case{keyLieCase()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations on a healthy case: %+v", res.Violations[0])
	}
	cs := res.Cases[0]
	if cs.Branches < 2 {
		t.Fatalf("detected case explored %d branches; host-merge races should branch", cs.Branches)
	}
	if cs.Decisions == 0 {
		t.Fatalf("detected case recorded no decisions")
	}
	if cs.MaxDepth == 0 {
		t.Fatalf("max depth 0 with %d decisions", cs.Decisions)
	}
}

// TestMaxBranchesTruncates checks the branch cap marks the case
// truncated instead of looping.
func TestMaxBranchesTruncates(t *testing.T) {
	res, err := Run(Config{Dim: 2, Cases: []fault.Case{keyLieCase()}, MaxBranches: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Cases[0]
	if cs.Branches != 1 || !cs.Truncated {
		t.Fatalf("cap 1: branches=%d truncated=%v", cs.Branches, cs.Truncated)
	}
}

// TestWeakenedChecksCounterexample is the acceptance demo: with every
// node's executable assertions disabled (the test-only WeakenChecks
// hook), a memory fault that S_FT normally detects becomes silent
// corruption, and the explorer produces a shrunk, replayable
// counterexample for it.
func TestWeakenedChecksCounterexample(t *testing.T) {
	m := obs.NewMetrics(obs.NewRegistry())
	res, err := Run(Config{Dim: 1, Cases: []fault.Case{memStuckCase()}, WeakenChecks: true, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(res.Violations))
	}
	v := res.Violations[0]
	if v.Invariant != InvVerifiedOrEscalated {
		t.Fatalf("violation invariant %q", v.Invariant)
	}
	if v.Diag.Verdict != fault.SilentWrong {
		t.Fatalf("diagnosis verdict %v", v.Diag.Verdict)
	}
	if len(v.Schedule) > len(v.Full) {
		t.Fatalf("shrunk schedule (%d) longer than original (%d)", len(v.Schedule), len(v.Full))
	}
	if m.ExploreCounterexamples.Value() != 1 {
		t.Fatalf("obs explore_counterexamples_total = %d", m.ExploreCounterexamples.Value())
	}

	// The counterexample replays: the reproducer artifact round-trips
	// through JSON and the replay breaks the same invariant with the
	// same diagnosis.
	rep := v.Reproducer(1, true)
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReproducer(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("reproducer did not round-trip:\n%+v\n%+v", rep, back)
	}
	diag, inv, _, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if inv != v.Invariant {
		t.Fatalf("replay broke %q, counterexample records %q", inv, v.Invariant)
	}
	if diag != v.Diag {
		t.Fatalf("replay diagnosis %+v, counterexample records %+v", diag, v.Diag)
	}

	// Local minimality: removing any single remaining directive makes
	// the replay pass (vacuously true for an already-empty schedule).
	for i := range v.Schedule {
		cand := append(append([]simnet.Action(nil), v.Schedule[:i]...), v.Schedule[i+1:]...)
		_, inv, _, err := Replay(Reproducer{Dim: 1, Case: v.Placement, WeakenChecks: true, Schedule: cand})
		if err != nil {
			t.Fatal(err)
		}
		if inv == v.Invariant {
			t.Fatalf("schedule not 1-minimal: removing directive %d still breaks %s", i, v.Invariant)
		}
	}
}

// TestEnumSchedulerConformance extends the simnet conformance battery
// to the explorer's enumerating scheduler: an honest controlled run
// under enumSched produces the same sorted output and the same
// per-node virtual clocks as the free-running network — delivery
// mediation must not perturb virtual time.
func TestEnumSchedulerConformance(t *testing.T) {
	run := func(sched simnet.Scheduler) *core.Outcome {
		nw, err := simnet.New(simnet.Config{Dim: 2, Sched: sched})
		if err != nil {
			t.Fatal(err)
		}
		oc, err := core.Run(nw, Workload(2))
		if err != nil {
			t.Fatal(err)
		}
		return oc
	}
	free := run(nil)
	enum := run(&enumSched{})
	if !reflect.DeepEqual(free.Sorted, enum.Sorted) {
		t.Fatalf("sorted: free %v, enum %v", free.Sorted, enum.Sorted)
	}
	for id := range free.Result.Nodes {
		f, e := free.Result.Nodes[id], enum.Result.Nodes[id]
		if f.Clock != e.Clock || f.CommTicks != e.CommTicks || f.CompTicks != e.CompTicks {
			t.Errorf("node %d vticks: free (%d,%d,%d), enum (%d,%d,%d)", id,
				f.Clock, f.CommTicks, f.CompTicks, e.Clock, e.CommTicks, e.CompTicks)
		}
	}
}

// TestRecordedScheduleReplaysIdentically checks the Record→Replay loop
// on a detected case: replaying a random recorded schedule reproduces
// the identical diagnosis, including the forensic first-divergence
// locator.
func TestRecordedScheduleReplaysIdentically(t *testing.T) {
	cfg := Config{Dim: 2}
	c := keyLieCase()
	for _, seed := range []int64{1, 7, 1989} {
		sched, diag, _, err := Record(cfg, c, simnet.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		if diag.Verdict != fault.Detected {
			t.Fatalf("seed %d: verdict %v", seed, diag.Verdict)
		}
		got, inv, _, err := Replay(Reproducer{Dim: 2, Case: c, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		if inv != "" {
			t.Fatalf("seed %d: healthy replay reported violation %q", seed, inv)
		}
		if got != diag {
			t.Fatalf("seed %d: replay diagnosis %+v, recorded %+v", seed, got, diag)
		}
	}
}

// TestResultJSON keeps the sweep result serializable for cmd/explore's
// -json artifact.
func TestResultJSON(t *testing.T) {
	res, err := Run(Config{Dim: 1, Cases: []fault.Case{{Name: "none", Crashed: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}
