package reliablesort

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/blocksort"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
)

// TestConcurrentSortIsolation is the multi-tenant audit for Sort: N
// concurrent calls with mixed dimensions and directions, one of them
// fault-injected, each with its own Observer and Flight. Run under
// -race this shakes out shared mutable state; the assertions pin that
// per-job observability does not bleed — the faulty job's accusations
// and recovery telemetry land in its observer and nobody else's, and
// every job's traffic counters match its own Stats.
func TestConcurrentSortIsolation(t *testing.T) {
	const jobs = 8
	const faultyJob = 3
	const faultSite = 1

	type result struct {
		keys   []int64
		out    []int64
		stats  Stats
		err    error
		o      *obs.Observer
		flight *forensic.Flight
		desc   bool
	}
	results := make([]result, jobs)

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		n := 16 + rng.Intn(48)
		keys := make([]int64, n)
		for j := range keys {
			keys[j] = rng.Int63n(100000) - 50000
		}
		r := &results[i]
		r.keys = keys
		r.o = obs.New(obs.NewRegistry(), 0)
		r.flight = forensic.New(0)
		r.desc = i%3 == 0
		opts := Options{
			Descending:  r.desc,
			Dim:         2 + i%2,
			RecvTimeout: 500 * time.Millisecond,
			AutoRecover: true,
			MaxAttempts: 6,
			Spares:      1,
			Seed:        int64(i + 1),
			Sleep:       func(time.Duration) {},
			Obs:         r.o,
			Flight:      r.flight,
		}
		if i == faultyJob {
			opts.Inject = chaosInjector(fault.KeyLie, faultSite, true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.out, r.stats, r.err = Sort(keys, opts)
		}()
	}
	wg.Wait()

	for i := range results {
		r := &results[i]
		if r.err != nil {
			t.Fatalf("job %d: %v", i, r.err)
		}
		want := append([]int64(nil), r.keys...)
		sort.Slice(want, func(a, b int) bool {
			if r.desc {
				return want[a] > want[b]
			}
			return want[a] < want[b]
		})
		for j := range want {
			if r.out[j] != want[j] {
				t.Fatalf("job %d: wrong key at %d", i, j)
			}
		}

		// Traffic isolation: the job's own observer counted exactly the
		// traffic its Stats reports for the successful attempt — plus
		// whatever its own failed attempts cost — never another job's.
		var obsMsgs int64
		for _, c := range r.o.M.MsgsTotal {
			obsMsgs += c.Value()
		}
		if obsMsgs < r.stats.Msgs {
			t.Errorf("job %d: observer saw %d msgs, stats report %d", i, obsMsgs, r.stats.Msgs)
		}
		if i != faultyJob && obsMsgs != r.stats.Msgs {
			t.Errorf("job %d (honest): observer saw %d msgs, stats report %d — cross-job bleed?",
				i, obsMsgs, r.stats.Msgs)
		}

		// Accusation isolation: only the faulty job's observer and
		// journal carry accusations, and only its recovery report
		// quarantines anyone. (Exact localization of the suspect is
		// chaos_test's concern; here the property is that the evidence
		// lands in the right job's telemetry.)
		acc := r.o.M.Accusations.Value()
		var accused []int
		for _, ev := range r.o.J.Events() {
			if ev.Kind == obs.EvAccusation {
				accused = append(accused, int(ev.Aux))
			}
		}
		if i == faultyJob {
			if acc == 0 || len(accused) == 0 {
				t.Errorf("faulty job: no accusations recorded (counter %d, journal %d)", acc, len(accused))
			}
			if r.stats.Recovery == nil || len(r.stats.Recovery.Quarantined) == 0 {
				t.Errorf("faulty job: persistent fault recovered without quarantine: %+v", r.stats.Recovery)
			} else if q := r.stats.Recovery.Quarantined[0]; q != faultSite {
				t.Errorf("faulty job: quarantined node %d, fault was at %d", q, faultSite)
			}
			if r.stats.Attempts < 2 {
				t.Errorf("faulty job: cleared in %d attempt(s)?", r.stats.Attempts)
			}
			if r.o.M.RecoveryRetries.Value() == 0 {
				t.Error("faulty job: recovery retries not recorded in its own observer")
			}
			if len(r.flight.Reports()) == 0 {
				t.Error("faulty job: no forensic report")
			}
		} else {
			if acc != 0 || len(accused) != 0 {
				t.Errorf("honest job %d: %d accusations bled into its observer (journal: %v)",
					i, acc, accused)
			}
			if r.o.M.RecoveryRetries.Value() != 0 {
				t.Errorf("honest job %d: foreign recovery retries in its observer", i)
			}
			if n := len(r.flight.Reports()); n != 0 {
				t.Errorf("honest job %d: %d foreign forensic reports", i, n)
			}
		}
	}
}

// TestSortNeverMutatesInput is the aliasing property test: across
// seeds, directions, and faulty/clean runs — including quarantine
// re-runs that restart from the host-held checkpoint — the caller's
// keys slice stays bit-identical.
func TestSortNeverMutatesInput(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]int64, 16+rng.Intn(32))
			for j := range keys {
				keys[j] = rng.Int63n(10000) - 5000
			}
			snapshot := append([]int64(nil), keys...)

			desc := seed%2 == 1
			// A transient memory-corruption fault at node 2 forces the
			// detect → retry-from-checkpoint path: the attempt most
			// likely to re-read (or worse, re-write) caller memory.
			inject := func(attempt, dim int, physical []int) []blocksort.Options {
				opts := make([]blocksort.Options, 1<<uint(dim))
				if attempt > 0 {
					return opts
				}
				for l, ph := range physical {
					if ph == 2 {
						spec := fault.MemSpec{Node: l, Mode: fault.MemStuck, Rate: 1,
							Seed: seed, ActivateStage: 1, StuckValue: -99}
						opts[l] = blocksort.Options{SkipChecks: true, CorruptMemory: spec.Corruptor()}
						break
					}
				}
				return opts
			}
			out, stats, err := Sort(keys, Options{
				Descending:  desc,
				Dim:         2,
				RecvTimeout: 500 * time.Millisecond,
				AutoRecover: true,
				MaxAttempts: 6,
				Sleep:       func(time.Duration) {},
				Seed:        seed + 1,
				Inject:      inject,
			})
			if err != nil {
				t.Fatalf("faulty run did not recover: %v", err)
			}
			if stats.Attempts < 2 {
				t.Fatalf("transient memory fault never forced a retry (attempts: %d)", stats.Attempts)
			}
			if !IsSorted(out, Options{Descending: desc}) {
				t.Fatalf("unsorted output: %v", out)
			}
			for j := range snapshot {
				if keys[j] != snapshot[j] {
					t.Fatalf("caller's keys[%d] mutated: %d -> %d", j, snapshot[j], keys[j])
				}
			}
		})
	}
}
