// Package reliablesort is the high-level convenience API over the
// fault-tolerant sorting machinery: it takes an ordinary Go slice,
// chooses a cube size, pads to the power-of-two geometry the bitonic
// algorithms require, distributes the data, runs the fault-tolerant
// block sort, verifies the result against the Theorem 1 oracle, and
// returns a plain sorted slice.
//
// This is the entry point a downstream user who just wants "a sort
// that can never silently lie" calls; the packages it composes
// (internal/core, internal/blocksort, internal/simnet) remain
// available for applications that manage their own distribution.
package reliablesort

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/simnet"
)

// ErrFaultDetected is returned when the constraint predicate
// fail-stopped the sort. The system delivered no (possibly corrupt)
// result; Diagnose the returned *FaultError for details.
var ErrFaultDetected = errors.New("reliablesort: fault detected, sort fail-stopped")

// FaultError carries the diagnostics of a fail-stopped run.
type FaultError struct {
	// HostErrors are the ERROR signals the host collected.
	HostErrors []core.HostError
	// NodeErr is the first node-level error.
	NodeErr error
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	if len(e.HostErrors) > 0 {
		he := e.HostErrors[0]
		return fmt.Sprintf("reliablesort: fault detected: node %d stage %d: %s predicate: %s",
			he.Node, he.Stage, he.Predicate, he.Detail)
	}
	return fmt.Sprintf("reliablesort: fault detected: %v", e.NodeErr)
}

// Unwrap exposes ErrFaultDetected for errors.Is.
func (e *FaultError) Unwrap() error { return ErrFaultDetected }

// Options configures a Sort call. The zero value sorts ascending on an
// automatically sized cube.
type Options struct {
	// Descending sorts in non-increasing order.
	Descending bool
	// Dim forces the hypercube dimension; 0 means choose automatically
	// (the smallest cube that keeps blocks reasonably sized, capped at
	// MaxAutoDim).
	Dim int
	// RecvTimeout bounds absence detection; 0 means 30 seconds.
	RecvTimeout time.Duration
}

// MaxAutoDim caps the automatically chosen cube dimension (64 nodes):
// beyond that the goroutine count costs more than the simulated
// parallelism returns.
const MaxAutoDim = 6

// Stats reports what a Sort run cost.
type Stats struct {
	// Nodes and BlockLen are the chosen geometry (including padding).
	Nodes    int
	BlockLen int
	// Padded is the number of sentinel keys added to fill the geometry.
	Padded int
	// Makespan is the virtual completion time in ticks.
	Makespan int64
	// Msgs and Bytes are the network traffic totals.
	Msgs  int64
	Bytes int64
}

// Sort returns a new slice with the elements of keys in the requested
// order, sorted by the fault-tolerant distributed block bitonic sort
// and verified end to end. It returns a *FaultError (matching
// ErrFaultDetected) if any constraint predicate fired — by Theorem 3
// a single Byzantine processor cannot cause a silently wrong result.
func Sort(keys []int64, opts Options) ([]int64, Stats, error) {
	var stats Stats
	if len(keys) == 0 {
		return []int64{}, stats, nil
	}
	dim := opts.Dim
	if dim == 0 {
		dim = autoDim(len(keys))
	}
	if dim < 0 || dim > hypercube.MaxDim {
		return nil, stats, fmt.Errorf("reliablesort: dimension %d out of range [0,%d]", dim, hypercube.MaxDim)
	}
	timeout := opts.RecvTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}

	n := 1 << uint(dim)
	m := (len(keys) + n - 1) / n
	if m == 0 {
		m = 1
	}
	total := n * m
	stats.Nodes = n
	stats.BlockLen = m
	stats.Padded = total - len(keys)

	// Pad with +inf sentinels so they land at the top of the ascending
	// order and can be stripped from the tail. For a descending sort
	// we negate all keys, sort ascending, and negate back, so the
	// sentinel is +inf in the negated domain as well. Math.MaxInt64
	// inputs are therefore rejected rather than silently confused with
	// sentinels (MinInt64 likewise for descending).
	working := make([]int64, 0, total)
	for _, k := range keys {
		if opts.Descending {
			if k == math.MinInt64 {
				return nil, stats, fmt.Errorf("reliablesort: key %d is reserved for padding in descending sorts", k)
			}
			working = append(working, -k)
		} else {
			if k == math.MaxInt64 {
				return nil, stats, fmt.Errorf("reliablesort: key %d is reserved for padding", k)
			}
			working = append(working, k)
		}
	}
	for i := len(working); i < total; i++ {
		working = append(working, math.MaxInt64)
	}

	blocks := make([][]int64, n)
	for i := range blocks {
		blocks[i] = working[i*m : (i+1)*m : (i+1)*m]
	}

	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: timeout})
	if err != nil {
		return nil, stats, fmt.Errorf("reliablesort: %w", err)
	}
	oc, err := blocksort.RunFT(nw, blocks)
	if err != nil {
		return nil, stats, fmt.Errorf("reliablesort: %w", err)
	}
	stats.Makespan = int64(oc.Result.Makespan())
	stats.Msgs = oc.Result.Metrics.TotalMsgs()
	stats.Bytes = oc.Result.Metrics.TotalBytes()
	if oc.Detected() {
		return nil, stats, &FaultError{HostErrors: oc.HostErrors, NodeErr: oc.Result.FirstNodeErr()}
	}

	flat := make([]int64, 0, total)
	for _, b := range oc.SortedBlocks {
		flat = append(flat, b...)
	}
	// Belt and braces: the distributed predicates already verified the
	// run; re-verify locally against the Theorem 1 oracle so the
	// library's contract does not rest on a single mechanism.
	if err := checker.Verify(working, flat, true); err != nil {
		return nil, stats, fmt.Errorf("reliablesort: post-verification: %w", err)
	}
	flat = flat[:len(keys)] // strip sentinels from the tail
	out := make([]int64, len(flat))
	for i, v := range flat {
		if opts.Descending {
			out[i] = -v
		} else {
			out[i] = v
		}
	}
	return out, stats, nil
}

// autoDim picks the smallest dimension whose cube keeps blocks at or
// under 512 keys, capped at MaxAutoDim.
func autoDim(keyCount int) int {
	dim := 0
	for dim < MaxAutoDim && keyCount > (1<<uint(dim))*512 {
		dim++
	}
	if dim < 2 && keyCount >= 4 {
		dim = 2 // a 1- or 2-node "cube" defeats the purpose
	}
	return dim
}

// IsSorted reports whether xs is ordered per the options — a
// convenience for callers asserting on results.
func IsSorted(xs []int64, opts Options) bool {
	for i := 1; i < len(xs); i++ {
		if opts.Descending && xs[i-1] < xs[i] {
			return false
		}
		if !opts.Descending && xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
