// Package reliablesort is the high-level convenience API over the
// fault-tolerant sorting machinery: it takes an ordinary Go slice,
// chooses a cube size, pads to the power-of-two geometry the bitonic
// algorithms require, distributes the data, runs the fault-tolerant
// block sort, verifies the result against the Theorem 1 oracle, and
// returns a plain sorted slice.
//
// With Options.AutoRecover the call additionally closes the paper's
// detect → act loop: a recovery supervisor (internal/recovery)
// diagnoses every fail-stop, retries transient faults with capped
// exponential backoff, quarantines persistently accused nodes onto the
// next-smaller subcube, and escalates with a structured
// *recovery.ExhaustedError when the attempt budget is spent. In every
// case the contract is unchanged: the caller receives a verified
// result or an error — never an unverified slice.
//
// This is the entry point a downstream user who just wants "a sort
// that can never silently lie" calls; the packages it composes
// (internal/core, internal/blocksort, internal/simnet,
// internal/recovery) remain available for applications that manage
// their own distribution.
package reliablesort

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blocksort"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/recovery"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// ErrFaultDetected is returned when the constraint predicate
// fail-stopped the sort. The system delivered no (possibly corrupt)
// result; Diagnose the returned *FaultError for details.
var ErrFaultDetected = errors.New("reliablesort: fault detected, sort fail-stopped")

// FaultError carries the diagnostics of a fail-stopped run.
type FaultError struct {
	// HostErrors are the ERROR signals the host collected.
	HostErrors []core.HostError
	// NodeErr is the first node-level error.
	NodeErr error
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	if len(e.HostErrors) > 0 {
		he := e.HostErrors[0]
		return fmt.Sprintf("reliablesort: fault detected: node %d stage %d: %s predicate: %s",
			he.Node, he.Stage, he.Predicate, he.Detail)
	}
	return fmt.Sprintf("reliablesort: fault detected: %v", e.NodeErr)
}

// Unwrap exposes ErrFaultDetected for errors.Is.
func (e *FaultError) Unwrap() error { return ErrFaultDetected }

// Options configures a Sort call. The zero value sorts ascending on an
// automatically sized cube and fail-stops on the first detected fault.
type Options struct {
	// Descending sorts in non-increasing order.
	Descending bool
	// Dim forces the hypercube dimension; 0 means choose automatically
	// (the smallest cube that keeps blocks reasonably sized, capped at
	// MaxAutoDim).
	Dim int
	// RecvTimeout bounds absence detection; 0 means 30 seconds.
	RecvTimeout time.Duration

	// AutoRecover turns Sort into a self-healing call: instead of
	// returning a *FaultError on the first detected fail-stop, the
	// recovery supervisor diagnoses the ERROR evidence, retries
	// transient faults with backoff, quarantines persistently accused
	// nodes (re-running degraded on the next-smaller subcube, with the
	// host-held input as the reliable checkpoint), and escalates with
	// a *recovery.ExhaustedError when MaxAttempts is spent.
	AutoRecover bool
	// MaxAttempts bounds the total sort attempts under AutoRecover,
	// quarantined re-runs included; 0 means the supervisor default (4).
	MaxAttempts int
	// Backoff shapes the waits between attempts under AutoRecover; the
	// zero value selects capped exponential backoff with equal jitter
	// (10ms base, 2s cap, 50% jitter).
	Backoff recovery.Backoff
	// MinDim floors the quarantine shrink; 0 means the supervisor
	// default (1).
	MinDim int
	// Spares is the number of spare physical nodes available under
	// AutoRecover: labels 2^dim .. 2^dim+Spares-1 are pre-registered
	// as idle endpoints on every attempt's network, and on a
	// persistent accusation the supervisor substitutes the next spare
	// at the suspect's logical slot instead of shrinking the cube —
	// full capacity is preserved until the pool runs dry, after which
	// quarantine falls back to the subcube shrink.
	Spares int
	// Seed makes the backoff jitter deterministic; 0 uses a fixed
	// default seed.
	Seed int64
	// Sleep replaces time.Sleep between attempts (tests inject a
	// no-op); nil sleeps for real.
	Sleep func(time.Duration)
	// Inject, when non-nil, supplies per-node fault-injection options
	// for each attempt — the hook the chaos tests and demos use to
	// place Byzantine behaviours. physical[l] is the original-cube
	// label of logical node l, so an injector can follow a "physical"
	// fault through quarantine remappings. Production callers leave it
	// nil.
	Inject func(attempt, dim int, physical []int) []blocksort.Options
	// Obs, when non-nil, receives the full event stream of every
	// attempt: stage/round spans, Φ evaluations, merge-compare counts,
	// accusations, and (under AutoRecover) attempt, quarantine,
	// substitution, and backoff events. Message and byte counters flow
	// to the metrics registry backing Obs.M. Recording never charges
	// virtual time, so instrumented runs cost the same ticks as bare
	// ones.
	Obs *obs.Observer
	// Parallelism caps the per-node worker count for the data-parallel
	// merge-split and local-sort paths (threaded through to
	// blocksort.Options.Parallelism on every attempt): <= 0 means
	// GOMAXPROCS. Worker count never changes outputs or virtual-time
	// charges, only wall-clock time.
	Parallelism int
	// Flight, when non-nil, attaches causal flight recording to every
	// attempt: the transport stamps each message with a trace trailer,
	// per-node recorders capture sends/receives/predicate evaluations,
	// and any accusation or supervisor quarantine produces a forensic
	// report (serve them with Flight.Handler, or read Flight.Reports).
	// The trailer is excluded from cost and byte accounting, so traced
	// runs report identical virtual-time results.
	Flight *forensic.Flight

	// NewNetwork overrides the transport constructor used for each
	// attempt; nil means internal/simnet. The returned network must
	// honor the transport contract (including pre-registering
	// cfg.Spares idle endpoints beyond the cube). When the attempt
	// finishes, a network with a Release(clean bool) method is released
	// with clean == (attempt verified) — the seam internal/server's
	// transport pool uses to recycle healthy networks; otherwise a
	// network with a Close method is closed. The chaos harness injects
	// internal/tcpnet here to drive the same recovery path over real
	// sockets.
	NewNetwork func(cfg NetConfig) (transport.Network, error)
}

// NetConfig is what Sort asks of a transport constructor for one
// attempt. Both internal/simnet and internal/tcpnet accept these
// fields verbatim.
type NetConfig struct {
	// Dim is the hypercube dimension for the attempt.
	Dim int
	// Spares is the number of idle spare endpoints to pre-register
	// beyond the cube (labels 2^Dim .. 2^Dim+Spares-1).
	Spares int
	// RecvTimeout bounds absence detection.
	RecvTimeout time.Duration
	// Obs receives the transport's message/byte counters (may be nil).
	Obs *obs.Metrics
	// Flight, when non-nil, makes the transport stamp causal trace
	// trailers and record send/recv events per node.
	Flight *forensic.Flight
}

// MaxAutoDim caps the automatically chosen cube dimension (64 nodes):
// beyond that the goroutine count costs more than the simulated
// parallelism returns.
const MaxAutoDim = 6

// Stats reports what a Sort run cost. With AutoRecover the geometry
// and traffic fields describe the successful attempt; Recovery holds
// the per-attempt history including the cost of wasted attempts.
type Stats struct {
	// Nodes and BlockLen are the chosen geometry (including padding).
	Nodes    int
	BlockLen int
	// Padded is the number of sentinel keys added to fill the geometry.
	Padded int
	// Makespan is the virtual completion time in ticks.
	Makespan int64
	// Msgs and Bytes are the network traffic totals.
	Msgs  int64
	Bytes int64
	// Attempts is how many sort attempts ran (1 without AutoRecover).
	Attempts int
	// Recovery is the supervisor's telemetry when AutoRecover ran:
	// attempt history, suspects, quarantined nodes, backoff waits, and
	// the virtual-time cost of wasted attempts. Nil for single-shot
	// calls and for AutoRecover calls that escalated (the same history
	// then rides the *recovery.ExhaustedError).
	Recovery *recovery.Report
}

// Sort returns a new slice with the elements of keys in the requested
// order, sorted by the fault-tolerant distributed block bitonic sort
// and verified end to end. Without AutoRecover it returns a
// *FaultError (matching ErrFaultDetected) if any constraint predicate
// fired — by Theorem 3 a single Byzantine processor cannot cause a
// silently wrong result. With AutoRecover it instead supervises
// retries and quarantine as described on Options, returning a
// *recovery.ExhaustedError once the attempt budget is spent.
func Sort(keys []int64, opts Options) ([]int64, Stats, error) {
	var stats Stats
	if len(keys) == 0 {
		return []int64{}, stats, nil
	}
	dim := opts.Dim
	if dim == 0 {
		dim = autoDim(len(keys))
	}
	if dim < 0 || dim > hypercube.MaxDim {
		return nil, stats, fmt.Errorf("reliablesort: dimension %d out of range [0,%d]", dim, hypercube.MaxDim)
	}
	timeout := opts.RecvTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}

	// Negate descending inputs so one ascending machine serves both
	// directions; pad with +inf sentinels that land at the top of the
	// ascending order and can be stripped from the tail. Math.MaxInt64
	// inputs are therefore rejected rather than silently confused with
	// sentinels (MinInt64 likewise for descending). base is the
	// host-held reliable checkpoint every recovery attempt restarts
	// from.
	base := make([]int64, 0, len(keys))
	for _, k := range keys {
		if opts.Descending {
			if k == math.MinInt64 {
				return nil, stats, fmt.Errorf("reliablesort: key %d is reserved for padding in descending sorts", k)
			}
			base = append(base, -k)
		} else {
			if k == math.MaxInt64 {
				return nil, stats, fmt.Errorf("reliablesort: key %d is reserved for padding", k)
			}
			base = append(base, k)
		}
	}

	newNet := opts.NewNetwork
	if newNet == nil {
		newNet = simnetNetwork
	}

	if !opts.AutoRecover {
		// Single-shot calls honor Inject too (attempt 0, identity
		// physical mapping), so fail-stop-only deployments can still be
		// chaos-tested through the same hook.
		var nodeOpts []blocksort.Options
		if opts.Inject != nil {
			physical := make([]int, 1<<uint(dim))
			for i := range physical {
				physical[i] = i
			}
			nodeOpts = opts.Inject(0, dim, physical)
		}
		flat, at, _, err := runAttempt(base, NetConfig{Dim: dim, RecvTimeout: timeout, Flight: opts.Flight}, newNet, nodeOpts, opts.Obs, opts.Parallelism, opts.Flight)
		stats.fromAttempt(at)
		stats.Attempts = 1
		if err != nil {
			return nil, stats, err
		}
		return finish(flat, len(keys), opts.Descending), stats, nil
	}

	var result []int64
	var okStats attemptStats
	runner := func(p recovery.Plan) recovery.Outcome {
		var nodeOpts []blocksort.Options
		if opts.Inject != nil {
			nodeOpts = opts.Inject(p.Attempt, p.Dim, p.Physical)
		}
		cfg := NetConfig{Dim: p.Dim, Spares: len(p.Spares), RecvTimeout: timeout, Flight: opts.Flight}
		flat, at, hostErrs, err := runAttempt(base, cfg, newNet, nodeOpts, opts.Obs, opts.Parallelism, opts.Flight)
		if err == nil {
			result = flat
			okStats = at
		}
		return recovery.Outcome{HostErrors: hostErrs, Cost: at.makespan, Err: err}
	}
	rep, err := recovery.Supervise(dim, runner, recovery.Policy{
		MaxAttempts:   opts.MaxAttempts,
		Backoff:       opts.Backoff,
		MinDim:        opts.MinDim,
		Spares:        spareLabels(dim, opts.Spares),
		Seed:          opts.Seed,
		Sleep:         opts.Sleep,
		PersistStreak: 2,
		Obs:           opts.Obs,
		Flight:        opts.Flight,
	})
	if err != nil {
		var ex *recovery.ExhaustedError
		if errors.As(err, &ex) {
			stats.Attempts = len(ex.Attempts)
		}
		return nil, stats, fmt.Errorf("reliablesort: %w", err)
	}
	stats.fromAttempt(okStats)
	stats.Attempts = len(rep.Attempts)
	stats.Recovery = rep
	return finish(result, len(keys), opts.Descending), stats, nil
}

// attemptStats is the geometry and cost of one attempt.
type attemptStats struct {
	nodes    int
	blockLen int
	padded   int
	makespan int64
	msgs     int64
	bytes    int64
}

func (s *Stats) fromAttempt(at attemptStats) {
	s.Nodes = at.nodes
	s.BlockLen = at.blockLen
	s.Padded = at.padded
	s.Makespan = at.makespan
	s.Msgs = at.msgs
	s.Bytes = at.bytes
}

// simnetNetwork is the default transport constructor: a fresh simnet
// cube per attempt, with cfg.Spares idle spare endpoints beyond it.
func simnetNetwork(cfg NetConfig) (transport.Network, error) {
	return simnet.New(simnet.Config{
		Dim:         cfg.Dim,
		Spares:      cfg.Spares,
		RecvTimeout: cfg.RecvTimeout,
		Obs:         cfg.Obs,
		Flight:      cfg.Flight,
	})
}

// spareLabels returns the physical labels of the spare pool: the
// count labels immediately above the initial cube.
func spareLabels(dim, count int) []int {
	if count <= 0 {
		return nil
	}
	n := 1 << uint(dim)
	out := make([]int, count)
	for i := range out {
		out[i] = n + i
	}
	return out
}

// runAttempt executes one fault-tolerant block sort of base (the
// negated-and-unpadded checkpoint) on a fresh cube of the given
// dimension, and post-verifies the output against the Theorem 1
// oracle. It returns the full padded ascending sequence; err is nil
// exactly when that sequence is verified.
func runAttempt(base []int64, cfg NetConfig, newNet func(NetConfig) (transport.Network, error), nodeOpts []blocksort.Options, o *obs.Observer, parallelism int, flight *forensic.Flight) (flatOut []int64, at attemptStats, hostErrs []core.HostError, err error) {
	n := 1 << uint(cfg.Dim)
	m := (len(base) + n - 1) / n
	if m == 0 {
		m = 1
	}
	total := n * m
	at.nodes = n
	at.blockLen = m
	at.padded = total - len(base)

	working := make([]int64, 0, total)
	working = append(working, base...)
	for i := len(working); i < total; i++ {
		working = append(working, math.MaxInt64)
	}
	blocks := make([][]int64, n)
	for i := range blocks {
		blocks[i] = working[i*m : (i+1)*m : (i+1)*m]
	}

	cfg.Obs = o.Metrics()
	nw, err := newNet(cfg)
	if err != nil {
		return nil, at, nil, fmt.Errorf("reliablesort: %w", err)
	}
	// Lifecycle: a pooled transport (internal/server) implements
	// Release and decides for itself whether to recycle or rebuild —
	// clean is true exactly when the attempt verified, so a
	// fault-stricken network (which may still have frames in flight) is
	// never returned to the pool as healthy. Otherwise, tcpnet (and
	// other socket-backed transports) hold real resources per attempt
	// and are closed here; simnet has no Close and is left to the GC.
	if rel, ok := nw.(interface{ Release(clean bool) }); ok {
		defer func() { rel.Release(err == nil) }()
	} else if c, ok := nw.(interface{ Close() }); ok {
		defer c.Close()
	}
	if o != nil || parallelism > 0 || flight != nil {
		if nodeOpts == nil {
			nodeOpts = make([]blocksort.Options, n)
		}
		for i := range nodeOpts {
			nodeOpts[i].Obs = o
			nodeOpts[i].Parallelism = parallelism
			nodeOpts[i].Forensic = flight.Node(i)
		}
	}
	oc, err := blocksort.RunFTWithOptions(nw, blocks, nodeOpts)
	if err != nil {
		return nil, at, nil, fmt.Errorf("reliablesort: %w", err)
	}
	at.makespan = int64(oc.Result.Makespan())
	at.msgs = oc.Result.Metrics.TotalMsgs()
	at.bytes = oc.Result.Metrics.TotalBytes()
	if oc.Detected() {
		return nil, at, oc.HostErrors, &FaultError{HostErrors: oc.HostErrors, NodeErr: oc.Result.FirstNodeErr()}
	}

	flat := make([]int64, 0, total)
	for _, b := range oc.SortedBlocks {
		flat = append(flat, b...)
	}
	// Belt and braces: the distributed predicates already verified the
	// run; re-verify locally against the Theorem 1 oracle so the
	// library's contract does not rest on a single mechanism.
	if err := checker.Verify(working, flat, true); err != nil {
		return nil, at, oc.HostErrors, fmt.Errorf("reliablesort: post-verification: %w", err)
	}
	return flat, at, oc.HostErrors, nil
}

// finish strips the padding sentinels from the tail of the verified
// ascending sequence and undoes the descending negation.
func finish(flat []int64, keep int, descending bool) []int64 {
	flat = flat[:keep]
	out := make([]int64, len(flat))
	for i, v := range flat {
		if descending {
			out[i] = -v
		} else {
			out[i] = v
		}
	}
	return out
}

// autoDim picks the smallest dimension whose cube keeps blocks at or
// under 512 keys, capped at MaxAutoDim.
func autoDim(keyCount int) int {
	dim := 0
	for dim < MaxAutoDim && keyCount > (1<<uint(dim))*512 {
		dim++
	}
	if dim < 2 && keyCount >= 4 {
		dim = 2 // a 1- or 2-node "cube" defeats the purpose
	}
	return dim
}

// IsSorted reports whether xs is ordered per the options — a
// convenience for callers asserting on results.
func IsSorted(xs []int64, opts Options) bool {
	for i := 1; i < len(xs); i++ {
		if opts.Descending && xs[i-1] < xs[i] {
			return false
		}
		if !opts.Descending && xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
