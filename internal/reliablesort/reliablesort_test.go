package reliablesort

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSortBasic(t *testing.T) {
	tests := []struct {
		name string
		in   []int64
		opts Options
	}{
		{"empty", nil, Options{}},
		{"single", []int64{5}, Options{}},
		{"power of two", []int64{4, 1, 3, 2}, Options{}},
		{"odd count pads", []int64{9, 7, 8, 2, 5}, Options{}},
		{"duplicates", []int64{3, 3, 3, 1, 1}, Options{}},
		{"negative keys", []int64{-5, 7, -1, 0}, Options{}},
		{"descending", []int64{1, 9, 4, 6, 2}, Options{Descending: true}},
		{"forced dim", []int64{5, 4, 3, 2, 1}, Options{Dim: 3}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out, stats, err := Sort(tc.in, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(tc.in) {
				t.Fatalf("len(out) = %d, want %d", len(out), len(tc.in))
			}
			if !IsSorted(out, tc.opts) {
				t.Fatalf("out = %v not sorted (desc=%v)", out, tc.opts.Descending)
			}
			want := append([]int64{}, tc.in...)
			sort.Slice(want, func(i, j int) bool {
				if tc.opts.Descending {
					return want[i] > want[j]
				}
				return want[i] < want[j]
			})
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("out = %v, want %v", out, want)
				}
			}
			if len(tc.in) > 0 && stats.Nodes == 0 {
				t.Error("stats not populated")
			}
			if len(tc.in) > 0 && stats.Nodes*stats.BlockLen != len(tc.in)+stats.Padded {
				t.Errorf("geometry inconsistent: %+v for %d keys", stats, len(tc.in))
			}
		})
	}
}

func TestSortRejectsSentinelKeys(t *testing.T) {
	if _, _, err := Sort([]int64{1, math.MaxInt64}, Options{}); err == nil {
		t.Error("MaxInt64 key ascending: want error")
	}
	if _, _, err := Sort([]int64{1, math.MinInt64}, Options{Descending: true}); err == nil {
		t.Error("MinInt64 key descending: want error")
	}
	// The mirror cases are fine.
	if _, _, err := Sort([]int64{1, math.MinInt64}, Options{}); err != nil {
		t.Errorf("MinInt64 ascending should sort: %v", err)
	}
	if _, _, err := Sort([]int64{1, math.MaxInt64}, Options{Descending: true}); err != nil {
		t.Errorf("MaxInt64 descending should sort: %v", err)
	}
}

func TestSortRejectsBadDim(t *testing.T) {
	if _, _, err := Sort([]int64{1, 2}, Options{Dim: 99}); err == nil {
		t.Error("dim 99: want error")
	}
}

func TestAutoDim(t *testing.T) {
	tests := []struct{ keys, want int }{
		{1, 0},
		{3, 0},
		{4, 2},
		{512, 2},
		{513 * 4, 3},
		{1 << 20, MaxAutoDim},
	}
	for _, tc := range tests {
		if got := autoDim(tc.keys); got != tc.want {
			t.Errorf("autoDim(%d) = %d, want %d", tc.keys, got, tc.want)
		}
	}
}

func TestSortMatchesStdlibProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(raw []int16, desc bool) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		out, _, err := Sort(in, Options{Descending: desc})
		if err != nil {
			return false
		}
		want := append([]int64{}, in...)
		sort.Slice(want, func(i, j int) bool {
			if desc {
				return want[i] > want[j]
			}
			return want[i] < want[j]
		})
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int64{1, 2, 2}, Options{}) || IsSorted([]int64{2, 1}, Options{}) {
		t.Error("ascending IsSorted wrong")
	}
	if !IsSorted([]int64{3, 2, 2}, Options{Descending: true}) || IsSorted([]int64{1, 2}, Options{Descending: true}) {
		t.Error("descending IsSorted wrong")
	}
}

func TestFaultErrorWrapping(t *testing.T) {
	fe := &FaultError{NodeErr: errors.New("x")}
	if !errors.Is(fe, ErrFaultDetected) {
		t.Error("FaultError does not unwrap to ErrFaultDetected")
	}
	if fe.Error() == "" {
		t.Error("empty error text")
	}
	fe2 := &FaultError{HostErrors: []core.HostError{{
		Node: 3, Stage: 1, Predicate: "consistency", Detail: "copies differ",
	}}}
	msg := fe2.Error()
	for _, want := range []string{"node 3", "consistency", "copies differ"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestStatsReportPadding(t *testing.T) {
	_, stats, err := Sort([]int64{3, 1, 2}, Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 4 || stats.BlockLen != 1 || stats.Padded != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Makespan <= 0 || stats.Msgs <= 0 || stats.Bytes <= 0 {
		t.Errorf("cost stats missing: %+v", stats)
	}
}
