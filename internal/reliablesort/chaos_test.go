package reliablesort

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/blocksort"
	"repro/internal/fault"
	"repro/internal/recovery"
)

// chaosKeys is a fixed 16-key workload: dim 3 → 8 nodes × 2 keys/node,
// no padding.
var chaosKeys = []int64{10, 8, 3, 9, 4, 2, 7, 5, 31, -6, 14, 0, 22, -9, 17, 1}

// chaosInjector places one Byzantine processor at the given *physical*
// fault site. A transient fault manifests only on attempt 0; a
// persistent one manifests on every attempt for as long as the site is
// still mapped into the cube — after quarantine the injector finds no
// logical slot for it and the degraded re-run is clean.
func chaosInjector(st fault.Strategy, site int, persistent bool) func(attempt, dim int, physical []int) []blocksort.Options {
	return func(attempt, dim int, physical []int) []blocksort.Options {
		opts := make([]blocksort.Options, 1<<uint(dim))
		if !persistent && attempt > 0 {
			return opts
		}
		for l, ph := range physical {
			if ph == site {
				spec := fault.Spec{Node: l, Strategy: st, ActivateStage: 1, LieValue: 7777}
				opts[l] = blocksort.Options{SkipChecks: true, Tamper: spec.Tamper()}
				break
			}
		}
		return opts
	}
}

// Two carve-outs to the harness's localization invariant, both for
// lies about *relayed content* (see core's gatherView.mergeChecked):
//
//   - harmlessPersistent: a relayed-entry corruption can land
//     exclusively on receivers that already hold every relayed slot.
//     Such a merge compares state but never adopts, so the lie cannot
//     change any node's view; with the sender's honest aggregate
//     digest riding along, the receiver accepts in O(1) and the run
//     completes verified and correct on the first attempt — the
//     application-oriented outcome (correct despite fault) rather
//     than detect-and-retry.
//   - ambiguousAttribution: a multiset-preserving permutation of a
//     relayed view is indistinguishable, at the node that finally
//     observes a copy conflict, from the relayer of the conflicting
//     honest copy having lied — the evidence may accuse a node on the
//     relay path instead of the permuter. Recovery still quarantines,
//     shrinks, and re-verifies; only exact localization is not
//     guaranteed.
var harmlessPersistent = map[fault.Strategy]bool{fault.ViewLie: true}

var ambiguousAttribution = map[fault.Strategy]bool{fault.PermuteLie: true}

// TestChaosAutoRecover sweeps every Byzantine strategy × every fault
// site × transient/persistent on a dim-3 cube and asserts the
// supervisor's invariant: Sort with AutoRecover either returns a
// verified-clean result (via retry or quarantine+shrink) or escalates
// with a structured *recovery.ExhaustedError — it never returns an
// unverified slice. Persistent faults must be localized: the
// quarantined node must be the injected fault site (except the
// documented carve-outs above).
func TestChaosAutoRecover(t *testing.T) {
	want := append([]int64(nil), chaosKeys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	for _, st := range fault.AllStrategies() {
		for site := 0; site < 8; site++ {
			for _, persistent := range []bool{false, true} {
				variant := "transient"
				if persistent {
					variant = "persistent"
				}
				st, site, persistent := st, site, persistent
				t.Run(fmt.Sprintf("%v/site%d/%s", st, site, variant), func(t *testing.T) {
					t.Parallel()
					out, stats, err := Sort(chaosKeys, Options{
						Dim:         3,
						RecvTimeout: 150 * time.Millisecond,
						AutoRecover: true,
						MaxAttempts: 6,
						Sleep:       func(time.Duration) {},
						Seed:        1,
						Inject:      chaosInjector(st, site, persistent),
					})
					if err != nil {
						// The only acceptable failure is a structured
						// escalation carrying the attempt history.
						var ex *recovery.ExhaustedError
						if !errors.As(err, &ex) {
							t.Fatalf("unstructured error: %v", err)
						}
						if len(ex.Attempts) == 0 {
							t.Fatalf("ExhaustedError without history: %v", err)
						}
						t.Fatalf("recovery exhausted (history: %d attempts, quarantined %v): %v",
							len(ex.Attempts), ex.Quarantined, err)
					}
					if len(out) != len(want) {
						t.Fatalf("result length %d, want %d", len(out), len(want))
					}
					for i := range want {
						if out[i] != want[i] {
							t.Fatalf("result[%d] = %d, want %d (full: %v)", i, out[i], want[i], out)
						}
					}
					rec := stats.Recovery
					if rec == nil {
						t.Fatal("AutoRecover success without recovery report")
					}
					if persistent {
						// Recovery must have engaged (attempt 0 faulted)
						// and localized the culprit.
						if stats.Attempts < 2 {
							if !harmlessPersistent[st] {
								t.Fatalf("persistent fault cleared in %d attempt(s)?", stats.Attempts)
							}
							// Verified correct despite the fault (the
							// result was already checked above); there
							// is nothing to localize.
							return
						}
						if ambiguousAttribution[st] {
							if len(rec.Quarantined) == 0 {
								t.Fatalf("recovery engaged but quarantined nobody (attempts: %d)", stats.Attempts)
							}
							if rec.FinalDim != 3-len(rec.Quarantined) {
								t.Fatalf("FinalDim = %d after %d quarantine(s)", rec.FinalDim, len(rec.Quarantined))
							}
							if stats.Nodes != 1<<uint(rec.FinalDim) || stats.Nodes*stats.BlockLen != len(chaosKeys) {
								t.Fatalf("degraded geometry %d×%d for dim %d", stats.Nodes, stats.BlockLen, rec.FinalDim)
							}
						} else {
							if len(rec.Quarantined) != 1 || rec.Quarantined[0] != site {
								t.Fatalf("quarantined %v, want [%d] (attempts: %d)",
									rec.Quarantined, site, stats.Attempts)
							}
							if rec.FinalDim != 2 {
								t.Fatalf("FinalDim = %d after one quarantine", rec.FinalDim)
							}
							if stats.Nodes != 4 || stats.BlockLen != 4 {
								t.Fatalf("degraded geometry %d×%d, want 4×4", stats.Nodes, stats.BlockLen)
							}
						}
					} else {
						if len(rec.Quarantined) != 0 {
							t.Fatalf("transient fault quarantined %v", rec.Quarantined)
						}
						if stats.Attempts > 2 {
							t.Fatalf("transient fault took %d attempts", stats.Attempts)
						}
					}
					if stats.Attempts > 1 && rec.WastedCost <= 0 {
						t.Fatalf("recovery engaged but WastedCost = %d", rec.WastedCost)
					}
				})
			}
		}
	}
}

// TestChaosNoFault: the supervisor adds no overhead to clean runs.
func TestChaosNoFault(t *testing.T) {
	out, stats, err := Sort(chaosKeys, Options{
		Dim:         3,
		AutoRecover: true,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(out, Options{}) {
		t.Fatalf("unsorted: %v", out)
	}
	if stats.Attempts != 1 || stats.Recovery.WastedCost != 0 || stats.Recovery.TotalBackoff != 0 {
		t.Fatalf("clean run stats = %+v", stats)
	}
}
