package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out, err := Render(Config{
		Title:  "test chart",
		XLabel: "N",
		YLabel: "ticks",
		XTicks: []string{"4", "8", "16"},
	}, []Series{
		{Name: "up", Rune: '*', Y: []float64{1, 2, 3}},
		{Name: "down", Rune: 'o', Y: []float64{3, 2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test chart", "ticks", "* up", "o down", "(N)", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderLogScale(t *testing.T) {
	out, err := Render(Config{
		XTicks: []string{"a", "b", "c", "d"},
		YLabel: "t",
		LogY:   true,
	}, []Series{{Name: "s", Rune: '#', Y: []float64{10, 100, 1000, 10000}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(log)") {
		t.Errorf("missing log marker:\n%s", out)
	}
	// Log scale makes the exponential curve a straight line: the marks
	// should appear on a diagonal — at least assert both extremes plot.
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Errorf("top label missing:\n%s", out)
	}
}

func TestRenderValidation(t *testing.T) {
	if _, err := Render(Config{XTicks: []string{"1", "2"}}, nil); err == nil {
		t.Error("no series: want error")
	}
	if _, err := Render(Config{XTicks: []string{"1"}},
		[]Series{{Name: "s", Rune: '*', Y: []float64{1}}}); err == nil {
		t.Error("one tick: want error")
	}
	if _, err := Render(Config{XTicks: []string{"1", "2"}},
		[]Series{{Name: "s", Rune: '*', Y: []float64{1}}}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Render(Config{XTicks: []string{"1", "2"}, LogY: true},
		[]Series{{Name: "s", Rune: '*', Y: []float64{0, 1}}}); err == nil {
		t.Error("log of zero: want error")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	out, err := Render(Config{XTicks: []string{"1", "2"}},
		[]Series{{Name: "flat", Rune: '*', Y: []float64{5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestSegmentsConnectDistantPoints(t *testing.T) {
	out, err := Render(Config{XTicks: []string{"1", "2"}, Width: 40, Height: 10},
		[]Series{{Name: "steep", Rune: '*', Y: []float64{0, 100}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("no interpolation dots on a steep segment:\n%s", out)
	}
}
