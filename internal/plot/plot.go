// Package plot renders simple ASCII line charts for the experiment
// harness, so the reproduced Figures 6–8 can be *seen* as the curves
// the paper plots, not only read as tables. It is deliberately tiny:
// log-scale support for the run-time axes, one rune per series,
// labelled axes.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// Rune marks the series' points in the chart.
	Rune rune
	// Y holds one value per shared X position.
	Y []float64
}

// Config parameterizes a chart.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks are the labels of the shared X positions (e.g. cube sizes).
	XTicks []string
	// Width and Height are the plot area size in characters; zero
	// means 64×20.
	Width  int
	Height int
	// LogY plots the Y axis in log10 space (run times spanning orders
	// of magnitude, as in the paper's Figure 7).
	LogY bool
}

// Render draws the chart. All series must have len(Y) == len(XTicks).
func Render(cfg Config, series []Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	nx := len(cfg.XTicks)
	if nx < 2 {
		return "", fmt.Errorf("plot: need at least 2 x positions, got %d", nx)
	}
	for _, s := range series {
		if len(s.Y) != nx {
			return "", fmt.Errorf("plot: series %q has %d points for %d ticks", s.Name, len(s.Y), nx)
		}
	}
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w = 64
	}
	if h == 0 {
		h = 20
	}

	// Value transform and range.
	tr := func(v float64) (float64, error) {
		if !cfg.LogY {
			return v, nil
		}
		if v <= 0 {
			return 0, fmt.Errorf("plot: log scale requires positive values, got %v", v)
		}
		return math.Log10(v), nil
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			tv, err := tr(v)
			if err != nil {
				return "", err
			}
			if tv < min {
				min = tv
			}
			if tv > max {
				max = tv
			}
		}
	}
	if max == min {
		max = min + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	// Plot points with linear interpolation between x positions.
	for _, s := range series {
		prevCol, prevRow := -1, -1
		for i, v := range s.Y {
			tv, err := tr(v)
			if err != nil {
				return "", err
			}
			col := i * (w - 1) / (nx - 1)
			row := h - 1 - int(math.Round((tv-min)/(max-min)*float64(h-1)))
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			if prevCol >= 0 {
				drawSegment(grid, prevCol, prevRow, col, row, s.Rune)
			}
			grid[row][col] = s.Rune
			prevCol, prevRow = col, row
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yTop, yBot := max, min
	if cfg.LogY {
		yTop, yBot = math.Pow(10, max), math.Pow(10, min)
	}
	label := cfg.YLabel
	if cfg.LogY {
		label += " (log)"
	}
	fmt.Fprintf(&b, "%s\n", label)
	for r := 0; r < h; r++ {
		edge := "|"
		switch r {
		case 0:
			fmt.Fprintf(&b, "%11.3g +%s\n", yTop, string(grid[r]))
			continue
		case h - 1:
			fmt.Fprintf(&b, "%11.3g +%s\n", yBot, string(grid[r]))
			continue
		}
		fmt.Fprintf(&b, "%11s %s%s\n", "", edge, string(grid[r]))
	}
	fmt.Fprintf(&b, "%11s +%s\n", "", strings.Repeat("-", w))
	// X tick labels, first and last.
	fmt.Fprintf(&b, "%12s%-*s%s   (%s)\n", "", w-len(cfg.XTicks[nx-1]), cfg.XTicks[0], cfg.XTicks[nx-1], cfg.XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", s.Rune, s.Name)
	}
	return b.String(), nil
}

// drawSegment draws a coarse line between two grid points, leaving
// endpoints to the caller.
func drawSegment(grid [][]rune, c0, r0, c1, r1 int, mark rune) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if r >= 0 && r < len(grid) && c >= 0 && c < len(grid[r]) && grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
