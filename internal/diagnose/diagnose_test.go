package diagnose

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

func TestRankPrefersDirectEvidence(t *testing.T) {
	errs := []core.HostError{
		{Node: 0, Stage: 2, Iter: 0, Predicate: "protocol", Kind: core.KindAbsence, Accused: 7,
			Detail: "receive from 7: expected message absent (timeout)"},
		{Node: 1, Stage: 1, Iter: 1, Predicate: "consistency", Kind: core.KindValue, Accused: 5,
			Detail: "slot 4: held copy 10 disagrees with relayed copy 99"},
		{Node: 2, Stage: 2, Iter: 1, Predicate: "protocol", Kind: core.KindValue, Accused: 5,
			Detail: "misordered reply"},
	}
	ranked := Rank(errs)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %+v", ranked)
	}
	if ranked[0].Node != 5 || ranked[0].DirectVotes != 2 {
		t.Fatalf("prime = %+v", ranked[0])
	}
	if ranked[1].Node != 7 || ranked[1].AbsenceVotes != 1 {
		t.Fatalf("second = %+v", ranked[1])
	}
	prime, ok := Prime(errs)
	if !ok || prime.Node != 5 {
		t.Fatalf("Prime = %+v ok=%v", prime, ok)
	}
}

func TestRankUnattributed(t *testing.T) {
	errs := []core.HostError{
		{Node: 0, Stage: 2, Predicate: "feasibility", Accused: -1, Detail: "value 3 missing"},
	}
	if got := Rank(errs); len(got) != 0 {
		t.Fatalf("Rank = %+v", got)
	}
	if _, ok := Prime(errs); ok {
		t.Fatal("Prime found a suspect in unattributed evidence")
	}
	if !strings.Contains(Report(errs), "no attributable evidence") {
		t.Error("Report wording")
	}
}

func TestReportLists(t *testing.T) {
	errs := []core.HostError{
		{Node: 1, Stage: 1, Iter: 1, Predicate: "consistency", Accused: 3, Detail: "copies differ"},
	}
	out := Report(errs)
	if !strings.Contains(out, "node 3") || !strings.Contains(out, "1 direct") {
		t.Errorf("Report = %q", out)
	}
}

// End-to-end accuracy: across the full single-fault strategy × node
// sweep, whenever the run is detected *with attributable evidence*,
// the prime suspect must be the actually faulty node in the large
// majority of runs (lies propagate, so occasionally a relay of the
// lie is blamed first — that is inherent, not a bug).
func TestDiagnosisAccuracyOverCoverageSweep(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	strategies := []fault.Strategy{
		fault.KeyLie, fault.SplitLie, fault.ViewLie, fault.WrongCompare, fault.MaskInflation,
	}
	total, attributed, correct := 0, 0, 0
	for _, st := range strategies {
		for id := 0; id < n; id++ {
			nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 60 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			spec := fault.Spec{Node: id, Strategy: st, ActivateStage: 1, LieValue: 999}
			opts := make([]core.Options, n)
			opts[id] = core.Options{SkipChecks: true, Tamper: spec.Tamper()}
			oc, err := core.RunWithOptions(nw, keys, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !oc.Detected() {
				continue
			}
			total++
			prime, ok := Prime(oc.HostErrors)
			if !ok {
				continue
			}
			attributed++
			if prime.Node == id {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no detected runs to diagnose")
	}
	if attributed < total*3/4 {
		t.Errorf("only %d/%d detected runs had attributable evidence", attributed, total)
	}
	accuracy := float64(correct) / float64(attributed)
	t.Logf("diagnosis: %d detected, %d attributed, %d correct (%.0f%%)", total, attributed, correct, accuracy*100)
	if accuracy < 0.8 {
		t.Errorf("diagnosis accuracy %.2f below 0.8", accuracy)
	}
}

// The silence strategy produces absence-only evidence; diagnosis must
// still name the silent node.
func TestDiagnosisOfSilentNode(t *testing.T) {
	dim := 3
	n := 1 << uint(dim)
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5}
	silent := 5
	nw, err := simnet.New(simnet.Config{Dim: dim, RecvTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Node: silent, Strategy: fault.Silence, ActivateStage: 1}
	opts := make([]core.Options, n)
	opts[silent] = core.Options{SkipChecks: true, Tamper: spec.Tamper()}
	oc, err := core.RunWithOptions(nw, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Detected() {
		t.Fatal("silence undetected")
	}
	prime, ok := Prime(oc.HostErrors)
	if !ok {
		t.Fatalf("no suspects from %+v", oc.HostErrors)
	}
	if prime.Node != silent {
		t.Errorf("prime suspect = %+v, want node %d (errors: %+v)", prime, silent, oc.HostErrors)
	}
}
