package diagnose

// NoSuspect marks an attempt that produced no attributable evidence.
const NoSuspect = -1

// History tracks prime-suspect accusations across successive recovery
// attempts of the same logical sort, separating transient episodes
// (a node accused once, then clean) from persistent faults (the same
// node accused attempt after attempt). Node labels recorded here
// should be stable across attempts — the recovery supervisor records
// *physical* labels so the streak survives cube remapping.
type History struct {
	streakNode int
	streak     int
	attempts   int
	votes      map[int]int
}

// NewHistory returns an empty accusation history.
func NewHistory() *History {
	return &History{streakNode: NoSuspect, votes: map[int]int{}}
}

// Record notes the prime suspect of one failed attempt; pass NoSuspect
// when the attempt produced no attributable evidence (which breaks any
// running streak — the fault is not following one node).
func (h *History) Record(node int) {
	h.attempts++
	if node == NoSuspect {
		h.streakNode, h.streak = NoSuspect, 0
		return
	}
	h.votes[node]++
	if node == h.streakNode {
		h.streak++
		return
	}
	h.streakNode, h.streak = node, 1
}

// Streak returns the node accused by every recent consecutive failed
// attempt and the length of that run; NoSuspect, 0 when the last
// attempt carried no accusation.
func (h *History) Streak() (node, length int) {
	return h.streakNode, h.streak
}

// Persistent reports the current streak node once it has been the
// prime suspect in at least threshold consecutive attempts — the
// signal that retrying alone will not clear the fault.
func (h *History) Persistent(threshold int) (node int, ok bool) {
	if threshold < 1 {
		threshold = 1
	}
	if h.streak >= threshold {
		return h.streakNode, true
	}
	return NoSuspect, false
}

// Attempts returns how many failed attempts have been recorded.
func (h *History) Attempts() int { return h.attempts }

// Votes returns the total accusation count for a node across all
// recorded attempts (not just the current streak).
func (h *History) Votes(node int) int { return h.votes[node] }

// Reset clears the history; the supervisor calls it after a quarantine
// changes the topology, so stale accusations cannot condemn a second
// node on old evidence.
func (h *History) Reset() {
	h.streakNode, h.streak = NoSuspect, 0
	h.attempts = 0
	h.votes = map[int]int{}
}
