// Package diagnose localizes faults from the diagnostic ERROR signals
// a failed S_FT run delivers to the host. The paper provides detection
// (Theorem 3) and "reliable communication of this diagnostic
// information ... so that appropriate actions may be taken"; this
// package is that next step: rank the accused nodes so the operator
// (or an automated retry policy) knows whom to suspect.
//
// Heuristics, in order of evidential weight:
//
//  1. Direct accusations from value evidence (consistency mismatches,
//     malformed or misordered replies) name the sender of the bad
//     message. For a single faulty node these point at the culprit or
//     at a relay of its lie — and the earliest such accusation (by
//     stage, then iteration) is upstream of any relaying.
//  2. Absence (timeout) accusations are weak: once an honest node
//     fail-stops, its now-silent links accuse *it* in cascades. They
//     are consulted only when no value evidence exists.
//  3. Unattributed evidence (shape/permutation failures over an
//     assembled sequence, Accused == -1) contributes no suspect.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Suspect is one candidate culprit with its supporting evidence count.
type Suspect struct {
	// Node is the suspected node label.
	Node int
	// DirectVotes counts value-evidence accusations, AbsenceVotes
	// timeout-based ones.
	DirectVotes  int
	AbsenceVotes int
	// EarliestStage/EarliestIter locate the first direct accusation
	// (or the first absence accusation when no direct ones exist).
	EarliestStage int
	EarliestIter  int
}

// isAbsence classifies an ERROR as timeout-based from its structured
// evidence kind, populated at the detection sites. Detail is
// human-readable only and is never parsed.
func isAbsence(he core.HostError) bool {
	return he.Kind == core.KindAbsence
}

// Rank aggregates the ERROR signals of one failed run into a suspect
// list, most plausible first. An empty result means no error carried
// an attribution (all evidence was shape-level).
func Rank(errors []core.HostError) []Suspect {
	byNode := map[int]*Suspect{}
	// Iter counts down within a stage (j = i..0), so a larger
	// iteration is earlier.
	earlier := func(he core.HostError, s *Suspect) bool {
		return he.Stage < s.EarliestStage ||
			(he.Stage == s.EarliestStage && he.Iter > s.EarliestIter)
	}
	add := func(he core.HostError, direct bool) {
		if he.Accused < 0 {
			return
		}
		s, ok := byNode[he.Accused]
		if !ok {
			s = &Suspect{Node: he.Accused, EarliestStage: he.Stage, EarliestIter: he.Iter}
			byNode[he.Accused] = s
		}
		if direct {
			// The first direct accusation overrides any absence-based
			// earliest: value evidence is what we want to time-order.
			if s.DirectVotes == 0 || earlier(he, s) {
				s.EarliestStage, s.EarliestIter = he.Stage, he.Iter
			}
			s.DirectVotes++
		} else {
			if s.DirectVotes == 0 && (s.AbsenceVotes == 0 || earlier(he, s)) {
				s.EarliestStage, s.EarliestIter = he.Stage, he.Iter
			}
			s.AbsenceVotes++
		}
	}
	for _, he := range errors {
		add(he, !isAbsence(he))
	}
	out := make([]Suspect, 0, len(byNode))
	for _, s := range byNode {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		// Any direct evidence beats any amount of absence evidence.
		if (a.DirectVotes > 0) != (b.DirectVotes > 0) {
			return a.DirectVotes > 0
		}
		if a.DirectVotes != b.DirectVotes {
			return a.DirectVotes > b.DirectVotes
		}
		if a.EarliestStage != b.EarliestStage {
			return a.EarliestStage < b.EarliestStage
		}
		// Within a stage the cascade's root is accused first (largest
		// iteration), before its stalled dependents are.
		if a.EarliestIter != b.EarliestIter {
			return a.EarliestIter > b.EarliestIter
		}
		if a.AbsenceVotes != b.AbsenceVotes {
			return a.AbsenceVotes > b.AbsenceVotes
		}
		return a.Node < b.Node
	})
	return out
}

// Prime returns the top suspect, ok == false when the run produced no
// attributable evidence.
func Prime(errors []core.HostError) (Suspect, bool) {
	ranked := Rank(errors)
	if len(ranked) == 0 {
		return Suspect{}, false
	}
	return ranked[0], true
}

// Report renders the ranking for operators.
func Report(errors []core.HostError) string {
	ranked := Rank(errors)
	if len(ranked) == 0 {
		return "diagnose: no attributable evidence (shape-level detection only)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "diagnose: %d suspect(s), most plausible first\n", len(ranked))
	for i, s := range ranked {
		fmt.Fprintf(&b, "  %d. node %d — %d direct, %d absence vote(s); first evidence at stage %d iter %d\n",
			i+1, s.Node, s.DirectVotes, s.AbsenceVotes, s.EarliestStage, s.EarliestIter)
	}
	return b.String()
}
