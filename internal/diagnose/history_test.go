package diagnose

import "testing"

func TestHistoryStreaks(t *testing.T) {
	h := NewHistory()
	if _, ok := h.Persistent(2); ok {
		t.Fatal("empty history reported persistence")
	}
	h.Record(5)
	if node, n := h.Streak(); node != 5 || n != 1 {
		t.Fatalf("Streak = %d,%d", node, n)
	}
	if _, ok := h.Persistent(2); ok {
		t.Fatal("single accusation reported persistent at threshold 2")
	}
	h.Record(5)
	node, ok := h.Persistent(2)
	if !ok || node != 5 {
		t.Fatalf("Persistent = %d,%v after two accusations of 5", node, ok)
	}
	if h.Attempts() != 2 || h.Votes(5) != 2 {
		t.Fatalf("Attempts=%d Votes(5)=%d", h.Attempts(), h.Votes(5))
	}
}

func TestHistoryStreakBrokenByOtherSuspect(t *testing.T) {
	h := NewHistory()
	h.Record(5)
	h.Record(3)
	if node, n := h.Streak(); node != 3 || n != 1 {
		t.Fatalf("Streak = %d,%d, want 3,1", node, n)
	}
	if _, ok := h.Persistent(2); ok {
		t.Fatal("alternating suspects reported persistent")
	}
	// Cumulative votes survive streak changes.
	if h.Votes(5) != 1 || h.Votes(3) != 1 {
		t.Fatalf("votes = %d,%d", h.Votes(5), h.Votes(3))
	}
}

func TestHistoryStreakBrokenByNoSuspect(t *testing.T) {
	h := NewHistory()
	h.Record(7)
	h.Record(NoSuspect)
	if node, n := h.Streak(); node != NoSuspect || n != 0 {
		t.Fatalf("Streak = %d,%d after unattributed attempt", node, n)
	}
	h.Record(7)
	if _, ok := h.Persistent(2); ok {
		t.Fatal("interrupted streak counted as persistent")
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory()
	h.Record(2)
	h.Record(2)
	h.Reset()
	if _, ok := h.Persistent(1); ok {
		t.Fatal("reset history still persistent")
	}
	if h.Attempts() != 0 || h.Votes(2) != 0 {
		t.Fatalf("reset left Attempts=%d Votes=%d", h.Attempts(), h.Votes(2))
	}
}

func TestHistoryThresholdFloor(t *testing.T) {
	h := NewHistory()
	h.Record(4)
	// threshold < 1 is clamped to 1: one accusation suffices.
	if node, ok := h.Persistent(0); !ok || node != 4 {
		t.Fatalf("Persistent(0) = %d,%v", node, ok)
	}
}
