package diagnose

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blocksort"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/simnet"
)

// Two simultaneous culprits with direct evidence, plus the absence
// cascade an honest fail-stopped node always triggers: the ranking
// must not credit the honest node above both culprits.
func TestRankTwoSimultaneousFaults(t *testing.T) {
	errs := []core.HostError{
		// Culprit 3 caught red-handed at stage 1.
		{Node: 1, Stage: 1, Iter: 1, Predicate: "consistency", Kind: core.KindValue, Accused: 3,
			Detail: "copies differ"},
		// Culprit 6 caught at stage 2.
		{Node: 4, Stage: 2, Iter: 2, Predicate: "protocol", Kind: core.KindValue, Accused: 6,
			Detail: "misordered reply"},
		// Honest node 1 fail-stopped after detecting; its silence is
		// blamed on it by two stalled partners.
		{Node: 0, Stage: 2, Iter: 0, Predicate: "protocol", Kind: core.KindAbsence, Accused: 1,
			Detail: "receive from 1: timeout"},
		{Node: 5, Stage: 2, Iter: 0, Predicate: "protocol", Kind: core.KindAbsence, Accused: 1,
			Detail: "receive from 1: timeout"},
	}
	ranked := Rank(errs)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// Direct evidence outranks the honest node's absence cascade no
	// matter the vote counts; earliest accusation orders the culprits.
	if ranked[0].Node != 3 || ranked[1].Node != 6 || ranked[2].Node != 1 {
		t.Fatalf("ranking order = [%d %d %d], want [3 6 1]",
			ranked[0].Node, ranked[1].Node, ranked[2].Node)
	}
}

// End-to-end two-fault runs over the block sort: detection is no
// longer guaranteed by Theorem 3 (two Byzantine processors can
// conspire), but for independent strategies the predicates still fire,
// and the ranking must place one of the two culprits first — an honest
// node must never outrank both.
func TestRankTwoFaultRuns(t *testing.T) {
	keys := []int64{10, 8, 3, 9, 4, 2, 7, 5, 31, -6, 14, 0, 22, -9, 17, 1}
	combos := []struct{ a, b fault.Strategy }{
		{fault.KeyLie, fault.KeyLie},
		{fault.KeyLie, fault.SplitLie},
		{fault.SplitLie, fault.ViewLie},
		{fault.WrongCompare, fault.KeyLie},
		{fault.Silence, fault.KeyLie},
	}
	pairs := [][2]int{{1, 6}, {2, 5}, {3, 4}, {0, 7}}
	for _, c := range combos {
		for _, p := range pairs {
			c, p := c, p
			t.Run(fmt.Sprintf("%v@%d+%v@%d", c.a, p[0], c.b, p[1]), func(t *testing.T) {
				t.Parallel()
				nw, err := simnet.New(simnet.Config{Dim: 3, RecvTimeout: 100 * time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				sa := fault.Spec{Node: p[0], Strategy: c.a, ActivateStage: 1, LieValue: 999}
				sb := fault.Spec{Node: p[1], Strategy: c.b, ActivateStage: 1, LieValue: 777}
				opts := make([]blocksort.Options, 8)
				opts[p[0]] = blocksort.Options{SkipChecks: true, Tamper: sa.Tamper()}
				opts[p[1]] = blocksort.Options{SkipChecks: true, Tamper: sb.Tamper()}
				blocks := make([][]int64, 8)
				for i := range blocks {
					blocks[i] = keys[i*2 : i*2+2]
				}
				oc, err := blocksort.RunFTWithOptions(nw, blocks, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !oc.Detected() {
					t.Fatalf("double fault undetected")
				}
				ranked := Rank(oc.HostErrors)
				if len(ranked) == 0 {
					t.Fatalf("no suspects from %+v", oc.HostErrors)
				}
				if prime := ranked[0].Node; prime != p[0] && prime != p[1] {
					t.Errorf("prime suspect %d is honest; culprits were %v (ranking %+v)",
						prime, p, ranked)
				}
			})
		}
	}
}
