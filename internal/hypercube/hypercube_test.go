package hypercube

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		dim     int
		wantErr bool
		wantN   int
	}{
		{name: "dim0", dim: 0, wantN: 1},
		{name: "dim1", dim: 1, wantN: 2},
		{name: "dim5", dim: 5, wantN: 32},
		{name: "dim max", dim: MaxDim, wantN: 1 << MaxDim},
		{name: "negative", dim: -1, wantErr: true},
		{name: "too large", dim: MaxDim + 1, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := New(tc.dim)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%d) error = %v, wantErr = %v", tc.dim, err, tc.wantErr)
			}
			if err == nil && topo.Nodes() != tc.wantN {
				t.Errorf("Nodes() = %d, want %d", topo.Nodes(), tc.wantN)
			}
		})
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1) did not panic")
		}
	}()
	MustNew(-1)
}

func TestPartner(t *testing.T) {
	topo := MustNew(3)
	tests := []struct {
		node, bit, want int
	}{
		{0, 0, 1}, {0, 1, 2}, {0, 2, 4},
		{5, 0, 4}, {5, 1, 7}, {5, 2, 1},
		{7, 2, 3},
	}
	for _, tc := range tests {
		got, err := topo.Partner(tc.node, tc.bit)
		if err != nil {
			t.Fatalf("Partner(%d,%d) unexpected error: %v", tc.node, tc.bit, err)
		}
		if got != tc.want {
			t.Errorf("Partner(%d,%d) = %d, want %d", tc.node, tc.bit, got, tc.want)
		}
	}
	if _, err := topo.Partner(8, 0); err == nil {
		t.Error("Partner(8,0) on dim-3 cube: want error, got nil")
	}
	if _, err := topo.Partner(0, 3); err == nil {
		t.Error("Partner(0,3) on dim-3 cube: want error, got nil")
	}
	if _, err := topo.Partner(0, -1); err == nil {
		t.Error("Partner(0,-1): want error, got nil")
	}
}

func TestPartnerIsInvolution(t *testing.T) {
	topo := MustNew(4)
	for node := 0; node < topo.Nodes(); node++ {
		for b := 0; b < topo.Dim(); b++ {
			p, err := topo.Partner(node, b)
			if err != nil {
				t.Fatal(err)
			}
			back, err := topo.Partner(p, b)
			if err != nil {
				t.Fatal(err)
			}
			if back != node {
				t.Fatalf("Partner(Partner(%d,%d)) = %d, want %d", node, b, back, node)
			}
			if !topo.AreNeighbors(node, p) {
				t.Fatalf("node %d and partner %d not neighbors", node, p)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	topo := MustNew(3)
	got, err := topo.Neighbors(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 7, 1}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", got, want)
		}
	}
	if _, err := topo.Neighbors(-1); err == nil {
		t.Error("Neighbors(-1): want error, got nil")
	}
}

func TestNeighborSymmetryProperty(t *testing.T) {
	topo := MustNew(5)
	f := func(a, b uint8) bool {
		x := int(a) % topo.Nodes()
		y := int(b) % topo.Nodes()
		return topo.AreNeighbors(x, y) == topo.AreNeighbors(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistance(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 7, 3}, {5, 6, 2}, {15, 0, 4},
	}
	for _, tc := range tests {
		if got := HammingDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("HammingDistance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHomeSubcube(t *testing.T) {
	topo := MustNew(3)
	tests := []struct {
		dim, node, wantStart, wantEnd int
	}{
		{0, 5, 5, 5},
		{1, 5, 4, 5},
		{2, 5, 4, 7},
		{3, 5, 0, 7},
		{1, 2, 2, 3},
		{2, 2, 0, 3},
	}
	for _, tc := range tests {
		sc, err := topo.HomeSubcube(tc.dim, tc.node)
		if err != nil {
			t.Fatalf("HomeSubcube(%d,%d): %v", tc.dim, tc.node, err)
		}
		if sc.Start != tc.wantStart || sc.End != tc.wantEnd {
			t.Errorf("HomeSubcube(%d,%d) = [%d..%d], want [%d..%d]",
				tc.dim, tc.node, sc.Start, sc.End, tc.wantStart, tc.wantEnd)
		}
		if !sc.Contains(tc.node) {
			t.Errorf("HomeSubcube(%d,%d) does not contain its own node", tc.dim, tc.node)
		}
		if sc.Size() != 1<<uint(tc.dim) {
			t.Errorf("Size() = %d, want %d", sc.Size(), 1<<uint(tc.dim))
		}
	}
	if _, err := topo.HomeSubcube(4, 0); err == nil {
		t.Error("HomeSubcube(4,0) on dim-3 cube: want error")
	}
	if _, err := topo.HomeSubcube(1, 99); err == nil {
		t.Error("HomeSubcube(1,99): want error")
	}
}

// Every dim-i subcube partitions cleanly: two nodes share a home
// subcube iff their labels agree above bit i.
func TestHomeSubcubePartitionProperty(t *testing.T) {
	topo := MustNew(4)
	for dim := 0; dim <= topo.Dim(); dim++ {
		for a := 0; a < topo.Nodes(); a++ {
			for b := 0; b < topo.Nodes(); b++ {
				sa, err := topo.HomeSubcube(dim, a)
				if err != nil {
					t.Fatal(err)
				}
				sameCube := sa.Contains(b)
				samePrefix := a>>uint(dim) == b>>uint(dim)
				if sameCube != samePrefix {
					t.Fatalf("dim=%d a=%d b=%d: contains=%v samePrefix=%v", dim, a, b, sameCube, samePrefix)
				}
			}
		}
	}
}

func TestSubcubeHalves(t *testing.T) {
	topo := MustNew(3)
	sc, err := topo.HomeSubcube(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sc.LowerHalf(), sc.UpperHalf()
	if lo.Start != 4 || lo.End != 5 || hi.Start != 6 || hi.End != 7 {
		t.Fatalf("halves of %v = %v / %v", sc, lo, hi)
	}
	if lo.Dim != 1 || hi.Dim != 1 {
		t.Fatalf("half dims = %d,%d, want 1,1", lo.Dim, hi.Dim)
	}
}

func TestSubcubeHalfOfPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LowerHalf on dim-0 subcube did not panic")
		}
	}()
	Subcube{Dim: 0, Start: 3, End: 3}.LowerHalf()
}

func TestAscendingSchedule(t *testing.T) {
	topo := MustNew(3)
	// Stage 0: direction from bit 1 of the node label.
	wantStage0 := []bool{true, true, false, false, true, true, false, false}
	for node, want := range wantStage0 {
		if got := topo.Ascending(0, node); got != want {
			t.Errorf("Ascending(0,%d) = %v, want %v", node, got, want)
		}
	}
	// Stage 1: direction from bit 2.
	wantStage1 := []bool{true, true, true, true, false, false, false, false}
	for node, want := range wantStage1 {
		if got := topo.Ascending(1, node); got != want {
			t.Errorf("Ascending(1,%d) = %v, want %v", node, got, want)
		}
	}
	// Final stage: everything ascends.
	for node := 0; node < topo.Nodes(); node++ {
		if !topo.Ascending(2, node) {
			t.Errorf("Ascending(final,%d) = false, want true", node)
		}
	}
}

func TestAscendingAgreesAcrossHomeSubcube(t *testing.T) {
	// All nodes of a dim-(i+1) home subcube must share one direction:
	// the flag depends only on bit i+1, constant within the subcube.
	topo := MustNew(4)
	for stage := 0; stage < topo.Dim(); stage++ {
		for node := 0; node < topo.Nodes(); node++ {
			sc, err := topo.HomeSubcube(stage+1, node)
			if err != nil {
				t.Fatal(err)
			}
			want := topo.Ascending(stage, sc.Start)
			if got := topo.Ascending(stage, node); got != want {
				t.Fatalf("stage %d node %d: direction %v differs from subcube base %v", stage, node, got, want)
			}
		}
	}
}

func TestActive(t *testing.T) {
	tests := []struct {
		node, bit int
		want      bool
	}{
		{0, 0, true}, {1, 0, false}, {2, 0, true}, {2, 1, false}, {5, 2, false}, {3, 2, true},
	}
	for _, tc := range tests {
		if got := Active(tc.node, tc.bit); got != tc.want {
			t.Errorf("Active(%d,%d) = %v, want %v", tc.node, tc.bit, got, tc.want)
		}
	}
}

func TestECubePath(t *testing.T) {
	topo := MustNew(4)
	p, err := topo.ECubePath(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(topo) {
		t.Fatalf("path %v not valid", p)
	}
	if p[0] != 3 || p[len(p)-1] != 12 {
		t.Fatalf("path %v endpoints wrong", p)
	}
	if len(p) != HammingDistance(3, 12)+1 {
		t.Fatalf("path %v length %d, want %d", p, len(p), HammingDistance(3, 12)+1)
	}
	if _, err := topo.ECubePath(0, 99); err == nil {
		t.Error("ECubePath to invalid node: want error")
	}
}

func TestECubePathProperty(t *testing.T) {
	topo := MustNew(5)
	f := func(a, b uint8) bool {
		src := int(a) % topo.Nodes()
		dst := int(b) % topo.Nodes()
		p, err := topo.ECubePath(src, dst)
		if err != nil {
			return false
		}
		return p.Valid(topo) && p[0] == src && p[len(p)-1] == dst &&
			len(p) == HammingDistance(src, dst)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisjointPaths(t *testing.T) {
	topo := MustNew(4)
	src, dst := 1, 14 // Hamming distance 4
	paths, err := topo.DisjointPaths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != HammingDistance(src, dst) {
		t.Fatalf("got %d paths, want %d", len(paths), HammingDistance(src, dst))
	}
	seen := map[int][]int{} // interior node -> path indexes
	for i, p := range paths {
		if !p.Valid(topo) {
			t.Fatalf("path %d = %v invalid", i, p)
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("path %d endpoints wrong: %v", i, p)
		}
		for _, v := range p[1 : len(p)-1] {
			seen[v] = append(seen[v], i)
		}
	}
	for v, idxs := range seen {
		if len(idxs) > 1 {
			t.Fatalf("interior node %d shared by paths %v", v, idxs)
		}
	}
}

func TestDisjointPathsTrivial(t *testing.T) {
	topo := MustNew(3)
	paths, err := topo.DisjointPaths(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 1 || paths[0][0] != 5 {
		t.Fatalf("DisjointPaths(5,5) = %v", paths)
	}
}

func TestDisjointPathsProperty(t *testing.T) {
	topo := MustNew(4)
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			paths, err := topo.DisjointPaths(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			interior := map[int]bool{}
			for _, p := range paths {
				if !p.Valid(topo) {
					t.Fatalf("src=%d dst=%d invalid path %v", src, dst, p)
				}
				for _, v := range p[1 : len(p)-1] {
					if interior[v] {
						t.Fatalf("src=%d dst=%d: interior vertex %d reused", src, dst, v)
					}
					interior[v] = true
				}
			}
		}
	}
}

func TestPathValid(t *testing.T) {
	topo := MustNew(3)
	tests := []struct {
		name string
		p    Path
		want bool
	}{
		{"empty", Path{}, false},
		{"single", Path{3}, true},
		{"edge", Path{3, 7}, true},
		{"non-edge hop", Path{0, 3}, false},
		{"out of range", Path{0, 8}, false},
		{"long valid", Path{0, 1, 3, 7}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Valid(topo); got != tc.want {
				t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestBitAndLog2(t *testing.T) {
	if Bit(5, 0) != 1 || Bit(5, 1) != 0 || Bit(5, 2) != 1 {
		t.Error("Bit(5, ·) wrong")
	}
	for _, tc := range []struct{ x, want int }{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}} {
		got, err := Log2(tc.x)
		if err != nil {
			t.Fatalf("Log2(%d): %v", tc.x, err)
		}
		if got != tc.want {
			t.Errorf("Log2(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if _, err := Log2(0); err == nil {
		t.Error("Log2(0): want error")
	}
}

func TestIsPow2(t *testing.T) {
	for _, x := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false, want true", x)
		}
	}
	for _, x := range []int{0, -1, 3, 6, 12, 1000} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true, want false", x)
		}
	}
}

func TestSubcubeString(t *testing.T) {
	s := Subcube{Dim: 2, Start: 4, End: 7}
	if got := s.String(); got != "SC{dim=2, [4..7]}" {
		t.Errorf("String() = %q", got)
	}
}
