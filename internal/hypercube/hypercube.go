// Package hypercube models the n-dimensional binary hypercube
// interconnection topology used by the paper's target multicomputers
// (Ncube, iPSC/2, Symult 2010).
//
// An n-dimensional hypercube is a graph G(P, E) with N = 2^n vertices
// (nodes) labeled 0..N-1. An edge connects nodes i and j iff the binary
// representations of i and j differ in exactly one bit position. The
// package provides node/neighbor arithmetic, the paper's "home subcube"
// SC_{i,j} (Definition 4), the ascending/descending schedule of the
// bitonic sort, and vertex-disjoint path construction used to reason
// about the consistency predicate.
package hypercube

import (
	"fmt"
	"math/bits"
)

// MaxDim is the largest supported hypercube dimension. 30 keeps node IDs
// and subcube bounds comfortably inside int32 range on all platforms and
// is far beyond the thousands-of-processors scale the paper considers.
const MaxDim = 30

// Topology describes an n-dimensional hypercube with N = 2^n nodes.
// The zero value is not usable; construct with New.
type Topology struct {
	dim int
	n   int
}

// New returns the hypercube topology of the given dimension.
// It returns an error when dim is negative or exceeds MaxDim.
func New(dim int) (Topology, error) {
	if dim < 0 || dim > MaxDim {
		return Topology{}, fmt.Errorf("hypercube: dimension %d out of range [0, %d]", dim, MaxDim)
	}
	return Topology{dim: dim, n: 1 << uint(dim)}, nil
}

// MustNew is New but panics on invalid input. It is intended for
// program initialization and tests where the dimension is a constant.
func MustNew(dim int) Topology {
	t, err := New(dim)
	if err != nil {
		panic(err)
	}
	return t
}

// Dim returns the hypercube dimension n.
func (t Topology) Dim() int { return t.dim }

// Nodes returns the node count N = 2^n.
func (t Topology) Nodes() int { return t.n }

// Contains reports whether id is a valid node label in the topology.
func (t Topology) Contains(id int) bool { return id >= 0 && id < t.n }

// Partner returns the neighbor of node across dimension bit, that is
// node XOR 2^bit. An error is returned for an invalid node or bit.
func (t Topology) Partner(node, bit int) (int, error) {
	if !t.Contains(node) {
		return 0, fmt.Errorf("hypercube: node %d outside cube of %d nodes", node, t.n)
	}
	if bit < 0 || bit >= t.dim {
		return 0, fmt.Errorf("hypercube: bit %d outside dimension %d", bit, t.dim)
	}
	return node ^ (1 << uint(bit)), nil
}

// Neighbors returns the n neighbors of node in ascending dimension
// order. The slice is freshly allocated on each call.
func (t Topology) Neighbors(node int) ([]int, error) {
	if !t.Contains(node) {
		return nil, fmt.Errorf("hypercube: node %d outside cube of %d nodes", node, t.n)
	}
	out := make([]int, t.dim)
	for b := 0; b < t.dim; b++ {
		out[b] = node ^ (1 << uint(b))
	}
	return out, nil
}

// AreNeighbors reports whether nodes a and b are connected by an edge,
// i.e. their labels differ in exactly one bit.
func (t Topology) AreNeighbors(a, b int) bool {
	if !t.Contains(a) || !t.Contains(b) {
		return false
	}
	return bits.OnesCount32(uint32(a^b)) == 1
}

// HammingDistance returns the number of bit positions in which the two
// node labels differ; this is also the routing distance in the cube.
func HammingDistance(a, b int) int {
	return bits.OnesCount32(uint32(a ^ b))
}

// Subcube identifies the home subcube SC_{dim,node} of Definition 4:
// the aligned subcube of size 2^dim containing a given node. Start and
// End are the inclusive node-label bounds (SC^S and SC^E in the paper).
type Subcube struct {
	// Dim is the subcube dimension i; the subcube holds 2^i nodes.
	Dim int
	// Start is SC^S_{i,j}: the lowest node label in the subcube.
	Start int
	// End is SC^E_{i,j}: the highest node label in the subcube.
	End int
}

// Size returns the number of nodes in the subcube, 2^Dim.
func (s Subcube) Size() int { return 1 << uint(s.Dim) }

// Contains reports whether node lies inside the subcube.
func (s Subcube) Contains(node int) bool { return node >= s.Start && node <= s.End }

// LowerHalf returns the aligned sub-subcube holding the lower 2^(Dim-1)
// labels. It panics if Dim == 0 (a single node has no halves); callers
// iterate stages starting at Dim >= 1.
func (s Subcube) LowerHalf() Subcube {
	if s.Dim == 0 {
		panic("hypercube: LowerHalf of dimension-0 subcube")
	}
	half := s.Size() / 2
	return Subcube{Dim: s.Dim - 1, Start: s.Start, End: s.Start + half - 1}
}

// UpperHalf returns the aligned sub-subcube holding the upper 2^(Dim-1)
// labels. It panics if Dim == 0.
func (s Subcube) UpperHalf() Subcube {
	if s.Dim == 0 {
		panic("hypercube: UpperHalf of dimension-0 subcube")
	}
	half := s.Size() / 2
	return Subcube{Dim: s.Dim - 1, Start: s.Start + half, End: s.End}
}

// String renders the subcube as SC{dim=i, [start..end]}.
func (s Subcube) String() string {
	return fmt.Sprintf("SC{dim=%d, [%d..%d]}", s.Dim, s.Start, s.End)
}

// HomeSubcube returns SC_{dim,node}: the aligned subcube of dimension
// dim that contains node. Per Definition 4 it starts at
// k = node - node mod 2^dim and ends at k + 2^dim - 1.
func (t Topology) HomeSubcube(dim, node int) (Subcube, error) {
	if !t.Contains(node) {
		return Subcube{}, fmt.Errorf("hypercube: node %d outside cube of %d nodes", node, t.n)
	}
	if dim < 0 || dim > t.dim {
		return Subcube{}, fmt.Errorf("hypercube: subcube dimension %d outside [0, %d]", dim, t.dim)
	}
	size := 1 << uint(dim)
	start := node - node%size
	return Subcube{Dim: dim, Start: start, End: start + size - 1}, nil
}

// Ascending reports the sort direction for node during stage i of the
// bitonic schedule (algorithm S_NR, Figure 2): a node keeps the smaller
// element of a compare-exchange when node mod 2^(i+2) < 2^(i+1), i.e.
// when bit i+1 of the node label is zero. During the final stage
// (i = n-1) bit n is implicitly zero for every node, so the whole cube
// sorts ascending.
func (t Topology) Ascending(stage, node int) bool {
	if stage >= t.dim-1 {
		return true
	}
	return node&(1<<uint(stage+1)) == 0
}

// Active reports whether node is the active member of its stage-(i)
// iteration-(j) compare-exchange pair: the paper designates the node
// with a zero in bit j (node mod 2d < d, d = 2^j) as the one that
// performs the comparison while its partner forwards its value.
func Active(node, bit int) bool {
	return node&(1<<uint(bit)) == 0
}

// Path is a sequence of adjacent node labels, beginning at the source
// and ending at the destination.
type Path []int

// Valid reports whether the path is non-empty and every consecutive
// pair of labels is an edge in the topology.
func (p Path) Valid(t Topology) bool {
	if len(p) == 0 {
		return false
	}
	for i := 0; i < len(p); i++ {
		if !t.Contains(p[i]) {
			return false
		}
		if i > 0 && !t.AreNeighbors(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// ECubePath returns the dimension-ordered (e-cube) route from src to
// dst: correct differing bits from least to most significant. The path
// includes both endpoints. E-cube routing is the deadlock-free scheme
// used by the commercial hypercubes the paper targets.
func (t Topology) ECubePath(src, dst int) (Path, error) {
	if !t.Contains(src) || !t.Contains(dst) {
		return nil, fmt.Errorf("hypercube: path endpoints %d,%d outside cube of %d nodes", src, dst, t.n)
	}
	p := Path{src}
	cur := src
	for b := 0; b < t.dim; b++ {
		mask := 1 << uint(b)
		if (cur^dst)&mask != 0 {
			cur ^= mask
			p = append(p, cur)
		}
	}
	return p, nil
}

// DisjointPaths constructs HammingDistance(src,dst) pairwise
// vertex-disjoint paths (apart from the shared endpoints) between two
// distinct nodes, using the classic rotation construction: path k
// corrects the differing dimensions in the cyclic order starting at
// the k-th differing bit. Vertex-disjointness of these routes is what
// lets the consistency predicate Φ_C bound the damage a faulty relay
// can do (Lemma 6). For src == dst it returns a single trivial path.
func (t Topology) DisjointPaths(src, dst int) ([]Path, error) {
	if !t.Contains(src) || !t.Contains(dst) {
		return nil, fmt.Errorf("hypercube: path endpoints %d,%d outside cube of %d nodes", src, dst, t.n)
	}
	if src == dst {
		return []Path{{src}}, nil
	}
	var diff []int
	for b := 0; b < t.dim; b++ {
		if (src^dst)&(1<<uint(b)) != 0 {
			diff = append(diff, b)
		}
	}
	paths := make([]Path, 0, len(diff))
	for k := range diff {
		p := Path{src}
		cur := src
		for s := 0; s < len(diff); s++ {
			bit := diff[(k+s)%len(diff)]
			cur ^= 1 << uint(bit)
			p = append(p, cur)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Bit returns bit b of the node label as 0 or 1.
func Bit(node, b int) int { return (node >> uint(b)) & 1 }

// Log2 returns floor(log2(x)) for x >= 1, and an error otherwise. It is
// used to recover the stage/subcube dimension from sizes.
func Log2(x int) (int, error) {
	if x < 1 {
		return 0, fmt.Errorf("hypercube: log2 of non-positive value %d", x)
	}
	return bits.Len(uint(x)) - 1, nil
}

// IsPow2 reports whether x is a positive power of two. The bitonic
// algorithms in this repository require power-of-two list and cube
// sizes, matching the paper's N = 2^n assumption.
func IsPow2(x int) bool { return x > 0 && x&(x-1) == 0 }
