package hypercube

import (
	"fmt"
	"testing"
)

func BenchmarkECubePath(b *testing.B) {
	topo := MustNew(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.ECubePath(0, 1023); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisjointPaths(b *testing.B) {
	for _, dim := range []int{4, 8} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			topo := MustNew(dim)
			dst := topo.Nodes() - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := topo.DisjointPaths(0, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHomeSubcube(b *testing.B) {
	topo := MustNew(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.HomeSubcube(i%17, 12345); err != nil {
			b.Fatal(err)
		}
	}
}
