package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 3a + 2b, noiseless.
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}}
	y := []float64{3, 2, 5, 12}
	coef, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-3) > 1e-9 || math.Abs(coef[1]-2) > 1e-9 {
		t.Fatalf("coef = %v", coef)
	}
}

func TestLeastSquaresRecoversPaperShape(t *testing.T) {
	// Generate comm(N) = 8·lg²N + 0.05·N·lgN with mild noise and
	// recover the constants — exactly what the harness does.
	rng := rand.New(rand.NewSource(12))
	var X [][]float64
	var y []float64
	for _, n := range []float64{4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		lg := Lg(n)
		truth := 8*lg*lg + 0.05*n*lg
		noisy := truth * (1 + 0.01*(rng.Float64()-0.5))
		X = append(X, []float64{lg * lg, n * lg})
		y = append(y, noisy)
	}
	coef, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-8) > 0.5 || math.Abs(coef[1]-0.05) > 0.005 {
		t.Fatalf("recovered coef = %v, want ~[8, 0.05]", coef)
	}
	pred := make([]float64, len(y))
	for i := range X {
		pred[i] = coef[0]*X[i][0] + coef[1]*X[i][1]
	}
	r2, err := RSquared(y, pred)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999 {
		t.Errorf("R² = %v", r2)
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch: want error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero bases: want error")
	}
	// Underdetermined.
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrSingular) {
		t.Error("underdetermined: want ErrSingular")
	}
	// Collinear columns.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(X, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Error("collinear: want ErrSingular")
	}
}

// TestLeastSquaresSinglePoint pins the degenerate-input contract: one
// observation determines one basis exactly, cannot determine two, and
// a zero regressor leaves nothing to fit.
func TestLeastSquaresSinglePoint(t *testing.T) {
	coef, err := LeastSquares([][]float64{{2}}, []float64{6})
	if err != nil {
		t.Fatalf("single point, single basis: %v", err)
	}
	if math.Abs(coef[0]-3) > 1e-12 {
		t.Errorf("coef = %v, want [3]", coef)
	}
	// One observation cannot determine two coefficients.
	if _, err := LeastSquares([][]float64{{2, 5}}, []float64{6}); !errors.Is(err, ErrSingular) {
		t.Errorf("single point, two bases: err = %v, want ErrSingular", err)
	}
	// A zero regressor makes the normal equations singular even with a
	// square system.
	if _, err := LeastSquares([][]float64{{0}}, []float64{1}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero regressor: err = %v, want ErrSingular", err)
	}
	// Identical rows are rank one regardless of how many there are.
	X := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	if _, err := LeastSquares(X, []float64{1, 1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("repeated rows: err = %v, want ErrSingular", err)
	}
}

func TestRSquared(t *testing.T) {
	if _, err := RSquared([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	r2, err := RSquared([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || r2 != 1 {
		t.Errorf("perfect fit R² = %v err=%v", r2, err)
	}
	r2, err = RSquared([]float64{2, 2}, []float64{2, 2})
	if err != nil || r2 != 1 {
		t.Errorf("constant perfect R² = %v", r2)
	}
	r2, err = RSquared([]float64{2, 2}, []float64{3, 3})
	if err != nil || r2 != 0 {
		t.Errorf("constant mispredicted R² = %v", r2)
	}
}

// Least squares must reproduce exact coefficients for any
// well-conditioned random system.
func TestLeastSquaresRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		var X [][]float64
		var y []float64
		for i := 0; i < 8; i++ {
			x1 := rng.Float64()*10 + 1
			x2 := rng.Float64()*10 + 1
			X = append(X, []float64{x1, x2 * x2})
			y = append(y, a*x1+b*x2*x2)
		}
		coef, err := LeastSquares(X, y)
		if err != nil {
			return true // occasional ill-conditioning is acceptable
		}
		return math.Abs(coef[0]-a) < 1e-4*(1+math.Abs(a)) &&
			math.Abs(coef[1]-b) < 1e-4*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLg(t *testing.T) {
	if Lg(8) != 3 {
		t.Errorf("Lg(8) = %v", Lg(8))
	}
}
