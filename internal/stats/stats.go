// Package stats provides the small numerical toolkit the experiment
// harness needs: summary statistics and multi-basis linear least
// squares, used to fit measured virtual-time curves to the two-term
// cost formulas of the paper's Section 5 table.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are singular
// (collinear bases or too few points).
var ErrSingular = errors.New("stats: singular system")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 when fewer
// than two points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// LeastSquares fits y ≈ Σ coef[k]·X[i][k] by ordinary least squares
// and returns the coefficients. X is row-major: one row per
// observation, one column per basis. It requires at least as many
// observations as bases.
func LeastSquares(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: %d rows vs %d targets", n, len(y))
	}
	k := len(X[0])
	if k == 0 {
		return nil, errors.New("stats: zero bases")
	}
	for i, row := range X {
		if len(row) != k {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), k)
		}
	}
	if n < k {
		return nil, fmt.Errorf("stats: %d observations for %d bases: %w", n, k, ErrSingular)
	}
	// Normal equations: (XᵀX) c = Xᵀy.
	ata := make([][]float64, k)
	aty := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			aty[i] += X[r][i] * y[r]
			for j := 0; j < k; j++ {
				ata[i][j] += X[r][i] * X[r][j]
			}
		}
	}
	coef, err := solve(ata, aty)
	if err != nil {
		return nil, err
	}
	return coef, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	m := make([][]float64, k)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < k; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := m[i][k]
		for j := i + 1; j < k; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of predictions
// pred against observations y: 1 is a perfect fit. It returns 1 when
// the observations are constant and perfectly predicted, 0 when
// constant but mispredicted.
func RSquared(y, pred []float64) (float64, error) {
	if len(y) != len(pred) || len(y) == 0 {
		return 0, fmt.Errorf("stats: %d observations vs %d predictions", len(y), len(pred))
	}
	m := Mean(y)
	var ssTot, ssRes float64
	for i := range y {
		ssTot += (y[i] - m) * (y[i] - m)
		ssRes += (y[i] - pred[i]) * (y[i] - pred[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// Lg returns log2(x).
func Lg(x float64) float64 { return math.Log2(x) }
