package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPSortEndpoint(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Tenant: "web", Keys: []int64{5, 1, 4, 2, 3, 9, 7, 0}, Dim: 2})
	resp, err := http.Post(ts.URL+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	assertVerified(t, []int64{5, 1, 4, 2, 3, 9, 7, 0}, &out, false)
	if out.Tenant != "web" || out.JobID == 0 || out.Stats.Attempts < 1 {
		t.Errorf("response metadata: %+v", out)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	cfg := testConfig()
	cfg.AllowChaos = false
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, ErrorBody) {
		resp, err := http.Post(ts.URL+"/sort", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	if code, eb := post("{not json"); code != http.StatusBadRequest || eb.Error != "invalid" {
		t.Errorf("bad JSON: %d %+v", code, eb)
	}
	if code, eb := post(`{"keys":[]}`); code != http.StatusBadRequest || eb.Error != "invalid" {
		t.Errorf("empty keys: %d %+v", code, eb)
	}
	if code, eb := post(`{"keys":[1,2],"inject":{"class":"message","strategy":"key-lie"}}`); code != http.StatusBadRequest || eb.Error != "invalid" {
		t.Errorf("chaos on non-chaos server: %d %+v", code, eb)
	}
}

func TestHTTPObservabilityEndpoints(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(Request{Keys: []int64{3, 1, 2, 4, 9, 5, 7, 6}, Dim: 2}); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "server_jobs_verified_total 1") ||
		!strings.Contains(body, "server_pool_networks_built_total") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/debug/journal"); code != http.StatusOK || !strings.Contains(body, `"job"`) {
		t.Errorf("/debug/journal: %d\n%s", code, body)
	}
	if code, body := get("/stats"); code != http.StatusOK || !strings.Contains(body, `"jobs_verified":1`) {
		t.Errorf("/stats: %d\n%s", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: %d", code)
	}
}

func TestStreamProtocolRoundTrip(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := s.NewStreamServer(ln)
	go ss.Serve()
	defer ss.Close()

	c, err := DialStream(ss.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Several jobs back to back on one connection, including a
	// descending one and a fault-injected one.
	keys := []int64{42, -7, 19, 3, 88, 0, -1, 55, 6, 2, 71, -30, 14, 9, 27, 100}
	for i := 0; i < 3; i++ {
		resp, eb, err := c.Do(Request{Tenant: "stream", Keys: keys, Descending: i == 1, Dim: 2,
			Inject: func() *ChaosSpec {
				if i == 2 {
					return &ChaosSpec{Class: "comparison", Node: 1, Mode: "cmp-persistent", Rate: 1, Seed: 5}
				}
				return nil
			}()})
		if err != nil {
			t.Fatalf("job %d: transport: %v", i, err)
		}
		if eb != nil {
			// Structured failure acceptable for the injected job only.
			if i != 2 {
				t.Fatalf("job %d: unexpected error body %+v", i, eb)
			}
			continue
		}
		assertVerified(t, keys, resp, i == 1)
	}

	// A malformed request (empty keys) gets a structured invalid frame,
	// and the connection stays usable.
	_, eb, err := c.Do(Request{Tenant: "stream"})
	if err != nil {
		t.Fatal(err)
	}
	if eb == nil || eb.Error != "invalid" {
		t.Fatalf("empty keys: %+v", eb)
	}
	resp, eb, err := c.Do(Request{Tenant: "stream", Keys: []int64{2, 1}, Dim: 1})
	if err != nil || eb != nil {
		t.Fatalf("post-error job: %v %+v", err, eb)
	}
	assertVerified(t, []int64{2, 1}, resp, false)
}
