// ChaosSpec: the server-side fault-injection surface. A job may carry
// one injected fault (message, comparison, or memory class) so load
// generators and chaos tests can drive the full detect → diagnose →
// recover path through the public API — against pooled networks, mixed
// in with honest tenants. Production deployments leave AllowChaos off
// and the field is rejected at admission.
package server

import (
	"fmt"

	"repro/internal/blocksort"
	"repro/internal/fault"
)

// ChaosSpec describes one fault to inject into a job's sort attempts.
// Exactly the vocabularies of internal/fault, keyed by kebab-case
// names so it round-trips through JSON.
type ChaosSpec struct {
	// Class selects the fault injector: "message" (Byzantine message
	// tampering), "comparison" (lying comparator), or "memory"
	// (corrupted resident keys).
	Class string `json:"class"`
	// Node is the physical label of the faulty node on the initial
	// cube. The injector follows it through quarantine remappings; if
	// the node has been quarantined off the cube the fault simply no
	// longer manifests — exactly a repaired machine.
	Node int `json:"node"`
	// Strategy names the message-class behaviour (fault.Strategy
	// kebab-case: "key-lie", "split-lie", ... ). Message class only.
	Strategy string `json:"strategy,omitempty"`
	// Mode names the comparison ("cmp-persistent"/"cmp-transient") or
	// memory ("mem-flip"/"mem-stuck"/"mem-wipe") discipline.
	Mode string `json:"mode,omitempty"`
	// Rate is the lie/corruption probability for comparison and memory
	// classes; 0 means 1 (always).
	Rate float64 `json:"rate,omitempty"`
	// Seed makes comparison/memory corruption deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Lie parameterizes value-substitution message strategies and the
	// memory stuck value.
	Lie int64 `json:"lie,omitempty"`
	// Transient limits the fault to attempt 0, modelling a soft error
	// the first retry outruns. Persistent faults follow the node until
	// it is quarantined or substituted.
	Transient bool `json:"transient,omitempty"`
}

// strategyByName inverts fault.Strategy's kebab-case names.
func strategyByName(name string) (fault.Strategy, bool) {
	for _, s := range fault.AllStrategies() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func cmpModeByName(name string) (fault.CmpMode, bool) {
	for _, m := range fault.AllCmpModes() {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

func memModeByName(name string) (fault.MemMode, bool) {
	for _, m := range fault.AllMemModes() {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// validate rejects malformed specs at admission, before any network is
// leased.
func (c *ChaosSpec) validate() error {
	if c.Node < 0 {
		return fmt.Errorf("chaos: node %d negative", c.Node)
	}
	switch c.Class {
	case "message":
		if _, ok := strategyByName(c.Strategy); !ok {
			return fmt.Errorf("chaos: unknown message strategy %q", c.Strategy)
		}
	case "comparison":
		if _, ok := cmpModeByName(c.Mode); !ok {
			return fmt.Errorf("chaos: unknown comparison mode %q", c.Mode)
		}
	case "memory":
		if _, ok := memModeByName(c.Mode); !ok {
			return fmt.Errorf("chaos: unknown memory mode %q", c.Mode)
		}
	default:
		return fmt.Errorf("chaos: unknown class %q", c.Class)
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("chaos: rate %v outside [0,1]", c.Rate)
	}
	return nil
}

// injector compiles the spec into reliablesort's per-attempt Inject
// hook. physical[l] is the original-cube label at logical slot l, so
// the fault follows the machine, not the slot.
func (c *ChaosSpec) injector() func(attempt, dim int, physical []int) []blocksort.Options {
	spec := *c
	rate := spec.Rate
	if rate == 0 {
		rate = 1
	}
	return func(attempt, dim int, physical []int) []blocksort.Options {
		if spec.Transient && attempt > 0 {
			return nil
		}
		slot := -1
		for l, p := range physical {
			if p == spec.Node {
				slot = l
				break
			}
		}
		if slot < 0 {
			return nil // quarantined or substituted away: machine repaired
		}
		opts := make([]blocksort.Options, len(physical))
		// SkipChecks disarms the faulty node's own detectors — a truly
		// Byzantine machine does not police itself; its honest peers
		// must catch it.
		switch spec.Class {
		case "message":
			st, _ := strategyByName(spec.Strategy)
			lie := spec.Lie
			if lie == 0 {
				lie = 424242
			}
			opts[slot] = blocksort.Options{SkipChecks: true, Tamper: fault.Spec{
				Node: slot, Strategy: st, ActivateStage: 1, LieValue: lie,
			}.Tamper()}
		case "comparison":
			mode, _ := cmpModeByName(spec.Mode)
			opts[slot] = blocksort.Options{SkipChecks: true, Compare: fault.CmpSpec{
				Node: slot, Mode: mode, Rate: rate, Seed: spec.Seed, ActivateStage: 1,
			}.Comparator()}
		case "memory":
			mode, _ := memModeByName(spec.Mode)
			// Corruptor carries per-run rng state: build a fresh one per
			// attempt (this closure runs once per attempt).
			opts[slot] = blocksort.Options{SkipChecks: true, CorruptMemory: fault.MemSpec{
				Node: slot, Mode: mode, Rate: rate, Seed: spec.Seed,
				ActivateStage: 1, StuckValue: spec.Lie,
			}.Corruptor()}
		}
		return opts
	}
}
