// Length-prefixed streaming wire protocol — the bulk lane next to the
// HTTP/JSON front door. Keys travel as raw little-endian int64s
// instead of JSON numbers, and one connection carries any number of
// jobs back to back, so a load generator saturates the service
// without spending its budget on text encoding.
//
// Request frame:
//
//	u32  magic "SRT1" (0x53525431)
//	u32  header length
//	...  header JSON: {"tenant","descending","dim","inject"}
//	u64  key count
//	...  count × s64 keys, little-endian
//
// Response frame:
//
//	u32  status (see Status* constants)
//	u32  body length
//	...  body JSON: Response (sans keys) on ok, ErrorBody otherwise
//	u64  key count   — present only on StatusOK
//	...  count × s64 sorted keys, little-endian
//
// Frames are processed strictly in order per connection; a client
// wanting parallelism opens parallel connections (each worker of
// cmd/sortload does). The connection closes on the first malformed
// frame — after a framing error the byte stream cannot be trusted.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// StreamMagic begins every request frame ("SRT1").
const StreamMagic = 0x53525431

// Status codes of the response frame.
const (
	StatusOK         = 0
	StatusInvalid    = 1
	StatusOverloaded = 2
	StatusFault      = 3
	StatusClosed     = 4
	StatusInternal   = 5
)

// maxStreamHeader bounds the JSON header of a request frame.
const maxStreamHeader = 1 << 20

// streamHeader is the JSON metadata of a request frame: a Request
// without the bulk keys.
type streamHeader struct {
	Tenant     string     `json:"tenant,omitempty"`
	Descending bool       `json:"descending,omitempty"`
	Dim        int        `json:"dim,omitempty"`
	Inject     *ChaosSpec `json:"inject,omitempty"`
}

// streamStatus maps a Submit error to a wire status.
func streamStatus(err error) uint32 {
	switch {
	case errors.Is(err, ErrInvalid):
		return StatusInvalid
	case errors.Is(err, ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, ErrClosed):
		return StatusClosed
	case err != nil:
		status, _ := classify(err)
		if status == 422 {
			return StatusFault
		}
		return StatusInternal
	}
	return StatusOK
}

// StreamServer accepts stream-protocol connections and feeds their
// jobs through the same Submit path (admission, tenant queues,
// workers) as the HTTP front end.
type StreamServer struct {
	srv *Server
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
	done  chan struct{}
}

// NewStreamServer wraps ln; call Serve to start accepting.
func (s *Server) NewStreamServer(ln net.Listener) *StreamServer {
	return &StreamServer{
		srv:   s,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
}

// Addr returns the listener's address.
func (ss *StreamServer) Addr() net.Addr { return ss.ln.Addr() }

// Serve accepts connections until Close, handling each on its own
// goroutine. It returns nil after Close.
func (ss *StreamServer) Serve() error {
	for {
		conn, err := ss.ln.Accept()
		if err != nil {
			select {
			case <-ss.done:
				return nil
			default:
				return err
			}
		}
		ss.mu.Lock()
		ss.conns[conn] = struct{}{}
		ss.mu.Unlock()
		ss.wg.Add(1)
		go func() {
			defer ss.wg.Done()
			ss.handle(conn)
			ss.mu.Lock()
			delete(ss.conns, conn)
			ss.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes open connections, and waits for
// handlers to drain.
func (ss *StreamServer) Close() {
	select {
	case <-ss.done:
		return
	default:
		close(ss.done)
	}
	ss.ln.Close()
	ss.mu.Lock()
	for c := range ss.conns {
		c.Close()
	}
	ss.mu.Unlock()
	ss.wg.Wait()
}

// handle runs one connection's job sequence.
func (ss *StreamServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := readRequestFrame(conn, ss.srv.cfg.MaxKeys)
		if err != nil {
			return // EOF between frames is the normal end; errors drop the conn
		}
		resp, serr := ss.srv.Submit(*req)
		if werr := writeResponseFrame(conn, resp, serr); werr != nil {
			return
		}
	}
}

// readRequestFrame parses one request frame. maxKeys bounds the key
// allocation before it happens.
func readRequestFrame(r io.Reader, maxKeys int) (*Request, error) {
	var magic, hdrLen uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != StreamMagic {
		return nil, fmt.Errorf("stream: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &hdrLen); err != nil {
		return nil, err
	}
	if hdrLen > maxStreamHeader {
		return nil, fmt.Errorf("stream: header %d bytes exceeds %d", hdrLen, maxStreamHeader)
	}
	hdrBuf := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdrBuf); err != nil {
		return nil, err
	}
	var hdr streamHeader
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return nil, fmt.Errorf("stream: header: %w", err)
	}
	var nkeys uint64
	if err := binary.Read(r, binary.LittleEndian, &nkeys); err != nil {
		return nil, err
	}
	if nkeys > uint64(maxKeys) {
		return nil, fmt.Errorf("stream: %d keys exceeds limit %d", nkeys, maxKeys)
	}
	keys := make([]int64, nkeys)
	if err := binary.Read(r, binary.LittleEndian, keys); err != nil {
		return nil, err
	}
	return &Request{
		Tenant:     hdr.Tenant,
		Keys:       keys,
		Descending: hdr.Descending,
		Dim:        hdr.Dim,
		Inject:     hdr.Inject,
	}, nil
}

// writeResponseFrame emits one response frame for (resp, serr).
func writeResponseFrame(w io.Writer, resp *Response, serr error) error {
	status := streamStatus(serr)
	var body []byte
	var err error
	if serr != nil {
		_, eb := classify(serr)
		body, err = json.Marshal(eb)
	} else {
		// The bulk keys ride binary after the JSON body.
		trimmed := *resp
		trimmed.Sorted = nil
		body, err = json.Marshal(&trimmed)
	}
	if err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, status); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(body))); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	if status != StatusOK {
		return nil
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(resp.Sorted))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, resp.Sorted)
}

// StreamClient is the caller side of the wire protocol — one
// connection, jobs in lockstep. cmd/sortload and the tests use it;
// external callers can treat it as the protocol's reference
// implementation.
type StreamClient struct {
	conn net.Conn
}

// DialStream connects a StreamClient to addr.
func DialStream(addr string) (*StreamClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &StreamClient{conn: conn}, nil
}

// Close closes the connection.
func (c *StreamClient) Close() error { return c.conn.Close() }

// Do submits one job and waits for its frame. A non-OK status returns
// (nil, body, nil); transport/framing problems return the third
// error and the connection must be abandoned.
func (c *StreamClient) Do(req Request) (*Response, *ErrorBody, error) {
	hdr, err := json.Marshal(streamHeader{
		Tenant: req.Tenant, Descending: req.Descending, Dim: req.Dim, Inject: req.Inject,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, v := range []any{uint32(StreamMagic), uint32(len(hdr))} {
		if err := binary.Write(c.conn, binary.LittleEndian, v); err != nil {
			return nil, nil, err
		}
	}
	if _, err := c.conn.Write(hdr); err != nil {
		return nil, nil, err
	}
	if err := binary.Write(c.conn, binary.LittleEndian, uint64(len(req.Keys))); err != nil {
		return nil, nil, err
	}
	if err := binary.Write(c.conn, binary.LittleEndian, req.Keys); err != nil {
		return nil, nil, err
	}

	var status, bodyLen uint32
	if err := binary.Read(c.conn, binary.LittleEndian, &status); err != nil {
		return nil, nil, err
	}
	if err := binary.Read(c.conn, binary.LittleEndian, &bodyLen); err != nil {
		return nil, nil, err
	}
	if bodyLen > maxStreamHeader {
		return nil, nil, fmt.Errorf("stream: body %d bytes exceeds %d", bodyLen, maxStreamHeader)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(c.conn, body); err != nil {
		return nil, nil, err
	}
	if status != StatusOK {
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			return nil, nil, fmt.Errorf("stream: error body: %w", err)
		}
		return nil, &eb, nil
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, nil, fmt.Errorf("stream: response body: %w", err)
	}
	var nkeys uint64
	if err := binary.Read(c.conn, binary.LittleEndian, &nkeys); err != nil {
		return nil, nil, err
	}
	resp.Sorted = make([]int64, nkeys)
	if err := binary.Read(c.conn, binary.LittleEndian, resp.Sorted); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}
