// Tenant queues and the weighted-fair dispatcher. Admission is the
// paper's fail-stop philosophy applied to capacity: a job the server
// cannot queue is rejected loudly at the door (ErrOverloaded → HTTP
// 429) rather than accepted and silently starved. Dispatch is smooth
// weighted round-robin across tenants, so a tenant flooding its own
// FIFO cannot push another tenant's jobs out of the schedule.
package server

import (
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned by Submit when the tenant's queue is at
// its depth bound. Callers should back off and retry; the HTTP layer
// maps it to 429.
var ErrOverloaded = errors.New("server: overloaded, queue full")

// ErrClosed is returned by Submit once the server has begun shutdown.
var ErrClosed = errors.New("server: closed")

// job is one queued sort request with its completion channel.
type job struct {
	id       uint64
	tenant   string
	req      Request
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	resp *Response
	err  error
}

// tenantQueue is one tenant's FIFO plus its smooth-WRR state.
type tenantQueue struct {
	name    string
	weight  int
	current int // smooth WRR accumulator
	jobs    []*job
}

// scheduler multiplexes per-tenant FIFOs onto the worker pool with
// smooth weighted round-robin: each pick, every backlogged tenant
// gains its weight, the richest tenant is served and pays the total.
// Over W total weight of picks each tenant with weight w is served w
// times, interleaved as evenly as integer arithmetic allows.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	weights map[string]int // configured weights; others get 1
	depth   int            // per-tenant queue bound
	queued  int
	closed  bool
}

func newScheduler(depth int, weights map[string]int) *scheduler {
	if depth <= 0 {
		depth = 64
	}
	s := &scheduler{
		tenants: make(map[string]*tenantQueue),
		weights: weights,
		depth:   depth,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// submit enqueues j on its tenant's FIFO, or fails fast.
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tq := s.tenants[j.tenant]
	if tq == nil {
		w := s.weights[j.tenant]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: j.tenant, weight: w}
		s.tenants[j.tenant] = tq
	}
	if len(tq.jobs) >= s.depth {
		return ErrOverloaded
	}
	tq.jobs = append(tq.jobs, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// next blocks until a job is available and returns it, or returns nil
// once the scheduler is closed and drained. Closing does not abandon
// queued jobs: workers keep draining so every accepted Submit gets an
// answer.
func (s *scheduler) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued == 0 {
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
	var pick *tenantQueue
	total := 0
	for _, tq := range s.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		total += tq.weight
		tq.current += tq.weight
		if pick == nil || tq.current > pick.current ||
			(tq.current == pick.current && tq.name < pick.name) {
			pick = tq
		}
	}
	pick.current -= total
	j := pick.jobs[0]
	pick.jobs = pick.jobs[1:]
	s.queued--
	return j
}

// close stops admission. Queued jobs still run; workers exit when the
// backlog is empty.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// depthNow reports the total queued jobs (for gauges and /stats).
func (s *scheduler) depthNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// tenantDepths snapshots per-tenant backlog for /stats.
func (s *scheduler) tenantDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.tenants))
	for name, tq := range s.tenants {
		out[name] = len(tq.jobs)
	}
	return out
}
