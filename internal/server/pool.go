// Transport pool: the piece that turns the run-once transports into a
// serve-forever substrate. Building a cube is the expensive part of a
// job — tcpnet dials one real loopback connection per hypercube edge
// plus one per host link — so the pool keeps verified-healthy networks
// warm and hands them to the next job of the same geometry after a
// Reset (drain mailboxes, zero per-run counters, rebind the job's
// observability sinks).
//
// Health policy: a network is recycled only when the attempt that used
// it finished *verified* (reliablesort releases with clean=true). A
// fault-stricken attempt may leave frames in flight that no drain can
// bound, so its network is quarantined — closed and rebuilt — rather
// than risk a stale frame corrupting a later tenant's job. The
// built/reused/discarded counters on /metrics make the amortization
// visible: a healthy server shows jobs ≫ networks built.
package server

import (
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/reliablesort"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// resettable is the lifecycle seam a pooled transport must implement:
// both internal/simnet and internal/tcpnet do.
type resettable interface {
	Reset(obsM *obs.Metrics, flight *forensic.Flight) error
}

// closable matches transports holding real resources (tcpnet).
type closable interface{ Close() }

// poolKey identifies interchangeable networks: same cube geometry,
// same spare pre-registration. RecvTimeout is uniform per pool (it is
// server configuration), so it does not key.
type poolKey struct {
	dim    int
	spares int
}

// Pool is a bounded free-list of pre-warmed transport networks, keyed
// by geometry. Safe for concurrent use.
type Pool struct {
	newNet  func(cfg reliablesort.NetConfig) (transport.Network, error)
	maxIdle int

	mu     sync.Mutex
	idle   map[poolKey][]transport.Network
	closed bool

	// built/reused/discarded/idleGauge are fleet-wide metrics (may be
	// nil in bare tests; all instruments are nil-safe).
	built     *obs.Counter
	reused    *obs.Counter
	discarded *obs.Counter
	idleGauge *obs.Gauge
}

// PoolStats is a point-in-time summary for /stats.
type PoolStats struct {
	Built     int64 `json:"built"`
	Reused    int64 `json:"reused"`
	Discarded int64 `json:"discarded"`
	Idle      int   `json:"idle"`
}

// NewPool builds a pool over the given transport constructor (nil
// means internal/simnet) keeping at most maxIdle warm networks per
// geometry (<= 0 means 4).
func NewPool(newNet func(cfg reliablesort.NetConfig) (transport.Network, error), maxIdle int, reg *obs.Registry) *Pool {
	if newNet == nil {
		newNet = simnetNetwork
	}
	if maxIdle <= 0 {
		maxIdle = 4
	}
	p := &Pool{
		newNet:  newNet,
		maxIdle: maxIdle,
		idle:    make(map[poolKey][]transport.Network),
	}
	if reg != nil {
		p.built = reg.Counter("server_pool_networks_built_total",
			"Transport networks constructed (cache misses and rebuilds).")
		p.reused = reg.Counter("server_pool_networks_reused_total",
			"Jobs served by a recycled pre-warmed transport network.")
		p.discarded = reg.Counter("server_pool_networks_discarded_total",
			"Pooled networks quarantined and closed (fault-stricken or surplus).")
		p.idleGauge = reg.Gauge("server_pool_networks_idle",
			"Warm networks currently parked in the pool.")
	}
	return p
}

// simnetNetwork is the default transport constructor, mirroring
// reliablesort's.
func simnetNetwork(cfg reliablesort.NetConfig) (transport.Network, error) {
	return simnet.New(simnet.Config{
		Dim:         cfg.Dim,
		Spares:      cfg.Spares,
		RecvTimeout: cfg.RecvTimeout,
		Obs:         cfg.Obs,
		Flight:      cfg.Flight,
	})
}

// Get checks a network for one sort attempt out of the pool: a warm
// network of the right geometry reset onto the job's observability
// sinks when one is parked, a freshly built one otherwise. The
// returned network implements Release(clean bool) — reliablesort's
// attempt teardown seam — which returns it to the pool (clean) or
// quarantines and closes it (unclean).
func (p *Pool) Get(cfg reliablesort.NetConfig) (transport.Network, error) {
	key := poolKey{dim: cfg.Dim, spares: cfg.Spares}
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("server: pool closed")
		}
		var nw transport.Network
		if q := p.idle[key]; len(q) > 0 {
			nw = q[len(q)-1]
			p.idle[key] = q[:len(q)-1]
		}
		p.mu.Unlock()
		if nw == nil {
			break
		}
		r, ok := nw.(resettable)
		if !ok {
			// Should not happen (put refuses to park these), but never
			// hand out a network we cannot drain.
			p.discard(nw)
			continue
		}
		if err := r.Reset(cfg.Obs, cfg.Flight); err != nil {
			p.discard(nw)
			continue
		}
		p.idleGauge.Add(-1)
		p.reused.Inc()
		return &lease{Network: nw, pool: p, key: key}, nil
	}
	nw, err := p.newNet(cfg)
	if err != nil {
		return nil, err
	}
	p.built.Inc()
	return &lease{Network: nw, pool: p, key: key}, nil
}

// Warm pre-builds count idle networks for the given geometry so the
// first jobs of a freshly started server skip construction too. The
// networks are built with the pool's default observability (rebound at
// Get time).
func (p *Pool) Warm(cfg reliablesort.NetConfig, count int) error {
	for i := 0; i < count; i++ {
		nw, err := p.newNet(cfg)
		if err != nil {
			return err
		}
		p.built.Inc()
		p.put(nw, poolKey{dim: cfg.Dim, spares: cfg.Spares}, true)
	}
	return nil
}

// put returns a network to the pool (healthy) or quarantines it.
func (p *Pool) put(nw transport.Network, key poolKey, healthy bool) {
	if _, ok := nw.(resettable); !ok {
		healthy = false
	}
	if healthy {
		p.mu.Lock()
		if !p.closed && len(p.idle[key]) < p.maxIdle {
			p.idle[key] = append(p.idle[key], nw)
			p.mu.Unlock()
			p.idleGauge.Add(1)
			return
		}
		p.mu.Unlock()
	}
	p.discard(nw)
}

// discard closes a network that will not be reused.
func (p *Pool) discard(nw transport.Network) {
	p.discarded.Inc()
	if c, ok := nw.(closable); ok {
		c.Close()
	}
}

// Close empties the pool and closes every idle network. Leased
// networks are closed as they are released.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []transport.Network
	for k, q := range p.idle {
		all = append(all, q...)
		delete(p.idle, k)
	}
	p.mu.Unlock()
	for _, nw := range all {
		p.idleGauge.Add(-1)
		p.discard(nw)
	}
}

// Stats summarizes the pool for /stats.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := 0
	for _, q := range p.idle {
		idle += len(q)
	}
	p.mu.Unlock()
	return PoolStats{
		Built:     p.built.Value(),
		Reused:    p.reused.Value(),
		Discarded: p.discarded.Value(),
		Idle:      idle,
	}
}

// lease is the per-attempt handle reliablesort runs against. Its
// Release implements the attempt-teardown seam: healthy networks go
// back into the pool, fault-stricken ones are quarantined and closed.
type lease struct {
	transport.Network
	pool *Pool
	key  poolKey

	once sync.Once
}

// Release returns the underlying network to the pool. clean must be
// true only if the attempt that used it finished verified.
func (l *lease) Release(clean bool) {
	l.once.Do(func() { l.pool.put(l.Network, l.key, clean) })
}
