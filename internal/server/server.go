// Package server is sort-as-a-service over the fault-tolerant
// machinery: a long-running multi-tenant process that accepts
// concurrent sort jobs, runs each through reliablesort.Sort with
// AutoRecover and spares on a pre-warmed pooled transport, and returns
// verified results with per-job statistics and forensics.
//
// The paper's contract survives the service boundary intact:
// verification stays end-to-end *per job* — every job's attempt runs
// the full constraint-predicate machinery plus the Theorem 1 oracle on
// its own output, so no job can be silently wrong no matter what
// faults its neighbours on the pool suffered. The service adds the
// operational layers around that contract: admission control (reject
// loudly at the door, never starve silently), weighted-fair tenant
// dispatch, transport pooling with quarantine-on-fault health checks,
// and fleet-wide observability.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/obs/forensic"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
	"repro/internal/transport"
)

// Request is one sort job.
type Request struct {
	// Tenant names the submitting tenant; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Keys is the data to sort. The server never mutates it.
	Keys []int64 `json:"keys"`
	// Descending sorts in non-increasing order.
	Descending bool `json:"descending,omitempty"`
	// Dim forces the cube dimension; 0 chooses automatically.
	Dim int `json:"dim,omitempty"`
	// Inject, when non-nil, injects one fault into the job's attempts.
	// Rejected unless the server was configured with AllowChaos.
	Inject *ChaosSpec `json:"inject,omitempty"`
}

// JobStats is the per-job cost and recovery telemetry returned with a
// verified result.
type JobStats struct {
	// Nodes/BlockLen/Padded are the successful attempt's geometry.
	Nodes    int `json:"nodes"`
	BlockLen int `json:"block_len"`
	Padded   int `json:"padded"`
	// Makespan/Msgs/Bytes are the successful attempt's virtual-time
	// and traffic cost.
	Makespan int64 `json:"makespan_vticks"`
	Msgs     int64 `json:"msgs"`
	Bytes    int64 `json:"bytes"`
	// Attempts is the total sort attempts (1 = clean first try).
	Attempts int `json:"attempts"`
	// Quarantined lists physical nodes dropped or substituted during
	// recovery; Accused lists nodes implicated by Φ evidence.
	Quarantined []int `json:"quarantined,omitempty"`
	Accused     []int `json:"accused,omitempty"`
	// QueueMillis and RunMillis split the job's wall-clock latency
	// into time queued and time sorting.
	QueueMillis int64 `json:"queue_ms"`
	RunMillis   int64 `json:"run_ms"`
}

// Response is a verified sort result.
type Response struct {
	JobID  uint64   `json:"job_id"`
	Tenant string   `json:"tenant"`
	Sorted []int64  `json:"sorted"`
	Stats  JobStats `json:"stats"`
}

// ErrInvalid wraps admission-time validation failures (HTTP 400).
var ErrInvalid = errors.New("server: invalid request")

// Config configures a Server. The zero value serves simnet-backed
// sorts with sensible defaults.
type Config struct {
	// NewNetwork is the transport constructor the pool builds cubes
	// with; nil means internal/simnet.
	NewNetwork func(cfg reliablesort.NetConfig) (transport.Network, error)
	// Concurrency is the worker count — jobs sorting at once; <= 0
	// means 4.
	Concurrency int
	// QueueDepth bounds each tenant's FIFO; beyond it Submit returns
	// ErrOverloaded. <= 0 means 64.
	QueueDepth int
	// Weights sets per-tenant dispatch weights; unlisted tenants get 1.
	Weights map[string]int
	// MaxKeys bounds a single job's input size; <= 0 means 1<<20.
	MaxKeys int
	// MaxDim bounds a job's requested cube dimension; <= 0 means
	// hypercube.MaxDim.
	MaxDim int
	// RecvTimeout bounds absence detection per attempt; 0 means 30s.
	RecvTimeout time.Duration
	// DisableRecovery turns AutoRecover off: jobs fail-stop with a
	// *reliablesort.FaultError on the first detected fault.
	DisableRecovery bool
	// MaxAttempts bounds recovery attempts per job; 0 means the
	// supervisor default (4).
	MaxAttempts int
	// Spares is the spare-node pool size per job under recovery.
	Spares int
	// PoolIdle bounds warm networks kept per geometry; <= 0 means 4.
	PoolIdle int
	// AllowChaos accepts Request.Inject (load generators, chaos tests).
	AllowChaos bool
	// Registry receives fleet-wide metrics; nil means a fresh one.
	Registry *obs.Registry
	// JournalCap sizes the fleet job-lifecycle journal; <= 0 default.
	JournalCap int
	// Sleep replaces the recovery backoff sleep (tests); nil is real.
	Sleep func(time.Duration)
}

// Server is a multi-tenant sort service. Construct with New, submit
// with Submit (any number of goroutines), stop with Close.
type Server struct {
	cfg  Config
	reg  *obs.Registry
	obs  *obs.Observer
	pool *Pool
	sch  *scheduler

	jobSeq  atomic.Uint64
	wg      sync.WaitGroup
	closing atomic.Bool

	mSubmitted *obs.Counter
	mRejected  *obs.Counter
	mVerified  *obs.Counter
	mFaulted   *obs.Counter
	mExhausted *obs.Counter
	mInternal  *obs.Counter
	mKeys      *obs.Counter
	mRecovered *obs.Counter
	gQueue     *obs.Gauge
	gInflight  *obs.Gauge
	hQueueMs   *obs.Histogram
	hRunMs     *obs.Histogram
}

// latencyBucketsMs spans a sub-millisecond simnet job to a
// multi-second saturated tcpnet job.
func latencyBucketsMs() []int64 {
	return []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
}

// New builds and starts a Server: workers are running and Submit is
// ready when it returns.
func New(cfg Config) *Server {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.MaxKeys <= 0 {
		cfg.MaxKeys = 1 << 20
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = hypercube.MaxDim
	}
	if cfg.RecvTimeout == 0 {
		cfg.RecvTimeout = 30 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		reg:  reg,
		obs:  obs.New(reg, cfg.JournalCap),
		pool: NewPool(cfg.NewNetwork, cfg.PoolIdle, reg),
		sch:  newScheduler(cfg.QueueDepth, cfg.Weights),
	}
	s.mSubmitted = reg.Counter("server_jobs_submitted_total", "Jobs accepted into a tenant queue.")
	s.mRejected = reg.Counter("server_jobs_rejected_total", "Jobs refused at admission (overload or invalid).")
	s.mVerified = reg.Counter("server_jobs_verified_total", "Jobs completed with a verified result.")
	s.mFaulted = reg.Counter("server_jobs_fault_detected_total", "Jobs fail-stopped on detected faults (recovery disabled).")
	s.mExhausted = reg.Counter("server_jobs_recovery_exhausted_total", "Jobs whose recovery attempt budget ran out.")
	s.mInternal = reg.Counter("server_jobs_internal_error_total", "Jobs failed on transport or internal errors.")
	s.mKeys = reg.Counter("server_keys_sorted_total", "Keys in verified results.")
	s.mRecovered = reg.Counter("server_jobs_recovered_total", "Verified jobs that needed more than one attempt.")
	s.gQueue = reg.Gauge("server_queue_depth", "Jobs queued across all tenants.")
	s.gInflight = reg.Gauge("server_jobs_inflight", "Jobs currently sorting.")
	s.hQueueMs = reg.Histogram("server_job_queue_ms", "Per-job queue wait, milliseconds.", latencyBucketsMs())
	s.hRunMs = reg.Histogram("server_job_run_ms", "Per-job sort time, milliseconds.", latencyBucketsMs())
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry exposes the fleet metrics registry (for /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Journal exposes the fleet job-lifecycle journal (for /debug/journal).
func (s *Server) Journal() *obs.Journal { return s.obs.J }

// Warm pre-builds count pooled networks of the given dimension so
// early jobs skip transport construction.
func (s *Server) Warm(dim, count int) error {
	return s.pool.Warm(reliablesort.NetConfig{
		Dim: dim, Spares: s.cfg.Spares, RecvTimeout: s.cfg.RecvTimeout,
	}, count)
}

// ServerStats is the /stats summary.
type ServerStats struct {
	Pool      PoolStats      `json:"pool"`
	Queued    int            `json:"queued"`
	Inflight  int64          `json:"inflight"`
	Tenants   map[string]int `json:"tenant_queue_depth"`
	Submitted int64          `json:"jobs_submitted"`
	Verified  int64          `json:"jobs_verified"`
	Faulted   int64          `json:"jobs_fault_detected"`
	Exhausted int64          `json:"jobs_recovery_exhausted"`
	Rejected  int64          `json:"jobs_rejected"`
}

// Stats snapshots the server for /stats.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Pool:      s.pool.Stats(),
		Queued:    s.sch.depthNow(),
		Inflight:  s.gInflight.Value(),
		Tenants:   s.sch.tenantDepths(),
		Submitted: s.mSubmitted.Value(),
		Verified:  s.mVerified.Value(),
		Faulted:   s.mFaulted.Value(),
		Exhausted: s.mExhausted.Value(),
		Rejected:  s.mRejected.Value(),
	}
}

// validate applies admission control before a job consumes any queue
// slot or network.
func (s *Server) validate(req *Request) error {
	if len(req.Keys) == 0 {
		return fmt.Errorf("%w: empty keys", ErrInvalid)
	}
	if len(req.Keys) > s.cfg.MaxKeys {
		return fmt.Errorf("%w: %d keys exceeds limit %d", ErrInvalid, len(req.Keys), s.cfg.MaxKeys)
	}
	if req.Dim < 0 || req.Dim > s.cfg.MaxDim {
		return fmt.Errorf("%w: dim %d outside [0,%d]", ErrInvalid, req.Dim, s.cfg.MaxDim)
	}
	if req.Inject != nil {
		if !s.cfg.AllowChaos {
			return fmt.Errorf("%w: fault injection disabled on this server", ErrInvalid)
		}
		if err := req.Inject.validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	return nil
}

// Submit runs one job through admission, the tenant queue, and a
// worker, blocking until the verified result (or structured error) is
// ready. Safe for any number of concurrent callers.
func (s *Server) Submit(req Request) (*Response, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if err := s.validate(&req); err != nil {
		s.mRejected.Inc()
		return nil, err
	}
	j := &job{
		id:       s.jobSeq.Add(1),
		tenant:   req.Tenant,
		req:      req,
		enqueued: time.Now(),
		done:     make(chan jobResult, 1),
	}
	if err := s.sch.submit(j); err != nil {
		s.mRejected.Inc()
		return nil, err
	}
	s.mSubmitted.Inc()
	s.gQueue.Set(int64(s.sch.depthNow()))
	r := <-j.done
	return r.resp, r.err
}

// worker drains the scheduler until close-and-empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sch.next()
		if j == nil {
			return
		}
		s.gQueue.Set(int64(s.sch.depthNow()))
		s.gInflight.Add(1)
		resp, err := s.runJob(j)
		s.gInflight.Add(-1)
		j.done <- jobResult{resp: resp, err: err}
	}
}

// runJob executes one job end to end: per-job observer and flight
// recorder (isolated registries — no cross-job bleed), pooled
// transport, AutoRecover with spares, and result classification.
func (s *Server) runJob(j *job) (*Response, error) {
	started := time.Now()
	queueMs := started.Sub(j.enqueued).Milliseconds()
	s.hQueueMs.Observe(queueMs)
	s.obs.J.Append(obs.Event{
		Kind: obs.EvSpanBegin, Label: "job", Node: int32(j.id % (1 << 31)),
		Stage: -1, Iter: -1, Aux: int64(len(j.req.Keys)),
	})

	// Per-job observability: a fresh registry and flight per job keeps
	// every job's metrics, journal, and forensic reports isolated.
	jobObs := obs.New(obs.NewRegistry(), 0)
	flight := forensic.New(0)

	opts := reliablesort.Options{
		Descending:  j.req.Descending,
		Dim:         j.req.Dim,
		RecvTimeout: s.cfg.RecvTimeout,
		AutoRecover: !s.cfg.DisableRecovery,
		MaxAttempts: s.cfg.MaxAttempts,
		Spares:      s.cfg.Spares,
		Seed:        int64(j.id),
		Sleep:       s.cfg.Sleep,
		Obs:         jobObs,
		Flight:      flight,
		NewNetwork:  s.pool.Get,
	}
	if j.req.Inject != nil {
		opts.Inject = j.req.Inject.injector()
	}

	sorted, st, err := reliablesort.Sort(j.req.Keys, opts)
	runMs := time.Since(started).Milliseconds()
	s.hRunMs.Observe(runMs)
	verified := err == nil
	s.obs.J.Append(obs.Event{
		Kind: obs.EvSpanEnd, Label: "job", Node: int32(j.id % (1 << 31)),
		Stage: -1, Iter: -1, Pass: verified, Aux: runMs,
	})
	if err != nil {
		var fe *reliablesort.FaultError
		var ex *recovery.ExhaustedError
		switch {
		case errors.As(err, &fe):
			s.mFaulted.Inc()
		case errors.As(err, &ex):
			s.mExhausted.Inc()
		default:
			s.mInternal.Inc()
		}
		return nil, err
	}
	s.mVerified.Inc()
	s.mKeys.Add(int64(len(sorted)))
	if st.Attempts > 1 {
		s.mRecovered.Inc()
	}

	stats := JobStats{
		Nodes:       st.Nodes,
		BlockLen:    st.BlockLen,
		Padded:      st.Padded,
		Makespan:    st.Makespan,
		Msgs:        st.Msgs,
		Bytes:       st.Bytes,
		Attempts:    st.Attempts,
		QueueMillis: queueMs,
		RunMillis:   runMs,
	}
	if st.Recovery != nil {
		stats.Quarantined = st.Recovery.Quarantined
	}
	stats.Accused = accusedNodes(jobObs.J)
	return &Response{JobID: j.id, Tenant: j.tenant, Sorted: sorted, Stats: stats}, nil
}

// accusedNodes extracts the distinct accused physical labels from a
// per-job journal, in first-accusation order.
func accusedNodes(j *obs.Journal) []int {
	var out []int
	seen := make(map[int]bool)
	for _, ev := range j.Events() {
		if ev.Kind != obs.EvAccusation {
			continue
		}
		accused := int(ev.Aux)
		if !seen[accused] {
			seen[accused] = true
			out = append(out, accused)
		}
	}
	return out
}

// Close stops admission, waits for queued and in-flight jobs to
// drain, and closes the transport pool. Idempotent.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	s.sch.close()
	s.wg.Wait()
	s.pool.Close()
}
