// HTTP/JSON front end. One POST per job; admission failures map to
// status codes that distinguish "you sent garbage" (400) from "come
// back later" (429) from "the sort detected faults it could not
// recover from" (422 with the structured diagnosis) — a caller can
// build retry policy on status alone.
package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/reliablesort"
)

// ErrorBody is the JSON error envelope for non-200 responses.
type ErrorBody struct {
	// Error classifies the failure: "invalid", "overloaded", "closed",
	// "fault_detected", "recovery_exhausted", "internal".
	Error string `json:"error"`
	// Detail is the human-readable cause.
	Detail string `json:"detail"`
	// Quarantined/Accused carry the diagnosis when recovery ran out of
	// budget — which machines the evidence implicates.
	Quarantined []int `json:"quarantined,omitempty"`
	// Attempts is how many attempts ran before escalation.
	Attempts int `json:"attempts,omitempty"`
}

// classify maps a Submit error to (HTTP status, body).
func classify(err error) (int, ErrorBody) {
	var ex *recovery.ExhaustedError
	switch {
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest, ErrorBody{Error: "invalid", Detail: err.Error()}
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, ErrorBody{Error: "overloaded", Detail: err.Error()}
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, ErrorBody{Error: "closed", Detail: err.Error()}
	case errors.As(err, &ex):
		return http.StatusUnprocessableEntity, ErrorBody{
			Error: "recovery_exhausted", Detail: err.Error(),
			Quarantined: ex.Quarantined, Attempts: len(ex.Attempts),
		}
	case errors.Is(err, reliablesort.ErrFaultDetected):
		return http.StatusUnprocessableEntity, ErrorBody{Error: "fault_detected", Detail: err.Error()}
	default:
		return http.StatusInternalServerError, ErrorBody{Error: "internal", Detail: err.Error()}
	}
}

// Handler serves the service API:
//
//	POST /sort           one job: Request JSON in, Response JSON out
//	GET  /stats          pool/queue/outcome summary
//	GET  /healthz        liveness
//	GET  /metrics        fleet Prometheus text (or ?json=1)
//	GET  /debug/journal  fleet job-lifecycle journal
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sort", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "invalid", Detail: "bad JSON: " + err.Error()})
			return
		}
		resp, err := s.Submit(req)
		if err != nil {
			status, body := classify(err)
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, status, body)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", obs.Handler(s.reg, s.obs.J))
	mux.Handle("GET /debug/journal", obs.Handler(s.reg, s.obs.J))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
